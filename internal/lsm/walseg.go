// Segmented write-ahead log. The WAL is a sequence of wal-<seq>.log
// segment files (tsfile.Segment): appends go to the newest ("active")
// segment, which is sealed — fsynced and closed — once it crosses
// Options.WALSegmentBytes, and a fresh segment with the next sequence
// number takes over.
//
// Retirement replaces the old all-shards-flushed whole-file reset: when a
// shard flushes, a checkpoint record (walOpCheckpoint) marks every earlier
// record of that shard durable, and a sealed segment is deleted as soon as
// no shard has an unflushed record in it and no delete is in flight
// against it. One cold shard therefore pins only the segments that
// actually hold its records — typically just the active one — instead of
// the entire log.
//
// All walog state is guarded by Engine.walMu except during Open, which is
// single-threaded.
package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"m4lsm/internal/tsfile"
)

// walSegPattern names segment files so a lexical sort equals a sequence
// sort for any realistic lifetime (16 digits).
const walSegPattern = "wal-%016d.log"

// defaultWALSegmentBytes is the rotation threshold when Options leaves
// WALSegmentBytes zero: large enough that small databases behave like the
// old single-file WAL, small enough that retirement keeps replay short.
const defaultWALSegmentBytes = 1 << 20

func walSegPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf(walSegPattern, seq))
}

// parseWALSegName extracts the sequence number from a wal-<seq>.log name.
func parseWALSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// walSealed is one sealed (immutable, fully durable) segment.
type walSealed struct {
	seq  uint64
	path string
	size int64
}

// walEntry is one replayable record with the segment it came from.
type walEntry struct {
	seq     uint64
	payload []byte
}

// walog is the segmented WAL state. The engine's walMu guards every field.
type walog struct {
	dir      string
	segBytes int64

	active    *tsfile.Segment
	activeSeq uint64
	sealed    []walSealed // ascending seq

	// pendingMin[shard] is the lowest segment seq holding an unflushed
	// insert record of that shard (0 = none). Set at append time under
	// walMu, cleared by the shard's flush checkpoint; monotone per shard
	// because segment seqs only grow.
	pendingMin []uint64
	// pins counts in-flight deletes per segment: a delete's WAL record
	// must survive until its mods-sidecar append lands, and deletes do not
	// count toward pendingMin (they carry no memtable points).
	pins map[uint64]int

	// Recovery findings, surfaced through Info()/healthz.
	warnings       []string
	quarantinedSeg int // sealed segments set aside as *.bad
	tornTruncated  int // torn tails truncated on open

	rotations    int64
	retiredSegs  int64
	retiredBytes int64
}

// openWALog scans dir for WAL segments, migrates a legacy monolithic
// "wal" file if present, and returns the log positioned for appending
// plus every recovered record in segment order.
func openWALog(dir string, numShards int, segBytes int64) (*walog, []walEntry, error) {
	if segBytes <= 0 {
		segBytes = defaultWALSegmentBytes
	}
	w := &walog{
		dir:        dir,
		segBytes:   segBytes,
		pendingMin: make([]uint64, numShards),
		pins:       make(map[uint64]int),
	}
	if err := w.migrateLegacy(dir, numShards); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if seq, ok := parseWALSegName(ent.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	if len(seqs) == 0 {
		active, err := tsfile.CreateSegment(walSegPath(dir, 1), tsfile.SegmentHeader{Seq: 1, Shards: uint32(numShards)})
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		w.active, w.activeSeq = active, 1
		return w, nil, nil
	}

	var recovered []walEntry
	// Sealed segments (all but the newest) were fsynced before the WAL
	// moved on, so they must parse completely; anything else is
	// corruption, quarantined per the PR-2 semantics (set aside as *.bad,
	// warn, degrade, keep serving).
	for _, seq := range seqs[:len(seqs)-1] {
		path := walSegPath(dir, seq)
		hdr, recs, err := tsfile.ReadSegment(path)
		if err == nil && hdr.Seq != seq {
			err = fmt.Errorf("%w: segment header seq %d under name seq %d", tsfile.ErrCorrupt, hdr.Seq, seq)
		}
		if err != nil {
			if qerr := w.quarantineSegment(path, err); qerr != nil {
				return nil, nil, qerr
			}
			continue
		}
		for _, rec := range recs {
			recovered = append(recovered, walEntry{seq: seq, payload: rec})
		}
		fi, err := os.Stat(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		w.sealed = append(w.sealed, walSealed{seq: seq, path: path, size: fi.Size()})
	}

	// The newest segment is where a crash may legally have torn the tail
	// (mid-append) or even the header (mid-create). Both keep the valid
	// prefix of the WAL: the torn record was never acknowledged durable.
	last := seqs[len(seqs)-1]
	path := walSegPath(dir, last)
	active, recs, torn, err := tsfile.OpenSegmentAppend(path)
	switch {
	case err == nil && active.Header().Seq != last:
		active.Close()
		err = fmt.Errorf("%w: segment header seq %d under name seq %d", tsfile.ErrCorrupt, active.Header().Seq, last)
		fallthrough
	case errors.Is(err, tsfile.ErrCorrupt):
		fi, serr := os.Stat(path)
		if serr == nil && fi.Size() < tsfile.SegmentHeaderLen {
			// Torn creation: the rotation crash left a partial header and
			// nothing else. Recreate in place.
			if rerr := os.Remove(path); rerr != nil {
				return nil, nil, fmt.Errorf("wal: drop torn segment: %w", rerr)
			}
			w.warnings = append(w.warnings,
				fmt.Sprintf("wal segment %d: torn creation (partial header), recreated", last))
			w.tornTruncated++
		} else {
			// A full-size header that does not validate is corruption.
			if qerr := w.quarantineSegment(path, err); qerr != nil {
				return nil, nil, qerr
			}
		}
		active, err = tsfile.CreateSegment(walSegPath(dir, last), tsfile.SegmentHeader{Seq: last, Shards: uint32(numShards)})
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		recs, torn = nil, 0
	case err != nil:
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if torn > 0 {
		w.warnings = append(w.warnings,
			fmt.Sprintf("wal segment %d: torn tail, %d bytes truncated", last, torn))
		w.tornTruncated++
	}
	for _, rec := range recs {
		recovered = append(recovered, walEntry{seq: last, payload: rec})
	}
	w.active, w.activeSeq = active, last
	return w, recovered, nil
}

// quarantineSegment sets a corrupt segment aside as *.bad and records the
// degradation. The records it held are lost — exactly what the warning
// says — but everything before and after it still replays.
func (w *walog) quarantineSegment(path string, cause error) error {
	bad, err := uniqueBadPath(path)
	if err == nil {
		err = os.Rename(path, bad)
	}
	if err != nil {
		return fmt.Errorf("wal: quarantine %s: %w", filepath.Base(path), err)
	}
	w.quarantinedSeg++
	w.warnings = append(w.warnings,
		fmt.Sprintf("wal segment %s corrupt, set aside as %s: %v", filepath.Base(path), filepath.Base(bad), cause))
	return nil
}

// migrateLegacy folds a pre-segmentation monolithic "wal" file into the
// first segment. The migration is atomic (temp file + rename), so a crash
// either leaves the legacy file authoritative or the segment complete; a
// legacy file next to existing segments means the rename landed and only
// the cleanup remains.
func (w *walog) migrateLegacy(dir string, numShards int) error {
	legacy := filepath.Join(dir, "wal")
	data, err := os.ReadFile(legacy)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: migrate legacy: %w", err)
	}
	tmp := filepath.Join(dir, "wal.migrate.tmp")
	os.Remove(tmp) // stale leftover from an interrupted migration
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, ent := range entries {
		if _, ok := parseWALSegName(ent.Name()); ok {
			// Segments already exist: an earlier migration completed its
			// rename but crashed before removing the legacy file.
			return os.Remove(legacy)
		}
	}
	seg, err := tsfile.CreateSegment(tmp, tsfile.SegmentHeader{Seq: 1, Shards: uint32(numShards)})
	if err != nil {
		return fmt.Errorf("wal: migrate legacy: %w", err)
	}
	// Replaying the legacy bytes through the same framing the RecordLog
	// used: the valid prefix carries over, a torn legacy tail is dropped
	// exactly as OpenRecordLog would have dropped it.
	rest := data
	for len(rest) > 0 {
		payload, n := tsfile.ParseRecordFrame(rest)
		if n == 0 {
			break
		}
		if err := seg.Append(payload, false); err != nil {
			seg.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: migrate legacy: %w", err)
		}
		rest = rest[n:]
	}
	if err := seg.Sync(); err != nil {
		seg.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: migrate legacy: %w", err)
	}
	if err := seg.Close(); err != nil {
		return fmt.Errorf("wal: migrate legacy: %w", err)
	}
	if err := os.Rename(tmp, walSegPath(dir, 1)); err != nil {
		return fmt.Errorf("wal: migrate legacy: %w", err)
	}
	return os.Remove(legacy)
}

// totalBytes is the WAL's on-disk footprint (sealed + active).
func (w *walog) totalBytes() int64 {
	total := w.active.Size()
	for _, s := range w.sealed {
		total += s.size
	}
	return total
}

// --- engine integration -------------------------------------------------

// walRotateLocked seals the active segment and starts the next one. The
// seal fsyncs first: sealed segments must be fully durable so that a
// parse failure in one can only ever mean corruption. Caller holds walMu.
func (e *Engine) walRotateLocked() error {
	w := e.wal
	if err := e.step("wal.rotate"); err != nil {
		return err
	}
	if err := w.active.Sync(); err != nil {
		return err
	}
	next, err := tsfile.CreateSegment(walSegPath(w.dir, w.activeSeq+1),
		tsfile.SegmentHeader{Seq: w.activeSeq + 1, Shards: uint32(len(e.shards))})
	if err != nil {
		// The active segment is untouched and still appendable; rotation
		// simply retries on the next append.
		return err
	}
	old := w.active
	w.sealed = append(w.sealed, walSealed{seq: w.activeSeq, path: old.Path(), size: old.Size()})
	w.active = next
	w.activeSeq++
	w.rotations++
	return old.Close()
}

// walCheckpoint records that every earlier WAL record of shard shardIx is
// durable in chunk files: its pendingMin clears, and replay drops the
// shard's replayed memtable when it passes the record. Called at the end
// of a successful flush, still under the shard's lock, so no new write of
// the shard can slip between the flush and the checkpoint.
func (e *Engine) walCheckpoint(shardIx int) error {
	if e.wal == nil {
		return nil
	}
	if err := e.step("flush.walreset"); err != nil {
		return err
	}
	w := e.wal
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if err := w.active.Append(encodeCheckpoint(shardIx, len(e.shards), w.activeSeq), e.opts.SyncWAL); err != nil {
		return err
	}
	w.pendingMin[shardIx] = 0
	return nil
}

// walUnpin releases a delete's segment pin once the delete is durable in
// the mods sidecar (the WAL record is redundant from then on; replay only
// re-appends deletes missing from mods). On failure the pin is kept:
// conservative, the segment just retires later.
func (e *Engine) walUnpin(seq uint64) {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if n := e.wal.pins[seq]; n > 1 {
		e.wal.pins[seq] = n - 1
	} else {
		delete(e.wal.pins, seq)
	}
}

// maybeRetireWAL deletes every sealed segment no shard still needs: all
// segments strictly below the lowest pendingMin and the lowest pinned seq.
// Sealed segments are fully durable and their records all superseded by
// checkpoints, so retirement is a plain unlink — crash-safe at any point.
// When no shard has any unflushed record at all (and no delete is in
// flight), the active segment truncates back to its header too, restoring
// the old all-shards-flushed empty-WAL state: the check and the truncation
// share walMu with appends, so a concurrent writer either claimed its
// pendingMin first (truncation is skipped) or appends after it.
func (e *Engine) maybeRetireWAL() error {
	if e.wal == nil {
		return nil
	}
	w := e.wal
	e.walMu.Lock()
	defer e.walMu.Unlock()
	allClear := len(w.pins) == 0
	limit := w.activeSeq // retire seq < limit
	for _, pm := range w.pendingMin {
		if pm == 0 {
			continue
		}
		allClear = false
		if pm < limit {
			limit = pm
		}
	}
	for seq := range w.pins {
		if seq < limit {
			limit = seq
		}
	}
	cut := 0
	for cut < len(w.sealed) && w.sealed[cut].seq < limit {
		cut++
	}
	truncate := allClear && w.active.Size() > tsfile.SegmentHeaderLen
	if cut == 0 && !truncate {
		return nil
	}
	if err := e.step("wal.retire"); err != nil {
		return err
	}
	for _, s := range w.sealed[:cut] {
		if err := os.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("lsm: retire wal segment: %w", err)
		}
		w.retiredSegs++
		w.retiredBytes += s.size
	}
	w.sealed = append([]walSealed(nil), w.sealed[cut:]...)
	if truncate {
		w.retiredBytes += w.active.Size() - tsfile.SegmentHeaderLen
		return w.active.Truncate()
	}
	return nil
}

// walResetAll drops the entire WAL after a compaction made every record
// obsolete: sealed segments are unlinked and the active one truncates back
// to its header. Caller holds all shard locks.
func (e *Engine) walResetAll() error {
	w := e.wal
	e.walMu.Lock()
	defer e.walMu.Unlock()
	for _, s := range w.sealed {
		if err := os.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("lsm: reset wal segment: %w", err)
		}
		w.retiredSegs++
		w.retiredBytes += s.size
	}
	w.sealed = nil
	for i := range w.pendingMin {
		w.pendingMin[i] = 0
	}
	w.pins = make(map[uint64]int)
	return w.active.Truncate()
}
