// Stepindex reproduces Figures 8 and 9: the timestamp-position step
// pattern of a sensor chunk, the delta-of-timestamp statistics that drive
// the learned slope, and the fitted step regression function — including
// the exact chunk of Example 3.8 (K = 1/9000, splits at the published
// timestamps, f(first) = 1, f(last) = 1000).
package main

import (
	"fmt"

	"m4lsm/internal/stepreg"
	"m4lsm/internal/workload"
)

func main() {
	// The chunk of Example 3.8: 242 points at a 9s cadence, a gap, then
	// the cadence resumes so that point 1000 lands on the published
	// last timestamp.
	ts := make([]int64, 0, 1000)
	t := int64(1639966606000)
	for i := 1; i <= 242; i++ {
		ts = append(ts, t)
		t += 9000
	}
	ts = append(ts, 1639970675000)
	t = 1639972648000
	for i := 244; i <= 1000; i++ {
		ts = append(ts, t)
		t += 9000
	}

	ix := stepreg.Build(ts)
	fmt.Println("Example 3.8 chunk (1000 points, 9s cadence with one gap):")
	fmt.Printf("  learned slope K = 1/%.0f ms (Example 3.9: 1/9000)\n", 1/ix.Slope())
	fmt.Printf("  split timestamps S = %v\n", ix.Splits())
	fmt.Printf("  f(first) = %.2f, f(last) = %.2f (Proposition 3.7)\n",
		ix.Predict(ts[0]), ix.Predict(ts[len(ts)-1]))
	for _, s := range ix.Segments() {
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("  max position error on chunk: %d\n\n", ix.MaxErr())

	probes := []int64{ts[0], ts[241], ts[242], ts[500], ts[999], 1639970675000 + 1}
	for _, q := range probes {
		pos, ok := ix.FirstAfter(q - 1) // position of q itself if present
		fmt.Printf("  probe t=%d -> exists=%v firstAfter(pos)=%d,%v predict=%.1f\n",
			q, ix.Exists(q), pos, ok, ix.Predict(q))
	}

	// Figure 8 across the four dataset presets: the step shape differs by
	// dataset (regular high-rate vs. skewed with long level segments).
	fmt.Println("\nStep regressions over one 1000-point chunk per dataset preset:")
	for _, p := range workload.Presets() {
		data := p.Generate(1000, 42)
		dix := stepreg.Build(data.Times())
		fmt.Printf("  %-10s K=1/%-8.0f segments=%-3d maxErr=%d\n",
			p.Name, 1/dix.Slope(), len(dix.Segments()), dix.MaxErr())
	}
}
