package m4ql

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/series"
)

func TestParseM4Star(t *testing.T) {
	stmt, err := Parse(`SELECT M4(*) FROM root.kob WHERE time >= 0 AND time < 1000 GROUP BY SPANS(10) USING LSM`)
	if err != nil {
		t.Fatal(err)
	}
	want := Statement{
		Columns:  AllColumns(),
		SeriesID: "root.kob",
		Series:   []string{"root.kob"},
		Query:    m4.Query{Tqs: 0, Tqe: 1000, W: 10},
		Operator: OpLSM,
	}
	if !reflect.DeepEqual(stmt, want) {
		t.Fatalf("got %+v, want %+v", stmt, want)
	}
}

func TestParseColumnList(t *testing.T) {
	stmt, err := Parse(`select firsttime(v), topvalue(v) from "root.s 1" where TIME >= -5 and Time < 99 group by spans(3) using udf`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stmt.Columns, []Column{ColFirstTime, ColTopValue}) {
		t.Errorf("columns = %v", stmt.Columns)
	}
	if stmt.SeriesID != "root.s 1" || stmt.Operator != OpUDF {
		t.Errorf("stmt = %+v", stmt)
	}
	if stmt.Query.Tqs != -5 || stmt.Query.Tqe != 99 || stmt.Query.W != 3 {
		t.Errorf("query = %+v", stmt.Query)
	}
}

func TestParseAppendixForm(t *testing.T) {
	// The full eight-column SQL of Appendix A.1.
	q := `SELECT FirstTime(T), FirstValue(T), LastTime(T), LastValue(T),
	             BottomTime(T), BottomValue(T), TopTime(T), TopValue(T)
	      FROM root.sg.d1
	      WHERE time >= 100 AND time < 200 GROUP BY SPANS(4)`
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Columns) != 8 {
		t.Errorf("columns = %v", stmt.Columns)
	}
	if stmt.Operator != OpLSM {
		t.Error("default operator must be LSM")
	}
}

func TestParseRangeOrderIndependent(t *testing.T) {
	a, err := Parse(`SELECT M4(*) FROM s WHERE time < 10 AND time >= 2 GROUP BY SPANS(1)`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Query.Tqs != 2 || a.Query.Tqe != 10 {
		t.Errorf("query = %+v", a.Query)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT M4(*)`,
		`SELECT M4(x) FROM s WHERE time >= 0 AND time < 1 GROUP BY SPANS(1)`,
		`SELECT NOPE(v) FROM s WHERE time >= 0 AND time < 1 GROUP BY SPANS(1)`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time <= 1 GROUP BY SPANS(1)`,   // <= rejected
		`SELECT M4(*) FROM s WHERE time >= 0 AND time >= 1 GROUP BY SPANS(1)`,   // dup
		`SELECT M4(*) FROM s WHERE time >= 5 AND time < 5 GROUP BY SPANS(1)`,    // empty range
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 10 GROUP BY SPANS(0)`,   // w=0
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 10 GROUP BY SPANS(2) X`, // trailing
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 10 GROUP BY SPANS(2) USING TURBO`,
		`SELECT M4(*) FROM s WHERE time > 0 AND time < 10 GROUP BY SPANS(2)`, // lone >
		`SELECT M4(*) FROM 'unterminated WHERE time >= 0 AND time < 1 GROUP BY SPANS(1)`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestColumnString(t *testing.T) {
	if ColBottomValue.String() != "BottomValue" {
		t.Error(ColBottomValue.String())
	}
	if !strings.Contains(Column(99).String(), "99") {
		t.Error(Column(99).String())
	}
	if OpLSM.String() != "LSM" || OpUDF.String() != "UDF" {
		t.Error("operator names")
	}
}

func newEngine(t *testing.T) *lsm.Engine {
	t.Helper()
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestExecuteEndToEnd(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 100; i++ {
		if err := e.Write("root.s1", series.Point{T: int64(i * 10), V: float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"LSM", "UDF"} {
		res, err := Run(e, `SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 1000 GROUP BY SPANS(5) USING `+op)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("%s rows = %d, want 5", op, len(res.Rows))
		}
		if len(res.Columns) != 9 { // span + 8
			t.Fatalf("columns = %v", res.Columns)
		}
		// First row, first span: first point t=0 v=0, top value 6.
		row := res.Rows[0]
		if row[0] != 0 || row[1] != 0 || row[2] != 0 {
			t.Errorf("%s row0 = %v", op, row)
		}
		if res.Operator != op {
			t.Errorf("operator = %s", res.Operator)
		}
		if res.Text() == "" {
			t.Error("empty text rendering")
		}
	}
}

func TestExecuteOperatorsAgree(t *testing.T) {
	e := newEngine(t)
	// Out-of-order writes + deletes for a nontrivial state.
	for i := 99; i >= 0; i-- {
		e.Write("s", series.Point{T: int64(i * 5), V: float64((i * 13) % 31)})
	}
	e.Flush()
	e.Delete("s", 100, 150)
	e.Write("s", series.Point{T: 120, V: 500})
	e.Flush()
	lsmRes, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 500 GROUP BY SPANS(7) USING LSM`)
	if err != nil {
		t.Fatal(err)
	}
	udfRes, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 500 GROUP BY SPANS(7) USING UDF`)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsmRes.Rows) != len(udfRes.Rows) {
		t.Fatalf("row counts: %d vs %d", len(lsmRes.Rows), len(udfRes.Rows))
	}
	for i := range lsmRes.Rows {
		a, b := lsmRes.Rows[i], udfRes.Rows[i]
		// span, FirstTime/Value, LastTime/Value match exactly;
		// Bottom/Top compare by value only (columns 6 and 8).
		for _, j := range []int{0, 1, 2, 3, 4, 6, 8} {
			if a[j] != b[j] {
				t.Fatalf("row %d col %d (%s): %v vs %v", i, j, lsmRes.Columns[j], a[j], b[j])
			}
		}
	}
}

func TestExecuteEmptySpansOmitted(t *testing.T) {
	e := newEngine(t)
	e.Write("s", series.Point{T: 5, V: 1})
	e.Flush()
	res, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.SpanCount != 10 {
		t.Errorf("SpanCount = %d", res.SpanCount)
	}
}

func TestExecuteUnknownSeries(t *testing.T) {
	e := newEngine(t)
	res, err := Run(e, `SELECT M4(*) FROM nothing WHERE time >= 0 AND time < 10 GROUP BY SPANS(2)`)
	if err != nil {
		t.Fatal(err) // unknown series = empty result, like an empty table
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestResultJSON(t *testing.T) {
	e := newEngine(t)
	e.Write("s", series.Point{T: 1, V: 2})
	e.Flush()
	res, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 10 GROUP BY SPANS(1)`)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Rows, res.Rows) || !reflect.DeepEqual(back.Columns, res.Columns) {
		t.Error("JSON round trip lost data")
	}
}

func TestExplain(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 50; i++ {
		e.Write("s", series.Point{T: int64(i * 10), V: float64(i)})
	}
	e.Flush()
	stmt, err := Parse(`EXPLAIN SELECT M4(*) FROM s WHERE time >= 0 AND time < 500 GROUP BY SPANS(5) USING LSM`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Explain {
		t.Fatal("Explain flag not set")
	}
	text, err := Explain(e, stmt)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"merge free", "chunks pruned", "spans", "s"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
	// Run must reject EXPLAIN; RunAny must handle both.
	if _, err := Run(e, `EXPLAIN SELECT M4(*) FROM s WHERE time >= 0 AND time < 5 GROUP BY SPANS(1)`); err == nil {
		t.Error("Run accepted EXPLAIN")
	}
	res, explain, err := m4qlRunAny(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 500 GROUP BY SPANS(5)`)
	if err != nil || res == nil || explain != "" {
		t.Fatalf("RunAny plain: %v %q %v", res, explain, err)
	}
	res, explain, err = m4qlRunAny(e, `EXPLAIN SELECT M4(*) FROM s WHERE time >= 0 AND time < 500 GROUP BY SPANS(5) USING UDF`)
	if err != nil || res != nil || !strings.Contains(explain, "M4-UDF") {
		t.Fatalf("RunAny explain: %v %q %v", res, explain, err)
	}
}

// m4qlRunAny aliases RunAny for readability inside the test.
var m4qlRunAny = RunAny

func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tokens := []string{"SELECT", "M4", "(", ")", "*", ",", "FROM", "WHERE", "time",
		">=", "<", "AND", "GROUP", "BY", "SPANS", "USING", "LSM", "UDF", "EXPLAIN",
		"42", "-7", "'str", "x.y", "\x00", "<=", ">"}
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(12)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = tokens[rng.Intn(len(tokens))]
		}
		q := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", q, r)
				}
			}()
			Parse(q)
		}()
	}
}

func TestParseAggregates(t *testing.T) {
	stmt, err := Parse(`SELECT COUNT(v), AVG(v), MAX(v) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Columns) != 0 || len(stmt.Aggregates) != 3 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if stmt.Aggregates[0].String() != "count" || stmt.Aggregates[2].String() != "max" {
		t.Fatalf("aggregates = %v", stmt.Aggregates)
	}
	// Mixing families is rejected.
	if _, err := Parse(`SELECT COUNT(v), FirstTime(v) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`); err == nil {
		t.Error("mixed projection accepted")
	}
	if _, err := Parse(`SELECT FirstTime(v), COUNT(v) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`); err == nil {
		t.Error("mixed projection accepted (other order)")
	}
}

func TestExecuteAggregates(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 10; i++ {
		e.Write("s", series.Point{T: int64(i * 10), V: float64(i)})
	}
	e.Flush()
	res, err := Run(e, `SELECT COUNT(v), SUM(v), MIN(v), MAX(v) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(2)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Span 0: points 0..4 -> count 5, sum 10, min 0, max 4.
	if got := res.Rows[0]; got[1] != 5 || got[2] != 10 || got[3] != 0 || got[4] != 4 {
		t.Fatalf("row0 = %v", got)
	}
	if res.Columns[1] != "count" || res.Columns[4] != "max" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// An envelope-only query over a single span (the chunk is not split)
	// runs merge free: metadata answers it without loading.
	res2, err := Run(e, `SELECT MIN(v), MAX(v) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(1)`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.ChunksLoaded != 0 {
		t.Errorf("envelope aggregates loaded chunks: %+v", res2.Stats)
	}
	if res2.Rows[0][1] != 0 || res2.Rows[0][2] != 9 {
		t.Fatalf("envelope row = %v", res2.Rows[0])
	}
}

func TestParseParallelClause(t *testing.T) {
	for _, q := range []string{
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) PARALLEL 3`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) USING UDF PARALLEL 3`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) PARALLEL 3 USING UDF`,
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if stmt.Parallelism != 3 {
			t.Errorf("%s: parallelism = %d", q, stmt.Parallelism)
		}
	}
	if stmt, err := Parse(`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`); err != nil || stmt.Parallelism != 0 {
		t.Errorf("absent clause: stmt=%+v err=%v", stmt, err)
	}
	bad := []string{
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) PARALLEL 0`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) PARALLEL -2`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) PARALLEL`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) PARALLEL 2 PARALLEL 2`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) USING LSM USING LSM`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestExecuteParallelClause(t *testing.T) {
	e := newEngine(t)
	for i := 199; i >= 0; i-- {
		e.Write("s", series.Point{T: int64(i * 5), V: float64((i * 13) % 31)})
	}
	e.Flush()
	e.Delete("s", 200, 400)
	base, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(7) PARALLEL 1`)
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{`PARALLEL 4`, `USING UDF PARALLEL 4`} {
		res, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(7) `+suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Rows, base.Rows) {
			t.Errorf("%s: rows diverge from sequential LSM run", suffix)
		}
	}
	explain, err := Explain(e, mustParse(t, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(7) PARALLEL 4`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "parallel: 4 workers") {
		t.Errorf("explain missing parallel line:\n%s", explain)
	}
}

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

func TestParseMultiSeries(t *testing.T) {
	stmt := mustParse(t, `SELECT M4(*) FROM s1, s2, "s 3" WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`)
	if !reflect.DeepEqual(stmt.Series, []string{"s1", "s2", "s 3"}) {
		t.Fatalf("series = %v", stmt.Series)
	}
	if stmt.SeriesID != "s1" || !stmt.Multi() || stmt.Wildcard {
		t.Fatalf("stmt = %+v", stmt)
	}

	stmt = mustParse(t, `SELECT M4(*) FROM root.* WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`)
	if !stmt.Wildcard || stmt.WildcardPrefix != "root." || !stmt.Multi() {
		t.Fatalf("stmt = %+v", stmt)
	}
	stmt = mustParse(t, `SELECT M4(*) FROM * WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`)
	if !stmt.Wildcard || stmt.WildcardPrefix != "" {
		t.Fatalf("stmt = %+v", stmt)
	}

	bad := []string{
		`SELECT M4(*) FROM root.*, s2 WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`,
		`SELECT M4(*) FROM s1, root.* WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`,
		`SELECT M4(*) FROM s1, s1 WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`,
		`SELECT M4(*) FROM s1, WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestExecuteMultiSeries(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 60; i++ {
		e.Write("root.a", series.Point{T: int64(i * 10), V: float64(i % 5)})
		e.Write("root.b", series.Point{T: int64(i * 10), V: float64(i % 9)})
		e.Write("other", series.Point{T: int64(i * 10), V: 1})
	}
	e.Flush()
	for _, op := range []string{"LSM", "UDF"} {
		res, err := Run(e, `SELECT M4(*) FROM root.* WHERE time >= 0 AND time < 600 GROUP BY SPANS(4) USING `+op)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Series) != 2 || res.Series[0].SeriesID != "root.a" || res.Series[1].SeriesID != "root.b" {
			t.Fatalf("%s series = %+v", op, res.Series)
		}
		if res.Rows != nil {
			t.Errorf("%s top-level rows present in multi result", op)
		}
		// Each series' block must match its own single-series run.
		for _, sr := range res.Series {
			single, err := Run(e, `SELECT M4(*) FROM "`+sr.SeriesID+`" WHERE time >= 0 AND time < 600 GROUP BY SPANS(4) USING `+op)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sr.Rows, single.Rows) {
				t.Errorf("%s %s rows diverge from single-series run", op, sr.SeriesID)
			}
		}
		if res.Text() == "" {
			t.Error("empty text rendering")
		}
	}
	// Explicit list preserves FROM order.
	res, err := Run(e, `SELECT M4(*) FROM root.b, root.a WHERE time >= 0 AND time < 600 GROUP BY SPANS(4)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 || res.Series[0].SeriesID != "root.b" {
		t.Fatalf("series = %+v", res.Series)
	}
	// Empty wildcard match is an empty result, not an error.
	res, err = Run(e, `SELECT M4(*) FROM nothing.* WHERE time >= 0 AND time < 600 GROUP BY SPANS(4)`)
	if err != nil || len(res.Series) != 0 {
		t.Fatalf("empty wildcard: %+v %v", res, err)
	}
}

func TestExecuteMultiSeriesAggregates(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 20; i++ {
		e.Write("root.a", series.Point{T: int64(i * 10), V: float64(i)})
		e.Write("root.b", series.Point{T: int64(i * 10), V: float64(-i)})
	}
	e.Flush()
	res, err := Run(e, `SELECT COUNT(v), MIN(v) FROM root.* WHERE time >= 0 AND time < 200 GROUP BY SPANS(2)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %+v", res.Series)
	}
	if got := res.Series[0].Rows[0]; got[1] != 10 || got[2] != 0 {
		t.Fatalf("root.a row0 = %v", got)
	}
	if got := res.Series[1].Rows[1]; got[1] != 10 || got[2] != -19 {
		t.Fatalf("root.b row1 = %v", got)
	}
}

func TestExplainMultiSeries(t *testing.T) {
	e := newEngine(t)
	e.Write("root.a", series.Point{T: 1, V: 1})
	e.Write("root.b", series.Point{T: 1, V: 2})
	e.Flush()
	text, err := Explain(e, mustParse(t, `SELECT M4(*) FROM root.* WHERE time >= 0 AND time < 10 GROUP BY SPANS(1)`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "root.* (2 matched)") {
		t.Errorf("explain output:\n%s", text)
	}
}
