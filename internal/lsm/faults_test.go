package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"m4lsm/internal/faultfs"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/tsfile"
)

// TestUniqueBadSuffix: recovery must never overwrite an earlier quarantine
// file — it may be the only copy of data an operator wants to salvage.
func TestUniqueBadSuffix(t *testing.T) {
	dir := t.TempDir()
	// Crash after the chunk file lands but before the WAL reset, so the
	// data exists both in the (soon corrupted) file and in the WAL.
	crash := errors.New("test crash")
	e, err := Open(Options{Dir: dir, SyncWAL: true, StepHook: func(site string) error {
		if site == "flush.walreset" {
			return crash
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write("s1", pts(10, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); !errors.Is(err, crash) {
		t.Fatalf("flush = %v, want injected crash", err)
	}
	e.Kill()
	files, _ := filepath.Glob(filepath.Join(dir, "*.tsf"))
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
	// An earlier crash already quarantined a file under the default name.
	prior := []byte("salvageable bytes from a previous crash")
	if err := os.WriteFile(files[0]+".bad", prior, 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncate the live file so this open quarantines it too.
	raw, _ := os.ReadFile(files[0])
	if err := os.WriteFile(files[0], raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := os.ReadFile(files[0] + ".bad")
	if err != nil || !reflect.DeepEqual(got, prior) {
		t.Errorf("prior quarantine file overwritten (err=%v)", err)
	}
	if _, err := os.Stat(files[0] + ".bad.1"); err != nil {
		t.Errorf("new quarantine file missing: %v", err)
	}
	if n := e2.Info().BadFiles; n != 2 {
		t.Errorf("BadFiles = %d, want 2", n)
	}
	// WAL recovery still has the data.
	snap, err := e2.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := materialize(t, snap, series.TimeRange{Start: 0, End: 100}); !reflect.DeepEqual(got, series.Series(pts(10, 1))) {
		t.Errorf("recovered %v", got)
	}
}

// buildFaultStore flushes several chunks of one series and returns the
// expected merged data.
func buildFaultStore(t *testing.T, dir string) series.Series {
	t.Helper()
	e, err := Open(Options{Dir: dir, FlushThreshold: 10, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	var want series.Series
	for i := int64(0); i < 60; i++ {
		p := series.Point{T: i * 2, V: float64(i % 17)}
		want = append(want, p)
		if err := e.Write("s", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestQueryQuarantineCorruptChunk corrupts one chunk's value block on disk
// (footer and times stay valid), then checks the full degradation path: the
// lenient query succeeds with a warning, the engine quarantines the chunk,
// later snapshots exclude it, and compaction clears the quarantine.
func TestQueryQuarantineCorruptChunk(t *testing.T) {
	dir := t.TempDir()
	buildFaultStore(t, dir)

	// Flip one byte inside the first chunk's value block of the first file.
	files, _ := filepath.Glob(filepath.Join(dir, "*.tsf"))
	if len(files) == 0 {
		t.Fatal("no chunk files")
	}
	r, err := tsfile.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	meta := r.Metas()[0]
	r.Close()
	raw, _ := os.ReadFile(files[0])
	raw[meta.Offset+meta.HeaderLen+meta.TimesLen] ^= 0x40
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	q := m4.Query{Tqs: 0, Tqe: 120, W: 6}
	snap, err := e.Snapshot("s", q.Range())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m4udf.Compute(snap, q); err != nil {
		t.Fatalf("lenient query over corrupt chunk failed: %v", err)
	}
	if snap.Warnings.Len() == 0 {
		t.Fatal("no warning for dropped chunk")
	}
	if n := e.Info().QuarantinedChunks; n != 1 {
		t.Fatalf("QuarantinedChunks = %d, want 1", n)
	}

	// The next snapshot excludes the chunk up front, with a warning.
	snap2, err := e.Snapshot("s", q.Range())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Chunks) != len(snap.Chunks)-1 {
		t.Errorf("chunks = %d, want %d", len(snap2.Chunks), len(snap.Chunks)-1)
	}
	if snap2.Warnings.Len() != 1 || !strings.Contains(snap2.Warnings.List()[0], "quarantined") {
		t.Errorf("warnings = %v", snap2.Warnings.List())
	}

	// A strict query over the degraded snapshot must fail, not skip.
	snap3, _ := e.Snapshot("s", q.Range())
	if _, err := m4lsm.ComputeWithOptions(snap3, q, m4lsm.Options{Strict: true}); err == nil && snap3.Warnings.Len() == 0 {
		t.Error("strict query silently succeeded over corrupt chunk")
	}

	// Compaction rewrites the store from readable chunks; the quarantine
	// entries refer to a retired generation and are dropped.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := e.Info().QuarantinedChunks; n != 0 {
		t.Errorf("QuarantinedChunks after compact = %d, want 0", n)
	}
	snap4, err := e.Snapshot("s", q.Range())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m4lsm.ComputeWithOptions(snap4, q, m4lsm.Options{Strict: true}); err != nil {
		t.Errorf("strict query after compact: %v", err)
	}
}

// TestTransientFaultsNotQuarantined: injected read errors (I/O hiccups) must
// degrade the query but stay retryable — no quarantine entry, and a later
// fault-free query sees the full data.
func TestTransientFaultsNotQuarantined(t *testing.T) {
	dir := t.TempDir()
	want := buildFaultStore(t, dir)

	inj := faultfs.NewInjector(faultfs.Config{Seed: 7, ErrRate: 1})
	faulty := true
	e, err := Open(Options{Dir: dir, WrapSource: func(src storage.ChunkSource) storage.ChunkSource {
		wrapped := faultfs.Wrap(src, inj)
		return sourceFunc{
			read:  func(m storage.ChunkMeta) (series.Series, error) { return pick(faulty, wrapped, src).ReadChunk(m) },
			times: func(m storage.ChunkMeta) ([]int64, error) { return pick(faulty, wrapped, src).ReadTimes(m) },
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	full := series.TimeRange{Start: 0, End: 1 << 20}
	snap, err := e.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	q := m4.Query{Tqs: 0, Tqe: 120, W: 6}
	if _, err := m4udf.Compute(snap, q); err != nil {
		t.Fatalf("lenient query: %v", err)
	}
	if snap.Warnings.Len() == 0 {
		t.Fatal("every read faults but no warnings")
	}
	if n := e.Info().QuarantinedChunks; n != 0 {
		t.Fatalf("transient faults quarantined %d chunks", n)
	}
	// The fault "clears" (e.g. the disk recovers): the same engine must now
	// serve everything.
	faulty = false
	snap2, err := e.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	if got := materialize(t, snap2, full); !reflect.DeepEqual(got, want) {
		t.Errorf("data lost after transient faults: got %d points, want %d", len(got), len(want))
	}
	if snap2.Warnings.Len() != 0 {
		t.Errorf("warnings on clean snapshot: %v", snap2.Warnings.List())
	}
}

type sourceFunc struct {
	read  func(storage.ChunkMeta) (series.Series, error)
	times func(storage.ChunkMeta) ([]int64, error)
}

func (s sourceFunc) ReadChunk(m storage.ChunkMeta) (series.Series, error) { return s.read(m) }
func (s sourceFunc) ReadTimes(m storage.ChunkMeta) ([]int64, error)       { return s.times(m) }

func pick(faulty bool, a, b storage.ChunkSource) storage.ChunkSource {
	if faulty {
		return a
	}
	return b
}

// TestFaultMatrix sweeps seeds and fault rates over the whole query path:
// lenient queries must never fail or hang, results without warnings must
// equal the clean reference, and strict queries must either fail with the
// injected fault or return the exact reference — never a silent partial.
func TestFaultMatrix(t *testing.T) {
	dir := t.TempDir()
	buildFaultStore(t, dir)
	q := m4.Query{Tqs: 0, Tqe: 120, W: 6}

	clean, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := clean.Snapshot("s", q.Range())
	if err != nil {
		t.Fatal(err)
	}
	want, err := m4lsm.Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	clean.Close()

	for seed := int64(0); seed < 8; seed++ {
		for _, rate := range []float64{0.05, 0.25, 0.6} {
			inj := faultfs.NewInjector(faultfs.Config{
				Seed: seed, ErrRate: rate / 2, FlipRate: rate / 2, Latency: 1,
			})
			e, err := Open(Options{Dir: dir, WrapSource: func(src storage.ChunkSource) storage.ChunkSource {
				s := faultfs.Wrap(src, inj)
				s.CorruptErr = tsfile.ErrCorrupt
				return s
			}})
			if err != nil {
				t.Fatal(err)
			}
			for name, run := range map[string]func(*storage.Snapshot) ([]m4.Aggregate, error){
				"m4lsm": func(s *storage.Snapshot) ([]m4.Aggregate, error) {
					return m4lsm.ComputeWithOptions(s, q, m4lsm.Options{Parallelism: 4})
				},
				"m4udf": func(s *storage.Snapshot) ([]m4.Aggregate, error) {
					return m4udf.ComputeWithOptions(s, q, m4udf.Options{Parallelism: 4})
				},
				"m4lsm/strict": func(s *storage.Snapshot) ([]m4.Aggregate, error) {
					return m4lsm.ComputeWithOptions(s, q, m4lsm.Options{Parallelism: 4, Strict: true})
				},
			} {
				snap, err := e.Snapshot("s", q.Range())
				if err != nil {
					t.Fatal(err)
				}
				aggs, err := run(snap)
				strict := strings.HasSuffix(name, "strict")
				if err != nil {
					if !strict {
						t.Fatalf("seed %d rate %g: lenient %s failed: %v", seed, rate, name, err)
					}
					if !errors.Is(err, faultfs.ErrInjected) && !errors.Is(err, tsfile.ErrCorrupt) {
						t.Fatalf("seed %d rate %g: strict error is not the injected fault: %v", seed, rate, err)
					}
					continue
				}
				// A result with zero warnings (none inherited from the
				// quarantine at snapshot time, none added by the run) claims
				// to be complete — it must be the exact answer.
				if snap.Warnings.Len() == 0 {
					for i := range want {
						if !m4.Equivalent(aggs[i], want[i]) {
							t.Fatalf("seed %d rate %g: %s span %d: silently wrong: got %v, want %v",
								seed, rate, name, i, aggs[i], want[i])
						}
					}
				}
			}
			e.Close()
		}
	}
}

// TestTornWALTail: a crash mid-append leaves a partial record at the WAL
// tail; reopen must recover every complete record and drop the tail.
func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write("s1", pts(10, 1, 20, 2)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("s1", 20, 25); err != nil {
		t.Fatal(err)
	}
	e.Kill() // no flush: everything lives in the WAL

	walPath := walSegPath(dir, 1) // the active (and only) WAL segment
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x09, 0x01, 0x02}); err != nil { // length 9, 2 bytes present
		t.Fatal(err)
	}
	f.Close()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer e2.Close()
	snap, err := e2.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	if !reflect.DeepEqual(got, series.Series(pts(10, 1))) {
		t.Errorf("recovered %v, want [(10,1)]", got)
	}
	// The truncation must be operator-visible, not silent.
	info := e2.Info()
	if info.WALTornTruncations != 1 {
		t.Errorf("WALTornTruncations = %d, want 1", info.WALTornTruncations)
	}
	if len(info.WALWarnings) != 1 || !strings.Contains(info.WALWarnings[0], "torn tail") {
		t.Errorf("WALWarnings = %q, want one torn-tail warning", info.WALWarnings)
	}
}

// TestStepHookSiteNames documents the contract that step sites are stable
// strings a StepInjector can count on.
func TestStepHookSiteNames(t *testing.T) {
	dir := t.TempDir()
	var sites []string
	e, err := Open(Options{Dir: dir, StepHook: func(site string) error {
		sites = append(sites, site)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write("s", pts(1, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{"wal.append", "wal.group", "wal.appended", "flush.create:000000.seq.tsf",
		"flush.chunk:000000.seq.tsf", "flush.footer:000000.seq.tsf",
		"flush.reopen:000000.seq.tsf", "pyramid.rebuild", "flush.walreset",
		"wal.retire", "pyramid.save"}
	if fmt.Sprint(sites) != fmt.Sprint(want) {
		t.Errorf("sites = %v, want %v", sites, want)
	}
}
