package m4lsm

import (
	"math/rand"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/testutil"
)

// buildSnapshot assembles a snapshot from explicit chunks keyed by version.
func buildSnapshot(t *testing.T, chunks map[storage.Version]series.Series, dels []storage.Delete) *storage.Snapshot {
	t.Helper()
	src := storage.NewMemSource()
	stats := &storage.Stats{}
	snap := &storage.Snapshot{SeriesID: "s", Stats: stats, Deletes: dels}
	// Deterministic order: ascending version.
	vers := make([]storage.Version, 0, len(chunks))
	for v := range chunks {
		vers = append(vers, v)
	}
	for i := range vers {
		for j := i + 1; j < len(vers); j++ {
			if vers[j] < vers[i] {
				vers[i], vers[j] = vers[j], vers[i]
			}
		}
	}
	for _, ver := range vers {
		meta, err := src.AddChunk("s", ver, chunks[ver])
		if err != nil {
			t.Fatal(err)
		}
		snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, src, stats))
	}
	return snap
}

// reference computes M4 aggregates over the naive merged series.
func reference(t *testing.T, snap *storage.Snapshot, q m4.Query) []m4.Aggregate {
	t.Helper()
	merged, err := testutil.NaiveMerge(snap, q.Range())
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := m4.ComputeSeries(q, merged)
	if err != nil {
		t.Fatal(err)
	}
	return aggs
}

func assertEquivalent(t *testing.T, got, want []m4.Aggregate, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d spans, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if !m4.Equivalent(got[i], want[i]) {
			t.Fatalf("%s: span %d:\n got %v\nwant %v", ctx, i, got[i], want[i])
		}
	}
}

func TestSingleChunkSingleSpan(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 3}, {T: 20, V: 8}, {T: 30, V: 1}, {T: 40, V: 5}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	want := reference(t, snap, q) // loads chunks; reset stats before the operator runs
	snap.Stats.Reset()
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, want, "single chunk")
	// The chunk lies fully inside the span with no deletes: metadata must
	// answer everything without loading (merge-free fast path).
	if snap.Stats.ChunksLoaded != 0 || snap.Stats.TimeBlocksLoaded != 0 {
		t.Errorf("fast path loaded chunks: %v", snap.Stats)
	}
	if snap.Stats.ChunksPruned != 1 {
		t.Errorf("ChunksPruned = %d, want 1", snap.Stats.ChunksPruned)
	}
}

func TestFigure2TopPointFromMetadata(t *testing.T) {
	// Fig. 2(c): TP(T_i) answered as TP(C1) straight from metadata even
	// though chunks overlap, because TP(C1) is the max and is latest.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 15, V: 9}, {T: 20, V: 2}},
		2: {{T: 12, V: 4}, {T: 22, V: 5}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 30, W: 1}
	want := reference(t, snap, q)
	snap.Stats.Reset()
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Top.V != 9 {
		t.Errorf("top = %v, want value 9", got[0].Top)
	}
	// Candidate t=15 overlaps C2's interval [12,22], so one existence
	// probe on C2's timestamps is needed, but no full chunk load.
	if snap.Stats.ChunksLoaded != 0 {
		t.Errorf("full loads = %d, want 0 (merge free)", snap.Stats.ChunksLoaded)
	}
	if snap.Stats.TimeBlocksLoaded == 0 || snap.Stats.IndexProbes == 0 {
		t.Errorf("expected partial load + index probe, got %v", snap.Stats)
	}
	assertEquivalent(t, got, want, "figure 2c")
}

func TestExample32FirstPointLazyLoad(t *testing.T) {
	// Figure 7(a) / Example 3.2: G = FP, C'' = {C1, C2, C4}, D = {D3}.
	// FP(C2) is the earliest candidate but D3 deletes the head of C1 and
	// C2; FP(C4) is the answer and C1, C2 are never loaded.
	c1 := series.Series{{T: 12, V: 2}, {T: 30, V: 3}}
	c2 := series.Series{{T: 10, V: 1}, {T: 28, V: 2}}
	c4 := series.Series{{T: 18, V: 5}, {T: 40, V: 4}}
	d3 := storage.Delete{SeriesID: "s", Version: 3, Start: 0, End: 15}
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: c1, 2: c2, 4: c4}, []storage.Delete{d3})
	q := m4.Query{Tqs: 0, Tqe: 50, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].First != (series.Point{T: 18, V: 5}) {
		t.Errorf("first = %v, want FP(C4) = (18, 5)", got[0].First)
	}
	assertEquivalent(t, got, reference(t, snap, q), "example 3.2")
}

func TestExample34TopPointOverwritten(t *testing.T) {
	// Figure 7(b) / Example 3.4: TP(C3) is overwritten by a later chunk;
	// the remaining metadata candidate TP(C1) is the answer.
	c1 := series.Series{{T: 10, V: 8}, {T: 20, V: 2}}
	c3 := series.Series{{T: 30, V: 9}, {T: 40, V: 1}}
	c4 := series.Series{{T: 30, V: 3}, {T: 50, V: 2}} // overwrites t=30
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: c1, 3: c3, 4: c4}, nil)
	q := m4.Query{Tqs: 0, Tqe: 60, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Top.V != 8 {
		t.Errorf("top = %v, want TP(C1) with value 8", got[0].Top)
	}
	assertEquivalent(t, got, reference(t, snap, q), "example 3.4")
}

func TestDeleteMakesSpanEmpty(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 20, V: 2}},
	}, []storage.Delete{{SeriesID: "s", Version: 2, Start: 0, End: 100}})
	q := m4.Query{Tqs: 0, Tqe: 100, W: 2}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got {
		if !a.Empty {
			t.Errorf("span %d = %v, want empty", i, a)
		}
	}
}

func TestSpanSplitChunk(t *testing.T) {
	// One chunk split across two spans: the operator must load it to
	// recompute per-span extremes.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 5}, {T: 20, V: 1}, {T: 60, V: 9}, {T: 70, V: 2}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 100, W: 2} // spans [0,50) and [50,100)
	want := reference(t, snap, q)
	snap.Stats.Reset()
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, want, "split chunk")
	if got[0].Bottom.V != 1 || got[0].Top.V != 5 {
		t.Errorf("span0 = %v", got[0])
	}
	if got[1].Bottom.V != 2 || got[1].Top.V != 9 {
		t.Errorf("span1 = %v", got[1])
	}
	if snap.Stats.ChunksLoaded != 1 {
		t.Errorf("loads = %d, want 1 (split chunk loaded once, shared across spans)", snap.Stats.ChunksLoaded)
	}
}

func TestEmptyQueryRangePortions(t *testing.T) {
	// Spans beyond the data and W larger than the range length.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 5, V: 1}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 4, W: 8} // data outside range; zero-width spans
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got {
		if !a.Empty {
			t.Errorf("span %d non-empty: %v", i, a)
		}
	}
}

func TestInvalidQuery(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: {{T: 5, V: 1}}}, nil)
	if _, err := Compute(snap, m4.Query{Tqs: 0, Tqe: 10, W: 0}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestOverwriteSameTimestampValueMatters(t *testing.T) {
	// FP's value must come from the latest version at the minimal time.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 20, V: 2}},
		2: {{T: 10, V: 7}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].First != (series.Point{T: 10, V: 7}) {
		t.Errorf("first = %v, want overwritten value (10, 7)", got[0].First)
	}
	assertEquivalent(t, got, reference(t, snap, q), "overwrite FP")
}

func TestDeletedTopThenRewritten(t *testing.T) {
	// v1 has the global top at t=15; D2 deletes it; v3 rewrites t=15 with
	// a smaller value. TP must fall back correctly.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 3}, {T: 15, V: 9}, {T: 20, V: 4}},
		3: {{T: 15, V: 1}},
	}, []storage.Delete{{SeriesID: "s", Version: 2, Start: 15, End: 15}})
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, reference(t, snap, q), "deleted top rewritten")
	if got[0].Top.V != 4 {
		t.Errorf("top = %v, want 4", got[0].Top)
	}
}

func TestBottomOverwrittenByDeletedPoint(t *testing.T) {
	// Definition 2.7 subtlety: C2 overwrites C1's bottom at t=10, and
	// C2's own point at t=10 is deleted by D3. The timestamp vanishes
	// entirely; the bottom is elsewhere.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: -5}, {T: 20, V: 2}},
		2: {{T: 10, V: 8}},
	}, []storage.Delete{{SeriesID: "s", Version: 3, Start: 10, End: 10}})
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, reference(t, snap, q), "overwritten by deleted point")
	if got[0].Bottom.V != 2 || got[0].First.T != 20 {
		t.Errorf("aggregate = %v", got[0])
	}
}

func TestManySpansRegularData(t *testing.T) {
	var data series.Series
	for i := 0; i < 1000; i++ {
		data = append(data, series.Point{T: int64(i) * 10, V: float64((i * 7) % 101)})
	}
	// Four non-overlapping chunks of 250 points each.
	chunks := map[storage.Version]series.Series{}
	for c := 0; c < 4; c++ {
		chunks[storage.Version(c+1)] = data[c*250 : (c+1)*250]
	}
	snap := buildSnapshot(t, chunks, nil)
	q := m4.Query{Tqs: 0, Tqe: 10000, W: 37}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, reference(t, snap, q), "regular data")
}

func randomQuery(rng *rand.Rand) m4.Query {
	start := rng.Int63n(80)
	return m4.Query{
		Tqs: start,
		Tqe: start + 1 + rng.Int63n(80),
		W:   1 + rng.Intn(12),
	}
}

// TestEquivalenceProperty is the central invariant of the reproduction:
// for arbitrary chunk/delete states and arbitrary queries, M4-LSM must be
// visually equivalent to M4 over the merged series.
func TestEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 1500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := testutil.RandomSnapshot(rng, testutil.DefaultGenConfig)
		q := randomQuery(rng)
		want := reference(t, snap, q)
		got, err := Compute(snap, q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d spans, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if !m4.Equivalent(got[i], want[i]) {
				t.Fatalf("seed %d q=%+v span %d:\n got %v\nwant %v", seed, q, i, got[i], want[i])
			}
		}
	}
}

// TestEquivalenceAgainstUDF cross-checks the two operators directly.
func TestEquivalenceAgainstUDF(t *testing.T) {
	for seed := int64(5000); seed < 5300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := testutil.RandomSnapshot(rng, testutil.DefaultGenConfig)
		q := randomQuery(rng)
		udf, err := m4udf.Compute(snap, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Compute(snap, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !m4.Equivalent(got[i], udf[i]) {
				t.Fatalf("seed %d span %d: lsm %v, udf %v", seed, i, got[i], udf[i])
			}
		}
	}
}

// TestEquivalenceDeleteHeavy stresses the delete verification paths.
func TestEquivalenceDeleteHeavy(t *testing.T) {
	cfg := testutil.GenConfig{
		MaxChunks:      4,
		MaxChunkPoints: 12,
		MaxDeletes:     10,
		TimeHorizon:    60,
		ValueRange:     8,
	}
	for seed := int64(0); seed < 800; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := testutil.RandomSnapshot(rng, cfg)
		q := m4.Query{Tqs: 0, Tqe: 60, W: 1 + rng.Intn(6)}
		want := reference(t, snap, q)
		got, err := Compute(snap, q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range got {
			if !m4.Equivalent(got[i], want[i]) {
				t.Fatalf("seed %d span %d:\n got %v\nwant %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestEquivalenceOverwriteHeavy stresses overwrite verification: few
// distinct timestamps, many chunks.
func TestEquivalenceOverwriteHeavy(t *testing.T) {
	cfg := testutil.GenConfig{
		MaxChunks:      8,
		MaxChunkPoints: 10,
		MaxDeletes:     2,
		TimeHorizon:    16, // heavy timestamp collisions
		ValueRange:     8,
	}
	for seed := int64(0); seed < 800; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := testutil.RandomSnapshot(rng, cfg)
		q := m4.Query{Tqs: 0, Tqe: 16, W: 1 + rng.Intn(4)}
		want := reference(t, snap, q)
		got, err := Compute(snap, q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range got {
			if !m4.Equivalent(got[i], want[i]) {
				t.Fatalf("seed %d span %d:\n got %v\nwant %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestOptionsEquivalence checks every ablation configuration returns the
// same result.
func TestOptionsEquivalence(t *testing.T) {
	variants := []Options{
		{},
		{DisableStepIndex: true},
		{EagerLoad: true},
		{DisablePartialLoad: true},
		{DisableStepIndex: true, EagerLoad: true, DisablePartialLoad: true},
	}
	for seed := int64(100); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := testutil.RandomSnapshot(rng, testutil.DefaultGenConfig)
		q := randomQuery(rng)
		want := reference(t, snap, q)
		for vi, opts := range variants {
			got, err := ComputeWithOptions(snap, q, opts)
			if err != nil {
				t.Fatalf("seed %d variant %d: %v", seed, vi, err)
			}
			for i := range got {
				if !m4.Equivalent(got[i], want[i]) {
					t.Fatalf("seed %d variant %d span %d:\n got %v\nwant %v",
						seed, vi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMergeFreePruningOnDisjointChunks(t *testing.T) {
	// Ten disjoint chunks, w=10 spans aligned so each chunk sits in one
	// span: no loads at all.
	chunks := map[storage.Version]series.Series{}
	for c := 0; c < 10; c++ {
		base := int64(c * 100)
		chunks[storage.Version(c+1)] = series.Series{
			{T: base + 10, V: 1}, {T: base + 50, V: 5}, {T: base + 90, V: 3},
		}
	}
	snap := buildSnapshot(t, chunks, nil)
	q := m4.Query{Tqs: 0, Tqe: 1000, W: 10}
	want := reference(t, snap, q)
	snap.Stats.Reset()
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, want, "disjoint chunks")
	if snap.Stats.ChunksLoaded != 0 || snap.Stats.TimeBlocksLoaded != 0 {
		t.Errorf("loads happened on disjoint aligned chunks: %v", snap.Stats)
	}
	if snap.Stats.ChunksPruned != 10 {
		t.Errorf("pruned = %d, want 10", snap.Stats.ChunksPruned)
	}
}

func TestEagerLoadLoadsEverything(t *testing.T) {
	chunks := map[storage.Version]series.Series{
		1: {{T: 10, V: 1}}, 2: {{T: 110, V: 2}},
	}
	snap := buildSnapshot(t, chunks, nil)
	q := m4.Query{Tqs: 0, Tqe: 200, W: 2}
	if _, err := ComputeWithOptions(snap, q, Options{EagerLoad: true}); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.ChunksLoaded != 2 {
		t.Errorf("eager loads = %d, want 2", snap.Stats.ChunksLoaded)
	}
}

func TestPartialLoadPreferredForProbes(t *testing.T) {
	// Overlapping chunks force existence probes; the default options must
	// use timestamp-only loads for them.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 15, V: 9}, {T: 20, V: 2}},
		2: {{T: 12, V: 4}, {T: 22, V: 5}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 30, W: 1}
	if _, err := Compute(snap, q); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.TimeBlocksLoaded == 0 {
		t.Error("no partial loads despite overlap probes")
	}
	partialBytes := snap.Stats.BytesRead

	snap2 := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 15, V: 9}, {T: 20, V: 2}},
		2: {{T: 12, V: 4}, {T: 22, V: 5}},
	}, nil)
	if _, err := ComputeWithOptions(snap2, q, Options{DisablePartialLoad: true}); err != nil {
		t.Fatal(err)
	}
	if snap2.Stats.BytesRead <= partialBytes {
		t.Errorf("full-load ablation read %d bytes, partial read %d; want more",
			snap2.Stats.BytesRead, partialBytes)
	}
}

func TestStatsRoundsCounted(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: {{T: 10, V: 1}}}, nil)
	q := m4.Query{Tqs: 0, Tqe: 20, W: 1}
	if _, err := Compute(snap, q); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.CandidateRounds < 4 {
		t.Errorf("rounds = %d, want >= 4 (one per G)", snap.Stats.CandidateRounds)
	}
}

func TestNilStatsSnapshot(t *testing.T) {
	src := storage.NewMemSource()
	meta, err := src.AddChunk("s", 1, series.Series{{T: 10, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	snap := &storage.Snapshot{
		SeriesID: "s",
		Chunks:   []storage.ChunkRef{storage.NewChunkRef(meta, src, nil)},
	}
	got, err := Compute(snap, m4.Query{Tqs: 0, Tqe: 20, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Empty {
		t.Error("span empty")
	}
}
