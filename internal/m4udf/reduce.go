package m4udf

import (
	"context"
	"time"

	"m4lsm/internal/m4"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/obs"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Reduce answers a representation query the baseline way with default
// options.
func Reduce(snap *storage.Snapshot, q m4.Query, spec reprops.Spec) (series.Series, error) {
	return ReduceContext(context.Background(), snap, q, spec, Options{})
}

// ReduceContext answers one representation query the way a UDF would:
// merge every chunk into the full series (loads fanned across
// Options.Parallelism workers, Strict/Budget semantics as in ComputeContext)
// and run the reference reduction from reprops over the merged points.
// Chunk metadata is never consulted, for any operator — this is the
// baseline the LSM-native ReduceContext is differentially tested against.
func ReduceContext(ctx context.Context, snap *storage.Snapshot, q m4.Query, spec reprops.Spec, opts Options) (series.Series, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	tr := obs.TraceOf(ctx)
	met := obs.NewOperatorMetrics(opts.Metrics, "udf")
	instrumented := tr != nil || met != nil
	var start time.Time
	var statsBefore storage.Stats
	if instrumented {
		start = time.Now()
		if snap.Stats != nil {
			statsBefore = snap.Stats.Load()
		}
	}
	loaded, err := mergeread.LoadContext(ctx, snap, mergeread.LoadOptions{Parallelism: opts.Parallelism, Strict: opts.Strict, Budget: opts.Budget})
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if instrumented {
		t0 = time.Now()
	}
	it := loaded.Iterator(q.Range())
	var s series.Series
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		s = append(s, p)
	}
	out, err := reprops.Reduce(spec, q, s)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if instrumented {
		d := time.Since(t0)
		tr.Task(0, "reduce", d)
		met.RecordTask(d)
		var delta storage.Stats
		if snap.Stats != nil {
			delta = snap.Stats.Load().Sub(statsBefore)
		}
		met.RecordQuery(time.Since(start), delta.ChunksLoaded, delta.ChunksPruned,
			delta.TimeBlocksLoaded, delta.PointsDecoded, delta.CacheHits)
		tr.SetCounters(delta.Map())
	}
	return out, nil
}
