package m4lsm

import (
	"reflect"
	"sync"
	"testing"
)

// buildConcurrencyDB loads an out-of-order state with overwrites and a
// delete, the storage shape where M4-LSM does real verification work.
func buildConcurrencyDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db := openDB(t, append([]Option{WithFlushThreshold(64)}, opts...)...)
	for i := 499; i >= 0; i-- {
		if err := db.Write("s", Point{Time: int64(i * 2), Value: float64((i * 13) % 41)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 100; i < 200; i++ { // overwrite a slice of the range
		if err := db.Write("s", Point{Time: int64(i * 2), Value: -float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("s", 300, 420); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestConcurrentM4ThroughCache fires many DB.M4 calls at once through the
// shared chunk cache: every goroutine must see the reference result, and
// the shared LRU plus the per-query singleflight gates must survive -race.
func TestConcurrentM4ThroughCache(t *testing.T) {
	db := buildConcurrencyDB(t, WithChunkCache(1<<20))

	want, _, err := db.M4WithOptions("s", 0, 1000, 37, M4Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	results := make([][]Aggregate, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			// Mix operators and parallelism so cached and uncached loads,
			// sequential and pooled execution all interleave.
			opts := M4Options{Parallelism: 1 + g%4}
			if g%3 == 0 {
				opts.Operator = OperatorUDF
			}
			results[g], _, errs[g] = db.M4WithOptions("s", 0, 1000, 37, opts)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(results[g], want) {
			t.Fatalf("goroutine %d: result diverges from reference", g)
		}
	}
}

// TestParallelismKnobPublic checks the public knob end to end: byte-equal
// aggregates and identical chunk-load counts at every setting, for both
// operators.
func TestParallelismKnobPublic(t *testing.T) {
	db := buildConcurrencyDB(t)
	for _, op := range []Operator{OperatorLSM, OperatorUDF} {
		want, wantStats, err := db.M4WithOptions("s", 0, 1000, 53, M4Options{Operator: op, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{0, 2, 4, 8} {
			got, stats, err := db.M4WithOptions("s", 0, 1000, 53, M4Options{Operator: op, Parallelism: par})
			if err != nil {
				t.Fatalf("op %v par %d: %v", op, par, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("op %v par %d: aggregates diverge from sequential", op, par)
			}
			if stats.ChunksLoaded != wantStats.ChunksLoaded {
				t.Fatalf("op %v par %d: ChunksLoaded = %d, sequential loaded %d",
					op, par, stats.ChunksLoaded, wantStats.ChunksLoaded)
			}
		}
	}
}
