// Package cache provides a byte-bounded LRU for decoded chunk columns and
// a ChunkSource decorator that serves repeated reads from memory. Real
// deployments put such a cache under visualization queries because
// interactive pan/zoom re-reads the same chunks; the paper's experiments
// run cold (every query pays I/O), so the engine leaves the cache off
// unless configured.
//
// Cost accounting: storage.Stats counts logical loads (what the operator
// asked for); the cache keeps its own hit/miss counters so experiments can
// report both.
package cache

import (
	"container/list"
	"sync"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// kind discriminates cached column sets.
type kind uint8

const (
	kindTimes kind = iota
	kindData
)

type key struct {
	seriesID string
	version  storage.Version
	k        kind
}

type entry struct {
	key   key
	size  int64
	times []int64
	data  series.Series
}

// LRU is a thread-safe byte-bounded least-recently-used cache shared by
// every chunk source of an engine.
type LRU struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	ll       *list.List // front = most recent
	items    map[key]*list.Element

	hits, misses, evictions int64
}

// NewLRU builds a cache bounded to capBytes of decoded column data
// (approximated as 16 bytes per cached point, 8 for timestamp-only
// entries). capBytes <= 0 disables caching entirely.
func NewLRU(capBytes int64) *LRU {
	return &LRU{capBytes: capBytes, ll: list.New(), items: map[key]*list.Element{}}
}

func (c *LRU) get(k key) (*entry, bool) {
	if c == nil || c.capBytes <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry), true
}

func (c *LRU) put(e *entry) {
	if c == nil || c.capBytes <= 0 || e.size > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		c.used += e.size - el.Value.(*entry).size
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[e.key] = c.ll.PushFront(e)
		c.used += e.size
	}
	for c.used > c.capBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, victim.key)
		c.used -= victim.size
		c.evictions++
	}
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits, Misses int64
	Evictions    int64
	UsedBytes    int64
	Entries      int
}

// Stats returns a snapshot of the counters.
func (c *LRU) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, UsedBytes: c.used, Entries: len(c.items)}
}

// Source decorates a ChunkSource with the shared LRU.
type Source struct {
	inner storage.ChunkSource
	lru   *LRU
}

// Wrap returns a caching view of src. A nil or zero-capacity LRU passes
// reads straight through.
func Wrap(src storage.ChunkSource, lru *LRU) *Source {
	return &Source{inner: src, lru: lru}
}

// ReadChunk implements storage.ChunkSource.
func (s *Source) ReadChunk(meta storage.ChunkMeta) (series.Series, error) {
	data, _, err := s.ReadChunkCached(meta)
	return data, err
}

// ReadChunkCached implements storage.CachedSource: ReadChunk plus a
// served-from-cache flag, letting ChunkRef attribute hits to the query.
func (s *Source) ReadChunkCached(meta storage.ChunkMeta) (series.Series, bool, error) {
	k := key{meta.SeriesID, meta.Version, kindData}
	if e, ok := s.lru.get(k); ok {
		return e.data, true, nil
	}
	data, err := s.inner.ReadChunk(meta)
	if err != nil {
		return nil, false, err
	}
	s.lru.put(&entry{key: k, size: int64(len(data)) * 16, data: data})
	return data, false, nil
}

// ReadTimes implements storage.ChunkSource. A cached full chunk also
// serves timestamp reads.
func (s *Source) ReadTimes(meta storage.ChunkMeta) ([]int64, error) {
	ts, _, err := s.ReadTimesCached(meta)
	return ts, err
}

// ReadTimesCached implements storage.CachedSource.
func (s *Source) ReadTimesCached(meta storage.ChunkMeta) ([]int64, bool, error) {
	if e, ok := s.lru.get(key{meta.SeriesID, meta.Version, kindData}); ok {
		return e.data.Times(), true, nil
	}
	k := key{meta.SeriesID, meta.Version, kindTimes}
	if e, ok := s.lru.get(k); ok {
		return e.times, true, nil
	}
	ts, err := s.inner.ReadTimes(meta)
	if err != nil {
		return nil, false, err
	}
	s.lru.put(&entry{key: k, size: int64(len(ts)) * 8, times: ts})
	return ts, false, nil
}

var _ storage.CachedSource = (*Source)(nil)
