// Package viz rasterizes time series into two-color (binary) line charts,
// the rendering model under which M4 is error-free (§1, Fig. 1). It exists
// to validate that claim end-to-end: rasterizing the M4-reduced series must
// produce the identical bitmap to rasterizing the full series, pixel for
// pixel, as long as the number of M4 spans equals the pixel width.
//
// The x mapping is the span mapping of Definition 2.3 (every point of span
// i lands in pixel column i); intra-column line segments therefore render
// as vertical runs, which is exactly the regime in which first/last/bottom/
// top points preserve every lit pixel.
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"strings"

	"m4lsm/internal/series"
)

// Canvas is a binary pixel grid; (0,0) is the top-left corner.
type Canvas struct {
	W, H int
	bits []uint64
}

// NewCanvas allocates a cleared canvas. It panics on non-positive
// dimensions, which are always a programming error.
func NewCanvas(w, h int) *Canvas {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("viz: invalid canvas %dx%d", w, h))
	}
	return &Canvas{W: w, H: h, bits: make([]uint64, (w*h+63)/64)}
}

// Set lights the pixel at (x, y); out-of-bounds coordinates are ignored.
func (c *Canvas) Set(x, y int) {
	if x < 0 || x >= c.W || y < 0 || y >= c.H {
		return
	}
	i := y*c.W + x
	c.bits[i/64] |= 1 << (i % 64)
}

// Get reports whether the pixel at (x, y) is lit.
func (c *Canvas) Get(x, y int) bool {
	if x < 0 || x >= c.W || y < 0 || y >= c.H {
		return false
	}
	i := y*c.W + x
	return c.bits[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of lit pixels.
func (c *Canvas) Count() int {
	n := 0
	for _, w := range c.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// DrawLine lights the pixels of the segment from (x0,y0) to (x1,y1) with
// Bresenham's algorithm (no anti-aliasing: two-color charts).
func (c *Canvas) DrawLine(x0, y0, x1, y1 int) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		c.Set(x0, y0)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Diff counts pixels that differ between two canvases of equal size; it is
// the pixel-error metric of the evaluation. It panics on size mismatch.
func Diff(a, b *Canvas) int {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("viz: diff of %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	n := 0
	for i := range a.bits {
		for w := a.bits[i] ^ b.bits[i]; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ASCII renders the canvas with '#' for lit pixels, one row per line.
func (c *Canvas) ASCII() string {
	var sb strings.Builder
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.Get(x, y) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WritePNG encodes the canvas as a black-on-white PNG.
func (c *Canvas) WritePNG(w io.Writer) error {
	img := image.NewGray(image.Rect(0, 0, c.W, c.H))
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.Get(x, y) {
				img.SetGray(x, y, color.Gray{Y: 0})
			} else {
				img.SetGray(x, y, color.Gray{Y: 255})
			}
		}
	}
	return png.Encode(w, img)
}

// Viewport maps data coordinates to pixels: the half-open time range
// [Tqs, Tqe) across the width and the closed value range [VMin, VMax]
// across the height.
type Viewport struct {
	Tqs, Tqe   int64
	VMin, VMax float64
}

// ViewportFor derives a viewport from the series' own bounds over a query
// range.
func ViewportFor(s series.Series, tqs, tqe int64) Viewport {
	vp := Viewport{Tqs: tqs, Tqe: tqe, VMin: math.Inf(1), VMax: math.Inf(-1)}
	for _, p := range s {
		if p.T < tqs || p.T >= tqe {
			continue
		}
		vp.VMin = math.Min(vp.VMin, p.V)
		vp.VMax = math.Max(vp.VMax, p.V)
	}
	if vp.VMin > vp.VMax { // no points in range
		vp.VMin, vp.VMax = 0, 1
	}
	return vp
}

// ViewportForAll derives one shared viewport spanning the value bounds of
// several series over a query range, so overlaid charts share a y-axis.
func ViewportForAll(ss []series.Series, tqs, tqe int64) Viewport {
	vp := Viewport{Tqs: tqs, Tqe: tqe, VMin: math.Inf(1), VMax: math.Inf(-1)}
	for _, s := range ss {
		for _, p := range s {
			if p.T < tqs || p.T >= tqe {
				continue
			}
			vp.VMin = math.Min(vp.VMin, p.V)
			vp.VMax = math.Max(vp.VMax, p.V)
		}
	}
	if vp.VMin > vp.VMax { // no points in range
		vp.VMin, vp.VMax = 0, 1
	}
	return vp
}

// X maps a timestamp to its pixel column using the span mapping of
// Definition 2.3.
func (vp Viewport) X(t int64, w int) int {
	return int(int64(w) * (t - vp.Tqs) / (vp.Tqe - vp.Tqs))
}

// Y maps a value to its pixel row (0 at the top).
func (vp Viewport) Y(v float64, h int) int {
	if vp.VMax == vp.VMin {
		return h / 2
	}
	y := int(math.Round((vp.VMax - v) / (vp.VMax - vp.VMin) * float64(h-1)))
	if y < 0 {
		y = 0
	}
	if y >= h {
		y = h - 1
	}
	return y
}

// Rasterize draws the line chart of s (which must be sorted by time)
// within the viewport onto a fresh w×h canvas. Consecutive in-range points
// are connected; points outside the time range are skipped entirely, so
// the chart matches what an M4 query over [Tqs, Tqe) represents.
func Rasterize(s series.Series, vp Viewport, w, h int) *Canvas {
	c := NewCanvas(w, h)
	RasterizeOnto(c, s, vp)
	return c
}

// RasterizeOnto draws s into an existing canvas, for overlaying several
// series (a multi-series render) on one shared viewport.
func RasterizeOnto(c *Canvas, s series.Series, vp Viewport) {
	w, h := c.W, c.H
	havePrev := false
	var px, py int
	for _, p := range s {
		if p.T < vp.Tqs || p.T >= vp.Tqe {
			continue
		}
		x, y := vp.X(p.T, w), vp.Y(p.V, h)
		if havePrev {
			c.DrawLine(px, py, x, y)
		} else {
			c.Set(x, y)
		}
		px, py, havePrev = x, y, true
	}
}
