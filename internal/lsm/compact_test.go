package lsm

import (
	"math/rand"
	"reflect"
	"testing"

	"m4lsm/internal/series"
)

func TestCompactMergesOverlaps(t *testing.T) {
	e := openTestEngine(t, Options{FlushThreshold: 4})
	e.Write("s1", pts(10, 1, 30, 3, 50, 5, 70, 7)...) // chunk 1
	e.Write("s1", pts(20, 2, 40, 4, 60, 6, 80, 8)...) // overlapping chunk 2
	e.Delete("s1", 40, 45)
	before, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 1000})
	wantData := materialize(t, before, series.TimeRange{Start: 0, End: 1000})

	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 1000})
	// 7 surviving points at chunk size 4 -> 2 chunks, non-overlapping.
	if len(snap.Chunks) != 2 {
		t.Fatalf("chunks = %d", len(snap.Chunks))
	}
	if snap.Chunks[0].Meta.Last.T >= snap.Chunks[1].Meta.First.T {
		t.Error("compacted chunks overlap")
	}
	if len(snap.Deletes) != 0 {
		t.Errorf("deletes = %v, want folded in", snap.Deletes)
	}
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 1000})
	if !reflect.DeepEqual(got, wantData) {
		t.Fatalf("data changed by compaction:\n got %v\nwant %v", got, wantData)
	}
	if e.Info().Files != 1 {
		t.Errorf("files = %d, want 1", e.Info().Files)
	}
}

func TestCompactIncludesMemtable(t *testing.T) {
	e := openTestEngine(t, Options{})
	e.Write("s1", pts(10, 1)...)
	e.Flush()
	e.Write("s1", pts(20, 2)...) // still in memtable
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	if !reflect.DeepEqual(got, series.Series(pts(10, 1, 20, 2))) {
		t.Fatalf("got %v", got)
	}
}

func TestCompactEmptyEngine(t *testing.T) {
	e := openTestEngine(t, Options{})
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.Info().Files != 0 {
		t.Errorf("files = %d", e.Info().Files)
	}
}

func TestCompactEverythingDeleted(t *testing.T) {
	e := openTestEngine(t, Options{})
	e.Write("s1", pts(10, 1, 20, 2)...)
	e.Flush()
	e.Delete("s1", 0, 100)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 1000})
	if len(snap.Chunks) != 0 || len(snap.Deletes) != 0 {
		t.Errorf("snapshot after compacting deleted series: %d chunks, %d deletes",
			len(snap.Chunks), len(snap.Deletes))
	}
}

func TestCompactMultipleSeries(t *testing.T) {
	e := openTestEngine(t, Options{FlushThreshold: 2})
	e.Write("a", pts(10, 1, 20, 2)...)
	e.Write("b", pts(15, 5, 25, 6)...)
	e.Write("a", pts(10, 9)...) // overwrite
	e.Flush()
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	snapA, _ := e.Snapshot("a", series.TimeRange{Start: 0, End: 100})
	gotA := materialize(t, snapA, series.TimeRange{Start: 0, End: 100})
	if !reflect.DeepEqual(gotA, series.Series(pts(10, 9, 20, 2))) {
		t.Fatalf("a = %v", gotA)
	}
	snapB, _ := e.Snapshot("b", series.TimeRange{Start: 0, End: 100})
	gotB := materialize(t, snapB, series.TimeRange{Start: 0, End: 100})
	if !reflect.DeepEqual(gotB, series.Series(pts(15, 5, 25, 6))) {
		t.Fatalf("b = %v", gotB)
	}
}

func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(Options{Dir: dir})
	e.Write("s1", pts(10, 1, 20, 2)...)
	e.Flush()
	e.Delete("s1", 20, 20)
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	snap, _ := e2.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	if !reflect.DeepEqual(got, series.Series(pts(10, 1))) {
		t.Fatalf("got %v", got)
	}
	if n := e2.Info().Deletes; n != 0 {
		t.Errorf("deletes after reopen = %d", n)
	}
}

func TestCompactRandomizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := openTestEngine(t, Options{FlushThreshold: 8})
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				n := 1 + rng.Intn(6)
				batch := make([]series.Point, n)
				for i := range batch {
					batch[i] = series.Point{T: rng.Int63n(200), V: float64(rng.Intn(50))}
				}
				e.Write("s", series.SortDedup(batch)...)
			case 2:
				e.Flush()
			case 3:
				start := rng.Int63n(200)
				e.Delete("s", start, start+rng.Int63n(30))
			}
		}
		r := series.TimeRange{Start: 0, End: 200}
		before, _ := e.Snapshot("s", r)
		want := materialize(t, before, r)
		if err := e.Compact(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		after, _ := e.Snapshot("s", r)
		got := materialize(t, after, r)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: compaction changed data:\n got %v\nwant %v", seed, got, want)
		}
	}
}

func TestCompactClosedEngine(t *testing.T) {
	e, _ := Open(Options{Dir: t.TempDir()})
	e.Close()
	if err := e.Compact(); err == nil {
		t.Error("Compact on closed engine accepted")
	}
}

func TestSnapshotSurvivesCompaction(t *testing.T) {
	e := openTestEngine(t, Options{FlushThreshold: 4})
	e.Write("s", pts(10, 1, 20, 2, 30, 3, 40, 4)...)
	snap, err := e.Snapshot("s", series.TimeRange{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	// The pre-compaction snapshot must still be readable: its chunk file
	// is unlinked but the handle is retired, not closed.
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	if !reflect.DeepEqual(got, series.Series(pts(10, 1, 20, 2, 30, 3, 40, 4))) {
		t.Fatalf("snapshot after compaction: %v", got)
	}
}
