// M4 rollup pyramid: per-series FP/LP/BP/TP aggregates precomputed at
// power-of-two cell widths, so a width-w query resolves from ~O(w) cells
// plus exact computation on the two boundary fragments of each span,
// independent of how many raw points the range holds.
//
// Layout. Cells live at absolute power-of-two alignment: at level L a cell
// with index i covers the half-open interval [i<<L, (i+1)<<L). Alignment is
// global (not relative to the series), so cells stay valid when the data
// extent grows and when a directory reopens under a different shard count.
// Each series keeps a contiguous run of levels; the base (finest) level is
// chosen so the series' extent needs at most pyrMaxBaseCells cells, and
// every coarser level is derived from its children without touching data.
//
// Invalidation. The engine never edits cells on the write path. Instead it
// maintains, per series, a set of stale time ranges with one invariant:
// at any instant, data not yet reflected in the cells is covered by a stale
// range. Write, Delete, WAL replay, manifest-watermark validation and chunk
// quarantine all add stale ranges before (or atomically with) making the
// change visible; only a rebuild — at the end of a flush or compaction,
// when the shard's memtable is empty and sh.chunks plus the mods sidecar
// are exactly the merged truth — clears them, and only the ranges it
// actually re-read. A query snapshot considers a cell usable iff it is
// covered and overlaps no stale range.
//
// Crash safety. The whole pyramid persists as one manifest (pyramid.pyr),
// written atomically (tmp + fsync + rename) after rebuilds, carrying a
// version watermark captured from the engine's version counter BEFORE the
// state snapshot. On reopen, any chunk or delete with Version >= watermark
// is conservatively re-marked stale, and WAL replay marks replayed ranges
// stale, so a crash anywhere between "chunks durable" and "manifest saved"
// only costs rebuild work, never correctness. A missing or corrupt manifest
// degrades to marking every flushed chunk stale.
package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"m4lsm/internal/encoding"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

const (
	pyramidFileName = "pyramid.pyr"
	// pyrMaxBaseCells bounds how many base-level cells one series' extent
	// may need; the base level is coarsened (and finer levels dropped) when
	// the extent outgrows it.
	pyrMaxBaseCells = 1 << 14
	// pyrMaxLevels bounds the levels kept per series.
	pyrMaxLevels = 18
	// pyrMaxPlanCells bounds the per-span decomposition; a span needing
	// more cells (badly fragmented coverage) falls back to chunk reads.
	pyrMaxPlanCells = 64
)

var pyrMagic = []byte{'M', '4', 'P', 'Y', 0x01}

// errPyrCorrupt reports an unreadable pyramid manifest; the manifest is
// discarded and every flushed chunk re-marked stale.
var errPyrCorrupt = errors.New("lsm: corrupt pyramid manifest")

// rng is a half-open interval [lo, hi) with lo < hi.
type rng struct{ lo, hi int64 }

// rset is a sorted, disjoint, coalesced set of half-open int64 intervals.
// It serves both as a set of time ranges (staleness) and as a set of cell
// indexes (level coverage).
type rset []rng

func (s rset) clone() rset {
	if len(s) == 0 {
		return nil
	}
	return append(rset(nil), s...)
}

// add unions [lo, hi) into the set, coalescing adjacent and overlapping
// ranges.
func (s *rset) add(lo, hi int64) {
	if hi <= lo {
		return
	}
	t := *s
	i := sort.Search(len(t), func(i int) bool { return t[i].hi >= lo })
	j := i
	for j < len(t) && t[j].lo <= hi {
		if t[j].lo < lo {
			lo = t[j].lo
		}
		if t[j].hi > hi {
			hi = t[j].hi
		}
		j++
	}
	out := append(t[:i:i], rng{lo, hi})
	*s = append(out, t[j:]...)
}

// overlaps reports whether any range intersects [lo, hi).
func (s rset) overlaps(lo, hi int64) bool {
	if hi <= lo {
		return false
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].hi > lo })
	return i < len(s) && s[i].lo < hi
}

// contains reports whether [lo, hi) is entirely covered. The set is
// coalesced, so containment means one range covers it.
func (s rset) contains(lo, hi int64) bool {
	if hi <= lo {
		return true
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].hi >= hi })
	return i < len(s) && s[i].lo <= lo
}

// subtract returns s minus o as a fresh set.
func (s rset) subtract(o rset) rset {
	var out rset
	j := 0
	for _, r := range s {
		lo := r.lo
		for lo < r.hi {
			for j < len(o) && o[j].hi <= lo {
				j++
			}
			if j == len(o) || o[j].lo >= r.hi {
				out = append(out, rng{lo, r.hi})
				break
			}
			if o[j].lo > lo {
				out = append(out, rng{lo, o[j].lo})
			}
			lo = o[j].hi
		}
	}
	return out
}

// intersect clips the set to [lo, hi).
func (s rset) intersect(lo, hi int64) rset {
	var out rset
	for _, r := range s {
		l, h := r.lo, r.hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		if l < h {
			out = append(out, rng{l, h})
		}
	}
	return out
}

// size returns the total length covered.
func (s rset) size() int64 {
	var n int64
	for _, r := range s {
		n += r.hi - r.lo
	}
	return n
}

// pyrCell is one non-empty precomputed cell: the four representation points
// of the merged series restricted to the cell's interval. Empty cells are
// represented by absence from the level's map.
type pyrCell struct {
	first, last, bottom, top series.Point
}

// observe folds one point (arriving in time order) into the cell.
func (c *pyrCell) observe(p series.Point, init bool) {
	if init {
		*c = pyrCell{first: p, last: p, bottom: p, top: p}
		return
	}
	c.last = p
	if p.V < c.bottom.V {
		c.bottom = p
	}
	if p.V > c.top.V {
		c.top = p
	}
}

// combineCells merges two cells of adjacent intervals, a before b in time.
// Value ties keep the earlier point, matching m4.Aggregate.Observe.
func combineCells(a, b pyrCell) pyrCell {
	out := a
	out.last = b.last
	if b.bottom.V < out.bottom.V {
		out.bottom = b.bottom
	}
	if b.top.V > out.top.V {
		out.top = b.top
	}
	return out
}

// pyrLevel is one resolution of one series: cells of width 1<<log at
// absolute alignment (cell i covers [i<<log, (i+1)<<log)).
type pyrLevel struct {
	log   uint
	cells map[int64]pyrCell
	// cover holds the cell-index ranges whose contents are known (cells
	// absent from the map inside cover are known-empty).
	cover rset
	// gen counts mutations; snapshot views capture it and refuse cells
	// from a level rebuilt after the snapshot was taken.
	gen uint64
}

// seriesPyramid is the cells and bookkeeping of one series.
type seriesPyramid struct {
	// stale is the set of time ranges whose cells may not reflect the
	// current merged data. See the package comment for the invariant.
	stale rset
	// levels is a contiguous run sorted by ascending log; empty until the
	// first rebuild.
	levels []*pyrLevel
	// minT/maxT track the observed data extent (from chunk metadata).
	minT, maxT int64
	hasExtent  bool
}

func (sp *seriesPyramid) level(log uint) *pyrLevel {
	for _, lv := range sp.levels {
		if lv.log == log {
			return lv
		}
	}
	return nil
}

// pyramid is the engine-wide rollup store. It is keyed by series id — not
// by shard — so reopening a directory under a different NumShards keeps
// the manifest valid. Its mutex nests inside shard locks (rebuild and
// markStale run under sh.mu) and is never held across I/O.
type pyramid struct {
	mu     sync.RWMutex
	series map[string]*seriesPyramid
	// dirty records cell changes since the last successful save. Stale-set
	// changes alone don't set it: the manifest watermark re-derives any
	// post-save staleness on reopen.
	dirty bool

	// saveMu serializes manifest writes.
	saveMu sync.Mutex

	invalidations atomic.Int64 // markStale calls
	rebuilds      atomic.Int64 // per-series rebuilds completed
	rebuildErrors atomic.Int64 // rebuild reads that failed (left stale)
	saves         atomic.Int64 // manifests written
	saveErrors    atomic.Int64
}

func newPyramid() *pyramid {
	return &pyramid{series: make(map[string]*seriesPyramid)}
}

// cellFloor / cellCeil align t down/up to a multiple of 1<<log. Right
// shifts on negative values floor-divide, so absolute alignment works for
// any int64 timestamp.
func cellFloor(t int64, log uint) int64 { return (t >> log) << log }

func cellCeil(t int64, log uint) int64 {
	return ((t + int64(1)<<log - 1) >> log) << log
}

// pyrLevelBounds picks the level range for a data extent: the finest level
// whose cell count over the extent fits pyrMaxBaseCells, up to the coarsest
// level whose cells are no wider than the extent.
func pyrLevelBounds(minT, maxT int64) (lmin, lmax uint) {
	width := uint64(maxT) - uint64(minT) + 1
	for lmin < 62 && width>>lmin > pyrMaxBaseCells {
		lmin++
	}
	lmax = lmin
	for lmax < 62 && lmax-lmin+1 < pyrMaxLevels && uint64(1)<<(lmax+1) <= width {
		lmax++
	}
	return lmin, lmax
}

// pyrMarkStale records that the merged contents of the half-open range
// [start, end) of seriesID may have changed. Safe to over-mark: staleness
// only forces fallback and rebuild work, never wrong answers.
func (e *Engine) pyrMarkStale(seriesID string, start, end int64) {
	p := e.pyr
	if p == nil || end <= start {
		return
	}
	p.mu.Lock()
	sp := p.series[seriesID]
	if sp == nil {
		sp = &seriesPyramid{}
		p.series[seriesID] = sp
	}
	sp.stale.add(start, end)
	p.mu.Unlock()
	p.invalidations.Add(1)
}

// pyrMarkStaleClosed marks the closed range [start, end] stale (the shape
// deletes use), clamping the +1 at the int64 edge.
func (e *Engine) pyrMarkStaleClosed(seriesID string, start, end int64) {
	if end == math.MaxInt64 {
		e.pyrMarkStale(seriesID, start, end)
		return
	}
	e.pyrMarkStale(seriesID, start, end+1)
}

// pyrMarkStalePoints marks the time extent of a write batch stale. Called
// under the owning shard's lock, before the points land in the memtable.
func (e *Engine) pyrMarkStalePoints(seriesID string, pts []series.Point) {
	if e.pyr == nil || len(pts) == 0 {
		return
	}
	lo, hi := pts[0].T, pts[0].T
	for _, p := range pts[1:] {
		if p.T < lo {
			lo = p.T
		}
		if p.T > hi {
			hi = p.T
		}
	}
	e.pyrMarkStaleClosed(seriesID, lo, hi)
}

// pyrRebuildShard rebuilds the stale cells of every series owned by sh.
// Called at the end of a flush or compaction with sh.mu held and the
// shard's memtable empty, so sh.chunks plus the mods sidecar are exactly
// the merged state the cells must reflect. Only the StepHook (fault
// injection) can fail it; read errors leave the affected series stale for
// the next rebuild.
func (e *Engine) pyrRebuildShard(sh *shard) error {
	p := e.pyr
	if p == nil {
		return nil
	}
	ix := 0
	for i, s := range e.shards {
		if s == sh {
			ix = i
			break
		}
	}
	p.mu.RLock()
	var ids []string
	for id, sp := range p.series {
		if len(sp.stale) > 0 && shardIndex(id, len(e.shards)) == ix {
			ids = append(ids, id)
		}
	}
	p.mu.RUnlock()
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := e.step("pyramid.rebuild"); err != nil {
			return err
		}
		e.pyrRebuildSeries(sh, id)
	}
	return nil
}

// pyrRebuildSeries re-reads the stale ranges of one series and patches its
// cells bottom-up: the base level from a merged read of the expanded stale
// ranges, every coarser level derived from its children. Caller holds
// sh.mu; the pyramid mutex is taken only around in-memory snapshots and the
// final apply, never across the read.
func (e *Engine) pyrRebuildSeries(sh *shard, id string) {
	p := e.pyr

	p.mu.RLock()
	sp := p.series[id]
	if sp == nil || len(sp.stale) == 0 {
		p.mu.RUnlock()
		return
	}
	staleCopy := sp.stale.clone()
	oldLmin, hadLevels := uint(0), false
	if len(sp.levels) > 0 {
		oldLmin, hadLevels = sp.levels[0].log, true
	}
	p.mu.RUnlock()

	// Extent and live chunk set from the registered metadata (the memtable
	// is empty). Quarantined chunks are invisible to queries, so they are
	// invisible to cells too; their ranges were marked stale on quarantine.
	var live []chunkEntry
	var minT, maxT int64
	has := false
	e.quarMu.Lock()
	for _, ce := range sh.chunks[id] {
		if _, bad := e.quarantined[chunkID{ce.meta.SeriesID, ce.meta.Version}]; bad {
			continue
		}
		live = append(live, ce)
		if !has {
			minT, maxT, has = ce.meta.First.T, ce.meta.Last.T, true
		} else {
			if ce.meta.First.T < minT {
				minT = ce.meta.First.T
			}
			if ce.meta.Last.T > maxT {
				maxT = ce.meta.Last.T
			}
		}
	}
	e.quarMu.Unlock()

	if !has {
		// No live flushed data: drop the cells. Stale ranges marked while
		// we looked (concurrent quarantines) survive the subtract.
		p.mu.Lock()
		if cur := p.series[id]; cur != nil {
			cur.levels = nil
			cur.hasExtent = false
			cur.stale = cur.stale.subtract(staleCopy)
			if len(cur.stale) == 0 {
				delete(p.series, id)
			}
			p.dirty = true
		}
		p.mu.Unlock()
		p.rebuilds.Add(1)
		return
	}

	// The base level never gets finer: absolute alignment keeps coarse
	// cells valid when the extent shrinks, and re-fining would force a
	// full rebuild for no query-cost win.
	lmin, lmax := pyrLevelBounds(minT, maxT)
	if hadLevels && oldLmin > lmin {
		lmin = oldLmin
	}
	if lmax < lmin {
		lmax = lmin
	}
	if lmax-lmin+1 > pyrMaxLevels {
		lmax = lmin + pyrMaxLevels - 1
	}

	// Expand the stale ranges to base-cell alignment, clipped to the
	// extent (padded one cell so edge cells rebuild whole): data outside
	// the extent does not exist, and coverage there would be wasted.
	base := lmin
	clipLo, clipHi := cellFloor(minT, base), cellCeil(maxT+1, base)
	var rebuildT rset
	for _, r := range staleCopy.intersect(clipLo, clipHi) {
		rebuildT.add(cellFloor(r.lo, base), cellCeil(r.hi, base))
	}

	// Merged read of each rebuild range through the same machinery queries
	// use, so cells inherit the exact merge/delete semantics.
	type baseBuild struct {
		idxLo, idxHi int64
		cells        map[int64]pyrCell
	}
	deletes := e.modsLog().ForSeries(id)
	builds := make([]baseBuild, 0, len(rebuildT))
	for _, r := range rebuildT {
		tr := series.TimeRange{Start: r.lo, End: r.hi}
		snap := &storage.Snapshot{SeriesID: id, Stats: &storage.Stats{}}
		for _, ce := range live {
			if ce.meta.OverlapsRange(tr) {
				snap.Chunks = append(snap.Chunks, storage.NewChunkRef(ce.meta, ce.src, snap.Stats))
			}
		}
		for _, d := range deletes {
			if d.Start < tr.End && d.End >= tr.Start {
				snap.Deletes = append(snap.Deletes, d)
			}
		}
		pts, err := mergeread.Merge(snap, tr)
		if err != nil {
			// Leave every stale range in place; the next flush retries.
			p.rebuildErrors.Add(1)
			return
		}
		cells := make(map[int64]pyrCell, len(pts)/2+1)
		for _, pt := range pts {
			idx := pt.T >> base
			c, ok := cells[idx]
			c.observe(pt, !ok)
			cells[idx] = c
		}
		builds = append(builds, baseBuild{idxLo: r.lo >> base, idxHi: r.hi >> base, cells: cells})
	}

	// Apply: restructure levels, patch the base, derive coarser levels
	// from their children, clear the stale ranges we covered.
	p.mu.Lock()
	defer p.mu.Unlock()
	sp = p.series[id]
	if sp == nil {
		sp = &seriesPyramid{}
		p.series[id] = sp
	}
	sp.minT, sp.maxT, sp.hasExtent = minT, maxT, true

	nLevels := int(lmax - lmin + 1)
	levels := make([]*pyrLevel, nLevels)
	fresh := make([]bool, nLevels)
	for i := range levels {
		log := lmin + uint(i)
		if lv := sp.level(log); lv != nil {
			levels[i] = lv
		} else {
			levels[i] = &pyrLevel{log: log, cells: make(map[int64]pyrCell)}
			fresh[i] = true
		}
	}
	sp.levels = levels

	// When the extent shrank (a tail/head range delete compacted away),
	// cells beyond the new extent keep no data behind them but their stale
	// ranges are about to be cleared — drop them and their coverage so they
	// can't serve deleted data. A cell survives only when it lies FULLY
	// inside the clip window: keeping a boundary parent whose out-of-extent
	// child is dropped would break the parent⇒children coverage invariant,
	// and when data later reappears there the orphaned parent would keep
	// serving its old value. The map scan runs only when coverage actually
	// sticks out of the window.
	for _, lv := range levels {
		idxLo := (clipLo + int64(1)<<lv.log - 1) >> lv.log // ceil
		idxHi := clipHi >> lv.log                          // floor
		if idxHi < idxLo {
			idxHi = idxLo
		}
		clipped := lv.cover.intersect(idxLo, idxHi)
		if clipped.size() != lv.cover.size() {
			lv.cover = clipped
			for idx := range lv.cells {
				if idx < idxLo || idx >= idxHi {
					delete(lv.cells, idx)
				}
			}
			lv.gen++
		}
	}

	baseLv := levels[0]
	var touched rset
	for _, b := range builds {
		for idx := b.idxLo; idx < b.idxHi; idx++ {
			if c, ok := b.cells[idx]; ok {
				baseLv.cells[idx] = c
			} else {
				delete(baseLv.cells, idx)
			}
		}
		baseLv.cover.add(b.idxLo, b.idxHi)
		touched.add(b.idxLo, b.idxHi)
	}
	baseLv.gen++

	for li := 1; li < nLevels; li++ {
		child, parent := levels[li-1], levels[li]
		// A fresh level derives from the child's whole coverage; an
		// existing one only where the child changed.
		src := touched
		if fresh[li] {
			src = child.cover
		}
		// Parent coverage: a parent cell is known iff both children are.
		for _, r := range child.cover {
			if pLo, pHi := (r.lo+1)>>1, r.hi>>1; pLo < pHi {
				parent.cover.add(pLo, pHi)
			}
		}
		var ptouch rset
		for _, r := range src {
			ptouch.add(r.lo>>1, ((r.hi-1)>>1)+1)
		}
		for _, r := range ptouch {
			for idx := r.lo; idx < r.hi; idx++ {
				if !parent.cover.contains(idx, idx+1) {
					delete(parent.cells, idx)
					continue
				}
				a, aok := child.cells[idx<<1]
				b, bok := child.cells[idx<<1|1]
				switch {
				case aok && bok:
					parent.cells[idx] = combineCells(a, b)
				case aok:
					parent.cells[idx] = a
				case bok:
					parent.cells[idx] = b
				default:
					delete(parent.cells, idx)
				}
			}
		}
		parent.gen++
		touched = ptouch
	}

	sp.stale = sp.stale.subtract(staleCopy)
	p.dirty = true
	p.rebuilds.Add(1)
}

// pyramidView is the PyramidSource attached to a snapshot: per level, the
// generation and the usable cell-index ranges (covered, not stale, clipped
// to the query range), captured under the pyramid lock at snapshot time.
type pyramidView struct {
	p      *pyramid
	id     string
	levels []pyrViewLevel
}

type pyrViewLevel struct {
	log    uint
	gen    uint64
	usable rset
}

// pyrViewFor builds the snapshot view, or nil when the series has no cells.
func (e *Engine) pyrViewFor(seriesID string, r series.TimeRange) storage.PyramidSource {
	p := e.pyr
	if p == nil || r.End <= r.Start {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	sp := p.series[seriesID]
	if sp == nil || len(sp.levels) == 0 {
		return nil
	}
	v := &pyramidView{p: p, id: seriesID, levels: make([]pyrViewLevel, 0, len(sp.levels))}
	for _, lv := range sp.levels {
		qLo := r.Start >> lv.log
		qHi := ((r.End - 1) >> lv.log) + 1
		usable := lv.cover.intersect(qLo, qHi)
		if len(usable) > 0 && len(sp.stale) > 0 {
			var staleIdx rset
			for _, s := range sp.stale {
				staleIdx.add(s.lo>>lv.log, ((s.hi-1)>>lv.log)+1)
			}
			usable = usable.subtract(staleIdx)
		}
		v.levels = append(v.levels, pyrViewLevel{log: lv.log, gen: lv.gen, usable: usable})
	}
	return v
}

// PlanSpan implements storage.PyramidSource: greedy decomposition of the
// cell-aligned interior of [start, end), coarsest usable level first. The
// cell aggregates are fetched under the pyramid lock with generation
// verification, so a rebuild racing an old snapshot forces fallback instead
// of serving cells newer than the snapshot's chunk list.
func (v *pyramidView) PlanSpan(start, end int64) ([]storage.PyramidCell, bool) {
	if len(v.levels) == 0 {
		return nil, false
	}
	base := v.levels[0].log
	a, b := cellCeil(start, base), cellFloor(end, base)
	if a >= b {
		return nil, false
	}
	type pick struct {
		li     int
		idx    int64
		lo, hi int64
	}
	var picks []pick
	for pos := a; pos < b; {
		found := false
		for li := len(v.levels) - 1; li >= 0; li-- {
			lw := int64(1) << v.levels[li].log
			if pos&(lw-1) != 0 || pos+lw > b {
				continue
			}
			idx := pos >> v.levels[li].log
			if !v.levels[li].usable.contains(idx, idx+1) {
				continue
			}
			picks = append(picks, pick{li: li, idx: idx, lo: pos, hi: pos + lw})
			pos += lw
			found = true
			break
		}
		if !found || len(picks) > pyrMaxPlanCells {
			return nil, false
		}
	}
	p := v.p
	p.mu.RLock()
	defer p.mu.RUnlock()
	sp := p.series[v.id]
	if sp == nil {
		return nil, false
	}
	out := make([]storage.PyramidCell, 0, len(picks))
	for _, pk := range picks {
		lv := sp.level(v.levels[pk.li].log)
		if lv == nil || lv.gen != v.levels[pk.li].gen {
			return nil, false
		}
		cell := storage.PyramidCell{Start: pk.lo, End: pk.hi, Empty: true}
		if c, ok := lv.cells[pk.idx]; ok {
			cell.First, cell.Last, cell.Bottom, cell.Top = c.first, c.last, c.bottom, c.top
			cell.Empty = false
		}
		out = append(out, cell)
	}
	return out, true
}

// pyrMaybeSave writes the manifest if cells changed since the last save.
// Save failures are swallowed (counted): a stale manifest is safe because
// the watermark re-marks anything newer on reopen. Only the StepHook can
// make it fail, simulating a crash between flush and save.
func (e *Engine) pyrMaybeSave() error {
	p := e.pyr
	if p == nil {
		return nil
	}
	p.saveMu.Lock()
	defer p.saveMu.Unlock()
	p.mu.RLock()
	dirty := p.dirty
	p.mu.RUnlock()
	if !dirty {
		return nil
	}
	if err := e.step("pyramid.save"); err != nil {
		return err
	}
	// The watermark is read BEFORE the state snapshot: versions allocated
	// during the encode get Version >= wm and are re-marked stale on
	// reopen even if the snapshot happened to include their effects.
	wm := e.nextVer.Load()
	p.mu.Lock()
	p.dirty = false
	payload := encodePyramid(p.series, wm)
	p.mu.Unlock()
	path := filepath.Join(e.opts.Dir, pyramidFileName)
	if err := writeFileAtomic(path, payload); err != nil {
		p.mu.Lock()
		p.dirty = true
		p.mu.Unlock()
		p.saveErrors.Add(1)
		return nil
	}
	p.saves.Add(1)
	return nil
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// pyrLoad restores the manifest and re-marks everything it may predate:
// chunks and deletes with Version >= the saved watermark, or everything
// when the manifest is missing or corrupt. Runs single-threaded during
// Open, after chunk files and the mods sidecar are loaded and before WAL
// replay (which marks its own ranges).
func (e *Engine) pyrLoad() {
	p := e.pyr
	if p == nil {
		return
	}
	var wm uint64
	data, err := os.ReadFile(filepath.Join(e.opts.Dir, pyramidFileName))
	if err == nil {
		if sers, w, derr := decodePyramid(data); derr == nil {
			p.series, wm = sers, w
		}
	}
	// wm stays 0 when nothing was restored: every chunk and delete below
	// re-marks stale, which is exactly the no-manifest degradation.
	for _, sh := range e.shards {
		for id, ces := range sh.chunks {
			for _, ce := range ces {
				if uint64(ce.meta.Version) >= wm {
					e.pyrMarkStaleClosed(id, ce.meta.First.T, ce.meta.Last.T)
				}
			}
		}
	}
	for _, d := range e.modsLog().All() {
		if uint64(d.Version) >= wm {
			e.pyrMarkStaleClosed(d.SeriesID, d.Start, d.End)
		}
	}
}

// pyrStats summarizes the pyramid for Info and the metrics gauges.
type pyrStats struct {
	series      int
	cells       int
	staleRanges int
}

func (e *Engine) pyrInfo() pyrStats {
	p := e.pyr
	if p == nil {
		return pyrStats{}
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	var st pyrStats
	st.series = len(p.series)
	for _, sp := range p.series {
		st.staleRanges += len(sp.stale)
		for _, lv := range sp.levels {
			st.cells += len(lv.cells)
		}
	}
	return st
}

// encodePyramid serializes every series' extent, stale set and levels with
// the version watermark, CRC-trailed. Generations are volatile and not
// persisted.
func encodePyramid(sers map[string]*seriesPyramid, wm uint64) []byte {
	ids := make([]string, 0, len(sers))
	for id := range sers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf := append([]byte(nil), pyrMagic...)
	var pl []byte
	pl = encoding.AppendUvarint(pl, wm)
	pl = encoding.AppendUvarint(pl, uint64(len(ids)))
	for _, id := range ids {
		sp := sers[id]
		pl = encoding.AppendUvarint(pl, uint64(len(id)))
		pl = append(pl, id...)
		if sp.hasExtent {
			pl = append(pl, 1)
			pl = encoding.AppendVarint(pl, sp.minT)
			pl = encoding.AppendVarint(pl, sp.maxT)
		} else {
			pl = append(pl, 0)
		}
		pl = appendRset(pl, sp.stale)
		pl = encoding.AppendUvarint(pl, uint64(len(sp.levels)))
		for _, lv := range sp.levels {
			pl = encoding.AppendUvarint(pl, uint64(lv.log))
			pl = appendRset(pl, lv.cover)
			pl = encoding.AppendUvarint(pl, uint64(len(lv.cells)))
			idxs := make([]int64, 0, len(lv.cells))
			for idx := range lv.cells {
				idxs = append(idxs, idx)
			}
			sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
			for _, idx := range idxs {
				c := lv.cells[idx]
				pl = encoding.AppendVarint(pl, idx)
				for _, pt := range [4]series.Point{c.first, c.last, c.bottom, c.top} {
					pl = encoding.AppendVarint(pl, pt.T)
					pl = binary.LittleEndian.AppendUint64(pl, math.Float64bits(pt.V))
				}
			}
		}
	}
	buf = append(buf, pl...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(pl))
}

// decodePyramid inverts encodePyramid; any framing violation rejects the
// whole manifest.
func decodePyramid(data []byte) (map[string]*seriesPyramid, uint64, error) {
	if len(data) < len(pyrMagic)+4 || string(data[:len(pyrMagic)]) != string(pyrMagic) {
		return nil, 0, errPyrCorrupt
	}
	pl := data[len(pyrMagic) : len(data)-4]
	if crc32.ChecksumIEEE(pl) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, 0, errPyrCorrupt
	}
	wm, pl, err := encoding.Uvarint(pl)
	if err != nil {
		return nil, 0, err
	}
	nSeries, pl, err := encoding.Uvarint(pl)
	if err != nil {
		return nil, 0, err
	}
	sers := make(map[string]*seriesPyramid, nSeries)
	for si := uint64(0); si < nSeries; si++ {
		var idLen uint64
		idLen, pl, err = encoding.Uvarint(pl)
		if err != nil {
			return nil, 0, err
		}
		if idLen > uint64(len(pl)) {
			return nil, 0, errPyrCorrupt
		}
		id := string(pl[:idLen])
		pl = pl[idLen:]
		sp := &seriesPyramid{}
		if len(pl) < 1 {
			return nil, 0, errPyrCorrupt
		}
		hasExtent := pl[0] == 1
		pl = pl[1:]
		if hasExtent {
			sp.minT, pl, err = encoding.Varint(pl)
			if err != nil {
				return nil, 0, err
			}
			sp.maxT, pl, err = encoding.Varint(pl)
			if err != nil {
				return nil, 0, err
			}
			sp.hasExtent = true
		}
		sp.stale, pl, err = parseRset(pl)
		if err != nil {
			return nil, 0, err
		}
		var nLevels uint64
		nLevels, pl, err = encoding.Uvarint(pl)
		if err != nil {
			return nil, 0, err
		}
		if nLevels > pyrMaxLevels {
			return nil, 0, errPyrCorrupt
		}
		var prevLog uint64
		for li := uint64(0); li < nLevels; li++ {
			var log uint64
			log, pl, err = encoding.Uvarint(pl)
			if err != nil {
				return nil, 0, err
			}
			if log > 62 || (li > 0 && log <= prevLog) {
				return nil, 0, errPyrCorrupt
			}
			prevLog = log
			lv := &pyrLevel{log: uint(log)}
			lv.cover, pl, err = parseRset(pl)
			if err != nil {
				return nil, 0, err
			}
			var nCells uint64
			nCells, pl, err = encoding.Uvarint(pl)
			if err != nil {
				return nil, 0, err
			}
			// 41 bytes minimum per cell bounds allocation to the input.
			if nCells > uint64(len(pl))/41+1 {
				return nil, 0, errPyrCorrupt
			}
			lv.cells = make(map[int64]pyrCell, nCells)
			for ci := uint64(0); ci < nCells; ci++ {
				var idx int64
				idx, pl, err = encoding.Varint(pl)
				if err != nil {
					return nil, 0, err
				}
				var c pyrCell
				for _, pt := range [4]*series.Point{&c.first, &c.last, &c.bottom, &c.top} {
					pt.T, pl, err = encoding.Varint(pl)
					if err != nil {
						return nil, 0, err
					}
					if len(pl) < 8 {
						return nil, 0, errPyrCorrupt
					}
					pt.V = math.Float64frombits(binary.LittleEndian.Uint64(pl))
					pl = pl[8:]
				}
				lv.cells[idx] = c
			}
			sp.levels = append(sp.levels, lv)
		}
		sers[id] = sp
	}
	if len(pl) != 0 {
		return nil, 0, errPyrCorrupt
	}
	return sers, wm, nil
}

func appendRset(dst []byte, s rset) []byte {
	dst = encoding.AppendUvarint(dst, uint64(len(s)))
	for _, r := range s {
		dst = encoding.AppendVarint(dst, r.lo)
		dst = encoding.AppendVarint(dst, r.hi)
	}
	return dst
}

func parseRset(b []byte) (rset, []byte, error) {
	n, b, err := encoding.Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b))/2+1 {
		return nil, nil, errPyrCorrupt
	}
	var out rset
	var prevHi int64
	for i := uint64(0); i < n; i++ {
		var lo, hi int64
		lo, b, err = encoding.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		hi, b, err = encoding.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		if hi <= lo || (i > 0 && lo <= prevHi) {
			return nil, nil, fmt.Errorf("%w: unsorted range set", errPyrCorrupt)
		}
		prevHi = hi
		out = append(out, rng{lo, hi})
	}
	return out, b, nil
}
