package m4ql

import (
	"math/rand"
	"strings"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
)

func TestParseRepresent(t *testing.T) {
	cases := map[string]reprops.Spec{
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT minmax`:                  {Kind: reprops.KindMinMax},
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT LTTB`:                    {Kind: reprops.KindLTTB},
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT minmaxlttb`:              {Kind: reprops.KindMinMaxLTTB},
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT minmaxlttb:8`:            {Kind: reprops.KindMinMaxLTTB, Ratio: 8},
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT m4`:                      {Kind: reprops.KindM4},
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) USING UDF REPRESENT lttb STRICT`:   {Kind: reprops.KindLTTB},
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT lttb PARALLEL 2 TRACE`:   {Kind: reprops.KindLTTB},
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) TIMEOUT 500 REPRESENT minmaxlttb:2`: {Kind: reprops.KindMinMaxLTTB, Ratio: 2},
	}
	for in, want := range cases {
		stmt, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if stmt.Represent == nil || *stmt.Represent != want {
			t.Fatalf("Parse(%q).Represent = %+v, want %+v", in, stmt.Represent, want)
		}
	}
}

func TestParseRepresentErrors(t *testing.T) {
	bad := []string{
		// Unknown name, malformed ratios, ratio on the wrong operator.
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT nope`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT minmaxlttb:`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT minmaxlttb:1`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT minmaxlttb:65`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT lttb:4`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT 4`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT`,
		// Duplicate clause.
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT lttb REPRESENT minmax`,
		// Aggregates and REPRESENT cannot mix.
		`SELECT COUNT(v) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(10) REPRESENT lttb`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

// TestExecuteRepresent checks every operator end to end through both USING
// paths against the reference reduction over the merged series.
func TestExecuteRepresent(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), FlushThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 700; i++ {
		// Tie-free values so BP/TP extremal picks are unique.
		if err := e.Write("root.a", series.Point{T: int64(i), V: float64(i%97) + rng.Float64()*0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot("root.a", series.TimeRange{Start: 0, End: 700})
	if err != nil {
		t.Fatal(err)
	}
	full, err := mergeread.Merge(snap, series.TimeRange{Start: 0, End: 700})
	if err != nil {
		t.Fatal(err)
	}
	for _, repr := range []string{"m4", "minmax", "lttb", "minmaxlttb", "minmaxlttb:2"} {
		spec, err := reprops.ParseSpec(repr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := reprops.Reduce(spec, m4.Query{Tqs: 0, Tqe: 700, W: 13}, full)
		if err != nil {
			t.Fatal(err)
		}
		for _, using := range []string{"LSM", "UDF"} {
			q := `SELECT M4(*) FROM root.a WHERE time >= 0 AND time < 700 GROUP BY SPANS(13) USING ` + using + ` REPRESENT ` + repr
			res, err := Run(e, q)
			if err != nil {
				t.Fatalf("%s/%s: %v", repr, using, err)
			}
			if res.Represent != spec.String() {
				t.Fatalf("%s/%s: Represent = %q, want %q", repr, using, res.Represent, spec.String())
			}
			if len(res.Columns) != 2 || res.Columns[0] != "time" || res.Columns[1] != "value" {
				t.Fatalf("%s/%s: columns = %v", repr, using, res.Columns)
			}
			if len(res.Rows) != len(want) {
				t.Fatalf("%s/%s: %d rows, oracle has %d points", repr, using, len(res.Rows), len(want))
			}
			for i, row := range res.Rows {
				if int64(row[0]) != want[i].T || row[1] != want[i].V {
					t.Fatalf("%s/%s: row %d = %v, oracle %v", repr, using, i, row, want[i])
				}
			}
			if !strings.Contains(res.Text(), "value") {
				t.Fatalf("%s/%s: Text() lost the header", repr, using)
			}
		}
	}
}

// TestExecuteRepresentMulti checks the per-series block shape for wildcard
// REPRESENT statements.
func TestExecuteRepresentMulti(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), FlushThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 300; i++ {
		e.Write("root.x", series.Point{T: int64(i), V: float64(i) + 0.25})
		e.Write("root.y", series.Point{T: int64(i * 2), V: float64(300 - i)})
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, `SELECT M4(*) FROM root.* WHERE time >= 0 AND time < 600 GROUP BY SPANS(7) REPRESENT minmax`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 || res.Series[0].SeriesID != "root.x" || res.Series[1].SeriesID != "root.y" {
		t.Fatalf("series blocks = %+v", res.Series)
	}
	for _, sr := range res.Series {
		if len(sr.Rows) == 0 {
			t.Fatalf("series %s: no rows", sr.SeriesID)
		}
		for i := 1; i < len(sr.Rows); i++ {
			if sr.Rows[i-1][0] >= sr.Rows[i][0] {
				t.Fatalf("series %s: rows not time-sorted", sr.SeriesID)
			}
		}
	}
	if res.Rows != nil {
		t.Fatal("multi-series result must keep top-level Rows nil")
	}
}

// TestExplainRepresent checks the plan line.
func TestExplainRepresent(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Write("s", series.Point{T: 1, V: 2})
	e.Flush()
	stmt, err := Parse(`EXPLAIN SELECT M4(*) FROM s WHERE time >= 0 AND time < 10 GROUP BY SPANS(2) REPRESENT minmaxlttb:8`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Explain(e, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "minmaxlttb:8") || !strings.Contains(plan, "MinMax preselection") {
		t.Fatalf("plan missing represent line:\n%s", plan)
	}
}
