package tsfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Segment is one write-ahead-log segment file (wal-<seq>.log). Unlike the
// monolithic RecordLog it starts with a fixed, checksummed header naming
// the segment's sequence number and the shard count it was created under,
// so recovery can order segments, detect renames, and tell a torn tail on
// the newest segment (legal, truncated) from corruption in a sealed one
// (illegal, quarantined).
//
// Record framing after the header is identical to RecordLog:
// uvarint payload length | payload | uint32 CRC(payload).
type Segment struct {
	f    *os.File
	path string
	hdr  SegmentHeader
	size int64 // bytes written so far, header included; always a record boundary
}

// SegmentHeader identifies a WAL segment.
type SegmentHeader struct {
	Version byte   // format version, currently 1
	Seq     uint64 // segment sequence number, strictly increasing per WAL
	Shards  uint32 // engine shard count at creation (diagnostic)
}

// SegmentVersion is the current segment format version.
const SegmentVersion = 1

// SegmentHeaderLen is the fixed on-disk header size:
// magic "M4WS" (4) | version (1) | seq (8) | shards (4) | CRC32 (4).
const SegmentHeaderLen = 21

var segMagic = [4]byte{'M', '4', 'W', 'S'}

// EncodeSegmentHeader renders h in the fixed on-disk layout. The CRC
// covers every preceding header byte, magic included.
func EncodeSegmentHeader(h SegmentHeader) []byte {
	buf := make([]byte, 0, SegmentHeaderLen)
	buf = append(buf, segMagic[:]...)
	buf = append(buf, h.Version)
	buf = binary.LittleEndian.AppendUint64(buf, h.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, h.Shards)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeSegmentHeader parses the header at the start of b. Every failure
// wraps ErrCorrupt; the caller decides whether that means a torn creation
// (newest segment, short file) or real corruption (sealed segment).
func DecodeSegmentHeader(b []byte) (SegmentHeader, error) {
	var h SegmentHeader
	if len(b) < SegmentHeaderLen {
		return h, fmt.Errorf("%w: segment header: %d of %d bytes", ErrCorrupt, len(b), SegmentHeaderLen)
	}
	if [4]byte(b[:4]) != segMagic {
		return h, fmt.Errorf("%w: segment header: bad magic %q", ErrCorrupt, b[:4])
	}
	want := binary.LittleEndian.Uint32(b[SegmentHeaderLen-4 : SegmentHeaderLen])
	if crc32.ChecksumIEEE(b[:SegmentHeaderLen-4]) != want {
		return h, fmt.Errorf("%w: segment header: checksum mismatch", ErrCorrupt)
	}
	h.Version = b[4]
	if h.Version == 0 || h.Version > SegmentVersion {
		return h, fmt.Errorf("%w: segment header: unsupported version %d", ErrCorrupt, h.Version)
	}
	h.Seq = binary.LittleEndian.Uint64(b[5:13])
	h.Shards = binary.LittleEndian.Uint32(b[13:17])
	return h, nil
}

// CreateSegment creates a fresh segment at path, writing and fsyncing the
// header so a later open can never mistake the file for pre-header junk.
func CreateSegment(path string, h SegmentHeader) (*Segment, error) {
	if h.Version == 0 {
		h.Version = SegmentVersion
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	hdr := EncodeSegmentHeader(h)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("segment: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("segment: sync header: %w", err)
	}
	return &Segment{f: f, path: path, hdr: h, size: SegmentHeaderLen}, nil
}

// OpenSegmentAppend opens the newest segment of a WAL for appending. The
// valid prefix of records is returned; a torn tail (crash mid-append) is
// truncated and reported through tornBytes so the engine can surface a
// warning. A missing or invalid header is returned as ErrCorrupt — on the
// newest segment a header shorter than SegmentHeaderLen means the creating
// crash tore even the header, which the caller handles by recreating the
// file.
func OpenSegmentAppend(path string) (seg *Segment, recovered [][]byte, tornBytes int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("segment: %w", err)
	}
	hdr, err := DecodeSegmentHeader(data)
	if err != nil {
		return nil, nil, 0, err
	}
	valid := SegmentHeaderLen
	rest := data[SegmentHeaderLen:]
	for len(rest) > 0 {
		payload, n := parseRecord(rest)
		if n == 0 {
			break // torn tail
		}
		recovered = append(recovered, payload)
		rest = rest[n:]
		valid += n
	}
	tornBytes = int64(len(data) - valid)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("segment: %w", err)
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("segment: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("segment: %w", err)
	}
	return &Segment{f: f, path: path, hdr: hdr, size: int64(valid)}, recovered, tornBytes, nil
}

// ReadSegment reads a sealed segment strictly: the header must validate
// and every byte after it must belong to a complete, CRC-valid record.
// Sealed segments are fsynced before the WAL moves on, so any invalid
// suffix here is corruption, never a torn append.
func ReadSegment(path string) (SegmentHeader, [][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SegmentHeader{}, nil, fmt.Errorf("segment: %w", err)
	}
	return ParseSegment(data)
}

// ParseSegment decodes a complete sealed-segment image (see ReadSegment).
func ParseSegment(data []byte) (SegmentHeader, [][]byte, error) {
	hdr, err := DecodeSegmentHeader(data)
	if err != nil {
		return SegmentHeader{}, nil, err
	}
	var recs [][]byte
	rest := data[SegmentHeaderLen:]
	for len(rest) > 0 {
		payload, n := parseRecord(rest)
		if n == 0 {
			return hdr, nil, fmt.Errorf("%w: segment %d: invalid record after %d records (%d bytes left)",
				ErrCorrupt, hdr.Seq, len(recs), len(rest))
		}
		recs = append(recs, payload)
		rest = rest[n:]
	}
	return hdr, recs, nil
}

// Append writes one record. With sync the file is fsynced before
// returning, making the record durable.
func (s *Segment) Append(payload []byte, sync bool) error {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("segment: append: %w", err)
	}
	s.size += int64(len(buf))
	if sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("segment: sync: %w", err)
		}
	}
	return nil
}

// Sync fsyncs the segment; rotation calls it before sealing so a sealed
// segment is always fully durable.
func (s *Segment) Sync() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("segment: sync: %w", err)
	}
	return nil
}

// Truncate drops every record, keeping only the header (compaction makes
// the whole WAL obsolete at once).
func (s *Segment) Truncate() error {
	if err := s.f.Truncate(SegmentHeaderLen); err != nil {
		return fmt.Errorf("segment: truncate: %w", err)
	}
	if _, err := s.f.Seek(SegmentHeaderLen, io.SeekStart); err != nil {
		return fmt.Errorf("segment: truncate seek: %w", err)
	}
	s.size = SegmentHeaderLen
	return nil
}

// Header returns the segment's identifying header.
func (s *Segment) Header() SegmentHeader { return s.hdr }

// Path returns the segment file path.
func (s *Segment) Path() string { return s.path }

// Size returns the bytes written so far (header included). It is tracked
// in memory, so it always sits on a record boundary — the backup path
// relies on that to copy a consistent prefix of the active segment.
func (s *Segment) Size() int64 { return s.size }

// Close releases the file handle.
func (s *Segment) Close() error { return s.f.Close() }
