package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"m4lsm/internal/storage"
	"m4lsm/internal/tsfile"
)

// ErrReadOnly marks writes rejected while the engine is in read-only
// degraded mode (disk full). The condition is transient: the engine
// probes for space on later write attempts and recovers automatically, so
// callers should back off and retry rather than give up.
var ErrReadOnly = errors.New("lsm: engine is read-only (out of disk space)")

// isNoSpace classifies the errors that flip the engine read-only: real
// ENOSPC from the filesystem, or a faultfs-injected error wrapping it.
func isNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}

// classifyWrite inspects a write-path error. Out-of-space flips the
// engine into read-only degraded mode — queries keep serving, writes get
// a typed retryable error — instead of surfacing as an anonymous I/O
// failure. Every other error passes through unchanged (including
// faultfs.ErrCrash, which the torture harness expects verbatim).
func (e *Engine) classifyWrite(err error) error {
	if err == nil || !isNoSpace(err) {
		return err
	}
	e.enterReadOnly(err)
	return fmt.Errorf("%w: %v", ErrReadOnly, err)
}

// enterReadOnly flips the degraded flag once and records the cause.
func (e *Engine) enterReadOnly(cause error) {
	e.roMu.Lock()
	defer e.roMu.Unlock()
	if e.readOnly.Load() {
		return
	}
	e.roReason = cause.Error()
	e.readOnly.Store(true)
	e.roTrips.Add(1)
}

// exitReadOnly clears the degraded flag after a successful space probe.
func (e *Engine) exitReadOnly() {
	e.roMu.Lock()
	e.roReason = ""
	e.readOnly.Store(false)
	e.roMu.Unlock()
}

// ReadOnly reports whether the engine is currently degraded to read-only
// and, if so, why.
func (e *Engine) ReadOnly() (bool, string) {
	if !e.readOnly.Load() {
		return false, ""
	}
	e.roMu.Lock()
	defer e.roMu.Unlock()
	return e.readOnly.Load(), e.roReason
}

// writable gates the mutating entry points while degraded: it re-probes
// for disk space (rate-limited) and either recovers the engine or
// returns the typed retryable error.
func (e *Engine) writable() error {
	if !e.readOnly.Load() {
		return nil
	}
	if e.tryRecover() {
		return nil
	}
	e.roMu.Lock()
	reason := e.roReason
	e.roMu.Unlock()
	return fmt.Errorf("%w: %s", ErrReadOnly, reason)
}

// tryRecover probes whether the directory accepts writes again, at most
// once per SpaceProbeInterval. The probe is a tiny create-write-remove in
// the database directory, routed through the "probe.space" step site so
// fault harnesses can keep it failing while simulated space is gone.
func (e *Engine) tryRecover() bool {
	interval := e.opts.SpaceProbeInterval
	if interval == 0 {
		interval = time.Second
	}
	if interval > 0 {
		now := time.Now().UnixNano()
		last := e.lastProbe.Load()
		if now-last < int64(interval) {
			return false
		}
		if !e.lastProbe.CompareAndSwap(last, now) {
			return false // another writer is probing
		}
	}
	if err := e.step("probe.space"); err != nil {
		return false
	}
	probe := filepath.Join(e.opts.Dir, ".space-probe")
	if err := os.WriteFile(probe, []byte("m4lsm space probe\n"), 0o644); err != nil {
		os.Remove(probe)
		return false
	}
	os.Remove(probe)
	e.exitReadOnly()
	return true
}

// retryPolicy is the transient-read retry configuration of this engine's
// chunk sources: bounded attempts with deterministic jittered backoff.
// Detected corruption (tsfile.ErrCorrupt) is permanent — the bytes on
// disk are wrong, re-reading cannot help — so it fails immediately and
// keeps the quarantine path intact.
func (e *Engine) retryPolicy() storage.RetryPolicy {
	if e.opts.DisableReadRetry {
		return storage.RetryPolicy{}
	}
	retries := e.opts.ReadRetries
	if retries <= 0 {
		retries = 2
	}
	return storage.RetryPolicy{
		MaxAttempts: retries + 1,
		BaseDelay:   e.opts.RetryBaseDelay,
		MaxDelay:    e.opts.RetryMaxDelay,
		Seed:        uint64(e.opts.FlushThreshold)*0x9e37 + 1, // any fixed, config-stable seed
		IsPermanent: func(err error) bool { return errors.Is(err, tsfile.ErrCorrupt) },
		OnRetry:     func() { e.readRetries.Add(1) },
		OnExhausted: func() { e.retryExhausted.Add(1) },
	}
}
