package m4lsm

import (
	"math/rand"
	"reflect"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/storage"
	"m4lsm/internal/testutil"
)

// snapshotAt rebuilds the identical random state for a seed, so sequential
// and parallel runs see independent snapshots (fresh chunk states, fresh
// stats) over byte-identical storage.
func snapshotAt(seed int64) *storage.Snapshot {
	rng := rand.New(rand.NewSource(seed))
	return testutil.RandomSnapshot(rng, testutil.DefaultGenConfig)
}

// TestParallelMatchesSequential is the concurrency equivalence check: on
// randomized out-of-order/overwrite/delete states, ComputeWithOptions must
// return byte-identical aggregates at every parallelism, and the
// singleflight load gate must keep ChunksLoaded independent of the worker
// count. Run under -race this also exercises the chunkState sharing.
func TestParallelMatchesSequential(t *testing.T) {
	queryRng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		seed := int64(iter)
		horizon := testutil.DefaultGenConfig.TimeHorizon
		tqs := queryRng.Int63n(horizon)
		tqe := tqs + 1 + queryRng.Int63n(horizon-tqs)
		q := m4.Query{Tqs: tqs, Tqe: tqe, W: 1 + queryRng.Intn(12)}

		ref := snapshotAt(seed)
		want, err := ComputeWithOptions(ref, q, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		wantLoads := ref.Stats.Load().ChunksLoaded

		for _, par := range []int{2, 4, 8} {
			snap := snapshotAt(seed)
			got, err := ComputeWithOptions(snap, q, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("seed %d par %d: %v", seed, par, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d par %d: aggregates diverge from sequential\nq=%+v\nseq: %v\npar: %v",
					seed, par, q, want, got)
			}
			if loads := snap.Stats.Load().ChunksLoaded; loads != wantLoads {
				t.Fatalf("seed %d par %d: ChunksLoaded = %d, sequential loaded %d (singleflight must dedupe)",
					seed, par, loads, wantLoads)
			}
		}
	}
}

// TestParallelEagerLoad checks the equivalence holds with EagerLoad, where
// every task materializes every chunk and the load gate is hit hardest.
func TestParallelEagerLoad(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		seed := int64(1000 + iter)
		horizon := testutil.DefaultGenConfig.TimeHorizon
		q := m4.Query{Tqs: 0, Tqe: horizon, W: 8}

		ref := snapshotAt(seed)
		want, err := ComputeWithOptions(ref, q, Options{EagerLoad: true, Parallelism: 1})
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		wantLoads := ref.Stats.Load().ChunksLoaded

		snap := snapshotAt(seed)
		got, err := ComputeWithOptions(snap, q, Options{EagerLoad: true, Parallelism: 8})
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: eager aggregates diverge\nseq: %v\npar: %v", seed, want, got)
		}
		if loads := snap.Stats.Load().ChunksLoaded; loads != wantLoads {
			t.Fatalf("seed %d: eager ChunksLoaded = %d, want %d", seed, loads, wantLoads)
		}
	}
}

// TestRunPool covers the pool helper directly: full coverage of the task
// index space, inline execution at par<=1, and early stop on error.
func TestRunPool(t *testing.T) {
	for _, par := range []int{0, 1, 2, 4, 16} {
		const n = 100
		hits := make([]int32, n)
		runPool(par, n, func(i int) error {
			hits[i]++
			return nil
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("par %d: task %d ran %d times", par, i, h)
			}
		}
	}
}
