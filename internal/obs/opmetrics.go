package obs

import "time"

// OperatorMetrics are the per-operator query instruments, labelled by
// operator ("lsm" or "udf") so both M4 implementations expose the same
// names and dashboards can compare them directly. All methods are safe on
// the nil *OperatorMetrics, the fast path when observability is off.
type OperatorMetrics struct {
	queries       *Counter
	querySeconds  *Histogram
	taskSeconds   *Histogram
	chunksLoaded  *Counter
	chunksPruned  *Counter
	timeBlocks    *Counter
	pointsDecoded *Counter
	cacheHits     *Counter
	pyramidSpans  *Counter
	pyramidCells  *Counter
	pyramidFalls  *Counter
}

// NewOperatorMetrics resolves the operator's instruments from the
// registry; a nil registry yields a nil (inert) OperatorMetrics.
func NewOperatorMetrics(r *Registry, op string) *OperatorMetrics {
	if r == nil {
		return nil
	}
	l := []string{"op", op}
	return &OperatorMetrics{
		queries:       r.Counter("m4_queries_total", l...),
		querySeconds:  r.Histogram("m4_query_seconds", l...),
		taskSeconds:   r.Histogram("m4_task_seconds", l...),
		chunksLoaded:  r.Counter("m4_chunks_loaded_total", l...),
		chunksPruned:  r.Counter("m4_chunks_pruned_total", l...),
		timeBlocks:    r.Counter("m4_time_blocks_loaded_total", l...),
		pointsDecoded: r.Counter("m4_points_decoded_total", l...),
		cacheHits:     r.Counter("m4_cache_hits_total", l...),
		pyramidSpans:  r.Counter("m4_pyramid_spans_total", l...),
		pyramidCells:  r.Counter("m4_pyramid_cells_total", l...),
		pyramidFalls:  r.Counter("m4_pyramid_fallback_spans_total", l...),
	}
}

// RecordPyramid accumulates one query's rollup-pyramid attribution: spans
// answered from cells, cells consulted, and spans that fell back to chunks.
func (m *OperatorMetrics) RecordPyramid(spans, cells, fallbacks int64) {
	if m == nil {
		return
	}
	m.pyramidSpans.Add(spans)
	m.pyramidCells.Add(cells)
	m.pyramidFalls.Add(fallbacks)
}

// RecordTask observes one worker-pool task duration.
func (m *OperatorMetrics) RecordTask(d time.Duration) {
	if m == nil {
		return
	}
	m.taskSeconds.Observe(d.Seconds())
}

// RecordQuery accumulates one completed query's latency and I/O counters.
func (m *OperatorMetrics) RecordQuery(elapsed time.Duration, chunksLoaded, chunksPruned, timeBlocks, pointsDecoded, cacheHits int64) {
	if m == nil {
		return
	}
	m.queries.Inc()
	m.querySeconds.Observe(elapsed.Seconds())
	m.chunksLoaded.Add(chunksLoaded)
	m.chunksPruned.Add(chunksPruned)
	m.timeBlocks.Add(timeBlocks)
	m.pointsDecoded.Add(pointsDecoded)
	m.cacheHits.Add(cacheHits)
}
