package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/series"
	"m4lsm/internal/tsfile"
)

func postJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestAdminBackup: POST /admin/backup writes a verifiable backup set and
// reports the manifest; GET is refused; a missing dir parameter is a 400.
func TestAdminBackup(t *testing.T) {
	srv := newServer(t)
	bdir := filepath.Join(t.TempDir(), "bk")

	var body map[string]interface{}
	if code := postJSON(t, srv.URL+"/admin/backup?dir="+bdir, &body); code != 200 {
		t.Fatalf("status %d, body %v", code, body)
	}
	if body["dir"] != bdir || body["manifest"] == nil {
		t.Fatalf("body = %v", body)
	}
	if _, err := lsm.VerifyBackup(bdir); err != nil {
		t.Fatalf("backup does not verify: %v", err)
	}

	if code := getJSON(t, srv.URL+"/admin/backup?dir="+bdir, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET = %d, want 405", code)
	}
	if code := postJSON(t, srv.URL+"/admin/backup", nil); code != http.StatusBadRequest {
		t.Errorf("missing dir = %d, want 400", code)
	}
	// A second backup into the same directory is refused (it already holds
	// a manifest).
	if code := postJSON(t, srv.URL+"/admin/backup?dir="+bdir, nil); code != http.StatusInternalServerError {
		t.Errorf("repeat backup = %d, want 500", code)
	}
}

// TestAdminScrub: POST /admin/scrub runs a pass and reports it; heal and
// maxChunks parameters are honored; GET is refused.
func TestAdminScrub(t *testing.T) {
	srv := newServer(t)

	var rep lsm.ScrubReport
	if code := postJSON(t, srv.URL+"/admin/scrub", &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.ChunksChecked == 0 || rep.Partial || !rep.PyramidOK {
		t.Fatalf("report %+v", rep)
	}

	var capped lsm.ScrubReport
	if code := postJSON(t, srv.URL+"/admin/scrub?maxChunks=1", &capped); code != 200 {
		t.Fatalf("status %d", code)
	}
	if capped.ChunksChecked > 1 {
		t.Fatalf("budget ignored: %+v", capped)
	}
	if code := postJSON(t, srv.URL+"/admin/scrub?maxChunks=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("bad maxChunks = %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/admin/scrub", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET = %d, want 405", code)
	}
}

// TestHealthzWALAndScrubFields: /healthz reports the durability surfaces —
// WAL segment state, scrub and backup counters.
func TestHealthzWALAndScrubFields(t *testing.T) {
	srv := newServer(t)
	var body map[string]interface{}
	if code := getJSON(t, srv.URL+"/healthz", &body); code != 200 {
		t.Fatalf("status %d", code)
	}
	wal, ok := body["wal"].(map[string]interface{})
	if !ok {
		t.Fatalf("no wal object: %v", body)
	}
	if wal["segments"].(float64) < 1 {
		t.Errorf("wal.segments = %v", wal["segments"])
	}
	if _, ok := body["scrub"].(map[string]interface{}); !ok {
		t.Errorf("no scrub object: %v", body)
	}
	if _, ok := body["backup"].(map[string]interface{}); !ok {
		t.Errorf("no backup object: %v", body)
	}
}

// TestHealthzTornWALWarning: an engine reopened over a torn WAL tail
// surfaces the truncation warning through /healthz.
func TestHealthzTornWALWarning(t *testing.T) {
	dir := t.TempDir()
	e, err := lsm.Open(lsm.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write("s", series.Point{T: 1, V: 1}); err != nil {
		t.Fatal(err)
	}
	e.Kill()
	// Tear the active segment's tail: a record length claiming more bytes
	// than follow.
	walPath := filepath.Join(dir, "wal-0000000000000001.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x7f, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, err := lsm.Open(lsm.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := New(e2)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
		e2.Close()
	})
	var body map[string]interface{}
	if code := getJSON(t, srv.URL+"/healthz", &body); code != 200 {
		t.Fatalf("status %d", code)
	}
	wal := body["wal"].(map[string]interface{})
	if wal["tornTruncations"].(float64) != 1 {
		t.Errorf("tornTruncations = %v", wal["tornTruncations"])
	}
	warns, _ := wal["warnings"].([]interface{})
	if len(warns) != 1 {
		t.Fatalf("warnings = %v", wal["warnings"])
	}
	// A torn tail alone is a normal crash artifact, not degradation.
	if body["status"] != "ok" {
		t.Errorf("status = %v", body["status"])
	}
}

// TestHealthzDegradedOnQuarantinedWALSegment: a quarantined WAL segment
// marks the server degraded.
func TestHealthzDegradedOnQuarantinedWALSegment(t *testing.T) {
	dir := t.TempDir()
	e, err := lsm.Open(lsm.Options{Dir: dir, WALSegmentBytes: 64, FlushThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		if err := e.Write("s", series.Point{T: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Kill()
	walPath := filepath.Join(dir, "wal-0000000000000002.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[tsfile.SegmentHeaderLen+2] ^= 0xff
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := lsm.Open(lsm.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := New(e2)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
		e2.Close()
	})
	var body map[string]interface{}
	if code := getJSON(t, srv.URL+"/healthz", &body); code != 200 {
		t.Fatalf("status %d", code)
	}
	if body["status"] != "degraded" {
		t.Errorf("status = %v, want degraded", body["status"])
	}
	wal := body["wal"].(map[string]interface{})
	if wal["quarantinedSegments"].(float64) != 1 {
		t.Errorf("quarantinedSegments = %v", wal["quarantinedSegments"])
	}
}
