package storage

import (
	"fmt"
	"sync"

	"m4lsm/internal/encoding"
	"m4lsm/internal/series"
)

// MemSource is an in-memory ChunkSource. The LSM engine uses it to expose
// the unflushed memtable to queries, and tests use it to build arbitrary
// chunk/delete states without touching disk.
type MemSource struct {
	mu     sync.RWMutex
	chunks map[chunkKey]series.Series
}

type chunkKey struct {
	seriesID string
	version  Version
}

// NewMemSource returns an empty in-memory source.
func NewMemSource() *MemSource {
	return &MemSource{chunks: make(map[chunkKey]series.Series)}
}

// AddChunk registers data as a chunk and returns its metadata. The data
// must be sorted; it is not copied.
func (m *MemSource) AddChunk(seriesID string, version Version, data series.Series) (ChunkMeta, error) {
	if err := data.Validate(); err != nil {
		return ChunkMeta{}, fmt.Errorf("mem chunk %s v%d: %w", seriesID, version, err)
	}
	first, last, bottom, top, ok := ComputeMeta(data)
	if !ok {
		return ChunkMeta{}, fmt.Errorf("mem chunk %s v%d: empty", seriesID, version)
	}
	meta := ChunkMeta{
		SeriesID: seriesID,
		Version:  version,
		Count:    int64(len(data)),
		Codec:    encoding.CodecPlain,
		First:    first,
		Last:     last,
		Bottom:   bottom,
		Top:      top,
		// Synthetic sizes so cost counters stay meaningful: plain
		// encoding is 8 bytes per column element.
		TimesLen:  int64(len(data)) * 8,
		ValuesLen: int64(len(data)) * 8,
	}
	m.mu.Lock()
	m.chunks[chunkKey{seriesID, version}] = data
	m.mu.Unlock()
	return meta, nil
}

// ReadChunk implements ChunkSource.
func (m *MemSource) ReadChunk(meta ChunkMeta) (series.Series, error) {
	m.mu.RLock()
	data, ok := m.chunks[chunkKey{meta.SeriesID, meta.Version}]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mem source: no chunk %s v%d", meta.SeriesID, meta.Version)
	}
	return data, nil
}

// ReadTimes implements ChunkSource.
func (m *MemSource) ReadTimes(meta ChunkMeta) ([]int64, error) {
	data, err := m.ReadChunk(meta)
	if err != nil {
		return nil, err
	}
	return data.Times(), nil
}

var _ ChunkSource = (*MemSource)(nil)
