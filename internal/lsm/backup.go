// Online backup and restore. Backup pins a consistent snapshot of the
// database — immutable chunk files, the mods sidecar, the pyramid manifest
// and the live WAL segments — under every shard lock, hardlinks or copies
// it into a backup directory, and seals the set with a checksummed
// manifest recording each file's size and CRC. A backup without a valid
// manifest (crash mid-backup) is rejected wholesale: restore never guesses
// at a half-written set.
//
// The engine keeps serving during the copy: shard locks are held only long
// enough to hardlink immutable files and capture the active WAL segment's
// record-aligned prefix; CRCs are computed from the backup copies after
// the locks drop.
package lsm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"m4lsm/internal/tsfile"
)

// backupManifestName seals a backup directory; its absence marks the
// backup incomplete.
const backupManifestName = "BACKUP.manifest"

// backupManifestVersion is the current manifest format version.
const backupManifestVersion = 1

var backupMagic = [4]byte{'M', '4', 'B', 'K'}

// BackupFile records one backed-up file's integrity data.
type BackupFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
}

// BackupManifest describes a complete backup set.
type BackupManifest struct {
	CreatedUnix int64        `json:"createdUnix"`
	NextVersion uint64       `json:"nextVersion"` // pinned version watermark
	NumShards   int          `json:"numShards"`
	Files       []BackupFile `json:"files"`
}

// EncodeBackupManifest renders m in the on-disk framing:
// magic "M4BK" | version byte | uint32 JSON length | JSON | CRC32(JSON).
func EncodeBackupManifest(m BackupManifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("backup manifest: %w", err)
	}
	buf := make([]byte, 0, len(body)+13)
	buf = append(buf, backupMagic[:]...)
	buf = append(buf, backupManifestVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body)), nil
}

// DecodeBackupManifest parses the framing written by EncodeBackupManifest.
// Every failure wraps tsfile.ErrCorrupt: a manifest that does not verify
// byte-for-byte condemns the whole backup.
func DecodeBackupManifest(b []byte) (BackupManifest, error) {
	var m BackupManifest
	if len(b) < 13 {
		return m, fmt.Errorf("%w: backup manifest: %d bytes", tsfile.ErrCorrupt, len(b))
	}
	if [4]byte(b[:4]) != backupMagic {
		return m, fmt.Errorf("%w: backup manifest: bad magic %q", tsfile.ErrCorrupt, b[:4])
	}
	if v := b[4]; v == 0 || v > backupManifestVersion {
		return m, fmt.Errorf("%w: backup manifest: unsupported version %d", tsfile.ErrCorrupt, v)
	}
	n := binary.LittleEndian.Uint32(b[5:9])
	if uint32(len(b)) != 13+n {
		return m, fmt.Errorf("%w: backup manifest: length %d for %d bytes", tsfile.ErrCorrupt, n, len(b))
	}
	body := b[9 : 9+n]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(b[9+n:]) {
		return m, fmt.Errorf("%w: backup manifest: checksum mismatch", tsfile.ErrCorrupt)
	}
	if err := json.Unmarshal(body, &m); err != nil {
		return m, fmt.Errorf("%w: backup manifest: %v", tsfile.ErrCorrupt, err)
	}
	for _, f := range m.Files {
		if !backupBaseNameOK(f.Name) || f.Size < 0 {
			return m, fmt.Errorf("%w: backup manifest: invalid file entry %q", tsfile.ErrCorrupt, f.Name)
		}
	}
	return m, nil
}

// Backup writes a verified online backup of the database into dir (created
// if missing; must be empty of manifest files). Safe under concurrent
// writers: the snapshot is pinned under every shard lock, so it is exactly
// the state some single instant observed.
func (e *Engine) Backup(dir string) (BackupManifest, error) {
	var m BackupManifest
	if err := os.MkdirAll(dir, 0o755); err != nil {
		e.backupErrors.Add(1)
		return m, fmt.Errorf("lsm: backup: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, backupManifestName)); err == nil {
		e.backupErrors.Add(1)
		return m, fmt.Errorf("lsm: backup: %s already holds a backup", dir)
	}

	type capture struct {
		name string
		// exactly one of path (hardlink/copy source) or data is set
		path string
		data []byte
	}
	var caps []capture

	e.lockAll()
	if e.closed.Load() {
		e.unlockAll()
		e.backupErrors.Add(1)
		return m, errors.New("lsm: engine closed")
	}
	m.CreatedUnix = time.Now().Unix()
	m.NextVersion = e.nextVer.Load()
	m.NumShards = len(e.shards)
	// Chunk files are immutable and only unlinked by Compact, which needs
	// every shard lock — blocked while we hold them.
	e.fileMu.Lock()
	for _, r := range e.files {
		caps = append(caps, capture{name: filepath.Base(r.Path()), path: r.Path()})
	}
	e.fileMu.Unlock()
	// The mods sidecar and pyramid manifest are small; capture their bytes
	// outright while mutation is blocked.
	for _, name := range []string{"deletes.mods", pyramidFileName} {
		data, err := os.ReadFile(filepath.Join(e.opts.Dir, name))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			e.unlockAll()
			e.backupErrors.Add(1)
			return m, fmt.Errorf("lsm: backup: %w", err)
		}
		caps = append(caps, capture{name: name, data: data})
	}
	if e.wal != nil {
		e.walMu.Lock()
		for _, s := range e.wal.sealed {
			caps = append(caps, capture{name: filepath.Base(s.path), path: s.path})
		}
		// The active segment keeps growing after the locks drop, so
		// capture its record-aligned prefix now: Size() is tracked in
		// memory and always sits on a record boundary.
		data := make([]byte, e.wal.active.Size())
		f, err := os.Open(e.wal.active.Path())
		if err == nil {
			_, err = io.ReadFull(f, data)
			f.Close()
		}
		if err != nil {
			e.walMu.Unlock()
			e.unlockAll()
			e.backupErrors.Add(1)
			return m, fmt.Errorf("lsm: backup wal: %w", err)
		}
		caps = append(caps, capture{name: filepath.Base(e.wal.active.Path()), data: data})
		e.walMu.Unlock()
	}
	// Hardlink the immutable files while still pinned: a link survives the
	// source being unlinked later, and is O(1) regardless of size.
	var linkErr error
	for _, c := range caps {
		if c.path == "" {
			continue
		}
		if err := linkOrCopy(c.path, filepath.Join(dir, c.name)); err != nil {
			linkErr = err
			break
		}
	}
	e.unlockAll()
	if linkErr != nil {
		e.backupErrors.Add(1)
		return m, fmt.Errorf("lsm: backup: %w", linkErr)
	}

	// Locks are gone; write the captured bytes and compute every CRC from
	// the backup copies, so the manifest attests what is actually in dir.
	var total int64
	for _, c := range caps {
		dst := filepath.Join(dir, c.name)
		if c.path == "" {
			if err := os.WriteFile(dst, c.data, 0o644); err != nil {
				e.backupErrors.Add(1)
				return m, fmt.Errorf("lsm: backup: %w", err)
			}
		}
		size, crc, err := fileCRC(dst)
		if err != nil {
			e.backupErrors.Add(1)
			return m, fmt.Errorf("lsm: backup: %w", err)
		}
		m.Files = append(m.Files, BackupFile{Name: c.name, Size: size, CRC: crc})
		total += size
	}
	if err := e.step("backup.manifest"); err != nil {
		e.backupErrors.Add(1)
		return m, err
	}
	enc, err := EncodeBackupManifest(m)
	if err != nil {
		e.backupErrors.Add(1)
		return m, err
	}
	if err := writeFileAtomic(filepath.Join(dir, backupManifestName), enc); err != nil {
		e.backupErrors.Add(1)
		return m, fmt.Errorf("lsm: backup manifest: %w", err)
	}
	e.backupRuns.Add(1)
	e.backupBytes.Add(total)
	e.lastBackupUnix.Store(m.CreatedUnix)
	return m, nil
}

// VerifyBackup checks a backup directory end to end: the manifest must
// decode and every listed file must match its recorded size and CRC.
func VerifyBackup(dir string) (BackupManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, backupManifestName))
	if err != nil {
		return BackupManifest{}, fmt.Errorf("lsm: backup verify: %w", err)
	}
	m, err := DecodeBackupManifest(data)
	if err != nil {
		return m, fmt.Errorf("lsm: backup verify: %w", err)
	}
	for _, f := range m.Files {
		size, crc, err := fileCRC(filepath.Join(dir, f.Name))
		if err != nil {
			return m, fmt.Errorf("lsm: backup verify %s: %w", f.Name, err)
		}
		if size != f.Size || crc != f.CRC {
			return m, fmt.Errorf("lsm: backup verify %s: %w: size %d crc %08x, manifest says %d/%08x",
				f.Name, tsfile.ErrCorrupt, size, crc, f.Size, f.CRC)
		}
	}
	return m, nil
}

// Restore materializes a verified backup into destDir, which must not yet
// hold a database. The backup is re-verified first, so a torn or tampered
// set is rejected before a single byte lands in destDir.
func Restore(backupDir, destDir string) error {
	m, err := VerifyBackup(backupDir)
	if err != nil {
		return err
	}
	if ents, err := os.ReadDir(destDir); err == nil && len(ents) > 0 {
		return fmt.Errorf("lsm: restore: %s is not empty", destDir)
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("lsm: restore: %w", err)
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return fmt.Errorf("lsm: restore: %w", err)
	}
	for _, f := range m.Files {
		if err := copyFile(filepath.Join(backupDir, f.Name), filepath.Join(destDir, f.Name)); err != nil {
			return fmt.Errorf("lsm: restore: %w", err)
		}
	}
	return nil
}

// OpenBackup verifies backupDir, restores it into opts.Dir (which must be
// empty or absent) and opens the restored database — WAL replay runs only
// after every byte has been checksum-verified.
func OpenBackup(backupDir string, opts Options) (*Engine, error) {
	if opts.Dir == "" {
		return nil, errors.New("lsm: OpenBackup: Options.Dir is required")
	}
	if err := Restore(backupDir, opts.Dir); err != nil {
		return nil, err
	}
	return Open(opts)
}

// linkOrCopy hardlinks src to dst, falling back to a byte copy when the
// backup directory is on another filesystem.
func linkOrCopy(src, dst string) error {
	if err := os.Link(src, dst); err == nil {
		return nil
	} else if errors.Is(err, os.ErrExist) {
		return err
	}
	return copyFile(src, dst)
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	return out.Close()
}

// fileCRC returns a file's size and whole-file CRC32.
func fileCRC(path string) (int64, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, err
	}
	return n, h.Sum32(), nil
}

// backupBaseNameOK rejects manifest entries that could escape the backup
// directory (path separators, "..", dotfiles).
func backupBaseNameOK(name string) bool {
	return name != "" && name == filepath.Base(name) && !strings.HasPrefix(name, ".")
}
