package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/tsfile"
)

// Compact merges every flushed chunk of every series into fresh,
// non-overlapping chunks, applying all deletes, and removes the old chunk
// files and delete sidecar entries. Shards compact concurrently — each
// writes its own sequence file — up to the GOMAXPROCS budget (sequentially
// under a StepHook, keeping fault schedules deterministic).
//
// The paper's experiments run with compaction disabled (Table 4,
// NO_COMPACTION) because overlapping chunks are exactly the state M4-LSM
// targets; Compact exists as the standard LSM maintenance operation that
// bounds read amplification over time. After Compact, every chunk's
// metadata is exact again (no pending deletes or overwrites), so M4-LSM
// degenerates to its pure metadata fast path.
func (e *Engine) Compact() error {
	if err := e.writable(); err != nil {
		return err
	}
	e.lockAll()
	defer e.unlockAll()
	if e.closed.Load() {
		return fmt.Errorf("lsm: engine closed")
	}
	compactStart := time.Now()
	defer func() {
		e.met.compactions.Inc()
		e.met.compactSecs.Observe(time.Since(compactStart).Seconds())
	}()
	// Memtable contents ride along: flush first so the merge sees them.
	for _, sh := range e.shards {
		if _, err := e.flushShardLocked(sh); err != nil {
			return err
		}
	}
	// Quarantined chunks cannot be read (their bytes fail CRC); the merge
	// excludes them, and the files holding them are set aside below instead
	// of being removed, so the corrupt bytes stay available for salvage.
	e.quarMu.Lock()
	quar := make(map[chunkID]bool, len(e.quarantined))
	for id := range e.quarantined {
		quar[id] = true
	}
	e.quarMu.Unlock()
	mods := e.modsLog()

	// Write each shard's compacted generation to a fresh file before
	// touching the old ones; a crash (or error) between here and the swap
	// below leaves both generations on disk, and duplicate points merge
	// idempotently. The merged output is in order, so it belongs to the
	// sequence space. Series merge in sorted-id order within each shard, so
	// the compacted layout is deterministic for a given shard count.
	type shardGen struct {
		merged map[string]series.Series
		reader *tsfile.Reader
		path   string
	}
	gens := make([]shardGen, len(e.shards))
	everything := series.TimeRange{Start: -(1 << 62), End: 1 << 62}
	err := runShardPool(e.shardParallelism(), len(e.shards), func(i int) error {
		sh := e.shards[i]
		ids := make([]string, 0, len(sh.chunks))
		for id := range sh.chunks {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		merged := make(map[string]series.Series, len(ids))
		for _, id := range ids {
			snap := &storage.Snapshot{SeriesID: id}
			for _, ce := range sh.chunks[id] {
				if quar[chunkID{ce.meta.SeriesID, ce.meta.Version}] {
					continue
				}
				snap.Chunks = append(snap.Chunks, storage.NewChunkRef(ce.meta, ce.src, nil))
			}
			snap.Deletes = mods.ForSeries(id)
			data, err := mergeread.Merge(snap, everything)
			if err != nil {
				return fmt.Errorf("lsm: compact %s: %w", id, err)
			}
			if len(data) > 0 {
				merged[id] = data
			}
		}
		gens[i].merged = merged
		if len(merged) == 0 {
			return nil
		}
		name := fmt.Sprintf("%06d.seq.tsf", e.fileSeq.Add(1)-1)
		path := filepath.Join(e.opts.Dir, name)
		w, err := tsfile.Create(path)
		if err != nil {
			return err
		}
		for _, id := range ids {
			data := merged[id]
			for len(data) > 0 {
				n := len(data)
				if n > e.opts.FlushThreshold {
					n = e.opts.FlushThreshold
				}
				if _, err := w.WriteChunk(id, e.allocVersion(), e.opts.Codec, data[:n]); err != nil {
					w.Abort()
					return err
				}
				data = data[n:]
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		r, err := e.openTSFile(path)
		if err != nil {
			return fmt.Errorf("lsm: reopen compacted file: %w", err)
		}
		gens[i].reader = r
		gens[i].path = path
		return nil
	})
	if err != nil {
		// Drop whatever new-generation files were staged; the old
		// generation was never touched and stays authoritative.
		for _, g := range gens {
			if g.reader != nil {
				g.reader.Close()
				os.Remove(g.path)
			}
		}
		return e.classifyWrite(err)
	}

	// Swap in the new generation: the old files are unlinked but their
	// handles stay open until engine Close, so snapshots taken before this
	// compaction can still read the chunks they reference.
	e.fileMu.Lock()
	oldFiles := e.files
	e.files = nil
	for _, g := range gens {
		if g.reader != nil {
			e.files = append(e.files, g.reader)
		}
	}
	// The unsequence space is folded into the new sequence generation.
	e.unseqFiles = 0
	e.fileMu.Unlock()
	for i, sh := range e.shards {
		sh.chunks = make(map[string][]chunkEntry)
		sh.maxSeqTime = make(map[string]int64)
		if r := gens[i].reader; r != nil {
			src := e.sourceFor(r)
			for _, m := range r.Metas() {
				sh.chunks[m.SeriesID] = append(sh.chunks[m.SeriesID], chunkEntry{meta: m, src: src})
			}
		}
		for id, data := range gens[i].merged {
			sh.maxSeqTime[id] = data[len(data)-1].T
		}
	}
	retire := func() error {
		e.fileMu.Lock()
		defer e.fileMu.Unlock()
		for _, f := range oldFiles {
			hasQuarantined := false
			for _, m := range f.Metas() {
				if quar[chunkID{m.SeriesID, m.Version}] {
					hasQuarantined = true
					break
				}
			}
			if hasQuarantined {
				bad, err := uniqueBadPath(f.Path())
				if err == nil {
					err = os.Rename(f.Path(), bad)
				}
				if err != nil {
					return fmt.Errorf("lsm: quarantine pre-compaction file: %w", err)
				}
				e.badFiles++
			} else if err := os.Remove(f.Path()); err != nil {
				return fmt.Errorf("lsm: remove pre-compaction file: %w", err)
			}
			e.retired = append(e.retired, f)
		}
		return nil
	}
	if err := retire(); err != nil {
		return err
	}
	// Deletes are folded into the compacted chunks; reset the sidecar.
	if err := e.resetMods(); err != nil {
		return err
	}
	// The WAL may still hold delete records (they don't count toward the
	// flush threshold, so a flush can skip the reset). Everything in it
	// is now durable in the compacted generation; drop it so recovery does
	// not resurrect folded-in tombstones.
	if e.wal != nil {
		if err := e.step("compact.walreset"); err != nil {
			return err
		}
		if err := e.walResetAll(); err != nil {
			return err
		}
	}
	// Every quarantined chunk belonged to the retired generation.
	e.quarMu.Lock()
	e.quarantined = make(map[chunkID]error)
	e.quarMu.Unlock()
	// Compaction preserves the merged view, so existing cells stay valid;
	// but with every memtable flushed and quarantined data folded away this
	// is the cheapest moment to rebuild whatever is stale and persist the
	// manifest.
	for _, sh := range e.shards {
		if err := e.pyrRebuildShard(sh); err != nil {
			return err
		}
	}
	return e.pyrMaybeSave()
}

// resetMods replaces the delete sidecar with an empty one. Caller holds all
// shard locks.
func (e *Engine) resetMods() error {
	path := filepath.Join(e.opts.Dir, "deletes.mods")
	if err := e.modsLog().Close(); err != nil {
		return fmt.Errorf("lsm: close mods: %w", err)
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("lsm: remove mods: %w", err)
	}
	mods, err := tsfile.OpenModLog(path)
	if err != nil {
		return fmt.Errorf("lsm: reopen mods: %w", err)
	}
	e.mods.Store(mods)
	return nil
}
