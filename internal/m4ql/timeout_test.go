package m4ql

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/series"
)

func TestParseTimeoutClause(t *testing.T) {
	for _, q := range []string{
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) TIMEOUT 250`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) TIMEOUT 250 USING UDF`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) STRICT TIMEOUT 250 PARALLEL 2`,
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if stmt.Timeout != 250*time.Millisecond {
			t.Errorf("%s: timeout = %v", q, stmt.Timeout)
		}
	}
	if stmt, err := Parse(`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4)`); err != nil || stmt.Timeout != 0 {
		t.Errorf("absent clause: stmt=%+v err=%v", stmt, err)
	}
	bad := []string{
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) TIMEOUT 0`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) TIMEOUT -5`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) TIMEOUT`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(4) TIMEOUT 5 TIMEOUT 5`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

// TestExecuteTimeoutAndBudget: a generous TIMEOUT changes nothing; context
// limits (the server's defaults) cap the query, degrading it in lenient
// mode and failing it typed under STRICT.
func TestExecuteTimeoutAndBudget(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 200; i++ {
		e.Write("s", series.Point{T: int64(i * 5), V: float64((i * 13) % 31)})
		if i%20 == 19 {
			e.Flush() // many small overlapping-era chunks
		}
	}
	e.Flush()
	e.Delete("s", 200, 400)

	base, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(7)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(7) TIMEOUT 60000`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, base.Rows) {
		t.Error("generous TIMEOUT changed the result")
	}

	// Server-wide defaults arrive through the context.
	ctx := govern.WithLimits(context.Background(), govern.Limits{MaxChunks: 1})
	res, err = RunContext(ctx, e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(7)`)
	if err != nil {
		t.Fatalf("lenient budgeted query must degrade, not fail: %v", err)
	}
	if !res.Partial || len(res.Warnings) == 0 {
		t.Fatalf("budget-capped query not marked partial (partial=%v warnings=%d)", res.Partial, len(res.Warnings))
	}
	for _, w := range res.Warnings {
		if !strings.Contains(w, "budget") && !strings.Contains(w, "unreadable") {
			t.Fatalf("unexpected warning shape: %q", w)
		}
	}

	_, err = RunContext(ctx, e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(7) STRICT`)
	if !errors.Is(err, govern.ErrBudgetExceeded) {
		t.Fatalf("strict budget-capped query: got %v, want ErrBudgetExceeded", err)
	}
}
