package workload

import (
	"math"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
)

func TestPresetsGenerateValidSeries(t *testing.T) {
	for _, p := range Presets() {
		data := p.Generate(5000, 1)
		if len(data) != 5000 {
			t.Fatalf("%s: %d points", p.Name, len(data))
		}
		if err := data.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, pt := range data {
			if math.IsInf(pt.V, 0) {
				t.Fatalf("%s: infinite value", p.Name)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := KOB()
	a := p.Generate(1000, 42)
	b := p.Generate(1000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := p.Generate(1000, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestSkewedPresetsHaveGaps(t *testing.T) {
	// KOB/RcvTime must show the skewed inter-arrival distribution that
	// drives Figures 10/11/14; BallSpeed/MF03 must be near regular.
	gapRatio := func(p Preset) float64 {
		data := p.Generate(20000, 7)
		var maxDelta, medDelta int64
		deltas := make([]int64, 0, len(data)-1)
		for i := 1; i < len(data); i++ {
			d := data[i].T - data[i-1].T
			deltas = append(deltas, d)
			if d > maxDelta {
				maxDelta = d
			}
		}
		// crude median
		for _, d := range deltas {
			if d == p.IntervalMs {
				medDelta = d
				break
			}
		}
		if medDelta == 0 {
			medDelta = 1
		}
		return float64(maxDelta) / float64(medDelta)
	}
	if r := gapRatio(KOB()); r < 50 {
		t.Errorf("KOB max/median delta = %.0f, want skewed (>=50)", r)
	}
	if r := gapRatio(RcvTime()); r < 50 {
		t.Errorf("RcvTime max/median delta = %.0f, want skewed (>=50)", r)
	}
	if r := gapRatio(MF03()); r > 2000 {
		t.Errorf("MF03 max/median delta = %.0f, want near-regular", r)
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(0.001, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantNames := []string{"BallSpeed", "MF03", "KOB", "RcvTime"}
	for i, r := range rows {
		if r.Dataset != wantNames[i] {
			t.Errorf("row %d = %s, want %s", i, r.Dataset, wantNames[i])
		}
		if r.Points <= 0 || r.SpanMillis <= 0 {
			t.Errorf("row %+v has empty data", r)
		}
	}
	// Paper-relative cardinality ordering: MF03 > BallSpeed > KOB > RcvTime.
	if !(rows[1].Points > rows[0].Points && rows[0].Points > rows[2].Points && rows[2].Points > rows[3].Points) {
		t.Errorf("cardinality ordering broken: %+v", rows)
	}
}

func newEngine(t *testing.T, chunkSize int) *lsm.Engine {
	t.Helper()
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), FlushThreshold: chunkSize, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestLoadNoOverlap(t *testing.T) {
	e := newEngine(t, 100)
	data := KOB().Generate(1000, 3)
	if err := Load(e, "s", data, LoadOptions{ChunkSize: 100}); err != nil {
		t.Fatal(err)
	}
	r := series.TimeRange{Start: 0, End: math.MaxInt64}
	pct, err := OverlapPercentage(e, "s", r)
	if err != nil {
		t.Fatal(err)
	}
	if pct != 0 {
		t.Errorf("overlap = %.2f, want 0", pct)
	}
	snap, _ := e.Snapshot("s", r)
	if len(snap.Chunks) != 10 {
		t.Errorf("chunks = %d, want 10", len(snap.Chunks))
	}
	merged, err := mergeread.Merge(snap, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(data) {
		t.Fatalf("merged %d points, want %d", len(merged), len(data))
	}
}

func TestLoadFullOverlap(t *testing.T) {
	e := newEngine(t, 100)
	data := MF03().Generate(1000, 3)
	if err := Load(e, "s", data, LoadOptions{ChunkSize: 100, OverlapFraction: 1}); err != nil {
		t.Fatal(err)
	}
	r := series.TimeRange{Start: 0, End: math.MaxInt64}
	pct, err := OverlapPercentage(e, "s", r)
	if err != nil {
		t.Fatal(err)
	}
	if pct < 0.99 {
		t.Errorf("overlap = %.2f, want ~1", pct)
	}
	// Data must round-trip regardless of write order.
	snap, _ := e.Snapshot("s", r)
	merged, err := mergeread.Merge(snap, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(data) {
		t.Fatalf("merged %d points, want %d", len(merged), len(data))
	}
	for i := range merged {
		if merged[i] != data[i] {
			t.Fatalf("point %d: %v vs %v", i, merged[i], data[i])
		}
	}
}

func TestLoadPartialOverlapBetween(t *testing.T) {
	e := newEngine(t, 50)
	data := MF03().Generate(2000, 9)
	if err := Load(e, "s", data, LoadOptions{ChunkSize: 50, OverlapFraction: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	pct, err := OverlapPercentage(e, "s", series.TimeRange{Start: 0, End: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	if pct < 0.2 || pct > 0.8 {
		t.Errorf("overlap = %.2f, want around 0.5", pct)
	}
}

func TestLoadValidation(t *testing.T) {
	e := newEngine(t, 100)
	if err := Load(e, "s", nil, LoadOptions{ChunkSize: 0}); err == nil {
		t.Error("ChunkSize=0 accepted")
	}
	if err := Load(e, "s", nil, LoadOptions{ChunkSize: 10, OverlapFraction: 2}); err == nil {
		t.Error("OverlapFraction=2 accepted")
	}
}

func TestApplyDeletes(t *testing.T) {
	e := newEngine(t, 100)
	data := MF03().Generate(500, 4)
	if err := Load(e, "s", data, LoadOptions{ChunkSize: 100}); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDeletes(e, "s", data, DeleteOptions{Count: 10, RangeMillis: 100, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if got := e.Info().Deletes; got != 10 {
		t.Errorf("deletes = %d, want 10", got)
	}
	// Deletes must actually remove points.
	snap, _ := e.Snapshot("s", series.TimeRange{Start: 0, End: math.MaxInt64})
	merged, err := mergeread.Merge(snap, series.TimeRange{Start: 0, End: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) >= len(data) {
		t.Errorf("merged %d points, want fewer than %d", len(merged), len(data))
	}
}

func TestApplyDeletesNoop(t *testing.T) {
	e := newEngine(t, 100)
	if err := ApplyDeletes(e, "s", nil, DeleteOptions{Count: 5}); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDeletes(e, "s", series.Series{{T: 1, V: 1}}, DeleteOptions{Count: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOverlapSecondWriteFullyOutOfOrder(t *testing.T) {
	// The interleave writer must put the union's last point in the first
	// write, so the second write lands entirely in the unsequence space
	// and each pair yields exactly two chunks.
	e := newEngine(t, 100)
	data := MF03().Generate(400, 5) // 2 pairs at chunk size 100
	if err := Load(e, "s", data, LoadOptions{ChunkSize: 100, OverlapFraction: 1}); err != nil {
		t.Fatal(err)
	}
	info := e.Info()
	if info.Chunks != 4 {
		t.Errorf("chunks = %d, want 4", info.Chunks)
	}
	if info.UnseqFiles != 2 {
		t.Errorf("unseq files = %d, want 2 (one per pair)", info.UnseqFiles)
	}
}
