// Package groupby implements per-span aggregation over LSM storage — the
// GroupBy companion of the M4 operator that dashboards combine with line
// charts (counts, averages and envelopes per pixel column).
//
// Two execution paths:
//
//   - When every requested function is representation-based
//     (First/Last/Min/Max), the query runs on the merge-free M4-LSM
//     operator: Min/Max are exactly BP/TP values and First/Last are FP/LP
//     values, so chunk metadata answers them without merging.
//   - Otherwise (Count/Sum/Avg need every surviving point) the query
//     streams the merge reader once, like the UDF baseline.
package groupby

import (
	"fmt"

	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/storage"
)

// Func is one aggregate function.
type Func uint8

// Supported aggregate functions.
const (
	Count Func = iota
	Sum
	Avg
	Min
	Max
	First
	Last
	numFuncs
)

var funcNames = [numFuncs]string{"count", "sum", "avg", "min", "max", "first", "last"}

// String returns the lower-case function name.
func (f Func) String() string {
	if int(f) < len(funcNames) {
		return funcNames[f]
	}
	return fmt.Sprintf("func(%d)", int(f))
}

// ByName resolves a case-insensitive function name.
func ByName(name string) (Func, bool) {
	for i, n := range funcNames {
		if equalFold(n, name) {
			return Func(i), true
		}
	}
	return 0, false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Row is the aggregate vector of one non-empty span.
type Row struct {
	Span   int
	Values []float64 // parallel to the requested functions
}

// representable reports whether fns can be answered by the four M4
// representation points alone.
func representable(fns []Func) bool {
	for _, f := range fns {
		switch f {
		case Min, Max, First, Last:
		default:
			return false
		}
	}
	return true
}

// Compute evaluates the aggregate functions per time span. Spans without
// surviving points are omitted.
func Compute(snap *storage.Snapshot, q m4.Query, fns []Func) ([]Row, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(fns) == 0 {
		return nil, fmt.Errorf("groupby: no aggregate functions")
	}
	for _, f := range fns {
		if f >= numFuncs {
			return nil, fmt.Errorf("groupby: unknown function %d", f)
		}
	}
	if representable(fns) {
		return computeFromM4(snap, q, fns)
	}
	return computeFromMerge(snap, q, fns)
}

// computeFromM4 answers envelope functions from the merge-free operator.
func computeFromM4(snap *storage.Snapshot, q m4.Query, fns []Func) ([]Row, error) {
	aggs, err := m4lsm.Compute(snap, q)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for i, a := range aggs {
		if a.Empty {
			continue
		}
		row := Row{Span: i, Values: make([]float64, len(fns))}
		for j, f := range fns {
			switch f {
			case Min:
				row.Values[j] = a.Bottom.V
			case Max:
				row.Values[j] = a.Top.V
			case First:
				row.Values[j] = a.First.V
			case Last:
				row.Values[j] = a.Last.V
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// spanAccum accumulates one span's running aggregates.
type spanAccum struct {
	count       int64
	sum         float64
	min, max    float64
	first, last float64
}

// computeFromMerge streams the merged series once.
func computeFromMerge(snap *storage.Snapshot, q m4.Query, fns []Func) ([]Row, error) {
	it, err := mergeread.NewIterator(snap, q.Range())
	if err != nil {
		return nil, err
	}
	accums := make([]spanAccum, q.W)
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		i := q.SpanIndex(p.T)
		if i < 0 {
			continue
		}
		acc := &accums[i]
		if acc.count == 0 {
			*acc = spanAccum{min: p.V, max: p.V, first: p.V}
		}
		if p.V < acc.min {
			acc.min = p.V
		}
		if p.V > acc.max {
			acc.max = p.V
		}
		acc.last = p.V
		acc.sum += p.V
		acc.count++
	}
	var rows []Row
	for i := range accums {
		acc := &accums[i]
		if acc.count == 0 {
			continue
		}
		row := Row{Span: i, Values: make([]float64, len(fns))}
		for j, f := range fns {
			switch f {
			case Count:
				row.Values[j] = float64(acc.count)
			case Sum:
				row.Values[j] = acc.sum
			case Avg:
				row.Values[j] = acc.sum / float64(acc.count)
			case Min:
				row.Values[j] = acc.min
			case Max:
				row.Values[j] = acc.max
			case First:
				row.Values[j] = acc.first
			case Last:
				row.Values[j] = acc.last
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
