package mergeread

import (
	"math/rand"
	"reflect"
	"testing"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/testutil"
)

// buildSnapshot assembles a snapshot from explicit chunks and deletes.
func buildSnapshot(t *testing.T, chunks map[storage.Version]series.Series, dels []storage.Delete) *storage.Snapshot {
	t.Helper()
	src := storage.NewMemSource()
	stats := &storage.Stats{}
	snap := &storage.Snapshot{SeriesID: "s", Stats: stats, Deletes: dels}
	for ver, data := range chunks {
		meta, err := src.AddChunk("s", ver, data)
		if err != nil {
			t.Fatal(err)
		}
		snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, src, stats))
	}
	return snap
}

func TestMergeSingleChunk(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 20, V: 2}},
	}, nil)
	got, err := Merge(snap, series.TimeRange{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := series.Series{{T: 10, V: 1}, {T: 20, V: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestMergePaperExample(t *testing.T) {
	// Figure 5: C1 (black dots), C3 (white dots) overlapping, D2 deleting
	// a middle range of C1 only. Point PA in C1 is overwritten by PB in
	// C3; PC in C1 is deleted by D2.
	c1 := series.Series{{T: 10, V: 5}, {T: 20, V: 6}, {T: 30, V: 4}, {T: 40, V: 7}, {T: 50, V: 5}, {T: 60, V: 3}}
	c3 := series.Series{{T: 40, V: 1}, {T: 55, V: 2}, {T: 65, V: 2}, {T: 75, V: 4}, {T: 85, V: 6}, {T: 95, V: 5}, {T: 99, V: 7}}
	d2 := storage.Delete{SeriesID: "s", Version: 2, Start: 18, End: 24} // covers t=20 (PC)
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: c1, 3: c3}, []storage.Delete{d2})
	got, err := Merge(snap, series.TimeRange{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	// 6 + 7 points, minus PC (deleted), minus PA (t=40 of C1 overwritten
	// by C3's value 1) = 11 latest points.
	if len(got) != 11 {
		t.Fatalf("got %d points, want 11 (Example 2.8)", len(got))
	}
	if i, ok := got.IndexOf(40); !ok || got[i].V != 1 {
		t.Errorf("t=40 = %v, want overwrite value 1", got[i])
	}
	if _, ok := got.IndexOf(20); ok {
		t.Error("deleted point t=20 survived")
	}
}

func TestMergeDeleteOnlyAffectsOlderVersions(t *testing.T) {
	// Figure 4: D2 works on C1 but not C3.
	c1 := series.Series{{T: 10, V: 1}, {T: 20, V: 1}}
	c3 := series.Series{{T: 12, V: 2}, {T: 22, V: 2}}
	d2 := storage.Delete{SeriesID: "s", Version: 2, Start: 0, End: 100}
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: c1, 3: c3}, []storage.Delete{d2})
	got, _ := Merge(snap, series.TimeRange{Start: 0, End: 100})
	want := series.Series{{T: 12, V: 2}, {T: 22, V: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMergeRangeRestriction(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 20, V: 2}, {T: 30, V: 3}, {T: 40, V: 4}},
	}, nil)
	got, _ := Merge(snap, series.TimeRange{Start: 20, End: 40})
	want := series.Series{{T: 20, V: 2}, {T: 30, V: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMergeEmptyRange(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: {{T: 10, V: 1}}}, nil)
	got, _ := Merge(snap, series.TimeRange{Start: 50, End: 60})
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestMergeTripleOverwrite(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}},
		2: {{T: 10, V: 2}},
		5: {{T: 10, V: 5}},
	}, nil)
	got, _ := Merge(snap, series.TimeRange{Start: 0, End: 100})
	if len(got) != 1 || got[0].V != 5 {
		t.Fatalf("got %v, want latest value 5", got)
	}
}

func TestMergeDeleteThenRewrite(t *testing.T) {
	// Delete at version 2 kills v1's point; the version-3 rewrite survives.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}},
		3: {{T: 10, V: 3}},
	}, []storage.Delete{{SeriesID: "s", Version: 2, Start: 10, End: 10}})
	got, _ := Merge(snap, series.TimeRange{Start: 0, End: 100})
	if len(got) != 1 || got[0].V != 3 {
		t.Fatalf("got %v, want rewrite value 3", got)
	}
}

func TestMergeAllDeleted(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 20, V: 2}},
	}, []storage.Delete{{SeriesID: "s", Version: 9, Start: 0, End: 100}})
	got, _ := Merge(snap, series.TimeRange{Start: 0, End: 100})
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestIteratorStreaming(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 30, V: 3}},
		2: {{T: 20, V: 2}},
	}, nil)
	it, err := NewIterator(snap, series.TimeRange{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	var ts []int64
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		ts = append(ts, p.T)
	}
	if !reflect.DeepEqual(ts, []int64{10, 20, 30}) {
		t.Fatalf("order = %v", ts)
	}
	// Exhausted iterator keeps returning false.
	if _, ok := it.Next(); ok {
		t.Error("Next after exhaustion returned a point")
	}
}

func TestMergeAgainstNaiveProperty(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := testutil.RandomSnapshot(rng, testutil.DefaultGenConfig)
		r := series.TimeRange{Start: rng.Int63n(60), End: rng.Int63n(120) + 30}
		want, err := testutil.NaiveMerge(snap, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Merge(snap, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d range %v:\n got %v\nwant %v", seed, r, got, want)
		}
	}
}

func TestMergedOutputIsSorted(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		snap := testutil.RandomSnapshot(rng, testutil.DefaultGenConfig)
		got, err := Merge(snap, series.TimeRange{Start: 0, End: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestMergeCountsLoads(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}},
		2: {{T: 20, V: 2}},
	}, nil)
	if _, err := Merge(snap, series.TimeRange{Start: 0, End: 100}); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.ChunksLoaded != 2 {
		t.Errorf("ChunksLoaded = %d, want 2 (baseline loads everything)", snap.Stats.ChunksLoaded)
	}
}
