package main

import (
	"bytes"
	"strings"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/series"
)

func TestRepl(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 20; i++ {
		e.Write("root.s", series.Point{T: int64(i * 10), V: float64(i % 4)})
	}
	e.Flush()

	in := strings.NewReader(strings.Join([]string{
		".help",
		".series",
		".info",
		".unknown",
		"SELECT M4(*) FROM root.s WHERE time >= 0 AND time < 200 GROUP BY SPANS(2)",
		"EXPLAIN SELECT M4(*) FROM root.s WHERE time >= 0 AND time < 200 GROUP BY SPANS(2) USING UDF",
		"SELECT garbage",
		"",
		".quit",
	}, "\n"))
	var out bytes.Buffer
	repl(e, in, &out)
	got := out.String()
	for _, want := range []string{
		"commands:",
		"root.s",
		"files=1",
		"unknown command",
		"FirstTime",
		"M4-UDF",
		"error:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("repl output missing %q:\n%s", want, got)
		}
	}
}

func TestReplEOF(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var out bytes.Buffer
	repl(e, strings.NewReader(""), &out) // EOF immediately: must return
}
