package csvio

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"m4lsm/internal/series"
)

func TestRoundTrip(t *testing.T) {
	s := series.Series{{T: 1, V: 1.5}, {T: 2, V: -3}, {T: 1000000000000, V: 0}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("got %v, want %v", got, s)
	}
}

func TestReadHeaderOptional(t *testing.T) {
	withHeader := "time,value\n1,2\n3,4\n"
	without := "1,2\n3,4\n"
	want := series.Series{{T: 1, V: 2}, {T: 3, V: 4}}
	for _, in := range []string{withHeader, without} {
		got, err := Read(strings.NewReader(in), false)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%q: got %v", in, got)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"time,value\n1\n",        // wrong field count
		"time,value\n1,2\nx,3\n", // bad timestamp mid-file
		"time,value\n1,zz\n",     // bad value
		"time,value\n5,1\n3,2\n", // unsorted without sortDedup
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in), false); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestReadSortDedup(t *testing.T) {
	in := "time,value\n5,1\n3,2\n5,9\n"
	got, err := Read(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	want := series.Series{{T: 3, V: 2}, {T: 5, V: 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""), false)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	got, err = Read(strings.NewReader("time,value\n"), false)
	if err != nil || len(got) != 0 {
		t.Fatalf("header only: %v, %v", got, err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(deltas []uint16, vals []int32) bool {
		n := len(deltas)
		if len(vals) < n {
			n = len(vals)
		}
		s := make(series.Series, 0, n)
		tt := int64(0)
		for i := 0; i < n; i++ {
			tt += int64(deltas[i]) + 1
			s = append(s, series.Point{T: tt, V: float64(vals[i]) / 8})
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf, false)
		if err != nil {
			return false
		}
		if len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
