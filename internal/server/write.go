// The /write ingestion endpoint: a line-protocol-ish text body, one point
// per line ("series t v", whitespace-separated; blank lines and #-comments
// skipped), batched per series and handed to Engine.WriteBatch. The body is
// bounded by http.MaxBytesReader, admission runs through the dedicated
// write gate (429 + Retry-After when shedding), engine backpressure maps to
// 429 and disk-full/read-only to 503 — the same typed-error surface /query
// has, so one retry loop serves both directions of the API.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

// maxWriteLineBytes bounds one line of the write body; anything longer is
// malformed input, not data.
const maxWriteLineBytes = 1 << 10

// parseWriteBody parses the /write line protocol into batch entries,
// preserving first-appearance series order and per-series point order.
// Strict by design: unknown field counts, unparsable numbers, NaN/Inf
// values and oversized lines all reject the whole body with a line-numbered
// error — ingestion is all-or-nothing per request, so a client never has to
// guess which half of its batch landed.
func parseWriteBody(r *bufio.Scanner) ([]lsm.BatchEntry, int, error) {
	var order []string
	points := map[string]series.Series{}
	total := 0
	line := 0
	for r.Scan() {
		line++
		text := strings.TrimSpace(r.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, 0, fmt.Errorf("line %d: want \"series t v\", got %d fields", line, len(fields))
		}
		id := fields[0]
		t, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: bad timestamp %q", line, fields[1])
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: bad value %q", line, fields[2])
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, 0, fmt.Errorf("line %d: non-finite value %q", line, fields[2])
		}
		if _, seen := points[id]; !seen {
			order = append(order, id)
		}
		points[id] = append(points[id], series.Point{T: t, V: v})
		total++
	}
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	if total == 0 {
		return nil, 0, errors.New("empty body: no points")
	}
	entries := make([]lsm.BatchEntry, 0, len(order))
	for _, id := range order {
		entries = append(entries, lsm.BatchEntry{SeriesID: id, Points: points[id]})
	}
	return entries, total, nil
}

// write ingests one batch. POST only; the response reports how many points
// and series landed — by the time it is written, every one of them is
// durable per the engine's ack ⇒ synced contract.
func (h *Handler) write(w http.ResponseWriter, r *http.Request) {
	ev := &obs.Event{When: time.Now(), Endpoint: "/write", RequestID: w.Header().Get("X-Request-ID")}
	defer h.finishEvent(w, ev)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, h.maxBody)
	sc := bufio.NewScanner(body)
	// The initial capacity must stay below the cap: bufio takes the larger
	// of the two as the real token limit.
	sc.Buffer(make([]byte, 0, 256), maxWriteLineBytes)
	entries, total, err := parseWriteBody(sc)
	if err != nil {
		ev.Error = err.Error()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		if errors.Is(err, bufio.ErrTooLong) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("line exceeds %d bytes", maxWriteLineBytes))
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ev.PointsWritten = int64(total)
	ev.SeriesWritten = len(entries)
	if err := h.engine.WriteBatch(entries...); err != nil {
		ev.Error = err.Error()
		if code, kind := mapQueryError(err); code != 0 {
			writeMappedError(w, code, kind, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"points": total,
		"series": len(entries),
	})
}
