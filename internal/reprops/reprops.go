// Package reprops defines the representation operators the engine can
// execute — M4 (the paper's FP/LP/BP/TP), MinMax, LTTB and MinMaxLTTB —
// as data the whole stack shares: the m4ql parser produces a Spec, the
// planner dispatches on it, the HTTP surface parses it from parameters,
// and the differential harness replays it against the Reduce oracle below.
//
// The reference algorithms here are the single source of truth for what
// each reduction means:
//
//   - MinMaxPoints is THE MinMax implementation: per span, the bottom and
//     top points in time order, deduplicated when one point is both. Both
//     the experiment harness and the m4lsm/m4udf execution paths call it,
//     so there is exactly one definition to keep correct.
//   - LTTB is the canonical count-based Largest-Triangle-Three-Buckets
//     (Steinarsson 2013; cf. arXiv:2305.00332): the global first point,
//     w−2 equal-count interior buckets each contributing the point that
//     maximizes the triangle area with the previously selected point and
//     the next bucket's average, and the global last point — exactly
//     min(w, n) points. Bucket boundaries use integer arithmetic, so the
//     selection is bit-for-bit deterministic across platforms.
//   - MinMaxLTTB (arXiv:2305.00332) preselects MinMax at Ratio·w time
//     spans and runs LTTB on the preselected subset: the preselection is
//     span-based, so the LSM path answers it from chunk metadata and
//     pyramid cells, while LTTB's sequential pass shrinks from n points
//     to at most 2·Ratio·w.
//
// Reduce applies any Spec to an in-memory merged series; it is the naive
// full-scan oracle every engine execution path is differentially tested
// against, bit for bit.
package reprops

import (
	"fmt"
	"strconv"
	"strings"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
)

// Kind names a representation operator. The zero value is M4, so zero
// Specs mean "the paper's default representation".
type Kind uint8

// The available representation operators.
const (
	KindM4 Kind = iota
	KindMinMax
	KindLTTB
	KindMinMaxLTTB
)

// String returns the lower-case operator name used in m4ql, HTTP
// parameters and metric labels.
func (k Kind) String() string {
	switch k {
	case KindMinMax:
		return "minmax"
	case KindLTTB:
		return "lttb"
	case KindMinMaxLTTB:
		return "minmaxlttb"
	default:
		return "m4"
	}
}

// DefaultRatio is the MinMaxLTTB preselection ratio when none is given:
// the MinMaxLTTB paper finds ratios around 4 visually indistinguishable
// from plain LTTB at a fraction of its cost.
const DefaultRatio = 4

// Ratio bounds: a ratio of 1 degenerates to per-span MinMax and huge
// ratios defeat the preselection, so both are rejected at parse time.
const (
	MinRatio = 2
	MaxRatio = 64
)

// Spec is a fully specified representation choice: the operator plus the
// MinMaxLTTB preselection ratio (0 means DefaultRatio; ignored by the
// other kinds). The zero Spec is plain M4.
type Spec struct {
	Kind  Kind
	Ratio int
}

// EffectiveRatio resolves the preselection ratio, applying the default.
func (s Spec) EffectiveRatio() int {
	if s.Ratio <= 0 {
		return DefaultRatio
	}
	return s.Ratio
}

// String renders the spec the way ParseSpec reads it: the operator name,
// with ":ratio" appended for a MinMaxLTTB with an explicit ratio.
func (s Spec) String() string {
	if s.Kind == KindMinMaxLTTB && s.Ratio > 0 {
		return fmt.Sprintf("minmaxlttb:%d", s.Ratio)
	}
	return s.Kind.String()
}

// ParseKind parses an operator name (case-insensitive).
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "m4":
		return KindM4, nil
	case "minmax":
		return KindMinMax, nil
	case "lttb":
		return KindLTTB, nil
	case "minmaxlttb":
		return KindMinMaxLTTB, nil
	}
	return KindM4, fmt.Errorf("reprops: unknown representation %q (want m4, minmax, lttb or minmaxlttb)", name)
}

// ParseSpec parses "name" or "minmaxlttb:ratio". Only MinMaxLTTB accepts
// a ratio, and it must lie in [MinRatio, MaxRatio].
func ParseSpec(s string) (Spec, error) {
	name, ratioText, hasRatio := strings.Cut(s, ":")
	kind, err := ParseKind(name)
	if err != nil {
		return Spec{}, err
	}
	if !hasRatio {
		return Spec{Kind: kind}, nil
	}
	if kind != KindMinMaxLTTB {
		return Spec{}, fmt.Errorf("reprops: %s does not take a ratio", kind)
	}
	ratio, err := strconv.Atoi(ratioText)
	if err != nil || ratio < MinRatio || ratio > MaxRatio {
		return Spec{}, fmt.Errorf("reprops: minmaxlttb ratio must be an integer in [%d, %d], got %q", MinRatio, MaxRatio, ratioText)
	}
	return Spec{Kind: kind, Ratio: ratio}, nil
}

// Specs returns one spec per operator (MinMaxLTTB at the default ratio),
// in presentation order — the sweep the benchmarks and harnesses iterate.
func Specs() []Spec {
	return []Spec{{Kind: KindM4}, {Kind: KindMinMax}, {Kind: KindLTTB}, {Kind: KindMinMaxLTTB}}
}

// PreQuery derives the MinMaxLTTB preselection query: the same time range
// split into ratio·w spans. Every execution path and the oracle build the
// preselection through this one helper, so they bucket identically.
func PreQuery(q m4.Query, ratio int) m4.Query {
	return m4.Query{Tqs: q.Tqs, Tqe: q.Tqe, W: q.W * ratio}
}

// MinMaxPoints flattens M4 aggregates into the MinMax reduction: per
// non-empty span the bottom and top points in time order, deduplicated
// when a single point is both extremes. Span outputs are disjoint and
// spans are in time order, so the result is sorted.
func MinMaxPoints(aggs []m4.Aggregate) series.Series {
	out := make(series.Series, 0, 2*len(aggs))
	for _, a := range aggs {
		if a.Empty {
			continue
		}
		lo, hi := a.Bottom, a.Top
		if lo.T > hi.T {
			lo, hi = hi, lo
		}
		out = append(out, lo)
		if hi.T != lo.T {
			out = append(out, hi)
		}
	}
	return out
}

// LTTB downsamples a time-sorted series to exactly min(w, n) points with
// Largest-Triangle-Three-Buckets. The first and last points are always
// kept; each of the w−2 interior buckets (equal point counts, integer
// boundaries) keeps the point maximizing the triangle area spanned with
// the previously selected point and the mean of the next bucket. Ties
// keep the earliest point, so the output is fully deterministic.
func LTTB(s series.Series, w int) series.Series {
	n := len(s)
	if w <= 0 || n == 0 {
		return nil
	}
	if n <= w {
		return append(series.Series(nil), s...)
	}
	switch w {
	case 1:
		return series.Series{s[0]}
	case 2:
		return series.Series{s[0], s[n-1]}
	}
	out := make(series.Series, 0, w)
	out = append(out, s[0])
	// Interior buckets partition s[1:n-1] into w-2 equal-count ranges:
	// bucket i is s[start(i):start(i+1)) with start(i) = 1 + i*(n-2)/(w-2).
	// n-2 >= w-2 here, so every bucket is non-empty.
	start := func(i int) int { return 1 + i*(n-2)/(w-2) }
	for i := 0; i < w-2; i++ {
		a := out[len(out)-1]
		// The third triangle vertex is the next bucket's mean; for the
		// last interior bucket that collapses to the global last point.
		nb0, nb1 := start(i+1), start(i+2)
		if nb1 > n-1 {
			nb1 = n - 1
		}
		var ct, cv float64
		if nb0 >= n-1 {
			ct, cv = float64(s[n-1].T), s[n-1].V
		} else {
			for _, p := range s[nb0:nb1] {
				ct += float64(p.T)
				cv += p.V
			}
			m := float64(nb1 - nb0)
			ct, cv = ct/m, cv/m
		}
		bestArea := -1.0
		var best series.Point
		for _, p := range s[start(i):start(i+1)] {
			// Twice the triangle area |a, p, c|; the factor cancels in
			// comparisons.
			area := abs((float64(a.T)-ct)*(p.V-a.V) - (float64(a.T)-float64(p.T))*(cv-a.V))
			if area > bestArea {
				bestArea = area
				best = p
			}
		}
		out = append(out, best)
	}
	return append(out, s[n-1])
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Clip returns the points of s inside the query's half-open time range.
// s must be sorted by time; the result aliases s.
func Clip(s series.Series, q m4.Query) series.Series {
	lo, hi := 0, len(s)
	for lo < hi && s[lo].T < q.Tqs {
		lo++
	}
	for hi > lo && s[hi-1].T >= q.Tqe {
		hi--
	}
	return s[lo:hi]
}

// Reduce applies the spec to an in-memory merged series: the naive
// full-scan oracle. Every engine execution path (m4lsm span machinery,
// m4udf merge-and-scan) must reproduce Reduce's output bit for bit on
// tie-free data; the differential harness enforces exactly that.
func Reduce(spec Spec, q m4.Query, s series.Series) (series.Series, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindMinMax:
		aggs, err := m4.ComputeSeries(q, s)
		if err != nil {
			return nil, err
		}
		return MinMaxPoints(aggs), nil
	case KindLTTB:
		return LTTB(Clip(s, q), q.W), nil
	case KindMinMaxLTTB:
		pre, err := Reduce(Spec{Kind: KindMinMax}, PreQuery(q, spec.EffectiveRatio()), s)
		if err != nil {
			return nil, err
		}
		return LTTB(pre, q.W), nil
	default:
		aggs, err := m4.ComputeSeries(q, s)
		if err != nil {
			return nil, err
		}
		return m4.Points(aggs), nil
	}
}
