package m4lsm

import (
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Table 1 of the paper classifies the chunk data read operations of the
// operator:
//
//	FP/LP verification: no data read at all
//	BP/TP verification: (a) existence check at a timestamp
//	FP/LP generation under deletes: (b) closest point after/before a time
//	BP/TP generation under deletes/updates: (c) read all points
//
// These tests pin each row to the stats counters.

func TestTable1FPLPVerificationReadsNothing(t *testing.T) {
	// Overlapping chunks but no deletes: FP/LP candidates verify without
	// any read. BP/TP does probe (case a), so assert on a scenario where
	// the value extremes need no cross-chunk check either: make each
	// chunk's extremes outside the other's interval.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 5}, {T: 30, V: 6}},
		2: {{T: 40, V: 1}, {T: 60, V: 2}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	if _, err := Compute(snap, q); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.BoundaryProbes != 0 {
		t.Errorf("FP/LP verification triggered boundary probes: %v", snap.Stats)
	}
	if snap.Stats.ChunksLoaded != 0 {
		t.Errorf("verification loaded chunks: %v", snap.Stats)
	}
}

func TestTable1CaseAExistenceProbe(t *testing.T) {
	// BP/TP candidate inside a later chunk's interval: one existence
	// check on that chunk's timestamps, nothing else.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 15, V: 9}, {T: 20, V: 2}},
		2: {{T: 12, V: 4}, {T: 22, V: 5}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 30, W: 1}
	if _, err := Compute(snap, q); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.ExistProbes == 0 {
		t.Errorf("no existence probes despite interval overlap: %v", snap.Stats)
	}
	if snap.Stats.BoundaryProbes != 0 {
		t.Errorf("unexpected boundary probes: %v", snap.Stats)
	}
	if snap.Stats.ChunksLoaded != 0 {
		t.Errorf("existence check must use partial loads only: %v", snap.Stats)
	}
}

func TestTable1CaseBBoundaryProbe(t *testing.T) {
	// FP candidate deleted: the chunk's new first point is found with a
	// closest-point-after probe (case b); the chunk is loaded in full
	// only because its new first point wins the span and needs a value.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 20, V: 2}, {T: 30, V: 3}},
	}, []storage.Delete{{SeriesID: "s", Version: 2, Start: 0, End: 12}})
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].First.T != 20 {
		t.Fatalf("first = %v", got[0].First)
	}
	if snap.Stats.BoundaryProbes == 0 {
		t.Errorf("no boundary probes for deleted FP: %v", snap.Stats)
	}
}

func TestTable1CaseBNoLoadWhenAnotherChunkWins(t *testing.T) {
	// Example 3.2's essence: the delete-refuted chunks' bounds stay
	// behind another chunk's first point, so they are never loaded in
	// full — the probe alone (or nothing) suffices.
	// The deleted first points are not their chunks' value extremes, so
	// only FP is affected; the refuted chunks get timestamp probes but
	// never a full load.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 12, V: 5}, {T: 25, V: 4}, {T: 30, V: 6}},
		2: {{T: 10, V: 5}, {T: 22, V: 4.5}, {T: 28, V: 6.5}},
		4: {{T: 18, V: 2}, {T: 35, V: 8}, {T: 40, V: 3}},
	}, []storage.Delete{{SeriesID: "s", Version: 3, Start: 0, End: 15}})
	q := m4.Query{Tqs: 0, Tqe: 50, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].First != (series.Point{T: 18, V: 2}) {
		t.Fatalf("first = %v", got[0].First)
	}
	if snap.Stats.BoundaryProbes == 0 {
		t.Errorf("refuted FP candidates should probe: %v", snap.Stats)
	}
	if snap.Stats.ChunksLoaded != 0 {
		t.Errorf("refuted chunks were fully loaded: %v", snap.Stats)
	}
}

func TestTable1CaseCFullRead(t *testing.T) {
	// BP's metadata extremum is deleted: all points of the chunk are
	// read to recalculate (case c).
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 5}, {T: 20, V: -9}, {T: 30, V: 6}},
	}, []storage.Delete{{SeriesID: "s", Version: 2, Start: 20, End: 20}})
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Bottom.V != 5 {
		t.Fatalf("bottom = %v", got[0].Bottom)
	}
	if snap.Stats.ChunksLoaded != 1 {
		t.Errorf("deleted extremum must force a full read: %v", snap.Stats)
	}
}

func TestProbeCountersSumToIndexProbes(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 15, V: 9}, {T: 20, V: 2}},
		2: {{T: 12, V: 4}, {T: 22, V: 5}},
	}, []storage.Delete{{SeriesID: "s", Version: 3, Start: 0, End: 11}})
	q := m4.Query{Tqs: 0, Tqe: 30, W: 2}
	if _, err := Compute(snap, q); err != nil {
		t.Fatal(err)
	}
	s := snap.Stats
	if s.IndexProbes != s.ExistProbes+s.BoundaryProbes {
		t.Errorf("probe counters inconsistent: %v", s)
	}
}
