// Package encoding implements the column codecs used inside chunk files:
// zigzag varints, a delta-of-delta timestamp codec (the analogue of IoTDB's
// TS_2DIFF), a Gorilla XOR codec for float64 values, and plain fallbacks.
//
// The decode cost of these codecs is part of what the paper's baseline pays
// when it loads and merges whole chunks, so the codecs are real, not stubs.
package encoding

import (
	"errors"
	"fmt"
)

// ErrCorrupt reports a malformed encoded block.
var ErrCorrupt = errors.New("encoding: corrupt block")

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// bitWriter appends individual bits and bit fields to a byte buffer,
// most-significant bit first.
type bitWriter struct {
	buf  []byte
	nbit uint8 // bits already used in the last byte (0..7)
}

// writeBit appends a single bit.
func (w *bitWriter) writeBit(bit uint64) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
	}
	if bit != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.nbit)
	}
	w.nbit = (w.nbit + 1) & 7
}

// writeBits appends the low n bits of v, most significant first. n ≤ 64.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		n--
		w.writeBit((v >> n) & 1)
	}
}

// bytes returns the encoded buffer.
func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader consumes bits written by bitWriter.
type bitReader struct {
	buf []byte
	pos int   // byte position
	bit uint8 // bit position within buf[pos]
}

func newBitReader(b []byte) *bitReader { return &bitReader{buf: b} }

// readBit returns the next bit.
func (r *bitReader) readBit() (uint64, error) {
	if r.pos >= len(r.buf) {
		return 0, corruptf("bit stream exhausted at byte %d", r.pos)
	}
	bit := uint64(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return bit, nil
}

// readBits returns the next n bits as the low bits of a uint64.
func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | bit
	}
	return v, nil
}
