package difftest

import (
	"fmt"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
	"m4lsm/internal/viz"
	"m4lsm/internal/workload"
)

// TestDifferentialRepr is the representation-equivalence property test:
// seeded workloads with value-injective data, every query answered by
// every representation operator through the LSM path (pyramid on and off)
// and the UDF path, all bit-for-bit equal to the reference reduction over
// the oracle. A failure prints the seed; reproduce with
// difftest.RunRepr(seed, dir). The name extends TestDifferential so `make
// difftest` picks it up through the existing run filter.
func TestDifferentialRepr(t *testing.T) {
	n := 250
	if testing.Short() {
		n = 60
	}
	var pyramidSpans int64
	for i := 0; i < n; i++ {
		seed := int64(i + 1)
		c, err := GenerateRepr(seed, t.TempDir())
		if err != nil {
			t.Fatalf("repr mismatch at seed %d (reproduce: difftest.RunRepr(%d, dir)): %v", seed, seed, err)
		}
		err = c.CheckRepr()
		c.Close()
		if err != nil {
			t.Fatalf("repr mismatch at seed %d (reproduce: difftest.RunRepr(%d, dir)): %v", seed, seed, err)
		}
		pyramidSpans += c.PyramidSpans
	}
	if pyramidSpans == 0 {
		t.Fatal("pyramid answered zero spans across the repr differential run; pyramid-on checks were vacuous")
	}
	t.Logf("pyramid answered %d spans across %d cases", pyramidSpans, n)
}

// TestTieFreeValueInjective pins the property CheckRepr's exactness rests
// on: distinct timestamps never map to the same value, at any overwrite
// generation.
func TestTieFreeValueInjective(t *testing.T) {
	const tMax = 999
	v := tieFreeValue(tMax)
	seen := map[float64]int64{}
	for round := 0; round < 3; round++ {
		for ts := int64(0); ts < tMax; ts++ {
			val := v(nil, ts)
			if prev, ok := seen[val]; ok && prev != ts {
				t.Fatalf("value %v produced by both t=%d and t=%d", val, prev, ts)
			}
			seen[val] = ts
		}
	}
}

// TestGoldenPixelEquivalenceRepr is the per-operator golden pixel test at
// dashboard canvas shapes: on overlapped, overwritten, deleted preset
// workloads, the engine's reduction must rasterize to exactly the pixels
// of the reference reduction over the merged series.
//
// LTTB runs on every preset — it is a pure function of the merged series,
// so engine and reference see identical inputs. The MinMax family is
// restricted to the continuous-valued presets (MF03, RcvTime): BallSpeed
// clamps to exact 0.0 and KOB emits quantized setpoints, and on a value
// tie the engine's candidate pruning may pick a different (equally
// extremal, equally valid) representative timestamp than the streaming
// reference, moving a pixel without being wrong. Exactness under ties is
// not a guarantee the operator makes; TestDifferentialRepr covers the
// tie-free exactness claim exhaustively.
func TestGoldenPixelEquivalenceRepr(t *testing.T) {
	continuous := map[string]bool{"MF03": true, "RcvTime": true}
	canvases := []struct{ w, h int }{
		{200, 100},
		{480, 270},
	}
	specs := []reprops.Spec{
		{Kind: reprops.KindMinMax},
		{Kind: reprops.KindLTTB},
		{Kind: reprops.KindMinMaxLTTB, Ratio: 4},
	}
	for pi, preset := range workload.Presets() {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), NumShards: 1 + pi, DisableWAL: true})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			data := preset.Generate(4000, 11)
			if err := workload.Load(e, preset.Name, data, workload.LoadOptions{
				ChunkSize:       250,
				OverlapFraction: 0.3,
				Seed:            11,
			}); err != nil {
				t.Fatal(err)
			}
			if err := workload.ApplyDeletes(e, preset.Name, data, workload.DeleteOptions{
				Count:       6,
				RangeMillis: (data[len(data)-1].T - data[0].T) / 50,
				Seed:        11,
			}); err != nil {
				t.Fatal(err)
			}
			tqs, tqe := data[0].T, data[len(data)-1].T+1
			for _, spec := range specs {
				if spec.Kind != reprops.KindLTTB && !continuous[preset.Name] {
					continue
				}
				for _, c := range canvases {
					t.Run(fmt.Sprintf("%s-%dx%d", spec, c.w, c.h), func(t *testing.T) {
						q := m4.Query{Tqs: tqs, Tqe: tqe, W: c.w}
						snap, err := e.Snapshot(preset.Name, q.Range())
						if err != nil {
							t.Fatal(err)
						}
						full, err := mergeread.Merge(snap, q.Range())
						if err != nil {
							t.Fatal(err)
						}
						want, err := reprops.Reduce(spec, q, series.Series(full))
						if err != nil {
							t.Fatal(err)
						}
						snap, err = e.Snapshot(preset.Name, q.Range())
						if err != nil {
							t.Fatal(err)
						}
						got, err := m4lsm.Reduce(snap, q, spec)
						if err != nil {
							t.Fatal(err)
						}
						vp := viz.ViewportFor(series.Series(full), tqs, tqe)
						a := viz.Rasterize(want, vp, c.w, c.h)
						b := viz.Rasterize(got, vp, c.w, c.h)
						if d := viz.Diff(a, b); d != 0 {
							t.Errorf("%d of %d lit pixels differ between engine and reference %s render",
								d, a.Count(), spec)
						}
						if b.Count() == 0 {
							t.Error("blank canvas: reduction produced no in-range points")
						}
					})
				}
			}
		})
	}
}
