package lsm

import (
	"encoding/binary"
	"fmt"
	"math"

	"m4lsm/internal/encoding"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// WAL payloads. Record framing (length + CRC) is provided by
// tsfile.RecordLog; these encode the payload bytes only.
//
//	insert:         0x01 | body
//	delete:         0x02 | body
//	insert sharded: 0x03 | uvarint shard | body
//	delete sharded: 0x04 | uvarint shard | body
//	checkpoint:     0x05 | uvarint shard | uvarint numShards | uvarint upToSeq
//
//	insert body: uvarint len(id) | id | uvarint n | n × (varint t, 8B v)
//	delete body: uvarint len(id) | id | uvarint version | varint start | varint end
//
// The sharded forms (what the engine writes) prefix the body with the
// writing shard's index. The tag is diagnostic: replay always re-routes by
// hashing the series id, so WALs survive a NumShards change, and the
// untagged legacy forms still decode.
//
// A checkpoint records that every earlier record of one shard is durable
// in chunk files (appended at the end of that shard's flush, under its
// lock). Replay honors it only when the recorded numShards matches the
// reopening engine's layout — routing is a pure function of (id,
// numShards), so equality means "the records this clears are exactly the
// ones replayed into that shard". Under any other layout the checkpoint is
// ignored and the full tail replays, which is merely redundant.

func encodeInsert(seriesID string, pts []series.Point) []byte {
	return appendInsertBody([]byte{walOpInsert}, seriesID, pts)
}

func encodeInsertSharded(shard int, seriesID string, pts []series.Point) []byte {
	buf := encoding.AppendUvarint([]byte{walOpInsertSharded}, uint64(shard))
	return appendInsertBody(buf, seriesID, pts)
}

func appendInsertBody(buf []byte, seriesID string, pts []series.Point) []byte {
	buf = encoding.AppendUvarint(buf, uint64(len(seriesID)))
	buf = append(buf, seriesID...)
	buf = encoding.AppendUvarint(buf, uint64(len(pts)))
	for _, p := range pts {
		buf = encoding.AppendVarint(buf, p.T)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.V))
	}
	return buf
}

func decodeInsert(b []byte) (string, []series.Point, error) {
	idLen, b, err := encoding.Uvarint(b)
	if err != nil {
		return "", nil, err
	}
	if idLen > uint64(len(b)) {
		return "", nil, fmt.Errorf("wal insert: id length %d", idLen)
	}
	id := string(b[:idLen])
	b = b[idLen:]
	n, b, err := encoding.Uvarint(b)
	if err != nil {
		return "", nil, err
	}
	// Each point takes at least 9 bytes (1-byte varint + 8-byte value); a
	// count beyond that is a corrupt record, not a huge allocation.
	if n > uint64(len(b)/9) {
		return "", nil, fmt.Errorf("wal insert: point count %d exceeds %d payload bytes", n, len(b))
	}
	pts := make([]series.Point, 0, n)
	for i := uint64(0); i < n; i++ {
		t, rest, err := encoding.Varint(b)
		if err != nil {
			return "", nil, err
		}
		b = rest
		if len(b) < 8 {
			return "", nil, fmt.Errorf("wal insert: truncated value %d", i)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		pts = append(pts, series.Point{T: t, V: v})
	}
	if len(b) != 0 {
		return "", nil, fmt.Errorf("wal insert: %d trailing bytes", len(b))
	}
	return id, pts, nil
}

func encodeDelete(d storage.Delete) []byte {
	return appendDeleteBody([]byte{walOpDelete}, d)
}

func encodeDeleteSharded(shard int, d storage.Delete) []byte {
	buf := encoding.AppendUvarint([]byte{walOpDeleteSharded}, uint64(shard))
	return appendDeleteBody(buf, d)
}

func appendDeleteBody(buf []byte, d storage.Delete) []byte {
	buf = encoding.AppendUvarint(buf, uint64(len(d.SeriesID)))
	buf = append(buf, d.SeriesID...)
	buf = encoding.AppendUvarint(buf, uint64(d.Version))
	buf = encoding.AppendVarint(buf, d.Start)
	buf = encoding.AppendVarint(buf, d.End)
	return buf
}

func encodeCheckpoint(shard, numShards int, upTo uint64) []byte {
	buf := encoding.AppendUvarint([]byte{walOpCheckpoint}, uint64(shard))
	buf = encoding.AppendUvarint(buf, uint64(numShards))
	return encoding.AppendUvarint(buf, upTo)
}

func decodeCheckpoint(b []byte) (shard, numShards int, upTo uint64, err error) {
	s, b, err := encoding.Uvarint(b)
	if err != nil {
		return 0, 0, 0, err
	}
	n, b, err := encoding.Uvarint(b)
	if err != nil {
		return 0, 0, 0, err
	}
	upTo, b, err = encoding.Uvarint(b)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(b) != 0 {
		return 0, 0, 0, fmt.Errorf("wal checkpoint: %d trailing bytes", len(b))
	}
	if n == 0 || s >= n || n > 1<<20 {
		return 0, 0, 0, fmt.Errorf("wal checkpoint: shard %d of %d", s, n)
	}
	return int(s), int(n), upTo, nil
}

func decodeWALDelete(b []byte) (storage.Delete, error) {
	var d storage.Delete
	idLen, b, err := encoding.Uvarint(b)
	if err != nil {
		return d, err
	}
	if idLen > uint64(len(b)) {
		return d, fmt.Errorf("wal delete: id length %d", idLen)
	}
	d.SeriesID = string(b[:idLen])
	b = b[idLen:]
	ver, b, err := encoding.Uvarint(b)
	if err != nil {
		return d, err
	}
	d.Version = storage.Version(ver)
	if d.Start, b, err = encoding.Varint(b); err != nil {
		return d, err
	}
	if d.End, b, err = encoding.Varint(b); err != nil {
		return d, err
	}
	if len(b) != 0 {
		return d, fmt.Errorf("wal delete: %d trailing bytes", len(b))
	}
	return d, nil
}
