// Background integrity scrubber. A scrub pass re-reads durable state from
// disk and verifies it end to end: every chunk's CRCs (by decoding it the
// same way a query would), the pyramid manifest, and every WAL segment.
// Verification failures degrade exactly the way query-time failures do —
// corrupt chunks are quarantined out of future snapshots, corrupt sealed
// WAL segments are set aside as *.bad after the shards they might cover
// have been re-secured by a flush — so silent bit rot is found and
// contained before any query trips over it.
//
// Scrub I/O is charged against a govern budget (Options.ScrubLimits): an
// exhausted budget ends the pass early and the next pass resumes at the
// cursor where this one stopped, so scrubbing amortizes over passes
// instead of starving queries.
package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/tsfile"
)

// ScrubOptions configures one scrub pass.
type ScrubOptions struct {
	// Limits caps the pass's I/O; the zero value scans everything.
	Limits govern.Limits
	// Heal triggers a compaction when the pass quarantined chunks, folding
	// the surviving data into a clean generation and dropping the corrupt
	// bytes for good.
	Heal bool
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	ChunksChecked     int
	ChunksQuarantined int
	// ChunksSkipped counts chunks already quarantined before the pass.
	ChunksSkipped          int
	WALSegmentsChecked     int
	WALSegmentsQuarantined int
	PyramidOK              bool
	// Healed reports that quarantined chunks were compacted away.
	Healed bool
	// Partial is set when the govern budget ran out; the next pass resumes
	// where this one stopped.
	Partial bool
	Errors  []string
}

// Scrub runs one integrity pass now (the background scrubber calls this on
// its ticker; /admin/scrub calls it on demand). Passes are serialized.
func (e *Engine) Scrub(opts ScrubOptions) (ScrubReport, error) {
	e.scrubMu.Lock()
	defer e.scrubMu.Unlock()
	var rep ScrubReport
	rep.PyramidOK = true
	if e.closed.Load() {
		return rep, errors.New("lsm: engine closed")
	}
	e.scrubRuns.Add(1)
	budget := govern.NewBudget(opts.Limits)

	e.scrubChunkFiles(&rep, budget)
	if !rep.Partial {
		e.scrubWALSegments(&rep)
		e.scrubPyramid(&rep)
	}
	e.scrubErrors.Add(int64(len(rep.Errors)))
	if opts.Heal && rep.ChunksQuarantined > 0 && !e.closed.Load() {
		if err := e.Compact(); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("heal compaction: %v", err))
			e.scrubErrors.Add(1)
		} else {
			rep.Healed = true
		}
	}
	return rep, nil
}

// scrubChunkFiles decodes every chunk from disk, quarantining the ones
// whose bytes fail CRC or decode checks. The resume cursor e.scrubCur
// carries across budget-limited passes.
func (e *Engine) scrubChunkFiles(rep *ScrubReport, budget *govern.Budget) {
	e.fileMu.Lock()
	readers := append([]*tsfile.Reader(nil), e.files...)
	e.fileMu.Unlock()
	idx := 0
	for _, r := range readers {
		for _, meta := range r.Metas() {
			idx++
			if idx <= e.scrubCur {
				continue // verified in an earlier partial pass this cycle
			}
			if e.closed.Load() {
				rep.Partial = true
				return
			}
			e.quarMu.Lock()
			_, quarantined := e.quarantined[chunkID{meta.SeriesID, meta.Version}]
			e.quarMu.Unlock()
			if quarantined {
				rep.ChunksSkipped++
				continue
			}
			if err := budget.ChargeChunk(meta.Count); err != nil {
				rep.Partial = true
				e.scrubCur = idx - 1 // resume at this chunk next pass
				return
			}
			rep.ChunksChecked++
			e.scrubChunks.Add(1)
			if _, err := r.ReadChunk(meta); err != nil {
				if errors.Is(err, tsfile.ErrCorrupt) {
					if serr := e.step("scrub.quarantine"); serr != nil {
						rep.Errors = append(rep.Errors, serr.Error())
						rep.Partial = true
						e.scrubCur = idx - 1
						return
					}
					if e.quarantineChunk(meta, err) {
						rep.ChunksQuarantined++
						e.scrubQuarantines.Add(1)
					}
				} else {
					// Transient read failure: report, do not quarantine —
					// the next pass (or query retry) may succeed.
					rep.Errors = append(rep.Errors, fmt.Sprintf("chunk %s v%d: %v", meta.SeriesID, meta.Version, err))
				}
			}
		}
	}
	e.scrubCur = 0 // full cycle completed
}

// scrubWALSegments re-parses every WAL segment. Sealed segments must parse
// completely (they were fsynced before the WAL moved on); a corrupt one is
// set aside as *.bad — after a Flush has re-secured every shard's buffered
// points in chunk files, so the records the bad segment held are no longer
// the only copy of anything.
func (e *Engine) scrubWALSegments(rep *ScrubReport) {
	if e.wal == nil {
		return
	}
	e.walMu.Lock()
	sealed := append([]walSealed(nil), e.wal.sealed...)
	e.walMu.Unlock()
	for _, s := range sealed {
		if e.closed.Load() {
			rep.Partial = true
			return
		}
		rep.WALSegmentsChecked++
		hdr, _, err := tsfile.ReadSegment(s.path)
		if err == nil && hdr.Seq != s.seq {
			err = fmt.Errorf("%w: segment header seq %d under name seq %d", tsfile.ErrCorrupt, hdr.Seq, s.seq)
		}
		if err == nil {
			continue
		}
		if errors.Is(err, os.ErrNotExist) {
			continue // retired concurrently — nothing left to verify
		}
		if !errors.Is(err, tsfile.ErrCorrupt) {
			rep.Errors = append(rep.Errors, fmt.Sprintf("wal segment %d: %v", s.seq, err))
			continue
		}
		// Re-secure before quarantining: flushing every shard supersedes
		// whatever records the corrupt segment held, so losing it cannot
		// lose data that is only in the WAL.
		if ferr := e.Flush(); ferr != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("wal segment %d: flush before quarantine: %v", s.seq, ferr))
			continue
		}
		if serr := e.step("scrub.quarantine"); serr != nil {
			rep.Errors = append(rep.Errors, serr.Error())
			rep.Partial = true
			return
		}
		e.walMu.Lock()
		qerr := e.wal.quarantineSegment(s.path, err)
		if qerr == nil {
			for i, ss := range e.wal.sealed {
				if ss.seq == s.seq {
					e.wal.sealed = append(e.wal.sealed[:i:i], e.wal.sealed[i+1:]...)
					break
				}
			}
		}
		e.walMu.Unlock()
		if qerr != nil {
			if errors.Is(qerr, os.ErrNotExist) {
				continue // the flush retired it before we could rename
			}
			rep.Errors = append(rep.Errors, qerr.Error())
			continue
		}
		rep.WALSegmentsQuarantined++
		e.scrubQuarantines.Add(1)
	}
}

// scrubPyramid verifies the persisted pyramid manifest decodes. A corrupt
// manifest cannot mislead the running engine (it is only read at Open,
// which degrades to full-stale), so the scrubber heals it in place by
// re-persisting the in-memory state.
func (e *Engine) scrubPyramid(rep *ScrubReport) {
	if e.pyr == nil {
		return
	}
	data, err := os.ReadFile(filepath.Join(e.opts.Dir, pyramidFileName))
	if errors.Is(err, os.ErrNotExist) {
		return // nothing persisted yet
	}
	if err != nil {
		rep.Errors = append(rep.Errors, fmt.Sprintf("pyramid manifest: %v", err))
		return
	}
	if _, _, err := decodePyramid(data); err != nil {
		rep.PyramidOK = false
		rep.Errors = append(rep.Errors, fmt.Sprintf("pyramid manifest: %v", err))
		// Heal in place: the in-memory pyramid is authoritative while the
		// engine runs, so marking it dirty and re-saving rewrites a clean
		// manifest atomically.
		e.pyr.mu.Lock()
		e.pyr.dirty = true
		e.pyr.mu.Unlock()
		if herr := e.pyrMaybeSave(); herr != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("pyramid manifest rewrite: %v", herr))
		}
	}
}

// startScrubber launches the periodic scrub goroutine when
// Options.ScrubInterval is positive. Stopped by Close/Kill before they
// take the shard locks (a pass takes them itself via Flush/Compact).
func (e *Engine) startScrubber() {
	if e.opts.ScrubInterval <= 0 {
		return
	}
	e.scrubStop = make(chan struct{})
	e.scrubWG.Add(1)
	go func() {
		defer e.scrubWG.Done()
		tick := time.NewTicker(e.opts.ScrubInterval)
		defer tick.Stop()
		for {
			select {
			case <-e.scrubStop:
				return
			case <-tick.C:
				// Errors are carried by the scrub_* counters and the
				// report; the background loop has no one to return them to.
				e.Scrub(ScrubOptions{Limits: e.opts.ScrubLimits, Heal: true}) //nolint:errcheck
			}
		}
	}()
}

// stopScrubber halts the background scrubber and waits for an in-flight
// pass to finish. Idempotent; a no-op when the scrubber never started.
func (e *Engine) stopScrubber() {
	if e.scrubStop == nil {
		return
	}
	e.scrubOnce.Do(func() { close(e.scrubStop) })
	e.scrubWG.Wait()
}
