package tsfile

import (
	"fmt"
	"sync"

	"m4lsm/internal/encoding"
	"m4lsm/internal/storage"
)

// ModLog is the delete sidecar (the TsFile.mods of Fig. 15): an append-only
// log of range tombstones. Deletes are never applied to chunk data on disk;
// queries read them alongside chunk metadata (Definition 2.5).
//
// ModLog is safe for concurrent use: with the engine sharded, deletes on one
// shard append while snapshots on other shards read. Readers get slice views
// of the append-only backing array; appends never mutate bytes a previously
// returned view can see.
type ModLog struct {
	mu   sync.RWMutex
	log  *RecordLog
	mods []storage.Delete
}

// OpenModLog opens (or creates) the sidecar at path and recovers the
// deletes recorded so far.
func OpenModLog(path string) (*ModLog, error) {
	log, recs, err := OpenRecordLog(path)
	if err != nil {
		return nil, fmt.Errorf("mods: %w", err)
	}
	m := &ModLog{log: log}
	for i, rec := range recs {
		d, err := parseDelete(rec)
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("mods: record %d: %w", i, err)
		}
		m.mods = append(m.mods, d)
	}
	return m, nil
}

// Append records one delete durably.
func (m *ModLog) Append(d storage.Delete) error {
	if d.End < d.Start {
		return fmt.Errorf("mods: inverted delete range [%d,%d]", d.Start, d.End)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.log.Append(appendDelete(nil, d), true); err != nil {
		return err
	}
	m.mods = append(m.mods, d)
	return nil
}

// All returns every recorded delete in append order. The caller must not
// modify the returned slice.
func (m *ModLog) All() []storage.Delete {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.mods
}

// Len reports the number of recorded deletes.
func (m *ModLog) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.mods)
}

// ForSeries returns the deletes of one series in append order.
func (m *ModLog) ForSeries(seriesID string) []storage.Delete {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []storage.Delete
	for _, d := range m.mods {
		if d.SeriesID == seriesID {
			out = append(out, d)
		}
	}
	return out
}

// Close releases the sidecar file handle.
func (m *ModLog) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.log.Close()
}

func appendDelete(dst []byte, d storage.Delete) []byte {
	dst = encoding.AppendUvarint(dst, uint64(len(d.SeriesID)))
	dst = append(dst, d.SeriesID...)
	dst = encoding.AppendUvarint(dst, uint64(d.Version))
	dst = encoding.AppendVarint(dst, d.Start)
	dst = encoding.AppendVarint(dst, d.End)
	return dst
}

func parseDelete(b []byte) (storage.Delete, error) {
	var d storage.Delete
	idLen, b, err := encoding.Uvarint(b)
	if err != nil {
		return d, err
	}
	if idLen > uint64(len(b)) {
		return d, fmt.Errorf("%w: delete series id length %d", ErrCorrupt, idLen)
	}
	d.SeriesID = string(b[:idLen])
	b = b[idLen:]
	ver, b, err := encoding.Uvarint(b)
	if err != nil {
		return d, err
	}
	d.Version = storage.Version(ver)
	if d.Start, b, err = encoding.Varint(b); err != nil {
		return d, err
	}
	if d.End, b, err = encoding.Varint(b); err != nil {
		return d, err
	}
	if len(b) != 0 {
		return d, fmt.Errorf("%w: %d trailing delete bytes", ErrCorrupt, len(b))
	}
	return d, nil
}
