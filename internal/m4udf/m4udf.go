// Package m4udf is the baseline operator of Fig. 2(b): the original M4
// algorithm implemented the way a user-defined function runs inside the
// database. It reads the fully assembled time series from the merge reader
// — loading every chunk, ordering points by time and applying deletes —
// and streams the M4 representation over it. Chunk metadata is never
// consulted (§A.5.2).
//
// The scan parallelizes per span block: chunks are decoded once (the loads
// themselves fanned across workers), then the w spans are partitioned into
// contiguous blocks and each worker runs its own k-way merge restricted to
// its block's time range. Every point belongs to exactly one span, so the
// blocks write disjoint output slots and the result is byte-identical to
// the sequential scan.
package m4udf

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/m4"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Options tune the baseline's execution; the algorithm is unchanged.
type Options struct {
	// Parallelism bounds the goroutines that load chunks and scan span
	// blocks: 0 uses GOMAXPROCS, 1 is the fully sequential baseline.
	// Chunks are decoded exactly once at any setting, so the cost
	// counters stay comparable across the scaling curve.
	Parallelism int
	// Strict fails the query on any chunk read error instead of dropping
	// the unreadable chunk (with a snapshot warning) and merging the rest.
	Strict bool
	// Metrics, when non-nil, receives the operator's query counters and
	// latency histograms (labelled op="udf").
	Metrics *obs.Registry
	// Budget, when non-nil, caps the chunks and points the merge may load
	// and bounds its wall clock; see mergeread.LoadOptions.Budget for the
	// exact semantics.
	Budget *govern.Budget
}

// Compute runs the M4 representation query against a snapshot by merging
// all chunks online and scanning the merged series.
func Compute(snap *storage.Snapshot, q m4.Query) ([]m4.Aggregate, error) {
	return ComputeWithOptions(snap, q, Options{})
}

// ComputeWithOptions runs the baseline with an explicit parallelism.
func ComputeWithOptions(snap *storage.Snapshot, q m4.Query, opts Options) ([]m4.Aggregate, error) {
	return ComputeContext(context.Background(), snap, q, opts)
}

// ComputeContext is ComputeWithOptions under a context: cancellation is
// observed between chunk loads and span blocks and returns ctx.Err(); the
// snapshot's cost counters are final once ComputeContext returns.
func ComputeContext(ctx context.Context, snap *storage.Snapshot, q m4.Query, opts Options) ([]m4.Aggregate, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	tr := obs.TraceOf(ctx)
	met := obs.NewOperatorMetrics(opts.Metrics, "udf")
	instrumented := tr != nil || met != nil
	var start, phaseStart time.Time
	var statsBefore storage.Stats
	if instrumented {
		start = time.Now()
		phaseStart = start
		if snap.Stats != nil {
			statsBefore = snap.Stats.Load()
		}
	}
	phase := func(name string) {
		if tr != nil {
			now := time.Now()
			tr.Phase(name, now.Sub(phaseStart))
			phaseStart = now
		}
	}
	// finish flushes one completed query into the trace and metrics: the
	// stats delta (I/O the merge paid) plus total latency.
	finish := func() {
		if !instrumented {
			return
		}
		phase("scan")
		var delta storage.Stats
		if snap.Stats != nil {
			delta = snap.Stats.Load().Sub(statsBefore)
		}
		met.RecordQuery(time.Since(start), delta.ChunksLoaded, delta.ChunksPruned,
			delta.TimeBlocksLoaded, delta.PointsDecoded, delta.CacheHits)
		tr.SetCounters(delta.Map())
	}
	loaded, err := mergeread.LoadContext(ctx, snap, mergeread.LoadOptions{Parallelism: par, Strict: opts.Strict, Budget: opts.Budget})
	if err != nil {
		return nil, err
	}
	phase("load")
	if par > q.W {
		par = q.W
	}
	if par <= 1 {
		var t0 time.Time
		if instrumented {
			t0 = time.Now()
		}
		it := loaded.Iterator(q.Range())
		out, err := m4.ComputeStream(q, it.Next)
		if err == nil && instrumented {
			d := time.Since(t0)
			tr.Task(0, "scan", d)
			met.RecordTask(d)
			finish()
		}
		return out, err
	}

	out := make([]m4.Aggregate, q.W)
	for i := range out {
		out[i].Empty = true
	}
	errs := make([]error, par)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		// Block w covers spans [w*W/par, (w+1)*W/par): contiguous, and
		// span boundaries are exact (m4.Span and m4.SpanIndex agree), so
		// an iterator over the block's time range yields exactly the
		// points of those spans.
		go func(w int) {
			defer wg.Done()
			lo, hi := w*q.W/par, (w+1)*q.W/par
			if lo >= hi {
				return
			}
			if errs[w] = ctx.Err(); errs[w] != nil {
				return
			}
			r := series.TimeRange{Start: q.Span(lo).Start, End: q.Span(hi - 1).End}
			var t0 time.Time
			if instrumented {
				t0 = time.Now()
			}
			errs[w] = scanSpans(q, out, loaded.Iterator(r).Next)
			if instrumented {
				// The block's first span is the task coordinate.
				d := time.Since(t0)
				tr.Task(lo, "scan", d)
				met.RecordTask(d)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	finish()
	return out, nil
}

// scanSpans streams one block's merged points into the shared output,
// mirroring m4.ComputeStream (including its order check) but folding into
// pre-initialized span slots.
func scanSpans(q m4.Query, out []m4.Aggregate, next func() (series.Point, bool)) error {
	prevT := int64(0)
	first := true
	for {
		p, ok := next()
		if !ok {
			return nil
		}
		if !first && p.T <= prevT {
			return fmt.Errorf("%w: t=%d after t=%d", m4.ErrUnsorted, p.T, prevT)
		}
		first = false
		prevT = p.T
		if i := q.SpanIndex(p.T); i >= 0 {
			out[i].Observe(p)
		}
	}
}
