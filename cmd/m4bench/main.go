// Command m4bench regenerates the tables and figures of the paper's
// evaluation section (§4). Each experiment prints one block per dataset
// with the varied parameter against both operators' latency and cost
// counters.
//
// Usage:
//
//	m4bench -exp all                 # every experiment at the default scale
//	m4bench -exp fig10 -scale 0.1    # Figure 10 at 1/10 of paper cardinality
//	m4bench -exp fig12 -markdown     # Markdown tables for EXPERIMENTS.md
//
// Scale 1 reproduces paper-scale inputs (10M points for MF03); the default
// 0.01 finishes in seconds on a laptop while preserving every trend.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"m4lsm/internal/buildinfo"
	"m4lsm/internal/exper"
	"m4lsm/internal/workload"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "experiment to run: "+strings.Join(exper.ExpNames(), ", ")+" or all")
		scale    = flag.Float64("scale", 0.01, "dataset scale relative to Table 2 cardinalities (1 = paper scale)")
		chunk    = flag.Int("chunk", 1000, "points per chunk (paper: 1000)")
		w        = flag.Int("w", 1000, "time spans for the non-w experiments (paper: 1000)")
		reps     = flag.Int("reps", 3, "repetitions per query; minimum latency reported")
		par      = flag.Int("parallel", 0, "worker goroutines per query (0 = GOMAXPROCS); the scaling experiment sweeps its own values")
		seed     = flag.Int64("seed", 42, "generator seed")
		markdown = flag.Bool("markdown", false, "emit Markdown tables instead of text")
		datasets = flag.String("datasets", "", "comma-separated dataset filter (e.g. MF03,KOB); empty = all")
		faults   = flag.Bool("faults", false, "shorthand for -exp faults (deterministic fault-injection sweep)")
		nSeries  = flag.Int("series", 16, "series count for the shards experiment (concurrent writers / wildcard query width)")
		nClients = flag.Int("clients", 16, "concurrent clients for the overload experiment")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("m4bench " + buildinfo.String())
		return
	}
	if *faults {
		*expFlag = "faults"
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "m4bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "m4bench: cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeHeapProfile(*memProf)

	cfg := exper.Config{Scale: *scale, ChunkSize: *chunk, W: *w, Reps: *reps, Seed: *seed, Parallelism: *par}
	if *datasets != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*datasets, ",") {
			want[strings.ToLower(strings.TrimSpace(name))] = true
		}
		for _, p := range workload.Presets() {
			if want[strings.ToLower(p.Name)] {
				cfg.Datasets = append(cfg.Datasets, p)
			}
		}
		if len(cfg.Datasets) == 0 {
			fmt.Fprintf(os.Stderr, "m4bench: no datasets match %q\n", *datasets)
			os.Exit(1)
		}
	}
	names := []string{*expFlag}
	if *expFlag == "all" {
		names = exper.ExpNames()
	}
	for _, name := range names {
		if err := run(os.Stdout, name, cfg, *markdown, *nSeries, *nClients); err != nil {
			fmt.Fprintf(os.Stderr, "m4bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// writeHeapProfile dumps an up-to-date heap profile, for `make profile`
// and ad-hoc allocation hunting.
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "m4bench: heap profile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize final live-heap state
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "m4bench: heap profile: %v\n", err)
	}
}

func run(out io.Writer, name string, cfg exper.Config, markdown bool, nSeries, nClients int) error {
	switch name {
	case "overload":
		ms, err := exper.RunOverload(cfg, nClients)
		if err != nil {
			return err
		}
		exper.WriteOverload(out, exper.OverloadTitle(nClients), ms)
		return nil
	case "shards":
		ms, err := exper.RunShards(cfg, nSeries)
		if err != nil {
			return err
		}
		exper.WriteShards(out, exper.ShardsTitle(nSeries), ms)
		return nil
	case "table2":
		exper.WriteTable2(out, exper.RunTable2(cfg), cfg.Scale)
		return nil
	case "fig1":
		rows, err := exper.RunFig1(cfg)
		if err != nil {
			return err
		}
		exper.WriteFig1(out, rows)
		return nil
	case "ablations":
		rows, err := exper.RunAblations(cfg)
		if err != nil {
			return err
		}
		exper.WriteAblations(out, rows)
		return nil
	case "fig8":
		exper.WriteFig8(out, exper.RunFig8(cfg))
		return nil
	case "pyramid":
		ms, err := exper.RunPyramid(cfg)
		if err != nil {
			return err
		}
		exper.WritePyramid(out, exper.PyramidTitle(), ms)
		return nil
	case "repr":
		rows, err := exper.RunRepr(cfg)
		if err != nil {
			return err
		}
		check, err := exper.RunReprPyramid(cfg)
		if err != nil {
			return err
		}
		exper.WriteRepr(out, exper.ReprTitle(), rows, check)
		return nil
	case "recovery":
		ms, err := exper.RunRecovery(cfg)
		if err != nil {
			return err
		}
		exper.WriteRecovery(out, exper.RecoveryTitle(), ms)
		return nil
	case "ingest":
		ms, err := exper.RunIngest(cfg)
		if err != nil {
			return err
		}
		exper.WriteIngest(out, exper.IngestTitle(), ms)
		return nil
	case "selfobs":
		ms, err := exper.RunSelfObs(cfg)
		if err != nil {
			return err
		}
		exper.WriteSelfObs(out, exper.SelfObsTitle(), ms)
		return nil
	case "faults":
		rows, err := exper.RunFaults(cfg, nil)
		if err != nil {
			return err
		}
		exper.WriteFaults(out, rows)
		return nil
	case "fig10", "fig11", "fig12", "fig13", "fig14", "scaling":
		var (
			ms  []exper.Measurement
			err error
		)
		title := exper.Titles[name]
		switch name {
		case "fig10":
			ms, err = exper.RunFig10(cfg)
		case "fig11":
			ms, err = exper.RunFig11(cfg)
		case "fig12":
			ms, err = exper.RunFig12(cfg)
		case "fig13":
			ms, err = exper.RunFig13(cfg)
		case "fig14":
			ms, err = exper.RunFig14(cfg)
		case "scaling":
			ms, err = exper.RunScaling(cfg)
			title = exper.ScalingTitle()
		}
		if err != nil {
			return err
		}
		if markdown {
			exper.WriteMarkdown(out, title, ms)
		} else {
			exper.WriteTable(out, title, ms)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (want %s or all)", name, strings.Join(exper.ExpNames(), ", "))
	}
}
