package server

import (
	"html/template"
	"net/http"
	"strconv"

	"m4lsm/internal/series"
)

// uiTemplate is the built-in single-page chart browser: pick a series, get
// the M4-rendered PNG from /render and the tabular result from /query.
var uiTemplate = template.Must(template.New("ui").Parse(`<!DOCTYPE html>
<html>
<head>
<title>m4lsm</title>
<style>
body { font-family: sans-serif; margin: 2rem; color: #222; }
table { border-collapse: collapse; }
td, th { padding: 2px 8px; border: 1px solid #ccc; font-size: 13px; }
img { border: 1px solid #888; margin-top: 1rem; }
code { background: #f2f2f2; padding: 1px 4px; }
</style>
</head>
<body>
<h1>m4lsm — M4 visualization queries</h1>
<p>{{len .Series}} series stored. Charts are rendered by the merge-free
M4-LSM operator at one time span per pixel column (error-free two-color
line charts).</p>
<table>
<tr><th>series</th><th>time range (ms)</th><th>chart</th></tr>
{{range .Series}}
<tr>
  <td><code>{{.ID}}</code></td>
  <td>{{.Start}} – {{.End}}</td>
  <td><a href="/render?series={{.ID}}&tqs={{.Start}}&tqe={{.End}}&w=800&h=300">render</a>
      · <a href="/query?q={{.Query}}">m4 json</a></td>
</tr>
{{end}}
</table>
<p>API: <code>/series</code>, <code>/query?q=&lt;m4ql&gt;</code>,
<code>/render?series=&amp;tqs=&amp;tqe=&amp;w=&amp;h=</code>,
<code>/healthz</code> · <a href="/dashboard">self-observability dashboard</a></p>
</body>
</html>
`))

type uiSeries struct {
	ID    string
	Start int64
	End   int64
	Query string
}

// ui serves the chart browser at /.
func (h *Handler) ui(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var rows []uiSeries
	for _, id := range h.engine.SeriesIDs() {
		snap, err := h.engine.Snapshot(id, series.TimeRange{Start: -(1 << 62), End: 1 << 62})
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		lo, hi := int64(0), int64(1)
		for i, c := range snap.Chunks {
			if i == 0 || c.Meta.First.T < lo {
				lo = c.Meta.First.T
			}
			if i == 0 || c.Meta.Last.T >= hi {
				hi = c.Meta.Last.T + 1
			}
		}
		rows = append(rows, uiSeries{ID: id, Start: lo, End: hi,
			Query: "SELECT M4(*) FROM " + id +
				" WHERE time >= " + strconv.FormatInt(lo, 10) +
				" AND time < " + strconv.FormatInt(hi, 10) +
				" GROUP BY SPANS(100)"})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := uiTemplate.Execute(w, struct{ Series []uiSeries }{rows}); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}
