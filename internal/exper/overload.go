package exper

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"m4lsm/internal/faultfs"
	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/server"
	"m4lsm/internal/storage"
	"m4lsm/internal/workload"
)

// OverloadSlots is the admission-gate sweep of the overload experiment.
var OverloadSlots = []int{1, 2, 4, 8}

// OverloadMeasurement is one point of the overload experiment: a server
// with an admission gate of Slots concurrent queries (plus a short queue)
// under a burst of concurrent slow queries.
type OverloadMeasurement struct {
	Slots   int
	Queue   int
	Clients int
	Reqs    int // total requests issued across all clients

	OK   int64 // 200 responses
	Shed int64 // 429 responses (all carried Retry-After)
	// ShedCounter is http_shed_total as the server's own metrics registry
	// reports it; the harness fails if it disagrees with Shed.
	ShedCounter int64

	Elapsed    time.Duration // wall clock for the whole burst
	MaxLatency time.Duration // slowest individual request
}

// RunOverload measures admission-control behavior under synthetic overload:
// an engine whose chunk reads carry a deterministic faultfs-injected delay
// is served over HTTP with a gate of 1..k slots, and nClients concurrent
// clients fire slow wildcard queries at it. Every response must be either
// 200 or 429-with-Retry-After — anything else fails the run — and the
// server's shed counter must match the observed 429s exactly. The sweep
// shows the tradeoff the gate buys: fewer slots shed more but keep the
// surviving queries' latency bounded.
func RunOverload(cfg Config, nClients int) ([]OverloadMeasurement, error) {
	cfg = cfg.withDefaults()
	if nClients <= 0 {
		nClients = 16
	}
	const reqsPerClient = 4
	const queue = 2

	preset := workload.KOB()
	n := int(float64(preset.Points) * cfg.Scale)
	if n < 200 {
		n = 200
	}
	data := preset.Generate(n, cfg.Seed)

	var out []OverloadMeasurement
	for _, slots := range OverloadSlots {
		reg := obs.NewRegistry()
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("overload-%d", slots))
		if err != nil {
			return nil, err
		}
		inj := faultfs.NewInjector(faultfs.Config{Seed: cfg.Seed, SlowRate: 1, Latency: 2 * time.Millisecond})
		e, err := lsm.Open(lsm.Options{
			Dir:            dir,
			FlushThreshold: cfg.ChunkSize,
			DisableWAL:     true,
			Metrics:        reg,
			WrapSource: func(src storage.ChunkSource) storage.ChunkSource {
				return faultfs.Wrap(src, inj)
			},
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := workload.Load(e, preset.Name, data, workload.LoadOptions{
			ChunkSize:       cfg.ChunkSize,
			OverlapFraction: 0.1,
			Seed:            cfg.Seed,
		}); err != nil {
			e.Close()
			cleanup()
			return nil, err
		}
		m, err := runOverloadPoint(e, reg, slots, queue, nClients, reqsPerClient, data[0].T, data[len(data)-1].T+1)
		e.Close()
		cleanup()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func runOverloadPoint(e *lsm.Engine, reg *obs.Registry, slots, queue, nClients, reqsPerClient int, tqs, tqe int64) (OverloadMeasurement, error) {
	m := OverloadMeasurement{Slots: slots, Queue: queue, Clients: nClients, Reqs: nClients * reqsPerClient}
	srv := httptest.NewServer(server.NewWith(e, server.Config{
		QuerySlots:      slots,
		QueryQueueDepth: queue,
		QueryQueueWait:  50 * time.Millisecond,
	}))
	defer srv.Close()

	qv := url.Values{}
	qv.Set("q", fmt.Sprintf(
		"SELECT M4(*) FROM %s WHERE time >= %d AND time < %d GROUP BY SPANS(31) USING LSM",
		workload.KOB().Name, tqs, tqe))
	target := srv.URL + "/query?" + qv.Encode()

	var ok, shed atomic.Int64
	var maxNs atomic.Int64
	errCh := make(chan error, nClients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reqsPerClient; r++ {
				t0 := time.Now()
				resp, err := http.Get(target)
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				d := time.Since(t0)
				for {
					cur := maxNs.Load()
					if int64(d) <= cur || maxNs.CompareAndSwap(cur, int64(d)) {
						break
					}
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						errCh <- fmt.Errorf("slots=%d: 429 without Retry-After", slots)
						return
					}
					shed.Add(1)
				default:
					errCh <- fmt.Errorf("slots=%d: unexpected status %d", slots, resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	m.Elapsed = time.Since(start)
	close(errCh)
	for err := range errCh {
		return m, err
	}
	m.OK, m.Shed = ok.Load(), shed.Load()
	m.MaxLatency = time.Duration(maxNs.Load())
	if v, okv := reg.Snapshot()["http_shed_total"].(float64); okv {
		m.ShedCounter = int64(v)
	}
	if m.ShedCounter != m.Shed {
		return m, fmt.Errorf("slots=%d: http_shed_total %d != observed 429s %d", slots, m.ShedCounter, m.Shed)
	}
	if m.OK+m.Shed != int64(m.Reqs) {
		return m, fmt.Errorf("slots=%d: accounted for %d of %d requests", slots, m.OK+m.Shed, m.Reqs)
	}
	return m, nil
}

// OverloadTitle names the experiment with its burst shape.
func OverloadTitle(nClients int) string {
	if nClients <= 0 {
		nClients = 16
	}
	return fmt.Sprintf("Overload: admission control under %d concurrent slow-query clients", nClients)
}

// WriteOverload renders the overload sweep as an aligned text table.
func WriteOverload(w io.Writer, title string, ms []OverloadMeasurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-7s %6s %8s %6s %6s %6s %10s %10s %10s\n",
		"slots", "queue", "clients", "reqs", "ok", "shed", "shedCtr", "elapsed", "maxLat")
	for _, m := range ms {
		fmt.Fprintf(w, "%-7d %6d %8d %6d %6d %6d %10d %10s %10s\n",
			m.Slots, m.Queue, m.Clients, m.Reqs, m.OK, m.Shed, m.ShedCounter,
			fmtDur(m.Elapsed), fmtDur(m.MaxLatency))
	}
}
