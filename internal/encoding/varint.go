package encoding

import "encoding/binary"

// ZigZag maps signed integers to unsigned so that small magnitudes (of
// either sign) get small codes: 0→0, -1→1, 1→2, -2→3, ...
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUvarint appends u in LEB128 form.
func AppendUvarint(dst []byte, u uint64) []byte {
	return binary.AppendUvarint(dst, u)
}

// AppendVarint appends v zigzag-varint encoded.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, ZigZag(v))
}

// Uvarint decodes a LEB128 value and returns it with the remaining buffer.
func Uvarint(b []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, corruptf("bad uvarint")
	}
	return u, b[n:], nil
}

// Varint decodes a zigzag-varint value and returns it with the remaining
// buffer.
func Varint(b []byte) (int64, []byte, error) {
	u, rest, err := Uvarint(b)
	if err != nil {
		return 0, nil, err
	}
	return UnZigZag(u), rest, nil
}
