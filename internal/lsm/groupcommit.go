// Group commit for the segmented WAL. Every WAL append — point writes,
// deletes, batched ingest — goes through a leader/follower committer
// instead of taking walMu itself: a writer enqueues its encoded record and
// either becomes the leader (no commit in progress) or waits for one. The
// leader repeatedly claims up to Options.WALGroupSize pending records,
// appends them all to the active segment under walMu, and issues ONE fsync
// for the whole group when SyncWAL is on, so the dominant cost of durable
// ingestion amortizes across every concurrent writer.
//
// The durability contract is unchanged from the direct-append code:
//
//   - A record is acknowledged (its waiter released without error) only
//     after its group's sync has succeeded. Ack ⇒ synced.
//   - An unacknowledged record may or may not survive a crash: the group's
//     bytes can be in the OS cache or partially on disk when the machine
//     dies. Replay keeps whatever whole records it finds — exactly the
//     pre-existing semantics of a failed sync.
//   - pendingMin watermarks and delete pins are claimed under walMu after
//     the group's sync and before any waiter is released, while every
//     waiter still holds its series' shard lock, so the PR-7 checkpoint /
//     retirement invariants hold verbatim: a shard's flush checkpoint
//     cannot slip between a record's claim and its memtable update.
//
// Waiting is bounded: the leader never blocks on a shard lock (lock order
// is shard -> walMu, and the leader only takes walMu), so a follower waits
// for at most ceil(pending/WALGroupSize) commit rounds ahead of it.
package lsm

import (
	"sync"
	"sync/atomic"

	"m4lsm/internal/tsfile"
)

// defaultWALGroupSize bounds how many records one group commit may carry
// when Options.WALGroupSize is zero. Large enough to soak up a burst of
// batched ingest workers, small enough that one group's fsync latency
// stays bounded.
const defaultWALGroupSize = 128

// walReq is one record waiting for a group commit.
type walReq struct {
	payload []byte
	shardIx int
	pin     bool // delete record: pin the landing segment instead of claiming pendingMin

	// Filled by the leader before done closes.
	seq  uint64 // landing segment
	err  error
	done chan struct{}
}

// walCommitter is the leader/follower hand-off state. Its mutex only
// guards the pending queue and the leader flag — never I/O.
type walCommitter struct {
	mu      sync.Mutex
	pending []*walReq
	leading bool

	groups  atomic.Int64 // commit groups issued
	records atomic.Int64 // records committed across all groups
}

// walGroupSize returns the bounded per-group record count.
func (e *Engine) walGroupSize() int {
	if n := e.opts.WALGroupSize; n > 0 {
		return n
	}
	return defaultWALGroupSize
}

// walAppend appends one payload to the active segment via the group
// committer, rotating as needed. For insert records (pin == false) the
// writing shard's pendingMin is claimed; for delete records (pin == true)
// the landing segment is pinned until walUnpin. Returns the landing
// segment's seq. Callers hold the series' shard lock.
func (e *Engine) walAppend(payload []byte, shardIx int, pin bool) (uint64, error) {
	req := &walReq{payload: payload, shardIx: shardIx, pin: pin, done: make(chan struct{})}
	e.walSubmit([]*walReq{req})
	return req.seq, req.err
}

// walSubmit enqueues a set of records for group commit and blocks until
// every one of them is resolved (acked or failed). If no leader is active
// the caller becomes it and drives commits until the pending queue drains,
// so there is always exactly one goroutine inside commitGroup.
func (e *Engine) walSubmit(reqs []*walReq) {
	if len(reqs) == 0 {
		return
	}
	gc := &e.walCommit
	gc.mu.Lock()
	gc.pending = append(gc.pending, reqs...)
	if gc.leading {
		gc.mu.Unlock()
	} else {
		gc.leading = true
		max := e.walGroupSize()
		for {
			var batch []*walReq
			if len(gc.pending) <= max {
				batch = gc.pending
				gc.pending = nil
			} else {
				batch = append([]*walReq(nil), gc.pending[:max]...)
				rest := append([]*walReq(nil), gc.pending[max:]...)
				gc.pending = rest
			}
			gc.mu.Unlock()
			e.commitGroup(batch)
			gc.mu.Lock()
			if len(gc.pending) == 0 {
				gc.leading = false
				break
			}
		}
		gc.mu.Unlock()
	}
	for _, r := range reqs {
		<-r.done
	}
}

// commitGroup appends one batch of records to the active segment under
// walMu, syncing once at the end when SyncWAL is on. Success claims every
// record's pendingMin watermark or segment pin before releasing its
// waiter. Failure fails the whole batch: none of its records is
// acknowledged, none claims a watermark, and whatever bytes landed are
// treated exactly like a torn, unacked tail (all-or-nothing per record on
// replay — tsfile framing drops partial records).
func (e *Engine) commitGroup(batch []*walReq) {
	w := e.wal
	e.walMu.Lock()
	defer e.walMu.Unlock()
	fail := func(err error) {
		for _, r := range batch {
			r.err = err
			close(r.done)
		}
	}
	// The group site fails the whole batch before any byte is written, so
	// a crash here is all-or-nothing across the group.
	if err := e.step("wal.group"); err != nil {
		fail(err)
		return
	}
	var err error
	for _, r := range batch {
		if w.active.Size() >= w.segBytes && w.active.Size() > tsfile.SegmentHeaderLen {
			if err = e.walRotateLocked(); err != nil {
				break
			}
		}
		if err = w.active.Append(r.payload, false); err != nil {
			break
		}
		r.seq = w.activeSeq
	}
	if err == nil && e.opts.SyncWAL {
		err = w.active.Sync()
	}
	if err != nil {
		fail(err)
		return
	}
	e.walCommit.groups.Add(1)
	e.walCommit.records.Add(int64(len(batch)))
	for _, r := range batch {
		if r.pin {
			w.pins[r.seq]++
		} else if w.pendingMin[r.shardIx] == 0 {
			w.pendingMin[r.shardIx] = r.seq
		}
		close(r.done)
	}
}
