package lsm

import (
	"os"
	"path/filepath"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/series"
)

// pyrVerify answers a few query shapes over [0, tMax) through the pyramid-
// aware operator and through the pyramid-disabled operator, compares both
// against a reference scan of the materialized snapshot, checks structural
// invariants, and returns how many spans the pyramid answered.
func pyrVerify(t *testing.T, e *Engine, id string, tMax int64) int64 {
	t.Helper()
	if err := e.PyrCheckInvariants(id); err != nil {
		t.Fatalf("pyramid invariants: %v", err)
	}
	var pyramidSpans int64
	for _, q := range []m4.Query{
		{Tqs: 0, Tqe: tMax, W: 4},
		{Tqs: 0, Tqe: tMax, W: 11},
		{Tqs: tMax / 4, Tqe: tMax, W: 3},
	} {
		snap, err := e.Snapshot(id, q.Range())
		if err != nil {
			t.Fatal(err)
		}
		truth := materialize(t, snap, series.TimeRange{Start: 0, End: tMax})
		ref, err := m4.ComputeSeries(q, truth)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m4lsm.Compute(snap, q)
		if err != nil {
			t.Fatal(err)
		}
		pyramidSpans += snap.Stats.PyramidSpans
		snap2, err := e.Snapshot(id, q.Range())
		if err != nil {
			t.Fatal(err)
		}
		off, err := m4lsm.ComputeWithOptions(snap2, q, m4lsm.Options{DisablePyramid: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if !m4.Equivalent(got[i], ref[i]) {
				t.Fatalf("query %+v span %d: pyramid-on %v != reference %v", q, i, got[i], ref[i])
			}
			if !m4.Equivalent(off[i], ref[i]) {
				t.Fatalf("query %+v span %d: pyramid-off %v != reference %v", q, i, off[i], ref[i])
			}
		}
	}
	return pyramidSpans
}

// A range delete whose closed [start, end] lands exactly on power-of-two
// cell boundaries must invalidate precisely the covered cells and leave
// every query correct: the boundary cells may not keep pre-delete data, and
// neighbours may not be dropped.
func TestPyramidCellBoundaryAlignedDelete(t *testing.T) {
	e := openTestEngine(t, Options{})
	const id = "root.sg.d0"
	var write []series.Point
	for tt := int64(0); tt < 256; tt++ {
		write = append(write, series.Point{T: tt, V: float64(tt % 97)})
	}
	if err := e.Write(id, write...); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := pyrVerify(t, e, id, 256); n == 0 {
		t.Fatal("pyramid unused before delete")
	}

	// [64, 127] closed is [64, 128) half-open: aligned at every level up
	// to log=6 (one full level-6 cell, two level-5 cells, ...).
	if err := e.Delete(id, 64, 127); err != nil {
		t.Fatal(err)
	}
	pyrVerify(t, e, id, 256) // cells over [64,128) stale -> must not serve
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := pyrVerify(t, e, id, 256); n == 0 {
		t.Fatal("pyramid unused after boundary-aligned delete rebuild")
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	pyrVerify(t, e, id, 256)
}

// Overwrites at a chunk's min and max timestamps touch exactly the cells at
// the chunk extent's edges; the rebuilt cells must serve the new values.
func TestPyramidOverwriteAtChunkEdges(t *testing.T) {
	e := openTestEngine(t, Options{})
	const id = "root.sg.d0"
	if err := e.Write(id, pts(10, 1, 20, 2, 30, 3, 40, 4, 50, 5)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	pyrVerify(t, e, id, 64)

	// Overwrite both edge timestamps of the flushed chunk (min=10, max=50).
	if err := e.Write(id, pts(10, 100, 50, 500)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := pyrVerify(t, e, id, 64); n == 0 {
		t.Fatal("pyramid unused after edge overwrite rebuild")
	}

	// The rebuilt cells must reflect the overwrite, not merely agree with
	// a scan: pin the values through a cells-only whole-range query.
	q := m4.Query{Tqs: 0, Tqe: 64, W: 1}
	snap, err := e.Snapshot(id, q.Range())
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := m4lsm.Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].First.V != 100 || aggs[0].Last.V != 500 {
		t.Fatalf("edge overwrite not in cells: first=%v last=%v", aggs[0].First, aggs[0].Last)
	}
}

// Reopening with a different shard count must keep the persisted manifest
// usable: the pyramid is keyed by series, not shards, so resharding alone
// may not force a rebuild or lose cells.
func TestPyramidReopenReshard(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"root.a", "root.b", "root.c"}
	for _, id := range ids {
		if err := e.Write(id, pts(1, 1, 5, 5, 9, 9, 100, 2, 200, 7)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		pyrVerify(t, e, id, 256)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir, NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for _, id := range ids {
		// No flush has happened since reopen: nonzero pyramid spans here
		// prove the manifest survived the reshard intact.
		if n := pyrVerify(t, e2, id, 256); n == 0 {
			t.Fatalf("%s: pyramid unused after reopen with different shard count", id)
		}
	}
	if info := e2.Info(); info.PyramidSeries != len(ids) {
		t.Fatalf("PyramidSeries = %d, want %d", info.PyramidSeries, len(ids))
	}
}

// A corrupt manifest must be discarded wholesale: the engine reopens with
// everything stale (correct fallback answers), and the next flush rebuilds
// a working pyramid.
func TestPyramidCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const id = "root.sg.d0"
	if err := e.Write(id, pts(1, 1, 50, 5, 90, 9, 130, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, pyramidFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff // flip a payload bit; the checksum must catch it
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	pyrVerify(t, e2, id, 256) // stale everywhere: fallback must stay correct
	if err := e2.Write(id, pts(60, 6)...); err != nil {
		t.Fatal(err)
	}
	if err := e2.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := pyrVerify(t, e2, id, 256); n == 0 {
		t.Fatal("pyramid unused after rebuild from corrupt manifest")
	}
}

// DisablePyramid must mean exactly that: no maintenance, no manifest file,
// no pyramid source on snapshots, and queries still correct.
func TestPyramidDisabled(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, DisablePyramid: true})
	if err != nil {
		t.Fatal(err)
	}
	const id = "root.sg.d0"
	if err := e.Write(id, pts(1, 1, 50, 5, 90, 9)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot(id, series.TimeRange{Start: 0, End: 256})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Pyramid != nil {
		t.Fatal("snapshot has a pyramid source with DisablePyramid set")
	}
	if n := pyrVerify(t, e, id, 256); n != 0 {
		t.Fatalf("pyramid answered %d spans while disabled", n)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, pyramidFileName)); !os.IsNotExist(err) {
		t.Fatalf("manifest exists despite DisablePyramid (stat err = %v)", err)
	}
}
