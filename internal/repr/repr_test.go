package repr

import (
	"math/rand"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
	"m4lsm/internal/viz"
)

func genSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, 0, n)
	tt := int64(0)
	v := 0.0
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(15))
		v += rng.NormFloat64() * 3
		s = append(s, series.Point{T: tt, V: v})
	}
	return s
}

func TestAllTechniquesProduceSortedSubBudgetOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := genSeries(rng, 5000)
	q := m4.Query{Tqs: 0, Tqe: s[len(s)-1].T + 1, W: 64}
	budgets := map[string]int{"M4": 4 * q.W, "MinMax": 2 * q.W, "LTTB": q.W, "MinMaxLTTB": q.W, "Sampling": q.W, "PAA": q.W}
	for _, tech := range Techniques() {
		out, err := tech.Fn(q, s)
		if err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%s output: %v", tech.Name, err)
		}
		if len(out) == 0 || len(out) > budgets[tech.Name] {
			t.Errorf("%s kept %d points, budget %d", tech.Name, len(out), budgets[tech.Name])
		}
	}
}

func TestOnlyM4IsErrorFree(t *testing.T) {
	// The motivating claim of §1/§5.1: at w pixel columns, M4 renders
	// with zero pixel error; MinMax/Sampling/PAA do not (on data with
	// intra-column variation).
	zeroErr := map[string]int{}
	trials := 25
	for seed := int64(0); seed < int64(trials); seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := genSeries(rng, 4000)
		q := m4.Query{Tqs: 0, Tqe: s[len(s)-1].T + 1, W: 50}
		vp := viz.ViewportFor(s, q.Tqs, q.Tqe)
		full := viz.Rasterize(s, vp, q.W, 60)
		for _, tech := range Techniques() {
			out, err := tech.Fn(q, s)
			if err != nil {
				t.Fatal(err)
			}
			if viz.Diff(full, viz.Rasterize(out, vp, q.W, 60)) == 0 {
				zeroErr[tech.Name]++
			}
		}
	}
	if zeroErr["M4"] != trials {
		t.Errorf("M4 error-free in %d/%d trials, want all", zeroErr["M4"], trials)
	}
	for _, name := range []string{"MinMax", "LTTB", "MinMaxLTTB", "Sampling", "PAA"} {
		if zeroErr[name] == trials {
			t.Errorf("%s was error-free in every trial; it must lose pixels on varying data", name)
		}
	}
}

func TestPAAValues(t *testing.T) {
	s := series.Series{{T: 0, V: 2}, {T: 1, V: 4}, {T: 5, V: 10}}
	q := m4.Query{Tqs: 0, Tqe: 10, W: 2}
	out, err := PAA(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].V != 3 || out[1].V != 10 {
		t.Fatalf("PAA = %v", out)
	}
	if out[0].T != 0 || out[1].T != 5 {
		t.Fatalf("PAA times = %v", out)
	}
}

func TestMinMaxSingleValueSpan(t *testing.T) {
	s := series.Series{{T: 1, V: 5}}
	q := m4.Query{Tqs: 0, Tqe: 10, W: 1}
	out, err := MinMax(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("MinMax single-point span = %v (must not duplicate)", out)
	}
}

func TestSampleKeepsFirsts(t *testing.T) {
	s := series.Series{{T: 0, V: 1}, {T: 2, V: 9}, {T: 5, V: 3}, {T: 7, V: 4}}
	q := m4.Query{Tqs: 0, Tqe: 10, W: 2}
	out, err := Sample(q, s)
	if err != nil {
		t.Fatal(err)
	}
	want := series.Series{{T: 0, V: 1}, {T: 5, V: 3}}
	if len(out) != 2 || out[0] != want[0] || out[1] != want[1] {
		t.Fatalf("Sample = %v, want %v", out, want)
	}
}

func TestInvalidQueryPropagates(t *testing.T) {
	for _, tech := range Techniques() {
		if _, err := tech.Fn(m4.Query{Tqs: 0, Tqe: 0, W: 1}, nil); err == nil {
			t.Errorf("%s accepted an invalid query", tech.Name)
		}
	}
}
