package obs

import (
	"context"
	"log/slog"
)

type loggerKey struct{}

// WithLogger stores a request-scoped structured logger on the context.
// The HTTP layer attaches a logger carrying the request id, so every log
// line emitted while serving a request is attributable.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// Logger returns the context's logger, falling back to slog.Default so
// callers can log unconditionally.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}
