package viz

import "fmt"

// Structural similarity over binary canvases. Pixel-diff counts (Diff) weight
// every pixel equally; SSIM instead compares local luminance, contrast, and
// structure, which tracks perceived chart similarity much better — a
// representation that shifts a line by one pixel everywhere has a huge Diff
// but high SSIM, while one that erases a feature scores badly on both.
//
// Constants follow Wang et al. (2004): ssimWindow×ssimWindow windows,
// dynamic range L = 1 (binary canvases), K1 = 0.01, K2 = 0.03.
const (
	ssimWindow = 8
	ssimC1     = 0.01 * 0.01 // (K1·L)²
	ssimC2     = 0.03 * 0.03 // (K2·L)²
)

// SSIM returns the mean structural similarity of two equal-size canvases in
// [-1, 1] (1 = identical). Windows are non-overlapping ssimWindow-square
// tiles, clamped at the right and bottom edges. It panics on size mismatch,
// mirroring Diff.
func SSIM(a, b *Canvas) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("viz: ssim of %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var sum float64
	var windows int
	for y0 := 0; y0 < a.H; y0 += ssimWindow {
		for x0 := 0; x0 < a.W; x0 += ssimWindow {
			x1, y1 := x0+ssimWindow, y0+ssimWindow
			if x1 > a.W {
				x1 = a.W
			}
			if y1 > a.H {
				y1 = a.H
			}
			sum += windowSSIM(a, b, x0, y0, x1, y1)
			windows++
		}
	}
	if windows == 0 {
		return 1
	}
	return sum / float64(windows)
}

// DSSIM is the structural dissimilarity (1−SSIM)/2 in [0, 1]; 0 means
// identical canvases. This is the scale reported by the pixel-error harness.
func DSSIM(a, b *Canvas) float64 {
	return (1 - SSIM(a, b)) / 2
}

func windowSSIM(a, b *Canvas, x0, y0, x1, y1 int) float64 {
	n := float64((x1 - x0) * (y1 - y0))
	// Binary pixels: sums of values and products reduce to lit counts.
	var sa, sb, sab float64
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			av, bv := 0.0, 0.0
			if a.Get(x, y) {
				av = 1
			}
			if b.Get(x, y) {
				bv = 1
			}
			sa += av
			sb += bv
			sab += av * bv
		}
	}
	muA, muB := sa/n, sb/n
	// For 0/1 pixels E[x²] = E[x], so variance is μ(1−μ).
	varA := muA * (1 - muA)
	varB := muB * (1 - muB)
	cov := sab/n - muA*muB
	num := (2*muA*muB + ssimC1) * (2*cov + ssimC2)
	den := (muA*muA + muB*muB + ssimC1) * (varA + varB + ssimC2)
	return num / den
}
