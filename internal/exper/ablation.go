package exper

import (
	"fmt"
	"io"
	"time"

	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/storage"
	"m4lsm/internal/workload"
)

// AblationRow is one variant of one ablation study.
type AblationRow struct {
	Study   string
	Variant string
	Latency time.Duration
	Stats   storage.Stats
}

// RunAblations measures the operator design choices of DESIGN.md §6 on one
// overlap-and-delete-heavy storage state per dataset: lazy vs. eager
// loading, partial vs. full loads for probes, and step-regression vs.
// binary-search probes.
func RunAblations(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	variants := []struct {
		study, name string
		opts        m4lsm.Options
	}{
		{"loading", "lazy (paper)", m4lsm.Options{}},
		{"loading", "eager", m4lsm.Options{EagerLoad: true}},
		{"probe-load", "timestamps only (paper)", m4lsm.Options{}},
		{"probe-load", "full chunk", m4lsm.Options{DisablePartialLoad: true}},
		{"index", "step regression (paper)", m4lsm.Options{}},
		{"index", "binary search", m4lsm.Options{DisableStepIndex: true}},
	}
	var out []AblationRow
	for di, p := range cfg.Datasets {
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("ablation-%d", di))
		if err != nil {
			return nil, err
		}
		n := int(float64(p.Points) * cfg.Scale)
		nChunks := (n + cfg.ChunkSize - 1) / cfg.ChunkSize
		del := workload.DeleteOptions{
			Count:       nChunks / 5,
			RangeMillis: avgChunkSpan(p, cfg) / 2,
			Seed:        cfg.Seed,
		}
		b, err := build(cfg, p, 0.3, del, dir)
		if err != nil {
			cleanup()
			return nil, err
		}
		q := m4.Query{Tqs: b.tqs, Tqe: b.tqe, W: cfg.W}
		for _, v := range variants {
			best := AblationRow{Study: v.study, Variant: fmt.Sprintf("%s/%s", p.Name, v.name),
				Latency: 1 << 62}
			for rep := 0; rep < cfg.Reps; rep++ {
				snap, err := b.engine.Snapshot(p.Name, q.Range())
				if err != nil {
					b.close()
					cleanup()
					return nil, err
				}
				start := time.Now()
				if _, err := m4lsm.ComputeWithOptions(snap, q, v.opts); err != nil {
					b.close()
					cleanup()
					return nil, err
				}
				if d := time.Since(start); d < best.Latency {
					best.Latency = d
					best.Stats = snap.Stats.Load()
				}
			}
			out = append(out, best)
		}
		b.close()
		cleanup()
	}
	return out, nil
}

// WriteAblations renders the ablation comparison.
func WriteAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "== Ablations: M4-LSM design choices (DESIGN.md §6) ==")
	fmt.Fprintf(w, "%-12s %-34s %12s %10s %10s %10s %10s\n",
		"study", "variant", "latency", "loads", "timeLoads", "bytes", "probes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-34s %12s %10d %10d %10d %10d\n",
			r.Study, r.Variant, fmtDur(r.Latency),
			r.Stats.ChunksLoaded, r.Stats.TimeBlocksLoaded, r.Stats.BytesRead, r.Stats.IndexProbes)
	}
}
