package govern

import (
	"context"
	"time"
)

// Backoff returns the delay before retry `attempt` (1-based): exponential
// from base, capped at max, with deterministic jitter in [50%, 100%] of
// the exponential value drawn from (seed, attempt). Determinism matters
// for the fault-injection harness: a retry schedule must reproduce from a
// seed exactly like the faults it answers.
func Backoff(attempt int, base, max time.Duration, seed uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// splitmix64 of (seed, attempt) -> uniform fraction in [0.5, 1.0).
	x := seed + uint64(attempt)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := 0.5 + 0.5*float64(x>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// SleepBackoff sleeps for Backoff(attempt, base, max, seed), returning
// early with ctx.Err() on cancellation. It is the one sanctioned backoff
// sleep in library code (the Makefile lint enforces this).
func SleepBackoff(ctx context.Context, attempt int, base, max time.Duration, seed uint64) error {
	d := Backoff(attempt, base, max, seed)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
