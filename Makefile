GO ?= go
FUZZTIME ?= 10s
# Build identity injected into the binaries (m4server -version, the
# build_info metric). Plain `go build` without these falls back to the
# toolchain's embedded VCS stamp.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS := -X m4lsm/internal/buildinfo.Version=$(VERSION) -X m4lsm/internal/buildinfo.Commit=$(COMMIT)
# COVER_FLOOR is the minimum total statement coverage `make cover` accepts.
# Measured headroom: the suite sits around 75% with the cmd/ mains and
# examples/ at 0%, so 70 fails on a real regression, not on noise.
COVER_FLOOR ?= 70

.PHONY: build install test race race-short vet lint check cover difftest bench bench-parallel bench-shards bench-obs bench-overload bench-pyramid bench-recovery bench-repr bench-selfobs bench-ingest fuzz torture soak profile

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

# install drops versioned binaries into GOBIN.
install:
	$(GO) install -ldflags '$(LDFLAGS)' ./cmd/...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-short is the check-time race pass: -short trims the randomized
# sweeps (the 1000-case differential harness runs 200 cases, the m4lsm
# soak is skipped) so the gate stays minutes, not tens of minutes. The
# full-scale versions run in plain `make test` and `make race`.
race-short:
	$(GO) test -race -short ./...

# difftest runs the differential correctness harness on its own at full
# scale: 1000 seed-reproducible random workloads, each answered by
# M4-LSM, M4-UDF and a naive oracle, plus the pixel-equivalence check.
difftest:
	$(GO) test -count=1 -run 'TestDifferential|TestGoldenPixelEquivalence' ./internal/difftest

# cover enforces a total statement-coverage floor (COVER_FLOOR, percent)
# over the short-mode suite; the profile lands in coverage.out for
# `go tool cover -html=coverage.out`.
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	if ! awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }'; then \
		echo "cover: total coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; \
	fi

# torture runs the crash-recovery suite on its own: every write-path step
# site gets a simulated kill, recovery is checked against the oracle.
torture:
	$(GO) test -race -run 'Torture|Fault|TornWAL|Quarantine|Cancel' -count=1 ./internal/lsm ./internal/m4lsm ./internal/faultfs

# soak is the short overload torture: admission-control shedding, per-query
# budgets, deadline races in the worker pool, disk-full degradation, and the
# integrity-scrubber passes, all under the race detector. `make check`
# includes it.
soak:
	$(GO) test -race -count=1 -run 'Overload|Admission|Budget|DeadlineRace|ENOSPC|ReadOnly|BodyBounds|Scrub|Ingest' \
		./internal/server ./internal/lsm ./internal/m4lsm ./internal/m4ql ./internal/govern

# fuzz exercises the crash-recovery parsers (WAL payloads, chunk-file
# footers, record logs), the m4ql parser including the REPRESENT
# clause, and the /write line-protocol parser. Go allows one -fuzz
# target per invocation, so each runs separately for FUZZTIME (the seed
# corpus also runs in plain `make test`).
fuzz:
	$(GO) test ./internal/m4ql -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzWriteBody$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lsm -run '^$$' -fuzz '^FuzzDecodeInsert$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lsm -run '^$$' -fuzz '^FuzzDecodeWALDelete$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lsm -run '^$$' -fuzz '^FuzzBackupManifest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tsfile -run '^$$' -fuzz '^FuzzOpen$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tsfile -run '^$$' -fuzz '^FuzzRecordLog$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tsfile -run '^$$' -fuzz '^FuzzSegmentHeader$$' -fuzztime $(FUZZTIME)

# lint forbids ad-hoc printing in library code: internal/ packages must log
# through log/slog (the server injects a request-scoped logger) so output
# stays structured and greppable. Commands, examples and tests are exempt.
lint:
	@bad=$$(grep -rnE '(log\.(Print|Fatal|Panic)|fmt\.Print)' \
		--include='*.go' --exclude='*_test.go' internal/ *.go 2>/dev/null; true); \
	if [ -n "$$bad" ]; then \
		echo "lint: use log/slog instead of log.Print*/fmt.Print* in library code:"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rnE 'time\.Sleep' --include='*.go' --exclude='*_test.go' \
		internal/ *.go 2>/dev/null \
		| grep -v 'internal/govern/backoff\.go' \
		| grep -v 'internal/faultfs/faultfs\.go'; true); \
	if [ -n "$$bad" ]; then \
		echo "lint: library code must not call time.Sleep for backoff; use govern.SleepBackoff"; \
		echo "(deterministic jitter, context-aware). Exempt: govern/backoff.go, faultfs (injected latency)."; \
		echo "$$bad"; exit 1; \
	fi

# check is the standard gate for this repo: static analysis, the logging
# and backoff lints, the suite (including the crash-recovery torture and the
# short-mode differential harness) under the race detector, the overload
# soak, the coverage floor, and a short fuzz pass over the recovery parsers.
check: vet lint race-short soak cover
	$(MAKE) fuzz FUZZTIME=3s

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

# bench-parallel regenerates the worker-scaling numbers of BENCH_parallel.json.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkM4LSMParallel|BenchmarkM4UDFParallel' -benchtime 30x .

# bench-shards regenerates the sharding sweep of BENCH_shard.json.
bench-shards:
	$(GO) run ./cmd/m4bench -exp shards -scale 0.05 -series 16 -reps 10

# bench-overload regenerates the admission-control sweep of BENCH_overload.json.
bench-overload:
	$(GO) run ./cmd/m4bench -exp overload -scale 0.02 -clients 12

# bench-pyramid regenerates the rollup-pyramid sweep of BENCH_pyramid.json:
# fixed-w query latency across three orders of magnitude of data size,
# pyramid on vs off.
bench-pyramid:
	$(GO) run ./cmd/m4bench -exp pyramid -reps 5

# bench-repr regenerates the representation-operator sweep of
# BENCH_repr.json: quality (pixel error, DSSIM vs the full-series raster)
# versus cost (latency, chunk loads) for M4, MinMax, LTTB and MinMaxLTTB
# across dashboard span counts, plus the MinMax zero-chunk pyramid check.
bench-repr:
	$(GO) run ./cmd/m4bench -exp repr -reps 5

# bench-recovery regenerates the crash-recovery sweep of BENCH_recovery.json:
# reopen time and replayed WAL bytes after a kill, monolithic (one huge
# segment, retirement pinned by a cold shard) vs segmented.
bench-recovery:
	$(GO) run ./cmd/m4bench -exp recovery -reps 3

# bench-ingest regenerates the ingestion sweep of BENCH_ingest.json:
# write throughput across concurrent writers × batch size × SyncWAL, with
# the in-sweep requirement that batched ingestion reproduces the
# point-by-point database bit-for-bit and beats it 5x at 8 durable writers.
bench-ingest:
	$(GO) run ./cmd/m4bench -exp ingest -reps 3

# bench-selfobs regenerates the self-observability sweep of BENCH_selfobs.json:
# M4 query latency with the self-metrics sampler off vs hammering at 2ms,
# plus the sampler's cardinality bound and history queryability checks.
bench-selfobs:
	$(GO) run ./cmd/m4bench -exp selfobs -reps 5

# bench-obs regenerates the observability-overhead numbers of BENCH_obs.json
# (instrumentation off vs metrics vs metrics+trace).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkM4LSMObs' -benchtime 50x .

# profile runs the paper's Figure 10 sweep under the CPU and heap profilers;
# inspect with `go tool pprof profiles/cpu.pprof`.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/m4bench -exp fig10 -cpuprofile profiles/cpu.pprof -memprofile profiles/heap.pprof
	@echo "profiles written to ./profiles"
