package difftest

import "testing"

// TestDifferentialIngest is the batched-ingestion property test: twin
// engines consume identical seeded workloads — one point by point through
// Write, one in multi-series batches through WriteBatch (bounded queues,
// group-committed WAL) — with deletes, flushes and close-and-reopen cycles
// in lockstep, and every M4 query must agree bit-for-bit between the twins
// and with the oracle. A failure prints the seed; reproduce one case with
// difftest.RunIngestDiff(seed, dirA, dirB).
func TestDifferentialIngest(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 40
	}
	var entries int64
	for i := 0; i < n; i++ {
		seed := int64(i + 1)
		c, err := GenerateIngest(seed, t.TempDir(), t.TempDir())
		if err != nil {
			t.Fatalf("ingest mismatch at seed %d (reproduce: difftest.RunIngestDiff(%d, dirA, dirB)): %v", seed, seed, err)
		}
		err = c.Check()
		c.Close()
		if err != nil {
			t.Fatalf("ingest mismatch at seed %d (reproduce: difftest.RunIngestDiff(%d, dirA, dirB)): %v", seed, seed, err)
		}
		entries += c.BatchEntries
	}
	if entries == 0 {
		t.Fatal("no batch entries shipped across the whole ingest differential run; checks were vacuous")
	}
	t.Logf("shipped %d batch entries across %d twin cases", entries, n)
}
