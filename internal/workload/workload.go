// Package workload generates the four evaluation datasets of Table 2 and
// drives the storage states of §4.3–§4.5.
//
// The paper's datasets are not redistributable (two are customer data), so
// each preset is a synthetic stand-in that matches the properties the
// experiments actually depend on: total cardinality, collection frequency,
// time-skew (regular high-rate for BallSpeed/MF03, bursty with long gaps
// for KOB/RcvTime) and a slowly varying value process. DESIGN.md §2
// records the substitution rationale.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"m4lsm/internal/lsm"
	"m4lsm/internal/series"
)

// Preset describes one synthetic dataset.
type Preset struct {
	Name string
	// Points is the paper-scale cardinality (Table 2).
	Points int
	// Label describes the paper-scale time range ("71 minutes", ...).
	Label string
	// StartTime anchors the series (epoch milliseconds).
	StartTime int64
	// IntervalMs is the regular collection interval.
	IntervalMs int64
	// GapProb is the per-point probability of a transmission gap.
	GapProb float64
	// GapMaxIntervals bounds a gap's length in units of IntervalMs.
	GapMaxIntervals int64
	// Value generates the value process; pos is the point index.
	Value func(rng *rand.Rand, pos int, prev float64) float64
}

// BallSpeed models the soccer-ball speed sensor: 2000 Hz over 71 minutes,
// 7,193,200 points, near-perfectly regular timestamps, bursty speeds.
func BallSpeed() Preset {
	return Preset{
		Name:       "BallSpeed",
		Points:     7_193_200,
		Label:      "71 minutes",
		StartTime:  1_464_000_000_000,
		IntervalMs: 1, // 2000 Hz sensor stored at ms resolution
		GapProb:    0.00001, GapMaxIntervals: 500,
		Value: func(rng *rand.Rand, pos int, prev float64) float64 {
			// Mostly near zero with occasional kicks decaying away.
			if rng.Float64() < 0.0005 {
				return 20 + rng.Float64()*100
			}
			return math.Max(0, prev*0.999+rng.NormFloat64()*0.3)
		},
	}
}

// MF03 models the manufacturing power sensor: ~100 Hz over 28 hours,
// 10,000,000 points, regular with rare gaps, oscillating load.
func MF03() Preset {
	return Preset{
		Name:       "MF03",
		Points:     10_000_000,
		Label:      "28 hours",
		StartTime:  1_329_000_000_000,
		IntervalMs: 10,
		GapProb:    0.00002, GapMaxIntervals: 1000,
		Value: func(rng *rand.Rand, pos int, prev float64) float64 {
			return 60 + 25*math.Sin(float64(pos)/5000) + rng.NormFloat64()*2
		},
	}
}

// KOB models the customer dataset with a skewed time distribution:
// 1,943,180 points over 4 months — bursts at a 9 s cadence separated by
// long outages, as in Fig. 8(d).
func KOB() Preset {
	return Preset{
		Name:       "KOB",
		Points:     1_943_180,
		Label:      "4 months",
		StartTime:  1_639_000_000_000,
		IntervalMs: 5_000,
		GapProb:    0.002, GapMaxIntervals: 5_000,
		Value: func(rng *rand.Rand, pos int, prev float64) float64 {
			// Step-like industrial setpoints.
			if rng.Float64() < 0.001 {
				return float64(rng.Intn(12)) * 10
			}
			return prev + rng.NormFloat64()*0.1
		},
	}
}

// RcvTime models the second customer dataset: 1,330,764 points over one
// year, heavily skewed arrivals.
func RcvTime() Preset {
	return Preset{
		Name:       "RcvTime",
		Points:     1_330_764,
		Label:      "1 year",
		StartTime:  1_577_000_000_000,
		IntervalMs: 20_000,
		GapProb:    0.004, GapMaxIntervals: 10_000,
		Value: func(rng *rand.Rand, pos int, prev float64) float64 {
			// Receive latencies: baseline with heavy-tailed spikes.
			if rng.Float64() < 0.01 {
				return 100 + rng.ExpFloat64()*400
			}
			return 20 + rng.NormFloat64()*3
		},
	}
}

// Presets returns the four Table 2 datasets in paper order.
func Presets() []Preset {
	return []Preset{BallSpeed(), MF03(), KOB(), RcvTime()}
}

// Generate produces n points of the preset deterministically from seed.
// Use p.Points for paper scale or any smaller n for scaled-down runs; the
// timestamp structure (regularity/skew) is preserved at any scale.
func (p Preset) Generate(n int, seed int64) series.Series {
	rng := rand.New(rand.NewSource(seed))
	out := make(series.Series, 0, n)
	t := p.StartTime
	v := 0.0
	for i := 0; i < n; i++ {
		v = p.Value(rng, i, v)
		out = append(out, series.Point{T: t, V: v})
		t += p.IntervalMs
		if p.GapProb > 0 && rng.Float64() < p.GapProb {
			t += rng.Int63n(p.GapMaxIntervals+1) * p.IntervalMs
		}
	}
	return out
}

// TableRow is one line of the Table 2 reproduction.
type TableRow struct {
	Dataset    string
	TimeRange  string
	Points     int
	SpanMillis int64 // measured span of the generated data at the given n
}

// Table2 regenerates the dataset summary of Table 2 for the four presets
// at the given scale (scale 1 = paper cardinalities; 0 < scale <= 1).
func Table2(scale float64, seed int64) []TableRow {
	return Table2For(Presets(), scale, seed)
}

// Table2For regenerates the dataset summary for a chosen preset subset.
func Table2For(presets []Preset, scale float64, seed int64) []TableRow {
	rows := make([]TableRow, 0, len(presets))
	for _, p := range presets {
		n := int(float64(p.Points) * scale)
		if n < 2 {
			n = 2
		}
		data := p.Generate(n, seed)
		rows = append(rows, TableRow{
			Dataset:    p.Name,
			TimeRange:  p.Label,
			Points:     n,
			SpanMillis: data[len(data)-1].T - data[0].T,
		})
	}
	return rows
}

// LoadOptions controls how a series is written into the engine for the
// storage-shape experiments.
type LoadOptions struct {
	// ChunkSize is the points per chunk (the paper uses 1000, Table 4).
	ChunkSize int
	// OverlapFraction in [0, 1] is the fraction of chunks made to
	// overlap a neighbour in time (§4.3): chosen adjacent chunk pairs
	// are written interleaved so both span the union of their ranges.
	OverlapFraction float64
	// Seed drives the random choice of overlapping pairs.
	Seed int64
}

// Load writes data into the engine so that it lands in chunks of exactly
// ChunkSize points with the requested fraction of overlapping chunks, and
// flushes. The engine must use FlushThreshold == ChunkSize.
func Load(e *lsm.Engine, seriesID string, data series.Series, opts LoadOptions) error {
	if opts.ChunkSize <= 0 {
		return fmt.Errorf("workload: ChunkSize must be positive")
	}
	if opts.OverlapFraction < 0 || opts.OverlapFraction > 1 {
		return fmt.Errorf("workload: OverlapFraction %v out of [0,1]", opts.OverlapFraction)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	cs := opts.ChunkSize
	nChunks := (len(data) + cs - 1) / cs
	chunk := func(i int) series.Series {
		lo := i * cs
		hi := lo + cs
		if hi > len(data) {
			hi = len(data)
		}
		return data[lo:hi]
	}
	write := func(pts series.Series) error {
		if err := e.Write(seriesID, pts...); err != nil {
			return err
		}
		return e.Flush()
	}
	for i := 0; i < nChunks; {
		if i+1 < nChunks && rng.Float64() < opts.OverlapFraction {
			// Interleave this pair: both resulting chunks cover the
			// union time range, i.e. they overlap fully. The union's
			// last point goes into the first write so the second write
			// is entirely out of order (otherwise its trailing points
			// would land in the sequence space as a separate chunk).
			a, b := chunk(i), chunk(i+1)
			merged := make(series.Series, 0, len(a)+len(b))
			merged = append(merged, a...)
			merged = append(merged, b...)
			firstParity := (len(merged) - 1) % 2
			first := make(series.Series, 0, (len(merged)+1)/2)
			second := make(series.Series, 0, len(merged)/2)
			for j, p := range merged {
				if j%2 == firstParity {
					first = append(first, p)
				} else {
					second = append(second, p)
				}
			}
			if err := write(first); err != nil {
				return err
			}
			if err := write(second); err != nil {
				return err
			}
			i += 2
			continue
		}
		if err := write(chunk(i)); err != nil {
			return err
		}
		i++
	}
	return nil
}

// DeleteOptions drives the delete-shape experiments (§4.4, §4.5).
type DeleteOptions struct {
	// Count is the number of range deletes to issue.
	Count int
	// RangeMillis is the length of each delete range.
	RangeMillis int64
	// Seed drives the random placement of deletes.
	Seed int64
}

// ApplyDeletes issues Count random range deletes of length RangeMillis
// uniformly placed over the data's time range.
func ApplyDeletes(e *lsm.Engine, seriesID string, data series.Series, opts DeleteOptions) error {
	if len(data) == 0 || opts.Count <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	lo, hi := data[0].T, data[len(data)-1].T
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for i := 0; i < opts.Count; i++ {
		start := lo + rng.Int63n(span)
		if err := e.Delete(seriesID, start, start+opts.RangeMillis); err != nil {
			return err
		}
	}
	return nil
}

// OverlapPercentage measures the fraction of chunks in the engine whose
// time interval overlaps at least one other chunk of the same series. It
// verifies that Load hit the requested §4.3 storage shape.
func OverlapPercentage(e *lsm.Engine, seriesID string, r series.TimeRange) (float64, error) {
	snap, err := e.Snapshot(seriesID, r)
	if err != nil {
		return 0, err
	}
	n := len(snap.Chunks)
	if n == 0 {
		return 0, nil
	}
	overlapping := 0
	for i, a := range snap.Chunks {
		for j, b := range snap.Chunks {
			if i == j {
				continue
			}
			if a.Meta.First.T <= b.Meta.Last.T && b.Meta.First.T <= a.Meta.Last.T {
				overlapping++
				break
			}
		}
	}
	return float64(overlapping) / float64(n), nil
}
