package m4ql

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

func traceEngine(t *testing.T) *lsm.Engine {
	t.Helper()
	e := newEngine(t)
	for i := 0; i < 200; i++ {
		if err := e.Write("s", series.Point{T: int64(i * 5), V: float64((i * 13) % 31)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParseTraceClause(t *testing.T) {
	stmt, err := Parse(`SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4) TRACE`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Trace {
		t.Error("TRACE clause not parsed")
	}
	// Order-independent with the other trailing clauses.
	stmt, err = Parse(`SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4) TRACE USING UDF STRICT`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Trace || stmt.Operator != OpUDF || !stmt.Strict {
		t.Errorf("stmt = %+v", stmt)
	}
	if _, err := Parse(`SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4) TRACE TRACE`); err == nil {
		t.Error("duplicate TRACE accepted")
	}
	// Without the clause, tracing stays off.
	stmt, err = Parse(`SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4)`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Trace {
		t.Error("Trace set without clause")
	}
}

// TestExecuteTrace checks the trace contract both operators share: per-task
// timings whose exact sum is TaskTotalNs, sequential phases, and the I/O
// counters of the query.
func TestExecuteTrace(t *testing.T) {
	e := traceEngine(t)
	for _, op := range []string{"LSM", "UDF"} {
		res, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4) USING `+op+` TRACE`)
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trace
		if tr == nil {
			t.Fatalf("%s: no trace on TRACE query", op)
		}
		if tr.ID == "" || tr.ElapsedNs <= 0 {
			t.Errorf("%s: trace header = %+v", op, tr)
		}
		if len(tr.Tasks) == 0 || len(tr.Phases) == 0 {
			t.Fatalf("%s: trace empty: %d tasks, %d phases", op, len(tr.Tasks), len(tr.Phases))
		}
		sum := int64(0)
		for _, task := range tr.Tasks {
			sum += task.Ns
		}
		if sum != tr.TaskTotalNs {
			t.Errorf("%s: task sum %d != TaskTotalNs %d", op, sum, tr.TaskTotalNs)
		}
		if tr.Counters["chunksLoaded"]+tr.Counters["chunksPruned"] == 0 {
			t.Errorf("%s: no chunk accounting in counters: %v", op, tr.Counters)
		}
	}
}

// TestExecuteTraceLSMTasks checks the M4-LSM task decomposition: each
// non-empty span contributes exactly one task per representation function.
func TestExecuteTraceLSMTasks(t *testing.T) {
	e := traceEngine(t)
	res, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4) USING LSM TRACE`)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		span int
		g    string
	}
	seen := map[key]int{}
	for _, task := range res.Trace.Tasks {
		seen[key{task.Span, task.G}]++
	}
	for span := 0; span < 4; span++ {
		for _, g := range []string{"FP", "LP", "BP", "TP"} {
			if n := seen[key{span, g}]; n != 1 {
				t.Errorf("span %d %s: %d tasks, want 1", span, g, n)
			}
		}
	}
	if len(seen) != 16 {
		t.Errorf("distinct tasks = %d, want 16", len(seen))
	}
}

func TestExecuteWithoutTraceHasNone(t *testing.T) {
	e := traceEngine(t)
	res, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Errorf("trace present without TRACE clause: %+v", res.Trace)
	}
}

// TestExecuteContextArmedTrace: an armed trace on the context is used even
// without a TRACE clause (the HTTP layer's ?trace=1).
func TestExecuteContextArmedTrace(t *testing.T) {
	e := traceEngine(t)
	ctx, _ := obs.WithTrace(context.Background())
	res, err := RunContext(ctx, e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Tasks) == 0 {
		t.Fatal("context-armed trace not attached")
	}
}

// TestExecuteTraceJSON: the trace round-trips through the result's JSON
// form under the "trace" key.
func TestExecuteTraceJSON(t *testing.T) {
	e := traceEngine(t)
	res, err := Run(e, `SELECT M4(*) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4) TRACE`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	for _, want := range []string{`"trace"`, `"taskTotalNs"`, `"tasks"`, `"g":"FP"`} {
		if !strings.Contains(got, want) {
			t.Errorf("result JSON missing %s", want)
		}
	}
}

// TestExecuteGroupByTrace: the aggregate form attaches a trace too (phase
// plus counters; the group-by scan has no per-task decomposition).
func TestExecuteGroupByTrace(t *testing.T) {
	e := traceEngine(t)
	res, err := Run(e, `SELECT COUNT(v), AVG(v) FROM s WHERE time >= 0 AND time < 1000 GROUP BY SPANS(4) TRACE`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Phases) == 0 {
		t.Fatal("group-by trace missing")
	}
}
