package difftest

import (
	"fmt"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
	"m4lsm/internal/viz"
	"m4lsm/internal/workload"
)

// TestGoldenPixelEquivalence is the paper's error-free guarantee as a
// golden test at dashboard-sized canvases: for engine states with overlap,
// overwrites and deletes, rendering the M4-LSM reduction must light exactly
// the pixels of rendering the full merged series. Unlike TestDifferential's
// small canvas, this uses the real presets at larger widths, so span/pixel
// boundary arithmetic is exercised at production shapes.
func TestGoldenPixelEquivalence(t *testing.T) {
	canvases := []struct{ w, h int }{
		{200, 100},
		{480, 270},
		{1000, 500},
	}
	if testing.Short() {
		canvases = canvases[:2]
	}
	for pi, preset := range workload.Presets() {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), NumShards: 1 + pi, DisableWAL: true})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			data := preset.Generate(4000, 11)
			if err := workload.Load(e, preset.Name, data, workload.LoadOptions{
				ChunkSize:       250,
				OverlapFraction: 0.3,
				Seed:            11,
			}); err != nil {
				t.Fatal(err)
			}
			if err := workload.ApplyDeletes(e, preset.Name, data, workload.DeleteOptions{
				Count:       6,
				RangeMillis: (data[len(data)-1].T - data[0].T) / 50,
				Seed:        11,
			}); err != nil {
				t.Fatal(err)
			}
			tqs, tqe := data[0].T, data[len(data)-1].T+1
			for _, c := range canvases {
				t.Run(fmt.Sprintf("%dx%d", c.w, c.h), func(t *testing.T) {
					q := m4.Query{Tqs: tqs, Tqe: tqe, W: c.w}
					snap, err := e.Snapshot(preset.Name, q.Range())
					if err != nil {
						t.Fatal(err)
					}
					full, err := mergeread.Merge(snap, q.Range())
					if err != nil {
						t.Fatal(err)
					}
					snap, err = e.Snapshot(preset.Name, q.Range())
					if err != nil {
						t.Fatal(err)
					}
					aggs, err := m4lsm.Compute(snap, q)
					if err != nil {
						t.Fatal(err)
					}
					reduced := m4.Points(aggs)
					vp := viz.ViewportFor(series.Series(full), tqs, tqe)
					a := viz.Rasterize(series.Series(full), vp, c.w, c.h)
					b := viz.Rasterize(reduced, vp, c.w, c.h)
					if d := viz.Diff(a, b); d != 0 {
						t.Errorf("%d of %d lit pixels differ between full and M4-reduced render",
							d, a.Count())
					}
					if a.Count() == 0 {
						t.Error("blank canvas: workload produced no in-range points")
					}
				})
			}
		})
	}
}
