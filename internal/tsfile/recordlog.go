package tsfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// RecordLog is an append-only log of length+CRC framed records. It backs
// the delete sidecar (.mods files, Definition 2.5) and the engine WAL.
//
// Record framing: uvarint payload length | payload | uint32 CRC(payload).
// A torn tail (partial record from a crash mid-append) is detected by the
// CRC and truncated on open, mirroring standard WAL recovery behaviour.
type RecordLog struct {
	f    *os.File
	path string
}

// maxRecordLen bounds a single record; larger lengths indicate corruption.
const maxRecordLen = 64 << 20

// OpenRecordLog opens (or creates) the log for appending after scanning
// existing records into recovered. A corrupt tail is truncated; corruption
// in the middle of the file is an error.
func OpenRecordLog(path string) (log *RecordLog, recovered [][]byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("recordlog: %w", err)
	}
	valid := 0
	rest := data
	for len(rest) > 0 {
		payload, n := parseRecord(rest)
		if n == 0 {
			break // torn tail
		}
		recovered = append(recovered, payload)
		rest = rest[n:]
		valid += n
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("recordlog: %w", err)
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("recordlog: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("recordlog: %w", err)
	}
	return &RecordLog{f: f, path: path}, recovered, nil
}

// parseRecord returns the payload and total encoded length of the first
// record in b, or n == 0 if b does not start with a complete valid record.
func parseRecord(b []byte) (payload []byte, n int) {
	plen, used := binary.Uvarint(b)
	if used <= 0 || plen > maxRecordLen {
		return nil, 0
	}
	total := used + int(plen) + 4
	if len(b) < total {
		return nil, 0
	}
	payload = b[used : used+int(plen)]
	want := binary.LittleEndian.Uint32(b[used+int(plen):])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0
	}
	return payload, total
}

// ParseRecordFrame scans the first framed record of b, returning its
// payload and total encoded length (0 when b does not start with a
// complete valid record). Segment migration reuses it to re-frame legacy
// monolithic-WAL bytes.
func ParseRecordFrame(b []byte) (payload []byte, n int) { return parseRecord(b) }

// Append writes one record. If sync is true the file is fsynced before
// returning, making the record durable.
func (l *RecordLog) Append(payload []byte, sync bool) error {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("recordlog: append: %w", err)
	}
	if sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("recordlog: sync: %w", err)
		}
	}
	return nil
}

// Reset truncates the log to empty (used after a successful flush makes
// the WAL obsolete).
func (l *RecordLog) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("recordlog: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("recordlog: reset seek: %w", err)
	}
	return nil
}

// Path returns the log file path.
func (l *RecordLog) Path() string { return l.path }

// Size returns the log's current on-disk size in bytes (0 on stat
// failure). The engine exposes it as the wal_bytes gauge.
func (l *RecordLog) Size() int64 {
	fi, err := l.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Close releases the file handle.
func (l *RecordLog) Close() error { return l.f.Close() }
