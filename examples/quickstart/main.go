// Quickstart: open a database, write a series (including out-of-order
// points and a range delete), and run an M4 representation query with the
// merge-free operator — both through the Go API and the SQL-ish surface.
package main

import (
	"fmt"
	"log"
	"os"

	"m4lsm"
)

func main() {
	dir, err := os.MkdirTemp("", "m4lsm-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := m4lsm.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Write a minute of 1 Hz sensor data...
	const seriesID = "root.demo.temperature"
	var pts []m4lsm.Point
	for i := 0; i < 60; i++ {
		pts = append(pts, m4lsm.Point{Time: int64(i * 1000), Value: 20 + float64(i%7)})
	}
	if err := db.Write(seriesID, pts...); err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// ...then a late out-of-order correction (overwrites t=30s) and a
	// range delete — the LSM states that make M4 hard.
	if err := db.Write(seriesID, m4lsm.Point{Time: 30_000, Value: 99}); err != nil {
		log.Fatal(err)
	}
	if err := db.Delete(seriesID, 10_000, 14_000); err != nil {
		log.Fatal(err)
	}

	// Represent the minute in 6 pixel columns.
	aggs, stats, err := db.M4(seriesID, 0, 60_000, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("span  first           last            bottom  top")
	for i, a := range aggs {
		if a.Empty {
			fmt.Printf("%4d  (empty)\n", i)
			continue
		}
		fmt.Printf("%4d  t=%-6d v=%-4g t=%-6d v=%-4g %-7g %g\n",
			i, a.First.Time, a.First.Value, a.Last.Time, a.Last.Value,
			a.Bottom.Value, a.Top.Value)
	}
	fmt.Printf("\ncost: %+v\n\n", stats)

	// The same query through the SQL-ish surface of the paper's appendix.
	res, err := db.Query(`SELECT M4(*) FROM root.demo.temperature
		WHERE time >= 0 AND time < 60000 GROUP BY SPANS(6) USING LSM`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Text())
}
