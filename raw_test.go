package m4lsm

import (
	"bytes"
	"image/png"
	"reflect"
	"testing"
)

func TestRaw(t *testing.T) {
	db := openDB(t)
	db.Write("s", Point{Time: 30, Value: 3}, Point{Time: 10, Value: 1}, Point{Time: 20, Value: 2})
	db.Flush()
	db.Write("s", Point{Time: 20, Value: 9}) // overwrite
	db.Delete("s", 30, 30)
	got, err := db.Raw("s", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{{Time: 10, Value: 1}, {Time: 20, Value: 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Raw = %v, want %v", got, want)
	}
	// Range restriction.
	got, err = db.Raw("s", 15, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Time != 20 {
		t.Fatalf("Raw restricted = %v", got)
	}
	if _, err := db.Raw("s", 10, 10); err == nil {
		t.Error("empty range accepted")
	}
}

func TestRender(t *testing.T) {
	db := openDB(t)
	for i := 0; i < 200; i++ {
		db.Write("s", Point{Time: int64(i * 5), Value: float64((i * 3) % 17)})
	}
	db.Flush()
	raw, err := db.Render("s", 0, 1000, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 80 || img.Bounds().Dy() != 40 {
		t.Errorf("bounds = %v", img.Bounds())
	}
	if _, err := db.Render("s", 0, 1000, 0, 40); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := db.Render("s", 0, 1000, 80, 0); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestM4Multi(t *testing.T) {
	db := openDB(t, WithFlushThreshold(16))
	for s := 0; s < 5; s++ {
		id := string(rune('a' + s))
		for i := 0; i < 64; i++ {
			db.Write(id, Point{Time: int64(i * 10), Value: float64(s*100 + i%9)})
		}
	}
	db.Flush()
	ids := []string{"a", "b", "c", "d", "e"}
	got, err := db.M4Multi(ids, 0, 640, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("series = %d", len(got))
	}
	for s, id := range ids {
		if got[s].SeriesID != id {
			t.Fatalf("series %d = %q, want %q", s, got[s].SeriesID, id)
		}
		aggs := got[s].Aggregates
		if len(aggs) != 4 {
			t.Fatalf("%s: %d spans", id, len(aggs))
		}
		// Each series' values sit in its own band.
		if aggs[0].Bottom.Value < float64(s*100) || aggs[0].Top.Value >= float64(s*100+9) {
			t.Errorf("%s span0 = %+v", id, aggs[0])
		}
		// Must match the single-series result exactly.
		single, _, err := db.M4(id, 0, 640, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single {
			if single[i] != aggs[i] {
				t.Fatalf("%s span %d: multi %v, single %v", id, i, aggs[i], single[i])
			}
		}
	}
	if _, err := db.M4Multi(ids, 5, 5, 1); err == nil {
		t.Error("invalid range accepted")
	}
}
