package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// blockingSource parks every chunk read on a channel, so a test can pin a
// query in flight for as long as it needs deterministic contention.
type blockingSource struct {
	inner   storage.ChunkSource
	release chan struct{}
}

func (b *blockingSource) ReadChunk(m storage.ChunkMeta) (series.Series, error) {
	<-b.release
	return b.inner.ReadChunk(m)
}

func (b *blockingSource) ReadTimes(m storage.ChunkMeta) ([]int64, error) {
	<-b.release
	return b.inner.ReadTimes(m)
}

// slowSource delays every chunk read so concurrent queries overlap long
// enough to contend for the admission gate.
type slowSource struct {
	inner storage.ChunkSource
	delay time.Duration
}

func (s *slowSource) ReadChunk(m storage.ChunkMeta) (series.Series, error) {
	time.Sleep(s.delay)
	return s.inner.ReadChunk(m)
}

func (s *slowSource) ReadTimes(m storage.ChunkMeta) ([]int64, error) {
	time.Sleep(s.delay)
	return s.inner.ReadTimes(m)
}

// newGatedServer opens a many-chunk engine whose chunk sources are wrapped
// by wrap, and serves it with admission control per cfg.
func newGatedServer(t *testing.T, cfg Config, wrap func(storage.ChunkSource) storage.ChunkSource) *httptest.Server {
	t.Helper()
	// The pyramid is off: its flush-time rebuild reads chunks through the
	// wrapped source, and blockingSource would park setup forever.
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), Metrics: obs.NewRegistry(), WrapSource: wrap, DisablePyramid: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		e.Write("root.s1", series.Point{T: int64(i * 10), V: float64((i * 7) % 50)})
		if i%25 == 24 {
			e.Flush()
		}
	}
	e.Flush()
	h := NewWith(e, cfg)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
		e.Close()
	})
	return srv
}

func slowQueryURL(base string) string {
	q := url.Values{}
	q.Set("q", "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 3000 GROUP BY SPANS(5) USING LSM")
	return base + "/query?" + q.Encode()
}

// varzNumber reads one numeric instrument from /varz.
func varzNumber(t *testing.T, base, key string) float64 {
	t.Helper()
	var snap map[string]interface{}
	if code := getJSON(t, base+"/varz", &snap); code != 200 {
		t.Fatalf("/varz status %d", code)
	}
	v, ok := snap[key].(float64)
	if !ok {
		t.Fatalf("/varz missing %q (got %T)", key, snap[key])
	}
	return v
}

// checkNoGoroutineLeak registers a cleanup that fails the test if the
// goroutine count does not settle back to the baseline.
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			runtime.Gosched()
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

// TestAdmissionShedDeterministic pins one query in flight against a
// single-slot gate with no queue, then proves the next request is shed
// with 429 + Retry-After while the gauges on /varz tell the same story.
func TestAdmissionShedDeterministic(t *testing.T) {
	checkNoGoroutineLeak(t)
	release := make(chan struct{})
	srv := newGatedServer(t,
		Config{QuerySlots: 1, QueryQueueDepth: 0, QueryQueueWait: -1},
		func(src storage.ChunkSource) storage.ChunkSource {
			return &blockingSource{inner: src, release: release}
		})

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(slowQueryURL(srv.URL))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()

	// Wait until the pinned query holds the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for varzNumber(t, srv.URL, "http_query_inflight") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never acquired the gate")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Get(slowQueryURL(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if kind := resp.Header.Get("X-M4-Error"); kind != "overloaded" {
		t.Errorf("X-M4-Error = %q, want overloaded", kind)
	}
	if shed := varzNumber(t, srv.URL, "http_shed_total"); shed < 1 {
		t.Errorf("http_shed_total = %v after a shed", shed)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("pinned query finished with %d", code)
	}
	for varzNumber(t, srv.URL, "http_query_inflight") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("inflight gauge never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOverloadTorture fires a burst of concurrent slow queries at a
// single-slot gate with a short queue. Every response must be either 200
// or 429-with-Retry-After — never a 500, a hang, or a dropped connection —
// and afterwards the shed counter matches the observed 429s exactly while
// both gauges drain to zero.
func TestOverloadTorture(t *testing.T) {
	checkNoGoroutineLeak(t)
	srv := newGatedServer(t,
		Config{QuerySlots: 1, QueryQueueDepth: 2, QueryQueueWait: 30 * time.Millisecond},
		func(src storage.ChunkSource) storage.ChunkSource {
			return &slowSource{inner: src, delay: 2 * time.Millisecond}
		})

	const n = 24
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(slowQueryURL(srv.URL))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					errCh <- fmt.Errorf("429 without Retry-After")
					return
				}
				shed.Add(1)
			default:
				errCh <- fmt.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if ok.Load() == 0 {
		t.Error("no query survived the burst")
	}
	if got := ok.Load() + shed.Load(); got != n {
		t.Errorf("accounted for %d of %d requests", got, n)
	}
	if counted := varzNumber(t, srv.URL, "http_shed_total"); counted != float64(shed.Load()) {
		t.Errorf("http_shed_total = %v, saw %d 429s", counted, shed.Load())
	}
	deadline := time.Now().Add(2 * time.Second)
	for varzNumber(t, srv.URL, "http_query_inflight") != 0 || varzNumber(t, srv.URL, "http_query_waiting") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gauges never drained: inflight=%v waiting=%v",
				varzNumber(t, srv.URL, "http_query_inflight"),
				varzNumber(t, srv.URL, "http_query_waiting"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("burst: %d ok, %d shed", ok.Load(), shed.Load())
}

// TestQueryBudgetMapping drives the server-level default budget: a lenient
// query degrades to 200 + partial, a STRICT one maps to 503 with the
// budget-exceeded error kind.
func TestQueryBudgetMapping(t *testing.T) {
	srv := newGatedServer(t, Config{QuerySlots: 4, MaxChunksPerQuery: 1}, nil)

	var res struct {
		Partial  bool     `json:"partial"`
		Warnings []string `json:"warnings"`
	}
	if code := getJSON(t, slowQueryURL(srv.URL), &res); code != 200 {
		t.Fatalf("lenient budgeted query: status %d", code)
	}
	if !res.Partial || len(res.Warnings) == 0 {
		t.Fatalf("budget-capped query not partial (partial=%v warnings=%d)", res.Partial, len(res.Warnings))
	}

	q := url.Values{}
	q.Set("q", "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 3000 GROUP BY SPANS(5) USING LSM STRICT")
	resp, err := http.Get(srv.URL + "/query?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("strict budgeted query: status %d, want 503", resp.StatusCode)
	}
	if kind := resp.Header.Get("X-M4-Error"); kind != "budget-exceeded" {
		t.Errorf("X-M4-Error = %q, want budget-exceeded", kind)
	}
}

// TestBodyBounds: oversized and malformed POST bodies answer 400 — never a
// panic or an opaque 500.
func TestBodyBounds(t *testing.T) {
	srv := newGatedServer(t, Config{MaxBodyBytes: 256}, nil)

	big := `{"query": "` + strings.Repeat("x", 1024) + `"}`
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// TestHealthzReadOnly surfaces disk-full degradation on /healthz: after an
// injected ENOSPC flush the status flips to "read-only" with the reason.
func TestHealthzReadOnly(t *testing.T) {
	var diskFull atomic.Bool
	hook := func(site string) error {
		if diskFull.Load() && (strings.HasPrefix(site, "flush.chunk:") || site == "probe.space") {
			return fmt.Errorf("injected: %w", syscall.ENOSPC)
		}
		return nil
	}
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), StepHook: hook, SpaceProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e.Write("root.s1", series.Point{T: int64(i), V: float64(i % 7)})
	}
	h := New(e)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
		diskFull.Store(false) // let Close flush cleanly
		e.Close()
	})

	diskFull.Store(true)
	if err := e.Flush(); err == nil {
		t.Fatal("flush on full disk succeeded")
	}

	var body map[string]interface{}
	if code := getJSON(t, srv.URL+"/healthz", &body); code != 200 {
		t.Fatalf("/healthz status %d", code)
	}
	if body["status"] != "read-only" || body["readOnly"] != true {
		t.Fatalf("healthz on full disk: %v", body)
	}
	if reason, _ := body["readOnlyReason"].(string); reason == "" {
		t.Error("readOnlyReason empty in read-only mode")
	}

	diskFull.Store(false)
	if err := e.Flush(); err != nil {
		t.Fatalf("flush after space returned: %v", err)
	}
	if code := getJSON(t, srv.URL+"/healthz", &body); code != 200 || body["status"] == "read-only" {
		t.Fatalf("healthz after recovery: code=%d body=%v", code, body)
	}
}
