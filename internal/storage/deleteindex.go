package storage

import "sort"

// DeleteIndex answers "is a point written at version v and timestamp t
// covered by any delete with a larger version?" in O(log D) after an
// O(D log D) build. It is the analogue of the CPU-efficient delete sort
// IoTDB applies during merges (reference [1] of the paper): since the
// covering condition only depends on the *maximum* version among deletes
// covering t, the time axis is swept once into segments carrying that
// maximum.
type DeleteIndex struct {
	bounds []int64   // segment start positions, sorted
	maxVer []Version // max delete version covering [bounds[i], bounds[i+1])
}

// NewDeleteIndex builds the index over a set of deletes (order free).
func NewDeleteIndex(deletes []Delete) *DeleteIndex {
	type event struct {
		at    int64
		ver   Version
		start bool
	}
	events := make([]event, 0, 2*len(deletes))
	for _, d := range deletes {
		if d.End < d.Start {
			continue
		}
		events = append(events, event{at: d.Start, ver: d.Version, start: true})
		// Closed range: the delete stops covering at End+1. Guard the
		// int64 edge; a delete ending at MaxInt64 never expires.
		if d.End != int64(^uint64(0)>>1) {
			events = append(events, event{at: d.End + 1, ver: d.Version, start: false})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })

	ix := &DeleteIndex{}
	active := map[Version]int{}
	maxActive := func() Version {
		var m Version
		for v := range active {
			if v > m {
				m = v
			}
		}
		return m
	}
	for i := 0; i < len(events); {
		at := events[i].at
		for i < len(events) && events[i].at == at {
			e := events[i]
			if e.start {
				active[e.ver]++
			} else {
				active[e.ver]--
				if active[e.ver] == 0 {
					delete(active, e.ver)
				}
			}
			i++
		}
		ix.bounds = append(ix.bounds, at)
		ix.maxVer = append(ix.maxVer, maxActive())
	}
	return ix
}

// Covered reports whether timestamp t is covered by any delete with a
// version strictly larger than ver.
func (ix *DeleteIndex) Covered(t int64, ver Version) bool {
	i := sort.Search(len(ix.bounds), func(i int) bool { return ix.bounds[i] > t }) - 1
	if i < 0 {
		return false
	}
	return ix.maxVer[i] > ver
}
