// Package mergeread implements the MergeReader of Fig. 15: it loads every
// chunk of a snapshot and streams the merged ("latest") time series of
// Definition 2.7 in time order, resolving overwrites by version number and
// applying range deletes.
//
// This is exactly the work the M4-LSM operator avoids; the M4-UDF baseline
// is built on top of this package.
package mergeread

import (
	"container/heap"
	"sort"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Iterator streams the merged series of a snapshot restricted to a
// half-open time range. Chunks are loaded eagerly at construction, matching
// the baseline's "load all chunks, order points by time" behaviour (§1.1).
type Iterator struct {
	h       cursorHeap
	deletes *storage.DeleteIndex
	end     int64
}

type cursor struct {
	data series.Series
	pos  int
	ver  storage.Version
}

type cursorHeap []*cursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	ti, tj := h[i].data[h[i].pos].T, h[j].data[h[j].pos].T
	if ti != tj {
		return ti < tj
	}
	return h[i].ver > h[j].ver // larger version first among equal times
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) {
	*h = append(*h, x.(*cursor))
}
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// NewIterator loads every chunk of the snapshot and positions the merge at
// the first point inside r.
func NewIterator(snap *storage.Snapshot, r series.TimeRange) (*Iterator, error) {
	it := &Iterator{deletes: storage.NewDeleteIndex(snap.Deletes), end: r.End}
	for _, c := range snap.Chunks {
		data, err := c.Load()
		if err != nil {
			return nil, err
		}
		pos := sort.Search(len(data), func(i int) bool { return data[i].T >= r.Start })
		if pos >= len(data) || data[pos].T >= r.End {
			continue
		}
		it.h = append(it.h, &cursor{data: data, pos: pos, ver: c.Meta.Version})
	}
	heap.Init(&it.h)
	return it, nil
}

// Next returns the next latest point in time order, and false when the
// range is exhausted.
func (it *Iterator) Next() (series.Point, bool) {
	for len(it.h) > 0 {
		t := it.h[0].data[it.h[0].pos].T
		if t >= it.end {
			return series.Point{}, false
		}
		// The heap orders equal timestamps by descending version, so the
		// top cursor holds the latest write for t.
		winner := it.h[0].data[it.h[0].pos]
		winnerVer := it.h[0].ver
		for len(it.h) > 0 && it.h[0].data[it.h[0].pos].T == t {
			c := it.h[0]
			c.pos++
			if c.pos >= len(c.data) {
				heap.Pop(&it.h)
			} else {
				heap.Fix(&it.h, 0)
			}
		}
		if it.deletes.Covered(t, winnerVer) {
			continue
		}
		return winner, true
	}
	return series.Point{}, false
}

// Merge materializes the merged series of Definition 2.7 restricted to r.
// It is the reference implementation used by tests and the baseline.
func Merge(snap *storage.Snapshot, r series.TimeRange) (series.Series, error) {
	it, err := NewIterator(snap, r)
	if err != nil {
		return nil, err
	}
	var out series.Series
	for {
		p, ok := it.Next()
		if !ok {
			return out, nil
		}
		out = append(out, p)
	}
}
