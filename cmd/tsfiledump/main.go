// Command tsfiledump inspects chunk files: the footer metadata of every
// chunk (series, version, count, time interval and the four representation
// points) and optionally the decoded points.
//
// Usage:
//
//	tsfiledump db/000000.tsf
//	tsfiledump -points db/000000.tsf
//	tsfiledump -mods db/deletes.mods
package main

import (
	"flag"
	"fmt"
	"log"

	"m4lsm/internal/tsfile"
)

func main() {
	var (
		points = flag.Bool("points", false, "also dump decoded points")
		mods   = flag.Bool("mods", false, "treat arguments as .mods delete sidecars")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("tsfiledump: no files given")
	}
	for _, path := range flag.Args() {
		if *mods {
			dumpMods(path)
			continue
		}
		dumpFile(path, *points)
	}
}

func dumpFile(path string, points bool) {
	r, err := tsfile.Open(path)
	if err != nil {
		log.Fatalf("tsfiledump: %v", err)
	}
	defer r.Close()
	fmt.Printf("%s: %d chunks\n", path, len(r.Metas()))
	for i, m := range r.Metas() {
		fmt.Printf("  [%d] series=%s version=%d count=%d codec=%s offset=%d bytes=%d\n",
			i, m.SeriesID, m.Version, m.Count, m.Codec, m.Offset,
			m.HeaderLen+m.TimesLen+m.ValuesLen)
		fmt.Printf("      first=%v last=%v bottom=%v top=%v\n", m.First, m.Last, m.Bottom, m.Top)
		if !points {
			continue
		}
		data, err := r.ReadChunk(m)
		if err != nil {
			log.Fatalf("tsfiledump: chunk %d: %v", i, err)
		}
		for _, p := range data {
			fmt.Printf("      %d %g\n", p.T, p.V)
		}
	}
}

func dumpMods(path string) {
	m, err := tsfile.OpenModLog(path)
	if err != nil {
		log.Fatalf("tsfiledump: %v", err)
	}
	defer m.Close()
	fmt.Printf("%s: %d deletes\n", path, len(m.All()))
	for i, d := range m.All() {
		fmt.Printf("  [%d] %v\n", i, d)
	}
}
