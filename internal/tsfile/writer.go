// Package tsfile implements the on-disk chunk file format, the Go analogue
// of IoTDB's TsFile in Fig. 15 of the paper: a sequence of immutable chunks
// (each a compressed segment of one series) followed by a footer holding
// every chunk's metadata — version number, point count and the four
// representation points FP/LP/BP/TP — so queries can read metadata without
// touching chunk data.
//
// Timestamps and values are encoded as two separate blocks with separate
// checksums, so the timestamp block can be fetched and decoded alone; the
// M4-LSM operator uses that partial read for BP/TP existence probes.
//
// File layout:
//
//	"M4TS" 0x01                                 file magic + format version
//	chunk*                                      see writeChunk
//	footer: uvarint count, meta*                see appendMeta
//	uint32 footerCRC | uint64 footerLen | "M4TF"
//
// The package also provides the length+CRC framed append-only record log
// used by the delete sidecar (.mods) and the engine WAL.
package tsfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"m4lsm/internal/encoding"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

var (
	fileMagic   = []byte{'M', '4', 'T', 'S', 0x01}
	footerMagic = []byte{'M', '4', 'T', 'F'}
)

// ErrCorrupt reports a structurally invalid chunk file.
var ErrCorrupt = errors.New("tsfile: corrupt file")

// Writer creates a chunk file. Chunks are appended with WriteChunk and the
// footer is written by Close; a writer whose Close failed leaves no valid
// file behind (the footer magic will be missing).
type Writer struct {
	f      *os.File
	w      *bufio.Writer
	offset int64
	metas  []storage.ChunkMeta
	closed bool
}

// Create opens path for writing and emits the file header.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("tsfile: %w", err)
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<16)}
	if _, err := w.w.Write(fileMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("tsfile: write magic: %w", err)
	}
	w.offset = int64(len(fileMagic))
	return w, nil
}

// WriteChunk appends one chunk for seriesID with the given version and
// codec. data must be non-empty and strictly increasing in time. The
// returned metadata is also recorded for the footer.
func (w *Writer) WriteChunk(seriesID string, version storage.Version, codec encoding.Codec, data series.Series) (storage.ChunkMeta, error) {
	if w.closed {
		return storage.ChunkMeta{}, errors.New("tsfile: writer closed")
	}
	if err := data.Validate(); err != nil {
		return storage.ChunkMeta{}, fmt.Errorf("tsfile: chunk %s v%d: %w", seriesID, version, err)
	}
	first, last, bottom, top, ok := storage.ComputeMeta(data)
	if !ok {
		return storage.ChunkMeta{}, fmt.Errorf("tsfile: chunk %s v%d: empty", seriesID, version)
	}
	if !codec.Valid() {
		return storage.ChunkMeta{}, fmt.Errorf("tsfile: chunk %s v%d: bad codec %d", seriesID, version, codec)
	}

	timesBlock := codec.EncodeTimesWith(nil, data.Times())
	valuesBlock := codec.EncodeValuesWith(nil, data.Values())

	var hdr []byte
	hdr = encoding.AppendUvarint(hdr, uint64(len(seriesID)))
	hdr = append(hdr, seriesID...)
	hdr = encoding.AppendUvarint(hdr, uint64(version))
	hdr = append(hdr, byte(codec))
	hdr = encoding.AppendUvarint(hdr, uint64(len(data)))
	hdr = encoding.AppendUvarint(hdr, uint64(len(timesBlock)))
	hdr = encoding.AppendUvarint(hdr, uint64(len(valuesBlock)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(timesBlock))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(valuesBlock))

	meta := storage.ChunkMeta{
		SeriesID:  seriesID,
		Version:   version,
		Count:     int64(len(data)),
		Codec:     codec,
		First:     first,
		Last:      last,
		Bottom:    bottom,
		Top:       top,
		Offset:    w.offset,
		HeaderLen: int64(len(hdr)),
		TimesLen:  int64(len(timesBlock)),
		ValuesLen: int64(len(valuesBlock)),
	}
	for _, b := range [][]byte{hdr, timesBlock, valuesBlock} {
		if _, err := w.w.Write(b); err != nil {
			return storage.ChunkMeta{}, fmt.Errorf("tsfile: write chunk: %w", err)
		}
		w.offset += int64(len(b))
	}
	w.metas = append(w.metas, meta)
	return meta, nil
}

// Metas returns the metadata of every chunk written so far.
func (w *Writer) Metas() []storage.ChunkMeta { return w.metas }

// Close writes the footer and syncs the file. The file is unreadable until
// Close succeeds.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var footer []byte
	footer = encoding.AppendUvarint(footer, uint64(len(w.metas)))
	for _, m := range w.metas {
		footer = appendMeta(footer, m)
	}
	var tail []byte
	tail = binary.LittleEndian.AppendUint32(tail, crc32.ChecksumIEEE(footer))
	tail = binary.LittleEndian.AppendUint64(tail, uint64(len(footer)))
	tail = append(tail, footerMagic...)
	if _, err := w.w.Write(footer); err != nil {
		w.f.Close()
		return fmt.Errorf("tsfile: write footer: %w", err)
	}
	if _, err := w.w.Write(tail); err != nil {
		w.f.Close()
		return fmt.Errorf("tsfile: write footer tail: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("tsfile: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("tsfile: sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("tsfile: close: %w", err)
	}
	return nil
}

// Crash abandons the writer the way a process kill would: the bytes
// buffered so far are flushed to the file, no footer is written, and the
// unreadable partial file is left on disk. Crash-recovery tests use it to
// produce the exact on-disk states torn flushes leave behind; recovery then
// quarantines the file and replays the WAL.
func (w *Writer) Crash() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.w.Flush()
	return w.f.Close()
}

// Abort discards the writer without producing a readable file.
func (w *Writer) Abort() error {
	if w.closed {
		return nil
	}
	w.closed = true
	name := w.f.Name()
	w.f.Close()
	return os.Remove(name)
}

// appendMeta serializes one footer metadata record.
func appendMeta(dst []byte, m storage.ChunkMeta) []byte {
	dst = encoding.AppendUvarint(dst, uint64(len(m.SeriesID)))
	dst = append(dst, m.SeriesID...)
	dst = encoding.AppendUvarint(dst, uint64(m.Version))
	dst = append(dst, byte(m.Codec))
	dst = encoding.AppendUvarint(dst, uint64(m.Count))
	dst = encoding.AppendUvarint(dst, uint64(m.Offset))
	dst = encoding.AppendUvarint(dst, uint64(m.HeaderLen))
	dst = encoding.AppendUvarint(dst, uint64(m.TimesLen))
	dst = encoding.AppendUvarint(dst, uint64(m.ValuesLen))
	for _, p := range []series.Point{m.First, m.Last, m.Bottom, m.Top} {
		dst = encoding.AppendVarint(dst, p.T)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.V))
	}
	return dst
}

// parseMeta inverts appendMeta.
func parseMeta(b []byte) (storage.ChunkMeta, []byte, error) {
	var m storage.ChunkMeta
	idLen, b, err := encoding.Uvarint(b)
	if err != nil {
		return m, nil, err
	}
	if idLen > uint64(len(b)) {
		return m, nil, fmt.Errorf("%w: series id length %d", ErrCorrupt, idLen)
	}
	m.SeriesID = string(b[:idLen])
	b = b[idLen:]
	fields := []*int64{&m.Count, &m.Offset, &m.HeaderLen, &m.TimesLen, &m.ValuesLen}
	ver, b, err := encoding.Uvarint(b)
	if err != nil {
		return m, nil, err
	}
	m.Version = storage.Version(ver)
	if len(b) < 1 {
		return m, nil, fmt.Errorf("%w: missing codec", ErrCorrupt)
	}
	m.Codec = encoding.Codec(b[0])
	b = b[1:]
	if !m.Codec.Valid() {
		return m, nil, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, m.Codec)
	}
	for _, f := range fields {
		u, rest, err := encoding.Uvarint(b)
		if err != nil {
			return m, nil, err
		}
		*f = int64(u)
		b = rest
	}
	for _, p := range []*series.Point{&m.First, &m.Last, &m.Bottom, &m.Top} {
		t, rest, err := encoding.Varint(b)
		if err != nil {
			return m, nil, err
		}
		b = rest
		if len(b) < 8 {
			return m, nil, fmt.Errorf("%w: truncated point value", ErrCorrupt)
		}
		p.T = t
		p.V = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	return m, b, nil
}
