package m4ql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"m4lsm/internal/groupby"
	"m4lsm/internal/m4"
	"m4lsm/internal/reprops"
)

// Column is one projected output column of the M4 SQL form (Appendix A.1).
type Column uint8

// The eight M4 output columns.
const (
	ColFirstTime Column = iota
	ColFirstValue
	ColLastTime
	ColLastValue
	ColBottomTime
	ColBottomValue
	ColTopTime
	ColTopValue
	numColumns
)

var columnNames = [numColumns]string{
	"FirstTime", "FirstValue", "LastTime", "LastValue",
	"BottomTime", "BottomValue", "TopTime", "TopValue",
}

// String returns the canonical column name.
func (c Column) String() string {
	if int(c) < len(columnNames) {
		return columnNames[c]
	}
	return fmt.Sprintf("Column(%d)", int(c))
}

// AllColumns returns the eight columns in SQL order.
func AllColumns() []Column {
	cols := make([]Column, numColumns)
	for i := range cols {
		cols[i] = Column(i)
	}
	return cols
}

// Operator selects which physical operator executes the query.
type Operator uint8

// Available operators.
const (
	OpLSM Operator = iota // the paper's merge-free M4-LSM (default)
	OpUDF                 // the merge-everything baseline
)

func (o Operator) String() string {
	if o == OpUDF {
		return "UDF"
	}
	return "LSM"
}

// Statement is a parsed M4 query.
type Statement struct {
	Columns []Column // projected M4 columns, in order (M4 form)
	// SeriesID is the first explicit FROM series (empty for wildcard
	// statements); single-series callers keep reading it unchanged.
	SeriesID string
	// Series is the explicit FROM list. A statement is multi-series when
	// the list has more than one entry or Wildcard is set; execution then
	// reports per-series row blocks (Result.Series).
	Series []string
	// Wildcard marks a `FROM <prefix>*` statement: the series set is
	// expanded at execution time against the engine's sorted series ids,
	// keeping only those with the (possibly empty) WildcardPrefix.
	Wildcard       bool
	WildcardPrefix string
	Query          m4.Query
	Operator       Operator
	// Parallelism is the PARALLEL n clause: worker goroutines for the
	// operator. 0 (clause absent) lets the operator default to GOMAXPROCS;
	// PARALLEL 1 forces a sequential run.
	Parallelism int
	// Aggregates, when non-empty, selects the GroupBy form instead of the
	// M4 form: SELECT COUNT(v), AVG(v), ... per span.
	Aggregates []groupby.Func
	// Strict is the STRICT clause: fail the query on any unreadable chunk
	// instead of degrading to the readable ones with warnings.
	Strict bool
	// Trace is the TRACE clause: return a structured execution trace
	// (phases, per-task timings, I/O counters) with the result.
	Trace bool
	// Timeout is the TIMEOUT <ms> clause: the query's soft wall-clock
	// budget. When it expires the query degrades to a partial result with
	// warnings (or fails typed under STRICT); it overrides any server-wide
	// default. 0 means no statement-level timeout.
	Timeout time.Duration
	// Represent is the REPRESENT clause: execute an alternative
	// representation operator (minmax, lttb, minmaxlttb[:ratio], or an
	// explicit m4) and return point rows (time, value) instead of the
	// classic eight-column span table. Nil means the clause is absent and
	// the statement keeps its historical M4 span-table shape.
	Represent *reprops.Spec
	// Explain requests the physical plan and cost summary instead of rows.
	Explain bool
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("m4ql: expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !keywordIs(t, kw) {
		return fmt.Errorf("m4ql: expected %s, got %s", strings.ToUpper(kw), t)
	}
	return nil
}

// Parse parses one M4 query.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return Statement{}, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	if keywordIs(p.peek(), "explain") {
		p.next()
		stmt.Explain = true
	}
	if err := p.expectKeyword("select"); err != nil {
		return Statement{}, err
	}
	if stmt.Columns, stmt.Aggregates, err = p.parseProjection(); err != nil {
		return Statement{}, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return Statement{}, err
	}
	if err := p.parseSeriesList(&stmt); err != nil {
		return Statement{}, err
	}

	if err := p.expectKeyword("where"); err != nil {
		return Statement{}, err
	}
	if stmt.Query.Tqs, stmt.Query.Tqe, err = p.parseTimeRange(); err != nil {
		return Statement{}, err
	}

	if err := p.expectKeyword("group"); err != nil {
		return Statement{}, err
	}
	if err := p.expectKeyword("by"); err != nil {
		return Statement{}, err
	}
	if err := p.expectKeyword("spans"); err != nil {
		return Statement{}, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return Statement{}, err
	}
	wTok, err := p.expect(tokNumber, "span count")
	if err != nil {
		return Statement{}, err
	}
	w, err := strconv.Atoi(wTok.text)
	if err != nil {
		return Statement{}, fmt.Errorf("m4ql: bad span count %q: %v", wTok.text, err)
	}
	stmt.Query.W = w
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return Statement{}, err
	}

	// Trailing clauses: USING <op>, REPRESENT <spec>, PARALLEL <n>,
	// TIMEOUT <ms>, STRICT and TRACE, each at most once, in any order.
	var haveUsing, haveParallel, haveTimeout bool
	for {
		switch {
		case keywordIs(p.peek(), "represent"):
			if stmt.Represent != nil {
				return Statement{}, fmt.Errorf("m4ql: duplicate REPRESENT clause")
			}
			p.next()
			t := p.next()
			if t.kind != tokIdent {
				return Statement{}, fmt.Errorf("m4ql: expected representation name after REPRESENT, got %s", t)
			}
			text := t.text
			if p.peek().kind == tokColon {
				p.next()
				nTok, err := p.expect(tokNumber, "preselection ratio")
				if err != nil {
					return Statement{}, err
				}
				text += ":" + nTok.text
			}
			spec, err := reprops.ParseSpec(text)
			if err != nil {
				return Statement{}, fmt.Errorf("m4ql: %w", err)
			}
			stmt.Represent = &spec
			continue
		case keywordIs(p.peek(), "strict"):
			if stmt.Strict {
				return Statement{}, fmt.Errorf("m4ql: duplicate STRICT clause")
			}
			stmt.Strict = true
			p.next()
			continue
		case keywordIs(p.peek(), "trace"):
			if stmt.Trace {
				return Statement{}, fmt.Errorf("m4ql: duplicate TRACE clause")
			}
			stmt.Trace = true
			p.next()
			continue
		case keywordIs(p.peek(), "using"):
			if haveUsing {
				return Statement{}, fmt.Errorf("m4ql: duplicate USING clause")
			}
			haveUsing = true
			p.next()
			t := p.next()
			switch {
			case keywordIs(t, "lsm"):
				stmt.Operator = OpLSM
			case keywordIs(t, "udf"):
				stmt.Operator = OpUDF
			default:
				return Statement{}, fmt.Errorf("m4ql: unknown operator %s (want LSM or UDF)", t)
			}
			continue
		case keywordIs(p.peek(), "parallel"):
			if haveParallel {
				return Statement{}, fmt.Errorf("m4ql: duplicate PARALLEL clause")
			}
			haveParallel = true
			p.next()
			nTok, err := p.expect(tokNumber, "parallelism")
			if err != nil {
				return Statement{}, err
			}
			n, err := strconv.Atoi(nTok.text)
			if err != nil || n < 1 {
				return Statement{}, fmt.Errorf("m4ql: PARALLEL wants a positive worker count, got %q", nTok.text)
			}
			stmt.Parallelism = n
			continue
		case keywordIs(p.peek(), "timeout"):
			if haveTimeout {
				return Statement{}, fmt.Errorf("m4ql: duplicate TIMEOUT clause")
			}
			haveTimeout = true
			p.next()
			msTok, err := p.expect(tokNumber, "timeout milliseconds")
			if err != nil {
				return Statement{}, err
			}
			ms, err := strconv.ParseInt(msTok.text, 10, 64)
			if err != nil || ms < 1 {
				return Statement{}, fmt.Errorf("m4ql: TIMEOUT wants positive milliseconds, got %q", msTok.text)
			}
			stmt.Timeout = time.Duration(ms) * time.Millisecond
			continue
		}
		break
	}
	if t := p.next(); t.kind != tokEOF {
		return Statement{}, fmt.Errorf("m4ql: trailing input at %s", t)
	}
	if stmt.Represent != nil && len(stmt.Aggregates) > 0 {
		return Statement{}, fmt.Errorf("m4ql: REPRESENT returns representation points and cannot be combined with aggregate functions")
	}
	if err := stmt.Query.Validate(); err != nil {
		return Statement{}, err
	}
	return stmt, nil
}

// parseSeriesList handles the FROM clause: a single series, a comma list
// (`FROM s1, s2`), or a prefix wildcard (`FROM root.*`, or bare `FROM *`
// for every series). The lexer folds dots into identifiers, so `root.*`
// arrives as the ident "root." followed by a star token.
func (p *parser) parseSeriesList(stmt *Statement) error {
	t := p.next()
	switch {
	case t.kind == tokStar:
		stmt.Wildcard = true
	case t.kind == tokIdent && strings.HasSuffix(t.text, ".") && p.peek().kind == tokStar:
		p.next()
		stmt.Wildcard = true
		stmt.WildcardPrefix = t.text
	case t.kind == tokIdent || t.kind == tokString:
		stmt.Series = append(stmt.Series, t.text)
	default:
		return fmt.Errorf("m4ql: expected series id after FROM, got %s", t)
	}
	if stmt.Wildcard {
		if p.peek().kind == tokComma {
			return fmt.Errorf("m4ql: a FROM wildcard cannot be combined with other series")
		}
		return nil
	}
	for p.peek().kind == tokComma {
		p.next()
		t := p.next()
		if t.kind != tokIdent && t.kind != tokString {
			return fmt.Errorf("m4ql: expected series id after comma, got %s", t)
		}
		stmt.Series = append(stmt.Series, t.text)
	}
	seen := make(map[string]bool, len(stmt.Series))
	for _, id := range stmt.Series {
		if seen[id] {
			return fmt.Errorf("m4ql: duplicate series %q in FROM", id)
		}
		seen[id] = true
	}
	stmt.SeriesID = stmt.Series[0]
	return nil
}

// Multi reports whether the statement queries more than one series: an
// explicit FROM list or a wildcard (multi even when it expands to one
// match, so the result shape is decided by the statement, not the data).
func (s *Statement) Multi() bool {
	return s.Wildcard || len(s.Series) > 1
}

// parseProjection handles three projection families: `M4(*)`, a list of
// the eight M4 column functions (FirstTime(v), ...), or a list of GroupBy
// aggregate functions (COUNT(v), AVG(v), ...). The two lists may not mix:
// M4 columns are points of the representation, aggregates are scalars.
func (p *parser) parseProjection() ([]Column, []groupby.Func, error) {
	if keywordIs(p.peek(), "m4") {
		p.next()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokStar, "*"); err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, nil, err
		}
		return AllColumns(), nil, nil
	}
	var cols []Column
	var aggs []groupby.Func
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, nil, fmt.Errorf("m4ql: expected column function, got %s", t)
		}
		col, isCol := columnByName(t.text)
		agg, isAgg := groupby.ByName(t.text)
		if !isCol && !isAgg {
			return nil, nil, fmt.Errorf("m4ql: unknown function %q", t.text)
		}
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, nil, err
		}
		arg := p.next()
		if arg.kind != tokIdent && arg.kind != tokString && arg.kind != tokStar {
			return nil, nil, fmt.Errorf("m4ql: expected column argument, got %s", arg)
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, nil, err
		}
		if isCol {
			cols = append(cols, col)
		} else {
			aggs = append(aggs, agg)
		}
		if len(cols) > 0 && len(aggs) > 0 {
			return nil, nil, fmt.Errorf("m4ql: cannot mix M4 columns and aggregate functions")
		}
		if p.peek().kind != tokComma {
			return cols, aggs, nil
		}
		p.next()
	}
}

func columnByName(name string) (Column, bool) {
	for i, n := range columnNames {
		if strings.EqualFold(n, name) {
			return Column(i), true
		}
	}
	return 0, false
}

// parseTimeRange handles `time >= a AND time < b` (in either order).
func (p *parser) parseTimeRange() (tqs, tqe int64, err error) {
	var haveGE, haveLT bool
	for i := 0; i < 2; i++ {
		if err := p.expectKeyword("time"); err != nil {
			return 0, 0, err
		}
		op := p.next()
		num, err := p.expect(tokNumber, "timestamp")
		if err != nil {
			return 0, 0, err
		}
		v, err := strconv.ParseInt(num.text, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("m4ql: bad timestamp %q: %v", num.text, err)
		}
		switch op.kind {
		case tokGE:
			if haveGE {
				return 0, 0, fmt.Errorf("m4ql: duplicate time >= condition")
			}
			tqs, haveGE = v, true
		case tokLT:
			if haveLT {
				return 0, 0, fmt.Errorf("m4ql: duplicate time < condition")
			}
			tqe, haveLT = v, true
		default:
			return 0, 0, fmt.Errorf("m4ql: expected >= or <, got %s", op)
		}
		if i == 0 {
			if err := p.expectKeyword("and"); err != nil {
				return 0, 0, err
			}
		}
	}
	return tqs, tqe, nil
}
