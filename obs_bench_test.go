// Observability-overhead benchmarks (DESIGN.md §9). The instrumentation
// contract is that a query with no registry and no armed trace pays only a
// couple of nil checks — BenchmarkM4LSMObs/off must stay within ~2% of the
// pre-instrumentation baseline, and the numbers land in BENCH_obs.json.
package m4lsm

import (
	"context"
	"testing"

	"m4lsm/internal/encoding"
	"m4lsm/internal/m4"
	intm4lsm "m4lsm/internal/m4lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/workload"
)

// BenchmarkM4LSMObs runs the parallel-sweep state (w=1000, overlap and
// deletes) in three modes: instrumentation off, metrics registry only, and
// metrics plus a per-query trace.
func BenchmarkM4LSMObs(b *testing.B) {
	nChunks := benchPoints / benchChunkSize
	db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.3,
		workload.DeleteOptions{Count: nChunks / 5, RangeMillis: 60_000, Seed: 7},
		encoding.CodecGorilla)
	q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 1000}

	run := func(b *testing.B, ctx context.Context, opts intm4lsm.Options) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap, err := db.engine.Snapshot(db.id, q.Range())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := intm4lsm.ComputeContext(ctx, snap, q, opts); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("off", func(b *testing.B) {
		run(b, context.Background(), intm4lsm.Options{})
	})
	b.Run("metrics", func(b *testing.B) {
		run(b, context.Background(), intm4lsm.Options{Metrics: obs.NewRegistry()})
	})
	b.Run("metrics+trace", func(b *testing.B) {
		reg := obs.NewRegistry()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, tr := obs.WithTrace(context.Background())
			snap, err := db.engine.Snapshot(db.id, q.Range())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := intm4lsm.ComputeContext(ctx, snap, q, intm4lsm.Options{Metrics: reg}); err != nil {
				b.Fatal(err)
			}
			if snap := tr.Finish(); len(snap.Tasks) == 0 {
				b.Fatal("trace recorded no tasks")
			}
		}
	})
}
