// Package server exposes the database over HTTP: m4ql queries as JSON, a
// PNG line-chart renderer backed by the M4 operator (what a dashboard
// would call), and introspection endpoints — health, metrics (Prometheus
// text and JSON), and a slow-query log. cmd/m4server wires it to a
// database directory.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"m4lsm/internal/buildinfo"
	"m4lsm/internal/govern"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4ql"
	"m4lsm/internal/obs"
	"m4lsm/internal/obs/history"
	"m4lsm/internal/reprops"
	"m4lsm/internal/storage"
	"m4lsm/internal/viz"
)

// Config tunes the handler's observability plumbing; the zero value is
// production-reasonable.
type Config struct {
	// Logger receives request and error logs; nil uses slog.Default().
	Logger *slog.Logger
	// SlowQueryThreshold is the minimum /query latency recorded in the
	// slow-query log (default 100ms; negative records every query).
	SlowQueryThreshold time.Duration
	// SlowLogCapacity bounds the slow-query ring buffer (default 128).
	SlowLogCapacity int

	// QuerySlots bounds concurrently executing query-class requests
	// (/query and /render; health and metrics endpoints are never gated).
	// 0 disables admission control.
	QuerySlots int
	// QueryQueueDepth is how many query-class requests may wait for a slot
	// beyond the ones running; anything past that is shed immediately with
	// 429 and a Retry-After header.
	QueryQueueDepth int
	// QueryQueueWait bounds how long a queued request waits for a slot
	// before being shed (default 1s; negative sheds immediately when no
	// slot is free).
	QueryQueueWait time.Duration

	// WriteSlots / WriteQueueDepth / WriteQueueWait are the same admission
	// knobs for the /write ingestion endpoint, on a gate of its own so a
	// write flood cannot starve queries of admission (and vice versa).
	// WriteSlots 0 disables write admission control.
	WriteSlots      int
	WriteQueueDepth int
	WriteQueueWait  time.Duration

	// QueryTimeout is the default soft wall-clock budget per query-class
	// request; a statement-level TIMEOUT clause overrides it. When the
	// budget expires the query degrades to a partial result with warnings
	// (or fails with 503 under STRICT). 0 means no default.
	QueryTimeout time.Duration
	// MaxChunksPerQuery / MaxPointsPerQuery are default per-query resource
	// caps (physical chunk loads / decoded points); 0 means unlimited.
	MaxChunksPerQuery int64
	MaxPointsPerQuery int64

	// MaxBodyBytes bounds request bodies (default 1 MiB). Oversized or
	// malformed bodies answer 400, never a 500.
	MaxBodyBytes int64

	// SelfMetricsInterval enables the self-observability sampler: every
	// interval the metrics registry is walked and appended as root.sys.*
	// series into the engine itself (queryable via m4ql, rendered by
	// /dashboard). 0 disables sampling; a negative interval builds the
	// sampler without starting it, for tests that drive SampleOnce with a
	// controlled clock.
	SelfMetricsInterval time.Duration

	// EventLogPath, when set, appends one JSONL wide event per /query and
	// /render request to this file. The in-memory tail behind /debug/events
	// is kept either way.
	EventLogPath string
	// EventLogBuffer is the bounded async event channel capacity (default
	// 256); a full buffer drops events and counts them, never blocking the
	// query path.
	EventLogBuffer int
}

// Handler serves the HTTP API for one engine.
type Handler struct {
	engine  *lsm.Engine
	mux     *http.ServeMux
	reg     *obs.Registry
	slowLog *obs.SlowLog
	log     *slog.Logger
	start   time.Time

	gate      *govern.Gate  // query-class admission; nil: off
	writeGate *govern.Gate  // /write admission; nil: off
	limits    govern.Limits // default per-query budget (zero: unbudgeted)
	maxBody   int64

	events  *obs.EventLog    // wide-event query log (always on)
	sampler *history.Sampler // nil: self-metrics off

	renderPartial *obs.Counter
}

// New builds the HTTP handler with default observability settings.
func New(e *lsm.Engine) *Handler { return NewWith(e, Config{}) }

// NewWith builds the HTTP handler. The metrics registry is the engine's
// (so /metrics exposes engine, cache and operator series next to the HTTP
// ones); an engine opened without one gets a handler-local registry, which
// then carries only HTTP and operator metrics.
func NewWith(e *lsm.Engine, cfg Config) *Handler {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	threshold := cfg.SlowQueryThreshold
	if threshold == 0 {
		threshold = 100 * time.Millisecond
	} else if threshold < 0 {
		threshold = 0
	}
	reg := e.Metrics()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	wait := cfg.QueryQueueWait
	if wait == 0 {
		wait = time.Second
	} else if wait < 0 {
		wait = 0
	}
	writeWait := cfg.WriteQueueWait
	if writeWait == 0 {
		writeWait = time.Second
	} else if writeWait < 0 {
		writeWait = 0
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	h := &Handler{
		engine:        e,
		mux:           http.NewServeMux(),
		reg:           reg,
		slowLog:       obs.NewSlowLog(threshold, cfg.SlowLogCapacity),
		log:           logger,
		start:         time.Now(),
		gate:          govern.NewGate(cfg.QuerySlots, cfg.QueryQueueDepth, wait),
		writeGate:     govern.NewGate(cfg.WriteSlots, cfg.WriteQueueDepth, writeWait),
		limits:        govern.Limits{MaxChunks: cfg.MaxChunksPerQuery, MaxPoints: cfg.MaxPointsPerQuery, Timeout: cfg.QueryTimeout},
		maxBody:       maxBody,
		renderPartial: reg.Counter("render_partial_total"),
	}
	reg.CounterFunc("http_shed_total", func() float64 { return float64(h.gate.Shed()) })
	reg.GaugeFunc("http_query_inflight", func() float64 { return float64(h.gate.InFlight()) })
	reg.GaugeFunc("http_query_waiting", func() float64 { return float64(h.gate.Waiting()) })
	reg.CounterFunc("http_write_shed_total", func() float64 { return float64(h.writeGate.Shed()) })
	reg.GaugeFunc("http_write_inflight", func() float64 { return float64(h.writeGate.InFlight()) })
	reg.GaugeFunc("http_write_waiting", func() float64 { return float64(h.writeGate.Waiting()) })
	buildinfo.Register(reg)

	events, err := obs.NewEventLog(cfg.EventLogPath, cfg.EventLogBuffer, cfg.EventLogBuffer, logger)
	if err != nil {
		// The event file is telemetry, not correctness: a bad path degrades
		// to the in-memory tail instead of refusing to serve.
		logger.Warn("event log file unavailable, keeping events in memory only",
			"path", cfg.EventLogPath, "err", err)
		events, _ = obs.NewEventLog("", cfg.EventLogBuffer, cfg.EventLogBuffer, logger)
	}
	h.events = events
	reg.CounterFunc("events_recorded_total", func() float64 { return float64(h.events.Recorded()) })
	reg.CounterFunc("events_written_total", func() float64 { return float64(h.events.Written()) })
	reg.CounterFunc("events_dropped_total", func() float64 { return float64(h.events.Dropped()) })
	reg.CounterFunc("events_write_errors_total", func() float64 { return float64(h.events.WriteErrors()) })

	if cfg.SelfMetricsInterval != 0 {
		h.sampler = history.New(history.Config{
			Registry: reg,
			Sink:     e,
			Interval: cfg.SelfMetricsInterval,
			Logger:   logger,
		})
		if cfg.SelfMetricsInterval > 0 {
			h.sampler.Start()
		}
	}

	h.handle("/", h.ui)
	h.handle("/healthz", h.health)
	h.handle("/series", h.series)
	h.handle("/query", h.gated(h.query))
	h.handle("/render", h.gated(h.render))
	h.handle("/write", h.admitted(h.writeGate, h.write))
	h.handle("/dashboard", h.dashboard)
	h.handle("/metrics", h.metrics)
	h.handle("/varz", h.varz)
	h.handle("/debug/slowlog", h.slowlog)
	h.handle("/debug/events", h.debugEvents)
	h.handle("/admin/backup", h.adminBackup)
	h.handle("/admin/scrub", h.adminScrub)
	return h
}

// Close stops the handler's background machinery: the self-metrics sampler
// (if any) and the wide-event writer, draining buffered events to the log
// file. The engine is not closed — the caller owns it. Idempotent.
func (h *Handler) Close() error {
	if h.sampler != nil {
		h.sampler.Stop()
	}
	return h.events.Close()
}

// Sampler returns the self-metrics sampler (nil when disabled); tests and
// the exper sweep drive SampleOnce directly through it.
func (h *Handler) Sampler() *history.Sampler { return h.sampler }

// Events returns the wide-event log.
func (h *Handler) Events() *obs.EventLog { return h.events }

// gated wraps a query-class endpoint with admission control and the default
// per-query budget. Introspection endpoints (health, metrics, slowlog) stay
// ungated so operators can always see an overloaded server.
func (h *Handler) gated(fn http.HandlerFunc) http.HandlerFunc {
	return h.admitted(h.gate, func(w http.ResponseWriter, r *http.Request) {
		fn(w, r.WithContext(govern.WithLimits(r.Context(), h.limits)))
	})
}

// admitted wraps an endpoint with one gate's admission control (queries and
// writes each have their own, so neither class can starve the other). Shed
// requests answer 429 with Retry-After; a client that disconnects while
// queued gets 503 and is not counted as shed.
func (h *Handler) admitted(gate *govern.Gate, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := gate.Acquire(r.Context())
		if err != nil {
			// Rejected before the endpoint ran: the endpoint cannot emit its
			// wide event, so the gate does — every query-class request
			// produces exactly one event, shed or served.
			ev := obs.Event{When: time.Now(), Endpoint: r.URL.Path,
				RequestID: w.Header().Get("X-Request-ID"), Error: err.Error()}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				ev.Status = http.StatusServiceUnavailable
				h.events.Record(ev)
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
			retry := time.Second
			var oe *govern.OverloadError
			if errors.As(err, &oe) {
				retry = oe.RetryAfter
			}
			w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
			w.Header().Set("X-M4-Error", "overloaded")
			ev.Status = http.StatusTooManyRequests
			h.events.Record(ev)
			httpError(w, http.StatusTooManyRequests, err)
			return
		}
		defer release()
		fn(w, r)
	}
}

// mapQueryError classifies operator and engine errors that deserve a
// specific status code and X-M4-Error header; (0, "") leaves the decision
// to the endpoint (400 for /query parse errors, 500 for /render internals).
func mapQueryError(err error) (code int, kind string) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, govern.ErrBudgetExceeded):
		return http.StatusServiceUnavailable, "budget-exceeded"
	case errors.Is(err, govern.ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, lsm.ErrReadOnly):
		return http.StatusServiceUnavailable, "read-only"
	case errors.Is(err, lsm.ErrIngestBackpressure):
		return http.StatusTooManyRequests, "backpressure"
	}
	return 0, ""
}

// writeMappedError answers a classified error: the X-M4-Error header names
// the condition machine-readably, and retryable conditions (overload,
// read-only disk) carry a Retry-After hint.
func writeMappedError(w http.ResponseWriter, code int, kind string, err error) {
	w.Header().Set("X-M4-Error", kind)
	if kind == "overloaded" || kind == "read-only" || kind == "backpressure" {
		w.Header().Set("Retry-After", "1")
	}
	httpError(w, code, err)
}

// Metrics returns the registry the handler reports into.
func (h *Handler) Metrics() *obs.Registry { return h.reg }

// SlowLog returns the slow-query ring buffer.
func (h *Handler) SlowLog() *obs.SlowLog { return h.slowLog }

// statusWriter records the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// handle wraps an endpoint with the request middleware: a request id, a
// request-scoped logger on the context, per-endpoint request/latency
// metrics by status class, and debug-level access logging.
func (h *Handler) handle(pattern string, fn http.HandlerFunc) {
	h.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := obs.NewTraceID()
		logger := h.log.With("reqID", reqID, "endpoint", pattern)
		ctx := obs.WithLogger(r.Context(), logger)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		sw.Header().Set("X-Request-ID", reqID)
		fn(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		class := strconv.Itoa(sw.code/100) + "xx"
		h.reg.Counter("http_requests_total", "endpoint", pattern, "class", class).Inc()
		h.reg.Histogram("http_request_seconds", "endpoint", pattern).Observe(elapsed.Seconds())
		level := slog.LevelDebug
		if sw.code >= 500 {
			level = slog.LevelWarn
		}
		logger.Log(r.Context(), level, "request",
			"method", r.Method, "status", sw.code, "elapsed", elapsed)
	})
}

// ServeHTTP implements http.Handler. Handler panics are recovered: the
// connection answers 500 instead of taking the whole server down.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			h.log.Error("panic serving request",
				"method", r.Method, "path", r.URL.Path, "panic", rec, "stack", string(debug.Stack()))
			h.reg.Counter("http_panics_total").Inc()
			// Best effort: if the handler already wrote a status this
			// is a no-op on the status line.
			httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
	}()
	h.mux.ServeHTTP(w, r)
}

// writeJSON encodes v as the response body. Encode failures after the
// header is out cannot reach the client; they are logged instead of
// silently dropped.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Default().Warn("m4server: write response", "err", err)
	}
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	info := h.engine.Info()
	status := "ok"
	if info.BadFiles > 0 || info.QuarantinedChunks > 0 || info.WALQuarantinedSegments > 0 {
		status = "degraded"
	}
	if info.ReadOnly {
		// Disk-full degradation outranks quarantine noise: writes are
		// refused until the engine's space probe sees room again.
		status = "read-only"
	}
	version, revision := buildinfo.Info()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":            status,
		"files":             info.Files,
		"chunks":            info.Chunks,
		"badFiles":          info.BadFiles,
		"quarantinedChunks": info.QuarantinedChunks,
		"readOnly":          info.ReadOnly,
		"readOnlyReason":    info.ReadOnlyReason,
		"uptimeSeconds":     time.Since(h.start).Seconds(),
		"goVersion":         runtime.Version(),
		"goroutines":        runtime.NumGoroutine(),
		"version":           version,
		"revision":          revision,
		"wal": map[string]interface{}{
			"segments":            info.WALSegments,
			"bytes":               info.WALBytes,
			"retiredSegments":     info.WALRetiredSegments,
			"retiredBytes":        info.WALRetiredBytes,
			"tornTruncations":     info.WALTornTruncations,
			"quarantinedSegments": info.WALQuarantinedSegments,
			"warnings":            info.WALWarnings,
		},
		"scrub": map[string]interface{}{
			"runs":          info.ScrubRuns,
			"chunksScanned": info.ScrubChunksScanned,
			"quarantines":   info.ScrubQuarantines,
			"errors":        info.ScrubErrors,
		},
		"backup": map[string]interface{}{
			"runs":     info.BackupRuns,
			"lastUnix": info.LastBackupUnix,
		},
	})
}

// adminBackup takes an online backup into the directory named by the dir
// query parameter (a path on the server's filesystem). POST only: a backup
// writes outside the database directory.
func (h *Handler) adminBackup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	dir := r.URL.Query().Get("dir")
	if dir == "" {
		httpError(w, http.StatusBadRequest, errors.New("dir parameter required"))
		return
	}
	man, err := h.engine.Backup(dir)
	if err != nil {
		if code, kind := mapQueryError(err); code != 0 {
			writeMappedError(w, code, kind, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"dir":      dir,
		"manifest": man,
	})
}

// adminScrub runs one on-demand integrity pass. Optional query parameters:
// heal=true compacts quarantined chunks away, maxChunks bounds the pass's
// I/O (the next pass resumes at the cursor).
func (h *Handler) adminScrub(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var opts lsm.ScrubOptions
	q := r.URL.Query()
	opts.Heal = q.Get("heal") == "true"
	if v := q.Get("maxChunks"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad maxChunks %q", v))
			return
		}
		opts.Limits.MaxChunks = n
	}
	rep, err := h.engine.Scrub(opts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (h *Handler) series(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.engine.SeriesIDs())
}

// metrics renders the registry in the Prometheus text exposition format.
func (h *Handler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.reg.WritePrometheus(w); err != nil {
		slog.Default().Warn("m4server: write metrics", "err", err)
	}
}

// varz renders the registry as JSON for humans and scripts.
func (h *Handler) varz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.reg.Snapshot())
}

// slowlog renders the slow-query ring buffer, newest first. The header
// carries the estimated p50/p95/p99 of the /query latency histogram so an
// operator sees "slow relative to what" next to the outliers; entries link
// into /debug/events by request id.
func (h *Handler) slowlog(w http.ResponseWriter, _ *http.Request) {
	qs := h.reg.Histogram("http_request_seconds", "endpoint", "/query").Quantiles(0.50, 0.95, 0.99)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"thresholdNs": h.slowLog.Threshold().Nanoseconds(),
		"latencySeconds": map[string]float64{
			"p50": qs[0], "p95": qs[1], "p99": qs[2],
		},
		"entries": h.slowLog.Entries(),
	})
}

// debugEvents renders the in-memory tail of the wide-event query log,
// newest first, with the writer's accounting (a non-zero dropped count
// means the JSONL file has holes — the buffer is bounded by design).
func (h *Handler) debugEvents(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"recorded": h.events.Recorded(),
		"written":  h.events.Written(),
		"dropped":  h.events.Dropped(),
		"events":   h.events.Recent(),
	})
}

// query executes an m4ql statement. The statement comes from the "q" URL
// parameter (GET) or a JSON body {"query": "..."} (POST). ?trace=1 (or a
// TRACE clause in the statement) attaches a structured execution trace to
// the result. The request context cancels the query when the client
// disconnects; every execution is considered for the slow-query log.
// finishEvent stamps the response status and elapsed time onto a wide
// event and records it; deferred by the query-class endpoints so exactly
// one event leaves per request, whatever path the handler took.
func (h *Handler) finishEvent(w http.ResponseWriter, ev *obs.Event) {
	ev.ElapsedNs = time.Since(ev.When).Nanoseconds()
	if sw, ok := w.(*statusWriter); ok {
		ev.Status = sw.code
	}
	h.events.Record(*ev)
}

// eventStats copies a query's cost counters into its wide event.
func eventStats(ev *obs.Event, s storage.Stats) {
	ev.ChunksLoaded = s.ChunksLoaded
	ev.TimeBlocksLoaded = s.TimeBlocksLoaded
	ev.BytesRead = s.BytesRead
	ev.PointsDecoded = s.PointsDecoded
	ev.CacheHits = s.CacheHits
	ev.CacheMisses = s.CacheMisses
	ev.PyramidSpans = s.PyramidSpans
	ev.PyramidCells = s.PyramidCells
	ev.PyramidFallbackSpans = s.PyramidFallbackSpans
}

func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	ev := &obs.Event{When: time.Now(), Endpoint: "/query", RequestID: w.Header().Get("X-Request-ID")}
	defer h.finishEvent(w, ev)
	var q string
	switch r.Method {
	case http.MethodGet:
		q = r.URL.Query().Get("q")
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, h.maxBody)
		var body struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				httpError(w, http.StatusBadRequest, fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		q = body.Query
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return
	}
	if q == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	ev.Statement = q
	ctx := r.Context()
	if traceOn(r.URL.Query().Get("trace")) {
		ctx, _ = obs.WithTrace(ctx)
	}
	start := time.Now()
	res, err := m4ql.RunContext(ctx, h.engine, q)
	elapsed := time.Since(start)
	entry := obs.SlowEntry{
		When:      start,
		RequestID: w.Header().Get("X-Request-ID"),
		Query:     q,
		ElapsedNs: elapsed.Nanoseconds(),
	}
	if err != nil {
		entry.Error = err.Error()
		ev.Error = err.Error()
		if code, kind := mapQueryError(err); code != 0 {
			entry.Status = code
			h.slowLog.Record(entry)
			writeMappedError(w, code, kind, err)
			return
		}
		entry.Status = http.StatusBadRequest
		h.slowLog.Record(entry)
		httpError(w, http.StatusBadRequest, err)
		return
	}
	entry.Status = http.StatusOK
	entry.Partial = res.Partial
	h.slowLog.Record(entry)
	ev.Operator = res.Operator
	ev.Partial = res.Partial
	ev.Warnings = len(res.Warnings)
	eventStats(ev, res.Stats)
	if res.Trace != nil {
		ev.TraceID = res.Trace.ID
		ev.Phases = res.Trace.Phases
	}
	if res.Partial {
		obs.Logger(ctx).Warn("partial query result", "warnings", len(res.Warnings))
	}
	writeJSON(w, http.StatusOK, res)
}

// traceOn interprets the ?trace= parameter ("1", "true", ... arm tracing).
func traceOn(v string) bool {
	on, err := strconv.ParseBool(v)
	return err == nil && on
}

// expandSeriesParam turns the "series" URL parameter into concrete series
// ids: a comma-separated list passes through in order, and a trailing "*"
// expands as a prefix wildcard against the engine's sorted series ids (bare
// "*" matches everything). An empty expansion returns nil.
func (h *Handler) expandSeriesParam(param string) ([]string, error) {
	if strings.HasSuffix(param, "*") {
		prefix := strings.TrimSuffix(param, "*")
		if strings.Contains(prefix, ",") {
			return nil, fmt.Errorf("a series wildcard cannot be combined with a list")
		}
		var ids []string
		for _, id := range h.engine.SeriesIDs() {
			if strings.HasPrefix(id, prefix) {
				ids = append(ids, id)
			}
		}
		return ids, nil
	}
	var ids []string
	seen := map[string]bool{}
	for _, id := range strings.Split(param, ",") {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	return ids, nil
}

// render draws a two-color PNG line chart over a time range. Parameters:
// series (one id, a comma-separated list, or a prefix wildcard like
// "root.*" — multiple series overlay on one canvas with a shared
// viewport), tqs, tqe, w (pixel columns = M4 spans), h (pixel rows,
// default 400), repr (representation operator: m4 — the default —, minmax,
// lttb or minmaxlttb), and ratio (MinMaxLTTB preselection ratio, 2..64).
// When nothing matches the request answers 404. When the result is partial
// — unreadable chunks skipped at snapshot time, or the operator
// substituted FP for a representation point lost to a mid-query chunk
// failure — the image still renders, the response carries an X-M4-Partial
// header counting the warnings, and render_partial_total is incremented.
func (h *Handler) render(w http.ResponseWriter, r *http.Request) {
	ev := &obs.Event{When: time.Now(), Endpoint: "/render", RequestID: w.Header().Get("X-Request-ID")}
	defer h.finishEvent(w, ev)
	params := r.URL.Query()
	ev.Statement = "series=" + params.Get("series") + " tqs=" + params.Get("tqs") +
		" tqe=" + params.Get("tqe") + " w=" + params.Get("w") + " h=" + params.Get("h")
	if rp := params.Get("repr"); rp != "" {
		ev.Statement += " repr=" + rp
	}
	seriesParam := params.Get("series")
	if seriesParam == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing series parameter"))
		return
	}
	tqs, err1 := strconv.ParseInt(params.Get("tqs"), 10, 64)
	tqe, err2 := strconv.ParseInt(params.Get("tqe"), 10, 64)
	width, err3 := strconv.Atoi(params.Get("w"))
	if err1 != nil || err2 != nil || err3 != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("tqs, tqe and w must be integers"))
		return
	}
	height := 400
	if hs := params.Get("h"); hs != "" {
		var err error
		if height, err = strconv.Atoi(hs); err != nil || height <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad h parameter"))
			return
		}
	}
	specText := params.Get("repr")
	if specText == "" {
		specText = "m4"
	}
	if ratio := params.Get("ratio"); ratio != "" {
		if !strings.EqualFold(specText, "minmaxlttb") {
			httpError(w, http.StatusBadRequest, fmt.Errorf("ratio only applies to repr=minmaxlttb"))
			return
		}
		specText += ":" + ratio
	}
	spec, err := reprops.ParseSpec(specText)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q := m4.Query{Tqs: tqs, Tqe: tqe, W: width}
	if err := q.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ids, err := h.expandSeriesParam(seriesParam)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	for _, id := range ids {
		if !h.engine.HasSeries(id) {
			httpError(w, http.StatusNotFound, fmt.Errorf("series %q not found", id))
			return
		}
	}
	if len(ids) == 0 {
		httpError(w, http.StatusNotFound, fmt.Errorf("no series match %q", seriesParam))
		return
	}
	snaps := make([]*storage.Snapshot, len(ids))
	for i, id := range ids {
		snap, err := h.engine.Snapshot(id, q.Range())
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		snaps[i] = snap
	}
	reduced, err := m4lsm.ReduceMultiContext(r.Context(), snaps, q, spec, m4lsm.Options{
		Metrics: h.reg,
		Budget:  govern.NewBudget(govern.LimitsOf(r.Context())),
	})
	var cost storage.Stats
	for _, snap := range snaps {
		cost.Add(snap.Stats.Load())
	}
	if spec.Kind == reprops.KindM4 {
		ev.Operator = "lsm"
	} else {
		ev.Operator = spec.Kind.String()
	}
	eventStats(ev, cost)
	if err != nil {
		ev.Error = err.Error()
		if code, kind := mapQueryError(err); code != 0 {
			writeMappedError(w, code, kind, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	vp := viz.ViewportForAll(reduced, tqs, tqe)
	canvas := viz.NewCanvas(width, height)
	for _, s := range reduced {
		viz.RasterizeOnto(canvas, s, vp)
	}
	// Warnings collected after the compute cover both snapshot-time
	// quarantines and operator-level degradation (FP substitution).
	warnings := 0
	for _, snap := range snaps {
		warnings += snap.Warnings.Len()
	}
	if warnings > 0 {
		w.Header().Set("X-M4-Partial", strconv.Itoa(warnings))
		h.renderPartial.Inc()
		ev.Partial = true
		ev.Warnings = warnings
		obs.Logger(r.Context()).Warn("partial render", "series", seriesParam, "warnings", warnings)
	}
	w.Header().Set("Content-Type", "image/png")
	if err := canvas.WritePNG(w); err != nil {
		obs.Logger(r.Context()).Warn("write png", "err", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
