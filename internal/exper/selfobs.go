package exper

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/obs/history"
	"m4lsm/internal/series"
)

// selfObsBaseSizes is the unscaled dataset sweep for the self-observability
// overhead experiment.
var selfObsBaseSizes = []int{1 << 16, 1 << 18, 1 << 20}

// selfObsInterval is the sampling period during the "on" phase —
// deliberately much hotter than the production default of 1s, so any
// interference the sampler could cause is amplified, not hidden.
const selfObsInterval = 2 * time.Millisecond

// SelfObsMeasurement is one sweep point: M4 query latency over a user
// series with the self-metrics sampler stopped vs hammering, plus the
// sampler's own accounting for the run.
type SelfObsMeasurement struct {
	Points     int
	OffLatency time.Duration
	OnLatency  time.Duration

	// SamplerTicks and SamplerPoints are how many registry walks ran and
	// how many root.sys.* points they appended during the "on" phase.
	SamplerTicks  int64
	SamplerPoints int64

	// SysSeries is the root.sys.* series count after warmup;
	// SysSeriesFinal is the count after every tick. Equal values are the
	// bounded-cardinality invariant: sampling moves values, never mints
	// series.
	SysSeries      int
	SysSeriesFinal int

	// SysQueryRows is the row count of an M4 query answered from a
	// root.sys.* series — the history must be first-class queryable.
	SysQueryRows int
}

// Overhead returns sampler-on latency / sampler-off latency.
func (m SelfObsMeasurement) Overhead() float64 {
	if m.OffLatency <= 0 {
		return math.Inf(1)
	}
	return float64(m.OnLatency) / float64(m.OffLatency)
}

// RunSelfObs measures what dogfooding costs: the same fixed-w M4 query over
// a user series, first with the self-metrics sampler stopped and then with
// it sampling every 2ms into the same engine. It also checks the two
// structural invariants — the root.sys.* series set stops growing after the
// first tick, and the recorded history is answerable through the ordinary
// M4 query path.
func RunSelfObs(cfg Config) ([]SelfObsMeasurement, error) {
	cfg = cfg.withDefaults()
	var out []SelfObsMeasurement
	for _, base := range selfObsBaseSizes {
		n := pyramidSize(base, cfg.Scale)
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("selfobs-%d", n))
		if err != nil {
			return nil, err
		}
		m, err := runSelfObsSize(cfg, n, dir)
		cleanup()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func runSelfObsSize(cfg Config, n int, dir string) (SelfObsMeasurement, error) {
	m := SelfObsMeasurement{Points: n, OffLatency: math.MaxInt64, OnLatency: math.MaxInt64}
	const name = "selfobs.user"
	reg := obs.NewRegistry()
	e, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: cfg.ChunkSize, DisableWAL: true, Metrics: reg})
	if err != nil {
		return m, err
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	const batch = 4096
	buf := make([]series.Point, 0, batch)
	v := 0.0
	for t := 0; t < n; t++ {
		v += rng.Float64()*2 - 1
		buf = append(buf, series.Point{T: int64(t), V: v})
		if len(buf) == batch {
			if err := e.Write(name, buf...); err != nil {
				return m, err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := e.Write(name, buf...); err != nil {
			return m, err
		}
	}
	if err := e.Flush(); err != nil {
		return m, err
	}

	q := m4.Query{Tqs: 0, Tqe: int64(n), W: cfg.W}
	measure := func() (time.Duration, error) {
		snap, err := e.Snapshot(name, q.Range())
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := m4lsm.ComputeWithOptions(snap, q, m4lsm.Options{Parallelism: cfg.Parallelism}); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	// Off phase: sampler not running.
	for rep := 0; rep < cfg.Reps; rep++ {
		d, err := measure()
		if err != nil {
			return m, err
		}
		if d < m.OffLatency {
			m.OffLatency = d
		}
	}

	// Warm the sampler with two controlled ticks, then record the sys
	// series population — the cardinality baseline every later tick is held
	// to.
	sampler := history.New(history.Config{Registry: reg, Sink: e, Interval: selfObsInterval})
	base := time.Now()
	if _, err := sampler.SampleOnce(base); err != nil {
		return m, err
	}
	if _, err := sampler.SampleOnce(base.Add(selfObsInterval)); err != nil {
		return m, err
	}
	m.SysSeries = countSysSeries(e)

	// On phase: sampler hammering in the background while the same query
	// repeats.
	ticks0 := reg.Counter("selfmetrics_samples_total").Value()
	points0 := reg.Counter("selfmetrics_points_total").Value()
	sampler.Start()
	onReps := cfg.Reps * 3 // longer phase so several ticks land mid-query
	phaseStart := time.Now()
	for rep := 0; ; rep++ {
		// Keep querying past onReps until a few ticks have actually landed
		// (small datasets finish their reps in microseconds), bounded by
		// wall clock so a wedged sampler cannot hang the sweep.
		if rep >= onReps {
			ticked := reg.Counter("selfmetrics_samples_total").Value()-ticks0 >= 3
			if ticked || time.Since(phaseStart) > 2*time.Second {
				break
			}
		}
		d, err := measure()
		if err != nil {
			sampler.Stop()
			return m, err
		}
		if d < m.OnLatency {
			m.OnLatency = d
		}
	}
	sampler.Stop()
	m.SamplerTicks = reg.Counter("selfmetrics_samples_total").Value() - ticks0
	m.SamplerPoints = reg.Counter("selfmetrics_points_total").Value() - points0
	m.SysSeriesFinal = countSysSeries(e)
	if m.SysSeriesFinal != m.SysSeries {
		return m, fmt.Errorf("n=%d: sys series grew %d -> %d across ticks (unbounded cardinality)", n, m.SysSeries, m.SysSeriesFinal)
	}

	// The recorded history must answer through the ordinary M4 path.
	sysID := history.SeriesName("", "selfmetrics_samples_total", nil)
	sq := m4.Query{Tqs: base.UnixMilli(), Tqe: time.Now().UnixMilli() + 1, W: 10}
	snap, err := e.Snapshot(sysID, sq.Range())
	if err != nil {
		return m, err
	}
	rows, err := m4lsm.Compute(snap, sq)
	if err != nil {
		return m, err
	}
	for _, r := range rows {
		if !r.Empty {
			m.SysQueryRows++
		}
	}
	if m.SysQueryRows == 0 {
		return m, fmt.Errorf("n=%d: M4 over %s returned no rows", n, sysID)
	}
	return m, nil
}

// countSysSeries counts engine series under the system prefix.
func countSysSeries(e *lsm.Engine) int {
	n := 0
	for _, id := range e.SeriesIDs() {
		if strings.HasPrefix(id, history.DefaultPrefix) {
			n++
		}
	}
	return n
}

// SelfObsTitle names the sweep.
func SelfObsTitle() string {
	return fmt.Sprintf("Self-observability: sampler overhead at %s interval", selfObsInterval)
}

// WriteSelfObs renders the sweep as an aligned text table.
func WriteSelfObs(w io.Writer, title string, ms []SelfObsMeasurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%12s %14s %14s %9s %8s %10s %10s %8s\n",
		"points", "samplerOff", "samplerOn", "overhead", "ticks", "sysPoints", "sysSeries", "m4rows")
	for _, m := range ms {
		fmt.Fprintf(w, "%12d %14s %14s %8.2fx %8d %10d %10d %8d\n",
			m.Points, m.OffLatency.Round(time.Microsecond), m.OnLatency.Round(time.Microsecond),
			m.Overhead(), m.SamplerTicks, m.SamplerPoints, m.SysSeriesFinal, m.SysQueryRows)
	}
}
