package difftest

import (
	"testing"

	"m4lsm/internal/series"
)

// TestDifferential is the property test: randomized workloads against the
// engine and the in-memory oracle, every M4 query answered four ways
// (M4-LSM with and without the rollup pyramid, M4-UDF, reference scan)
// plus the batched multi-series path and a pixel-equivalence render, all
// required to agree. A failure prints the seed; reproduce one case with
// difftest.Run(seed, dir). Across the whole run the pyramid must have
// answered at least one span, or every pyramid comparison was vacuous.
func TestDifferential(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 200
	}
	var pyramidSpans int64
	for i := 0; i < n; i++ {
		seed := int64(i + 1)
		c, err := Generate(seed, t.TempDir())
		if err != nil {
			t.Fatalf("differential mismatch at seed %d (reproduce: difftest.Run(%d, dir)): %v", seed, seed, err)
		}
		err = c.Check()
		c.Close()
		if err != nil {
			t.Fatalf("differential mismatch at seed %d (reproduce: difftest.Run(%d, dir)): %v", seed, seed, err)
		}
		pyramidSpans += c.PyramidSpans
	}
	if pyramidSpans == 0 {
		t.Fatal("pyramid answered zero spans across the whole differential run; pyramid checks were vacuous")
	}
	t.Logf("pyramid answered %d spans across %d cases", pyramidSpans, n)
}

// TestOracleSemantics pins the oracle itself: latest write wins and deletes
// cover a closed range.
func TestOracleSemantics(t *testing.T) {
	o := Oracle{}
	o.write("s", series.Point{T: 5, V: 1})
	o.write("s", series.Point{T: 3, V: 2})
	o.write("s", series.Point{T: 5, V: 9}) // overwrite
	o.write("s", series.Point{T: 8, V: 4})
	o.delete("s", 8, 10)
	m := o.Merged("s")
	if len(m) != 2 || m[0].T != 3 || m[1].T != 5 || m[1].V != 9 {
		t.Fatalf("merged = %v", m)
	}
	if ids := o.SeriesIDs(); len(ids) != 1 || ids[0] != "s" {
		t.Fatalf("ids = %v", ids)
	}
}
