// Ingestion sweep: write throughput across concurrent writers × batch size
// × WAL durability. Batch size 1 is the baseline point-by-point Write path;
// larger batches go through Engine.WriteBatch (bounded per-shard queues,
// append workers, group-committed WAL records). Every cell ingests the
// identical deterministic point stream, so after each run the full-range M4
// answer is cross-checked span by span against the cell's point-by-point
// reference — a throughput number only counts if the batched path produced
// the same database.
//
// The headline assertion is the batched path's reason to exist: with
// SyncWAL on and 8 concurrent writers, WriteBatch must move at least 5x the
// points/s of point-by-point Write. Point-by-point pays one group commit
// per point (amortized only across the writers in flight); batches amortize
// the encode, the shard lock, and the fsync across the whole batch.
package exper

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"m4lsm/internal/difftest"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

// ingestWriters and ingestBatches define the sweep grid; batch 1 is the
// Write baseline each larger batch is compared against.
var (
	ingestWriters = []int{1, 4, 8}
	ingestBatches = []int{1, 64, 256}
)

// ingestSpeedupFloor is the in-sweep assertion: minimum batched-vs-point
// throughput ratio at ingestSpeedupWriters concurrent writers with SyncWAL.
const (
	ingestSpeedupFloor   = 5.0
	ingestSpeedupWriters = 8
)

// IngestMeasurement is one sweep cell: the best-of-Reps throughput of one
// (writers, batch, SyncWAL) combination over the deterministic stream.
type IngestMeasurement struct {
	Writers int
	Batch   int // points per WriteBatch call; 1 = point-by-point Write
	SyncWAL bool
	Points  int // total points ingested (writers × per-writer stream)

	Elapsed      time.Duration // fastest rep
	PointsPerSec float64
	// WAL group-commit counters of the fastest rep: how many appends the
	// leader batched per fsync'd group.
	GroupCommits int64
	GroupRecords int64
	// Speedup vs the same (writers, SyncWAL) cell at batch 1; 1.0 for the
	// baseline itself.
	Speedup float64
}

// ingestPerWriter sizes the per-writer stream: durable cells pay a real
// fsync cadence, so they run a quarter of the async stream. Scale is
// relative to the default bench scale (0.01).
func ingestPerWriter(cfg Config, syncWAL bool) int {
	base := 16384
	if syncWAL {
		base = 4096
	}
	n := int(float64(base) * cfg.Scale * 100)
	if n < 256 {
		n = 256
	}
	return n
}

// RunIngest measures the ingestion grid. Within each (writers, SyncWAL)
// group the batch-1 cell runs first and its M4 answer becomes the reference
// every batched cell must reproduce exactly; the sweep fails on the first
// divergence, on any ingest error, or if the durable 8-writer batched cells
// miss the speedup floor. It finishes with seeded twin-engine differential
// cases (difftest.RunIngestDiff) covering deletes, reopens and WAL replay
// of batch-encoded records.
func RunIngest(cfg Config) ([]IngestMeasurement, error) {
	cfg = cfg.withDefaults()
	var out []IngestMeasurement
	for _, writers := range ingestWriters {
		for _, syncWAL := range []bool{false, true} {
			perWriter := ingestPerWriter(cfg, syncWAL)
			var ref [][]m4.Aggregate
			var baseline float64
			for _, batch := range ingestBatches {
				m := IngestMeasurement{
					Writers: writers, Batch: batch, SyncWAL: syncWAL,
					Points:  writers * perWriter,
					Elapsed: time.Duration(1<<62 - 1),
				}
				var aggs [][]m4.Aggregate
				for rep := 0; rep < cfg.Reps; rep++ {
					dir, cleanup, err := tempDir(cfg, fmt.Sprintf("ingest-%d-%d-%v-%d", writers, batch, syncWAL, rep))
					if err != nil {
						return nil, err
					}
					elapsed, groups, records, a, err := runIngestCell(dir, writers, perWriter, batch, syncWAL)
					cleanup()
					if err != nil {
						return nil, fmt.Errorf("writers=%d batch=%d sync=%v: %w", writers, batch, syncWAL, err)
					}
					if elapsed < m.Elapsed {
						m.Elapsed, m.GroupCommits, m.GroupRecords = elapsed, groups, records
					}
					aggs = a
				}
				m.PointsPerSec = float64(m.Points) / m.Elapsed.Seconds()
				if batch == 1 {
					ref, baseline = aggs, m.PointsPerSec
					m.Speedup = 1
				} else {
					m.Speedup = m.PointsPerSec / baseline
					if err := ingestCrossCheck(ref, aggs); err != nil {
						return nil, fmt.Errorf("writers=%d batch=%d sync=%v: %w", writers, batch, syncWAL, err)
					}
				}
				out = append(out, m)
			}
		}
	}
	for _, m := range out {
		if m.SyncWAL && m.Writers >= ingestSpeedupWriters && m.Batch == ingestBatches[len(ingestBatches)-1] &&
			m.Speedup < ingestSpeedupFloor {
			return nil, fmt.Errorf("writers=%d batch=%d SyncWAL: batched speedup %.1fx below the %.0fx floor",
				m.Writers, m.Batch, m.Speedup, ingestSpeedupFloor)
		}
	}
	// Twin-engine differential tail: batched ≡ point-by-point under deletes,
	// flushes and close-and-reopen, three seeds.
	for seed := int64(1); seed <= 3; seed++ {
		dirA, cleanupA, err := tempDir(cfg, fmt.Sprintf("ingest-diff-a-%d", seed))
		if err != nil {
			return nil, err
		}
		dirB, cleanupB, err := tempDir(cfg, fmt.Sprintf("ingest-diff-b-%d", seed))
		if err != nil {
			cleanupA()
			return nil, err
		}
		err = difftest.RunIngestDiff(seed, dirA, dirB)
		cleanupA()
		cleanupB()
		if err != nil {
			return nil, fmt.Errorf("ingest differential: %w", err)
		}
	}
	return out, nil
}

// runIngestCell ingests the deterministic stream into a fresh engine with
// the given concurrency and batching, returning the wall time of the
// ingest, the WAL group-commit counters, and the per-writer full-range M4
// answers for the cross-check.
func runIngestCell(dir string, writers, perWriter, batch int, syncWAL bool) (time.Duration, int64, int64, [][]m4.Aggregate, error) {
	reg := obs.NewRegistry()
	e, err := lsm.Open(lsm.Options{
		Dir:       dir,
		NumShards: 4,
		SyncWAL:   syncWAL,
		Metrics:   reg,
	})
	if err != nil {
		return 0, 0, 0, nil, err
	}
	defer e.Close()

	errs := make([]error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = ingestStream(e, w, perWriter, batch)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, 0, 0, nil, err
		}
	}

	snap := reg.Snapshot()
	groups, _ := snap["lsm_wal_group_commits_total"].(float64)
	records, _ := snap["lsm_wal_group_records_total"].(float64)

	q := m4.Query{Tqs: 0, Tqe: int64(perWriter), W: 32}
	aggs := make([][]m4.Aggregate, writers)
	for w := 0; w < writers; w++ {
		s, err := e.Snapshot(ingestSeriesID(w), q.Range())
		if err != nil {
			return 0, 0, 0, nil, err
		}
		a, err := m4lsm.Compute(s, q)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		aggs[w] = a
	}
	return elapsed, int64(groups), int64(records), aggs, nil
}

func ingestSeriesID(w int) string { return fmt.Sprintf("ingest.w%d", w) }

// ingestStream writes writer w's deterministic points: batch 1 goes point
// by point through Write, larger batches through WriteBatch with a retry
// loop on the typed backpressure error — exactly what a client is expected
// to do.
func ingestStream(e *lsm.Engine, w, perWriter, batch int) error {
	id := ingestSeriesID(w)
	// Injective value per (writer, t) so ties never make the M4 cross-check
	// ambiguous.
	value := func(t int) float64 { return float64((t*7919)%4096) + float64(w)/16 }
	if batch == 1 {
		for t := 0; t < perWriter; t++ {
			if err := e.Write(id, series.Point{T: int64(t), V: value(t)}); err != nil {
				return err
			}
		}
		return nil
	}
	pts := make([]series.Point, 0, batch)
	for t := 0; t < perWriter; t++ {
		pts = append(pts, series.Point{T: int64(t), V: value(t)})
		if len(pts) == batch || t == perWriter-1 {
			for {
				err := e.WriteBatch(lsm.BatchEntry{SeriesID: id, Points: pts})
				if errors.Is(err, lsm.ErrIngestBackpressure) {
					continue
				}
				if err != nil {
					return err
				}
				break
			}
			pts = pts[:0]
		}
	}
	return nil
}

// ingestCrossCheck requires the batched cell's answers to equal the batch-1
// reference span by span.
func ingestCrossCheck(ref, got [][]m4.Aggregate) error {
	if len(ref) != len(got) {
		return fmt.Errorf("cross-check: %d series vs %d", len(got), len(ref))
	}
	for w := range ref {
		if len(ref[w]) != len(got[w]) {
			return fmt.Errorf("cross-check: writer %d span counts %d vs %d", w, len(got[w]), len(ref[w]))
		}
		for i := range ref[w] {
			if !m4.Equivalent(got[w][i], ref[w][i]) {
				return fmt.Errorf("cross-check: writer %d span %d: batched %v != point-by-point %v",
					w, i, got[w][i], ref[w][i])
			}
		}
	}
	return nil
}

// IngestTitle names the sweep.
func IngestTitle() string {
	return "Ingestion: WriteBatch vs Write across writers × batch × SyncWAL"
}

// WriteIngest renders the sweep as an aligned text table, one block per
// durability mode.
func WriteIngest(w io.Writer, title string, ms []IngestMeasurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	for _, syncWAL := range []bool{false, true} {
		fmt.Fprintf(w, "-- SyncWAL=%v --\n", syncWAL)
		fmt.Fprintf(w, "%8s %6s %9s %12s %12s %8s %9s %10s\n",
			"writers", "batch", "points", "elapsed", "points/s", "speedup", "walGroups", "walRecords")
		for _, m := range ms {
			if m.SyncWAL != syncWAL {
				continue
			}
			fmt.Fprintf(w, "%8d %6d %9d %12s %12.0f %7.1fx %9d %10d\n",
				m.Writers, m.Batch, m.Points, m.Elapsed.Round(time.Microsecond),
				m.PointsPerSec, m.Speedup, m.GroupCommits, m.GroupRecords)
		}
	}
}
