package lsm

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/tsfile"
)

// The WAL decoders parse bytes recovered from disk after a crash; arbitrary
// input must never panic, and anything they accept must survive a re-encode
// round trip (no two payloads decoding to states that re-encode
// differently from what was stored).

func FuzzDecodeInsert(f *testing.F) {
	f.Add(encodeInsert("s1", []series.Point{{T: 10, V: 1.5}, {T: -3, V: 0}})[1:])
	f.Add(encodeInsert("", nil)[1:])
	f.Add(encodeInsert("unicode-séries", []series.Point{{T: math.MaxInt64, V: math.Inf(1)}})[1:])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		id, pts, err := decodeInsert(b)
		if err != nil {
			return
		}
		enc := encodeInsert(id, pts)
		id2, pts2, err := decodeInsert(enc[1:])
		if err != nil {
			t.Fatalf("re-encode of accepted payload rejected: %v", err)
		}
		if id2 != id || len(pts2) != len(pts) {
			t.Fatalf("round trip changed payload: (%q,%d pts) -> (%q,%d pts)", id, len(pts), id2, len(pts2))
		}
		for i := range pts {
			if pts[i].T != pts2[i].T || math.Float64bits(pts[i].V) != math.Float64bits(pts2[i].V) {
				t.Fatalf("point %d changed: %v -> %v", i, pts[i], pts2[i])
			}
		}
	})
}

func FuzzDecodeWALDelete(f *testing.F) {
	f.Add(encodeDelete(storage.Delete{SeriesID: "s1", Version: 7, Start: -10, End: 10})[1:])
	f.Add(encodeDelete(storage.Delete{Version: math.MaxUint64 >> 1})[1:])
	f.Add([]byte{})
	f.Add([]byte{0x01, 's', 0x80})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := decodeWALDelete(b)
		if err != nil {
			return
		}
		d2, err := decodeWALDelete(encodeDelete(d)[1:])
		if err != nil {
			t.Fatalf("re-encode of accepted payload rejected: %v", err)
		}
		if d2 != d {
			t.Fatalf("round trip changed delete: %v -> %v", d, d2)
		}
	})
}

// FuzzBackupManifest: the manifest decoder gates whether a backup set is
// trusted at all; arbitrary bytes must never panic, every rejection must
// wrap tsfile.ErrCorrupt, and an accepted manifest must survive an
// encode/decode round trip.
func FuzzBackupManifest(f *testing.F) {
	good, _ := EncodeBackupManifest(BackupManifest{
		CreatedUnix: 1700000000,
		NextVersion: 9,
		NumShards:   4,
		Files: []BackupFile{
			{Name: "000001.seq.tsf", Size: 128, CRC: 0x1234},
			{Name: "wal-0000000000000001.log", Size: 21, CRC: 0x5678},
		},
	})
	f.Add(good)
	empty, _ := EncodeBackupManifest(BackupManifest{})
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("M4BK"))
	f.Add(append([]byte("M4BK\x01\x00\x00\x00\x00"), 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeBackupManifest(b)
		if err != nil {
			if !errors.Is(err, tsfile.ErrCorrupt) {
				t.Fatalf("rejection does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		enc, err := EncodeBackupManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		m2, err := DecodeBackupManifest(enc)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed manifest: %+v -> %+v", m, m2)
		}
	})
}
