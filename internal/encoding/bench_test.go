package encoding

import (
	"math"
	"math/rand"
	"testing"
)

func sensorData(n int) ([]int64, []float64) {
	rng := rand.New(rand.NewSource(5))
	ts := make([]int64, n)
	vs := make([]float64, n)
	cur := int64(1_600_000_000_000)
	val := 20.0
	for i := 0; i < n; i++ {
		cur += 1000
		if rng.Intn(300) == 0 {
			cur += int64(rng.Intn(50)) * 1000
		}
		val += math.Round(rng.NormFloat64()*4) / 4
		ts[i] = cur
		vs[i] = val
	}
	return ts, vs
}

func BenchmarkEncodeTimes(b *testing.B) {
	ts, _ := sensorData(1000)
	b.SetBytes(8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeTimes(nil, ts)
	}
}

func BenchmarkDecodeTimes(b *testing.B) {
	ts, _ := sensorData(1000)
	enc := EncodeTimes(nil, ts)
	b.SetBytes(8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTimes(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeValuesGorilla(b *testing.B) {
	_, vs := sensorData(1000)
	b.SetBytes(8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeValues(nil, vs)
	}
}

func BenchmarkDecodeValuesGorilla(b *testing.B) {
	_, vs := sensorData(1000)
	enc := EncodeValues(nil, vs)
	b.SetBytes(8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeValues(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeValuesPlain(b *testing.B) {
	_, vs := sensorData(1000)
	enc := EncodeValuesPlain(nil, vs)
	b.SetBytes(8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeValuesPlain(enc); err != nil {
			b.Fatal(err)
		}
	}
}
