package m4udf

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"m4lsm/internal/m4"
	"m4lsm/internal/storage"
)

// ComputeMulti runs one M4 query over several series with default options.
func ComputeMulti(snaps []*storage.Snapshot, q m4.Query) ([][]m4.Aggregate, error) {
	return ComputeMultiContext(context.Background(), snaps, q, Options{})
}

// ComputeMultiContext is the baseline's batched form, the UDF counterpart
// of m4lsm.ComputeMultiContext: each series is merged and scanned exactly as
// ComputeContext would, with the batch fanned across Options.Parallelism
// workers at series granularity (each series runs sequentially inside, so
// the batch never oversubscribes the budget). Results are positional —
// out[i] belongs to snaps[i] — and identical to per-series ComputeContext
// calls; per-series cost counters stay on each snapshot's own Stats.
func ComputeMultiContext(ctx context.Context, snaps []*storage.Snapshot, q m4.Query, opts Options) ([][]m4.Aggregate, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(snaps) == 0 {
		return nil, nil
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(snaps) {
		par = len(snaps)
	}
	inner := opts
	inner.Parallelism = 1
	outs := make([][]m4.Aggregate, len(snaps))
	errs := make([]error, len(snaps))
	run := func(i int) {
		outs[i], errs[i] = ComputeContext(ctx, snaps[i], q, inner)
	}
	if par <= 1 {
		for i := range snaps {
			run(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var failed atomic.Bool
		var wg sync.WaitGroup
		wg.Add(par)
		for w := 0; w < par; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(snaps) || failed.Load() {
						return
					}
					run(i)
					if errs[i] != nil {
						failed.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			if len(snaps) == 1 {
				return nil, err
			}
			return nil, fmt.Errorf("m4udf: series %q: %w", snaps[i].SeriesID, err)
		}
	}
	return outs, nil
}
