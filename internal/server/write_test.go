package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

// newWriteServer serves a fresh engine built with opts (Dir and Metrics are
// filled in) under cfg, returning the server and the engine for direct
// inspection.
func newWriteServer(t *testing.T, cfg Config, opts lsm.Options) (*httptest.Server, *lsm.Engine) {
	t.Helper()
	opts.Dir = t.TempDir()
	opts.Metrics = obs.NewRegistry()
	e, err := lsm.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWith(e, cfg)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
		e.Close()
	})
	return srv, e
}

func postWrite(t *testing.T, base, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/write", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestWriteEndpointIngests(t *testing.T) {
	srv, e := newWriteServer(t, Config{}, lsm.Options{})
	body := "# sensor dump\nroot.a 10 1.5\nroot.b 20 -2\n\nroot.a 30 3e2\n"
	resp := postWrite(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var res struct {
		Points int `json:"points"`
		Series int `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Points != 3 || res.Series != 2 {
		t.Fatalf("response = %+v, want 3 points / 2 series", res)
	}
	// The response promised durability: the points must be in the engine.
	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	snap, err := e.Snapshot("root.a", full)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for _, c := range snap.Chunks {
		data, err := c.Load()
		if err != nil {
			t.Fatal(err)
		}
		got += len(data)
	}
	if got != 2 {
		t.Fatalf("root.a holds %d points, want 2", got)
	}
}

func TestWriteRejectsMalformed(t *testing.T) {
	srv, _ := newWriteServer(t, Config{}, lsm.Options{})
	cases := []struct {
		name, body string
	}{
		{"empty", ""},
		{"comments only", "# nothing\n\n"},
		{"two fields", "root.a 10\n"},
		{"four fields", "root.a 10 1 2\n"},
		{"bad timestamp", "root.a ten 1\n"},
		{"bad value", "root.a 10 one\n"},
		{"NaN", "root.a 10 NaN\n"},
		{"Inf", "root.a 10 +Inf\n"},
		{"negative Inf", "root.a 10 -Inf\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postWrite(t, srv.URL, tc.body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("body %q: status %d, want 400", tc.body, resp.StatusCode)
			}
		})
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/write")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /write: status %d, want 405", resp.StatusCode)
	}
}

// TestWriteBodyBounds: the body cap and the per-line cap both answer 400,
// never a 500 or a hang.
func TestWriteBodyBounds(t *testing.T) {
	srv, _ := newWriteServer(t, Config{MaxBodyBytes: 256}, lsm.Options{})
	big := strings.Repeat("root.a 1 1\n", 200)
	resp := postWrite(t, srv.URL, big)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}
	// The per-line cap rejects independently of the body cap.
	srv2, _ := newWriteServer(t, Config{}, lsm.Options{})
	longLine := "root." + strings.Repeat("x", 2*maxWriteLineBytes) + " 1 1\n"
	resp = postWrite(t, srv2.URL, longLine)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("long line: status %d, want 400", resp.StatusCode)
	}
}

// TestWriteAdmissionSheds pins one /write in flight against a single-slot
// write gate and proves the next one sheds with 429 + Retry-After +
// X-M4-Error: overloaded, on the write gate's own counters.
func TestWriteAdmissionSheds(t *testing.T) {
	checkNoGoroutineLeak(t)
	drainEntered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func(site string) error {
		if site == "ingest.drain" {
			once.Do(func() {
				close(drainEntered)
				<-release
			})
		}
		return nil
	}
	srv, _ := newWriteServer(t,
		Config{WriteSlots: 1, WriteQueueDepth: 0, WriteQueueWait: -1},
		lsm.Options{StepHook: hook})

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader("root.a 1 1\n"))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-drainEntered

	resp := postWrite(t, srv.URL, "root.b 2 2\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second write: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if kind := resp.Header.Get("X-M4-Error"); kind != "overloaded" {
		t.Errorf("X-M4-Error = %q, want overloaded", kind)
	}
	if shed := varzNumber(t, srv.URL, "http_write_shed_total"); shed < 1 {
		t.Errorf("http_write_shed_total = %v after a shed", shed)
	}
	// The query gate is untouched: write overload must not charge queries.
	if shed := varzNumber(t, srv.URL, "http_shed_total"); shed != 0 {
		t.Errorf("http_shed_total = %v, want 0", shed)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("pinned write finished with %d", code)
	}
	deadline := time.Now().Add(2 * time.Second)
	for varzNumber(t, srv.URL, "http_write_inflight") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("write inflight gauge never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWriteOverloadTorture floods /write through a narrow gate over an
// engine with a deliberately tiny ingest queue. Every response is 200 or
// 429-with-Retry-After — never a 500 or a hang — and the engine's
// queue-depth gauge never exceeds its configured bound (+1 item of
// soft-cap slack): overload sheds, it does not buffer.
func TestWriteOverloadTorture(t *testing.T) {
	checkNoGoroutineLeak(t)
	const queuePoints = 8
	hook := func(site string) error {
		if site == "ingest.drain" {
			time.Sleep(time.Millisecond) // slow consumer: force queuing
		}
		return nil
	}
	srv, e := newWriteServer(t,
		Config{WriteSlots: 2, WriteQueueDepth: 2, WriteQueueWait: 20 * time.Millisecond},
		lsm.Options{StepHook: hook, IngestQueuePoints: queuePoints,
			IngestEnqueueWait: 20 * time.Millisecond})

	stopSampling := make(chan struct{})
	var maxQueued atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if n := int64(e.Metrics().Snapshot()["lsm_ingest_queue_points"].(float64)); n > maxQueued.Load() {
				maxQueued.Store(n)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const n = 24
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf("root.s%d 1 1\nroot.s%d 2 2\nroot.s%d 3 3\n", i%4, i%4, i%4)
			resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader(body))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					errCh <- fmt.Errorf("429 without Retry-After")
					return
				}
				shed.Add(1)
			default:
				errCh <- fmt.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(stopSampling)
	sampler.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if ok.Load() == 0 {
		t.Error("no write survived the burst")
	}
	if got := ok.Load() + shed.Load(); got != n {
		t.Errorf("accounted for %d of %d requests", got, n)
	}
	// Soft cap: one oversized entry may land on a queue just under the cap,
	// so the observable bound is cap + largest entry (3 points) per shard
	// (single shard here).
	if m := maxQueued.Load(); m > queuePoints+3 {
		t.Errorf("queue depth reached %d, bound is %d", m, queuePoints+3)
	}
	t.Logf("burst: %d ok, %d shed, max queue depth %d", ok.Load(), shed.Load(), maxQueued.Load())
}

// TestWriteBackpressure429 drives the engine-level typed backpressure (as
// opposed to gate-level shedding) to the HTTP surface: a full ingest queue
// with fail-fast enqueue answers 429 + X-M4-Error: backpressure.
func TestWriteBackpressure429(t *testing.T) {
	checkNoGoroutineLeak(t)
	drainEntered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func(site string) error {
		if site == "ingest.drain" {
			once.Do(func() {
				close(drainEntered)
				<-release
			})
		}
		return nil
	}
	srv, e := newWriteServer(t, Config{},
		lsm.Options{StepHook: hook, IngestQueuePoints: 1, IngestEnqueueWait: -1})

	done := make(chan int, 2)
	post := func(body string) {
		resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}
	go post("root.a 1 1\n") // taken by the worker, which parks
	<-drainEntered
	go post("root.b 2 2\n") // enqueued: fills the 1-point queue
	deadline := time.Now().Add(5 * time.Second)
	for e.Metrics().Snapshot()["lsm_ingest_queue_points"].(float64) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second write never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postWrite(t, srv.URL, "root.c 3 3\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow write: status %d, want 429", resp.StatusCode)
	}
	if kind := resp.Header.Get("X-M4-Error"); kind != "backpressure" {
		t.Errorf("X-M4-Error = %q, want backpressure", kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("backpressure 429 without Retry-After")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("parked write %d finished with %d", i, code)
		}
	}
}

// TestWriteReadOnly503: disk-full degradation surfaces on /write exactly
// like it does on /query — 503 + X-M4-Error: read-only + Retry-After.
func TestWriteReadOnly503(t *testing.T) {
	var diskFull atomic.Bool
	hook := func(site string) error {
		if diskFull.Load() && (strings.HasPrefix(site, "flush.chunk:") || site == "probe.space") {
			return fmt.Errorf("injected: %w", syscall.ENOSPC)
		}
		return nil
	}
	srv, e := newWriteServer(t, Config{},
		lsm.Options{StepHook: hook, SpaceProbeInterval: -1})
	t.Cleanup(func() { diskFull.Store(false) }) // let Close flush cleanly
	for i := 0; i < 20; i++ {
		if err := e.Write("root.s", series.Point{T: int64(i), V: 1}); err != nil {
			t.Fatal(err)
		}
	}
	diskFull.Store(true)
	if err := e.Flush(); err == nil {
		t.Fatal("flush on full disk succeeded")
	}

	resp := postWrite(t, srv.URL, "root.s 100 1\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write on read-only engine: status %d, want 503", resp.StatusCode)
	}
	if kind := resp.Header.Get("X-M4-Error"); kind != "read-only" {
		t.Errorf("X-M4-Error = %q, want read-only", kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("read-only 503 without Retry-After")
	}
}

// TestIngestHammerHTTP races direct Engine.Write callers, /write HTTP
// batches and /query readers on one server under -race, then checks the
// engine holds exactly what was acknowledged. One goroutine owns each
// series, so the oracles need no locking.
func TestIngestHammerHTTP(t *testing.T) {
	srv, e := newWriteServer(t, Config{}, lsm.Options{FlushThreshold: 32, NumShards: 4})

	const nWriters = 3
	type owned struct {
		id   string
		pts  map[int64]float64
		errs []error
	}
	own := make([]*owned, 2*nWriters)
	for i := range own {
		own[i] = &owned{pts: map[int64]float64{}}
	}
	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		// Direct engine writer.
		own[w].id = fmt.Sprintf("root.direct%d", w)
		wg.Add(1)
		go func(o *owned, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				tt, v := rng.Int63n(300), float64(rng.Intn(40))
				if err := e.Write(o.id, series.Point{T: tt, V: v}); err != nil {
					o.errs = append(o.errs, err)
					return
				}
				o.pts[tt] = v
			}
		}(own[w], int64(300+w))
		// HTTP /write writer.
		own[nWriters+w].id = fmt.Sprintf("root.http%d", w)
		wg.Add(1)
		go func(o *owned, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				var b strings.Builder
				batch := map[int64]float64{}
				for j := 0; j < 4; j++ {
					tt, v := rng.Int63n(300), float64(rng.Intn(40))
					batch[tt] = v
					fmt.Fprintf(&b, "%s %d %g\n", o.id, tt, v)
				}
				resp, err := http.Post(srv.URL+"/write", "text/plain", strings.NewReader(b.String()))
				if err != nil {
					o.errs = append(o.errs, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					o.errs = append(o.errs, fmt.Errorf("status %d", resp.StatusCode))
					return
				}
				// Later lines overwrite earlier ones at the same t; the map
				// already models that.
				for tt, v := range batch {
					o.pts[tt] = v
				}
			}
		}(own[nWriters+w], int64(400+w))
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/query?q=" + url.QueryEscape("SELECT M4(*) FROM root.* WHERE time >= 0 AND time < 300 GROUP BY SPANS(5) USING LSM"))
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	for _, o := range own {
		for _, err := range o.errs {
			t.Errorf("series %s: %v", o.id, err)
		}
		snap, err := e.Snapshot(o.id, full)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int64]float64{}
		for _, c := range snap.Chunks {
			data, err := c.Load()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range data {
				got[p.T] = p.V
			}
		}
		if len(got) != len(o.pts) {
			t.Errorf("series %s: %d points, want %d", o.id, len(got), len(o.pts))
		}
	}
}

// FuzzWriteBody: the /write parser must never panic and must never emit a
// non-finite point, whatever the body. Rejections must carry an error.
func FuzzWriteBody(f *testing.F) {
	f.Add("root.a 10 1.5\nroot.b 20 -2\n")
	f.Add("# comment\n\nroot.a 1 2\n")
	f.Add("root.a 10\n")
	f.Add("root.a ten 1\n")
	f.Add("root.a 10 NaN\n")
	f.Add("root.a 10 +Inf\n")
	f.Add("root.a 9223372036854775807 1e308\n")
	f.Add(strings.Repeat("s 1 1\n", 1000))
	f.Add("s " + strings.Repeat("9", 400) + " 1\n")
	f.Add("\x00\xff\nroot.a 1 1\n")
	f.Fuzz(func(t *testing.T, body string) {
		sc := bufio.NewScanner(strings.NewReader(body))
		sc.Buffer(make([]byte, 0, 256), maxWriteLineBytes)
		entries, total, err := parseWriteBody(sc)
		if err != nil {
			if entries != nil {
				t.Fatalf("error %v with non-nil entries", err)
			}
			return
		}
		if total <= 0 || len(entries) == 0 {
			t.Fatalf("accepted body with %d points / %d entries", total, len(entries))
		}
		n := 0
		for _, ent := range entries {
			if ent.SeriesID == "" {
				t.Fatal("accepted empty series id")
			}
			for _, p := range ent.Points {
				if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
					t.Fatalf("non-finite value %v passed the parser", p.V)
				}
			}
			n += len(ent.Points)
		}
		if n != total {
			t.Fatalf("total %d != %d summed points", total, n)
		}
	})
}
