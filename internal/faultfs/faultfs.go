// Package faultfs injects storage faults deterministically, so tests and
// benchmarks can prove the query path degrades gracefully instead of hoping
// it does. Three layers are wrapped:
//
//   - File (io.ReaderAt): byte-level faults — read errors, bit-flips, short
//     reads and latency — under the tsfile CRC checks, so injected
//     corruption exercises the real detection path.
//   - Source (storage.ChunkSource): chunk-level faults for in-memory
//     sources, where every fault surfaces as a read error (CRC detection
//     lives below this layer).
//   - StepInjector: a write-path hook that simulates a process kill at the
//     n-th WAL-append/flush/footer/reopen step, for crash-recovery torture.
//
// Every decision is a pure function of (seed, site): the same seed and the
// same access pattern produce the same faults regardless of goroutine
// scheduling, so parallel operators see reproducible failures.
package faultfs

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// ErrInjected marks a fault injected by this package. Read paths treat it
// like any other I/O error; tests use errors.Is to tell injected faults
// from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrash marks a simulated process kill injected by a StepInjector. The
// write path aborts mid-operation, leaving partial on-disk state exactly as
// a real crash would.
var ErrCrash = errors.New("faultfs: injected crash")

// Fault classifies what happens at one site.
type Fault uint8

// Fault kinds.
const (
	FaultNone  Fault = iota
	FaultErr         // the read fails with ErrInjected
	FaultFlip        // one bit of the returned bytes is flipped
	FaultShort       // the read returns fewer bytes than requested
	FaultSlow        // the read is delayed by Config.Latency
)

func (f Fault) String() string {
	switch f {
	case FaultErr:
		return "err"
	case FaultFlip:
		return "flip"
	case FaultShort:
		return "short"
	case FaultSlow:
		return "slow"
	default:
		return "none"
	}
}

// Config sets the per-site fault rates. Rates are probabilities in [0, 1]
// and partition a single uniform draw, so at most one fault fires per site;
// their sum should stay <= 1.
type Config struct {
	Seed      int64
	ErrRate   float64       // read error
	FlipRate  float64       // single-bit corruption
	ShortRate float64       // short read
	SlowRate  float64       // delayed read
	Latency   time.Duration // delay applied by FaultSlow (default 1ms)

	// PerAttempt models transient faults: each repeat access of the same
	// site appends an attempt counter to the site key, so a retry draws an
	// independent — still seed-deterministic — fault decision instead of
	// re-failing identically forever. Off by default: the classic mode
	// keeps a site's fate fixed, which the degradation tests rely on.
	PerAttempt bool
}

// Stats counts the faults actually injected, by kind.
type Stats struct {
	Errors, Flips, Shorts, Slows int64
}

// Injector decides faults per site and counts what it injected. Safe for
// concurrent use.
type Injector struct {
	cfg Config

	errors atomic.Int64
	flips  atomic.Int64
	shorts atomic.Int64
	slows  atomic.Int64

	mu       sync.Mutex
	attempts map[string]int // per-site access counts (PerAttempt mode)
}

// NewInjector builds an injector for the config.
func NewInjector(cfg Config) *Injector {
	if cfg.Latency <= 0 {
		cfg.Latency = time.Millisecond
	}
	return &Injector{cfg: cfg, attempts: make(map[string]int)}
}

// attemptSite returns the effective site key: unchanged on the first
// access (and always, outside PerAttempt mode), "#a<n>"-suffixed on the
// n-th repeat so retries re-draw their fate deterministically.
func (in *Injector) attemptSite(site string) string {
	if !in.cfg.PerAttempt {
		return site
	}
	in.mu.Lock()
	n := in.attempts[site]
	in.attempts[site] = n + 1
	in.mu.Unlock()
	if n == 0 {
		return site
	}
	return fmt.Sprintf("%s#a%d", site, n)
}

// mix64 finalizes a hash (murmur3's fmix64): FNV-1a alone avalanches too
// weakly on short, similar site strings to feed a uniform draw.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Decide classifies a site deterministically: hash(seed, site) maps to a
// uniform draw in [0, 1) that the configured rates partition.
func (in *Injector) Decide(site string) Fault {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", in.cfg.Seed, site)
	// 53 bits of the mixed hash give an exact float64 in [0, 1).
	u := float64(mix64(h.Sum64())>>11) / float64(1<<53)
	for _, c := range []struct {
		rate float64
		f    Fault
	}{
		{in.cfg.ErrRate, FaultErr},
		{in.cfg.FlipRate, FaultFlip},
		{in.cfg.ShortRate, FaultShort},
		{in.cfg.SlowRate, FaultSlow},
	} {
		if u < c.rate {
			return c.f
		}
		u -= c.rate
	}
	return FaultNone
}

// siteHash drives secondary choices (which bit to flip, where to cut a
// short read) from the same deterministic source.
func (in *Injector) siteHash(site string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|aux|%s", in.cfg.Seed, site)
	return mix64(h.Sum64())
}

func (in *Injector) count(f Fault) {
	switch f {
	case FaultErr:
		in.errors.Add(1)
	case FaultFlip:
		in.flips.Add(1)
	case FaultShort:
		in.shorts.Add(1)
	case FaultSlow:
		in.slows.Add(1)
	}
}

// Stats returns the faults injected so far.
func (in *Injector) Stats() Stats {
	return Stats{
		Errors: in.errors.Load(),
		Flips:  in.flips.Load(),
		Shorts: in.shorts.Load(),
		Slows:  in.slows.Load(),
	}
}

// File wraps an io.ReaderAt with byte-level fault injection. Sites are
// keyed by name, offset and length, so a repeated read of the same region
// fails the same way.
type File struct {
	ra   io.ReaderAt
	name string
	inj  *Injector
}

// WrapFile wraps ra; name distinguishes files in site keys.
func WrapFile(ra io.ReaderAt, name string, inj *Injector) *File {
	return &File{ra: ra, name: name, inj: inj}
}

// ReadAt implements io.ReaderAt with faults applied to the result.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	site := f.inj.attemptSite(fmt.Sprintf("file:%s@%d+%d", f.name, off, len(p)))
	fault := f.inj.Decide(site)
	switch fault {
	case FaultErr:
		f.inj.count(fault)
		return 0, fmt.Errorf("%w: read %s", ErrInjected, site)
	case FaultSlow:
		f.inj.count(fault)
		time.Sleep(f.inj.cfg.Latency)
	}
	n, err := f.ra.ReadAt(p, off)
	if err != nil {
		return n, err
	}
	switch fault {
	case FaultFlip:
		if n > 0 {
			f.inj.count(fault)
			bit := f.inj.siteHash(site) % uint64(n*8)
			p[bit/8] ^= 1 << (bit % 8)
		}
	case FaultShort:
		if n > 1 {
			f.inj.count(fault)
			cut := 1 + int(f.inj.siteHash(site)%uint64(n-1))
			return cut, fmt.Errorf("%w: short read %s: %d of %d bytes", ErrInjected, site, cut, n)
		}
	}
	return n, nil
}

// Source wraps a storage.ChunkSource with chunk-level fault injection.
// Bit-flips and short reads cannot be expressed on decoded points without
// silently corrupting data, so below-CRC faults all surface as read errors;
// FaultSlow delays the read and then serves it. FaultFlip models *detected*
// corruption: when CorruptErr is set the flip error wraps it, letting
// callers hand in their corruption sentinel (e.g. tsfile.ErrCorrupt) so the
// engine's quarantine path fires exactly as it would for a real CRC miss.
type Source struct {
	inner storage.ChunkSource
	inj   *Injector

	// CorruptErr, when non-nil, is wrapped by flip-fault errors instead of
	// ErrInjected.
	CorruptErr error
}

// Wrap wraps src with the injector.
func Wrap(src storage.ChunkSource, inj *Injector) *Source {
	return &Source{inner: src, inj: inj}
}

func (s *Source) fault(meta storage.ChunkMeta, op string) error {
	site := s.inj.attemptSite(fmt.Sprintf("chunk:%s/v%d/%s", meta.SeriesID, meta.Version, op))
	fault := s.inj.Decide(site)
	switch fault {
	case FaultNone:
		return nil
	case FaultSlow:
		s.inj.count(fault)
		time.Sleep(s.inj.cfg.Latency)
		return nil
	case FaultFlip:
		s.inj.count(fault)
		if s.CorruptErr != nil {
			return fmt.Errorf("faultfs: injected corruption %s: %w", site, s.CorruptErr)
		}
		return fmt.Errorf("%w: %s %s", ErrInjected, fault, site)
	default:
		s.inj.count(fault)
		return fmt.Errorf("%w: %s %s", ErrInjected, fault, site)
	}
}

// ReadChunk implements storage.ChunkSource.
func (s *Source) ReadChunk(meta storage.ChunkMeta) (series.Series, error) {
	if err := s.fault(meta, "data"); err != nil {
		return nil, err
	}
	return s.inner.ReadChunk(meta)
}

// ReadTimes implements storage.ChunkSource.
func (s *Source) ReadTimes(meta storage.ChunkMeta) ([]int64, error) {
	if err := s.fault(meta, "times"); err != nil {
		return nil, err
	}
	return s.inner.ReadTimes(meta)
}

var _ storage.ChunkSource = (*Source)(nil)

// StepInjector simulates a process kill at the n-th write-path step. The
// LSM engine calls Step at every WAL-append/flush/footer/reopen point; the
// armed step returns ErrCrash and the engine aborts with partial on-disk
// state. A zero FailAt never crashes (pure step counting).
type StepInjector struct {
	failAt int64
	calls  atomic.Int64

	mu    sync.Mutex
	sites []string
}

// NewStepInjector arms a crash at the failAt-th step (1-based); 0 counts
// steps without crashing.
func NewStepInjector(failAt int64) *StepInjector {
	return &StepInjector{failAt: failAt}
}

// Step records the site and crashes if armed for this call.
func (s *StepInjector) Step(site string) error {
	n := s.calls.Add(1)
	s.mu.Lock()
	s.sites = append(s.sites, site)
	s.mu.Unlock()
	if s.failAt > 0 && n == s.failAt {
		return fmt.Errorf("%w: step %d (%s)", ErrCrash, n, site)
	}
	return nil
}

// Steps returns how many steps have been observed.
func (s *StepInjector) Steps() int64 { return s.calls.Load() }

// Sites returns the sites observed so far, in call order.
func (s *StepInjector) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.sites...)
}
