package exper

import (
	"fmt"
	"io"
	"time"

	"m4lsm/internal/stepreg"
	"m4lsm/internal/workload"
)

// WriteTable renders measurements as an aligned text table, one block per
// dataset, matching the shape of the paper's figures (x axis vs the two
// operators).
func WriteTable(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	byDataset := groupByDataset(ms)
	for _, group := range byDataset {
		fmt.Fprintf(w, "-- %s --\n", group[0].Dataset)
		fmt.Fprintf(w, "%-16s %12s %12s %8s %10s %10s %10s %10s\n",
			group[0].Param, "M4-UDF", "M4-LSM", "speedup",
			"udfLoads", "lsmLoads", "lsmTimeLd", "lsmPruned")
		for _, m := range group {
			fmt.Fprintf(w, "%-16s %12s %12s %7.1fx %10d %10d %10d %10d\n",
				trimFloat(m.X), fmtDur(m.UDFLatency), fmtDur(m.LSMLatency), m.Speedup(),
				m.UDFStats.ChunksLoaded, m.LSMStats.ChunksLoaded,
				m.LSMStats.TimeBlocksLoaded, m.LSMStats.ChunksPruned)
		}
	}
}

// WriteMarkdown renders measurements as Markdown tables for EXPERIMENTS.md.
func WriteMarkdown(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "### %s\n\n", title)
	for _, group := range groupByDataset(ms) {
		fmt.Fprintf(w, "**%s**\n\n", group[0].Dataset)
		fmt.Fprintf(w, "| %s | M4-UDF | M4-LSM | speedup | UDF loads | LSM loads | LSM time-loads | LSM pruned |\n",
			group[0].Param)
		fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
		for _, m := range group {
			fmt.Fprintf(w, "| %s | %s | %s | %.1fx | %d | %d | %d | %d |\n",
				trimFloat(m.X), fmtDur(m.UDFLatency), fmtDur(m.LSMLatency), m.Speedup(),
				m.UDFStats.ChunksLoaded, m.LSMStats.ChunksLoaded,
				m.LSMStats.TimeBlocksLoaded, m.LSMStats.ChunksPruned)
		}
		fmt.Fprintln(w)
	}
}

func groupByDataset(ms []Measurement) [][]Measurement {
	var order []string
	groups := map[string][]Measurement{}
	for _, m := range ms {
		if _, ok := groups[m.Dataset]; !ok {
			order = append(order, m.Dataset)
		}
		groups[m.Dataset] = append(groups[m.Dataset], m)
	}
	out := make([][]Measurement, 0, len(order))
	for _, name := range order {
		out = append(out, groups[name])
	}
	return out
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%g", x)
	return s
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

// RunTable2 regenerates the dataset summary of Table 2 at the configured
// scale.
func RunTable2(cfg Config) []workload.TableRow {
	cfg = cfg.withDefaults()
	return workload.Table2For(cfg.Datasets, cfg.Scale, cfg.Seed)
}

// WriteTable2 renders the Table 2 reproduction.
func WriteTable2(w io.Writer, rows []workload.TableRow, scale float64) {
	fmt.Fprintf(w, "== Table 2: dataset summary (scale %g) ==\n", scale)
	fmt.Fprintf(w, "%-12s %-18s %12s %16s\n", "Dataset", "Paper time range", "# Points", "Span (days)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-18s %12d %16.2f\n",
			r.Dataset, r.TimeRange, r.Points, float64(r.SpanMillis)/86_400_000)
	}
}

// Fig8Result captures the step-regression reproduction of Figures 8/9: the
// learned slope and splits of a KOB-like chunk plus the delta statistics.
type Fig8Result struct {
	Dataset     string
	ChunkPoints int
	Slope       float64
	MedianDelta int64
	Splits      []int64
	Segments    []stepreg.Segment
	MaxErr      int
}

// RunFig8 builds one chunk per dataset and reports the learned step
// regression (Figure 8 shows the timestamp-position steps, Figure 9 the
// delta distribution driving the learned slope).
func RunFig8(cfg Config) []Fig8Result {
	cfg = cfg.withDefaults()
	out := make([]Fig8Result, 0, len(cfg.Datasets))
	for _, p := range cfg.Datasets {
		data := p.Generate(cfg.ChunkSize, cfg.Seed)
		ts := data.Times()
		ix := stepreg.Build(ts)
		res := Fig8Result{
			Dataset:     p.Name,
			ChunkPoints: len(ts),
			Slope:       ix.Slope(),
			Splits:      ix.Splits(),
			Segments:    ix.Segments(),
			MaxErr:      ix.MaxErr(),
		}
		if ix.Slope() > 0 {
			res.MedianDelta = int64(1/ix.Slope() + 0.5)
		}
		out = append(out, res)
	}
	return out
}

// WriteFig8 renders the step-regression reproduction.
func WriteFig8(w io.Writer, results []Fig8Result) {
	fmt.Fprintln(w, "== Figures 8/9: step regression on one chunk per dataset ==")
	for _, r := range results {
		fmt.Fprintf(w, "-- %s: %d points, slope K = 1/%dms, %d segments, maxErr %d --\n",
			r.Dataset, r.ChunkPoints, r.MedianDelta, len(r.Segments), r.MaxErr)
		for _, s := range r.Segments {
			fmt.Fprintf(w, "   %s\n", s)
		}
	}
}

// Titles for the standard experiments, keyed by the m4bench -exp flag.
var Titles = map[string]string{
	"table2":    "Table 2: dataset summary",
	"fig1":      "Figure 1: pixel error of reductions",
	"fig8":      "Figures 8/9: step regression",
	"fig10":     "Figure 10: varying the number of time spans w",
	"fig11":     "Figure 11: varying query time range",
	"fig12":     "Figure 12: varying chunk overlap percentage",
	"fig13":     "Figure 13: varying delete percentage",
	"fig14":     "Figure 14: varying delete time range",
	"scaling":   "Scaling: varying worker parallelism",
	"pyramid":   "Pyramid: data size vs latency at fixed w",
	"repr":      "Representation operators: quality vs cost across w",
	"shards":    "Sharding: shard count vs write throughput and wildcard query",
	"ablations": "Ablations: M4-LSM design choices",
	"faults":    "Fault injection: graceful degradation under chunk-read faults",
	"overload":  "Overload: admission control under concurrent slow queries",
	"recovery":  "Recovery: replay after kill, monolithic vs segmented WAL",
	"selfobs":   "Self-observability: sampler overhead and cardinality bound",
	"ingest":    "Ingestion: WriteBatch vs Write across writers, batch size and WAL durability",
}

// ExpNames lists the experiments in presentation order.
func ExpNames() []string {
	return []string{"table2", "fig1", "fig8", "fig10", "fig11", "fig12", "fig13", "fig14", "scaling", "pyramid", "repr", "shards", "ablations", "faults", "overload", "recovery", "ingest", "selfobs"}
}
