package encoding

// Codec selects the pair of timestamp/value encodings used by a chunk. The
// codec id is stored in the chunk header so files remain self-describing.
type Codec uint8

const (
	// CodecGorilla: delta-of-delta timestamps + Gorilla XOR values. Default.
	CodecGorilla Codec = 0
	// CodecPlain: raw 8-byte timestamps and values.
	CodecPlain Codec = 1
)

// Valid reports whether c names a known codec.
func (c Codec) Valid() bool { return c == CodecGorilla || c == CodecPlain }

// String names the codec for diagnostics.
func (c Codec) String() string {
	switch c {
	case CodecGorilla:
		return "gorilla"
	case CodecPlain:
		return "plain"
	default:
		return "unknown"
	}
}

// EncodeTimesWith dispatches to the codec's timestamp encoder.
func (c Codec) EncodeTimesWith(dst []byte, ts []int64) []byte {
	if c == CodecPlain {
		return EncodeTimesPlain(dst, ts)
	}
	return EncodeTimes(dst, ts)
}

// DecodeTimesWith dispatches to the codec's timestamp decoder.
func (c Codec) DecodeTimesWith(b []byte) ([]int64, []byte, error) {
	if c == CodecPlain {
		return DecodeTimesPlain(b)
	}
	return DecodeTimes(b)
}

// EncodeValuesWith dispatches to the codec's value encoder.
func (c Codec) EncodeValuesWith(dst []byte, vs []float64) []byte {
	if c == CodecPlain {
		return EncodeValuesPlain(dst, vs)
	}
	return EncodeValues(dst, vs)
}

// DecodeValuesWith dispatches to the codec's value decoder.
func (c Codec) DecodeValuesWith(b []byte) ([]float64, []byte, error) {
	if c == CodecPlain {
		return DecodeValuesPlain(b)
	}
	return DecodeValues(b)
}
