// Command m4server serves a database directory over HTTP.
//
// Endpoints:
//
//	GET  /healthz                         engine status, uptime, build info
//	GET  /series                          stored series ids
//	GET  /query?q=<m4ql>[&trace=1]        run an M4 query, JSON result
//	POST /query {"query": "<m4ql>"}       same, query in the body
//	POST /write                           batched ingestion; text body, one
//	                                      "series t v" point per line
//	GET  /render?series=&tqs=&tqe=&w=&h=  two-color PNG line chart; series
//	                                      accepts a comma list or a prefix
//	                                      wildcard ("root.*") overlaid on
//	                                      one canvas
//	GET  /metrics                         Prometheus text exposition
//	GET  /varz                            the same registry as JSON
//	GET  /dashboard                       self-observability charts, M4-rendered
//	                                      from the root.sys.* metric history
//	GET  /debug/slowlog                   slow-query ring buffer
//	GET  /debug/events                    wide per-query event tail (JSON)
//	POST /admin/backup?dir=<dest>         online backup into <dest>
//	POST /admin/scrub[?heal=true]         on-demand integrity scrub pass
//
// Example:
//
//	m4server -dir ./db -addr :8086
//	curl 'localhost:8086/query?q=SELECT+M4(*)+FROM+s+WHERE+time+>=+0+AND+time+<+1000+GROUP+BY+SPANS(100)&trace=1'
//	curl 'localhost:8086/metrics'
//
// With -debug-addr set, a second listener exposes net/http/pprof and
// expvar on a separate address (keep it private):
//
//	m4server -dir ./db -debug-addr localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, then the engine is flushed and closed exactly once.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"m4lsm/internal/buildinfo"
	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/server"
)

func main() {
	var (
		dir       = flag.String("dir", "m4db", "database directory")
		addr      = flag.String("addr", ":8086", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional pprof/expvar listen address (e.g. localhost:6060); empty disables")
		drainWait = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		slowQuery = flag.Duration("slow-query", 100*time.Millisecond, "minimum /query latency recorded in /debug/slowlog")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		shards    = flag.Int("shards", 1, "engine shard count (series are hash-partitioned for concurrent writes and flushes)")

		queryTimeout = flag.Duration("query-timeout", 0, "default per-query wall-clock budget (a statement TIMEOUT clause overrides it; 0 disables)")
		querySlots   = flag.Int("query-slots", 0, "max concurrently executing /query and /render requests (0 disables admission control)")
		queryQueue   = flag.Int("query-queue", 16, "queued query-class requests beyond the running ones before shedding with 429")
		queueWait    = flag.Duration("queue-wait", time.Second, "max time a queued request waits for a slot before 429 (negative sheds immediately)")
		writeSlots   = flag.Int("write-slots", 0, "max concurrently executing /write requests on a gate of their own (0 disables write admission control)")
		writeQueue   = flag.Int("write-queue", 16, "queued /write requests beyond the running ones before shedding with 429")
		writeWait    = flag.Duration("write-queue-wait", time.Second, "max time a queued /write waits for a slot before 429 (negative sheds immediately)")
		maxBody      = flag.Int64("max-body-bytes", 1<<20, "request body size bound; oversized bodies answer 400")
		maxChunks    = flag.Int64("max-chunks-per-query", 0, "default cap on physical chunk loads per query (0 = unlimited)")
		maxPoints    = flag.Int64("max-points-per-query", 0, "default cap on decoded points per query (0 = unlimited)")
		readRetries  = flag.Int("read-retries", 0, "retry attempts for transient chunk-read failures (0 = engine default)")
		pyramid      = flag.Bool("pyramid", true, "maintain the M4 rollup pyramid (precomputed multi-resolution span aggregates); false always computes from chunks")

		scrubEvery  = flag.Duration("scrub-interval", 0, "period of the background integrity scrubber (chunk CRCs, pyramid manifest, WAL segments; 0 disables — /admin/scrub still works on demand)")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = engine default)")
		syncWAL     = flag.Bool("sync-wal", false, "fsync the WAL before acknowledging writes (group commit amortizes the sync across concurrent writers)")
		walGroup    = flag.Int("wal-group-size", 0, "max records per WAL group commit (0 = engine default 128)")
		ingestQueuePoints = flag.Int("ingest-queue-points", 0, "per-shard batched-ingest queue cap in points before backpressure (0 = engine default 65536)")
		ingestQueueBytes  = flag.Int("ingest-queue-bytes", 0, "per-shard batched-ingest queue cap in payload bytes (0 = engine default 8MiB)")
		ingestWait        = flag.Duration("ingest-enqueue-wait", 0, "max time a batch blocks on a full ingest queue before the retryable backpressure error (0 = engine default 2s; negative fails immediately)")

		selfMetrics = flag.Duration("self-metrics-interval", time.Second, "period at which the metrics registry is sampled into root.sys.* series inside the engine (0 disables)")
		eventLog    = flag.String("event-log", "", "JSONL file receiving one wide event per /query and /render ('' keeps the tail in memory only, served at /debug/events)")
		eventBuffer = flag.Int("event-buffer", 0, "event-log channel capacity before events are dropped and counted (0 = default 256)")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		os.Stdout.WriteString("m4server " + buildinfo.String() + "\n")
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	reg := obs.NewRegistry()
	engine, err := lsm.Open(lsm.Options{Dir: *dir, Metrics: reg, NumShards: *shards, ReadRetries: *readRetries, DisablePyramid: !*pyramid,
		ScrubInterval: *scrubEvery, WALSegmentBytes: *walSegBytes,
		SyncWAL: *syncWAL, WALGroupSize: *walGroup,
		IngestQueuePoints: *ingestQueuePoints, IngestQueueBytes: *ingestQueueBytes,
		IngestEnqueueWait: *ingestWait})
	if err != nil {
		logger.Error("open engine", "dir", *dir, "err", err)
		os.Exit(1)
	}

	handler := server.NewWith(engine, server.Config{
		Logger:              logger,
		SlowQueryThreshold:  *slowQuery,
		QuerySlots:          *querySlots,
		QueryQueueDepth:     *queryQueue,
		QueryQueueWait:      *queueWait,
		WriteSlots:          *writeSlots,
		WriteQueueDepth:     *writeQueue,
		WriteQueueWait:      *writeWait,
		QueryTimeout:        *queryTimeout,
		MaxChunksPerQuery:   *maxChunks,
		MaxPointsPerQuery:   *maxPoints,
		MaxBodyBytes:        *maxBody,
		SelfMetricsInterval: *selfMetrics,
		EventLogPath:        *eventLog,
		EventLogBuffer:      *eventBuffer,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: debugMux(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			logger.Info("debug listener", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug listener failed", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "dir", *dir, "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("drain", "err", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
		}
	}
	if debugSrv != nil {
		debugSrv.Close()
	}

	// Stop the self-metrics sampler and drain the event log before the
	// engine goes away underneath them.
	if err := handler.Close(); err != nil {
		logger.Warn("close handler", "err", err)
	}

	// Close (flush memtable, release handles) exactly once, after the
	// listener has stopped taking requests.
	if err := engine.Close(); err != nil {
		logger.Error("close engine", "err", err)
		os.Exit(1)
	}
	logger.Info("closed cleanly")
}

// debugMux serves the Go runtime's profiling surface: net/http/pprof and
// expvar, registered explicitly so nothing leaks onto the main listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
