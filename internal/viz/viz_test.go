package viz

import (
	"bytes"
	"image/png"
	"math/rand"
	"strings"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
)

func TestCanvasSetGet(t *testing.T) {
	c := NewCanvas(8, 4)
	if c.Get(3, 2) {
		t.Error("fresh canvas has lit pixel")
	}
	c.Set(3, 2)
	if !c.Get(3, 2) {
		t.Error("Set/Get mismatch")
	}
	// Out-of-bounds operations are ignored / false.
	c.Set(-1, 0)
	c.Set(8, 0)
	c.Set(0, 4)
	if c.Get(-1, 0) || c.Get(8, 0) || c.Get(0, 4) {
		t.Error("out-of-bounds Get returned true")
	}
	if c.Count() != 1 {
		t.Errorf("Count = %d", c.Count())
	}
}

func TestNewCanvasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0x0 canvas")
		}
	}()
	NewCanvas(0, 5)
}

func TestDrawLineVertical(t *testing.T) {
	c := NewCanvas(4, 8)
	c.DrawLine(2, 1, 2, 6)
	for y := 1; y <= 6; y++ {
		if !c.Get(2, y) {
			t.Errorf("pixel (2,%d) not lit", y)
		}
	}
	if c.Count() != 6 {
		t.Errorf("Count = %d, want 6", c.Count())
	}
}

func TestDrawLineHorizontalAndDiagonal(t *testing.T) {
	c := NewCanvas(8, 8)
	c.DrawLine(1, 3, 6, 3)
	for x := 1; x <= 6; x++ {
		if !c.Get(x, 3) {
			t.Errorf("pixel (%d,3) not lit", x)
		}
	}
	d := NewCanvas(8, 8)
	d.DrawLine(0, 0, 7, 7)
	for i := 0; i < 8; i++ {
		if !d.Get(i, i) {
			t.Errorf("diagonal pixel (%d,%d) not lit", i, i)
		}
	}
}

func TestDrawLineSymmetric(t *testing.T) {
	a := NewCanvas(16, 16)
	b := NewCanvas(16, 16)
	a.DrawLine(2, 3, 13, 9)
	b.DrawLine(13, 9, 2, 3)
	if Diff(a, b) != 0 {
		t.Error("line drawing is direction dependent")
	}
}

func TestDiff(t *testing.T) {
	a, b := NewCanvas(4, 4), NewCanvas(4, 4)
	a.Set(0, 0)
	b.Set(3, 3)
	if Diff(a, b) != 2 {
		t.Errorf("Diff = %d, want 2", Diff(a, b))
	}
	b.Set(0, 0)
	a.Set(3, 3)
	if Diff(a, b) != 0 {
		t.Errorf("Diff = %d, want 0", Diff(a, b))
	}
}

func TestDiffPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	Diff(NewCanvas(2, 2), NewCanvas(3, 2))
}

func TestViewportMapping(t *testing.T) {
	vp := Viewport{Tqs: 0, Tqe: 100, VMin: 0, VMax: 10}
	if vp.X(0, 10) != 0 || vp.X(99, 10) != 9 || vp.X(50, 10) != 5 {
		t.Error("X mapping wrong")
	}
	if vp.Y(10, 11) != 0 || vp.Y(0, 11) != 10 || vp.Y(5, 11) != 5 {
		t.Errorf("Y mapping wrong: %d %d %d", vp.Y(10, 11), vp.Y(0, 11), vp.Y(5, 11))
	}
	flat := Viewport{Tqs: 0, Tqe: 10, VMin: 3, VMax: 3}
	if flat.Y(3, 10) != 5 {
		t.Error("flat viewport must center values")
	}
}

func TestViewportFor(t *testing.T) {
	s := series.Series{{T: 5, V: -2}, {T: 10, V: 8}, {T: 200, V: 99}}
	vp := ViewportFor(s, 0, 100)
	if vp.VMin != -2 || vp.VMax != 8 {
		t.Errorf("viewport = %+v (out-of-range point must not count)", vp)
	}
	empty := ViewportFor(s, 300, 400)
	if empty.VMin != 0 || empty.VMax != 1 {
		t.Errorf("empty viewport = %+v", empty)
	}
}

func TestRasterizeSinglePoint(t *testing.T) {
	s := series.Series{{T: 50, V: 5}}
	vp := Viewport{Tqs: 0, Tqe: 100, VMin: 0, VMax: 10}
	c := Rasterize(s, vp, 10, 11)
	if c.Count() != 1 || !c.Get(5, 5) {
		t.Errorf("single point raster wrong: count=%d", c.Count())
	}
}

func genSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, 0, n)
	tt := int64(0)
	v := 0.0
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(20))
		switch rng.Intn(4) {
		case 0:
			v += rng.NormFloat64() * 5
		case 1:
			v = rng.Float64() * 40
		default:
			v += rng.NormFloat64()
		}
		s = append(s, series.Point{T: tt, V: v})
	}
	return s
}

// TestM4ErrorFree validates the paper's headline property: rendering the
// M4-reduced series is pixel-identical to rendering the full series when
// the number of spans equals the pixel width.
func TestM4ErrorFree(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := genSeries(rng, 200+rng.Intn(2000))
		w := 10 + rng.Intn(90)
		h := 20 + rng.Intn(100)
		tqs := int64(0)
		tqe := s[len(s)-1].T + 1
		q := m4.Query{Tqs: tqs, Tqe: tqe, W: w}
		aggs, err := m4.ComputeSeries(q, s)
		if err != nil {
			t.Fatal(err)
		}
		reduced := m4.Points(aggs)
		vp := ViewportFor(s, tqs, tqe)
		full := Rasterize(s, vp, w, h)
		red := Rasterize(reduced, vp, w, h)
		if d := Diff(full, red); d != 0 {
			t.Fatalf("seed %d: pixel error %d of %d lit (w=%d h=%d n=%d)",
				seed, d, full.Count(), w, h, len(s))
		}
	}
}

// TestMinMaxIsNotErrorFree contrasts M4 with the MinMax reduction the
// paper mentions (§5.1): keeping only bottom/top per span loses the
// inter-column join pixels, so the diff must be nonzero on typical data.
func TestMinMaxIsNotErrorFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nonzero := 0
	for trial := 0; trial < 20; trial++ {
		s := genSeries(rng, 1500)
		w, h := 40, 40
		q := m4.Query{Tqs: 0, Tqe: s[len(s)-1].T + 1, W: w}
		aggs, err := m4.ComputeSeries(q, s)
		if err != nil {
			t.Fatal(err)
		}
		var minmax series.Series
		for _, a := range aggs {
			if a.Empty {
				continue
			}
			lo, hi := a.Bottom, a.Top
			if lo.T > hi.T {
				lo, hi = hi, lo
			}
			if lo.T == hi.T {
				minmax = append(minmax, lo)
				continue
			}
			minmax = append(minmax, lo, hi)
		}
		vp := ViewportFor(s, q.Tqs, q.Tqe)
		if Diff(Rasterize(s, vp, w, h), Rasterize(minmax, vp, w, h)) > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("MinMax rendered error-free on all trials; expected pixel errors")
	}
}

func TestASCII(t *testing.T) {
	c := NewCanvas(3, 2)
	c.Set(1, 0)
	got := c.ASCII()
	want := ".#.\n...\n"
	if got != want {
		t.Errorf("ASCII = %q, want %q", got, want)
	}
	if !strings.Contains(got, "#") {
		t.Error("no lit pixels in ASCII output")
	}
}

func TestWritePNG(t *testing.T) {
	c := NewCanvas(10, 5)
	c.DrawLine(0, 0, 9, 4)
	var buf bytes.Buffer
	if err := c.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 10 || img.Bounds().Dy() != 5 {
		t.Errorf("png bounds = %v", img.Bounds())
	}
}

func TestRasterizeSkipsOutOfRange(t *testing.T) {
	s := series.Series{{T: -10, V: 0}, {T: 5, V: 5}, {T: 200, V: 9}}
	vp := Viewport{Tqs: 0, Tqe: 100, VMin: 0, VMax: 10}
	c := Rasterize(s, vp, 10, 10)
	// Only t=5 is in range: exactly one pixel.
	if c.Count() != 1 {
		t.Errorf("count = %d, want 1", c.Count())
	}
}
