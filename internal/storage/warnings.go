package storage

import (
	"fmt"
	"sync"
)

// Warnings collects per-query degradation notes: chunks skipped because
// they could not be read, quarantine decisions, anything the caller should
// see next to a partial result. A Warnings pointer is shared by every
// worker of a query, so all methods are safe for concurrent use; the nil
// Warnings discards everything, letting operators report unconditionally.
type Warnings struct {
	mu    sync.Mutex
	notes []string
}

// Add records one formatted warning.
func (w *Warnings) Add(format string, args ...interface{}) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.notes = append(w.notes, fmt.Sprintf(format, args...))
	w.mu.Unlock()
}

// List returns a copy of the warnings recorded so far.
func (w *Warnings) List() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.notes...)
}

// Len returns the number of warnings recorded so far.
func (w *Warnings) Len() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.notes)
}
