// Package csvio reads and writes time series as CSV, the interchange
// format the paper's public experiment repository uses for its datasets.
// The format is a header line followed by `time,value` rows; timestamps
// are epoch milliseconds.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"m4lsm/internal/series"
)

// Read parses a CSV stream into a series. A single header line is
// tolerated (any first row whose first field is not an integer). Rows must
// be in strictly increasing time order unless sortDedup is true, in which
// case they are sorted and later duplicates win.
func Read(r io.Reader, sortDedup bool) (series.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.ReuseRecord = true
	var out series.Series
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %w", err)
		}
		line++
		t, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("csvio: line %d: bad timestamp %q", line, rec[0])
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad value %q", line, rec[1])
		}
		out = append(out, series.Point{T: t, V: v})
	}
	if sortDedup {
		return series.SortDedup(out), nil
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("csvio: %w (pass sortDedup to accept unsorted input)", err)
	}
	return out, nil
}

// Write emits the series as CSV with a `time,value` header.
func Write(w io.Writer, s series.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "value"}); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	rec := make([]string, 2)
	for _, p := range s {
		rec[0] = strconv.FormatInt(p.T, 10)
		rec[1] = strconv.FormatFloat(p.V, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	return nil
}
