package storage

import (
	"context"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/series"
)

// RetryPolicy bounds how a retrying chunk source re-reads after transient
// faults. The zero policy (MaxAttempts <= 1) disables retrying.
type RetryPolicy struct {
	// MaxAttempts is the total number of read attempts, including the
	// first (<= 1 means no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms);
	// MaxDelay caps the exponential growth (default 50ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the deterministic jitter (govern.Backoff), so a retry
	// schedule reproduces exactly under the fault-injection harness.
	Seed uint64
	// IsPermanent reports errors that must not be retried — detected
	// corruption stays corrupt no matter how often it is re-read.
	IsPermanent func(error) bool
	// OnRetry fires before each retry, OnExhausted once when the attempts
	// run out with the read still failing. Both may be nil; both must be
	// safe for concurrent use (they feed metrics counters).
	OnRetry     func()
	OnExhausted func()
}

// retrySource retries transient read faults of the wrapped source. It sits
// below the chunk cache (so only settled reads are cached) and above the
// fault-injection wrapper (so a retry re-draws the fault decision).
type retrySource struct {
	inner ChunkSource
	p     RetryPolicy
}

// WithRetry wraps src with the retry policy; a policy without retries
// returns src unchanged.
func WithRetry(src ChunkSource, p RetryPolicy) ChunkSource {
	if p.MaxAttempts <= 1 {
		return src
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	return &retrySource{inner: src, p: p}
}

// do runs read up to MaxAttempts times. The backoff sleep is bounded and
// small, so it deliberately runs uncancelled: ChunkSource has no context,
// and the operators re-check theirs at the next task boundary.
func (r *retrySource) do(read func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = read()
		if err == nil {
			return nil
		}
		if r.p.IsPermanent != nil && r.p.IsPermanent(err) {
			return err
		}
		if attempt >= r.p.MaxAttempts {
			break
		}
		if r.p.OnRetry != nil {
			r.p.OnRetry()
		}
		if serr := govern.SleepBackoff(context.Background(), attempt, r.p.BaseDelay, r.p.MaxDelay, r.p.Seed); serr != nil {
			break
		}
	}
	if r.p.OnExhausted != nil {
		r.p.OnExhausted()
	}
	return err
}

// ReadChunk implements ChunkSource.
func (r *retrySource) ReadChunk(meta ChunkMeta) (series.Series, error) {
	var out series.Series
	err := r.do(func() error {
		var e error
		out, e = r.inner.ReadChunk(meta)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadTimes implements ChunkSource.
func (r *retrySource) ReadTimes(meta ChunkMeta) ([]int64, error) {
	var out []int64
	err := r.do(func() error {
		var e error
		out, e = r.inner.ReadTimes(meta)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

var _ ChunkSource = (*retrySource)(nil)
