package exper

import (
	"errors"
	"fmt"
	"io"
	"time"

	"m4lsm/internal/faultfs"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/storage"
	"m4lsm/internal/tsfile"
	"m4lsm/internal/workload"
)

// FaultRates is the fault-probability sweep of the -faults experiment.
var FaultRates = []float64{0, 0.02, 0.05, 0.1, 0.2}

// FaultMeasurement is one row of the robustness experiment: both operators
// run in degraded (non-strict) mode over a store whose chunk reads fail
// deterministically at the given rate.
type FaultMeasurement struct {
	Dataset string
	Rate    float64 // probability that one chunk read faults

	LSMLatency  time.Duration
	UDFLatency  time.Duration
	LSMWarnings int // chunks dropped by the merge-free operator
	UDFWarnings int // chunks dropped by the baseline
	Quarantined int // chunks quarantined engine-wide (detected corruption)
	StrictFails bool
	Injected    faultfs.Stats
}

// RunFaults drives the whole query pipeline under deterministic chunk-read
// fault injection: the store is built clean, reopened with a faultfs source
// wrapper, and queried by both operators in graceful-degradation mode. A
// query must never fail or panic — unreadable chunks degrade the result and
// corrupt ones are quarantined — while a STRICT query over the same state
// must refuse to answer. Faults are a pure function of (seed, chunk), so a
// rerun with the same flags reproduces the same degradation.
func RunFaults(cfg Config, rates []float64) ([]FaultMeasurement, error) {
	cfg = cfg.withDefaults()
	if len(rates) == 0 {
		rates = FaultRates
	}
	var out []FaultMeasurement
	for di, p := range cfg.Datasets {
		for ri, rate := range rates {
			dir, cleanup, err := tempDir(cfg, fmt.Sprintf("faults-%d-%d", di, ri))
			if err != nil {
				return nil, err
			}
			m, err := runFaultCell(cfg, p, rate, dir)
			cleanup()
			if err != nil {
				return nil, err
			}
			out = append(out, *m)
		}
	}
	return out, nil
}

func runFaultCell(cfg Config, p workload.Preset, rate float64, dir string) (*FaultMeasurement, error) {
	// Build the store clean, then reopen it with fault injection at the
	// chunk-source layer: file opens and footer parses stay reliable, every
	// query-time chunk read rolls the dice.
	name := p.Name
	b, err := build(cfg, p, 0.1, workload.DeleteOptions{}, dir)
	if err != nil {
		return nil, err
	}
	q := m4.Query{Tqs: b.tqs, Tqe: b.tqe, W: cfg.W}
	if err := b.engine.Close(); err != nil {
		return nil, err
	}

	inj := faultfs.NewInjector(faultfs.Config{
		Seed:     cfg.Seed,
		ErrRate:  rate * 0.6, // transient read errors: skipped per query
		FlipRate: rate * 0.2, // detected corruption: quarantined for good
		SlowRate: rate * 0.2, // latency only; the read still succeeds
		Latency:  100 * time.Microsecond,
	})
	e, err := lsm.Open(lsm.Options{
		Dir:            dir,
		FlushThreshold: cfg.ChunkSize,
		DisableWAL:     true,
		WrapSource: func(src storage.ChunkSource) storage.ChunkSource {
			s := faultfs.Wrap(src, inj)
			s.CorruptErr = tsfile.ErrCorrupt
			return s
		},
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()

	m := &FaultMeasurement{Dataset: name, Rate: rate}

	snap, err := e.Snapshot(name, q.Range())
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := m4lsm.ComputeWithOptions(snap, q, m4lsm.Options{Parallelism: cfg.Parallelism}); err != nil {
		return nil, fmt.Errorf("%s rate %g: degraded M4-LSM must not fail: %w", name, rate, err)
	}
	m.LSMLatency = time.Since(start)
	m.LSMWarnings = snap.Warnings.Len()

	snap, err = e.Snapshot(name, q.Range())
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := m4udf.ComputeWithOptions(snap, q, m4udf.Options{Parallelism: cfg.Parallelism}); err != nil {
		return nil, fmt.Errorf("%s rate %g: degraded M4-UDF must not fail: %w", name, rate, err)
	}
	m.UDFLatency = time.Since(start)
	m.UDFWarnings = snap.Warnings.Len()

	// A strict query over the same faulty state must refuse to answer
	// whenever degradation occurred (quarantine already excludes corrupt
	// chunks, so strictness trips on the exclusion warning too).
	snap, err = e.Snapshot(name, q.Range())
	if err != nil {
		return nil, err
	}
	if snap.Warnings.Len() > 0 {
		m.StrictFails = true
	} else if _, err := m4lsm.ComputeWithOptions(snap, q, m4lsm.Options{Parallelism: cfg.Parallelism, Strict: true}); err != nil {
		if !errors.Is(err, faultfs.ErrInjected) && !errors.Is(err, tsfile.ErrCorrupt) {
			return nil, fmt.Errorf("%s rate %g: strict run failed oddly: %w", name, rate, err)
		}
		m.StrictFails = true
	}

	m.Quarantined = e.Info().QuarantinedChunks
	m.Injected = inj.Stats()
	return m, nil
}

// WriteFaults renders the robustness sweep.
func WriteFaults(w io.Writer, rows []FaultMeasurement) {
	fmt.Fprintf(w, "== Fault injection: graceful degradation under chunk-read faults ==\n")
	fmt.Fprintf(w, "%-8s %8s %12s %12s %8s %8s %6s %8s %s\n",
		"dataset", "rate", "lsmLatency", "udfLatency", "lsmWarn", "udfWarn", "quar", "strict", "injected")
	for _, m := range rows {
		strict := "ok"
		if m.StrictFails {
			strict = "fails"
		}
		fmt.Fprintf(w, "%-8s %8.2f %12v %12v %8d %8d %6d %8s err=%d flip=%d slow=%d\n",
			m.Dataset, m.Rate,
			m.LSMLatency.Round(time.Microsecond), m.UDFLatency.Round(time.Microsecond),
			m.LSMWarnings, m.UDFWarnings, m.Quarantined, strict,
			m.Injected.Errors, m.Injected.Flips, m.Injected.Slows)
	}
}
