// Benchmarks regenerating the paper's evaluation (one per table/figure,
// DESIGN.md §4) plus the ablation studies of DESIGN.md §6. The cmd/m4bench
// binary prints the full figure series; these benches make the same
// comparisons runnable via `go test -bench`.
//
// Storage states are built once per benchmark; iterations measure query
// latency only, mirroring the paper's repeated-query methodology.
package m4lsm

import (
	"fmt"
	"testing"

	"m4lsm/internal/encoding"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	intm4lsm "m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
	"m4lsm/internal/workload"
)

const (
	benchPoints    = 50_000
	benchChunkSize = 500 // 100 chunks: well above the largest benched w
)

type benchDB struct {
	engine *lsm.Engine
	id     string
	tqs    int64
	tqe    int64
}

func buildBenchDB(b *testing.B, preset workload.Preset, n, chunkSize int, overlap float64, del workload.DeleteOptions, codec encoding.Codec) *benchDB {
	b.Helper()
	data := preset.Generate(n, 42)
	e, err := lsm.Open(lsm.Options{
		Dir: b.TempDir(), FlushThreshold: chunkSize, DisableWAL: true, Codec: codec,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	if err := workload.Load(e, preset.Name, data, workload.LoadOptions{
		ChunkSize: chunkSize, OverlapFraction: overlap, Seed: 42,
	}); err != nil {
		b.Fatal(err)
	}
	if del.Count > 0 {
		if err := workload.ApplyDeletes(e, preset.Name, data, del); err != nil {
			b.Fatal(err)
		}
	}
	return &benchDB{engine: e, id: preset.Name, tqs: data[0].T, tqe: data[len(data)-1].T + 1}
}

func (db *benchDB) query(b *testing.B, q m4.Query, useLSM bool, opts intm4lsm.Options) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := db.engine.Snapshot(db.id, q.Range())
		if err != nil {
			b.Fatal(err)
		}
		if useLSM {
			_, err = intm4lsm.ComputeWithOptions(snap, q, opts)
		} else {
			_, err = m4udf.Compute(snap, q)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func forOperators(b *testing.B, fn func(b *testing.B, useLSM bool)) {
	b.Run("M4-UDF", func(b *testing.B) { fn(b, false) })
	b.Run("M4-LSM", func(b *testing.B) { fn(b, true) })
}

// BenchmarkTable2Datasets measures the four dataset generators (Table 2).
func BenchmarkTable2Datasets(b *testing.B) {
	for _, p := range workload.Presets() {
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				data := p.Generate(10_000, 42)
				if len(data) != 10_000 {
					b.Fatal("bad generator output")
				}
			}
		})
	}
}

// BenchmarkFig10VaryW is Figure 10: latency vs the number of time spans.
func BenchmarkFig10VaryW(b *testing.B) {
	db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.1,
		workload.DeleteOptions{}, encoding.CodecGorilla)
	for _, w := range []int{10, 100, 1000, 10000} {
		q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: w}
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			forOperators(b, func(b *testing.B, useLSM bool) {
				db.query(b, q, useLSM, intm4lsm.Options{})
			})
		})
	}
}

// BenchmarkFig11VaryRange is Figure 11: latency vs the query range length.
func BenchmarkFig11VaryRange(b *testing.B) {
	db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.1,
		workload.DeleteOptions{}, encoding.CodecGorilla)
	full := db.tqe - db.tqs
	for _, frac := range []int{16, 4, 1} { // 1/16, 1/4, 1/1 of the range
		q := m4.Query{Tqs: db.tqs, Tqe: db.tqs + full/int64(frac), W: 100}
		b.Run(fmt.Sprintf("range=1_%d", frac), func(b *testing.B) {
			forOperators(b, func(b *testing.B, useLSM bool) {
				db.query(b, q, useLSM, intm4lsm.Options{})
			})
		})
	}
}

// BenchmarkFig12VaryOverlap is Figure 12: latency vs chunk overlap.
func BenchmarkFig12VaryOverlap(b *testing.B) {
	for _, overlap := range []float64{0, 0.25, 0.5} {
		db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, overlap,
			workload.DeleteOptions{}, encoding.CodecGorilla)
		q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 100}
		b.Run(fmt.Sprintf("overlap=%.0f%%", overlap*100), func(b *testing.B) {
			forOperators(b, func(b *testing.B, useLSM bool) {
				db.query(b, q, useLSM, intm4lsm.Options{})
			})
		})
	}
}

// BenchmarkFig13VaryDeletePct is Figure 13: latency vs delete frequency.
func BenchmarkFig13VaryDeletePct(b *testing.B) {
	nChunks := benchPoints / benchChunkSize
	for _, pct := range []float64{0, 0.25, 0.5} {
		db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.1,
			workload.DeleteOptions{Count: int(float64(nChunks) * pct), RangeMillis: 60_000, Seed: 7},
			encoding.CodecGorilla)
		q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 100}
		b.Run(fmt.Sprintf("deletes=%.0f%%", pct*100), func(b *testing.B) {
			forOperators(b, func(b *testing.B, useLSM bool) {
				db.query(b, q, useLSM, intm4lsm.Options{})
			})
		})
	}
}

// BenchmarkFig14VaryDeleteRange is Figure 14: latency vs delete range.
func BenchmarkFig14VaryDeleteRange(b *testing.B) {
	nChunks := benchPoints / benchChunkSize
	chunkSpan := int64(benchChunkSize) * workload.KOB().IntervalMs
	for _, mult := range []float64{0.5, 2, 8} {
		db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.1,
			workload.DeleteOptions{Count: nChunks / 10, RangeMillis: int64(float64(chunkSpan) * mult), Seed: 7},
			encoding.CodecGorilla)
		q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 100}
		b.Run(fmt.Sprintf("rangeMult=%g", mult), func(b *testing.B) {
			forOperators(b, func(b *testing.B, useLSM bool) {
				db.query(b, q, useLSM, intm4lsm.Options{})
			})
		})
	}
}

// BenchmarkM4LSMParallel sweeps the worker count of the parallel M4-LSM
// operator on an overlap-and-delete-heavy state with w=1000 (the shape
// where the span×G task fan-out has real work per task). Speedup over the
// parallelism=1 run is bounded by GOMAXPROCS; results are byte-identical
// and ChunksLoaded is constant across the sweep (singleflight dedupe).
func BenchmarkM4LSMParallel(b *testing.B) {
	nChunks := benchPoints / benchChunkSize
	db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.3,
		workload.DeleteOptions{Count: nChunks / 5, RangeMillis: 60_000, Seed: 7},
		encoding.CodecGorilla)
	q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 1000}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			db.query(b, q, true, intm4lsm.Options{Parallelism: par})
		})
	}
}

// BenchmarkM4UDFParallel is the same sweep for the baseline's per-span-block
// parallel scan.
func BenchmarkM4UDFParallel(b *testing.B) {
	nChunks := benchPoints / benchChunkSize
	db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.3,
		workload.DeleteOptions{Count: nChunks / 5, RangeMillis: 60_000, Seed: 7},
		encoding.CodecGorilla)
	q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 1000}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap, err := db.engine.Snapshot(db.id, q.Range())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m4udf.ComputeWithOptions(snap, q, m4udf.Options{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIndex compares step-regression probes against plain
// binary search inside the operator (DESIGN.md §6).
func BenchmarkAblationIndex(b *testing.B) {
	db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.5,
		workload.DeleteOptions{}, encoding.CodecGorilla)
	q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 100}
	b.Run("step-regression", func(b *testing.B) {
		db.query(b, q, true, intm4lsm.Options{})
	})
	b.Run("binary-search", func(b *testing.B) {
		db.query(b, q, true, intm4lsm.Options{DisableStepIndex: true})
	})
}

// BenchmarkAblationLazy compares lazy loading against eagerly
// materializing every overlapping chunk.
func BenchmarkAblationLazy(b *testing.B) {
	db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.2,
		workload.DeleteOptions{Count: 10, RangeMillis: 60_000, Seed: 7}, encoding.CodecGorilla)
	q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 100}
	b.Run("lazy", func(b *testing.B) {
		db.query(b, q, true, intm4lsm.Options{})
	})
	b.Run("eager", func(b *testing.B) {
		db.query(b, q, true, intm4lsm.Options{EagerLoad: true})
	})
}

// BenchmarkAblationPartialLoad compares timestamp-only probe loads against
// full chunk loads.
func BenchmarkAblationPartialLoad(b *testing.B) {
	db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.5,
		workload.DeleteOptions{}, encoding.CodecGorilla)
	q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 100}
	b.Run("partial", func(b *testing.B) {
		db.query(b, q, true, intm4lsm.Options{})
	})
	b.Run("full", func(b *testing.B) {
		db.query(b, q, true, intm4lsm.Options{DisablePartialLoad: true})
	})
}

// BenchmarkAblationCodec compares the Gorilla/delta codecs against plain
// encoding under the baseline (which decodes every chunk it loads).
func BenchmarkAblationCodec(b *testing.B) {
	for _, codec := range []encoding.Codec{encoding.CodecGorilla, encoding.CodecPlain} {
		db := buildBenchDB(b, workload.KOB(), benchPoints, benchChunkSize, 0.1,
			workload.DeleteOptions{}, codec)
		q := m4.Query{Tqs: db.tqs, Tqe: db.tqe, W: 100}
		b.Run(codec.String(), func(b *testing.B) {
			db.query(b, q, false, intm4lsm.Options{})
		})
	}
}

// BenchmarkMergeReader measures the substrate the baseline stands on: a
// full merge of the snapshot (the cost M4-LSM avoids).
func BenchmarkMergeReader(b *testing.B) {
	db := buildBenchDB(b, workload.MF03(), benchPoints, benchChunkSize, 0.3,
		workload.DeleteOptions{}, encoding.CodecGorilla)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := db.engine.Snapshot(db.id, series.TimeRange{Start: db.tqs, End: db.tqe})
		if err != nil {
			b.Fatal(err)
		}
		total := int64(0)
		it, err := mergeread.NewIterator(snap, series.TimeRange{Start: db.tqs, End: db.tqe})
		if err != nil {
			b.Fatal(err)
		}
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			total += p.T
		}
		if total == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkWritePath measures ingestion throughput including WAL and
// chunk-file flushes.
func BenchmarkWritePath(b *testing.B) {
	data := workload.MF03().Generate(benchPoints, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := lsm.Open(lsm.Options{Dir: b.TempDir(), FlushThreshold: 1000})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := e.Write("s", data...); err != nil {
			b.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.Close()
		b.StartTimer()
	}
	b.SetBytes(int64(len(data)) * 16)
}

// BenchmarkAblationCache compares cold queries against an engine with a
// warm chunk cache (interactive pan/zoom workloads re-read chunks).
func BenchmarkAblationCache(b *testing.B) {
	for _, cacheBytes := range []int64{0, 64 << 20} {
		name := "cold"
		if cacheBytes > 0 {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			data := workload.KOB().Generate(benchPoints, 42)
			e, err := lsm.Open(lsm.Options{
				Dir: b.TempDir(), FlushThreshold: benchChunkSize,
				DisableWAL: true, ChunkCacheBytes: cacheBytes,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if err := workload.Load(e, "KOB", data, workload.LoadOptions{
				ChunkSize: benchChunkSize, OverlapFraction: 0.1, Seed: 42,
			}); err != nil {
				b.Fatal(err)
			}
			q := m4.Query{Tqs: data[0].T, Tqe: data[len(data)-1].T + 1, W: 1000}
			db := &benchDB{engine: e, id: "KOB", tqs: q.Tqs, tqe: q.Tqe}
			db.query(b, q, true, intm4lsm.Options{})
		})
	}
}
