// Package repr names the time-series reductions the paper positions M4
// against (§5.1) for the pixel-error experiments: per-span MinMax,
// systematic sampling, Piecewise Aggregate Approximation (PAA), and — since
// the representation-operator generalization — LTTB and MinMaxLTTB. It
// exists to reproduce the motivating claim that M4 is the only one with
// zero pixel error in two-color line charts (§1); the pixel-error
// experiment renders each reduction and diffs it against the full series.
//
// The M4/MinMax/LTTB/MinMaxLTTB reductions delegate to internal/reprops —
// the same implementations the engine executes through m4lsm and m4udf —
// so the experiment measures exactly what the query path produces. Only
// Sampling and PAA (comparison-only, never executable) live here.
package repr

import (
	"m4lsm/internal/m4"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
)

// Reduce is a reduction technique: given the span structure of a query
// and the merged series, return the reduced point set to render.
type Reduce func(q m4.Query, s series.Series) (series.Series, error)

// M4 keeps the first/last/bottom/top points per span — at most 4w points,
// error-free in two-color line charts.
func M4(q m4.Query, s series.Series) (series.Series, error) {
	return reprops.Reduce(reprops.Spec{Kind: reprops.KindM4}, q, s)
}

// MinMax keeps only the bottom and top points per span — at most 2w
// points. It preserves the vertical extent of each pixel column but loses
// the inter-column join pixels.
func MinMax(q m4.Query, s series.Series) (series.Series, error) {
	return reprops.Reduce(reprops.Spec{Kind: reprops.KindMinMax}, q, s)
}

// LTTB keeps at most w points by Largest-Triangle-Three-Buckets selection
// over the clipped series.
func LTTB(q m4.Query, s series.Series) (series.Series, error) {
	return reprops.Reduce(reprops.Spec{Kind: reprops.KindLTTB}, q, s)
}

// MinMaxLTTB keeps at most w points: MinMax preselection at the default
// ratio feeding LTTB.
func MinMaxLTTB(q m4.Query, s series.Series) (series.Series, error) {
	return reprops.Reduce(reprops.Spec{Kind: reprops.KindMinMaxLTTB}, q, s)
}

// Sample keeps the first point of each span (systematic sampling with one
// point per pixel column, the classic dashboard downsampler).
func Sample(q m4.Query, s series.Series) (series.Series, error) {
	aggs, err := m4.ComputeSeries(q, s)
	if err != nil {
		return nil, err
	}
	var out series.Series
	for _, a := range aggs {
		if !a.Empty {
			out = append(out, a.First)
		}
	}
	return out, nil
}

// PAA replaces each span with its mean value placed at the span's first
// timestamp (Piecewise Aggregate Approximation, Keogh et al.).
func PAA(q m4.Query, s series.Series) (series.Series, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sums := make([]float64, q.W)
	counts := make([]int64, q.W)
	firsts := make([]int64, q.W)
	for _, p := range s {
		i := q.SpanIndex(p.T)
		if i < 0 {
			continue
		}
		if counts[i] == 0 {
			firsts[i] = p.T
		}
		sums[i] += p.V
		counts[i]++
	}
	var out series.Series
	for i := 0; i < q.W; i++ {
		if counts[i] == 0 {
			continue
		}
		out = append(out, series.Point{T: firsts[i], V: sums[i] / float64(counts[i])})
	}
	return out, nil
}

// Techniques returns the named reductions in presentation order.
func Techniques() []struct {
	Name string
	Fn   Reduce
} {
	return []struct {
		Name string
		Fn   Reduce
	}{
		{"M4", M4},
		{"MinMax", MinMax},
		{"LTTB", LTTB},
		{"MinMaxLTTB", MinMaxLTTB},
		{"Sampling", Sample},
		{"PAA", PAA},
	}
}
