// Package govern is the resource-governance layer: per-query budgets
// (chunk loads, decoded points, a wall-clock deadline), an admission gate
// with a bounded wait queue for the server's query endpoints, and a
// deterministic jittered backoff for retrying transient reads.
//
// Everything is nil-safe in the style of internal/obs: a nil *Budget
// charges nothing and never trips, a nil *Gate admits everything. Library
// code therefore threads budgets unconditionally and pays one pointer
// check when governance is off.
package govern

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExceeded is the sentinel every budget violation unwraps to.
// Callers branch on errors.Is(err, ErrBudgetExceeded); the concrete
// *BudgetError carries which limit tripped.
var ErrBudgetExceeded = errors.New("query budget exceeded")

// BudgetError reports one tripped limit. It unwraps to ErrBudgetExceeded.
type BudgetError struct {
	Kind  string // "chunks", "points" or "deadline"
	Limit int64  // configured limit (milliseconds for "deadline")
	Used  int64  // observed value when the limit tripped
}

func (e *BudgetError) Error() string {
	if e.Kind == "deadline" {
		return fmt.Sprintf("query budget exceeded: deadline %dms passed (%dms elapsed)", e.Limit, e.Used)
	}
	return fmt.Sprintf("query budget exceeded: %s limit %d reached (%d used)", e.Kind, e.Limit, e.Used)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Limits configures a Budget. Zero fields mean "unlimited" for that axis;
// an all-zero Limits yields a nil Budget from NewBudget.
type Limits struct {
	// MaxChunks bounds chunk loads (full-chunk and time-block loads both
	// count: each is one I/O the metadata pruning failed to avoid).
	MaxChunks int64
	// MaxPoints bounds decoded points across all loads.
	MaxPoints int64
	// Timeout bounds wall-clock time from NewBudget. It is a soft
	// deadline: in non-strict mode the operators stop loading chunks and
	// degrade to metadata-only answers instead of aborting.
	Timeout time.Duration
}

// Merge returns l with any zero field replaced by the corresponding field
// of def — per-statement clauses tighten server defaults without erasing
// them.
func (l Limits) Merge(def Limits) Limits {
	if l.MaxChunks == 0 {
		l.MaxChunks = def.MaxChunks
	}
	if l.MaxPoints == 0 {
		l.MaxPoints = def.MaxPoints
	}
	if l.Timeout == 0 {
		l.Timeout = def.Timeout
	}
	return l
}

// zero reports whether no limit is set.
func (l Limits) zero() bool {
	return l.MaxChunks == 0 && l.MaxPoints == 0 && l.Timeout == 0
}

// Budget is the live accounting state of one query. All methods are safe
// for concurrent use and on a nil receiver (no-ops that never trip).
type Budget struct {
	limits   Limits
	start    time.Time
	deadline time.Time // zero when Timeout is unset

	chunks atomic.Int64
	points atomic.Int64
}

// NewBudget starts a budget clock for one query. An all-zero Limits
// returns nil: the unbudgeted fast path stays a pointer check.
func NewBudget(l Limits) *Budget {
	if l.zero() {
		return nil
	}
	b := &Budget{limits: l, start: time.Now()}
	if l.Timeout > 0 {
		b.deadline = b.start.Add(l.Timeout)
	}
	return b
}

// ChargeChunk accounts one chunk load decoding `points` points, checking
// every configured limit (including the deadline — loads are the slow
// path, so charging them bounds wall-clock too). It returns a
// *BudgetError as soon as a limit would be exceeded; the load must not
// proceed.
func (b *Budget) ChargeChunk(points int64) error {
	if b == nil {
		return nil
	}
	if err := b.CheckDeadline(); err != nil {
		return err
	}
	c := b.chunks.Add(1)
	if b.limits.MaxChunks > 0 && c > b.limits.MaxChunks {
		return &BudgetError{Kind: "chunks", Limit: b.limits.MaxChunks, Used: c}
	}
	p := b.points.Add(points)
	if b.limits.MaxPoints > 0 && p > b.limits.MaxPoints {
		return &BudgetError{Kind: "points", Limit: b.limits.MaxPoints, Used: p}
	}
	return nil
}

// CheckDeadline reports whether the budget's wall-clock deadline has
// passed. Operators call it at task boundaries so a strict query aborts
// promptly instead of queueing more work.
func (b *Budget) CheckDeadline() error {
	if b == nil || b.deadline.IsZero() {
		return nil
	}
	if now := time.Now(); now.After(b.deadline) {
		return &BudgetError{
			Kind:  "deadline",
			Limit: b.limits.Timeout.Milliseconds(),
			Used:  now.Sub(b.start).Milliseconds(),
		}
	}
	return nil
}

// Used returns the chunks and points charged so far (0, 0 on nil).
func (b *Budget) Used() (chunks, points int64) {
	if b == nil {
		return 0, 0
	}
	return b.chunks.Load(), b.points.Load()
}

// limitsKey carries server-default Limits through a context.Context so
// the m4ql executor can budget queries without a signature change.
type limitsKey struct{}

// WithLimits attaches default per-query limits to ctx.
func WithLimits(ctx context.Context, l Limits) context.Context {
	if l.zero() {
		return ctx
	}
	return context.WithValue(ctx, limitsKey{}, l)
}

// LimitsOf returns the limits attached by WithLimits, or the zero Limits.
func LimitsOf(ctx context.Context) Limits {
	l, _ := ctx.Value(limitsKey{}).(Limits)
	return l
}
