// Package m4ql implements the SQL-ish surface of the M4 representation
// query (Appendix A.1 of the paper): a tokenizer, a recursive-descent
// parser and an executor over the LSM engine.
//
// Two equivalent query forms are accepted (keywords are case-insensitive):
//
//	SELECT M4(*) FROM root.kob
//	WHERE time >= 0 AND time < 1000000
//	GROUP BY SPANS(1000) USING LSM
//
//	SELECT FirstTime(v), FirstValue(v), LastTime(v), LastValue(v),
//	       BottomTime(v), BottomValue(v), TopTime(v), TopValue(v)
//	FROM root.kob WHERE time >= 0 AND time < 1000000
//	GROUP BY SPANS(1000)
//
// USING selects the operator: LSM (default, the paper's M4-LSM) or UDF
// (the merge-everything baseline).
package m4ql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokStar
	tokColon
	tokGE // >=
	tokLT // <
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes the query.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokGE, ">=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("m4ql: position %d: expected >=, got lone >", i)
			}
		case c == '<':
			if i+1 < len(input) && input[i+1] == '=' {
				return nil, fmt.Errorf("m4ql: position %d: <= is not supported; the query range is half open, use <", i)
			}
			toks = append(toks, token{tokLT, "<", i})
			i++
		case c == '\'' || c == '"':
			quote := byte(c)
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("m4ql: position %d: unterminated string", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c == '-' || unicode.IsDigit(c):
			j := i + 1
			for j < len(input) && (unicode.IsDigit(rune(input[j]))) {
				j++
			}
			if j == i+1 && c == '-' {
				return nil, fmt.Errorf("m4ql: position %d: lone -", i)
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(input) {
				r := rune(input[j])
				if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
					j++
					continue
				}
				break
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("m4ql: position %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

// keywordIs compares an identifier token to a keyword, case-insensitively.
func keywordIs(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
