package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// Trace collects the execution structure of one query: named phases, the
// per-(span, G) task timings of the operator's worker pool, named
// counters (I/O stats, cache hits) and degradation warnings. A Trace is
// shared by every worker goroutine of the query, so all methods are safe
// for concurrent use; the nil *Trace discards everything, which is the
// fast path when tracing is off.
type Trace struct {
	id    string
	start time.Time

	mu       sync.Mutex
	phases   []PhaseTiming
	tasks    []TaskTiming
	counters map[string]int64
	warnings []string
}

// PhaseTiming is one sequential stage of query execution.
type PhaseTiming struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// TaskTiming is one unit of worker-pool execution: for M4-LSM a (span, G)
// task, for M4-UDF a chunk load or span-block scan.
type TaskTiming struct {
	Span int    `json:"span"`
	G    string `json:"g"`
	Ns   int64  `json:"ns"`
}

// Snapshot is the JSON form of a completed trace, returned next to query
// results. TaskTotalNs is the exact sum of Tasks[].Ns — worker busy time,
// which exceeds wall time ElapsedNs when tasks ran in parallel.
type Snapshot struct {
	ID          string           `json:"id"`
	ElapsedNs   int64            `json:"elapsedNs"`
	Phases      []PhaseTiming    `json:"phases,omitempty"`
	Tasks       []TaskTiming     `json:"tasks,omitempty"`
	TaskTotalNs int64            `json:"taskTotalNs"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	Warnings    []string         `json:"warnings,omitempty"`
}

type traceKey struct{}

// NewTraceID returns a short random hex identifier, also used as the
// request id of the HTTP layer.
func NewTraceID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-unseeded"
	}
	return hex.EncodeToString(b[:])
}

// WithTrace arms tracing on the context: operators executing under the
// returned context record phases and task timings into the returned
// Trace.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	tr := &Trace{id: NewTraceID(), start: time.Now(), counters: map[string]int64{}}
	return context.WithValue(ctx, traceKey{}, tr), tr
}

// TraceOf returns the context's trace, or nil when tracing is off.
func TraceOf(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// ID returns the trace identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Phase records one sequential stage's duration.
func (t *Trace) Phase(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phases = append(t.phases, PhaseTiming{Name: name, Ns: d.Nanoseconds()})
	t.mu.Unlock()
}

// Task records one worker-pool task's duration.
func (t *Trace) Task(span int, g string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tasks = append(t.tasks, TaskTiming{Span: span, G: g, Ns: d.Nanoseconds()})
	t.mu.Unlock()
}

// SetCounter stores one named counter (overwriting an earlier value).
func (t *Trace) SetCounter(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] = v
	t.mu.Unlock()
}

// SetCounters stores a batch of named counters.
func (t *Trace) SetCounters(m map[string]int64) {
	if t == nil || len(m) == 0 {
		return
	}
	t.mu.Lock()
	for k, v := range m {
		t.counters[k] = v
	}
	t.mu.Unlock()
}

// Warn appends degradation warnings to the trace.
func (t *Trace) Warn(warnings ...string) {
	if t == nil || len(warnings) == 0 {
		return
	}
	t.mu.Lock()
	t.warnings = append(t.warnings, warnings...)
	t.mu.Unlock()
}

// Finish renders the trace for the result payload. Tasks are ordered by
// (span, G) so the output is deterministic whatever the worker schedule;
// ElapsedNs is wall time since WithTrace.
func (t *Trace) Finish() *Snapshot {
	if t == nil {
		return nil
	}
	elapsed := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &Snapshot{
		ID:        t.id,
		ElapsedNs: elapsed.Nanoseconds(),
		Phases:    append([]PhaseTiming(nil), t.phases...),
		Tasks:     append([]TaskTiming(nil), t.tasks...),
		Warnings:  append([]string(nil), t.warnings...),
	}
	sortTasks(snap.Tasks)
	for _, task := range snap.Tasks {
		snap.TaskTotalNs += task.Ns
	}
	if len(t.counters) > 0 {
		snap.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			snap.Counters[k] = v
		}
	}
	return snap
}

func sortTasks(tasks []TaskTiming) {
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Span != tasks[j].Span {
			return tasks[i].Span < tasks[j].Span
		}
		return tasks[i].G < tasks[j].G
	})
}
