// Command m4server serves a database directory over HTTP.
//
// Endpoints:
//
//	GET  /healthz                         engine status
//	GET  /series                          stored series ids
//	GET  /query?q=<m4ql>                  run an M4 query, JSON result
//	POST /query {"query": "<m4ql>"}       same, query in the body
//	GET  /render?series=&tqs=&tqe=&w=&h=  two-color PNG line chart
//
// Example:
//
//	m4server -dir ./db -addr :8086
//	curl 'localhost:8086/query?q=SELECT+M4(*)+FROM+s+WHERE+time+>=+0+AND+time+<+1000+GROUP+BY+SPANS(100)'
package main

import (
	"flag"
	"log"
	"net/http"

	"m4lsm/internal/lsm"
	"m4lsm/internal/server"
)

func main() {
	var (
		dir  = flag.String("dir", "m4db", "database directory")
		addr = flag.String("addr", ":8086", "listen address")
	)
	flag.Parse()
	engine, err := lsm.Open(lsm.Options{Dir: *dir})
	if err != nil {
		log.Fatalf("m4server: %v", err)
	}
	defer engine.Close()
	log.Printf("m4server: serving %s on %s", *dir, *addr)
	if err := http.ListenAndServe(*addr, server.New(engine)); err != nil {
		log.Fatalf("m4server: %v", err)
	}
}
