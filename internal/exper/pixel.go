package exper

import (
	"fmt"
	"io"

	"m4lsm/internal/m4"
	"m4lsm/internal/repr"
	"m4lsm/internal/viz"
)

// PixelRow is one measurement of the Figure 1 reproduction: how many
// pixels a reduction technique gets wrong relative to rendering the full
// series.
type PixelRow struct {
	Dataset    string
	Technique  string
	PointsIn   int
	PointsKept int
	LitPixels  int // pixels lit by the full series
	PixelError int // differing pixels vs. the full rendering
}

// RunFig1 reproduces the motivation of §1/§5.1: render each dataset at
// 1000x500 pixels (Fig. 1's canvas) from the full series and from each
// reduction, and count differing pixels. M4's error must be zero.
func RunFig1(cfg Config) ([]PixelRow, error) {
	cfg = cfg.withDefaults()
	const width, height = 1000, 500
	var out []PixelRow
	for _, p := range cfg.Datasets {
		n := int(float64(p.Points) * cfg.Scale)
		if n < 10 {
			n = 10
		}
		data := p.Generate(n, cfg.Seed)
		q := m4.Query{Tqs: data[0].T, Tqe: data[len(data)-1].T + 1, W: width}
		vp := viz.ViewportFor(data, q.Tqs, q.Tqe)
		full := viz.Rasterize(data, vp, width, height)
		for _, tech := range repr.Techniques() {
			reduced, err := tech.Fn(q, data)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.Name, tech.Name, err)
			}
			canvas := viz.Rasterize(reduced, vp, width, height)
			out = append(out, PixelRow{
				Dataset:    p.Name,
				Technique:  tech.Name,
				PointsIn:   len(data),
				PointsKept: len(reduced),
				LitPixels:  full.Count(),
				PixelError: viz.Diff(full, canvas),
			})
		}
	}
	return out, nil
}

// WriteFig1 renders the pixel-error comparison.
func WriteFig1(w io.Writer, rows []PixelRow) {
	fmt.Fprintln(w, "== Figure 1: pixel error of reductions at 1000x500 (0 = error-free) ==")
	fmt.Fprintf(w, "%-12s %-10s %10s %10s %10s %12s\n",
		"Dataset", "Technique", "points", "kept", "lit px", "pixel error")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %10d %10d %10d %12d\n",
			r.Dataset, r.Technique, r.PointsIn, r.PointsKept, r.LitPixels, r.PixelError)
	}
}
