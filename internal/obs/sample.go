package obs

import "math"

// SampleKind discriminates the exposition type of one Sample.
type SampleKind uint8

const (
	// SampleCounter covers both atomic and func-backed counters.
	SampleCounter SampleKind = iota
	// SampleGauge covers both atomic and func-backed gauges.
	SampleGauge
	// SampleHistogram is a fixed-bucket distribution.
	SampleHistogram
)

// Sample is one instrument's state at a point in time, the unit the
// self-observability sampler (internal/obs/history) persists into the
// engine. Counters and gauges carry Value; histograms carry Hist.
type Sample struct {
	Name   string
	Labels []string // k1, v1, k2, v2, ... as registered
	Kind   SampleKind

	Value float64          // counters and gauges
	Hist  *HistogramSample // histograms only
}

// HistogramSample is a histogram's state: per-bucket cumulative counts
// (len(Bounds)+1, the last being the +Inf overflow), total count and sum.
type HistogramSample struct {
	Bounds []float64
	Counts []int64 // cumulative, Counts[i] = observations <= Bounds[i]
	Count  int64
	Sum    float64
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts
// with linear interpolation inside the owning bucket, the standard
// fixed-bucket estimate (what Prometheus' histogram_quantile computes).
// Conventions for the edges: an empty histogram reports 0 (never NaN — the
// value is JSON-encoded); a quantile landing in the +Inf overflow bucket
// reports the highest finite bound (the histogram cannot resolve beyond
// it); the first bucket interpolates from 0.
func (h *HistogramSample) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	// Find the first bucket whose cumulative count reaches the rank.
	for i, bound := range h.Bounds {
		cum := float64(h.Counts[i])
		if cum < rank {
			continue
		}
		lower := 0.0
		prev := 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
			prev = float64(h.Counts[i-1])
		}
		inBucket := cum - prev
		if inBucket <= 0 {
			return bound
		}
		return lower + (bound-lower)*(rank-prev)/inBucket
	}
	// Rank lands in the +Inf overflow bucket.
	return h.Bounds[len(h.Bounds)-1]
}

// Quantile estimates the q-quantile of the histogram's observations so far
// (see HistogramSample.Quantile for the conventions). 0 on nil.
func (h *Histogram) Quantile(q float64) float64 {
	return h.sample().Quantile(q)
}

// Quantiles estimates several quantiles from one consistent bucket
// snapshot.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	hs := h.sample()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = hs.Quantile(q)
	}
	return out
}

// sample snapshots the histogram's buckets (nil receiver: empty sample).
func (h *Histogram) sample() *HistogramSample {
	if h == nil {
		return nil
	}
	return h.in.hist.sample()
}

func (b *histogramBuckets) sample() *HistogramSample {
	hs := &HistogramSample{
		Bounds: b.bounds,
		Counts: make([]int64, len(b.bounds)+1),
		Count:  b.count.Load(),
		Sum:    math.Float64frombits(b.sumBits.Load()),
	}
	cum := int64(0)
	for i := range b.counts {
		cum += b.counts[i].Load()
		hs.Counts[i] = cum
	}
	return hs
}

// Samples walks every instrument and returns its current state, ordered by
// (name, labels) — the same deterministic order as the Prometheus
// exposition, which the history sampler relies on for a stable series set.
// A nil registry returns nil.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	ins := r.sorted()
	out := make([]Sample, 0, len(ins))
	for _, in := range ins {
		s := Sample{Name: in.name, Labels: in.labelKVs}
		switch in.kind {
		case kindCounter:
			s.Kind = SampleCounter
			s.Value = float64(in.val.Load())
		case kindGauge:
			s.Kind = SampleGauge
			s.Value = float64(in.val.Load())
		case kindFuncCounter:
			s.Kind = SampleCounter
			s.Value = in.fn()
		case kindFuncGauge:
			s.Kind = SampleGauge
			s.Value = in.fn()
		case kindHistogram:
			s.Kind = SampleHistogram
			s.Hist = in.hist.sample()
		}
		out = append(out, s)
	}
	return out
}
