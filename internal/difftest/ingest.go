package difftest

import (
	"fmt"
	"math/rand"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/series"
)

// Ingest-equivalence mode: the batched ingestion path (Engine.WriteBatch —
// bounded per-shard queues, append workers, group-committed WAL records)
// must be observationally identical to the point-by-point Write path. Twin
// engines consume the same seeded workload in lockstep — engine A writes
// every point individually, engine B ships the same points as multi-series
// batches — interleaved with the same deletes, flushes and close-and-reopen
// cycles (reopen replays B's batch-encoded WAL records). Every M4 query
// shape must then agree bit-for-bit between the twins and with the oracle.
// Values are tie-free (injective t→v), so representative points are forced
// and exact equality is the right assertion.

// IngestCase is one twin-engine workload.
type IngestCase struct {
	Seed   int64
	Oracle Oracle

	a, b         *lsm.Engine
	dirA, dirB   string
	shards       int
	ids          []string
	tMax         int64
	value        func(*rand.Rand, int64) float64
	BatchEntries int64 // entries shipped through WriteBatch, for vacuity checks
}

// GenerateIngest builds and applies one seeded twin workload.
func GenerateIngest(seed int64, dirA, dirB string) (*IngestCase, error) {
	rng := rand.New(rand.NewSource(seed))
	c := &IngestCase{
		Seed:   seed,
		Oracle: Oracle{},
		dirA:   dirA,
		dirB:   dirB,
		shards: 1 + rng.Intn(4),
		tMax:   int64(200 + rng.Intn(800)),
	}
	c.value = tieFreeValue(c.tMax)
	nSeries := 1 + rng.Intn(3)
	for s := 0; s < nSeries; s++ {
		c.ids = append(c.ids, fmt.Sprintf("root.g%d", s))
	}
	if err := c.open(); err != nil {
		return nil, err
	}
	steps := 30 + rng.Intn(40)
	for i := 0; i < steps; i++ {
		if err := c.step(rng); err != nil {
			c.Close()
			return nil, fmt.Errorf("seed %d step %d: %w", seed, i, err)
		}
	}
	return c, nil
}

func (c *IngestCase) open() error {
	// Tiny ingest queues on the batched twin so the workload regularly rides
	// the backpressure boundary, not just the happy path.
	a, err := lsm.Open(lsm.Options{Dir: c.dirA, FlushThreshold: 16, NumShards: c.shards})
	if err != nil {
		return err
	}
	b, err := lsm.Open(lsm.Options{Dir: c.dirB, FlushThreshold: 16, NumShards: c.shards,
		IngestQueuePoints: 64, WALGroupSize: 4})
	if err != nil {
		a.Close()
		return err
	}
	c.a, c.b = a, b
	return nil
}

// Close releases both engines, reporting the first error.
func (c *IngestCase) Close() error {
	errA := c.a.Close()
	errB := c.b.Close()
	if errA != nil {
		return errA
	}
	return errB
}

func (c *IngestCase) step(rng *rand.Rand) error {
	switch pick(rng, []int{55, 15, 15, 15}) {
	case 0: // multi-series write burst: A point-by-point, B one batch
		n := 1 + rng.Intn(len(c.ids))
		entries := make([]lsm.BatchEntry, 0, n)
		used := map[string]bool{}
		for len(entries) < n {
			id := c.ids[rng.Intn(len(c.ids))]
			if used[id] {
				continue
			}
			used[id] = true
			pts := make([]series.Point, 1+rng.Intn(10))
			for i := range pts {
				t := rng.Int63n(c.tMax)
				pts[i] = series.Point{T: t, V: c.value(rng, t)}
			}
			entries = append(entries, lsm.BatchEntry{SeriesID: id, Points: pts})
		}
		for _, e := range entries {
			for _, p := range e.Points {
				if err := c.a.Write(e.SeriesID, p); err != nil {
					return fmt.Errorf("point write: %w", err)
				}
				c.Oracle.write(e.SeriesID, p)
			}
		}
		if err := c.b.WriteBatch(entries...); err != nil {
			return fmt.Errorf("batch write: %w", err)
		}
		c.BatchEntries += int64(len(entries))
	case 1: // range delete on both
		id := c.ids[rng.Intn(len(c.ids))]
		start := rng.Int63n(c.tMax)
		end := start + rng.Int63n(c.tMax/4+1)
		if err := c.a.Delete(id, start, end); err != nil {
			return err
		}
		if err := c.b.Delete(id, start, end); err != nil {
			return err
		}
		c.Oracle.delete(id, start, end)
	case 2: // flush both
		if err := c.a.Flush(); err != nil {
			return err
		}
		return c.b.Flush()
	case 3: // close and reopen both: B replays batch-encoded WAL records
		if err := c.Close(); err != nil {
			return err
		}
		if rng.Intn(2) == 0 {
			c.shards = 1 + rng.Intn(4)
		}
		return c.open()
	}
	return nil
}

// Check answers every query shape on both twins and requires exact span
// equality twin-to-twin and against the oracle reference.
func (c *IngestCase) Check() error {
	queries := []m4.Query{
		{Tqs: 0, Tqe: c.tMax, W: 7},
		{Tqs: 0, Tqe: c.tMax, W: 31},
		{Tqs: c.tMax / 4, Tqe: c.tMax / 2, W: 5},
		{Tqs: c.tMax / 3, Tqe: 2 * c.tMax, W: 13},
	}
	for _, q := range queries {
		for _, id := range c.ids {
			ref, err := m4.ComputeSeries(q, c.Oracle.Merged(id))
			if err != nil {
				return fmt.Errorf("seed %d: oracle %s: %w", c.Seed, id, err)
			}
			snapA, err := c.a.Snapshot(id, q.Range())
			if err != nil {
				return fmt.Errorf("seed %d: snapshot A %s: %w", c.Seed, id, err)
			}
			aggsA, err := m4lsm.Compute(snapA, q)
			if err != nil {
				return fmt.Errorf("seed %d: m4lsm A %s %+v: %w", c.Seed, id, q, err)
			}
			snapB, err := c.b.Snapshot(id, q.Range())
			if err != nil {
				return fmt.Errorf("seed %d: snapshot B %s: %w", c.Seed, id, err)
			}
			aggsB, err := m4lsm.Compute(snapB, q)
			if err != nil {
				return fmt.Errorf("seed %d: m4lsm B %s %+v: %w", c.Seed, id, q, err)
			}
			for i := range ref {
				if aggsA[i] != ref[i] {
					return fmt.Errorf("seed %d: %s %+v span %d: point-by-point %v != oracle %v",
						c.Seed, id, q, i, aggsA[i], ref[i])
				}
				if aggsB[i] != ref[i] {
					return fmt.Errorf("seed %d: %s %+v span %d: batched %v != oracle %v",
						c.Seed, id, q, i, aggsB[i], ref[i])
				}
			}
		}
	}
	return nil
}

// RunIngestDiff generates, checks and closes one twin case; the returned
// error names the seed on any failure. The bench harness reuses it as its
// in-sweep differential cross-check.
func RunIngestDiff(seed int64, dirA, dirB string) error {
	c, err := GenerateIngest(seed, dirA, dirB)
	if err != nil {
		return err
	}
	defer c.Close()
	return c.Check()
}
