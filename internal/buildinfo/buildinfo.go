// Package buildinfo carries the binary's version identity. The Makefile
// injects Version and Commit via -ldflags -X; binaries built with plain
// `go build` fall back to the module version and VCS revision stamped by
// the Go toolchain, and to "dev"/"unknown" when neither is available.
package buildinfo

import (
	"runtime"
	"runtime/debug"

	"m4lsm/internal/obs"
)

// Overridden at link time:
//
//	go build -ldflags "-X m4lsm/internal/buildinfo.Version=v1.2.3 \
//	                   -X m4lsm/internal/buildinfo.Commit=abc1234"
var (
	Version = ""
	Commit  = ""
)

// Info resolves the effective version and commit, preferring the ldflags
// values and falling back to the toolchain's embedded build info.
func Info() (version, commit string) {
	version, commit = Version, Commit
	if version != "" && commit != "" {
		return
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if version == "" && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		if commit == "" {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					commit = s.Value
				}
			}
		}
	}
	if version == "" {
		version = "dev"
	}
	if commit == "" {
		commit = "unknown"
	}
	return
}

// String renders "version (commit, goVersion)" for -version flags.
func String() string {
	v, c := Info()
	return v + " (" + c + ", " + runtime.Version() + ")"
}

// Register exposes the identity as the conventional build_info metric: a
// constant-1 gauge whose labels carry the version and commit, so every
// scrape (and the self-metrics history) records which build produced it.
func Register(reg *obs.Registry) {
	v, c := Info()
	reg.Gauge("build_info", "commit", c, "version", v).Set(1)
}
