package lsm

// Debugging and verification aids for the rollup pyramid. The differential
// harness calls PyrCheckInvariants after every generated workload; both
// helpers exist to turn "a cell served a wrong value" failures into a
// pinpointed level/index instead of a span-level mismatch.

import (
	"fmt"
	"strings"
)

// PyrDebugDump renders the pyramid state for one series: per level the
// coverage and the cells overlapping [lo, hi) at that level's granularity,
// plus the stale set.
func (e *Engine) PyrDebugDump(id string, lo, hi int64) string {
	if e.pyr == nil {
		return "<no pyramid>"
	}
	p := e.pyr
	p.mu.RLock()
	defer p.mu.RUnlock()
	sp := p.series[id]
	if sp == nil {
		return "<no series entry>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "extent=[%d,%d] hasExtent=%v stale=%v\n", sp.minT, sp.maxT, sp.hasExtent, sp.stale)
	for _, lv := range sp.levels {
		fmt.Fprintf(&b, "L%d gen=%d cover=%v cells:", lv.log, lv.gen, lv.cover)
		for idx := lo >> lv.log; idx <= (hi-1)>>lv.log; idx++ {
			c, ok := lv.cells[idx]
			cov := lv.cover.contains(idx, idx+1)
			if !ok && !cov {
				continue
			}
			if !ok {
				fmt.Fprintf(&b, " [%d,%d)cov=%v:empty", idx<<lv.log, (idx+1)<<lv.log, cov)
				continue
			}
			fmt.Fprintf(&b, " [%d,%d)cov=%v:{f=%v l=%v b=%v t=%v}", idx<<lv.log, (idx+1)<<lv.log, cov, c.first, c.last, c.bottom, c.top)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PyrCheckInvariants verifies, for one series, that every covered parent
// cell has both children covered and equals the combination of its
// children's cells. Returns the first violation found.
func (e *Engine) PyrCheckInvariants(id string) error {
	if e.pyr == nil {
		return nil
	}
	p := e.pyr
	p.mu.RLock()
	defer p.mu.RUnlock()
	sp := p.series[id]
	if sp == nil {
		return nil
	}
	for li := 1; li < len(sp.levels); li++ {
		child, parent := sp.levels[li-1], sp.levels[li]
		for _, r := range parent.cover {
			for idx := r.lo; idx < r.hi; idx++ {
				if !child.cover.contains(idx<<1, (idx+1)<<1) {
					return fmt.Errorf("%s L%d cell %d [%d,%d) covered but child L%d not fully covered (child cover %v)",
						id, parent.log, idx, idx<<parent.log, (idx+1)<<parent.log, child.log, child.cover)
				}
				a, aok := child.cells[idx<<1]
				bb, bok := child.cells[idx<<1|1]
				pc, pok := parent.cells[idx]
				var want pyrCell
				var wok bool
				switch {
				case aok && bok:
					want, wok = combineCells(a, bb), true
				case aok:
					want, wok = a, true
				case bok:
					want, wok = bb, true
				}
				if wok != pok || (wok && want != pc) {
					return fmt.Errorf("%s L%d cell %d [%d,%d): have ok=%v %+v, want ok=%v %+v",
						id, parent.log, idx, idx<<parent.log, (idx+1)<<parent.log, pok, pc, wok, want)
				}
			}
		}
	}
	return nil
}
