// Package m4lsm implements the paper's contribution: the chunk-merge-free
// M4 operator of §3 (Fig. 2(c), Algorithm 1). For every time span and every
// representation function G ∈ {FP, LP, BP, TP} it iterates candidate
// generation from chunk metadata (§3.2) and candidate verification
// (§3.3/§3.4), loading chunk data only lazily:
//
//   - The span boundaries act as virtual deletes with infinite version
//     (§3.1): a chunk fully inside the span keeps its metadata; a chunk
//     split by the span keeps only bounds (its restricted FP/LP time is
//     bounded by the span edge, its restricted BP/TP value is bounded by
//     the chunk-wide extremum).
//   - FP/LP candidates are verified against later deletes only
//     (Proposition 3.1). A refuted candidate updates the chunk's time
//     bound by the delete boundary without loading the chunk; if the
//     bound stays competitive the chunk's timestamps are fetched (a
//     partial load) and the chunk index finds the closest surviving
//     timestamp (Table 1 case b), and the chunk data is loaded only if
//     that timestamp actually wins the span.
//   - BP/TP candidates are additionally verified against later chunks
//     containing a point at the candidate's timestamp (Proposition 3.3),
//     an existence probe on the later chunk's timestamps via the step-
//     regression index (Table 1 case a) — again a partial load.
//   - Only when a chunk's metadata can no longer answer (its extremum was
//     deleted or overwritten, or the span splits it) is the chunk loaded
//     and its metadata recalculated under deletes and known overwrites
//     (Table 1 case c).
//
// The operator never merges chunks; its output is equivalent (in the sense
// of m4.Equivalent) to running the original M4 over the merged series.
package m4lsm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/m4"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
	"m4lsm/internal/stepreg"
	"m4lsm/internal/storage"
)

// Options tune the operator; the zero value is the paper's configuration
// (run on every available core). The non-default settings exist for the
// ablation studies in DESIGN.md §6.
type Options struct {
	// Parallelism bounds the worker goroutines that evaluate the 4·w
	// (span, G) tasks: 0 uses GOMAXPROCS, 1 runs single-threaded on the
	// calling goroutine. The result is byte-identical at every setting —
	// tasks are independent and write disjoint output slots — and full
	// chunk loads are deduplicated by a per-chunk singleflight gate, so
	// Stats.ChunksLoaded does not depend on the worker count either.
	Parallelism int
	// DisableStepIndex replaces step-regression probes with plain binary
	// search.
	DisableStepIndex bool
	// EagerLoad materializes every overlapping chunk up front instead of
	// loading lazily.
	EagerLoad bool
	// DisablePartialLoad makes timestamp probes load full chunks instead
	// of the timestamp block only.
	DisablePartialLoad bool
	// Strict makes any chunk read failure fail the whole query. The
	// default degrades gracefully: an unreadable chunk is dropped from
	// the query, reported through the snapshot's Warnings/OnQuarantine,
	// and the result is computed from the remaining chunks.
	Strict bool
	// Metrics, when non-nil, receives the operator's query counters and
	// latency histograms (labelled op="lsm"). Nil — the default — skips
	// all instrumentation on the hot path.
	Metrics *obs.Registry
	// Budget, when non-nil, caps the resources this query may spend: every
	// physical load (timestamps or full data) charges one chunk, a full
	// load additionally charges the chunk's point count, and the budget's
	// deadline is checked at task boundaries. An exhausted budget behaves
	// like an unreadable chunk: under Strict the query fails with an error
	// wrapping govern.ErrBudgetExceeded; otherwise the affected chunks are
	// dropped with a warning and the result degrades exactly like the
	// fault-tolerance path (FP substitution and all). The same *Budget may
	// be shared by the batched multi-series path and the UDF baseline.
	Budget *govern.Budget
	// DisablePyramid makes the operator ignore the snapshot's rollup
	// pyramid (Snapshot.Pyramid) and compute every span from chunks. The
	// result is identical either way; the knob exists for A/B comparison
	// and for the differential harness's pyramid-off oracle runs.
	DisablePyramid bool
}

// Compute runs the M4 representation query with default options.
func Compute(snap *storage.Snapshot, q m4.Query) ([]m4.Aggregate, error) {
	return ComputeWithOptions(snap, q, Options{})
}

// ComputeWithOptions runs the M4 representation query over the snapshot's
// chunks and deletes without merging chunks.
func ComputeWithOptions(snap *storage.Snapshot, q m4.Query, opts Options) ([]m4.Aggregate, error) {
	return ComputeContext(context.Background(), snap, q, opts)
}

// ComputeContext is ComputeWithOptions under a context: cancellation stops
// the worker pool at the next task or chunk-load boundary and returns
// ctx.Err(). The snapshot's cost counters are final once ComputeContext
// returns — every worker has joined, cancelled or not.
//
// The implementation is a one-series batch: see ComputeMultiContext in
// multi.go, which plans the (span, G) task decomposition, runs the two
// waves (FP first, then LP/BP/TP for the surviving spans) over the shared
// worker pool, and assembles the aggregates. The decomposition is identical
// at every parallelism level and batch size, so the output is byte-identical
// whatever the worker count.
func ComputeContext(ctx context.Context, snap *storage.Snapshot, q m4.Query, opts Options) ([]m4.Aggregate, error) {
	outs, err := ComputeMultiContext(ctx, []*storage.Snapshot{snap}, q, opts)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// timedG wraps computeG with per-task timing when tracing or metrics are
// armed; otherwise it forwards with zero overhead beyond two nil checks.
func (op *operator) timedG(spanIdx int, span series.TimeRange, chunks []*chunkState, g gKind) (series.Point, bool, error) {
	if op.tr == nil && op.met == nil {
		return op.computeG(span, chunks, g)
	}
	t0 := time.Now()
	pt, ok, err := op.computeG(span, chunks, g)
	d := time.Since(t0)
	op.tr.Task(spanIdx, g.String(), d)
	op.met.RecordTask(d)
	return pt, ok, err
}

// runPool executes tasks 0..n-1 across at most par worker goroutines,
// pulling task indexes off a shared atomic counter. par <= 1 runs inline
// on the calling goroutine with zero scheduling overhead. A task error
// stops the pool early; callers inspect per-task results for the error.
func runPool(par, n int, run func(int) error) {
	if par > n {
		par = n
	}
	if par <= 1 {
		for t := 0; t < n; t++ {
			if run(t) != nil {
				return
			}
		}
		return
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= n || failed.Load() {
					return
				}
				if run(t) != nil {
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// gKind names the four representation functions as task coordinates.
type gKind uint8

const (
	gFP gKind = iota // FirstPoint
	gLP              // LastPoint
	gBP              // BottomPoint
	gTP              // TopPoint
)

// gCount is the number of representation functions (tasks per span).
const gCount = int(gTP) + 1

func (g gKind) String() string {
	switch g {
	case gFP:
		return "FP"
	case gLP:
		return "LP"
	case gBP:
		return "BP"
	default:
		return "TP"
	}
}

// gResult is one task's output: the representation point of one function
// over one span, ok=false when the span has no surviving points.
type gResult struct {
	pt  series.Point
	ok  bool
	err error
}

// computeG evaluates one representation function over one span: the unit
// of work the pool schedules. Views are task-local, so concurrent tasks on
// the same span never share mutable state; per-task counters flush into
// the shared stats with one atomic Add on the way out.
func (op *operator) computeG(span series.TimeRange, chunks []*chunkState, g gKind) (series.Point, bool, error) {
	if err := op.ctx.Err(); err != nil {
		return series.Point{}, false, err
	}
	// Strict queries abort outright on a blown deadline; lenient ones keep
	// going — the candidate loop itself is metadata-cheap, and any further
	// chunk load is refused by ChargeChunk and degrades via chunkFailed.
	if op.opts.Strict {
		if err := op.budget.CheckDeadline(); err != nil {
			return series.Point{}, false, err
		}
	}
	sc := &spanComputer{op: op, span: span, views: make([]*view, len(chunks))}
	defer func() { op.stats.Add(sc.local) }()
	for i, cs := range chunks {
		sc.views[i] = sc.newView(cs)
	}
	if op.opts.EagerLoad {
		for _, v := range sc.views {
			if err := sc.materialize(v); err != nil {
				if err := sc.chunkFailed(v, err); err != nil {
					return series.Point{}, false, err
				}
			}
		}
	}
	switch g {
	case gFP:
		return sc.computeTimeExtreme(true)
	case gLP:
		return sc.computeTimeExtreme(false)
	case gBP:
		return sc.computeValueExtreme(true)
	default:
		return sc.computeValueExtreme(false)
	}
}

func clampSpan(q m4.Query, t int64) int {
	if t < q.Tqs {
		t = q.Tqs
	}
	if t >= q.Tqe {
		t = q.Tqe - 1
	}
	return q.SpanIndex(t)
}

type operator struct {
	ctx      context.Context
	snap     *storage.Snapshot
	q        m4.Query
	opts     Options
	stats    *storage.Stats
	states   []*chunkState
	deletes  []storage.Delete // sorted by version
	deleteIx *storage.DeleteIndex
	budget   *govern.Budget // nil: unbudgeted (methods are nil-safe)
	degraded atomic.Bool    // a chunk was dropped; the result is partial

	tr  *obs.Trace           // nil unless the query context carries a trace
	met *obs.OperatorMetrics // nil unless Options.Metrics is set
}

// addState materializes the shared chunkState for one snapshot chunk and
// registers it for the end-of-query pruned sweep. The planner calls it on a
// chunk's first span/fragment assignment only, so chunks the pyramid answers
// around never allocate a state at all.
func (op *operator) addState(ref storage.ChunkRef) *chunkState {
	cs := &chunkState{ref: ref, meta: ref.Meta}
	op.states = append(op.states, cs)
	return cs
}

// reportBad records an unreadable chunk exactly once per query, flagging
// the result as degraded and notifying the snapshot (warning + quarantine).
func (op *operator) reportBad(cs *chunkState, err error) {
	op.degraded.Store(true)
	cs.mu.Lock()
	already := cs.reported
	cs.reported = true
	cs.mu.Unlock()
	if !already {
		op.snap.ReportBadChunk(cs.meta, err)
	}
}

// budgetDenied records a chunk the budget refused to load: the result is
// degraded and a warning names the chunk, but — unlike reportBad — the
// snapshot producer is NOT notified, because nothing is wrong with the
// chunk's bytes and it must not be quarantined.
func (op *operator) budgetDenied(cs *chunkState, err error) {
	op.degraded.Store(true)
	cs.mu.Lock()
	already := cs.reported
	cs.reported = true
	cs.mu.Unlock()
	if !already {
		op.snap.Warnings.Add("chunk %s v%d skipped by budget: %v", cs.meta.SeriesID, cs.meta.Version, err)
	}
}

// chunkState caches per-chunk loads across spans and functions. The mutex
// is the singleflight gate: N workers racing to materialize the same chunk
// serialize on it, the first performs the LoadTimes/Load I/O, and the rest
// find the columns already present — exactly one load per chunk per query
// regardless of parallelism. The loaded columns are written once under the
// lock and never mutated, so post-ensure reads outside the lock are safe.
type chunkState struct {
	ref  storage.ChunkRef
	meta storage.ChunkMeta

	mu       sync.Mutex
	data     series.Series
	times    []int64
	probe    stepreg.Probe
	hasData  bool
	hasTimes bool
	loadErr  error // sticky: a failed load is not retried per worker
	reported bool  // the failure has been reported to the snapshot
}

func (op *operator) ensureTimes(cs *chunkState) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.loadErr != nil {
		return cs.loadErr
	}
	if cs.hasTimes {
		return nil
	}
	if op.opts.DisablePartialLoad {
		return op.ensureDataLocked(cs)
	}
	// Cancellation and budget are checked before I/O only and never made
	// sticky: a cancelled or budget-refused load must not poison the chunk
	// state for other queries' semantics or mask the real error
	// classification. (A later query with a fresh budget may load it.)
	if err := op.ctx.Err(); err != nil {
		return err
	}
	if err := op.budget.ChargeChunk(0); err != nil {
		return err
	}
	ts, err := cs.ref.LoadTimes()
	if err != nil {
		cs.loadErr = err
		return err
	}
	cs.times = ts
	cs.buildProbe(op.opts)
	cs.hasTimes = true
	return nil
}

func (op *operator) ensureData(cs *chunkState) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return op.ensureDataLocked(cs)
}

func (op *operator) ensureDataLocked(cs *chunkState) error {
	if cs.loadErr != nil {
		return cs.loadErr
	}
	if cs.hasData {
		return nil
	}
	if err := op.ctx.Err(); err != nil {
		return err
	}
	if err := op.budget.ChargeChunk(int64(cs.meta.Count)); err != nil {
		return err
	}
	data, err := cs.ref.Load()
	if err != nil {
		cs.loadErr = err
		return err
	}
	cs.data = data
	if !cs.hasTimes {
		cs.times = data.Times()
		cs.buildProbe(op.opts)
		cs.hasTimes = true
	}
	cs.hasData = true
	return nil
}

func (cs *chunkState) buildProbe(opts Options) {
	if opts.DisableStepIndex {
		cs.probe = stepreg.NewPlain(cs.times)
	} else {
		cs.probe = stepreg.Build(cs.times)
	}
}

// exists probes whether the chunk contains a point at exactly t
// (Table 1 case a).
func (sc *spanComputer) exists(cs *chunkState, t int64) (bool, error) {
	if err := sc.op.ensureTimes(cs); err != nil {
		return false, err
	}
	sc.local.IndexProbes++
	sc.local.ExistProbes++
	return cs.probe.Exists(t), nil
}

// gState tracks what a view knows about one representation point.
type gState uint8

const (
	// stPoint: an actual chunk point from clean metadata; deletes not yet
	// verified against it.
	stPoint gState = iota
	// stVerifiedPoint: a surviving point recomputed from loaded data
	// under deletes and known overwrites.
	stVerifiedPoint
	// stBoundTime (FP/LP only): pt.T bounds the restricted time
	// (true FP.t >= bound / true LP.t <= bound); the value is unknown.
	stBoundTime
	// stVerifiedTime (FP/LP only): pt.T is an exact surviving timestamp
	// found by an index probe; the value is not loaded yet.
	stVerifiedTime
	// stBoundValue (BP/TP only): pt.V bounds the restricted extremum
	// (true BP.v >= bound / true TP.v <= bound); the chunk is split by
	// the span and its extremum lies outside it.
	stBoundValue
)

type gSlot struct {
	st gState
	pt series.Point
}

// view is one chunk restricted to one span (an element of C” in §3.1).
type view struct {
	cs           *chunkState
	ver          storage.Version
	first        gSlot
	last         gSlot
	bottom       gSlot
	top          gSlot
	excluded     map[int64]bool // timestamps verified overwritten by later chunks (lazily allocated)
	live         series.Series  // surviving span points, set by materialize
	materialized bool
	dead         bool // no surviving points in the span
}

// spanComputer runs one candidate loop for one span. It is task-local:
// its views (and their slots, exclusion sets and live series) belong to a
// single goroutine, and operator counters accumulate in local before one
// atomic flush when the task finishes.
type spanComputer struct {
	op    *operator
	span  series.TimeRange
	views []*view
	local storage.Stats
}

// newView restricts chunk metadata to the span: the virtual deletes of
// §3.1. Metadata points falling outside the span degrade to bounds.
func (sc *spanComputer) newView(cs *chunkState) *view {
	m := cs.meta
	v := &view{cs: cs, ver: m.Version}
	if m.First.T >= sc.span.Start {
		v.first = gSlot{st: stPoint, pt: m.First}
	} else {
		v.first = gSlot{st: stBoundTime, pt: series.Point{T: sc.span.Start}}
	}
	if m.Last.T < sc.span.End {
		v.last = gSlot{st: stPoint, pt: m.Last}
	} else {
		v.last = gSlot{st: stBoundTime, pt: series.Point{T: sc.span.End - 1}}
	}
	if sc.span.Contains(m.Bottom.T) {
		v.bottom = gSlot{st: stPoint, pt: m.Bottom}
	} else {
		v.bottom = gSlot{st: stBoundValue, pt: series.Point{V: m.Bottom.V}}
	}
	if sc.span.Contains(m.Top.T) {
		v.top = gSlot{st: stPoint, pt: m.Top}
	} else {
		v.top = gSlot{st: stBoundValue, pt: series.Point{V: m.Top.V}}
	}
	return v
}

// chunkFailed routes a chunk read error: under Strict — or when the query's
// context is done, whatever the error says — it propagates; otherwise the
// chunk is reported once and this task's view of it dies, so the candidate
// loop continues over the remaining chunks (graceful degradation).
func (sc *spanComputer) chunkFailed(v *view, err error) error {
	if cerr := sc.op.ctx.Err(); cerr != nil {
		return cerr
	}
	if sc.op.opts.Strict {
		return err
	}
	if errors.Is(err, govern.ErrBudgetExceeded) {
		sc.op.budgetDenied(v.cs, err)
		v.dead = true
		return nil
	}
	sc.op.reportBad(v.cs, err)
	v.dead = true
	return nil
}

// deletedLater returns a delete with a larger version than ver covering t,
// i.e. the ⊨ test of Propositions 3.1/3.3.
func (sc *spanComputer) deletedLater(t int64, ver storage.Version) (storage.Delete, bool) {
	for _, d := range sc.op.deletes {
		if d.Version > ver && d.Covers(t) {
			return d, true
		}
	}
	return storage.Delete{}, false
}

// overwrittenLater reports whether any later chunk in the span contains a
// point at exactly t (the first condition of Proposition 3.3). Per
// Definition 2.7 this holds regardless of whether that later point is
// itself deleted.
func (sc *spanComputer) overwrittenLater(t int64, ver storage.Version) (bool, error) {
	for _, w := range sc.views {
		if w.ver <= ver {
			continue
		}
		if t < w.cs.meta.First.T || t > w.cs.meta.Last.T {
			continue
		}
		ok, err := sc.exists(w.cs, t)
		if err != nil {
			// The probed chunk (not the candidate's) is unreadable: drop
			// it from the query and treat it as not overwriting.
			if err := sc.chunkFailed(w, err); err != nil {
				return false, err
			}
			continue
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// materialize loads the chunk and recalculates the view's metadata under
// the span, deletes and known overwrites (Table 1 case c).
func (sc *spanComputer) materialize(v *view) error {
	if err := sc.op.ensureData(v.cs); err != nil {
		return err
	}
	v.materialized = true
	sc.recompute(v)
	return nil
}

// recompute refreshes a materialized view's slots from its surviving span
// points.
func (sc *spanComputer) recompute(v *view) {
	base := v.cs.data.Slice(sc.span)
	live := make(series.Series, 0, len(base))
	for _, p := range base {
		if v.excluded[p.T] {
			continue
		}
		if sc.op.deleteIx.Covered(p.T, v.ver) {
			continue
		}
		live = append(live, p)
	}
	v.live = live
	if len(live) == 0 {
		v.dead = true
		return
	}
	first, last, bottom, top, _ := storage.ComputeMeta(live)
	v.first = gSlot{st: stVerifiedPoint, pt: first}
	v.last = gSlot{st: stVerifiedPoint, pt: last}
	v.bottom = gSlot{st: stVerifiedPoint, pt: bottom}
	v.top = gSlot{st: stVerifiedPoint, pt: top}
}

// timeSlot selects the FP or LP slot.
func (v *view) timeSlot(isFirst bool) *gSlot {
	if isFirst {
		return &v.first
	}
	return &v.last
}

// valueSlot selects the BP or TP slot.
func (v *view) valueSlot(isBottom bool) *gSlot {
	if isBottom {
		return &v.bottom
	}
	return &v.top
}

// computeTimeExtreme runs the FP (isFirst) or LP candidate loop of §3.3.
func (sc *spanComputer) computeTimeExtreme(isFirst bool) (series.Point, bool, error) {
	// better reports whether time a beats time b for this function.
	better := func(a, b int64) bool {
		if isFirst {
			return a < b
		}
		return a > b
	}
	for {
		sc.local.CandidateRounds++
		// Candidate generation (§3.2): the extreme time over all views,
		// bounds included; among equal times the largest version.
		var best *view
		for _, v := range sc.views {
			if v.dead {
				continue
			}
			slot := v.timeSlot(isFirst)
			if best == nil {
				best = v
				continue
			}
			bt := best.timeSlot(isFirst).pt.T
			switch {
			case better(slot.pt.T, bt):
				best = v
			case slot.pt.T == bt && preferred(slot.st, v.ver, best.timeSlot(isFirst).st, best.ver):
				best = v
			}
		}
		if best == nil {
			return series.Point{}, false, nil
		}
		slot := best.timeSlot(isFirst)
		switch slot.st {
		case stBoundTime:
			// The bound is competitive; tighten it to an actual
			// surviving timestamp with a partial load and an index
			// probe (Table 1 case b).
			if err := sc.resolveTimeBound(best, isFirst); err != nil {
				if err := sc.chunkFailed(best, err); err != nil {
					return series.Point{}, false, err
				}
			}
		case stVerifiedTime:
			// The winning timestamp needs its value: load the chunk.
			if err := sc.materialize(best); err != nil {
				if err := sc.chunkFailed(best, err); err != nil {
					return series.Point{}, false, err
				}
			}
		case stPoint:
			// Candidate verification (Proposition 3.1): only later
			// deletes can refute an FP/LP candidate.
			if d, ok := sc.deletedLater(slot.pt.T, best.ver); ok {
				// Lazy load (§3.3): move the time bound to the delete
				// boundary without touching chunk data.
				sc.refuteTimeByDelete(best, isFirst, d)
				continue
			}
			return slot.pt, true, nil
		case stVerifiedPoint:
			// Recomputed under deletes already; nothing can refute it
			// (Proposition 3.1 again: overwrites cannot apply to the
			// minimal/maximal surviving time with the largest version).
			return slot.pt, true, nil
		}
	}
}

// preferred orders tied candidates: resolvable bounds first (they may hide
// an earlier/later or same-time higher-version point), then timestamps
// needing value loads, then actual points by descending version.
func preferred(aSt gState, aVer storage.Version, bSt gState, bVer storage.Version) bool {
	rank := func(st gState) int {
		switch st {
		case stBoundTime, stBoundValue:
			return 2
		case stVerifiedTime:
			return 1
		default:
			return 0
		}
	}
	if ra, rb := rank(aSt), rank(bSt); ra != rb {
		return ra > rb
	}
	return aVer > bVer
}

// preferredValue orders tied BP/TP candidates the other way around: a
// verified point at the extreme value is already an acceptable answer
// (Definition 2.1 allows any extremal point), so actual points beat bounds
// and avoid loading the bound's chunk; among points the larger version is
// more likely the latest.
func preferredValue(aSt gState, aVer storage.Version, bSt gState, bVer storage.Version) bool {
	aBound := aSt == stBoundValue
	bBound := bSt == stBoundValue
	if aBound != bBound {
		return bBound
	}
	return aVer > bVer
}

// refuteTimeByDelete applies the §3.3 lazy-load rule: the candidate is
// covered by delete d, so the view's restricted FP.t (or LP.t) moves to
// the delete boundary. If the bound leaves the span or the chunk interval,
// every span point of the chunk is deleted and the view dies.
func (sc *spanComputer) refuteTimeByDelete(v *view, isFirst bool, d storage.Delete) {
	if isFirst {
		bound := d.End + 1
		if bound > sc.span.End-1 || bound > v.cs.meta.Last.T {
			v.dead = true
			return
		}
		v.first = gSlot{st: stBoundTime, pt: series.Point{T: bound}}
		return
	}
	bound := d.Start - 1
	if bound < sc.span.Start || bound < v.cs.meta.First.T {
		v.dead = true
		return
	}
	v.last = gSlot{st: stBoundTime, pt: series.Point{T: bound}}
}

// resolveTimeBound turns a stBoundTime slot into a stVerifiedTime slot (or
// kills the view): partial-load the timestamps, find the closest point
// after/before the bound with the chunk index, and chain over deletes.
func (sc *spanComputer) resolveTimeBound(v *view, isFirst bool) error {
	if err := sc.op.ensureTimes(v.cs); err != nil {
		return err
	}
	slot := v.timeSlot(isFirst)
	bound := slot.pt.T
	for {
		var t int64
		sc.local.IndexProbes++
		sc.local.BoundaryProbes++
		if isFirst {
			pos, ok := v.cs.probe.FirstAfter(bound - 1) // closest t >= bound
			if !ok {
				v.dead = true
				return nil
			}
			t = v.cs.times[pos]
			if t > sc.span.End-1 {
				v.dead = true
				return nil
			}
		} else {
			pos, ok := v.cs.probe.LastBefore(bound + 1) // closest t <= bound
			if !ok {
				v.dead = true
				return nil
			}
			t = v.cs.times[pos]
			if t < sc.span.Start {
				v.dead = true
				return nil
			}
		}
		d, refuted := sc.deletedLater(t, v.ver)
		if !refuted {
			*slot = gSlot{st: stVerifiedTime, pt: series.Point{T: t}}
			return nil
		}
		if isFirst {
			bound = d.End + 1
			if bound > sc.span.End-1 || bound > v.cs.meta.Last.T {
				v.dead = true
				return nil
			}
		} else {
			bound = d.Start - 1
			if bound < sc.span.Start || bound < v.cs.meta.First.T {
				v.dead = true
				return nil
			}
		}
	}
}

// computeValueExtreme runs the BP (isBottom) or TP candidate loop of §3.4.
func (sc *spanComputer) computeValueExtreme(isBottom bool) (series.Point, bool, error) {
	better := func(a, b float64) bool {
		if isBottom {
			return a < b
		}
		return a > b
	}
	for {
		sc.local.CandidateRounds++
		// Candidate generation: extreme value over all views, bounds
		// included (a bound under-estimates BP / over-estimates TP, so
		// it can hide the true extremum and must win ties for
		// resolution); among equals the largest version.
		var best *view
		for _, v := range sc.views {
			if v.dead {
				continue
			}
			slot := v.valueSlot(isBottom)
			if best == nil {
				best = v
				continue
			}
			bv := best.valueSlot(isBottom).pt.V
			switch {
			case better(slot.pt.V, bv):
				best = v
			case slot.pt.V == bv && preferredValue(slot.st, v.ver, best.valueSlot(isBottom).st, best.ver):
				best = v
			}
		}
		if best == nil {
			return series.Point{}, false, nil
		}
		slot := best.valueSlot(isBottom)
		switch slot.st {
		case stBoundValue:
			// The chunk-wide extremum lies outside the span but bounds
			// the in-span extremum; the chunk is split by the span and
			// must be loaded (§4.1's "chunks split by M4 time spans").
			if err := sc.materialize(best); err != nil {
				if err := sc.chunkFailed(best, err); err != nil {
					return series.Point{}, false, err
				}
			}
		case stPoint, stVerifiedPoint:
			p := slot.pt
			// Candidate verification (Proposition 3.3): later deletes
			// (skipped for recomputed slots, which already applied
			// them) and overwrites by later chunks.
			if slot.st == stPoint {
				if _, ok := sc.deletedLater(p.T, best.ver); ok {
					// The metadata extremum is deleted; recalculate
					// under deletes (Table 1 case c).
					if err := sc.materialize(best); err != nil {
						if err := sc.chunkFailed(best, err); err != nil {
							return series.Point{}, false, err
						}
					}
					continue
				}
			}
			over, err := sc.overwrittenLater(p.T, best.ver)
			if err != nil {
				return series.Point{}, false, err
			}
			if over {
				// Lazy load (§3.4): exclude the overwritten point and
				// recalculate; remaining metadata candidates of other
				// chunks stay in play automatically via the loop.
				if best.excluded == nil {
					best.excluded = map[int64]bool{}
				}
				best.excluded[p.T] = true
				if best.materialized {
					sc.recompute(best)
				} else if err := sc.materialize(best); err != nil {
					if err := sc.chunkFailed(best, err); err != nil {
						return series.Point{}, false, err
					}
				}
				continue
			}
			return p, true, nil
		default:
			return series.Point{}, false, fmt.Errorf("internal: value slot in state %d", slot.st)
		}
	}
}
