// Crash-recovery sweep: how much WAL a kill leaves behind, and how long the
// reopen replay takes, with the log as one monolithic segment versus
// size-rotated segments that retire per shard-flush checkpoint.
//
// The workload models the pathology the segmented WAL exists for: one hot
// series flushing continuously, plus one cold series on another shard whose
// occasional points keep SOME record unflushed at all times. The monolithic
// log can never truncate (truncation needs every shard clear at once), so a
// kill replays the whole write history; the segmented log retires every
// sealed segment below the cold shard's oldest unflushed record, so the
// replay is bounded by the recent tail.
package exper

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/series"
)

// recoveryBaseSizes is the unscaled point-count sweep (2^16 .. 2^22).
var recoveryBaseSizes = []int{1 << 16, 1 << 18, 1 << 20, 1 << 22}

// recoverySegBytes picks the segmented side's rotation threshold: about 32
// segments per run regardless of sweep size (a WAL record is ~11 bytes per
// point batched), so retirement granularity stays proportional. The
// monolithic side uses an effectively infinite threshold so its single
// segment never seals.
func recoverySegBytes(n int) int64 {
	b := int64(n) / 3
	if b < 4096 {
		b = 4096
	}
	return b
}

// RecoveryMeasurement is one sweep point: the same kill-and-reopen cycle
// under both WAL layouts.
type RecoveryMeasurement struct {
	Points int

	// ReplayBytes is the WAL footprint on disk at the kill — exactly the
	// bytes the reopen must read back.
	MonoReplayBytes int64
	SegReplayBytes  int64
	// Replay is the fastest reopen (WAL read + memtable rebuild) of Reps.
	MonoReplay time.Duration
	SegReplay  time.Duration
	// Segments on disk at the kill, and how many the segmented run retired.
	MonoSegments int
	SegSegments  int
	SegRetired   int64
}

// ReplayShrink returns monolithic replay bytes / segmented replay bytes.
func (m RecoveryMeasurement) ReplayShrink() float64 {
	if m.SegReplayBytes <= 0 {
		return math.Inf(1)
	}
	return float64(m.MonoReplayBytes) / float64(m.SegReplayBytes)
}

// RunRecovery measures kill-and-reopen recovery across the size sweep. Both
// sides write the identical point stream; after reopen their full-range M4
// answers are cross-checked span by span, and the segmented side must
// replay strictly fewer bytes — the sweep fails otherwise.
func RunRecovery(cfg Config) ([]RecoveryMeasurement, error) {
	cfg = cfg.withDefaults()
	var out []RecoveryMeasurement
	for _, base := range recoveryBaseSizes {
		n := pyramidSize(base, cfg.Scale) // same power-of-two scaling
		m, err := runRecoverySize(cfg, n)
		if err != nil {
			return nil, err
		}
		if m.SegReplayBytes >= m.MonoReplayBytes {
			return nil, fmt.Errorf("n=%d: segmented replay bytes %d not below monolithic %d",
				n, m.SegReplayBytes, m.MonoReplayBytes)
		}
		out = append(out, m)
	}
	return out, nil
}

func runRecoverySize(cfg Config, n int) (RecoveryMeasurement, error) {
	m := RecoveryMeasurement{Points: n, MonoReplay: math.MaxInt64, SegReplay: math.MaxInt64}

	monoDir, cleanupMono, err := tempDir(cfg, fmt.Sprintf("recovery-mono-%d", n))
	if err != nil {
		return m, err
	}
	defer cleanupMono()
	segDir, cleanupSeg, err := tempDir(cfg, fmt.Sprintf("recovery-seg-%d", n))
	if err != nil {
		return m, err
	}
	defer cleanupSeg()

	monoBytes, monoSegs, _, err := recoveryIngest(cfg, monoDir, n, 1<<62)
	if err != nil {
		return m, err
	}
	segBytes, segSegs, segRetired, err := recoveryIngest(cfg, segDir, n, recoverySegBytes(n))
	if err != nil {
		return m, err
	}
	m.MonoReplayBytes, m.MonoSegments = monoBytes, monoSegs
	m.SegReplayBytes, m.SegSegments, m.SegRetired = segBytes, segSegs, segRetired

	// Reopen after the kill, Reps times each. Replay leaves the WAL intact
	// (records only retire on flush), so Kill between reps keeps the cycle
	// idempotent.
	var monoAggs, segAggs []m4.Aggregate
	for rep := 0; rep < cfg.Reps; rep++ {
		d, aggs, err := recoveryReopen(cfg, monoDir, n)
		if err != nil {
			return m, err
		}
		if d < m.MonoReplay {
			m.MonoReplay = d
		}
		monoAggs = aggs

		d, aggs, err = recoveryReopen(cfg, segDir, n)
		if err != nil {
			return m, err
		}
		if d < m.SegReplay {
			m.SegReplay = d
		}
		segAggs = aggs
	}
	// Differential check: both layouts recovered the same database.
	if len(monoAggs) != len(segAggs) {
		return m, fmt.Errorf("n=%d: span counts differ: %d vs %d", n, len(monoAggs), len(segAggs))
	}
	for i := range monoAggs {
		if !m4.Equivalent(monoAggs[i], segAggs[i]) {
			return m, fmt.Errorf("n=%d span %d: monolithic %v != segmented %v", n, i, monoAggs[i], segAggs[i])
		}
	}
	return m, nil
}

// recoveryHot/recoveryCold land on different shards of a 4-shard engine
// (verified at ingest), so the cold series' unflushed records are the only
// thing pinning the log.
const (
	recoveryShards = 4
	recoveryHot    = "recovery.hot"
	recoveryCold   = "recovery.cold"
)

// recoveryIngest writes the deterministic stream and kills the engine,
// returning the WAL bytes and segment count a reopen must replay.
func recoveryIngest(cfg Config, dir string, n int, segBytes int64) (walBytes int64, segments int, retired int64, err error) {
	e, err := lsm.Open(lsm.Options{
		Dir:             dir,
		FlushThreshold:  cfg.ChunkSize,
		NumShards:       recoveryShards,
		WALSegmentBytes: segBytes,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	// The cold series reaches its flush threshold once, ~90% through the
	// stream; right after that flush one more cold point lands, so some
	// cold record is unflushed at every instant of the run.
	coldTotal := cfg.ChunkSize
	coldEvery := n * 9 / 10 / coldTotal
	if coldEvery < 1 {
		coldEvery = 1
	}
	const batch = 256
	buf := make([]series.Point, 0, batch)
	coldWritten := 0
	for t := 0; t < n; t++ {
		buf = append(buf, series.Point{T: int64(t), V: float64(t % 997)})
		if len(buf) == batch || t == n-1 {
			if err := e.Write(recoveryHot, buf...); err != nil {
				e.Kill()
				return 0, 0, 0, err
			}
			buf = buf[:0]
		}
		if coldWritten < coldTotal && t%coldEvery == 0 {
			if err := e.Write(recoveryCold, series.Point{T: int64(t), V: 1}); err != nil {
				e.Kill()
				return 0, 0, 0, err
			}
			coldWritten++
			if coldWritten == coldTotal {
				// That write crossed the cold flush threshold and unpinned
				// the log; re-pin in the same tick, before any hot flush can
				// observe an all-clear log and truncate even the monolithic
				// segment.
				if err := e.Write(recoveryCold, series.Point{T: int64(t) + 1, V: 1}); err != nil {
					e.Kill()
					return 0, 0, 0, err
				}
			}
		}
	}
	info := e.Info()
	e.Kill()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return 0, 0, 0, err
	}
	for _, p := range matches {
		fi, err := os.Stat(p)
		if err != nil {
			return 0, 0, 0, err
		}
		walBytes += fi.Size()
	}
	return walBytes, len(matches), info.WALRetiredBytes, nil
}

// recoveryReopen opens the killed database, timing the open (WAL replay
// included), answers a full-range M4 query for the differential check, and
// kills again so the next rep replays the same log.
func recoveryReopen(cfg Config, dir string, n int) (time.Duration, []m4.Aggregate, error) {
	start := time.Now()
	e, err := lsm.Open(lsm.Options{
		Dir:            dir,
		FlushThreshold: cfg.ChunkSize,
		NumShards:      recoveryShards,
	})
	if err != nil {
		return 0, nil, err
	}
	elapsed := time.Since(start)
	q := m4.Query{Tqs: 0, Tqe: int64(n), W: 64}
	snap, err := e.Snapshot(recoveryHot, q.Range())
	if err != nil {
		e.Kill()
		return 0, nil, err
	}
	aggs, err := m4lsm.ComputeWithOptions(snap, q, m4lsm.Options{Parallelism: cfg.Parallelism})
	if err != nil {
		e.Kill()
		return 0, nil, err
	}
	e.Kill()
	return elapsed, aggs, nil
}

// RecoveryTitle names the sweep.
func RecoveryTitle() string {
	return "Recovery: replay after kill, monolithic vs segmented WAL (~32 segments/run)"
}

// WriteRecovery renders the sweep as an aligned text table.
func WriteRecovery(w io.Writer, title string, ms []RecoveryMeasurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%10s %14s %14s %8s %12s %12s %9s %9s %10s\n",
		"points", "monoWALbytes", "segWALbytes", "shrink", "monoReplay", "segReplay", "monoSegs", "segSegs", "segRetired")
	for _, m := range ms {
		fmt.Fprintf(w, "%10d %14d %14d %7.1fx %12s %12s %9d %9d %10d\n",
			m.Points, m.MonoReplayBytes, m.SegReplayBytes, m.ReplayShrink(),
			m.MonoReplay.Round(time.Microsecond), m.SegReplay.Round(time.Microsecond),
			m.MonoSegments, m.SegSegments, m.SegRetired)
	}
}
