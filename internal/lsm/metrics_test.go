package lsm

import (
	"strings"
	"testing"

	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

// TestEngineMetricsExposition: an engine opened with a registry reports its
// write/flush/compact/delete activity and cache state through Prometheus
// exposition, which is what /metrics serves.
func TestEngineMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := Open(Options{Dir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i := 0; i < 100; i++ {
		if err := e.Write("s", series.Point{T: int64(i), V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		if err := e.Write("s", series.Point{T: int64(i), V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("s", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"# TYPE lsm_points_written_total counter",
		"lsm_points_written_total 200",
		"lsm_flushes_total 2",
		"lsm_flushed_points_total 200",
		"lsm_deletes_total 1",
		"lsm_compactions_total 1",
		"# TYPE lsm_flush_seconds histogram",
		"lsm_flush_seconds_count 2",
		"lsm_compact_seconds_count 1",
		"# TYPE lsm_chunks gauge",
		"lsm_wal_bytes",
		"chunk_cache_entries",
		"chunk_cache_evictions_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The JSON snapshot view carries the same values.
	snap := reg.Snapshot()
	if v, ok := snap["lsm_flushes_total"].(int64); !ok || v != 2 {
		t.Errorf("snapshot lsm_flushes_total = %v", snap["lsm_flushes_total"])
	}
	if v, ok := snap["lsm_wal_appends_total"].(int64); !ok || v < 1 {
		t.Errorf("snapshot lsm_wal_appends_total = %v", snap["lsm_wal_appends_total"])
	}
}

// TestEngineNoRegistry: an engine without a registry takes the nil-metrics
// fast path everywhere — this simply must not panic.
func TestEngineNoRegistry(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Metrics() != nil {
		t.Error("Metrics() should be nil without a registry")
	}
	for i := 0; i < 50; i++ {
		if err := e.Write("s", series.Point{T: int64(i), V: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
}
