// Command m4server serves a database directory over HTTP.
//
// Endpoints:
//
//	GET  /healthz                         engine status
//	GET  /series                          stored series ids
//	GET  /query?q=<m4ql>                  run an M4 query, JSON result
//	POST /query {"query": "<m4ql>"}       same, query in the body
//	GET  /render?series=&tqs=&tqe=&w=&h=  two-color PNG line chart
//
// Example:
//
//	m4server -dir ./db -addr :8086
//	curl 'localhost:8086/query?q=SELECT+M4(*)+FROM+s+WHERE+time+>=+0+AND+time+<+1000+GROUP+BY+SPANS(100)'
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, then the engine is flushed and closed exactly once.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/server"
)

func main() {
	var (
		dir       = flag.String("dir", "m4db", "database directory")
		addr      = flag.String("addr", ":8086", "listen address")
		drainWait = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()
	engine, err := lsm.Open(lsm.Options{Dir: *dir})
	if err != nil {
		log.Fatalf("m4server: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(engine),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("m4server: serving %s on %s", *dir, *addr)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		log.Printf("m4server: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("m4server: drain: %v", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("m4server: %v", err)
		}
	}

	// Close (flush memtable, release handles) exactly once, after the
	// listener has stopped taking requests.
	if err := engine.Close(); err != nil {
		log.Fatalf("m4server: close: %v", err)
	}
}
