package m4lsm

import (
	"math"
	"math/rand"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/testutil"
)

// Directed edge cases for the operator beyond the randomized suites.

func TestSpanBoundaryExactHits(t *testing.T) {
	// Points landing exactly on span boundaries must group into the
	// right-hand span (half-open spans).
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 0, V: 1}, {T: 50, V: 2}, {T: 99, V: 3}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 100, W: 2} // spans [0,50) [50,100)
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Last.T != 0 || got[1].First.T != 50 {
		t.Errorf("boundary point in wrong span: %v | %v", got[0], got[1])
	}
}

func TestSingletonSpans(t *testing.T) {
	// One point per span, spans of width 1.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 0, V: 5}, {T: 1, V: 6}, {T: 2, V: 7}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 3, W: 3}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got {
		if a.Empty || a.First != a.Last || a.First != a.Bottom || a.First.V != float64(5+i) {
			t.Errorf("span %d = %v", i, a)
		}
	}
}

func TestNegativeTimestamps(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: -100, V: 1}, {T: -50, V: -3}, {T: -10, V: 2}},
	}, []storage.Delete{{SeriesID: "s", Version: 2, Start: -60, End: -40}})
	q := m4.Query{Tqs: -120, Tqe: 0, W: 3}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, reference(t, snap, q), "negative timestamps")
}

func TestExtremeValues(t *testing.T) {
	big := math.MaxFloat64
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 1, V: -big}, {T: 2, V: big}, {T: 3, V: 0}},
		2: {{T: 2, V: math.Inf(-1)}}, // overwrites the max with -Inf
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 10, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, reference(t, snap, q), "extreme values")
	if got[0].Top.V != 0 {
		t.Errorf("top = %v, want 0 after overwrite to -Inf", got[0].Top)
	}
	if got[0].Bottom.V != math.Inf(-1) {
		t.Errorf("bottom = %v", got[0].Bottom)
	}
}

func TestDeleteExactlyOneBoundary(t *testing.T) {
	// Deletes whose closed range touches exactly the candidate point.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}, {T: 20, V: 2}, {T: 30, V: 3}},
	}, []storage.Delete{
		{SeriesID: "s", Version: 2, Start: 10, End: 10}, // kills first
		{SeriesID: "s", Version: 3, Start: 30, End: 30}, // kills last
	})
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].First.T != 20 || got[0].Last.T != 20 {
		t.Errorf("aggregate = %v, want only t=20 surviving", got[0])
	}
}

func TestChainedDeletesPushBoundThroughSpan(t *testing.T) {
	// Successive deletes cover the whole span: the FP bound must chain
	// across them and conclude the span is empty without loading.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 0, V: 1}, {T: 10, V: 2}, {T: 20, V: 3}, {T: 30, V: 4}},
	}, []storage.Delete{
		{SeriesID: "s", Version: 2, Start: 0, End: 9},
		{SeriesID: "s", Version: 3, Start: 10, End: 19},
		{SeriesID: "s", Version: 4, Start: 20, End: 35},
	})
	q := m4.Query{Tqs: 0, Tqe: 40, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Empty {
		t.Fatalf("aggregate = %v, want empty", got[0])
	}
	if snap.Stats.ChunksLoaded != 0 {
		t.Errorf("loads = %d; chained delete bounds should avoid loading", snap.Stats.ChunksLoaded)
	}
}

func TestDeleteLeavesGapInsideChunk(t *testing.T) {
	// Delete covers the middle; FP/LP unaffected, BP/TP must recompute.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 5}, {T: 20, V: -9}, {T: 30, V: 9}, {T: 40, V: 4}},
	}, []storage.Delete{{SeriesID: "s", Version: 2, Start: 15, End: 35}})
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, reference(t, snap, q), "gap inside chunk")
	if got[0].Bottom.V != 4 || got[0].Top.V != 5 {
		t.Errorf("aggregate = %v", got[0])
	}
}

func TestManyIdenticalValues(t *testing.T) {
	// All values equal: BP == TP, ties everywhere; any point is valid.
	data := make(series.Series, 50)
	for i := range data {
		data[i] = series.Point{T: int64(i), V: 7}
	}
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: data[:25], 2: data[25:],
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 50, W: 4}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got {
		if a.Empty || a.Bottom.V != 7 || a.Top.V != 7 {
			t.Errorf("span %d = %v", i, a)
		}
	}
}

func TestLargeW_SparseData(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 5, V: 1}, {T: 500_000, V: 2}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 1_000_000, W: 10_000}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, a := range got {
		if !a.Empty {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Errorf("non-empty spans = %d, want 2", nonEmpty)
	}
}

func TestInterleavedHighVersionDeletesAndChunks(t *testing.T) {
	// Delete versions interleave between chunk versions: only the right
	// chunks are affected.
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 10, V: 1}},
		3: {{T: 10, V: 3}},
		5: {{T: 10, V: 5}},
	}, []storage.Delete{
		{SeriesID: "s", Version: 2, Start: 10, End: 10},
		{SeriesID: "s", Version: 4, Start: 10, End: 10},
	})
	q := m4.Query{Tqs: 0, Tqe: 20, W: 1}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Empty || got[0].First.V != 5 {
		t.Fatalf("aggregate = %v, want v5 point to survive", got[0])
	}
}

func TestWiderRandomizedSweep(t *testing.T) {
	// A heavier configuration than the default property test: more
	// chunks, more points, wider value range, longer horizon.
	cfg := testutil.GenConfig{
		MaxChunks:      12,
		MaxChunkPoints: 60,
		MaxDeletes:     6,
		TimeHorizon:    400,
		ValueRange:     64,
	}
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed + 90_000))
		snap := testutil.RandomSnapshot(rng, cfg)
		q := m4.Query{Tqs: rng.Int63n(200), Tqe: 200 + rng.Int63n(250), W: 1 + rng.Intn(25)}
		want := reference(t, snap, q)
		got, err := Compute(snap, q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range got {
			if !m4.Equivalent(got[i], want[i]) {
				t.Fatalf("seed %d span %d:\n got %v\nwant %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestMemtableStyleChunkAtTop(t *testing.T) {
	// A high-version chunk covering everything (like a memtable snapshot)
	// must dominate all representation functions.
	base := make(series.Series, 100)
	for i := range base {
		base[i] = series.Point{T: int64(i * 10), V: float64(i % 10)}
	}
	top := make(series.Series, 100)
	for i := range top {
		top[i] = series.Point{T: int64(i * 10), V: 100 + float64(i%10)}
	}
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: base, 2: top}, nil)
	q := m4.Query{Tqs: 0, Tqe: 1000, W: 5}
	got, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got {
		if a.Bottom.V < 100 {
			t.Errorf("span %d bottom = %v; base chunk leaked through total overwrite", i, a.Bottom)
		}
	}
	assertEquivalent(t, got, reference(t, snap, q), "total overwrite")
}

// TestSoakEquivalence is a long randomized sweep, skipped under -short:
// thousands of chunk/delete states across three generator profiles.
func TestSoakEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	profiles := []testutil.GenConfig{
		testutil.DefaultGenConfig,
		{MaxChunks: 10, MaxChunkPoints: 40, MaxDeletes: 12, TimeHorizon: 100, ValueRange: 10},
		{MaxChunks: 16, MaxChunkPoints: 8, MaxDeletes: 3, TimeHorizon: 24, ValueRange: 4},
	}
	for pi, cfg := range profiles {
		for seed := int64(0); seed < 1200; seed++ {
			rng := rand.New(rand.NewSource(seed + int64(pi)*1_000_000))
			snap := testutil.RandomSnapshot(rng, cfg)
			q := m4.Query{
				Tqs: rng.Int63n(cfg.TimeHorizon),
				Tqe: cfg.TimeHorizon/2 + rng.Int63n(cfg.TimeHorizon),
				W:   1 + rng.Intn(20),
			}
			if q.Tqe <= q.Tqs {
				q.Tqe = q.Tqs + 1
			}
			want := reference(t, snap, q)
			got, err := Compute(snap, q)
			if err != nil {
				t.Fatalf("profile %d seed %d: %v", pi, seed, err)
			}
			for i := range got {
				if !m4.Equivalent(got[i], want[i]) {
					t.Fatalf("profile %d seed %d span %d:\n got %v\nwant %v", pi, seed, i, got[i], want[i])
				}
			}
		}
	}
}
