package main

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/series"
)

func TestRepl(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 20; i++ {
		e.Write("root.s", series.Point{T: int64(i * 10), V: float64(i % 4)})
	}
	e.Flush()

	in := strings.NewReader(strings.Join([]string{
		".help",
		".series",
		".info",
		".unknown",
		"SELECT M4(*) FROM root.s WHERE time >= 0 AND time < 200 GROUP BY SPANS(2)",
		"EXPLAIN SELECT M4(*) FROM root.s WHERE time >= 0 AND time < 200 GROUP BY SPANS(2) USING UDF",
		"SELECT garbage",
		"",
		".quit",
	}, "\n"))
	var out bytes.Buffer
	repl(e, in, &out)
	got := out.String()
	for _, want := range []string{
		"commands:",
		"root.s",
		"files=1",
		"unknown command",
		"FirstTime",
		"M4-UDF",
		"error:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("repl output missing %q:\n%s", want, got)
		}
	}
}

func TestReplEOF(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var out bytes.Buffer
	repl(e, strings.NewReader(""), &out) // EOF immediately: must return
}

// TestSubcommands drives the one-shot backup/verify/restore/scrub cycle
// end to end through runSubcommand.
func TestSubcommands(t *testing.T) {
	dir := t.TempDir()
	e, err := lsm.Open(lsm.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.Write("root.s", series.Point{T: int64(i * 10), V: float64(i % 4)})
	}
	e.Flush()
	e.Close()

	bdir := t.TempDir() + "/bk"
	rdir := t.TempDir() + "/restored"
	if err := runSubcommand(dir, []string{"backup", bdir}); err != nil {
		t.Fatalf("backup: %v", err)
	}
	if err := runSubcommand(dir, []string{"verify", bdir}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := runSubcommand(dir, []string{"restore", bdir, rdir}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	r, err := lsm.Open(lsm.Options{Dir: rdir})
	if err != nil {
		t.Fatal(err)
	}
	ids := r.SeriesIDs()
	r.Close()
	if len(ids) != 1 || ids[0] != "root.s" {
		t.Fatalf("restored series = %v", ids)
	}
	if err := runSubcommand(dir, []string{"scrub"}); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if err := runSubcommand(dir, []string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := runSubcommand(dir, []string{"backup"}); err == nil {
		t.Fatal("backup without dest accepted")
	}
}

// TestLoadSubcommand bulk-ingests a CSV through the batched WriteBatch path
// and checks the points landed (small -batch forces several batches).
func TestLoadSubcommand(t *testing.T) {
	dir := t.TempDir()
	csv := t.TempDir() + "/data.csv"
	var b bytes.Buffer
	b.WriteString("time,value\n")
	const n = 100
	for i := 0; i < n; i++ {
		b.WriteString(strconv.Itoa(i*5) + "," + strconv.Itoa(i%9) + "\n")
	}
	if err := os.WriteFile(csv, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSubcommand(dir, []string{"load", "-sync", "-batch", "16", "root.csv", csv}); err != nil {
		t.Fatalf("load: %v", err)
	}
	e, err := lsm.Open(lsm.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	snap, err := e.Snapshot("root.csv", series.TimeRange{Start: -1 << 40, End: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range snap.Chunks {
		data, err := c.Load()
		if err != nil {
			t.Fatal(err)
		}
		total += len(data)
	}
	if total != n {
		t.Fatalf("loaded %d points, want %d", total, n)
	}
	// Usage errors.
	if err := runSubcommand(dir, []string{"load", "root.csv"}); err == nil {
		t.Fatal("load without file accepted")
	}
	if err := runSubcommand(dir, []string{"load", "-batch", "0", "root.csv", csv}); err == nil {
		t.Fatal("non-positive batch accepted")
	}
}
