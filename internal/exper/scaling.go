package exper

import (
	"fmt"
	"runtime"

	"m4lsm/internal/m4"
	"m4lsm/internal/workload"
)

// ScalingParallelism is the worker-count sweep of the parallel-execution
// experiment.
var ScalingParallelism = []int{1, 2, 4, 8}

// RunScaling measures both operators at increasing worker counts on an
// overlap-and-delete-heavy storage state (the shape that makes M4-LSM do
// real verification work). Every measurement's aggregates are cross-checked
// inside measure, so the curve doubles as a parallel-correctness check; the
// chunk-load counters must not move with the worker count (singleflight
// deduplicates loads). Wall-clock speedup is bounded by the host's cores —
// the harness reports GOMAXPROCS next to the curve for that reason.
func RunScaling(cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	var out []Measurement
	for di, p := range cfg.Datasets {
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("scaling-%d", di))
		if err != nil {
			return nil, err
		}
		n := int(float64(p.Points) * cfg.Scale)
		if n < 10 {
			n = 10
		}
		nChunks := (n + cfg.ChunkSize - 1) / cfg.ChunkSize
		del := workload.DeleteOptions{
			Count:       nChunks / 5,
			RangeMillis: avgChunkSpan(p, cfg) / 2,
			Seed:        cfg.Seed,
		}
		b, err := build(cfg, p, 0.3, del, dir)
		if err != nil {
			cleanup()
			return nil, err
		}
		var baseLoads int64 = -1
		for _, par := range ScalingParallelism {
			runCfg := cfg
			runCfg.Parallelism = par
			m, err := measure(runCfg, b, p.Name, m4.Query{Tqs: b.tqs, Tqe: b.tqe, W: cfg.W})
			if err != nil {
				b.close()
				cleanup()
				return nil, err
			}
			if baseLoads < 0 {
				baseLoads = m.LSMStats.ChunksLoaded
			} else if m.LSMStats.ChunksLoaded != baseLoads {
				b.close()
				cleanup()
				return nil, fmt.Errorf("%s: chunk loads vary with parallelism: %d at 1 worker, %d at %d workers (singleflight broken)",
					p.Name, baseLoads, m.LSMStats.ChunksLoaded, par)
			}
			m.Param, m.X = "parallelism", float64(par)
			out = append(out, m)
		}
		b.close()
		cleanup()
	}
	return out, nil
}

// ScalingTitle names the experiment including the host's core budget, so a
// flat curve on a small machine reads as a hardware bound rather than a
// regression.
func ScalingTitle() string {
	return fmt.Sprintf("Scaling: workers vs latency (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0))
}
