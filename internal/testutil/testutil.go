// Package testutil builds synthetic LSM states (chunks with overlaps,
// overwrites and deletes) and a naive reference merge. It is shared by the
// mergeread, m4udf and m4lsm test suites so every operator is checked
// against the same ground truth.
package testutil

import (
	"math/rand"
	"sort"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// GenConfig bounds the random state generator.
type GenConfig struct {
	MaxChunks      int // chunks to generate (at least 1)
	MaxChunkPoints int // points per chunk (at least 1)
	MaxDeletes     int
	TimeHorizon    int64 // timestamps drawn from [0, TimeHorizon)
	ValueRange     float64
}

// DefaultGenConfig is a small, overlap-heavy configuration that exercises
// overwrites and deletes with high probability.
var DefaultGenConfig = GenConfig{
	MaxChunks:      6,
	MaxChunkPoints: 24,
	MaxDeletes:     4,
	TimeHorizon:    120,
	ValueRange:     16,
}

// RandomSnapshot builds a random chunk/delete state for one series. Chunk
// time ranges overlap freely and values collide across chunks, so
// overwrite-by-version and delete rules are all exercised.
func RandomSnapshot(rng *rand.Rand, cfg GenConfig) *storage.Snapshot {
	src := storage.NewMemSource()
	stats := &storage.Stats{}
	snap := &storage.Snapshot{SeriesID: "s", Stats: stats}
	ver := storage.Version(1)
	nChunks := 1 + rng.Intn(cfg.MaxChunks)
	nDeletes := rng.Intn(cfg.MaxDeletes + 1)
	// Interleave chunk flushes and deletes in version order.
	ops := make([]bool, 0, nChunks+nDeletes) // true = chunk
	for i := 0; i < nChunks; i++ {
		ops = append(ops, true)
	}
	for i := 0; i < nDeletes; i++ {
		ops = append(ops, false)
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	// Guarantee at least one chunk exists before anything else so the
	// snapshot is never empty.
	for i, isChunk := range ops {
		if isChunk {
			ops[0], ops[i] = ops[i], ops[0]
			break
		}
	}
	for _, isChunk := range ops {
		if isChunk {
			n := 1 + rng.Intn(cfg.MaxChunkPoints)
			seen := map[int64]bool{}
			var data series.Series
			for len(data) < n {
				t := rng.Int63n(cfg.TimeHorizon)
				if seen[t] {
					continue
				}
				seen[t] = true
				data = append(data, series.Point{T: t, V: float64(rng.Intn(int(cfg.ValueRange))) - cfg.ValueRange/2})
			}
			sort.Slice(data, func(i, j int) bool { return data[i].T < data[j].T })
			meta, err := src.AddChunk("s", ver, data)
			if err != nil {
				panic(err) // generator bug
			}
			snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, src, stats))
		} else {
			start := rng.Int63n(cfg.TimeHorizon)
			end := start + rng.Int63n(cfg.TimeHorizon/4+1)
			snap.Deletes = append(snap.Deletes, storage.Delete{
				SeriesID: "s", Version: ver, Start: start, End: end,
			})
		}
		ver++
	}
	return snap
}

// NaiveMerge computes the merged series of Definition 2.7 restricted to r
// with a map, independent of the heap-based iterator under test.
func NaiveMerge(snap *storage.Snapshot, r series.TimeRange) (series.Series, error) {
	type versioned struct {
		p   series.Point
		ver storage.Version
	}
	best := map[int64]versioned{}
	for _, c := range snap.Chunks {
		data, err := c.Load()
		if err != nil {
			return nil, err
		}
		for _, p := range data {
			if cur, ok := best[p.T]; !ok || c.Meta.Version > cur.ver {
				best[p.T] = versioned{p, c.Meta.Version}
			}
		}
	}
	var out series.Series
	for t, v := range best {
		if !r.Contains(t) {
			continue
		}
		dead := false
		for _, d := range snap.Deletes {
			if d.Version > v.ver && d.Covers(t) {
				dead = true
				break
			}
		}
		if !dead {
			out = append(out, v.p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out, nil
}
