package stepreg

import "sort"

// PlainIndex answers the same probes as Index with ordinary binary search
// and no learned model. It is the ablation baseline (DESIGN.md §6) and the
// reference implementation in tests.
type PlainIndex struct {
	ts []int64
}

// NewPlain wraps a strictly increasing timestamp slice.
func NewPlain(ts []int64) *PlainIndex { return &PlainIndex{ts: ts} }

func (px *PlainIndex) lowerBound(t int64) int {
	return sort.Search(len(px.ts), func(i int) bool { return px.ts[i] >= t })
}

// Exists implements Probe.
func (px *PlainIndex) Exists(t int64) bool {
	pos := px.lowerBound(t)
	return pos < len(px.ts) && px.ts[pos] == t
}

// FirstAfter implements Probe.
func (px *PlainIndex) FirstAfter(t int64) (int, bool) {
	pos := px.lowerBound(t)
	if pos < len(px.ts) && px.ts[pos] == t {
		pos++
	}
	if pos >= len(px.ts) {
		return 0, false
	}
	return pos, true
}

// LastBefore implements Probe.
func (px *PlainIndex) LastBefore(t int64) (int, bool) {
	pos := px.lowerBound(t) - 1
	if pos < 0 {
		return 0, false
	}
	return pos, true
}

var (
	_ Probe = (*Index)(nil)
	_ Probe = (*PlainIndex)(nil)
)
