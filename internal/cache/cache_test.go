package cache

import (
	"fmt"
	"sync"
	"testing"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// countingSource counts physical reads.
type countingSource struct {
	inner      storage.ChunkSource
	chunkReads int
	timeReads  int
	mu         sync.Mutex
}

func (c *countingSource) ReadChunk(m storage.ChunkMeta) (series.Series, error) {
	c.mu.Lock()
	c.chunkReads++
	c.mu.Unlock()
	return c.inner.ReadChunk(m)
}

func (c *countingSource) ReadTimes(m storage.ChunkMeta) ([]int64, error) {
	c.mu.Lock()
	c.timeReads++
	c.mu.Unlock()
	return c.inner.ReadTimes(m)
}

func setup(t *testing.T, capBytes int64) (*Source, *countingSource, storage.ChunkMeta) {
	t.Helper()
	mem := storage.NewMemSource()
	meta, err := mem.AddChunk("s", 1, series.Series{{T: 1, V: 1}, {T: 2, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingSource{inner: mem}
	return Wrap(cs, NewLRU(capBytes)), cs, meta
}

func TestCacheHitsSecondRead(t *testing.T) {
	src, phys, meta := setup(t, 1<<20)
	for i := 0; i < 3; i++ {
		data, err := src.ReadChunk(meta)
		if err != nil || len(data) != 2 {
			t.Fatal(data, err)
		}
	}
	if phys.chunkReads != 1 {
		t.Errorf("physical reads = %d, want 1", phys.chunkReads)
	}
	st := src.lru.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCachedChunkServesTimes(t *testing.T) {
	src, phys, meta := setup(t, 1<<20)
	if _, err := src.ReadChunk(meta); err != nil {
		t.Fatal(err)
	}
	ts, err := src.ReadTimes(meta)
	if err != nil || len(ts) != 2 || ts[1] != 2 {
		t.Fatal(ts, err)
	}
	if phys.timeReads != 0 {
		t.Errorf("time reads = %d, want 0 (served from cached chunk)", phys.timeReads)
	}
}

func TestTimesCachedSeparately(t *testing.T) {
	src, phys, meta := setup(t, 1<<20)
	src.ReadTimes(meta)
	src.ReadTimes(meta)
	if phys.timeReads != 1 {
		t.Errorf("time reads = %d, want 1", phys.timeReads)
	}
	// A full read still needs physical I/O (only timestamps cached).
	src.ReadChunk(meta)
	if phys.chunkReads != 1 {
		t.Errorf("chunk reads = %d, want 1", phys.chunkReads)
	}
}

func TestZeroCapacityPassthrough(t *testing.T) {
	src, phys, meta := setup(t, 0)
	src.ReadChunk(meta)
	src.ReadChunk(meta)
	if phys.chunkReads != 2 {
		t.Errorf("reads = %d, want 2 with cache disabled", phys.chunkReads)
	}
	if st := src.lru.Stats(); st.Hits != 0 || st.Entries != 0 {
		t.Errorf("disabled cache has state: %+v", st)
	}
}

func TestEviction(t *testing.T) {
	mem := storage.NewMemSource()
	lru := NewLRU(16 * 6) // room for ~3 two-point chunks (2*16 bytes each)
	cs := &countingSource{inner: mem}
	src := Wrap(cs, lru)
	var metas []storage.ChunkMeta
	for v := storage.Version(1); v <= 4; v++ {
		m, err := mem.AddChunk("s", v, series.Series{{T: int64(v), V: 1}, {T: int64(v) + 10, V: 2}})
		if err != nil {
			t.Fatal(err)
		}
		metas = append(metas, m)
	}
	for _, m := range metas {
		src.ReadChunk(m)
	}
	st := lru.Stats()
	if st.Entries != 3 || st.UsedBytes > 16*6 {
		t.Errorf("after filling: %+v", st)
	}
	// Oldest (version 1) must have been evicted.
	src.ReadChunk(metas[0])
	if cs.chunkReads != 5 {
		t.Errorf("reads = %d, want eviction to force a re-read", cs.chunkReads)
	}
	// Most recent should still hit.
	before := cs.chunkReads
	src.ReadChunk(metas[3])
	if cs.chunkReads != before {
		t.Error("recent entry was evicted")
	}
	// Filling left one eviction; the version-1 re-read evicted another.
	if st := lru.Stats(); st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
}

// TestChunkRefCacheAttribution: loads through a ChunkRef over a cached
// source count hits and misses into the query's Stats, the path traces use
// to report how much I/O the cache absorbed.
func TestChunkRefCacheAttribution(t *testing.T) {
	src, _, meta := setup(t, 1<<20)
	stats := &storage.Stats{}
	ref := storage.NewChunkRef(meta, src, stats)
	for i := 0; i < 3; i++ {
		if _, err := ref.Load(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.LoadTimes(); err != nil { // served by the cached chunk
		t.Fatal(err)
	}
	got := stats.Load()
	if got.CacheMisses != 1 || got.CacheHits != 3 {
		t.Errorf("hits=%d misses=%d, want 3/1", got.CacheHits, got.CacheMisses)
	}
	// An uncached source records neither.
	mem := storage.NewMemSource()
	m2, err := mem.AddChunk("u", 1, series.Series{{T: 1, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	stats2 := &storage.Stats{}
	ref2 := storage.NewChunkRef(m2, mem, stats2)
	if _, err := ref2.Load(); err != nil {
		t.Fatal(err)
	}
	if got := stats2.Load(); got.CacheHits != 0 || got.CacheMisses != 0 {
		t.Errorf("cold source counted cache traffic: %+v", got)
	}
}

func TestOversizeEntryNotCached(t *testing.T) {
	mem := storage.NewMemSource()
	lru := NewLRU(8)
	src := Wrap(&countingSource{inner: mem}, lru)
	meta, _ := mem.AddChunk("s", 1, series.Series{{T: 1, V: 1}, {T: 2, V: 2}})
	src.ReadChunk(meta)
	if st := lru.Stats(); st.Entries != 0 {
		t.Errorf("oversize entry cached: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	mem := storage.NewMemSource()
	lru := NewLRU(1 << 12)
	src := Wrap(&countingSource{inner: mem}, lru)
	var metas []storage.ChunkMeta
	for v := storage.Version(1); v <= 32; v++ {
		m, err := mem.AddChunk("s", v, series.Series{{T: int64(v), V: 1}})
		if err != nil {
			t.Fatal(err)
		}
		metas = append(metas, m)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := metas[(g*7+i)%len(metas)]
				if _, err := src.ReadChunk(m); err != nil {
					t.Error(err)
					return
				}
				if _, err := src.ReadTimes(m); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNilLRUSafe(t *testing.T) {
	var lru *LRU
	if _, ok := lru.get(key{}); ok {
		t.Error("nil LRU returned a hit")
	}
	lru.put(&entry{}) // must not panic
	if st := lru.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
}

func TestUpdateExistingKeyAdjustsSize(t *testing.T) {
	lru := NewLRU(1000)
	k := key{"s", 1, kindData}
	lru.put(&entry{key: k, size: 100})
	lru.put(&entry{key: k, size: 300})
	if st := lru.Stats(); st.UsedBytes != 300 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func ExampleLRU() {
	mem := storage.NewMemSource()
	meta, _ := mem.AddChunk("s", 1, series.Series{{T: 1, V: 1}})
	src := Wrap(mem, NewLRU(1<<20))
	src.ReadChunk(meta)
	src.ReadChunk(meta)
	st := src.lru.Stats()
	fmt.Println(st.Hits, st.Misses)
	// Output: 1 1
}
