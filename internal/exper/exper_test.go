package exper

import (
	"bytes"
	"strings"
	"testing"

	"m4lsm/internal/workload"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	// Chunk count must be well above W so most chunks are not split by
	// span boundaries (the paper's regime: thousands of chunks, w=1000).
	return Config{
		Scale:     0.002, // KOB ~3.9k pts (78 chunks), MF03 20k pts (400 chunks)
		ChunkSize: 50,
		W:         10,
		Reps:      1,
		Seed:      1,
		Datasets:  []workload.Preset{workload.KOB(), workload.MF03()},
	}
}

func checkMeasurements(t *testing.T, ms []Measurement, param string, perDataset int) {
	t.Helper()
	if len(ms) != 2*perDataset {
		t.Fatalf("measurements = %d, want %d", len(ms), 2*perDataset)
	}
	for _, m := range ms {
		if m.Param != param {
			t.Errorf("param = %q, want %q", m.Param, param)
		}
		if m.UDFLatency <= 0 || m.LSMLatency <= 0 {
			t.Errorf("%s x=%g: zero latency", m.Dataset, m.X)
		}
		if m.UDFStats.ChunksLoaded == 0 {
			t.Errorf("%s x=%g: UDF loaded nothing", m.Dataset, m.X)
		}
		if m.Speedup() <= 0 {
			t.Errorf("bad speedup %v", m.Speedup())
		}
	}
}

func TestRunFig10(t *testing.T) {
	cfg := tiny()
	ms, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkMeasurements(t, ms, "w", len(Fig10W))
	// Shape: the UDF load count is identical across w (it always loads
	// everything); the LSM load count must not decrease with w.
	for _, group := range groupByDataset(ms) {
		base := group[0].UDFStats.ChunksLoaded
		for _, m := range group {
			if m.UDFStats.ChunksLoaded != base {
				t.Errorf("%s: UDF loads vary with w: %d vs %d", m.Dataset, m.UDFStats.ChunksLoaded, base)
			}
		}
		lo, hi := group[0].LSMStats.ChunksLoaded, group[len(group)-1].LSMStats.ChunksLoaded
		if hi < lo {
			t.Errorf("%s: LSM loads decreased with w: %d -> %d", group[0].Dataset, lo, hi)
		}
		// LSM must load fewer chunks than UDF at the paper's w=1000...
		// at tiny scale use the smallest w instead.
		if group[0].LSMStats.ChunksLoaded >= base {
			t.Errorf("%s: LSM at w=%g loads %d chunks, UDF loads %d; want fewer",
				group[0].Dataset, group[0].X, group[0].LSMStats.ChunksLoaded, base)
		}
	}
}

func TestRunFig11(t *testing.T) {
	ms, err := RunFig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkMeasurements(t, ms, "rangeFraction", len(Fig11Fractions))
	// Shape: UDF loads grow with the range fraction.
	for _, group := range groupByDataset(ms) {
		if group[len(group)-1].UDFStats.ChunksLoaded <= group[0].UDFStats.ChunksLoaded {
			t.Errorf("%s: UDF loads did not grow with range: %d -> %d", group[0].Dataset,
				group[0].UDFStats.ChunksLoaded, group[len(group)-1].UDFStats.ChunksLoaded)
		}
	}
}

func TestRunFig12(t *testing.T) {
	ms, err := RunFig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkMeasurements(t, ms, "overlapPct", len(Fig12Overlaps))
	// Shape: at zero overlap M4-LSM loads almost nothing; the UDF load
	// count stays roughly constant (it loads everything regardless).
	for _, group := range groupByDataset(ms) {
		first := group[0]
		if first.LSMStats.ChunksLoaded > first.UDFStats.ChunksLoaded/2 {
			t.Errorf("%s overlap=0: LSM loads %d of %d chunks; want far fewer",
				first.Dataset, first.LSMStats.ChunksLoaded, first.UDFStats.ChunksLoaded)
		}
	}
}

func TestRunFig13(t *testing.T) {
	ms, err := RunFig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkMeasurements(t, ms, "deletePct", len(Fig13DeletePcts))
}

func TestRunFig14(t *testing.T) {
	ms, err := RunFig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	checkMeasurements(t, ms, "deleteRangeMult", len(Fig14RangeMultipliers))
}

func TestRunTable2(t *testing.T) {
	rows := RunTable2(Config{Scale: 0.001, Seed: 1})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows, 0.001)
	out := buf.String()
	for _, name := range []string{"BallSpeed", "MF03", "KOB", "RcvTime"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s in:\n%s", name, out)
		}
	}
}

func TestRunFig8(t *testing.T) {
	results := RunFig8(Config{Scale: 1, ChunkSize: 1000, Seed: 3,
		Datasets: []workload.Preset{workload.KOB()}})
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if r.Slope <= 0 || len(r.Segments) < 1 || r.ChunkPoints != 1000 {
		t.Errorf("fig8 = %+v", r)
	}
	// KOB's base cadence is 5s; the learned slope must reflect it.
	if r.MedianDelta != 5000 {
		t.Errorf("median delta = %d, want 5000", r.MedianDelta)
	}
	var buf bytes.Buffer
	WriteFig8(&buf, results)
	if !strings.Contains(buf.String(), "KOB") {
		t.Error("missing dataset in fig8 output")
	}
}

func TestWriters(t *testing.T) {
	ms, err := RunFig12(Config{
		Scale: 0.0003, ChunkSize: 100, W: 20, Reps: 1, Seed: 2,
		Datasets: []workload.Preset{workload.RcvTime()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var text, md bytes.Buffer
	WriteTable(&text, "Figure 12", ms)
	WriteMarkdown(&md, "Figure 12", ms)
	if !strings.Contains(text.String(), "RcvTime") || !strings.Contains(text.String(), "overlapPct") {
		t.Errorf("text output:\n%s", text.String())
	}
	if !strings.Contains(md.String(), "| overlapPct |") {
		t.Errorf("markdown output:\n%s", md.String())
	}
}

func TestRunFig1(t *testing.T) {
	rows, err := RunFig1(Config{Scale: 0.002, Seed: 5,
		Datasets: []workload.Preset{workload.KOB()}})
	if err != nil {
		t.Fatal(err)
	}
	// One row per technique: M4, MinMax, LTTB, MinMaxLTTB, Sampling, PAA.
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Technique == "M4" && r.PixelError != 0 {
			t.Errorf("M4 pixel error = %d, want 0", r.PixelError)
		}
		if r.PointsKept <= 0 || r.LitPixels <= 0 {
			t.Errorf("row = %+v", r)
		}
	}
	var buf bytes.Buffer
	WriteFig1(&buf, rows)
	if !strings.Contains(buf.String(), "M4") {
		t.Error("fig1 output missing techniques")
	}
}

func TestTitlesCoverAllExperiments(t *testing.T) {
	for _, name := range ExpNames() {
		if Titles[name] == "" {
			t.Errorf("missing title for %s", name)
		}
	}
}

func TestRunAblations(t *testing.T) {
	rows, err := RunAblations(Config{
		Scale: 0.002, ChunkSize: 50, W: 10, Reps: 1, Seed: 3,
		Datasets: []workload.Preset{workload.KOB()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 variants", len(rows))
	}
	byStudy := map[string][]AblationRow{}
	for _, r := range rows {
		if r.Latency <= 0 {
			t.Errorf("%s/%s: zero latency", r.Study, r.Variant)
		}
		byStudy[r.Study] = append(byStudy[r.Study], r)
	}
	// Eager loading must load strictly more chunks than lazy.
	loading := byStudy["loading"]
	if loading[1].Stats.ChunksLoaded <= loading[0].Stats.ChunksLoaded {
		t.Errorf("eager loads %d <= lazy loads %d",
			loading[1].Stats.ChunksLoaded, loading[0].Stats.ChunksLoaded)
	}
	// Full-chunk probing must read more bytes than timestamp-only.
	probe := byStudy["probe-load"]
	if probe[1].Stats.BytesRead <= probe[0].Stats.BytesRead {
		t.Errorf("full probe bytes %d <= partial %d",
			probe[1].Stats.BytesRead, probe[0].Stats.BytesRead)
	}
	var buf bytes.Buffer
	WriteAblations(&buf, rows)
	if !strings.Contains(buf.String(), "step regression") {
		t.Error("ablation output missing variants")
	}
}

func TestRunShards(t *testing.T) {
	ms, err := RunShards(Config{Scale: 0.002, ChunkSize: 200, W: 50, Reps: 1, Seed: 7, Dir: t.TempDir()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(ShardCounts) {
		t.Fatalf("points = %d, want %d", len(ms), len(ShardCounts))
	}
	for _, m := range ms {
		if m.Series != 4 || m.Points <= 0 {
			t.Errorf("measurement = %+v", m)
		}
		if m.WriteElapsed <= 0 || m.MultiLatency <= 0 || m.UDFLatency <= 0 {
			t.Errorf("non-positive timing: %+v", m)
		}
		if m.WritePointsPerSec <= 0 {
			t.Errorf("throughput = %f", m.WritePointsPerSec)
		}
	}
	var buf bytes.Buffer
	WriteShards(&buf, ShardsTitle(4), ms)
	if !strings.Contains(buf.String(), "shards") || !strings.Contains(buf.String(), "write pts/s") {
		t.Errorf("table output:\n%s", buf.String())
	}
}

func TestRunPyramid(t *testing.T) {
	ms, err := RunPyramid(Config{Scale: 0.0001, ChunkSize: 100, Reps: 1, Seed: 7, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(pyramidBaseSizes) {
		t.Fatalf("points = %d, want %d", len(ms), len(pyramidBaseSizes))
	}
	for _, m := range ms {
		if m.Points&(m.Points-1) != 0 {
			t.Errorf("size %d is not a power of two", m.Points)
		}
		if m.OnLatency <= 0 || m.OffLatency <= 0 {
			t.Errorf("n=%d: non-positive latency: %+v", m.Points, m)
		}
		// Power-of-two sizes at fixed w: every span decomposes into whole
		// cells, so the pyramid path reads no chunks and never falls back.
		if m.OnStats.PyramidSpans != PyramidW {
			t.Errorf("n=%d: pyramid spans = %d, want %d", m.Points, m.OnStats.PyramidSpans, PyramidW)
		}
		if m.OnStats.ChunksLoaded != 0 || m.OnStats.PyramidFallbackSpans != 0 {
			t.Errorf("n=%d: pyramid-on loaded %d chunks, %d fallback spans; want 0/0",
				m.Points, m.OnStats.ChunksLoaded, m.OnStats.PyramidFallbackSpans)
		}
		if m.OffStats.ChunksLoaded == 0 {
			t.Errorf("n=%d: pyramid-off loaded nothing", m.Points)
		}
	}
	var buf bytes.Buffer
	WritePyramid(&buf, PyramidTitle(), ms)
	if !strings.Contains(buf.String(), "pyramidOn") || !strings.Contains(buf.String(), "pyrCells") {
		t.Errorf("table output:\n%s", buf.String())
	}
}

func TestRunRecovery(t *testing.T) {
	ms, err := RunRecovery(Config{Scale: 0.0001, Reps: 1, Seed: 11, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(recoveryBaseSizes) {
		t.Fatalf("points = %d, want %d", len(ms), len(recoveryBaseSizes))
	}
	for _, m := range ms {
		// RunRecovery already fails unless segmented replay bytes are
		// strictly below monolithic; check the rest of the shape.
		if m.SegReplayBytes <= 0 || m.MonoReplayBytes <= 0 {
			t.Errorf("n=%d: non-positive replay bytes: %+v", m.Points, m)
		}
		if m.MonoReplay <= 0 || m.SegReplay <= 0 {
			t.Errorf("n=%d: non-positive replay time: %+v", m.Points, m)
		}
		if m.MonoSegments != 1 {
			t.Errorf("n=%d: monolithic side has %d segments, want 1", m.Points, m.MonoSegments)
		}
		if m.SegSegments < 2 {
			t.Errorf("n=%d: segmented side has %d segments, want >= 2", m.Points, m.SegSegments)
		}
		if m.SegRetired <= 0 {
			t.Errorf("n=%d: segmented side retired nothing", m.Points)
		}
		if m.ReplayShrink() <= 1 {
			t.Errorf("n=%d: shrink = %f, want > 1", m.Points, m.ReplayShrink())
		}
	}
	var buf bytes.Buffer
	WriteRecovery(&buf, RecoveryTitle(), ms)
	if !strings.Contains(buf.String(), "segWALbytes") || !strings.Contains(buf.String(), "shrink") {
		t.Errorf("table output:\n%s", buf.String())
	}
}

func TestRunIngest(t *testing.T) {
	ms, err := RunIngest(Config{Scale: 0.001, Reps: 1, Seed: 11, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	want := len(ingestWriters) * 2 * len(ingestBatches)
	if len(ms) != want {
		t.Fatalf("cells = %d, want %d", len(ms), want)
	}
	for _, m := range ms {
		// RunIngest already fails the in-sweep cross-check and the durable
		// 8-writer speedup floor; check the rest of the shape.
		if m.Points <= 0 || m.Elapsed <= 0 || m.PointsPerSec <= 0 {
			t.Errorf("cell %+v: non-positive measurement", m)
		}
		if m.Batch == 1 && m.Speedup != 1 {
			t.Errorf("cell %+v: baseline speedup = %f, want 1", m, m.Speedup)
		}
		if m.GroupRecords <= 0 {
			t.Errorf("cell %+v: no WAL records group-committed", m)
		}
		if m.GroupCommits > m.GroupRecords {
			t.Errorf("cell %+v: more groups than records", m)
		}
	}
	var buf bytes.Buffer
	WriteIngest(&buf, IngestTitle(), ms)
	if !strings.Contains(buf.String(), "points/s") || !strings.Contains(buf.String(), "walGroups") {
		t.Errorf("table output:\n%s", buf.String())
	}
}
