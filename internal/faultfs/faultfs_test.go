package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

func TestDecideDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, ErrRate: 0.3, FlipRate: 0.3, ShortRate: 0.2, SlowRate: 0.1}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 1000; i++ {
		site := fmt.Sprintf("chunk:s/v%d/data", i)
		if a.Decide(site) != b.Decide(site) {
			t.Fatalf("site %q: two injectors with the same seed disagree", site)
		}
		if a.Decide(site) != a.Decide(site) {
			t.Fatalf("site %q: repeated Decide disagrees with itself", site)
		}
	}
	other := NewInjector(Config{Seed: 43, ErrRate: 0.3, FlipRate: 0.3, ShortRate: 0.2, SlowRate: 0.1})
	same := 0
	for i := 0; i < 1000; i++ {
		site := fmt.Sprintf("chunk:s/v%d/data", i)
		if a.Decide(site) == other.Decide(site) {
			same++
		}
	}
	if same == 1000 {
		t.Error("changing the seed changed nothing")
	}
}

func TestDecideRates(t *testing.T) {
	in := NewInjector(Config{Seed: 7, ErrRate: 0.25, FlipRate: 0.15, SlowRate: 0.1})
	counts := map[Fault]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[in.Decide(fmt.Sprintf("site-%d", i))]++
	}
	for _, c := range []struct {
		f    Fault
		want float64
	}{{FaultErr, 0.25}, {FaultFlip, 0.15}, {FaultSlow, 0.1}, {FaultNone, 0.5}} {
		got := float64(counts[c.f]) / n
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("%v rate = %.3f, want ~%.2f", c.f, got, c.want)
		}
	}
}

func TestFileFaults(t *testing.T) {
	data := bytes.Repeat([]byte{0xAA}, 64)
	ra := bytes.NewReader(data)

	t.Run("err", func(t *testing.T) {
		f := WrapFile(ra, "f", NewInjector(Config{Seed: 1, ErrRate: 1}))
		if _, err := f.ReadAt(make([]byte, 16), 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("flip", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, FlipRate: 1})
		f := WrapFile(ra, "f", in)
		buf := make([]byte, 16)
		n, err := f.ReadAt(buf, 0)
		if err != nil || n != 16 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		diff := 0
		for i, b := range buf {
			diff += bitsSet(b ^ data[i])
		}
		if diff != 1 {
			t.Fatalf("%d bits flipped, want exactly 1", diff)
		}
		// Same site flips the same bit.
		buf2 := make([]byte, 16)
		f.ReadAt(buf2, 0)
		if !bytes.Equal(buf, buf2) {
			t.Error("repeated read flipped a different bit")
		}
		if in.Stats().Flips != 2 {
			t.Errorf("flips = %d, want 2", in.Stats().Flips)
		}
	})
	t.Run("short", func(t *testing.T) {
		f := WrapFile(ra, "f", NewInjector(Config{Seed: 1, ShortRate: 1}))
		buf := make([]byte, 16)
		n, err := f.ReadAt(buf, 0)
		if !errors.Is(err, ErrInjected) || n <= 0 || n >= 16 {
			t.Fatalf("n=%d err=%v, want partial read with error", n, err)
		}
	})
	t.Run("slow", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, SlowRate: 1, Latency: time.Microsecond})
		f := WrapFile(ra, "f", in)
		buf := make([]byte, 16)
		if n, err := f.ReadAt(buf, 0); err != nil || n != 16 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		if !bytes.Equal(buf, data[:16]) {
			t.Error("slow read corrupted data")
		}
		if in.Stats().Slows != 1 {
			t.Errorf("slows = %d", in.Stats().Slows)
		}
	})
	t.Run("none", func(t *testing.T) {
		f := WrapFile(ra, "f", NewInjector(Config{Seed: 1}))
		buf := make([]byte, 16)
		if n, err := f.ReadAt(buf, 3); err != nil || n != 16 || !bytes.Equal(buf, data[3:19]) {
			t.Fatalf("clean read broken: n=%d err=%v", n, err)
		}
	})
}

func bitsSet(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func memSnapshotSource(t *testing.T) (storage.ChunkMeta, *storage.MemSource) {
	t.Helper()
	src := storage.NewMemSource()
	meta, err := src.AddChunk("s", 1, series.Series{{T: 1, V: 2}, {T: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	return meta, src
}

func TestSourceFaults(t *testing.T) {
	meta, inner := memSnapshotSource(t)

	t.Run("err", func(t *testing.T) {
		s := Wrap(inner, NewInjector(Config{Seed: 1, ErrRate: 1}))
		if _, err := s.ReadChunk(meta); !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v", err)
		}
		if _, err := s.ReadTimes(meta); !errors.Is(err, ErrInjected) {
			t.Fatalf("times err = %v", err)
		}
	})
	t.Run("flip without sentinel", func(t *testing.T) {
		s := Wrap(inner, NewInjector(Config{Seed: 1, FlipRate: 1}))
		if _, err := s.ReadChunk(meta); !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("flip with sentinel", func(t *testing.T) {
		corrupt := errors.New("corrupt sentinel")
		s := Wrap(inner, NewInjector(Config{Seed: 1, FlipRate: 1}))
		s.CorruptErr = corrupt
		_, err := s.ReadChunk(meta)
		if !errors.Is(err, corrupt) {
			t.Fatalf("err = %v, want wrapped sentinel", err)
		}
		if errors.Is(err, ErrInjected) {
			t.Error("sentinel error should replace ErrInjected, not join it")
		}
	})
	t.Run("clean", func(t *testing.T) {
		s := Wrap(inner, NewInjector(Config{Seed: 1}))
		data, err := s.ReadChunk(meta)
		if err != nil || len(data) != 2 {
			t.Fatalf("data=%v err=%v", data, err)
		}
	})
}

func TestStepInjector(t *testing.T) {
	inj := NewStepInjector(3)
	sites := []string{"wal.append", "wal.appended", "flush.create:x", "flush.chunk:x"}
	var got []error
	for _, s := range sites {
		got = append(got, inj.Step(s))
	}
	for i, err := range got {
		if i == 2 {
			if !errors.Is(err, ErrCrash) {
				t.Errorf("step %d: err = %v, want ErrCrash", i+1, err)
			}
		} else if err != nil {
			t.Errorf("step %d: err = %v, want nil", i+1, err)
		}
	}
	if inj.Steps() != 4 {
		t.Errorf("steps = %d", inj.Steps())
	}
	if s := inj.Sites(); len(s) != 4 || s[2] != "flush.create:x" {
		t.Errorf("sites = %v", s)
	}

	counting := NewStepInjector(0)
	for i := 0; i < 100; i++ {
		if err := counting.Step("s"); err != nil {
			t.Fatalf("failAt 0 crashed at step %d", i+1)
		}
	}
}
