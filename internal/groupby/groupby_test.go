package groupby

import (
	"math"
	"math/rand"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/testutil"
)

func buildSnapshot(t *testing.T, chunks map[storage.Version]series.Series, dels []storage.Delete) *storage.Snapshot {
	t.Helper()
	src := storage.NewMemSource()
	stats := &storage.Stats{}
	snap := &storage.Snapshot{SeriesID: "s", Stats: stats, Deletes: dels}
	for ver, data := range chunks {
		meta, err := src.AddChunk("s", ver, data)
		if err != nil {
			t.Fatal(err)
		}
		snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, src, stats))
	}
	return snap
}

func TestComputeAllFunctions(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 0, V: 2}, {T: 10, V: 8}, {T: 20, V: 5}, {T: 60, V: 1}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 100, W: 2}
	fns := []Func{Count, Sum, Avg, Min, Max, First, Last}
	rows, err := Compute(snap, q, fns)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	want0 := []float64{3, 15, 5, 2, 8, 2, 5}
	for j, w := range want0 {
		if rows[0].Values[j] != w {
			t.Errorf("span0 %s = %g, want %g", fns[j], rows[0].Values[j], w)
		}
	}
	want1 := []float64{1, 1, 1, 1, 1, 1, 1}
	for j, w := range want1 {
		if rows[1].Values[j] != w {
			t.Errorf("span1 %s = %g, want %g", fns[j], rows[1].Values[j], w)
		}
	}
}

func TestEnvelopeUsesMergeFreePath(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 0, V: 2}, {T: 10, V: 8}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	rows, err := Compute(snap, q, []Func{Min, Max, First, Last})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Values[0] != 2 || rows[0].Values[1] != 8 || rows[0].Values[2] != 2 || rows[0].Values[3] != 8 {
		t.Fatalf("rows = %v", rows)
	}
	if snap.Stats.ChunksLoaded != 0 {
		t.Errorf("envelope functions loaded chunks: %v", snap.Stats)
	}
}

func TestCountForcesMerge(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 0, V: 2}, {T: 10, V: 8}},
	}, nil)
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	if _, err := Compute(snap, q, []Func{Count}); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.ChunksLoaded == 0 {
		t.Error("count must scan the merged series")
	}
}

func TestOverwritesNotDoubleCounted(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{
		1: {{T: 0, V: 2}, {T: 10, V: 4}},
		2: {{T: 10, V: 6}}, // overwrite, not an extra point
	}, []storage.Delete{{SeriesID: "s", Version: 3, Start: 0, End: 0}})
	q := m4.Query{Tqs: 0, Tqe: 100, W: 1}
	rows, err := Compute(snap, q, []Func{Count, Sum})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Values[0] != 1 || rows[0].Values[1] != 6 {
		t.Fatalf("rows = %v, want count=1 sum=6", rows)
	}
}

func TestValidation(t *testing.T) {
	snap := buildSnapshot(t, map[storage.Version]series.Series{1: {{T: 0, V: 1}}}, nil)
	if _, err := Compute(snap, m4.Query{Tqs: 0, Tqe: 0, W: 1}, []Func{Count}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := Compute(snap, m4.Query{Tqs: 0, Tqe: 10, W: 1}, nil); err == nil {
		t.Error("empty function list accepted")
	}
	if _, err := Compute(snap, m4.Query{Tqs: 0, Tqe: 10, W: 1}, []Func{Func(99)}); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestByName(t *testing.T) {
	for f := Func(0); f < numFuncs; f++ {
		got, ok := ByName(f.String())
		if !ok || got != f {
			t.Errorf("ByName(%s) = %v,%v", f, got, ok)
		}
	}
	if _, ok := ByName("median"); ok {
		t.Error("unknown name resolved")
	}
	if got, ok := ByName("COUNT"); !ok || got != Count {
		t.Error("case-insensitive lookup failed")
	}
	if Func(99).String() == "" {
		t.Error("unknown func name empty")
	}
}

// TestAgainstNaive cross-checks both paths against a naive computation on
// random LSM states.
func TestAgainstNaive(t *testing.T) {
	fns := []Func{Count, Sum, Avg, Min, Max, First, Last}
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := testutil.RandomSnapshot(rng, testutil.DefaultGenConfig)
		q := m4.Query{Tqs: rng.Int63n(60), Tqe: rng.Int63n(60) + 70, W: 1 + rng.Intn(8)}
		merged, err := testutil.NaiveMerge(snap, q.Range())
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Compute(snap, q, fns)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Also the envelope-only fast path.
		envRows, err := Compute(snap, q, []Func{Min, Max, First, Last})
		if err != nil {
			t.Fatalf("seed %d env: %v", seed, err)
		}
		bydSpan := map[int]Row{}
		for _, r := range rows {
			bydSpan[r.Span] = r
		}
		envBySpan := map[int]Row{}
		for _, r := range envRows {
			envBySpan[r.Span] = r
		}
		for i := 0; i < q.W; i++ {
			sub := merged.Slice(q.Span(i))
			row, ok := bydSpan[i]
			if len(sub) == 0 {
				if ok {
					t.Fatalf("seed %d span %d: row for empty span", seed, i)
				}
				continue
			}
			if !ok {
				t.Fatalf("seed %d span %d: missing row", seed, i)
			}
			count := float64(len(sub))
			sum := 0.0
			minV, maxV := math.Inf(1), math.Inf(-1)
			for _, p := range sub {
				sum += p.V
				minV = math.Min(minV, p.V)
				maxV = math.Max(maxV, p.V)
			}
			want := []float64{count, sum, sum / count, minV, maxV, sub[0].V, sub[len(sub)-1].V}
			for j, w := range want {
				if math.Abs(row.Values[j]-w) > 1e-9 {
					t.Fatalf("seed %d span %d %s: got %g, want %g", seed, i, fns[j], row.Values[j], w)
				}
			}
			env := envBySpan[i]
			if env.Values[0] != minV || env.Values[1] != maxV || env.Values[2] != sub[0].V || env.Values[3] != sub[len(sub)-1].V {
				t.Fatalf("seed %d span %d: envelope fast path %v, want %v", seed, i, env.Values, want[3:])
			}
		}
	}
}
