package encoding

import (
	"encoding/binary"
	"math"
)

// Plain codecs store 8 bytes per element. They exist as the uncompressed
// baseline for the codec ablation bench and as a debugging aid.

// EncodeTimesPlain appends count + raw little-endian timestamps.
func EncodeTimesPlain(dst []byte, ts []int64) []byte {
	dst = AppendUvarint(dst, uint64(len(ts)))
	for _, t := range ts {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(t))
	}
	return dst
}

// DecodeTimesPlain decodes a block produced by EncodeTimesPlain.
func DecodeTimesPlain(b []byte) ([]int64, []byte, error) {
	count, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(b)) < count*8 {
		return nil, nil, corruptf("plain timestamp block short: need %d bytes, have %d", count*8, len(b))
	}
	ts := make([]int64, count)
	for i := range ts {
		ts[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return ts, b[count*8:], nil
}

// EncodeValuesPlain appends count + raw little-endian float64 bits.
func EncodeValuesPlain(dst []byte, vs []float64) []byte {
	dst = AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeValuesPlain decodes a block produced by EncodeValuesPlain.
func DecodeValuesPlain(b []byte) ([]float64, []byte, error) {
	count, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(b)) < count*8 {
		return nil, nil, corruptf("plain value block short: need %d bytes, have %d", count*8, len(b))
	}
	vs := make([]float64, count)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vs, b[count*8:], nil
}
