package m4ql

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"m4lsm/internal/groupby"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/obs"
	"m4lsm/internal/storage"
)

// Result is the tabular output of an executed M4 query. Rows are one per
// non-empty span: the 0-based span index followed by the projected columns.
// Timestamps are reported as float64 (epoch milliseconds fit exactly).
type Result struct {
	Columns []string    `json:"columns"`
	Rows    [][]float64 `json:"rows"`

	// Execution metadata.
	Operator  string        `json:"operator"`
	Elapsed   time.Duration `json:"elapsedNs"`
	Stats     storage.Stats `json:"stats"`
	SpanCount int           `json:"spanCount"`

	// Partial is true when unreadable chunks were dropped from the query
	// (non-STRICT execution); Warnings describes each degradation.
	Partial  bool     `json:"partial,omitempty"`
	Warnings []string `json:"warnings,omitempty"`

	// Trace is the structured execution trace, present when the statement
	// had a TRACE clause or the context carried an armed trace.
	Trace *obs.Snapshot `json:"trace,omitempty"`
}

// Text renders the result as an aligned table for CLI output.
func (r *Result) Text() string {
	var sb strings.Builder
	widths := make([]int, len(r.Columns))
	cells := make([][]string, 0, len(r.Rows)+1)
	cells = append(cells, r.Columns)
	for _, row := range r.Rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		cells = append(cells, line)
	}
	for _, line := range cells {
		for i, c := range line {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, line := range cells {
		for i, c := range line {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "-- %d of %d spans non-empty, %s, %v, %v\n",
		len(r.Rows), r.SpanCount, r.Operator, r.Elapsed.Round(time.Microsecond), &r.Stats)
	if r.Partial {
		fmt.Fprintf(&sb, "-- PARTIAL RESULT: %d unreadable chunk(s) skipped\n", len(r.Warnings))
		for _, w := range r.Warnings {
			fmt.Fprintf(&sb, "--   warning: %s\n", w)
		}
	}
	return sb.String()
}

// Execute runs a parsed statement against the engine.
func Execute(e *lsm.Engine, stmt Statement) (*Result, error) {
	return ExecuteContext(context.Background(), e, stmt)
}

// ExecuteContext runs a parsed statement under a context: cancellation
// aborts the operator's worker pool and returns ctx.Err().
func ExecuteContext(ctx context.Context, e *lsm.Engine, stmt Statement) (*Result, error) {
	tr := obs.TraceOf(ctx)
	if tr == nil && stmt.Trace {
		ctx, tr = obs.WithTrace(ctx)
	}
	if len(stmt.Aggregates) > 0 {
		return executeGroupBy(ctx, e, stmt)
	}
	snap, err := e.Snapshot(stmt.SeriesID, stmt.Query.Range())
	if err != nil {
		return nil, err
	}
	if stmt.Strict {
		// Chunks already quarantined are excluded at snapshot time; a
		// STRICT query must fail rather than omit them silently.
		if ws := snap.Warnings.List(); len(ws) > 0 {
			return nil, fmt.Errorf("m4ql: strict read: %s", ws[0])
		}
	}
	start := time.Now()
	var aggs []m4.Aggregate
	switch stmt.Operator {
	case OpUDF:
		aggs, err = m4udf.ComputeContext(ctx, snap, stmt.Query, m4udf.Options{Parallelism: stmt.Parallelism, Strict: stmt.Strict, Metrics: e.Metrics()})
	default:
		aggs, err = m4lsm.ComputeContext(ctx, snap, stmt.Query, m4lsm.Options{Parallelism: stmt.Parallelism, Strict: stmt.Strict, Metrics: e.Metrics()})
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	warnings := snap.Warnings.List()
	res := &Result{
		Columns:   append([]string{"span"}, columnStrings(stmt.Columns)...),
		Operator:  stmt.Operator.String(),
		Elapsed:   elapsed,
		Stats:     snap.Stats.Load(),
		SpanCount: stmt.Query.W,
		Partial:   len(warnings) > 0,
		Warnings:  warnings,
	}
	for i, a := range aggs {
		if a.Empty {
			continue
		}
		row := make([]float64, 0, len(stmt.Columns)+1)
		row = append(row, float64(i))
		for _, c := range stmt.Columns {
			row = append(row, cell(a, c))
		}
		res.Rows = append(res.Rows, row)
	}
	if tr != nil {
		tr.Warn(warnings...)
		res.Trace = tr.Finish()
	}
	return res, nil
}

// executeGroupBy runs the aggregate form of the query: one row per
// non-empty span with the requested scalar functions. Envelope-only
// function sets (min/max/first/last) execute merge-free via the M4-LSM
// machinery; count/sum/avg scan the merged stream (the USING clause is
// informational only for this form).
func executeGroupBy(ctx context.Context, e *lsm.Engine, stmt Statement) (*Result, error) {
	tr := obs.TraceOf(ctx)
	snap, err := e.Snapshot(stmt.SeriesID, stmt.Query.Range())
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, err := groupby.Compute(snap, stmt.Query, stmt.Aggregates)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Phase("groupby", time.Since(start))
	}
	warnings := snap.Warnings.List()
	res := &Result{
		Columns:   []string{"span"},
		Operator:  stmt.Operator.String(),
		Elapsed:   time.Since(start),
		Stats:     snap.Stats.Load(),
		SpanCount: stmt.Query.W,
		Partial:   len(warnings) > 0,
		Warnings:  warnings,
	}
	for _, f := range stmt.Aggregates {
		res.Columns = append(res.Columns, f.String())
	}
	for _, r := range rows {
		row := make([]float64, 0, len(r.Values)+1)
		row = append(row, float64(r.Span))
		row = append(row, r.Values...)
		res.Rows = append(res.Rows, row)
	}
	if tr != nil {
		tr.Warn(warnings...)
		tr.SetCounters(res.Stats.Map())
		res.Trace = tr.Finish()
	}
	return res, nil
}

// Run parses and executes a query in one step. EXPLAIN statements execute
// the query and return the plan/cost summary as a single-column result.
func Run(e *lsm.Engine, query string) (*Result, error) {
	return RunContext(context.Background(), e, query)
}

// RunContext is Run under a context.
func RunContext(ctx context.Context, e *lsm.Engine, query string) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if stmt.Explain {
		return nil, fmt.Errorf("m4ql: use Explain for EXPLAIN statements")
	}
	return ExecuteContext(ctx, e, stmt)
}

// Explain executes the statement and renders the physical plan with its
// measured cost, the shape a user inspects to see whether the merge-free
// operator pruned chunks.
func Explain(e *lsm.Engine, stmt Statement) (string, error) {
	return ExplainContext(context.Background(), e, stmt)
}

// ExplainContext is Explain under a context.
func ExplainContext(ctx context.Context, e *lsm.Engine, stmt Statement) (string, error) {
	res, err := ExecuteContext(ctx, e, stmt)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	op := "M4-LSM (chunk merge free: metadata candidates + lazy loads)"
	if stmt.Operator == OpUDF {
		op = "M4-UDF (load all chunks, k-way merge, scan)"
	}
	fmt.Fprintf(&sb, "M4 representation query\n")
	fmt.Fprintf(&sb, "  series:   %s\n", stmt.SeriesID)
	fmt.Fprintf(&sb, "  range:    [%d, %d) in %d spans\n", stmt.Query.Tqs, stmt.Query.Tqe, stmt.Query.W)
	fmt.Fprintf(&sb, "  operator: %s\n", op)
	if stmt.Parallelism > 0 {
		fmt.Fprintf(&sb, "  parallel: %d workers\n", stmt.Parallelism)
	} else {
		fmt.Fprintf(&sb, "  parallel: GOMAXPROCS\n")
	}
	fmt.Fprintf(&sb, "  columns:  %s\n", strings.Join(columnStrings(stmt.Columns), ", "))
	fmt.Fprintf(&sb, "executed in %v\n", res.Elapsed.Round(time.Microsecond))
	s := res.Stats
	fmt.Fprintf(&sb, "  chunks loaded:        %d (+%d timestamp-only)\n", s.ChunksLoaded, s.TimeBlocksLoaded)
	fmt.Fprintf(&sb, "  chunks pruned:        %d (answered from metadata)\n", s.ChunksPruned)
	fmt.Fprintf(&sb, "  bytes read:           %d\n", s.BytesRead)
	fmt.Fprintf(&sb, "  points decoded:       %d\n", s.PointsDecoded)
	fmt.Fprintf(&sb, "  candidate rounds:     %d\n", s.CandidateRounds)
	fmt.Fprintf(&sb, "  index probes:         %d (%d existence, %d boundary)\n",
		s.IndexProbes, s.ExistProbes, s.BoundaryProbes)
	fmt.Fprintf(&sb, "  non-empty spans:      %d of %d\n", len(res.Rows), res.SpanCount)
	return sb.String(), nil
}

// RunAny parses and executes either a plain query (returning a tabular
// result) or an EXPLAIN statement (returning the plan text).
func RunAny(e *lsm.Engine, query string) (res *Result, explain string, err error) {
	return RunAnyContext(context.Background(), e, query)
}

// RunAnyContext is RunAny under a context.
func RunAnyContext(ctx context.Context, e *lsm.Engine, query string) (res *Result, explain string, err error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, "", err
	}
	if stmt.Explain {
		explain, err = ExplainContext(ctx, e, stmt)
		return nil, explain, err
	}
	res, err = ExecuteContext(ctx, e, stmt)
	return res, "", err
}

func columnStrings(cols []Column) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.String()
	}
	return out
}

func cell(a m4.Aggregate, c Column) float64 {
	switch c {
	case ColFirstTime:
		return float64(a.First.T)
	case ColFirstValue:
		return a.First.V
	case ColLastTime:
		return float64(a.Last.T)
	case ColLastValue:
		return a.Last.V
	case ColBottomTime:
		return float64(a.Bottom.T)
	case ColBottomValue:
		return a.Bottom.V
	case ColTopTime:
		return float64(a.Top.T)
	default:
		if c == ColTopValue {
			return a.Top.V
		}
		return 0
	}
}
