package encoding

import (
	"math"
	"math/bits"
)

// Gorilla XOR codec for float64 values (Pelkonen et al., VLDB'15), the
// scheme used by commodity time-series stores for slowly varying sensor
// readings. Each value is XORed with its predecessor; a zero XOR costs one
// bit, a XOR inside the previous leading/trailing-zero window costs the
// meaningful bits plus two control bits, otherwise 5+6 bits of window
// description are spent.
//
// Layout:
//
//	uvarint count
//	bit stream: first value as 64 raw bits, then per value:
//	  '0'                                  -> same as previous
//	  '10' + meaningful bits               -> fits previous window
//	  '11' + 5b leading + 6b sigbits + sig -> new window

// EncodeValues appends the encoded form of vs to dst.
func EncodeValues(dst []byte, vs []float64) []byte {
	dst = AppendUvarint(dst, uint64(len(vs)))
	if len(vs) == 0 {
		return dst
	}
	w := bitWriter{}
	prev := math.Float64bits(vs[0])
	w.writeBits(prev, 64)
	leading, trailing := uint(65), uint(0) // 65 marks "no window yet"
	for _, v := range vs[1:] {
		cur := math.Float64bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lz := uint(bits.LeadingZeros64(xor))
		tz := uint(bits.TrailingZeros64(xor))
		if lz >= 32 {
			lz = 31 // 5-bit field
		}
		if leading <= 64 && lz >= leading && tz >= trailing {
			// Fits inside the previous window.
			w.writeBit(0)
			n := 64 - leading - trailing
			w.writeBits(xor>>trailing, n)
			continue
		}
		leading, trailing = lz, tz
		n := 64 - leading - trailing
		w.writeBit(1)
		w.writeBits(uint64(leading), 5)
		// n is in [1, 64]; store n-1 in 6 bits.
		w.writeBits(uint64(n-1), 6)
		w.writeBits(xor>>trailing, n)
	}
	payload := w.bytes()
	dst = AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// DecodeValues decodes a block produced by EncodeValues and returns the
// values along with the remaining buffer.
func DecodeValues(b []byte) ([]float64, []byte, error) {
	count, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	const maxCount = 1 << 31
	if count > maxCount {
		return nil, nil, corruptf("value count %d too large", count)
	}
	vs := make([]float64, 0, count)
	if count == 0 {
		return vs, b, nil
	}
	plen, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if plen > uint64(len(b)) {
		return nil, nil, corruptf("value payload %d exceeds buffer %d", plen, len(b))
	}
	r := newBitReader(b[:plen])
	rest := b[plen:]
	first, err := r.readBits(64)
	if err != nil {
		return nil, nil, err
	}
	prev := first
	vs = append(vs, math.Float64frombits(prev))
	var leading, trailing uint
	for uint64(len(vs)) < count {
		ctl, err := r.readBit()
		if err != nil {
			return nil, nil, err
		}
		if ctl == 0 {
			vs = append(vs, math.Float64frombits(prev))
			continue
		}
		ctl, err = r.readBit()
		if err != nil {
			return nil, nil, err
		}
		if ctl == 1 {
			lz, err := r.readBits(5)
			if err != nil {
				return nil, nil, err
			}
			nm1, err := r.readBits(6)
			if err != nil {
				return nil, nil, err
			}
			leading = uint(lz)
			n := uint(nm1) + 1
			if leading+n > 64 {
				return nil, nil, corruptf("window leading=%d sig=%d", leading, n)
			}
			trailing = 64 - leading - n
		}
		n := 64 - leading - trailing
		sig, err := r.readBits(n)
		if err != nil {
			return nil, nil, err
		}
		prev ^= sig << trailing
		vs = append(vs, math.Float64frombits(prev))
	}
	return vs, rest, nil
}
