package viz

import (
	"math/rand"
	"testing"

	"m4lsm/internal/series"
)

func TestSSIMIdentical(t *testing.T) {
	c := NewCanvas(100, 60)
	c.DrawLine(0, 0, 99, 59)
	c.DrawLine(10, 50, 90, 5)
	if got := SSIM(c, c); got != 1 {
		t.Errorf("SSIM(c, c) = %v, want 1", got)
	}
	if got := DSSIM(c, c); got != 0 {
		t.Errorf("DSSIM(c, c) = %v, want 0", got)
	}
}

func TestSSIMEmptyPair(t *testing.T) {
	a, b := NewCanvas(32, 32), NewCanvas(32, 32)
	if got := SSIM(a, b); got != 1 {
		t.Errorf("SSIM of empty canvases = %v, want 1", got)
	}
}

// TestSSIMOrdersDegradation checks the metric ranks a slightly-perturbed
// raster above a heavily-degraded one, and both above noise.
func TestSSIMOrdersDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := make(series.Series, 4096)
	for i := range full {
		full[i] = series.Point{T: int64(i), V: float64(i%50) + rng.Float64()}
	}
	vp := ViewportFor(full, 0, 4096)
	const w, h = 200, 100
	ref := Rasterize(full, vp, w, h)

	// Slight: every 2nd point. Heavy: every 64th point.
	slight := Rasterize(sample(full, 2), vp, w, h)
	heavy := Rasterize(sample(full, 64), vp, w, h)

	dSlight, dHeavy := DSSIM(ref, slight), DSSIM(ref, heavy)
	if dSlight >= dHeavy {
		t.Errorf("DSSIM ordering violated: slight=%v heavy=%v", dSlight, dHeavy)
	}
	if dSlight > 0.1 {
		t.Errorf("slight degradation scored %v, expected near 0", dSlight)
	}
	for _, d := range []float64{dSlight, dHeavy} {
		if d < 0 || d > 1 {
			t.Errorf("DSSIM %v outside [0,1]", d)
		}
	}
}

func TestSSIMSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	SSIM(NewCanvas(10, 10), NewCanvas(10, 11))
}

func sample(s series.Series, stride int) series.Series {
	out := make(series.Series, 0, len(s)/stride+1)
	for i := 0; i < len(s); i += stride {
		out = append(out, s[i])
	}
	return out
}
