package tsfile

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"m4lsm/internal/encoding"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// TestEveryByteFlip flips every byte of a chunk file, one at a time, and
// requires that Open/ReadChunk/ReadTimes never panic and never silently
// return wrong data: each outcome must be either an error or data
// identical to the original. (Flips inside the chunk header's encoded
// fields can go unnoticed because reads address chunks via the footer
// metadata — those flips must then leave the returned data intact.)
func TestEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "orig.tsf")
	data := genSeries(64, 11)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := w.WriteChunk("s", 1, encoding.CodecGorilla, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, "flipped.tsf")
	for pos := 0; pos < len(raw); pos++ {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= mask
			if err := os.WriteFile(flipped, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at byte %d mask %x: %v", pos, mask, r)
					}
				}()
				r, err := Open(flipped)
				if err != nil {
					return // detected at open
				}
				defer r.Close()
				for _, m := range r.Metas() {
					got, err := r.ReadChunk(m)
					if err != nil {
						continue // detected at read
					}
					// An accepted read must return the original data (the
					// flip hit an unread region, e.g. the redundant chunk
					// header fields) and intact metadata.
					if !reflect.DeepEqual(got, data) {
						t.Fatalf("byte %d mask %x: silent data corruption", pos, mask)
					}
					if m.Count != meta.Count || m.Version != meta.Version {
						t.Fatalf("byte %d mask %x: silent metadata corruption", pos, mask)
					}
					if _, err := r.ReadTimes(m); err != nil {
						// Full read succeeded but times failed: allowed
						// (independent checksums), never silent.
						continue
					}
				}
			}()
		}
	}
}

// TestModsEveryByteFlip does the same for the delete sidecar: every flip
// must either drop records (torn tail) or error — never panic or invent a
// different delete.
func TestModsEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "orig.mods")
	m, err := OpenModLog(path)
	if err != nil {
		t.Fatal(err)
	}
	dels := []storage.Delete{
		{SeriesID: "s1", Version: 1, Start: 10, End: 20},
		{SeriesID: "s2", Version: 2, Start: -5, End: 5},
	}
	for _, d := range dels {
		if err := m.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, "flipped.mods")
	for pos := 0; pos < len(raw); pos++ {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xFF
		if err := os.WriteFile(flipped, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at byte %d: %v", pos, r)
				}
			}()
			ml, err := OpenModLog(flipped)
			if err != nil {
				return
			}
			defer ml.Close()
			for _, got := range ml.All() {
				found := false
				for _, want := range dels {
					if got == want {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("byte %d: invented delete %v", pos, got)
				}
			}
		}()
	}
}

// genSeries is shared with tsfile_test.go.
var _ = func() series.Series { return genSeries(1, 1) }
