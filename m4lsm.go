// Package m4lsm is an LSM-based time-series store with a database-native
// M4 visualization operator, a Go reproduction of "Time Series
// Representation for Visualization in Apache IoTDB" (SIGMOD 2024).
//
// A DB stores time series as write-once chunks with per-chunk metadata
// (first/last/bottom/top points) plus append-only range deletes, exactly
// the storage shape of the paper's §2.2. The M4 method computes, for each
// of w time spans, the four representation points that render a pixel-
// perfect two-color line chart. Two operators are available:
//
//   - OperatorLSM (default): the paper's chunk-merge-free M4-LSM, which
//     answers from chunk metadata, verifies candidates against deletes and
//     overwrites, and loads chunk data only when unavoidable.
//   - OperatorUDF: the baseline that merges every chunk online and scans
//     the assembled series.
//
// Basic usage:
//
//	db, err := m4lsm.Open(dir)
//	db.Write("root.sensor", m4lsm.Point{Time: 1000, Value: 21.5})
//	aggs, stats, err := db.M4("root.sensor", 0, 10_000, 1000)
//
// or through the SQL-ish surface of the paper's Appendix A.1:
//
//	res, err := db.Query(`SELECT M4(*) FROM root.sensor
//	    WHERE time >= 0 AND time < 10000 GROUP BY SPANS(1000)`)
package m4lsm

import (
	"context"
	"fmt"
	"time"

	"m4lsm/internal/encoding"
	"m4lsm/internal/govern"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	intm4lsm "m4lsm/internal/m4lsm"
	"m4lsm/internal/m4ql"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Point is a single time-value observation; Time is in epoch milliseconds.
type Point struct {
	Time  int64
	Value float64
}

// Aggregate holds the four M4 representation points of one time span. When
// Empty is true the span contains no points.
type Aggregate struct {
	First  Point
	Last   Point
	Bottom Point
	Top    Point
	Empty  bool
}

// Stats reports the I/O and compute work of one query.
type Stats struct {
	ChunksLoaded     int64 // full chunk loads
	TimeBlocksLoaded int64 // timestamp-only partial loads
	BytesRead        int64 // encoded bytes read
	PointsDecoded    int64 // points passed through a codec
	CandidateRounds  int64 // M4-LSM candidate generation/verification rounds
	IndexProbes      int64 // chunk-index probes (ExistProbes + BoundaryProbes)
	ExistProbes      int64 // existence checks verifying BP/TP candidates (Table 1 case a)
	BoundaryProbes   int64 // closest-point probes recalculating FP/LP under deletes (Table 1 case b)
	ChunksPruned     int64 // chunks answered purely from metadata
	CacheHits        int64 // loads served from the chunk cache (zero without WithChunkCache)
	CacheMisses      int64 // cached-source loads that paid I/O
}

// Operator selects the physical M4 operator.
type Operator int

// Available operators.
const (
	// OperatorLSM is the paper's chunk-merge-free operator (default).
	OperatorLSM Operator = iota
	// OperatorUDF is the merge-everything baseline.
	OperatorUDF
)

// Option configures Open.
type Option func(*config)

type config struct {
	flushThreshold int
	plainEncoding  bool
	syncWAL        bool
	disableWAL     bool
	cacheBytes     int64
	numShards      int
	disablePyramid bool
}

// WithFlushThreshold sets the number of buffered points per series that
// triggers a flush and bounds chunk size (default 1000, the paper's
// avg_series_point_number_threshold).
func WithFlushThreshold(n int) Option {
	return func(c *config) { c.flushThreshold = n }
}

// WithPlainEncoding disables the Gorilla/delta codecs and stores chunks
// uncompressed.
func WithPlainEncoding() Option {
	return func(c *config) { c.plainEncoding = true }
}

// WithSyncWAL fsyncs the write-ahead log on every write batch.
func WithSyncWAL() Option {
	return func(c *config) { c.syncWAL = true }
}

// WithoutWAL disables write-ahead logging; unflushed writes are lost on a
// crash. Meant for bulk loading.
func WithoutWAL() Option {
	return func(c *config) { c.disableWAL = true }
}

// WithChunkCache bounds an LRU over decoded chunk columns shared by all
// queries (useful for interactive pan/zoom, which re-reads chunks). Off by
// default: the paper's experiments run cold.
func WithChunkCache(bytes int64) Option {
	return func(c *config) { c.cacheBytes = bytes }
}

// WithShards partitions the engine into n shards by series hash: each shard
// owns its memtables, chunk registry and flush accounting under its own
// lock, so writers and flushes of different series proceed concurrently.
// Default 1. The on-disk WAL stays a single file (records are shard-tagged),
// and a database may be reopened with a different shard count.
func WithShards(n int) Option {
	return func(c *config) { c.numShards = n }
}

// WithoutPyramid disables the M4 rollup pyramid: no multi-resolution span
// aggregates are precomputed at flush/compact time and every query computes
// from chunk metadata and data. Results are identical either way; the knob
// exists for A/B comparison and to reclaim the pyramid's (small) flush-time
// and disk overhead when queries never hit the M4 path.
func WithoutPyramid() Option {
	return func(c *config) { c.disablePyramid = true }
}

// DB is an LSM time-series store rooted at a directory. All methods are
// safe for concurrent use.
type DB struct {
	engine *lsm.Engine
}

// Open opens (or creates) a database directory, recovering state from
// chunk files, the delete sidecar and the WAL.
func Open(dir string, opts ...Option) (*DB, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	codec := encoding.CodecGorilla
	if cfg.plainEncoding {
		codec = encoding.CodecPlain
	}
	e, err := lsm.Open(lsm.Options{
		Dir:             dir,
		FlushThreshold:  cfg.flushThreshold,
		Codec:           codec,
		SyncWAL:         cfg.syncWAL,
		DisableWAL:      cfg.disableWAL,
		ChunkCacheBytes: cfg.cacheBytes,
		NumShards:       cfg.numShards,
		DisablePyramid:  cfg.disablePyramid,
	})
	if err != nil {
		return nil, err
	}
	return &DB{engine: e}, nil
}

// Write buffers points for a series. Points may arrive out of order and
// may overwrite earlier timestamps (the latest write wins).
func (db *DB) Write(seriesID string, pts ...Point) error {
	internal := make([]series.Point, len(pts))
	for i, p := range pts {
		internal[i] = series.Point{T: p.Time, V: p.Value}
	}
	return db.engine.Write(seriesID, internal...)
}

// Delete records a range tombstone over the closed time range [start, end]
// of a series.
func (db *DB) Delete(seriesID string, start, end int64) error {
	return db.engine.Delete(seriesID, start, end)
}

// Flush persists buffered writes as chunks.
func (db *DB) Flush() error { return db.engine.Flush() }

// Compact merges all chunks of all series into fresh non-overlapping
// chunks with deletes applied — the standard LSM maintenance operation.
// The paper's experiments run without compaction (its storage states are
// exactly what M4-LSM targets); after Compact, M4 queries hit the pure
// metadata fast path.
func (db *DB) Compact() error { return db.engine.Compact() }

// Close flushes and releases all resources.
func (db *DB) Close() error { return db.engine.Close() }

// SeriesIDs lists every stored series, sorted.
func (db *DB) SeriesIDs() []string { return db.engine.SeriesIDs() }

// M4Options configure one M4 query; the zero value runs the paper's
// default operator (M4-LSM) on every available core.
type M4Options struct {
	// Operator selects the physical operator (default M4-LSM).
	Operator Operator
	// Parallelism bounds the worker goroutines evaluating the query:
	// 0 uses GOMAXPROCS, 1 forces the paper's single-threaded execution.
	// Results are byte-identical at every setting.
	Parallelism int
	// StrictReads fails the query on any unreadable chunk instead of
	// degrading. By default a chunk whose read fails is dropped from the
	// query, the result is marked Partial and a warning describes what
	// was skipped; persistently corrupt chunks (CRC/decode failures) are
	// additionally quarantined out of future queries.
	StrictReads bool
	// MaxChunks, MaxPoints and Timeout set the query's resource budget:
	// at most MaxChunks physical chunk loads, at most MaxPoints decoded
	// points, at most Timeout of wall clock. Zero fields are unlimited.
	// An exceeded budget behaves like an unreadable chunk: the query fails
	// typed (wrapping govern.ErrBudgetExceeded) under StrictReads, and
	// otherwise degrades to a Partial result with warnings.
	MaxChunks int64
	MaxPoints int64
	Timeout   time.Duration
}

// budget builds the options' resource budget (nil when unlimited).
func (o M4Options) budget() *govern.Budget {
	return govern.NewBudget(govern.Limits{MaxChunks: o.MaxChunks, MaxPoints: o.MaxPoints, Timeout: o.Timeout})
}

// M4 runs an M4 representation query with the default operator (M4-LSM):
// the half-open time range [tqs, tqe) is divided into w spans and the
// first/last/bottom/top points of each are returned.
func (db *DB) M4(seriesID string, tqs, tqe int64, w int) ([]Aggregate, Stats, error) {
	return db.M4WithOptions(seriesID, tqs, tqe, w, M4Options{})
}

// M4With runs an M4 representation query with an explicit operator.
func (db *DB) M4With(seriesID string, tqs, tqe int64, w int, op Operator) ([]Aggregate, Stats, error) {
	return db.M4WithOptions(seriesID, tqs, tqe, w, M4Options{Operator: op})
}

// M4WithOptions runs an M4 representation query with explicit options. The
// tuple form cannot surface warnings, so it always reads strictly: an
// unreadable or quarantined chunk is an error, never silently missing data.
// Use M4Context for graceful degradation.
func (db *DB) M4WithOptions(seriesID string, tqs, tqe int64, w int, opts M4Options) ([]Aggregate, Stats, error) {
	opts.StrictReads = true
	res, err := db.M4Context(context.Background(), seriesID, tqs, tqe, w, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Aggregates, res.Stats, nil
}

// M4Result is the full output of M4Context: the aggregates plus the
// degradation status of the read path.
type M4Result struct {
	Aggregates []Aggregate
	Stats      Stats
	// Partial is true when unreadable chunks were dropped from the query;
	// the aggregates cover only the chunks that could be read.
	Partial bool
	// Warnings describes each dropped or quarantined chunk.
	Warnings []string
}

// M4Context runs an M4 representation query under a context. Cancellation
// stops the query's worker pool and returns ctx.Err(). Unless
// opts.StrictReads is set, unreadable chunks degrade the result instead of
// failing it: they are skipped (corrupt ones quarantined engine-wide) and
// reported in M4Result.Warnings.
func (db *DB) M4Context(ctx context.Context, seriesID string, tqs, tqe int64, w int, opts M4Options) (*M4Result, error) {
	q := m4.Query{Tqs: tqs, Tqe: tqe, W: w}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	snap, err := db.engine.Snapshot(seriesID, q.Range())
	if err != nil {
		return nil, err
	}
	if opts.StrictReads {
		// Chunks already quarantined are excluded at snapshot time; a
		// strict read must fail rather than omit them silently.
		if ws := snap.Warnings.List(); len(ws) > 0 {
			return nil, fmt.Errorf("m4lsm: strict read: %s", ws[0])
		}
	}
	budget := opts.budget()
	var aggs []m4.Aggregate
	switch opts.Operator {
	case OperatorLSM:
		aggs, err = intm4lsm.ComputeContext(ctx, snap, q, intm4lsm.Options{Parallelism: opts.Parallelism, Strict: opts.StrictReads, Metrics: db.engine.Metrics(), Budget: budget})
	case OperatorUDF:
		aggs, err = m4udf.ComputeContext(ctx, snap, q, m4udf.Options{Parallelism: opts.Parallelism, Strict: opts.StrictReads, Metrics: db.engine.Metrics(), Budget: budget})
	default:
		return nil, fmt.Errorf("m4lsm: unknown operator %d", opts.Operator)
	}
	if err != nil {
		return nil, err
	}
	warnings := snap.Warnings.List()
	return &M4Result{
		Aggregates: publicAggregates(aggs),
		Stats:      publicStats(snap.Stats.Load()),
		Partial:    len(warnings) > 0,
		Warnings:   warnings,
	}, nil
}

// RepresentOptions configure one representation query: the usual execution
// knobs plus the representation choice.
type RepresentOptions struct {
	M4Options
	// Representation names the reduction: "m4" (default), "minmax", "lttb"
	// or "minmaxlttb[:ratio]" with ratio in [2, 64] (default 4).
	Representation string
}

// RepresentResult is the output of RepresentContext: the reduced points
// plus the degradation status of the read path.
type RepresentResult struct {
	Points []Point
	Stats  Stats
	// Partial is true when unreadable chunks were dropped from the query.
	Partial bool
	// Warnings describes each dropped or quarantined chunk.
	Warnings []string
}

// Represent runs a representation query — MinMax, LTTB, MinMaxLTTB, or M4
// itself — returning the reduced point list instead of per-span aggregates.
// Like M4, the tuple form always reads strictly; use RepresentContext for
// graceful degradation. The representation argument takes the same names as
// the m4ql REPRESENT clause ("minmax", "lttb", "minmaxlttb:8", ...).
func (db *DB) Represent(seriesID string, tqs, tqe int64, w int, representation string) ([]Point, Stats, error) {
	opts := RepresentOptions{Representation: representation}
	opts.StrictReads = true
	res, err := db.RepresentContext(context.Background(), seriesID, tqs, tqe, w, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Points, res.Stats, nil
}

// RepresentContext runs a representation query under a context. The
// execution path follows opts.Operator: the default M4-LSM path answers
// minmax/minmaxlttb from chunk metadata and pyramid cells and gives lttb a
// dedicated merge path, while OperatorUDF merges everything and reduces the
// assembled series. Both produce bit-identical points.
func (db *DB) RepresentContext(ctx context.Context, seriesID string, tqs, tqe int64, w int, opts RepresentOptions) (*RepresentResult, error) {
	spec, err := reprops.ParseSpec(repOrDefault(opts.Representation))
	if err != nil {
		return nil, err
	}
	q := m4.Query{Tqs: tqs, Tqe: tqe, W: w}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	snap, err := db.engine.Snapshot(seriesID, q.Range())
	if err != nil {
		return nil, err
	}
	if opts.StrictReads {
		if ws := snap.Warnings.List(); len(ws) > 0 {
			return nil, fmt.Errorf("m4lsm: strict read: %s", ws[0])
		}
	}
	budget := opts.budget()
	var pts series.Series
	switch opts.Operator {
	case OperatorLSM:
		pts, err = intm4lsm.ReduceContext(ctx, snap, q, spec, intm4lsm.Options{Parallelism: opts.Parallelism, Strict: opts.StrictReads, Metrics: db.engine.Metrics(), Budget: budget})
	case OperatorUDF:
		pts, err = m4udf.ReduceContext(ctx, snap, q, spec, m4udf.Options{Parallelism: opts.Parallelism, Strict: opts.StrictReads, Metrics: db.engine.Metrics(), Budget: budget})
	default:
		return nil, fmt.Errorf("m4lsm: unknown operator %d", opts.Operator)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = publicPoint(p)
	}
	warnings := snap.Warnings.List()
	return &RepresentResult{
		Points:   out,
		Stats:    publicStats(snap.Stats.Load()),
		Partial:  len(warnings) > 0,
		Warnings: warnings,
	}, nil
}

func repOrDefault(r string) string {
	if r == "" {
		return "m4"
	}
	return r
}

// SeriesAggregates is one series' share of a multi-series M4 query.
type SeriesAggregates struct {
	SeriesID   string
	Aggregates []Aggregate
	// Stats counts only this series' work; sum across the slice for the
	// query's total cost.
	Stats Stats
	// Partial/Warnings report degradation of this series' read path.
	Partial  bool
	Warnings []string
}

// M4Multi runs one M4 query over several series as a single batch: all
// series' span×function tasks share one worker pool instead of queueing
// series by series. Results are positional — out[i] belongs to ids[i] — and
// identical to per-series M4 calls. Like M4, the plain form reads strictly.
func (db *DB) M4Multi(ids []string, tqs, tqe int64, w int) ([]SeriesAggregates, error) {
	return db.M4MultiContext(context.Background(), ids, tqs, tqe, w, M4Options{StrictReads: true})
}

// M4MultiContext is M4Multi under a context with explicit options.
// Cancellation stops the shared pool and returns ctx.Err(); without
// opts.StrictReads, unreadable chunks degrade only the series they belong
// to, reported in that series' Partial/Warnings.
func (db *DB) M4MultiContext(ctx context.Context, ids []string, tqs, tqe int64, w int, opts M4Options) ([]SeriesAggregates, error) {
	q := m4.Query{Tqs: tqs, Tqe: tqe, W: w}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	snaps := make([]*storage.Snapshot, len(ids))
	for i, id := range ids {
		snap, err := db.engine.Snapshot(id, q.Range())
		if err != nil {
			return nil, fmt.Errorf("m4lsm: series %q: %w", id, err)
		}
		if opts.StrictReads {
			if ws := snap.Warnings.List(); len(ws) > 0 {
				return nil, fmt.Errorf("m4lsm: strict read: series %q: %s", id, ws[0])
			}
		}
		snaps[i] = snap
	}
	budget := opts.budget()
	var outs [][]m4.Aggregate
	var err error
	switch opts.Operator {
	case OperatorLSM:
		outs, err = intm4lsm.ComputeMultiContext(ctx, snaps, q, intm4lsm.Options{Parallelism: opts.Parallelism, Strict: opts.StrictReads, Metrics: db.engine.Metrics(), Budget: budget})
	case OperatorUDF:
		outs, err = m4udf.ComputeMultiContext(ctx, snaps, q, m4udf.Options{Parallelism: opts.Parallelism, Strict: opts.StrictReads, Metrics: db.engine.Metrics(), Budget: budget})
	default:
		return nil, fmt.Errorf("m4lsm: unknown operator %d", opts.Operator)
	}
	if err != nil {
		return nil, err
	}
	res := make([]SeriesAggregates, len(ids))
	for i, id := range ids {
		warnings := snaps[i].Warnings.List()
		res[i] = SeriesAggregates{
			SeriesID:   id,
			Aggregates: publicAggregates(outs[i]),
			Stats:      publicStats(snaps[i].Stats.Load()),
			Partial:    len(warnings) > 0,
			Warnings:   warnings,
		}
	}
	return res, nil
}

// Query parses and executes a query in the SQL-ish form of the paper's
// Appendix A.1, e.g.
//
//	SELECT M4(*) FROM root.kob WHERE time >= 0 AND time < 1000000
//	GROUP BY SPANS(1000) USING LSM
func (db *DB) Query(query string) (*QueryResult, error) {
	return db.QueryContext(context.Background(), query)
}

// QueryContext is Query under a context: cancellation aborts the query and
// returns ctx.Err().
func (db *DB) QueryContext(ctx context.Context, query string) (*QueryResult, error) {
	res, err := m4ql.RunContext(ctx, db.engine, query)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Result: res}, nil
}

// QueryResult is the tabular output of DB.Query. It embeds the m4ql result
// (columns, one row per non-empty span, timing and cost stats) and renders
// with Text.
type QueryResult struct {
	*m4ql.Result
}

// Info summarizes storage state.
type Info struct {
	Files          int
	UnseqFiles     int // files holding out-of-order (unsequence) data
	Chunks         int
	MemtablePoints int
	Deletes        int
	Shards         int

	// BadFiles counts chunk files quarantined on disk (renamed *.bad)
	// during crash recovery.
	BadFiles int
	// QuarantinedChunks counts chunks excluded from queries after a CRC
	// or decode failure.
	QuarantinedChunks int
	// ReadOnly reports disk-full degraded mode: writes are rejected with
	// a retryable error while queries keep serving; the engine recovers
	// automatically once space returns. ReadOnlyReason says what tripped it.
	ReadOnly       bool
	ReadOnlyReason string
}

// Info returns storage statistics.
func (db *DB) Info() Info {
	i := db.engine.Info()
	return Info{
		Files:             i.Files,
		UnseqFiles:        i.UnseqFiles,
		Chunks:            i.Chunks,
		MemtablePoints:    i.MemtablePoints,
		Deletes:           i.Deletes,
		Shards:            i.Shards,
		BadFiles:          i.BadFiles,
		QuarantinedChunks: i.QuarantinedChunks,
		ReadOnly:          i.ReadOnly,
		ReadOnlyReason:    i.ReadOnlyReason,
	}
}

func publicPoint(p series.Point) Point { return Point{Time: p.T, Value: p.V} }

func publicAggregates(in []m4.Aggregate) []Aggregate {
	out := make([]Aggregate, len(in))
	for i, a := range in {
		if a.Empty {
			out[i] = Aggregate{Empty: true}
			continue
		}
		out[i] = Aggregate{
			First:  publicPoint(a.First),
			Last:   publicPoint(a.Last),
			Bottom: publicPoint(a.Bottom),
			Top:    publicPoint(a.Top),
		}
	}
	return out
}

func publicStats(s storage.Stats) Stats {
	return Stats{
		ChunksLoaded:     s.ChunksLoaded,
		TimeBlocksLoaded: s.TimeBlocksLoaded,
		BytesRead:        s.BytesRead,
		PointsDecoded:    s.PointsDecoded,
		CandidateRounds:  s.CandidateRounds,
		IndexProbes:      s.IndexProbes,
		ExistProbes:      s.ExistProbes,
		BoundaryProbes:   s.BoundaryProbes,
		ChunksPruned:     s.ChunksPruned,
		CacheHits:        s.CacheHits,
		CacheMisses:      s.CacheMisses,
	}
}
