// Package mergeread implements the MergeReader of Fig. 15: it loads every
// chunk of a snapshot and streams the merged ("latest") time series of
// Definition 2.7 in time order, resolving overwrites by version number and
// applying range deletes.
//
// This is exactly the work the M4-LSM operator avoids; the M4-UDF baseline
// is built on top of this package.
package mergeread

import (
	"container/heap"
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Loaded holds every chunk of a snapshot decoded exactly once, ready to
// feed any number of iterators. Splitting the load from the merge lets the
// parallel baseline fan per-span scans across goroutines without loading
// (and counting) each chunk once per worker.
type Loaded struct {
	chunks  []loadedChunk
	deletes *storage.DeleteIndex
}

type loadedChunk struct {
	data series.Series
	ver  storage.Version
}

// Load decodes every chunk of the snapshot, fanning the loads across at
// most parallelism goroutines (<= 1 loads sequentially). Each chunk is
// read exactly once, so Stats.ChunksLoaded is independent of parallelism.
// Any read failure fails the load; see LoadContext for graceful mode.
func Load(snap *storage.Snapshot, parallelism int) (*Loaded, error) {
	return LoadContext(context.Background(), snap, LoadOptions{Parallelism: parallelism, Strict: true})
}

// LoadOptions configure LoadContext.
type LoadOptions struct {
	// Parallelism bounds the loader goroutines; <= 1 loads sequentially.
	Parallelism int
	// Strict fails the whole load on the first chunk read error. The
	// default drops unreadable chunks, reporting each through the
	// snapshot's Warnings/OnQuarantine, and merges the rest.
	Strict bool
	// Budget, when non-nil, caps the load: each chunk charges one chunk
	// plus its point count before it is read, and the budget's deadline is
	// checked with the same charge. A refused chunk fails the load under
	// Strict (the error wraps govern.ErrBudgetExceeded) and is otherwise
	// dropped from the merge with a warning — never a quarantine, since
	// its bytes are fine.
	Budget *govern.Budget
}

// LoadContext decodes every chunk of the snapshot under a context.
// Cancellation is observed between chunk loads and returns ctx.Err(); the
// snapshot's counters are final once LoadContext returns.
func LoadContext(ctx context.Context, snap *storage.Snapshot, opts LoadOptions) (*Loaded, error) {
	l := &Loaded{
		chunks:  make([]loadedChunk, len(snap.Chunks)),
		deletes: storage.NewDeleteIndex(snap.Deletes),
	}
	errs := make([]error, len(snap.Chunks))
	tr := obs.TraceOf(ctx)
	load := func(i int) {
		if errs[i] = ctx.Err(); errs[i] != nil {
			return
		}
		if errs[i] = opts.Budget.ChargeChunk(int64(snap.Chunks[i].Meta.Count)); errs[i] != nil {
			return
		}
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		data, err := snap.Chunks[i].Load()
		if tr != nil {
			// Chunk index as the task coordinate: a UDF trace shows each
			// load the merge paid, next to the scan tasks.
			tr.Task(i, "load", time.Since(t0))
		}
		l.chunks[i] = loadedChunk{data: data, ver: snap.Chunks[i].Meta.Version}
		errs[i] = err
	}
	parallelism := opts.Parallelism
	if parallelism > len(snap.Chunks) {
		parallelism = len(snap.Chunks)
	}
	if parallelism <= 1 {
		for i := range snap.Chunks {
			load(i)
			if errs[i] != nil && opts.Strict {
				return nil, errs[i]
			}
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		wg.Add(parallelism)
		for w := 0; w < parallelism; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(snap.Chunks) || ctx.Err() != nil {
						return
					}
					load(i)
				}
			}()
		}
		wg.Wait()
	}
	// A cancelled run may have skipped chunks without recording an error;
	// never hand back a silently truncated Loaded.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Resolve errors by chunk index after all workers have joined, so the
	// outcome (and the warning order) is deterministic across schedules.
	for i, err := range errs {
		if err == nil {
			continue
		}
		if opts.Strict {
			return nil, err
		}
		if errors.Is(err, govern.ErrBudgetExceeded) {
			// Nothing is wrong with the chunk's bytes: warn, don't
			// quarantine.
			m := snap.Chunks[i].Meta
			snap.Warnings.Add("chunk %s v%d skipped by budget: %v", m.SeriesID, m.Version, err)
		} else {
			snap.ReportBadChunk(snap.Chunks[i].Meta, err)
		}
		l.chunks[i] = loadedChunk{} // empty series: dropped from the merge
	}
	return l, nil
}

// Iterator positions a merge over the loaded chunks restricted to the
// half-open range r. Iterators are independent: many goroutines may each
// run their own over the same Loaded.
func (l *Loaded) Iterator(r series.TimeRange) *Iterator {
	it := &Iterator{deletes: l.deletes, end: r.End}
	for _, c := range l.chunks {
		pos := sort.Search(len(c.data), func(i int) bool { return c.data[i].T >= r.Start })
		if pos >= len(c.data) || c.data[pos].T >= r.End {
			continue
		}
		it.h = append(it.h, &cursor{data: c.data, pos: pos, ver: c.ver})
	}
	heap.Init(&it.h)
	return it
}

// Iterator streams the merged series of a snapshot restricted to a
// half-open time range. Chunks are loaded eagerly at construction, matching
// the baseline's "load all chunks, order points by time" behaviour (§1.1).
type Iterator struct {
	h       cursorHeap
	deletes *storage.DeleteIndex
	end     int64
}

type cursor struct {
	data series.Series
	pos  int
	ver  storage.Version
}

type cursorHeap []*cursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	ti, tj := h[i].data[h[i].pos].T, h[j].data[h[j].pos].T
	if ti != tj {
		return ti < tj
	}
	return h[i].ver > h[j].ver // larger version first among equal times
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) {
	*h = append(*h, x.(*cursor))
}
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// NewIterator loads every chunk of the snapshot and positions the merge at
// the first point inside r.
func NewIterator(snap *storage.Snapshot, r series.TimeRange) (*Iterator, error) {
	l, err := Load(snap, 1)
	if err != nil {
		return nil, err
	}
	return l.Iterator(r), nil
}

// Next returns the next latest point in time order, and false when the
// range is exhausted.
func (it *Iterator) Next() (series.Point, bool) {
	for len(it.h) > 0 {
		t := it.h[0].data[it.h[0].pos].T
		if t >= it.end {
			return series.Point{}, false
		}
		// The heap orders equal timestamps by descending version, so the
		// top cursor holds the latest write for t.
		winner := it.h[0].data[it.h[0].pos]
		winnerVer := it.h[0].ver
		for len(it.h) > 0 && it.h[0].data[it.h[0].pos].T == t {
			c := it.h[0]
			c.pos++
			if c.pos >= len(c.data) {
				heap.Pop(&it.h)
			} else {
				heap.Fix(&it.h, 0)
			}
		}
		if it.deletes.Covered(t, winnerVer) {
			continue
		}
		return winner, true
	}
	return series.Point{}, false
}

// Merge materializes the merged series of Definition 2.7 restricted to r.
// It is the reference implementation used by tests and the baseline.
func Merge(snap *storage.Snapshot, r series.TimeRange) (series.Series, error) {
	it, err := NewIterator(snap, r)
	if err != nil {
		return nil, err
	}
	var out series.Series
	for {
		p, ok := it.Next()
		if !ok {
			return out, nil
		}
		out = append(out, p)
	}
}
