package m4lsm

import (
	"fmt"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Pyramid-aware span planning. When the snapshot carries a rollup pyramid
// (storage.Snapshot.Pyramid), a span whose interior decomposes into valid
// precomputed cells is answered as
//
//	Combine(left fragment, cells..., right fragment)
//
// where the fragments are the sub-cell slivers at the span's edges,
// computed exactly by the ordinary candidate loop over only the chunks
// overlapping them. Every cell holds the FP/LP/BP/TP of the fully-merged
// series restricted to its interval (cells are built by mergeread at flush
// time), and m4.Combine is exact over a time-ordered partition, so the
// result is identical to running the candidate loop over the whole span —
// but its cost is O(cells + fragment chunks), independent of how many
// chunks or points the span's interior holds. Spans the pyramid cannot
// cover (stale cells, memtable overlap, fragmented coverage) fall back to
// the unchanged span×G path.

// pyrSpanPlan is one span's pyramid decomposition.
type pyrSpanPlan struct {
	cells      []storage.PyramidCell
	leftRange  series.TimeRange // [span.Start, cells[0].Start)
	rightRange series.TimeRange // [last cell End, span.End)
	leftChunks, rightChunks []*chunkState
}

// planPyramid asks the snapshot's pyramid about every non-empty span,
// returning a per-span plan slice, or nil when the pyramid is absent or
// disabled. Chunk routing and classification happen in newSeriesPlan.
func planPyramid(snap *storage.Snapshot, q m4.Query, opts Options) []*pyrSpanPlan {
	if snap.Pyramid == nil || opts.DisablePyramid {
		return nil
	}
	plans := make([]*pyrSpanPlan, q.W)
	any := false
	for i := 0; i < q.W; i++ {
		s := q.Span(i)
		if s.Empty() {
			continue
		}
		cells, ok := snap.Pyramid.PlanSpan(s.Start, s.End)
		if !ok || len(cells) == 0 {
			continue
		}
		plans[i] = &pyrSpanPlan{
			cells:      cells,
			leftRange:  series.TimeRange{Start: s.Start, End: cells[0].Start},
			rightRange: series.TimeRange{Start: cells[len(cells)-1].End, End: s.End},
		}
		any = true
	}
	if !any {
		return nil
	}
	return plans
}

// cellAgg converts one pyramid cell to its span aggregate.
func cellAgg(c storage.PyramidCell) m4.Aggregate {
	if c.Empty {
		return m4.Aggregate{Empty: true}
	}
	return m4.Aggregate{First: c.First, Last: c.Last, Bottom: c.Bottom, Top: c.Top}
}

// cellsOnly answers a pyramid span with no boundary chunks: the fragments
// are provably empty, so the cells alone are the whole span.
func (pp *pyrSpanPlan) cellsOnly() m4.Aggregate {
	parts := make([]m4.Aggregate, len(pp.cells))
	for i, c := range pp.cells {
		parts[i] = cellAgg(c)
	}
	return m4.Combine(parts...)
}

// computePyramidSpan evaluates pyramid span k (indexing p.pyrWork): both
// boundary fragments through the candidate loop, stitched with the cells.
// Runs as one wave-1 pool task.
func (p *seriesPlan) computePyramidSpan(k int) error {
	i := p.pyrWork[k]
	pp := p.pyr[i]
	left, err := p.fragmentAgg(i, pp.leftRange, pp.leftChunks)
	if err != nil {
		return err
	}
	right, err := p.fragmentAgg(i, pp.rightRange, pp.rightChunks)
	if err != nil {
		return err
	}
	parts := make([]m4.Aggregate, 0, len(pp.cells)+2)
	parts = append(parts, left)
	for _, c := range pp.cells {
		parts = append(parts, cellAgg(c))
	}
	parts = append(parts, right)
	p.out[i] = m4.Combine(parts...)
	return nil
}

// fragmentAgg computes the full aggregate of one boundary fragment with
// the ordinary candidate loop, restricted to the chunks overlapping it. A
// fragment is narrower than one base cell, so this is O(1) chunks for
// in-order data. Degradation mirrors assemble: when a chunk was dropped
// mid-query and a later function comes up empty, FP substitutes.
func (p *seriesPlan) fragmentAgg(i int, r series.TimeRange, chunks []*chunkState) (m4.Aggregate, error) {
	if r.End <= r.Start || len(chunks) == 0 {
		return m4.Aggregate{Empty: true}, nil
	}
	op := p.op
	fp, ok, err := op.timedG(i, r, chunks, gFP)
	if err != nil {
		return m4.Aggregate{}, err
	}
	if !ok {
		return m4.Aggregate{Empty: true}, nil
	}
	out := m4.Aggregate{First: fp, Last: fp, Bottom: fp, Top: fp}
	slots := [...]*series.Point{gLP: &out.Last, gBP: &out.Bottom, gTP: &out.Top}
	for kind := gLP; kind <= gTP; kind++ {
		pt, ok, err := op.timedG(i, r, chunks, kind)
		if err != nil {
			return m4.Aggregate{}, err
		}
		if !ok {
			if !op.opts.Strict && op.degraded.Load() {
				op.snap.Warnings.Add("span %d: %v lost to unreadable chunks, substituted FP", i, kind)
				continue
			}
			return m4.Aggregate{}, fmt.Errorf("internal: span %d: %v empty after FP found %v", i, kind, fp)
		}
		*slots[kind] = pt
	}
	return out, nil
}
