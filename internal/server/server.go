// Package server exposes the database over HTTP: m4ql queries as JSON, a
// PNG line-chart renderer backed by the M4 operator (what a dashboard
// would call), and introspection endpoints. cmd/m4server wires it to a
// database directory.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4ql"
	"m4lsm/internal/viz"
)

// Handler serves the HTTP API for one engine.
type Handler struct {
	engine *lsm.Engine
	mux    *http.ServeMux
}

// New builds the HTTP handler.
func New(e *lsm.Engine) *Handler {
	h := &Handler{engine: e, mux: http.NewServeMux()}
	h.mux.HandleFunc("/", h.ui)
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/series", h.series)
	h.mux.HandleFunc("/query", h.query)
	h.mux.HandleFunc("/render", h.render)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	info := h.engine.Info()
	json.NewEncoder(w).Encode(map[string]interface{}{
		"status": "ok",
		"files":  info.Files,
		"chunks": info.Chunks,
	})
}

func (h *Handler) series(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h.engine.SeriesIDs())
}

// query executes an m4ql statement. The statement comes from the "q" URL
// parameter (GET) or a JSON body {"query": "..."} (POST).
func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	var q string
	switch r.Method {
	case http.MethodGet:
		q = r.URL.Query().Get("q")
	case http.MethodPost:
		var body struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		q = body.Query
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return
	}
	if q == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	res, err := m4ql.Run(h.engine, q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// render draws a two-color PNG line chart of a series over a time range.
// Parameters: series, tqs, tqe, w (pixel columns = M4 spans), h (pixel
// rows, default 400).
func (h *Handler) render(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	seriesID := params.Get("series")
	if seriesID == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing series parameter"))
		return
	}
	tqs, err1 := strconv.ParseInt(params.Get("tqs"), 10, 64)
	tqe, err2 := strconv.ParseInt(params.Get("tqe"), 10, 64)
	width, err3 := strconv.Atoi(params.Get("w"))
	if err1 != nil || err2 != nil || err3 != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("tqs, tqe and w must be integers"))
		return
	}
	height := 400
	if hs := params.Get("h"); hs != "" {
		var err error
		if height, err = strconv.Atoi(hs); err != nil || height <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad h parameter"))
			return
		}
	}
	q := m4.Query{Tqs: tqs, Tqe: tqe, W: width}
	if err := q.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	snap, err := h.engine.Snapshot(seriesID, q.Range())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	aggs, err := m4lsm.Compute(snap, q)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	reduced := m4.Points(aggs)
	vp := viz.ViewportFor(reduced, tqs, tqe)
	canvas := viz.Rasterize(reduced, vp, width, height)
	w.Header().Set("Content-Type", "image/png")
	if err := canvas.WritePNG(w); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
