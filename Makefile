GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet check bench bench-parallel fuzz torture

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# torture runs the crash-recovery suite on its own: every write-path step
# site gets a simulated kill, recovery is checked against the oracle.
torture:
	$(GO) test -race -run 'Torture|Fault|TornWAL|Quarantine|Cancel' -count=1 ./internal/lsm ./internal/m4lsm ./internal/faultfs

# fuzz exercises the crash-recovery parsers (WAL payloads, chunk-file
# footers, record logs). Go allows one -fuzz target per invocation, so each
# runs separately for FUZZTIME (the seed corpus also runs in plain `make
# test`).
fuzz:
	$(GO) test ./internal/lsm -run '^$$' -fuzz '^FuzzDecodeInsert$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lsm -run '^$$' -fuzz '^FuzzDecodeWALDelete$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tsfile -run '^$$' -fuzz '^FuzzOpen$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tsfile -run '^$$' -fuzz '^FuzzRecordLog$$' -fuzztime $(FUZZTIME)

# check is the standard gate for this repo: static analysis, the full suite
# (including the crash-recovery torture) under the race detector, and a
# short fuzz pass over the recovery parsers.
check: vet race
	$(MAKE) fuzz FUZZTIME=3s

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

# bench-parallel regenerates the worker-scaling numbers of BENCH_parallel.json.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkM4LSMParallel|BenchmarkM4UDFParallel' -benchtime 30x .
