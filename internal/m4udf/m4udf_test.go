package m4udf

import (
	"math/rand"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/testutil"
)

func TestComputeMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		snap := testutil.RandomSnapshot(rng, testutil.DefaultGenConfig)
		q := m4.Query{Tqs: rng.Int63n(60), Tqe: rng.Int63n(60) + 70, W: 1 + rng.Intn(10)}
		merged, err := testutil.NaiveMerge(snap, q.Range())
		if err != nil {
			t.Fatal(err)
		}
		want, err := m4.ComputeSeries(q, merged)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Compute(snap, q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range got {
			// The UDF scans the merged series, so results must match
			// exactly, not just up to visualization equivalence.
			if got[i] != want[i] {
				t.Fatalf("seed %d span %d: got %v, want %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestComputeLoadsEveryChunk(t *testing.T) {
	src := storage.NewMemSource()
	stats := &storage.Stats{}
	snap := &storage.Snapshot{SeriesID: "s", Stats: stats}
	for v := storage.Version(1); v <= 5; v++ {
		meta, err := src.AddChunk("s", v, series.Series{{T: int64(v) * 10, V: 1}})
		if err != nil {
			t.Fatal(err)
		}
		snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, src, stats))
	}
	if _, err := Compute(snap, m4.Query{Tqs: 0, Tqe: 100, W: 2}); err != nil {
		t.Fatal(err)
	}
	if stats.ChunksLoaded != 5 {
		t.Errorf("loads = %d, want 5: the baseline always loads everything", stats.ChunksLoaded)
	}
}

func TestComputeInvalidQuery(t *testing.T) {
	snap := &storage.Snapshot{SeriesID: "s"}
	if _, err := Compute(snap, m4.Query{Tqs: 0, Tqe: 0, W: 1}); err == nil {
		t.Error("invalid query accepted")
	}
}
