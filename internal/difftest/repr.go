package difftest

import (
	"context"
	"fmt"
	"math/rand"

	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
)

// Representation-equivalence mode: the same seeded workloads as the M4
// differential harness, but every query is answered per representation
// operator (M4, MinMax, LTTB, MinMaxLTTB) through the real LSM read path —
// pyramid on and pyramid off — and through the UDF full-scan path, and each
// answer must be bit-for-bit the reference reduction over the oracle's
// merged series.
//
// Bit-for-bit needs value-injective data: when two timestamps in a span
// share the extremal value, the engine's candidate pruning and the
// streaming oracle may legitimately pick different representative
// timestamps (both are m4.Equivalent, neither is wrong). GenerateRepr
// therefore maps each timestamp to a unique value, which makes every
// representative point forced and exact equality the right assertion.

// tieFreeValue returns an injective t→value mapping for t in [0, tMax)
// with tMax < 1024. The integer part scrambles value order (so extremal
// points land anywhere in a span, not at its edges) and the fractional
// part t/1024 disambiguates: spacing 1/1024 exceeds the 7e-5 overwrite
// offset, so distinct timestamps can never collide in value. Overwrites at
// the same timestamp cycle through 8 distinct offsets, so latest-wins
// resolution stays observable.
func tieFreeValue(tMax int64) func(*rand.Rand, int64) float64 {
	gen := 0
	return func(_ *rand.Rand, t int64) float64 {
		gen++
		return float64((t*7919)%1024) + float64(t)/1024 + float64(gen%8)*1e-5
	}
}

// GenerateRepr builds the same seeded workload shape as Generate, but with
// the tie-free value mapping required for exact representation equality.
func GenerateRepr(seed int64, dir string) (*Case, error) {
	return generate(seed, dir, true)
}

// reprCheckSpecs is the operator sweep of the equivalence mode; both
// MinMaxLTTB ratios matter because they choose different preselection span
// counts and hence different pyramid/pruning behavior.
func reprCheckSpecs() []reprops.Spec {
	return []reprops.Spec{
		{Kind: reprops.KindM4},
		{Kind: reprops.KindMinMax},
		{Kind: reprops.KindLTTB},
		{Kind: reprops.KindMinMaxLTTB, Ratio: 2},
		{Kind: reprops.KindMinMaxLTTB, Ratio: 4},
	}
}

// CheckRepr answers every query shape with every representation operator
// through three physical paths — LSM, LSM with the pyramid disabled, and
// UDF — and requires each to equal the reference reduction over the
// oracle's merged series exactly.
func (c *Case) CheckRepr() error {
	ctx := context.Background()
	queries := []m4.Query{
		{Tqs: 0, Tqe: c.tMax, W: 7},
		{Tqs: 0, Tqe: c.tMax, W: 31},
		{Tqs: c.tMax / 4, Tqe: c.tMax / 2, W: 5},
		{Tqs: c.tMax / 3, Tqe: 2 * c.tMax, W: 13},
		{Tqs: 0, Tqe: c.tMax, W: int(c.tMax) * 2}, // w > range: zero-width spans
	}
	for _, q := range queries {
		for _, id := range c.ids {
			merged := c.Oracle.Merged(id)
			for _, spec := range reprCheckSpecs() {
				want, err := reprops.Reduce(spec, q, merged)
				if err != nil {
					return fmt.Errorf("seed %d: oracle %s %s %+v: %w", c.Seed, id, spec, q, err)
				}
				paths := []struct {
					name string
					opts m4lsm.Options
					udf  bool
				}{
					{name: "lsm"},
					{name: "lsm-nopyr", opts: m4lsm.Options{DisablePyramid: true}},
					{name: "udf", udf: true},
				}
				for _, path := range paths {
					snap, err := c.engine.Snapshot(id, q.Range())
					if err != nil {
						return fmt.Errorf("seed %d: snapshot %s: %w", c.Seed, id, err)
					}
					var out series.Series
					if path.udf {
						out, err = m4udf.ReduceContext(ctx, snap, q, spec, m4udf.Options{})
					} else {
						out, err = m4lsm.ReduceContext(ctx, snap, q, spec, path.opts)
					}
					if err != nil {
						return fmt.Errorf("seed %d: %s %s %s %+v: %w", c.Seed, path.name, spec, id, q, err)
					}
					if path.name == "lsm" {
						c.PyramidSpans += snap.Stats.Load().PyramidSpans
					}
					if len(out) != len(want) {
						return fmt.Errorf("seed %d: %s %s %s %+v: %d points, oracle has %d",
							c.Seed, path.name, spec, id, q, len(out), len(want))
					}
					for i := range want {
						if out[i] != want[i] {
							return fmt.Errorf("seed %d: %s %s %s %+v point %d: %v != oracle %v",
								c.Seed, path.name, spec, id, q, i, out[i], want[i])
						}
					}
				}
			}
		}
	}
	return nil
}

// RunRepr generates, repr-checks and closes one case; the returned error
// names the seed on any failure.
func RunRepr(seed int64, dir string) error {
	c, err := GenerateRepr(seed, dir)
	if err != nil {
		return err
	}
	defer c.Close()
	return c.CheckRepr()
}
