package storage

import (
	"math"
	"math/rand"
	"testing"
)

func naiveCovered(dels []Delete, t int64, ver Version) bool {
	for _, d := range dels {
		if d.Version > ver && d.Covers(t) {
			return true
		}
	}
	return false
}

func TestDeleteIndexBasic(t *testing.T) {
	dels := []Delete{
		{Version: 3, Start: 10, End: 20},
		{Version: 5, Start: 15, End: 30},
	}
	ix := NewDeleteIndex(dels)
	cases := []struct {
		t    int64
		ver  Version
		want bool
	}{
		{9, 1, false},
		{10, 1, true},
		{10, 3, false}, // only v3 covers t=10; not later than v3
		{15, 3, true},  // v5 covers
		{15, 5, false},
		{30, 4, true},
		{31, 0, false},
	}
	for _, c := range cases {
		if got := ix.Covered(c.t, c.ver); got != c.want {
			t.Errorf("Covered(%d, v%d) = %v, want %v", c.t, c.ver, got, c.want)
		}
	}
}

func TestDeleteIndexEmpty(t *testing.T) {
	ix := NewDeleteIndex(nil)
	if ix.Covered(5, 0) {
		t.Error("empty index covered a point")
	}
}

func TestDeleteIndexMaxInt64End(t *testing.T) {
	ix := NewDeleteIndex([]Delete{{Version: 2, Start: 100, End: math.MaxInt64}})
	if !ix.Covered(math.MaxInt64, 1) || !ix.Covered(100, 1) || ix.Covered(99, 1) {
		t.Error("open-ended delete mishandled")
	}
}

func TestDeleteIndexAgainstNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(20)
		dels := make([]Delete, 0, n)
		for i := 0; i < n; i++ {
			start := rng.Int63n(200)
			dels = append(dels, Delete{
				Version: Version(rng.Intn(10)),
				Start:   start,
				End:     start + rng.Int63n(60),
			})
		}
		ix := NewDeleteIndex(dels)
		for probe := 0; probe < 100; probe++ {
			tt := rng.Int63n(300) - 20
			ver := Version(rng.Intn(12))
			if got, want := ix.Covered(tt, ver), naiveCovered(dels, tt, ver); got != want {
				t.Fatalf("trial %d: Covered(%d, v%d) = %v, want %v (dels %v)", trial, tt, ver, got, want, dels)
			}
		}
	}
}
