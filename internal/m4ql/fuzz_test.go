package m4ql

import (
	"testing"

	"m4lsm/internal/reprops"
)

// FuzzParse throws arbitrary bytes at the full query parser. The invariant
// is no panic, and for inputs that do parse, a self-consistent statement:
// a valid query range, a REPRESENT spec that round-trips through its own
// string form, and no aggregate/represent mixing (rejected at parse time).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT M4(*) FROM root.kob WHERE time >= 0 AND time < 1000 GROUP BY SPANS(10) USING LSM`,
		`SELECT M4(*) FROM root.* WHERE time >= 0 AND time < 1000 GROUP BY SPANS(10) REPRESENT minmax`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(7) REPRESENT minmaxlttb:8 PARALLEL 2 TIMEOUT 100 STRICT TRACE`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(7) REPRESENT lttb USING UDF`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(7) REPRESENT minmaxlttb:`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(7) REPRESENT minmaxlttb:999`,
		`SELECT M4(*) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(7) REPRESENT nope`,
		`SELECT COUNT(v), AVG(v) FROM s WHERE time >= 0 AND time < 100 GROUP BY SPANS(7)`,
		`EXPLAIN SELECT FirstTime(v), TopValue(v) FROM "quoted id" WHERE time >= -5 AND time < 5 GROUP BY SPANS(1)`,
		`SELECT M4(*) FROM a, b, c WHERE time < 10 AND time >= 2 GROUP BY SPANS(1) REPRESENT m4`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		if err := stmt.Query.Validate(); err != nil {
			t.Fatalf("accepted statement with invalid query %+v: %v", stmt.Query, err)
		}
		if stmt.Represent != nil {
			if len(stmt.Aggregates) > 0 {
				t.Fatalf("accepted REPRESENT mixed with aggregates: %q", input)
			}
			// The spec must survive its own textual form.
			back, err := reprops.ParseSpec(stmt.Represent.String())
			if err != nil {
				t.Fatalf("accepted spec %+v does not round-trip: %v", *stmt.Represent, err)
			}
			if back != *stmt.Represent {
				t.Fatalf("spec %+v round-tripped to %+v", *stmt.Represent, back)
			}
		}
	})
}
