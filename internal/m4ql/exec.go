package m4ql

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/groupby"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/obs"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Result is the tabular output of an executed M4 query. Rows are one per
// non-empty span: the 0-based span index followed by the projected columns.
// Timestamps are reported as float64 (epoch milliseconds fit exactly).
type Result struct {
	Columns []string    `json:"columns"`
	Rows    [][]float64 `json:"rows"`

	// Execution metadata.
	Operator  string        `json:"operator"`
	Elapsed   time.Duration `json:"elapsedNs"`
	Stats     storage.Stats `json:"stats"`
	SpanCount int           `json:"spanCount"`

	// Represent names the representation operator of a REPRESENT statement
	// ("m4", "minmax", "lttb", "minmaxlttb:4"); rows are then (time, value)
	// points instead of the eight-column span table. Empty for classic
	// span-table statements.
	Represent string `json:"represent,omitempty"`

	// Partial is true when unreadable chunks were dropped from the query
	// (non-STRICT execution); Warnings describes each degradation.
	Partial  bool     `json:"partial,omitempty"`
	Warnings []string `json:"warnings,omitempty"`

	// Series holds the per-series row blocks of a multi-series statement
	// (`FROM s1, s2` or `FROM root.*`), in sorted-id order for wildcards
	// and FROM order otherwise. Single-series statements leave it nil and
	// keep the historical flat shape; for multi-series statements the
	// top-level Rows stay nil, Stats sums every series' counters, and
	// Partial/Warnings aggregate with series attribution.
	Series []SeriesResult `json:"series,omitempty"`

	// Trace is the structured execution trace, present when the statement
	// had a TRACE clause or the context carried an armed trace.
	Trace *obs.Snapshot `json:"trace,omitempty"`
}

// SeriesResult is one series' block of a multi-series result: its rows in
// the same span/column layout as the single-series form, with the series'
// own cost counters and degradation status.
type SeriesResult struct {
	SeriesID string        `json:"seriesId"`
	Rows     [][]float64   `json:"rows"`
	Stats    storage.Stats `json:"stats"`
	Partial  bool          `json:"partial,omitempty"`
	Warnings []string      `json:"warnings,omitempty"`
}

// Text renders the result as an aligned table for CLI output; multi-series
// results render one block per series.
func (r *Result) Text() string {
	var sb strings.Builder
	if len(r.Series) > 0 {
		for i := range r.Series {
			s := &r.Series[i]
			fmt.Fprintf(&sb, "-- series %s --\n", s.SeriesID)
			writeTable(&sb, r.Columns, s.Rows)
			fmt.Fprintf(&sb, "-- %d of %d spans non-empty, %v\n", len(s.Rows), r.SpanCount, &s.Stats)
			if s.Partial {
				fmt.Fprintf(&sb, "-- PARTIAL RESULT: %d unreadable chunk(s) skipped\n", len(s.Warnings))
				for _, w := range s.Warnings {
					fmt.Fprintf(&sb, "--   warning: %s\n", w)
				}
			}
		}
		fmt.Fprintf(&sb, "-- %d series, %s, %v, %v\n",
			len(r.Series), r.Operator, r.Elapsed.Round(time.Microsecond), &r.Stats)
		return sb.String()
	}
	writeTable(&sb, r.Columns, r.Rows)
	fmt.Fprintf(&sb, "-- %d of %d spans non-empty, %s, %v, %v\n",
		len(r.Rows), r.SpanCount, r.Operator, r.Elapsed.Round(time.Microsecond), &r.Stats)
	if r.Partial {
		fmt.Fprintf(&sb, "-- PARTIAL RESULT: %d unreadable chunk(s) skipped\n", len(r.Warnings))
		for _, w := range r.Warnings {
			fmt.Fprintf(&sb, "--   warning: %s\n", w)
		}
	}
	return sb.String()
}

// writeTable renders one aligned column/row block.
func writeTable(sb *strings.Builder, columns []string, rows [][]float64) {
	widths := make([]int, len(columns))
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, columns)
	for _, row := range rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		cells = append(cells, line)
	}
	for _, line := range cells {
		for i, c := range line {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, line := range cells {
		for i, c := range line {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
}

// queryBudget builds the statement's resource budget: the TIMEOUT clause
// overrides the server-wide defaults the context carries (installed via
// govern.WithLimits), and chunk/point caps come from those defaults alone.
// Returns nil — no budget at all — when neither source sets a limit. The
// budget is shared across every series of a multi-series statement: the
// limits govern the query, not each series.
func queryBudget(ctx context.Context, stmt Statement) *govern.Budget {
	return govern.NewBudget(govern.Limits{Timeout: stmt.Timeout}.Merge(govern.LimitsOf(ctx)))
}

// Execute runs a parsed statement against the engine.
func Execute(e *lsm.Engine, stmt Statement) (*Result, error) {
	return ExecuteContext(context.Background(), e, stmt)
}

// ExecuteContext runs a parsed statement under a context: cancellation
// aborts the operator's worker pool and returns ctx.Err().
func ExecuteContext(ctx context.Context, e *lsm.Engine, stmt Statement) (*Result, error) {
	tr := obs.TraceOf(ctx)
	if tr == nil && stmt.Trace {
		ctx, tr = obs.WithTrace(ctx)
	}
	if stmt.Represent != nil {
		return executeRepresent(ctx, e, stmt, tr)
	}
	if stmt.Multi() {
		return executeMulti(ctx, e, stmt, tr)
	}
	if len(stmt.Aggregates) > 0 {
		return executeGroupBy(ctx, e, stmt)
	}
	snap, err := e.Snapshot(stmt.SeriesID, stmt.Query.Range())
	if err != nil {
		return nil, err
	}
	if stmt.Strict {
		// Chunks already quarantined are excluded at snapshot time; a
		// STRICT query must fail rather than omit them silently.
		if ws := snap.Warnings.List(); len(ws) > 0 {
			return nil, fmt.Errorf("m4ql: strict read: %s", ws[0])
		}
	}
	budget := queryBudget(ctx, stmt)
	start := time.Now()
	var aggs []m4.Aggregate
	switch stmt.Operator {
	case OpUDF:
		aggs, err = m4udf.ComputeContext(ctx, snap, stmt.Query, m4udf.Options{Parallelism: stmt.Parallelism, Strict: stmt.Strict, Metrics: e.Metrics(), Budget: budget})
	default:
		aggs, err = m4lsm.ComputeContext(ctx, snap, stmt.Query, m4lsm.Options{Parallelism: stmt.Parallelism, Strict: stmt.Strict, Metrics: e.Metrics(), Budget: budget})
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	warnings := snap.Warnings.List()
	res := &Result{
		Columns:   append([]string{"span"}, columnStrings(stmt.Columns)...),
		Operator:  stmt.Operator.String(),
		Elapsed:   elapsed,
		Stats:     snap.Stats.Load(),
		SpanCount: stmt.Query.W,
		Partial:   len(warnings) > 0,
		Warnings:  warnings,
	}
	for i, a := range aggs {
		if a.Empty {
			continue
		}
		row := make([]float64, 0, len(stmt.Columns)+1)
		row = append(row, float64(i))
		for _, c := range stmt.Columns {
			row = append(row, cell(a, c))
		}
		res.Rows = append(res.Rows, row)
	}
	if tr != nil {
		tr.Warn(warnings...)
		res.Trace = tr.Finish()
	}
	return res, nil
}

// resolveSeries turns the statement's FROM clause into the concrete series
// list: explicit lists pass through in FROM order, wildcards expand against
// the engine's sorted SeriesIDs filtered by prefix. An empty wildcard match
// is a valid (empty) result, not an error — dashboards issue `root.*`
// against empty databases all the time.
func resolveSeries(e *lsm.Engine, stmt Statement) []string {
	if !stmt.Wildcard {
		return stmt.Series
	}
	var ids []string
	for _, id := range e.SeriesIDs() {
		if strings.HasPrefix(id, stmt.WildcardPrefix) {
			ids = append(ids, id)
		}
	}
	return ids
}

// executeMulti runs a multi-series statement (`FROM s1, s2` or a wildcard)
// as one batched query: all series' snapshots are taken first, then the
// series×span×G tasks feed a single shared worker pool via the operators'
// ComputeMultiContext. Each series keeps its own rows, cost counters and
// degradation status; the top-level Stats is their sum and Partial/Warnings
// aggregate with series attribution.
func executeMulti(ctx context.Context, e *lsm.Engine, stmt Statement, tr *obs.Trace) (*Result, error) {
	ids := resolveSeries(e, stmt)
	snaps := make([]*storage.Snapshot, len(ids))
	for i, id := range ids {
		snap, err := e.Snapshot(id, stmt.Query.Range())
		if err != nil {
			return nil, fmt.Errorf("m4ql: series %q: %w", id, err)
		}
		if stmt.Strict {
			if ws := snap.Warnings.List(); len(ws) > 0 {
				return nil, fmt.Errorf("m4ql: strict read: series %q: %s", id, ws[0])
			}
		}
		snaps[i] = snap
	}
	start := time.Now()
	var outs [][]m4.Aggregate
	var err error
	if len(stmt.Aggregates) > 0 {
		// GROUP BY aggregates scan merged streams per series; there is no
		// batched operator for them, so loop sequentially.
		return executeGroupByMulti(ctx, e, stmt, tr, ids, snaps, start)
	}
	budget := queryBudget(ctx, stmt)
	switch stmt.Operator {
	case OpUDF:
		outs, err = m4udf.ComputeMultiContext(ctx, snaps, stmt.Query, m4udf.Options{Parallelism: stmt.Parallelism, Strict: stmt.Strict, Metrics: e.Metrics(), Budget: budget})
	default:
		outs, err = m4lsm.ComputeMultiContext(ctx, snaps, stmt.Query, m4lsm.Options{Parallelism: stmt.Parallelism, Strict: stmt.Strict, Metrics: e.Metrics(), Budget: budget})
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	res := &Result{
		Columns:   append([]string{"span"}, columnStrings(stmt.Columns)...),
		Operator:  stmt.Operator.String(),
		Elapsed:   elapsed,
		SpanCount: stmt.Query.W,
		Series:    make([]SeriesResult, len(ids)),
	}
	for si, id := range ids {
		sr := SeriesResult{SeriesID: id, Stats: snaps[si].Stats.Load()}
		sr.Warnings = snaps[si].Warnings.List()
		sr.Partial = len(sr.Warnings) > 0
		for i, a := range outs[si] {
			if a.Empty {
				continue
			}
			row := make([]float64, 0, len(stmt.Columns)+1)
			row = append(row, float64(i))
			for _, c := range stmt.Columns {
				row = append(row, cell(a, c))
			}
			sr.Rows = append(sr.Rows, row)
		}
		res.Stats.Add(sr.Stats)
		if sr.Partial {
			res.Partial = true
			for _, w := range sr.Warnings {
				res.Warnings = append(res.Warnings, fmt.Sprintf("series %s: %s", id, w))
			}
		}
		res.Series[si] = sr
	}
	if tr != nil {
		tr.Warn(res.Warnings...)
		res.Trace = tr.Finish()
	}
	return res, nil
}

// executeRepresent runs a REPRESENT statement: the chosen representation
// operator over every FROM series, returning (time, value) point rows.
// Single-series statements keep the flat Rows shape, multi-series ones get
// per-series blocks, exactly like the span-table form. USING still selects
// the physical path: LSM takes the merge-free machinery (metadata pruning
// and pyramid cells for minmax/minmaxlttb, the dedicated merge path for
// lttb), UDF merges everything and runs the reference reduction.
func executeRepresent(ctx context.Context, e *lsm.Engine, stmt Statement, tr *obs.Trace) (*Result, error) {
	spec := *stmt.Represent
	ids := stmt.Series
	if stmt.Wildcard {
		ids = resolveSeries(e, stmt)
	}
	snaps := make([]*storage.Snapshot, len(ids))
	for i, id := range ids {
		snap, err := e.Snapshot(id, stmt.Query.Range())
		if err != nil {
			return nil, fmt.Errorf("m4ql: series %q: %w", id, err)
		}
		if stmt.Strict {
			if ws := snap.Warnings.List(); len(ws) > 0 {
				return nil, fmt.Errorf("m4ql: strict read: series %q: %s", id, ws[0])
			}
		}
		snaps[i] = snap
	}
	budget := queryBudget(ctx, stmt)
	start := time.Now()
	var outs []series.Series
	var err error
	switch stmt.Operator {
	case OpUDF:
		outs = make([]series.Series, len(snaps))
		for i, snap := range snaps {
			outs[i], err = m4udf.ReduceContext(ctx, snap, stmt.Query, spec, m4udf.Options{Parallelism: stmt.Parallelism, Strict: stmt.Strict, Metrics: e.Metrics(), Budget: budget})
			if err != nil {
				break
			}
		}
	default:
		outs, err = m4lsm.ReduceMultiContext(ctx, snaps, stmt.Query, spec, m4lsm.Options{Parallelism: stmt.Parallelism, Strict: stmt.Strict, Metrics: e.Metrics(), Budget: budget})
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		Columns:   []string{"time", "value"},
		Operator:  stmt.Operator.String(),
		Elapsed:   time.Since(start),
		SpanCount: stmt.Query.W,
		Represent: spec.String(),
	}
	pointRows := func(s series.Series) [][]float64 {
		rows := make([][]float64, len(s))
		for i, p := range s {
			rows[i] = []float64{float64(p.T), p.V}
		}
		return rows
	}
	if stmt.Multi() {
		res.Series = make([]SeriesResult, len(ids))
		for si, id := range ids {
			sr := SeriesResult{SeriesID: id, Rows: pointRows(outs[si]), Stats: snaps[si].Stats.Load()}
			sr.Warnings = snaps[si].Warnings.List()
			sr.Partial = len(sr.Warnings) > 0
			res.Stats.Add(sr.Stats)
			if sr.Partial {
				res.Partial = true
				for _, w := range sr.Warnings {
					res.Warnings = append(res.Warnings, fmt.Sprintf("series %s: %s", id, w))
				}
			}
			res.Series[si] = sr
		}
	} else {
		res.Rows = pointRows(outs[0])
		res.Stats = snaps[0].Stats.Load()
		res.Warnings = snaps[0].Warnings.List()
		res.Partial = len(res.Warnings) > 0
	}
	if tr != nil {
		tr.Warn(res.Warnings...)
		res.Trace = tr.Finish()
	}
	return res, nil
}

// executeGroupByMulti is the aggregate form over several series: a
// sequential per-series groupby.Compute with the same per-series result
// blocks as the M4 form.
func executeGroupByMulti(ctx context.Context, e *lsm.Engine, stmt Statement, tr *obs.Trace, ids []string, snaps []*storage.Snapshot, start time.Time) (*Result, error) {
	res := &Result{
		Columns:   []string{"span"},
		Operator:  stmt.Operator.String(),
		SpanCount: stmt.Query.W,
		Series:    make([]SeriesResult, len(ids)),
	}
	for _, f := range stmt.Aggregates {
		res.Columns = append(res.Columns, f.String())
	}
	for si, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows, err := groupby.Compute(snaps[si], stmt.Query, stmt.Aggregates)
		if err != nil {
			return nil, fmt.Errorf("m4ql: series %q: %w", id, err)
		}
		sr := SeriesResult{SeriesID: id, Stats: snaps[si].Stats.Load()}
		sr.Warnings = snaps[si].Warnings.List()
		sr.Partial = len(sr.Warnings) > 0
		for _, r := range rows {
			row := make([]float64, 0, len(r.Values)+1)
			row = append(row, float64(r.Span))
			row = append(row, r.Values...)
			sr.Rows = append(sr.Rows, row)
		}
		res.Stats.Add(sr.Stats)
		if sr.Partial {
			res.Partial = true
			for _, w := range sr.Warnings {
				res.Warnings = append(res.Warnings, fmt.Sprintf("series %s: %s", id, w))
			}
		}
		res.Series[si] = sr
	}
	res.Elapsed = time.Since(start)
	if tr != nil {
		tr.Phase("groupby", res.Elapsed)
		tr.Warn(res.Warnings...)
		tr.SetCounters(res.Stats.Map())
		res.Trace = tr.Finish()
	}
	return res, nil
}

// executeGroupBy runs the aggregate form of the query: one row per
// non-empty span with the requested scalar functions. Envelope-only
// function sets (min/max/first/last) execute merge-free via the M4-LSM
// machinery; count/sum/avg scan the merged stream (the USING clause is
// informational only for this form).
func executeGroupBy(ctx context.Context, e *lsm.Engine, stmt Statement) (*Result, error) {
	tr := obs.TraceOf(ctx)
	snap, err := e.Snapshot(stmt.SeriesID, stmt.Query.Range())
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, err := groupby.Compute(snap, stmt.Query, stmt.Aggregates)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		tr.Phase("groupby", time.Since(start))
	}
	warnings := snap.Warnings.List()
	res := &Result{
		Columns:   []string{"span"},
		Operator:  stmt.Operator.String(),
		Elapsed:   time.Since(start),
		Stats:     snap.Stats.Load(),
		SpanCount: stmt.Query.W,
		Partial:   len(warnings) > 0,
		Warnings:  warnings,
	}
	for _, f := range stmt.Aggregates {
		res.Columns = append(res.Columns, f.String())
	}
	for _, r := range rows {
		row := make([]float64, 0, len(r.Values)+1)
		row = append(row, float64(r.Span))
		row = append(row, r.Values...)
		res.Rows = append(res.Rows, row)
	}
	if tr != nil {
		tr.Warn(warnings...)
		tr.SetCounters(res.Stats.Map())
		res.Trace = tr.Finish()
	}
	return res, nil
}

// Run parses and executes a query in one step. EXPLAIN statements execute
// the query and return the plan/cost summary as a single-column result.
func Run(e *lsm.Engine, query string) (*Result, error) {
	return RunContext(context.Background(), e, query)
}

// RunContext is Run under a context.
func RunContext(ctx context.Context, e *lsm.Engine, query string) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if stmt.Explain {
		return nil, fmt.Errorf("m4ql: use Explain for EXPLAIN statements")
	}
	return ExecuteContext(ctx, e, stmt)
}

// Explain executes the statement and renders the physical plan with its
// measured cost, the shape a user inspects to see whether the merge-free
// operator pruned chunks.
func Explain(e *lsm.Engine, stmt Statement) (string, error) {
	return ExplainContext(context.Background(), e, stmt)
}

// ExplainContext is Explain under a context.
func ExplainContext(ctx context.Context, e *lsm.Engine, stmt Statement) (string, error) {
	res, err := ExecuteContext(ctx, e, stmt)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	op := "M4-LSM (chunk merge free: metadata candidates + lazy loads)"
	if stmt.Operator == OpUDF {
		op = "M4-UDF (load all chunks, k-way merge, scan)"
	}
	fmt.Fprintf(&sb, "M4 representation query\n")
	switch {
	case stmt.Wildcard:
		fmt.Fprintf(&sb, "  series:   %s* (%d matched)\n", stmt.WildcardPrefix, len(res.Series))
	case len(stmt.Series) > 1:
		fmt.Fprintf(&sb, "  series:   %s\n", strings.Join(stmt.Series, ", "))
	default:
		fmt.Fprintf(&sb, "  series:   %s\n", stmt.SeriesID)
	}
	fmt.Fprintf(&sb, "  range:    [%d, %d) in %d spans\n", stmt.Query.Tqs, stmt.Query.Tqe, stmt.Query.W)
	fmt.Fprintf(&sb, "  operator: %s\n", op)
	if stmt.Represent != nil {
		desc := "point output"
		switch stmt.Represent.Kind {
		case reprops.KindMinMax:
			desc = "2 points/span from metadata + pyramid cells"
		case reprops.KindLTTB:
			desc = "sequential triangle selection over the full merge (no pruning)"
		case reprops.KindMinMaxLTTB:
			desc = fmt.Sprintf("MinMax preselection at %d spans feeding LTTB", stmt.Query.W*stmt.Represent.EffectiveRatio())
		}
		fmt.Fprintf(&sb, "  represent: %s (%s)\n", stmt.Represent, desc)
	}
	if stmt.Parallelism > 0 {
		fmt.Fprintf(&sb, "  parallel: %d workers\n", stmt.Parallelism)
	} else {
		fmt.Fprintf(&sb, "  parallel: GOMAXPROCS\n")
	}
	if stmt.Timeout > 0 {
		fmt.Fprintf(&sb, "  timeout:  %v (soft budget)\n", stmt.Timeout)
	}
	fmt.Fprintf(&sb, "  columns:  %s\n", strings.Join(columnStrings(stmt.Columns), ", "))
	fmt.Fprintf(&sb, "executed in %v\n", res.Elapsed.Round(time.Microsecond))
	s := res.Stats
	fmt.Fprintf(&sb, "  chunks loaded:        %d (+%d timestamp-only)\n", s.ChunksLoaded, s.TimeBlocksLoaded)
	fmt.Fprintf(&sb, "  chunks pruned:        %d (answered from metadata)\n", s.ChunksPruned)
	fmt.Fprintf(&sb, "  bytes read:           %d\n", s.BytesRead)
	fmt.Fprintf(&sb, "  points decoded:       %d\n", s.PointsDecoded)
	fmt.Fprintf(&sb, "  candidate rounds:     %d\n", s.CandidateRounds)
	fmt.Fprintf(&sb, "  index probes:         %d (%d existence, %d boundary)\n",
		s.IndexProbes, s.ExistProbes, s.BoundaryProbes)
	nonEmpty := len(res.Rows)
	for i := range res.Series {
		nonEmpty += len(res.Series[i].Rows)
	}
	fmt.Fprintf(&sb, "  non-empty spans:      %d of %d\n", nonEmpty, res.SpanCount)
	return sb.String(), nil
}

// RunAny parses and executes either a plain query (returning a tabular
// result) or an EXPLAIN statement (returning the plan text).
func RunAny(e *lsm.Engine, query string) (res *Result, explain string, err error) {
	return RunAnyContext(context.Background(), e, query)
}

// RunAnyContext is RunAny under a context.
func RunAnyContext(ctx context.Context, e *lsm.Engine, query string) (res *Result, explain string, err error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, "", err
	}
	if stmt.Explain {
		explain, err = ExplainContext(ctx, e, stmt)
		return nil, explain, err
	}
	res, err = ExecuteContext(ctx, e, stmt)
	return res, "", err
}

func columnStrings(cols []Column) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.String()
	}
	return out
}

func cell(a m4.Aggregate, c Column) float64 {
	switch c {
	case ColFirstTime:
		return float64(a.First.T)
	case ColFirstValue:
		return a.First.V
	case ColLastTime:
		return float64(a.Last.T)
	case ColLastValue:
		return a.Last.V
	case ColBottomTime:
		return float64(a.Bottom.T)
	case ColBottomValue:
		return a.Bottom.V
	case ColTopTime:
		return float64(a.Top.T)
	default:
		if c == ColTopValue {
			return a.Top.V
		}
		return 0
	}
}
