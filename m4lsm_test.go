package m4lsm

import (
	"testing"
)

func openDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db := openDB(t)
	pts := []Point{{Time: 10, Value: 3}, {Time: 20, Value: 8}, {Time: 30, Value: 1}}
	if err := db.Write("root.s", pts...); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	aggs, stats, err := db.M4("root.s", 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || aggs[0].Empty {
		t.Fatalf("aggs = %v", aggs)
	}
	a := aggs[0]
	if a.First != (Point{Time: 10, Value: 3}) || a.Last != (Point{Time: 30, Value: 1}) {
		t.Errorf("first/last = %v/%v", a.First, a.Last)
	}
	if a.Bottom.Value != 1 || a.Top.Value != 8 {
		t.Errorf("bottom/top = %v/%v", a.Bottom, a.Top)
	}
	if stats.ChunksPruned != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPublicOperatorsAgree(t *testing.T) {
	db := openDB(t, WithFlushThreshold(50))
	for i := 199; i >= 0; i-- { // out of order
		db.Write("s", Point{Time: int64(i * 3), Value: float64((i * 11) % 23)})
	}
	db.Flush()
	db.Delete("s", 100, 140)
	lsmAggs, _, err := db.M4With("s", 0, 600, 9, OperatorLSM)
	if err != nil {
		t.Fatal(err)
	}
	udfAggs, _, err := db.M4With("s", 0, 600, 9, OperatorUDF)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lsmAggs {
		l, u := lsmAggs[i], udfAggs[i]
		if l.Empty != u.Empty {
			t.Fatalf("span %d emptiness: %v vs %v", i, l, u)
		}
		if l.Empty {
			continue
		}
		if l.First != u.First || l.Last != u.Last || l.Bottom.Value != u.Bottom.Value || l.Top.Value != u.Top.Value {
			t.Fatalf("span %d: %v vs %v", i, l, u)
		}
	}
}

func TestPublicQuery(t *testing.T) {
	db := openDB(t)
	db.Write("root.s", Point{Time: 5, Value: 2}, Point{Time: 15, Value: 4})
	db.Flush()
	res, err := db.Query(`SELECT M4(*) FROM root.s WHERE time >= 0 AND time < 20 GROUP BY SPANS(2)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Text() == "" {
		t.Error("empty text")
	}
	if _, err := db.Query(`SELECT garbage`); err == nil {
		t.Error("bad query accepted")
	}
}

func TestPublicValidation(t *testing.T) {
	db := openDB(t)
	if _, _, err := db.M4("s", 10, 5, 3); err == nil {
		t.Error("inverted range accepted")
	}
	if _, _, err := db.M4With("s", 0, 10, 1, Operator(9)); err == nil {
		t.Error("unknown operator accepted")
	}
}

func TestPublicPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithSyncWAL())
	if err != nil {
		t.Fatal(err)
	}
	db.Write("s", Point{Time: 1, Value: 9})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ids := db2.SeriesIDs()
	if len(ids) != 1 || ids[0] != "s" {
		t.Fatalf("series = %v", ids)
	}
	aggs, _, err := db2.M4("s", 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Empty || aggs[0].First.Value != 9 {
		t.Fatalf("aggs = %v", aggs)
	}
	info := db2.Info()
	if info.Chunks != 1 {
		t.Errorf("info = %+v", info)
	}
}

func TestPublicOptions(t *testing.T) {
	db := openDB(t, WithPlainEncoding(), WithoutWAL(), WithFlushThreshold(10))
	for i := 0; i < 25; i++ {
		db.Write("s", Point{Time: int64(i), Value: 1})
	}
	if db.Info().Files != 2 {
		t.Errorf("files = %d, want 2 auto-flushes at threshold 10", db.Info().Files)
	}
}

func TestPublicCompact(t *testing.T) {
	db := openDB(t, WithFlushThreshold(4))
	db.Write("s", Point{Time: 10, Value: 1}, Point{Time: 30, Value: 3}, Point{Time: 50, Value: 5}, Point{Time: 70, Value: 7})
	db.Write("s", Point{Time: 20, Value: 2}, Point{Time: 40, Value: 4}, Point{Time: 60, Value: 6}, Point{Time: 80, Value: 8})
	db.Delete("s", 40, 45)
	before, _, err := db.M4("s", 0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _, err := db.M4("s", 0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i].First != after[i].First || before[i].Last != after[i].Last ||
			before[i].Bottom.Value != after[i].Bottom.Value || before[i].Top.Value != after[i].Top.Value {
			t.Fatalf("span %d changed by compaction: %v vs %v", i, before[i], after[i])
		}
	}
	info := db.Info()
	if info.Deletes != 0 || info.Files != 1 {
		t.Errorf("after compaction: %+v, want deletes folded into one file", info)
	}
}

func TestPublicEmptySeries(t *testing.T) {
	db := openDB(t)
	aggs, _, err := db.M4("missing", 0, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range aggs {
		if !a.Empty {
			t.Fatalf("aggs = %v", aggs)
		}
	}
}

func TestPublicChunkCacheOption(t *testing.T) {
	db := openDB(t, WithChunkCache(1<<20), WithFlushThreshold(8))
	for i := 0; i < 32; i++ {
		db.Write("s", Point{Time: int64(i), Value: float64(i)})
	}
	db.Flush()
	// Force loads: w larger than chunk count splits everything.
	for i := 0; i < 2; i++ {
		if _, _, err := db.M4("s", 0, 32, 16); err != nil {
			t.Fatal(err)
		}
	}
}
