package faultfs

import "testing"

func TestAttemptSiteKeying(t *testing.T) {
	in := NewInjector(Config{Seed: 1, PerAttempt: true})
	if got := in.attemptSite("chunk:s/v1/data"); got != "chunk:s/v1/data" {
		t.Fatalf("first access rekeyed: %q", got)
	}
	if got := in.attemptSite("chunk:s/v1/data"); got != "chunk:s/v1/data#a1" {
		t.Fatalf("second access: %q", got)
	}
	if got := in.attemptSite("chunk:s/v1/data"); got != "chunk:s/v1/data#a2" {
		t.Fatalf("third access: %q", got)
	}
	// Distinct sites count independently.
	if got := in.attemptSite("chunk:s/v2/data"); got != "chunk:s/v2/data" {
		t.Fatalf("other site inherited attempts: %q", got)
	}
}

func TestAttemptSiteOffByDefault(t *testing.T) {
	in := NewInjector(Config{Seed: 1})
	for i := 0; i < 3; i++ {
		if got := in.attemptSite("chunk:s/v1/data"); got != "chunk:s/v1/data" {
			t.Fatalf("classic mode rekeyed access %d: %q", i, got)
		}
	}
}

// TestPerAttemptRedrawsFate: with per-attempt keying a site that faults on
// the first access can succeed on a retry — deterministically for a given
// seed. Seed 3 with ErrRate 0.5 produces such a flip within 64 sites.
func TestPerAttemptRedrawsFate(t *testing.T) {
	in := NewInjector(Config{Seed: 3, ErrRate: 0.5, PerAttempt: true})
	flipped := false
	for i := 0; i < 64 && !flipped; i++ {
		site := in.attemptSite(siteN(i)) // first access
		first := in.Decide(site)
		retry := in.Decide(in.attemptSite(siteN(i)))
		if first == FaultErr && retry == FaultNone {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("no site's fate changed between attempts; per-attempt keying is not independent")
	}
}

func siteN(i int) string {
	return "chunk:s/v" + string(rune('0'+i%10)) + "/data" + string(rune('a'+i/10))
}
