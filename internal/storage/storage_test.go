package storage

import (
	"strings"
	"testing"

	"m4lsm/internal/series"
)

func TestComputeMeta(t *testing.T) {
	data := series.Series{{T: 10, V: 5}, {T: 20, V: -1}, {T: 30, V: 9}, {T: 40, V: 2}}
	first, last, bottom, top, ok := ComputeMeta(data)
	if !ok {
		t.Fatal("ok = false")
	}
	if first != (series.Point{T: 10, V: 5}) || last != (series.Point{T: 40, V: 2}) {
		t.Errorf("first/last = %v/%v", first, last)
	}
	if bottom != (series.Point{T: 20, V: -1}) || top != (series.Point{T: 30, V: 9}) {
		t.Errorf("bottom/top = %v/%v", bottom, top)
	}
	if _, _, _, _, ok := ComputeMeta(nil); ok {
		t.Error("empty series reported ok")
	}
}

func TestComputeMetaTiesKeepEarliest(t *testing.T) {
	// Definition 2.1 allows any extremal point; ComputeMeta keeps the
	// earliest so the choice is deterministic.
	data := series.Series{{T: 10, V: 5}, {T: 20, V: 5}, {T: 30, V: 1}, {T: 40, V: 1}}
	_, _, bottom, top, _ := ComputeMeta(data)
	if bottom.T != 30 {
		t.Errorf("bottom.T = %d, want 30", bottom.T)
	}
	if top.T != 10 {
		t.Errorf("top.T = %d, want 10", top.T)
	}
}

func TestChunkMetaOverlaps(t *testing.T) {
	m := ChunkMeta{First: series.Point{T: 100}, Last: series.Point{T: 200}}
	tests := []struct {
		r    series.TimeRange
		want bool
	}{
		{series.TimeRange{Start: 0, End: 100}, false},  // ends before chunk
		{series.TimeRange{Start: 0, End: 101}, true},   // touches first point
		{series.TimeRange{Start: 200, End: 300}, true}, // starts on last point (closed)
		{series.TimeRange{Start: 201, End: 300}, false},
		{series.TimeRange{Start: 150, End: 160}, true},
	}
	for _, tc := range tests {
		if got := m.OverlapsRange(tc.r); got != tc.want {
			t.Errorf("OverlapsRange(%v) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestDeleteCovers(t *testing.T) {
	d := Delete{Start: 10, End: 20}
	for _, tc := range []struct {
		t    int64
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}} {
		if got := d.Covers(tc.t); got != tc.want {
			t.Errorf("Covers(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestMemSourceRoundTrip(t *testing.T) {
	src := NewMemSource()
	data := series.Series{{T: 1, V: 1}, {T: 2, V: 4}, {T: 3, V: 0}}
	meta, err := src.AddChunk("s1", 7, data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 7 || meta.Count != 3 || meta.Bottom.V != 0 || meta.Top.V != 4 {
		t.Errorf("meta = %+v", meta)
	}
	got, err := src.ReadChunk(meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != data[1] {
		t.Errorf("ReadChunk = %v", got)
	}
	ts, err := src.ReadTimes(meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[2] != 3 {
		t.Errorf("ReadTimes = %v", ts)
	}
}

func TestMemSourceErrors(t *testing.T) {
	src := NewMemSource()
	if _, err := src.AddChunk("s", 1, series.Series{{T: 2, V: 0}, {T: 1, V: 0}}); err == nil {
		t.Error("unsorted chunk accepted")
	}
	if _, err := src.AddChunk("s", 1, nil); err == nil {
		t.Error("empty chunk accepted")
	}
	if _, err := src.ReadChunk(ChunkMeta{SeriesID: "nope", Version: 1}); err == nil {
		t.Error("missing chunk read succeeded")
	}
}

func TestChunkRefCountsCost(t *testing.T) {
	src := NewMemSource()
	data := series.Series{{T: 1, V: 1}, {T: 2, V: 2}}
	meta, err := src.AddChunk("s", 1, data)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	ref := NewChunkRef(meta, src, &stats)
	if _, err := ref.Load(); err != nil {
		t.Fatal(err)
	}
	if stats.ChunksLoaded != 1 || stats.PointsDecoded != 2 || stats.BytesRead != 32 {
		t.Errorf("after Load: %v", &stats)
	}
	if _, err := ref.LoadTimes(); err != nil {
		t.Fatal(err)
	}
	if stats.TimeBlocksLoaded != 1 || stats.PointsDecoded != 4 || stats.BytesRead != 48 {
		t.Errorf("after LoadTimes: %v", &stats)
	}
}

func TestChunkRefNilStats(t *testing.T) {
	src := NewMemSource()
	meta, _ := src.AddChunk("s", 1, series.Series{{T: 1, V: 1}})
	ref := NewChunkRef(meta, src, nil)
	if _, err := ref.Load(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.LoadTimes(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAddReset(t *testing.T) {
	a := Stats{ChunksLoaded: 1, BytesRead: 10, IndexProbes: 3}
	b := Stats{ChunksLoaded: 2, PointsDecoded: 5, ChunksPruned: 1}
	a.Add(b)
	if a.ChunksLoaded != 3 || a.BytesRead != 10 || a.PointsDecoded != 5 || a.ChunksPruned != 1 || a.IndexProbes != 3 {
		t.Errorf("Add = %+v", a)
	}
	a.Reset()
	if a != (Stats{}) {
		t.Errorf("Reset = %+v", a)
	}
}

func TestStringers(t *testing.T) {
	m := ChunkMeta{SeriesID: "s", Version: 2, Count: 5,
		First: series.Point{T: 1, V: 0}, Last: series.Point{T: 9, V: 0},
		Bottom: series.Point{T: 3, V: -1}, Top: series.Point{T: 4, V: 7}}
	if s := m.String(); !strings.Contains(s, "v2") || !strings.Contains(s, "[1,9]") {
		t.Errorf("ChunkMeta.String = %q", s)
	}
	d := Delete{SeriesID: "s", Version: 3, Start: 1, End: 2}
	if s := d.String(); !strings.Contains(s, "v3") {
		t.Errorf("Delete.String = %q", s)
	}
	var st Stats
	if st.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestInfiniteVersionIsLargest(t *testing.T) {
	if InfiniteVersion <= Version(1<<62) {
		t.Error("InfiniteVersion not larger than realistic versions")
	}
}
