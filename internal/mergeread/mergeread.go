// Package mergeread implements the MergeReader of Fig. 15: it loads every
// chunk of a snapshot and streams the merged ("latest") time series of
// Definition 2.7 in time order, resolving overwrites by version number and
// applying range deletes.
//
// This is exactly the work the M4-LSM operator avoids; the M4-UDF baseline
// is built on top of this package.
package mergeread

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Loaded holds every chunk of a snapshot decoded exactly once, ready to
// feed any number of iterators. Splitting the load from the merge lets the
// parallel baseline fan per-span scans across goroutines without loading
// (and counting) each chunk once per worker.
type Loaded struct {
	chunks  []loadedChunk
	deletes *storage.DeleteIndex
}

type loadedChunk struct {
	data series.Series
	ver  storage.Version
}

// Load decodes every chunk of the snapshot, fanning the loads across at
// most parallelism goroutines (<= 1 loads sequentially). Each chunk is
// read exactly once, so Stats.ChunksLoaded is independent of parallelism.
func Load(snap *storage.Snapshot, parallelism int) (*Loaded, error) {
	l := &Loaded{
		chunks:  make([]loadedChunk, len(snap.Chunks)),
		deletes: storage.NewDeleteIndex(snap.Deletes),
	}
	errs := make([]error, len(snap.Chunks))
	load := func(i int) {
		data, err := snap.Chunks[i].Load()
		l.chunks[i] = loadedChunk{data: data, ver: snap.Chunks[i].Meta.Version}
		errs[i] = err
	}
	if parallelism > len(snap.Chunks) {
		parallelism = len(snap.Chunks)
	}
	if parallelism <= 1 {
		for i := range snap.Chunks {
			if load(i); errs[i] != nil {
				return nil, errs[i]
			}
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		wg.Add(parallelism)
		for w := 0; w < parallelism; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(snap.Chunks) {
						return
					}
					load(i)
				}
			}()
		}
		wg.Wait()
		// First error by chunk index, deterministic across schedules.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

// Iterator positions a merge over the loaded chunks restricted to the
// half-open range r. Iterators are independent: many goroutines may each
// run their own over the same Loaded.
func (l *Loaded) Iterator(r series.TimeRange) *Iterator {
	it := &Iterator{deletes: l.deletes, end: r.End}
	for _, c := range l.chunks {
		pos := sort.Search(len(c.data), func(i int) bool { return c.data[i].T >= r.Start })
		if pos >= len(c.data) || c.data[pos].T >= r.End {
			continue
		}
		it.h = append(it.h, &cursor{data: c.data, pos: pos, ver: c.ver})
	}
	heap.Init(&it.h)
	return it
}

// Iterator streams the merged series of a snapshot restricted to a
// half-open time range. Chunks are loaded eagerly at construction, matching
// the baseline's "load all chunks, order points by time" behaviour (§1.1).
type Iterator struct {
	h       cursorHeap
	deletes *storage.DeleteIndex
	end     int64
}

type cursor struct {
	data series.Series
	pos  int
	ver  storage.Version
}

type cursorHeap []*cursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	ti, tj := h[i].data[h[i].pos].T, h[j].data[h[j].pos].T
	if ti != tj {
		return ti < tj
	}
	return h[i].ver > h[j].ver // larger version first among equal times
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) {
	*h = append(*h, x.(*cursor))
}
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// NewIterator loads every chunk of the snapshot and positions the merge at
// the first point inside r.
func NewIterator(snap *storage.Snapshot, r series.TimeRange) (*Iterator, error) {
	l, err := Load(snap, 1)
	if err != nil {
		return nil, err
	}
	return l.Iterator(r), nil
}

// Next returns the next latest point in time order, and false when the
// range is exhausted.
func (it *Iterator) Next() (series.Point, bool) {
	for len(it.h) > 0 {
		t := it.h[0].data[it.h[0].pos].T
		if t >= it.end {
			return series.Point{}, false
		}
		// The heap orders equal timestamps by descending version, so the
		// top cursor holds the latest write for t.
		winner := it.h[0].data[it.h[0].pos]
		winnerVer := it.h[0].ver
		for len(it.h) > 0 && it.h[0].data[it.h[0].pos].T == t {
			c := it.h[0]
			c.pos++
			if c.pos >= len(c.data) {
				heap.Pop(&it.h)
			} else {
				heap.Fix(&it.h, 0)
			}
		}
		if it.deletes.Covered(t, winnerVer) {
			continue
		}
		return winner, true
	}
	return series.Point{}, false
}

// Merge materializes the merged series of Definition 2.7 restricted to r.
// It is the reference implementation used by tests and the baseline.
func Merge(snap *storage.Snapshot, r series.TimeRange) (series.Series, error) {
	it, err := NewIterator(snap, r)
	if err != nil {
		return nil, err
	}
	var out series.Series
	for {
		p, ok := it.Next()
		if !ok {
			return out, nil
		}
		out = append(out, p)
	}
}
