package lsm

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/tsfile"
)

func openTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func pts(tvs ...int64) []series.Point {
	out := make([]series.Point, 0, len(tvs)/2)
	for i := 0; i+1 < len(tvs); i += 2 {
		out = append(out, series.Point{T: tvs[i], V: float64(tvs[i+1])})
	}
	return out
}

// materialize merges a snapshot naively: latest version wins per timestamp,
// deletes applied by version. Used as the ground truth in engine tests.
func materialize(t *testing.T, snap *storage.Snapshot, r series.TimeRange) series.Series {
	t.Helper()
	type versioned struct {
		p   series.Point
		ver storage.Version
	}
	best := map[int64]versioned{}
	for _, c := range snap.Chunks {
		data, err := c.Load()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range data {
			if cur, ok := best[p.T]; !ok || c.Meta.Version > cur.ver {
				best[p.T] = versioned{p, c.Meta.Version}
			}
		}
	}
	for _, d := range snap.Deletes {
		for tt, v := range best {
			if d.Version > v.ver && d.Covers(tt) {
				delete(best, tt)
			}
		}
	}
	var out series.Series
	for _, v := range best {
		if r.Contains(v.p.T) {
			out = append(out, v.p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

func TestWriteFlushQuery(t *testing.T) {
	e := openTestEngine(t, Options{})
	if err := e.Write("s1", pts(10, 1, 20, 2, 30, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Chunks) != 1 {
		t.Fatalf("chunks = %d", len(snap.Chunks))
	}
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	want := series.Series(pts(10, 1, 20, 2, 30, 3))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMemtableVisibleWithoutFlush(t *testing.T) {
	e := openTestEngine(t, Options{})
	e.Write("s1", pts(10, 1, 5, 9)...)
	snap, err := e.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	want := series.Series(pts(5, 9, 10, 1))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestOverwriteAcrossChunks(t *testing.T) {
	e := openTestEngine(t, Options{})
	e.Write("s1", pts(10, 1, 20, 2)...)
	e.Flush()
	e.Write("s1", pts(20, 99, 30, 3)...) // overwrites t=20
	e.Flush()
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	// The second batch splits: t=20 is out of order (unsequence chunk),
	// t=30 extends the sequence space.
	if len(snap.Chunks) != 3 {
		t.Fatalf("chunks = %d", len(snap.Chunks))
	}
	if e.Info().UnseqFiles != 1 {
		t.Errorf("unseq files = %d, want 1", e.Info().UnseqFiles)
	}
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	want := series.Series(pts(10, 1, 20, 99, 30, 3))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDeleteSemantics(t *testing.T) {
	e := openTestEngine(t, Options{})
	e.Write("s1", pts(10, 1, 20, 2, 30, 3)...)
	e.Flush()
	if err := e.Delete("s1", 15, 25); err != nil {
		t.Fatal(err)
	}
	// A write after the delete at a covered timestamp must survive.
	e.Write("s1", pts(22, 7)...)
	e.Flush()
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	want := series.Series(pts(10, 1, 22, 7, 30, 3))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDeleteAppliesToMemtable(t *testing.T) {
	e := openTestEngine(t, Options{})
	e.Write("s1", pts(10, 1, 20, 2)...)
	e.Delete("s1", 20, 20) // deletes buffered point
	e.Write("s1", pts(25, 5)...)
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	want := series.Series(pts(10, 1, 25, 5))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDeleteValidation(t *testing.T) {
	e := openTestEngine(t, Options{})
	if err := e.Delete("s1", 10, 5); err == nil {
		t.Error("inverted delete accepted")
	}
}

func TestWriteValidation(t *testing.T) {
	e := openTestEngine(t, Options{})
	if err := e.Write("", pts(1, 1)...); err == nil {
		t.Error("empty series id accepted")
	}
	if err := e.Write("s", series.Point{T: 1, V: nan()}); err == nil {
		t.Error("NaN accepted")
	}
	if err := e.Write("s"); err != nil {
		t.Error("empty batch must be a no-op:", err)
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestAutoFlushAtThreshold(t *testing.T) {
	e := openTestEngine(t, Options{FlushThreshold: 10})
	for i := 0; i < 25; i++ {
		if err := e.Write("s1", series.Point{T: int64(i), V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	info := e.Info()
	if info.Files != 2 {
		t.Errorf("files = %d, want 2 auto-flushes", info.Files)
	}
	if info.MemtablePoints != 5 {
		t.Errorf("memtable points = %d, want 5", info.MemtablePoints)
	}
}

func TestBigBatchSplitsIntoChunks(t *testing.T) {
	e := openTestEngine(t, Options{FlushThreshold: 100})
	batch := make([]series.Point, 350)
	for i := range batch {
		batch[i] = series.Point{T: int64(i), V: float64(i)}
	}
	if err := e.Write("s1", batch...); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 1000})
	if len(snap.Chunks) != 4 { // 100+100+100+50
		t.Fatalf("chunks = %d, want 4", len(snap.Chunks))
	}
	for i, c := range snap.Chunks[:3] {
		if c.Meta.Count != 100 {
			t.Errorf("chunk %d count = %d", i, c.Meta.Count)
		}
	}
	if snap.Chunks[3].Meta.Count != 50 {
		t.Errorf("last chunk count = %d", snap.Chunks[3].Meta.Count)
	}
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 1000})
	if len(got) != 350 {
		t.Fatalf("materialized %d points", len(got))
	}
}

func TestSnapshotFiltersByRange(t *testing.T) {
	e := openTestEngine(t, Options{FlushThreshold: 5})
	for i := 0; i < 20; i++ {
		e.Write("s1", series.Point{T: int64(i * 10), V: 1})
	}
	e.Flush()
	e.Delete("s1", 0, 5)     // overlaps query? no (query starts at 50)
	e.Delete("s1", 100, 110) // overlaps
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 50, End: 120})
	for _, c := range snap.Chunks {
		if !c.Meta.OverlapsRange(series.TimeRange{Start: 50, End: 120}) {
			t.Errorf("chunk %v outside range", c.Meta)
		}
	}
	if len(snap.Deletes) != 1 || snap.Deletes[0].Start != 100 {
		t.Errorf("deletes = %v", snap.Deletes)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Write("s1", pts(10, 1, 20, 2)...)
	e.Delete("s1", 20, 20)
	e.Write("s1", pts(30, 3)...)
	// Simulate crash: no Flush, no Close. Reopen from disk state.
	e.Kill()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	snap, _ := e2.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	want := series.Series(pts(10, 1, 30, 3))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestReopenAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(Options{Dir: dir})
	e.Write("s1", pts(10, 1, 20, 2)...)
	e.Write("s2", pts(5, 5)...)
	if err := e.Close(); err != nil { // Close flushes
		t.Fatal(err)
	}
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if ids := e2.SeriesIDs(); !reflect.DeepEqual(ids, []string{"s1", "s2"}) {
		t.Fatalf("SeriesIDs = %v", ids)
	}
	snap, _ := e2.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	if !reflect.DeepEqual(got, series.Series(pts(10, 1, 20, 2))) {
		t.Fatalf("got %v", got)
	}
}

func TestVersionMonotonicAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(Options{Dir: dir})
	e.Write("s1", pts(10, 1)...)
	e.Close()
	e2, _ := Open(Options{Dir: dir})
	defer e2.Close()
	v1 := e2.Info().NextVersion
	e2.Write("s1", pts(10, 2)...) // overwrite after reopen
	e2.Flush()
	snap, _ := e2.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	if len(got) != 1 || got[0].V != 2 {
		t.Fatalf("overwrite after reopen lost: %v (nextVer was %d)", got, v1)
	}
}

func TestQuarantineCorruptFlushFile(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(Options{Dir: dir, SyncWAL: true})
	e.Write("s1", pts(10, 1)...)
	e.Close()
	// Corrupt the flushed file's footer magic: simulates a crash mid-flush.
	files, _ := filepath.Glob(filepath.Join(dir, "*.tsf"))
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
	raw, _ := os.ReadFile(files[0])
	os.WriteFile(files[0], raw[:len(raw)-2], 0o644)
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if n := e2.Info().Files; n != 0 {
		t.Errorf("corrupt file loaded (files=%d)", n)
	}
	if _, err := os.Stat(files[0] + ".bad"); err != nil {
		t.Errorf("corrupt file not quarantined: %v", err)
	}
}

func TestDisableWAL(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Write("s1", pts(10, 1)...)
	e.Flush()
	e.Close()
	if _, err := os.Stat(filepath.Join(dir, "wal")); !os.IsNotExist(err) {
		t.Error("wal file created despite DisableWAL")
	}
	e2, _ := Open(Options{Dir: dir})
	defer e2.Close()
	snap, _ := e2.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	if len(snap.Chunks) != 1 {
		t.Errorf("chunks = %d", len(snap.Chunks))
	}
}

func TestClosedEngineRejectsOps(t *testing.T) {
	e, _ := Open(Options{Dir: t.TempDir()})
	e.Close()
	if err := e.Write("s", pts(1, 1)...); err == nil {
		t.Error("Write after Close accepted")
	}
	if err := e.Delete("s", 1, 2); err == nil {
		t.Error("Delete after Close accepted")
	}
	if _, err := e.Snapshot("s", series.TimeRange{Start: 0, End: 1}); err == nil {
		t.Error("Snapshot after Close accepted")
	}
	if err := e.Flush(); err == nil {
		t.Error("Flush after Close accepted")
	}
	if err := e.Close(); err != nil {
		t.Error("double Close:", err)
	}
}

func TestOutOfOrderWritesProduceOverlappingChunks(t *testing.T) {
	e := openTestEngine(t, Options{FlushThreshold: 4})
	e.Write("s1", pts(100, 1, 110, 1, 120, 1, 130, 1)...) // flushes (sequence)
	e.Write("s1", pts(105, 2, 115, 2, 125, 2, 135, 2)...) // flushes: 105-125 unseq, 135 seq
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 1000})
	if len(snap.Chunks) != 3 {
		t.Fatalf("chunks = %d", len(snap.Chunks))
	}
	// The unsequence chunk must overlap the first sequence chunk.
	a, b := snap.Chunks[0].Meta, snap.Chunks[1].Meta
	if a.Last.T < b.First.T || b.Last.T < a.First.T {
		t.Errorf("unseq chunk does not overlap: %v vs %v", a, b)
	}
	// Sequence chunks never overlap each other.
	if c := snap.Chunks[2].Meta; c.First.T <= a.Last.T {
		t.Errorf("sequence chunks overlap: %v vs %v", a, c)
	}
	got := materialize(t, snap, series.TimeRange{Start: 0, End: 1000})
	if len(got) != 8 {
		t.Fatalf("materialized %d points", len(got))
	}
}

// TestSequenceChunksNeverOverlap is the seq/unseq space invariant: across
// random out-of-order workloads, chunks from sequence files are pairwise
// disjoint in time.
func TestSequenceChunksNeverOverlap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		e, err := Open(Options{Dir: dir, FlushThreshold: 8})
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 60; op++ {
			n := 1 + rng.Intn(6)
			batch := make([]series.Point, n)
			for i := range batch {
				batch[i] = series.Point{T: rng.Int63n(500), V: 1}
			}
			e.Write("s", series.SortDedup(batch)...)
			if rng.Intn(5) == 0 {
				e.Flush()
			}
		}
		e.Flush()
		e.Close()
		// Inspect the files directly: collect seq chunk intervals.
		files, _ := filepath.Glob(filepath.Join(dir, "*.seq.tsf"))
		type iv struct{ lo, hi int64 }
		var ivs []iv
		for _, f := range files {
			r, err := tsfile.Open(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range r.Metas() {
				ivs = append(ivs, iv{m.First.T, m.Last.T})
			}
			r.Close()
		}
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
					t.Fatalf("seed %d: sequence chunks overlap: %v vs %v", seed, ivs[i], ivs[j])
				}
			}
		}
	}
}

func TestInfo(t *testing.T) {
	e := openTestEngine(t, Options{})
	e.Write("s1", pts(1, 1, 2, 2)...)
	e.Delete("s1", 5, 6)
	info := e.Info()
	if info.MemtablePoints != 2 || info.Deletes != 1 || info.Files != 0 {
		t.Errorf("info = %+v", info)
	}
}

func TestChunkCache(t *testing.T) {
	e := openTestEngine(t, Options{FlushThreshold: 4, ChunkCacheBytes: 1 << 20})
	e.Write("s1", pts(10, 1, 20, 2, 30, 3, 40, 4)...)
	r := series.TimeRange{Start: 0, End: 100}
	for i := 0; i < 3; i++ {
		snap, err := e.Snapshot("s1", r)
		if err != nil {
			t.Fatal(err)
		}
		got := materialize(t, snap, r)
		if len(got) != 4 {
			t.Fatalf("read %d points", len(got))
		}
	}
	// The pyramid rebuild at flush time takes the one miss (and warms the
	// cache); all three query reads hit.
	st := e.CacheStats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 3 hits / 1 miss", st)
	}
	// Cache keys are version-scoped, so compaction (new versions) must
	// not serve stale data.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	e.Write("s1", pts(50, 5)...)
	e.Flush()
	snap, _ := e.Snapshot("s1", r)
	got := materialize(t, snap, r)
	if len(got) != 5 {
		t.Fatalf("after compaction+write: %d points", len(got))
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	e := openTestEngine(t, Options{})
	e.Write("s1", pts(10, 1)...)
	e.Flush()
	snap, _ := e.Snapshot("s1", series.TimeRange{Start: 0, End: 100})
	materialize(t, snap, series.TimeRange{Start: 0, End: 100})
	if st := e.CacheStats(); st.Hits != 0 && st.Misses != 0 {
		t.Errorf("cache active by default: %+v", st)
	}
}

func TestSeqTrackingNegativeTimestampsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e, _ := Open(Options{Dir: dir})
	e.Write("s", pts(-100, 1, -50, 2)...)
	e.Close()
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// -70 is out of order relative to the flushed max (-50); it must land
	// in the unsequence space even though all timestamps are negative.
	e2.Write("s", pts(-70, 3)...)
	if err := e2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e2.Info().UnseqFiles; got != 1 {
		t.Errorf("unseq files = %d, want 1 (negative-time ordering lost on reopen)", got)
	}
}
