package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/tsfile"
)

// Compact merges every flushed chunk of every series into fresh,
// non-overlapping chunks, applying all deletes, and removes the old chunk
// files and delete sidecar entries.
//
// The paper's experiments run with compaction disabled (Table 4,
// NO_COMPACTION) because overlapping chunks are exactly the state M4-LSM
// targets; Compact exists as the standard LSM maintenance operation that
// bounds read amplification over time. After Compact, every chunk's
// metadata is exact again (no pending deletes or overwrites), so M4-LSM
// degenerates to its pure metadata fast path.
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("lsm: engine closed")
	}
	compactStart := time.Now()
	defer func() {
		e.met.compactions.Inc()
		e.met.compactSecs.Observe(time.Since(compactStart).Seconds())
	}()
	// Memtable contents ride along: flush first so the merge sees them.
	if err := e.flushLocked(); err != nil {
		return err
	}
	ids := make([]string, 0, len(e.chunks))
	for id := range e.chunks {
		ids = append(ids, id)
	}
	// Quarantined chunks cannot be read (their bytes fail CRC); the merge
	// excludes them, and the files holding them are set aside below instead
	// of being removed, so the corrupt bytes stay available for salvage.
	e.quarMu.Lock()
	quar := make(map[chunkID]bool, len(e.quarantined))
	for id := range e.quarantined {
		quar[id] = true
	}
	e.quarMu.Unlock()
	merged := make(map[string]series.Series, len(ids))
	everything := series.TimeRange{Start: -(1 << 62), End: 1 << 62}
	for _, id := range ids {
		snap := &storage.Snapshot{SeriesID: id}
		for _, ce := range e.chunks[id] {
			if quar[chunkID{ce.meta.SeriesID, ce.meta.Version}] {
				continue
			}
			snap.Chunks = append(snap.Chunks, storage.NewChunkRef(ce.meta, ce.src, nil))
		}
		snap.Deletes = e.mods.ForSeries(id)
		data, err := mergeread.Merge(snap, everything)
		if err != nil {
			return fmt.Errorf("lsm: compact %s: %w", id, err)
		}
		if len(data) > 0 {
			merged[id] = data
		}
	}

	// Write the compacted generation to a fresh file before touching the
	// old ones; a crash between here and the cleanup below leaves both
	// generations on disk, and duplicate points merge idempotently. The
	// merged output is in order, so it belongs to the sequence space.
	name := fmt.Sprintf("%06d.seq.tsf", e.fileSeq)
	path := filepath.Join(e.opts.Dir, name)
	var newReader *tsfile.Reader
	if len(merged) > 0 {
		w, err := tsfile.Create(path)
		if err != nil {
			return err
		}
		for _, id := range ids {
			data := merged[id]
			for len(data) > 0 {
				n := len(data)
				if n > e.opts.FlushThreshold {
					n = e.opts.FlushThreshold
				}
				if _, err := w.WriteChunk(id, e.nextVer, e.opts.Codec, data[:n]); err != nil {
					w.Abort()
					return err
				}
				e.nextVer++
				data = data[n:]
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		newReader, err = e.openTSFile(path)
		if err != nil {
			return fmt.Errorf("lsm: reopen compacted file: %w", err)
		}
		e.fileSeq++
	}

	// Retire the old generation. The files are unlinked but their
	// handles stay open until engine Close, so snapshots taken before
	// this compaction can still read the chunks they reference.
	oldFiles := e.files
	e.files = nil
	e.chunks = make(map[string][]chunkEntry)
	if newReader != nil {
		e.files = append(e.files, newReader)
		for _, m := range newReader.Metas() {
			e.chunks[m.SeriesID] = append(e.chunks[m.SeriesID], chunkEntry{meta: m, src: e.sourceFor(newReader)})
		}
	}
	for _, f := range oldFiles {
		hasQuarantined := false
		for _, m := range f.Metas() {
			if quar[chunkID{m.SeriesID, m.Version}] {
				hasQuarantined = true
				break
			}
		}
		if hasQuarantined {
			bad, err := uniqueBadPath(f.Path())
			if err == nil {
				err = os.Rename(f.Path(), bad)
			}
			if err != nil {
				return fmt.Errorf("lsm: quarantine pre-compaction file: %w", err)
			}
			e.badFiles++
		} else if err := os.Remove(f.Path()); err != nil {
			return fmt.Errorf("lsm: remove pre-compaction file: %w", err)
		}
		e.retired = append(e.retired, f)
	}
	// The unsequence space is folded into the new sequence generation.
	e.unseqFiles = 0
	e.maxSeqTime = make(map[string]int64)
	for id, data := range merged {
		e.maxSeqTime[id] = data[len(data)-1].T
	}
	// Deletes are folded into the compacted chunks; reset the sidecar.
	if err := e.resetModsLocked(); err != nil {
		return err
	}
	// The WAL may still hold delete records (they don't count toward the
	// flush threshold, so flushLocked can skip the reset). Everything in it
	// is now durable in the compacted generation; drop it so recovery does
	// not resurrect folded-in tombstones.
	if e.wal != nil {
		if err := e.step("compact.walreset"); err != nil {
			return err
		}
		if err := e.wal.Reset(); err != nil {
			return err
		}
	}
	// Every quarantined chunk belonged to the retired generation.
	e.quarMu.Lock()
	e.quarantined = make(map[chunkID]error)
	e.quarMu.Unlock()
	return nil
}

// resetModsLocked replaces the delete sidecar with an empty one.
func (e *Engine) resetModsLocked() error {
	path := filepath.Join(e.opts.Dir, "deletes.mods")
	if err := e.mods.Close(); err != nil {
		return fmt.Errorf("lsm: close mods: %w", err)
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("lsm: remove mods: %w", err)
	}
	mods, err := tsfile.OpenModLog(path)
	if err != nil {
		return fmt.Errorf("lsm: reopen mods: %w", err)
	}
	e.mods = mods
	return nil
}
