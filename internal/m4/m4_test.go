package m4

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"m4lsm/internal/series"
)

func TestQueryValidate(t *testing.T) {
	if err := (Query{Tqs: 0, Tqe: 10, W: 4}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Query{Tqs: 0, Tqe: 10, W: 0}).Validate(); err == nil {
		t.Error("w=0 accepted")
	}
	if err := (Query{Tqs: 10, Tqe: 10, W: 1}).Validate(); err == nil {
		t.Error("empty range accepted")
	}
	if err := (Query{Tqs: 10, Tqe: 5, W: 1}).Validate(); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestSpansPartitionRange(t *testing.T) {
	// Spans must tile [Tqs, Tqe) exactly, even when W does not divide the
	// range length.
	for _, q := range []Query{
		{Tqs: 0, Tqe: 100, W: 4},
		{Tqs: 0, Tqe: 100, W: 7},
		{Tqs: -50, Tqe: 13, W: 9},
		{Tqs: 5, Tqe: 6, W: 3}, // more spans than timestamps
		{Tqs: 1000, Tqe: 1001, W: 1},
	} {
		prev := q.Tqs
		for i := 0; i < q.W; i++ {
			s := q.Span(i)
			if s.Start != prev {
				t.Errorf("%+v span %d starts at %d, want %d", q, i, s.Start, prev)
			}
			prev = s.End
		}
		if prev != q.Tqe {
			t.Errorf("%+v spans end at %d, want %d", q, prev, q.Tqe)
		}
	}
}

func TestSpanIndexConsistentWithSpan(t *testing.T) {
	f := func(rawTqs int32, rawLen uint16, rawW uint8, rawT uint32) bool {
		q := Query{
			Tqs: int64(rawTqs),
			Tqe: int64(rawTqs) + int64(rawLen) + 1,
			W:   int(rawW)%50 + 1,
		}
		t0 := q.Tqs + int64(rawT)%(q.Tqe-q.Tqs)
		i := q.SpanIndex(t0)
		if i < 0 || i >= q.W {
			return false
		}
		return q.Span(i).Contains(t0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpanIndexOutOfRange(t *testing.T) {
	q := Query{Tqs: 10, Tqe: 20, W: 2}
	if q.SpanIndex(9) != -1 || q.SpanIndex(20) != -1 {
		t.Error("out-of-range timestamps must map to -1")
	}
	if q.SpanIndex(10) != 0 || q.SpanIndex(19) != 1 {
		t.Error("boundary timestamps map to wrong spans")
	}
}

func TestComputeSeriesFigure3(t *testing.T) {
	// One span holding a small series: the four representation points.
	s := series.Series{{T: 10, V: 3}, {T: 20, V: 8}, {T: 30, V: 1}, {T: 40, V: 5}}
	aggs, err := ComputeSeries(Query{Tqs: 0, Tqe: 100, W: 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	a := aggs[0]
	if a.Empty {
		t.Fatal("span empty")
	}
	if a.First != s[0] || a.Last != s[3] {
		t.Errorf("first/last = %v/%v", a.First, a.Last)
	}
	if a.Bottom != s[2] || a.Top != s[1] {
		t.Errorf("bottom/top = %v/%v", a.Bottom, a.Top)
	}
}

func TestComputeSeriesMultiSpan(t *testing.T) {
	s := series.Series{
		{T: 0, V: 1}, {T: 1, V: 9}, {T: 2, V: 2}, // span 0: [0,3)
		{T: 3, V: 4}, {T: 5, V: 0}, // span 1: [3,6)
		// span 2 empty
	}
	aggs, err := ComputeSeries(Query{Tqs: 0, Tqe: 9, W: 3}, s)
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].First.T != 0 || aggs[0].Last.T != 2 || aggs[0].Top.V != 9 || aggs[0].Bottom.V != 1 {
		t.Errorf("span0 = %v", aggs[0])
	}
	if aggs[1].First.T != 3 || aggs[1].Last.T != 5 || aggs[1].Bottom.V != 0 || aggs[1].Top.V != 4 {
		t.Errorf("span1 = %v", aggs[1])
	}
	if !aggs[2].Empty {
		t.Errorf("span2 = %v, want empty", aggs[2])
	}
}

func TestComputeSeriesIgnoresOutOfRange(t *testing.T) {
	s := series.Series{{T: -5, V: 100}, {T: 1, V: 1}, {T: 50, V: 100}}
	aggs, err := ComputeSeries(Query{Tqs: 0, Tqe: 10, W: 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Top.V != 1 {
		t.Errorf("out-of-range points leaked: %v", aggs[0])
	}
}

func TestComputeStreamRejectsUnsorted(t *testing.T) {
	s := series.Series{{T: 5, V: 1}, {T: 3, V: 2}}
	if _, err := ComputeSeries(Query{Tqs: 0, Tqe: 10, W: 1}, s); err == nil {
		t.Error("unsorted input accepted")
	}
	dup := series.Series{{T: 5, V: 1}, {T: 5, V: 2}}
	if _, err := ComputeSeries(Query{Tqs: 0, Tqe: 10, W: 1}, dup); err == nil {
		t.Error("duplicate timestamps accepted")
	}
}

func TestComputeStreamInvalidQuery(t *testing.T) {
	if _, err := ComputeSeries(Query{Tqs: 0, Tqe: 10, W: -1}, nil); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestObserve(t *testing.T) {
	a := Aggregate{Empty: true}
	a.Observe(series.Point{T: 1, V: 5})
	if a.Empty || a.First.V != 5 || a.Bottom.V != 5 {
		t.Fatalf("after first observe: %v", a)
	}
	a.Observe(series.Point{T: 2, V: 3})
	a.Observe(series.Point{T: 3, V: 7})
	if a.First.T != 1 || a.Last.T != 3 || a.Bottom.V != 3 || a.Top.V != 7 {
		t.Fatalf("after observes: %v", a)
	}
}

func TestEquivalent(t *testing.T) {
	base := Aggregate{
		First:  series.Point{T: 1, V: 1},
		Last:   series.Point{T: 9, V: 2},
		Bottom: series.Point{T: 3, V: -4},
		Top:    series.Point{T: 4, V: 8},
	}
	same := base
	same.Bottom.T = 7 // different bottom time, same value: still equivalent
	if !Equivalent(base, same) {
		t.Error("value-equal bottoms not equivalent")
	}
	diff := base
	diff.Top.V = 9
	if Equivalent(base, diff) {
		t.Error("different top values equivalent")
	}
	diffFirst := base
	diffFirst.First.V = 99
	if Equivalent(base, diffFirst) {
		t.Error("different first values equivalent")
	}
	if !Equivalent(Aggregate{Empty: true}, Aggregate{Empty: true}) {
		t.Error("two empties not equivalent")
	}
	if Equivalent(Aggregate{Empty: true}, base) {
		t.Error("empty equivalent to non-empty")
	}
}

func TestPoints(t *testing.T) {
	aggs := []Aggregate{
		{First: series.Point{T: 1, V: 1}, Last: series.Point{T: 4, V: 4},
			Bottom: series.Point{T: 2, V: 0}, Top: series.Point{T: 3, V: 9}},
		{Empty: true},
		{First: series.Point{T: 10, V: 5}, Last: series.Point{T: 10, V: 5},
			Bottom: series.Point{T: 10, V: 5}, Top: series.Point{T: 10, V: 5}},
	}
	got := Points(aggs)
	want := series.Series{
		{T: 1, V: 1}, {T: 2, V: 0}, {T: 3, V: 9}, {T: 4, V: 4}, {T: 10, V: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Points = %v, want %v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPointsPreserveRepresentation(t *testing.T) {
	// Key M4 property: recomputing M4 over the reduced point set yields
	// the same representation (the reduction is idempotent).
	rng := rand.New(rand.NewSource(11))
	s := make(series.Series, 0, 3000)
	tt := int64(0)
	for i := 0; i < 3000; i++ {
		tt += int64(1 + rng.Intn(10))
		s = append(s, series.Point{T: tt, V: rng.NormFloat64() * 10})
	}
	q := Query{Tqs: 0, Tqe: tt + 1, W: 37}
	aggs, err := ComputeSeries(q, s)
	if err != nil {
		t.Fatal(err)
	}
	reduced := Points(aggs)
	aggs2, err := ComputeSeries(q, reduced)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aggs {
		if !Equivalent(aggs[i], aggs2[i]) {
			t.Fatalf("span %d: %v vs %v", i, aggs[i], aggs2[i])
		}
	}
}

func TestComputeSeriesAgainstPerSpanScan(t *testing.T) {
	// Cross-check the streaming computation against a per-span scan that
	// uses Span/Slice directly.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		s := make(series.Series, 0, n)
		tt := int64(rng.Intn(50))
		for i := 0; i < n; i++ {
			tt += int64(1 + rng.Intn(8))
			s = append(s, series.Point{T: tt, V: float64(rng.Intn(100))})
		}
		q := Query{Tqs: s[0].T - int64(rng.Intn(10)), Tqe: tt + 1 + int64(rng.Intn(10)), W: 1 + rng.Intn(20)}
		got, err := ComputeSeries(q, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < q.W; i++ {
			sub := s.Slice(q.Span(i))
			if len(sub) == 0 {
				if !got[i].Empty {
					t.Fatalf("trial %d span %d: want empty, got %v", trial, i, got[i])
				}
				continue
			}
			want := Aggregate{Empty: true}
			for _, p := range sub {
				want.Observe(p)
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("trial %d span %d: got %v, want %v", trial, i, got[i], want)
			}
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 3, 0}, {1, 3, 1}, {3, 3, 1}, {4, 3, 2},
		{-1, 3, 0}, {-3, 3, -1}, {-4, 3, -1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAggregateString(t *testing.T) {
	if (Aggregate{Empty: true}).String() != "{empty}" {
		t.Error("empty string form")
	}
	a := Aggregate{First: series.Point{T: 1, V: 2}}
	if a.String() == "" {
		t.Error("empty description")
	}
}
