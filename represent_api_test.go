package m4lsm

import (
	"testing"
)

// TestRepresentAPI drives the public representation surface: every operator
// name through both physical paths, with shape checks on the output.
func TestRepresentAPI(t *testing.T) {
	db, err := Open(t.TempDir(), WithFlushThreshold(50))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 400; i++ {
		if err := db.Write("root.s", Point{Time: int64(i), Value: float64(i%31) + float64(i)*0.001}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, rep := range []string{"", "m4", "minmax", "lttb", "minmaxlttb", "minmaxlttb:8"} {
		var byOp [2][]Point
		for oi, op := range []Operator{OperatorLSM, OperatorUDF} {
			opts := RepresentOptions{Representation: rep}
			opts.Operator = op
			opts.StrictReads = true
			res, err := db.RepresentContext(t.Context(), "root.s", 0, 400, 16, opts)
			if err != nil {
				t.Fatalf("%q op %d: %v", rep, op, err)
			}
			if len(res.Points) == 0 {
				t.Fatalf("%q op %d: no points", rep, op)
			}
			for i := 1; i < len(res.Points); i++ {
				if res.Points[i-1].Time >= res.Points[i].Time {
					t.Fatalf("%q op %d: unsorted output", rep, op)
				}
			}
			byOp[oi] = res.Points
		}
		if len(byOp[0]) != len(byOp[1]) {
			t.Fatalf("%q: LSM %d points, UDF %d points", rep, len(byOp[0]), len(byOp[1]))
		}
		for i := range byOp[0] {
			if byOp[0][i] != byOp[1][i] {
				t.Fatalf("%q point %d: LSM %v, UDF %v", rep, i, byOp[0][i], byOp[1][i])
			}
		}
	}
	// The tuple form with budgets in the mix.
	pts, stats, err := db.Represent("root.s", 0, 400, 10, "lttb")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("lttb kept %d points, want w=10", len(pts))
	}
	if stats.ChunksLoaded == 0 {
		t.Fatal("lttb must load chunks (no metadata path exists for it)")
	}
	// Bad names are rejected before touching the engine.
	if _, _, err := db.Represent("root.s", 0, 400, 10, "nope"); err == nil {
		t.Fatal("unknown representation accepted")
	}
	if _, _, err := db.Represent("root.s", 0, 400, 10, "minmaxlttb:99"); err == nil {
		t.Fatal("out-of-range ratio accepted")
	}
}
