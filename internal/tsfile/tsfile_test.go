package tsfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"m4lsm/internal/encoding"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

func genSeries(n int, seed int64) series.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(series.Series, n)
	t := int64(1_600_000_000_000)
	v := 50.0
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(2000))
		v += rng.NormFloat64()
		s[i] = series.Point{T: t, V: v}
	}
	return s
}

func writeFile(t *testing.T, path string, chunks map[string][]series.Series) []storage.ChunkMeta {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var metas []storage.ChunkMeta
	ver := storage.Version(1)
	for id, datas := range chunks {
		for _, data := range datas {
			m, err := w.WriteChunk(id, ver, encoding.CodecGorilla, data)
			if err != nil {
				t.Fatal(err)
			}
			metas = append(metas, m)
			ver++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return metas
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.tsf")
	s1 := genSeries(500, 1)
	s2 := genSeries(3, 2)
	writeFile(t, path, map[string][]series.Series{"root.sg.s1": {s1}, "root.sg.s2": {s2}})

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Metas()) != 2 {
		t.Fatalf("metas = %d", len(r.Metas()))
	}
	for _, m := range r.Metas() {
		want := s1
		if m.SeriesID == "root.sg.s2" {
			want = s2
		}
		got, err := r.ReadChunk(m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %s: %d pts, want %d", m.SeriesID, len(got), len(want))
		}
		ts, err := r.ReadTimes(m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ts, want.Times()) {
			t.Fatalf("times %s mismatch", m.SeriesID)
		}
		// Metadata must match ComputeMeta of the data.
		f, l, b, tp, _ := storage.ComputeMeta(want)
		if m.First != f || m.Last != l || m.Bottom != b || m.Top != tp {
			t.Fatalf("meta points mismatch: %+v", m)
		}
		if m.Count != int64(len(want)) {
			t.Fatalf("count = %d", m.Count)
		}
	}
}

func TestBothCodecs(t *testing.T) {
	dir := t.TempDir()
	data := genSeries(256, 3)
	for _, codec := range []encoding.Codec{encoding.CodecGorilla, encoding.CodecPlain} {
		path := filepath.Join(dir, codec.String()+".tsf")
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteChunk("s", 1, codec, data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadChunk(r.Metas()[0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, data) {
			t.Fatalf("%v: data mismatch", codec)
		}
		r.Close()
	}
}

func TestWriterRejectsBadChunks(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "x.tsf"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if _, err := w.WriteChunk("s", 1, encoding.CodecGorilla, nil); err == nil {
		t.Error("empty chunk accepted")
	}
	if _, err := w.WriteChunk("s", 1, encoding.CodecGorilla, series.Series{{T: 2, V: 0}, {T: 1, V: 0}}); err == nil {
		t.Error("unsorted chunk accepted")
	}
	if _, err := w.WriteChunk("s", 1, encoding.Codec(9), series.Series{{T: 1, V: 0}}); err == nil {
		t.Error("bad codec accepted")
	}
}

func TestWriteAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteChunk("s", 1, encoding.CodecGorilla, series.Series{{T: 1, V: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteChunk("s", 2, encoding.CodecGorilla, series.Series{{T: 2, V: 0}}); err == nil {
		t.Error("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Error("second close must be a no-op:", err)
	}
}

func TestAbortLeavesNoFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteChunk("s", 1, encoding.CodecGorilla, series.Series{{T: 1, V: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("aborted file still exists")
	}
}

func TestOpenRejectsUnclosedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteChunk("s", 1, encoding.CodecGorilla, genSeries(100, 4)); err != nil {
		t.Fatal(err)
	}
	w.w.Flush() // simulate crash before footer
	w.f.Close()
	if _, err := Open(path); err == nil {
		t.Fatal("unclosed file opened successfully")
	}
}

func TestOpenRejectsCorruptFooter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tsf")
	writeFile(t, path, map[string][]series.Series{"s": {genSeries(100, 5)}})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-20] ^= 0xFF // inside footer
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt footer accepted")
	}
}

func TestReadDetectsCorruptChunkData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tsf")
	metas := writeFile(t, path, map[string][]series.Series{"s": {genSeries(200, 6)}})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m := metas[0]
	raw[m.Offset+m.HeaderLen+2] ^= 0xFF // inside timestamp block
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path) // footer is intact
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadChunk(r.Metas()[0]); err == nil {
		t.Error("corrupt timestamp block read successfully")
	}
	if _, err := r.ReadTimes(r.Metas()[0]); err == nil {
		t.Error("corrupt timestamp block (times path) read successfully")
	}
}

func TestReadDetectsCorruptValueBlockOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tsf")
	metas := writeFile(t, path, map[string][]series.Series{"s": {genSeries(200, 7)}})
	raw, _ := os.ReadFile(path)
	m := metas[0]
	raw[m.Offset+m.HeaderLen+m.TimesLen+2] ^= 0xFF // inside value block
	os.WriteFile(path, raw, 0o644)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadChunk(r.Metas()[0]); err == nil {
		t.Error("corrupt value block read successfully")
	}
	// Timestamp-only read must still succeed: the corruption is confined
	// to the value block, which partial loads never touch.
	if _, err := r.ReadTimes(r.Metas()[0]); err != nil {
		t.Errorf("ReadTimes failed on value-block corruption: %v", err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.tsf")); err == nil {
		t.Fatal("missing file opened")
	}
}

func TestManyChunksOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "many.tsf")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []series.Series
	for i := 0; i < 50; i++ {
		data := genSeries(20+i, int64(i))
		want = append(want, data)
		if _, err := w.WriteChunk("s", storage.Version(i+1), encoding.CodecGorilla, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, m := range r.Metas() {
		got, err := r.ReadChunk(m)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

func TestRecordLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	log, recs, err := OpenRecordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	payloads := [][]byte{[]byte("a"), []byte("bb"), {}, []byte("dddd")}
	for _, p := range payloads {
		if err := log.Append(p, false); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()
	_, recs, err = OpenRecordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(payloads))
	}
	for i := range payloads {
		if string(recs[i]) != string(payloads[i]) {
			t.Errorf("record %d = %q", i, recs[i])
		}
	}
}

func TestRecordLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	log, _, err := OpenRecordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("complete"), true)
	log.Append([]byte("torn-record"), true)
	log.Close()
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)-3], 0o644) // crash mid-append
	log2, recs, err := OpenRecordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "complete" {
		t.Fatalf("recovered %q", recs)
	}
	// The log must be appendable after truncation.
	if err := log2.Append([]byte("after"), true); err != nil {
		t.Fatal(err)
	}
	log2.Close()
	_, recs, err = OpenRecordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[1]) != "after" {
		t.Fatalf("after re-append: %q", recs)
	}
}

func TestRecordLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	log, _, err := OpenRecordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("x"), false)
	if err := log.Reset(); err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("y"), true)
	log.Close()
	_, recs, err := OpenRecordLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "y" {
		t.Fatalf("after reset: %q", recs)
	}
}

func TestModLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.mods")
	m, err := OpenModLog(path)
	if err != nil {
		t.Fatal(err)
	}
	dels := []storage.Delete{
		{SeriesID: "s1", Version: 3, Start: 10, End: 20},
		{SeriesID: "s2", Version: 4, Start: -5, End: 5},
		{SeriesID: "s1", Version: 9, Start: 100, End: 100},
	}
	for _, d := range dels {
		if err := m.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.ForSeries("s1"); len(got) != 2 || got[1].Version != 9 {
		t.Fatalf("ForSeries = %v", got)
	}
	m.Close()
	m2, err := OpenModLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !reflect.DeepEqual(m2.All(), dels) {
		t.Fatalf("recovered %v, want %v", m2.All(), dels)
	}
}

func TestModLogRejectsInvertedRange(t *testing.T) {
	m, err := OpenModLog(filepath.Join(t.TempDir(), "db.mods"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Append(storage.Delete{SeriesID: "s", Version: 1, Start: 10, End: 5}); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestReadTimesCheaperThanReadChunk(t *testing.T) {
	// The partial load contract: ReadTimes must touch fewer bytes. We
	// verify via the meta lengths, which ChunkRef uses for accounting.
	path := filepath.Join(t.TempDir(), "x.tsf")
	metas := writeFile(t, path, map[string][]series.Series{"s": {genSeries(1000, 8)}})
	m := metas[0]
	if m.TimesLen <= 0 || m.ValuesLen <= 0 {
		t.Fatalf("bad lengths: %+v", m)
	}
	if m.HeaderLen+m.TimesLen >= m.HeaderLen+m.TimesLen+m.ValuesLen {
		t.Fatal("times read not cheaper than full read")
	}
}
