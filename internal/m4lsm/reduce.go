package m4lsm

import (
	"context"
	"time"

	"m4lsm/internal/m4"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/obs"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Reduce answers a representation query with default options.
func Reduce(snap *storage.Snapshot, q m4.Query, spec reprops.Spec) (series.Series, error) {
	return ReduceContext(context.Background(), snap, q, spec, Options{})
}

// ReduceContext answers one representation query over one snapshot through
// the LSM-native execution path; see ReduceMultiContext.
func ReduceContext(ctx context.Context, snap *storage.Snapshot, q m4.Query, spec reprops.Spec, opts Options) (series.Series, error) {
	outs, err := ReduceMultiContext(ctx, []*storage.Snapshot{snap}, q, spec, opts)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// ReduceMultiContext evaluates one representation query over several series,
// choosing the cheapest execution the operator admits:
//
//   - M4 runs the classic two-wave span×G machinery and flattens the
//     aggregates to points (identical to ComputeMultiContext + m4.Points).
//   - MinMax runs the same machinery with the LP wave dropped — chunk
//     metadata pruning, lazy verification, and pyramid cells (which roll up
//     BP/TP) all apply, so fully covered spans load zero chunks.
//   - MinMaxLTTB runs MinMax at ratio·w spans (metadata and pyramid apply
//     to the preselection) and LTTB-selects the final w on the tiny subset.
//   - LTTB cannot use metadata at all — every point's triangle area depends
//     on its neighbours — so it pays the full merge through mergeread
//     (budget-charged, strictness and degradation as in the UDF baseline)
//     and selects sequentially per series.
//
// Results are positional (out[i] belongs to snaps[i]) and bit-identical to
// reprops.Reduce over each snapshot's merged series, which the differential
// harness enforces per operator.
func ReduceMultiContext(ctx context.Context, snaps []*storage.Snapshot, q m4.Query, spec reprops.Spec, opts Options) ([]series.Series, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case reprops.KindMinMax:
		aggs, err := computeMultiKinds(ctx, snaps, q, opts, restMinMax, "minmax")
		if err != nil {
			return nil, err
		}
		out := make([]series.Series, len(aggs))
		for i, a := range aggs {
			out[i] = reprops.MinMaxPoints(a)
		}
		return out, nil
	case reprops.KindLTTB:
		return reduceLTTB(ctx, snaps, q, opts)
	case reprops.KindMinMaxLTTB:
		pre := reprops.PreQuery(q, spec.EffectiveRatio())
		aggs, err := computeMultiKinds(ctx, snaps, pre, opts, restMinMax, "minmaxlttb")
		if err != nil {
			return nil, err
		}
		out := make([]series.Series, len(aggs))
		for i, a := range aggs {
			out[i] = reprops.LTTB(reprops.MinMaxPoints(a), q.W)
		}
		return out, nil
	default:
		aggs, err := computeMultiKinds(ctx, snaps, q, opts, restM4, "lsm")
		if err != nil {
			return nil, err
		}
		out := make([]series.Series, len(aggs))
		for i, a := range aggs {
			out[i] = m4.Points(a)
		}
		return out, nil
	}
}

// reduceLTTB merges each snapshot through mergeread (loads fanned across
// Options.Parallelism workers, Strict/Budget semantics identical to the UDF
// baseline) and runs the sequential triangle selection on the merged range.
func reduceLTTB(ctx context.Context, snaps []*storage.Snapshot, q m4.Query, opts Options) ([]series.Series, error) {
	tr := obs.TraceOf(ctx)
	met := obs.NewOperatorMetrics(opts.Metrics, "lttb")
	instrumented := tr != nil || met != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	lopts := mergeread.LoadOptions{Parallelism: opts.Parallelism, Strict: opts.Strict, Budget: opts.Budget}
	out := make([]series.Series, len(snaps))
	total := map[string]int64{}
	for i, snap := range snaps {
		var statsBefore storage.Stats
		if instrumented && snap.Stats != nil {
			statsBefore = snap.Stats.Load()
		}
		loaded, err := mergeread.LoadContext(ctx, snap, lopts)
		if err != nil {
			return nil, err
		}
		var t0 time.Time
		if instrumented {
			t0 = time.Now()
		}
		it := loaded.Iterator(q.Range())
		var s series.Series
		for {
			p, ok := it.Next()
			if !ok {
				break
			}
			s = append(s, p)
		}
		out[i] = reprops.LTTB(s, q.W)
		if instrumented {
			d := time.Since(t0)
			tr.Task(i, "select", d)
			met.RecordTask(d)
			if snap.Stats != nil {
				delta := snap.Stats.Load().Sub(statsBefore)
				met.RecordQuery(time.Since(start), delta.ChunksLoaded, delta.ChunksPruned,
					delta.TimeBlocksLoaded, delta.PointsDecoded, delta.CacheHits)
				for k, v := range delta.Map() {
					total[k] += v
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if instrumented {
		tr.SetCounters(total)
	}
	return out, nil
}
