package tsfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"m4lsm/internal/encoding"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// Reader opens a closed chunk file for metadata and chunk reads. It is the
// MetadataReader + DataReader pair of Fig. 15: Open parses only the footer;
// chunk contents are fetched on demand through ReadChunk/ReadTimes.
// A Reader is safe for concurrent use (reads use ReadAt).
type Reader struct {
	ra     io.ReaderAt
	size   int64
	closer io.Closer // nil for readers not owning a file handle
	path   string
	metas  []storage.ChunkMeta
}

// Open validates the file framing and loads the chunk metadata table.
func Open(path string) (*Reader, error) {
	return open(path, nil)
}

// OpenWith opens path but routes all reads (including the footer parse)
// through wrap(f), letting callers inject faults or instrumentation between
// the reader and the file. wrap == nil behaves like Open.
func OpenWith(path string, wrap func(io.ReaderAt) io.ReaderAt) (*Reader, error) {
	return open(path, wrap)
}

func open(path string, wrap func(io.ReaderAt) io.ReaderAt) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tsfile: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tsfile: %w", err)
	}
	var ra io.ReaderAt = f
	if wrap != nil {
		ra = wrap(f)
	}
	r := &Reader{ra: ra, size: fi.Size(), closer: f, path: path}
	if err := r.readFooter(); err != nil {
		f.Close()
		return nil, fmt.Errorf("tsfile: open %s: %w", path, err)
	}
	return r, nil
}

// OpenReaderAt parses a chunk file served by an arbitrary io.ReaderAt
// (used by tests and fault injection). name only labels errors.
func OpenReaderAt(ra io.ReaderAt, size int64, name string) (*Reader, error) {
	r := &Reader{ra: ra, size: size, path: name}
	if err := r.readFooter(); err != nil {
		return nil, fmt.Errorf("tsfile: open %s: %w", name, err)
	}
	return r, nil
}

func (r *Reader) readFooter() error {
	size := r.size
	const tailLen = 4 + 8 + 4 // crc + footerLen + magic
	if size < int64(len(fileMagic))+tailLen {
		return fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	head := make([]byte, len(fileMagic))
	if _, err := r.ra.ReadAt(head, 0); err != nil {
		return err
	}
	if string(head) != string(fileMagic) {
		return fmt.Errorf("%w: bad file magic", ErrCorrupt)
	}
	tail := make([]byte, tailLen)
	if _, err := r.ra.ReadAt(tail, size-tailLen); err != nil {
		return err
	}
	if string(tail[12:]) != string(footerMagic) {
		return fmt.Errorf("%w: bad footer magic (file not closed?)", ErrCorrupt)
	}
	wantCRC := binary.LittleEndian.Uint32(tail[:4])
	footerLen := int64(binary.LittleEndian.Uint64(tail[4:12]))
	footerOff := size - tailLen - footerLen
	if footerLen < 0 || footerOff < int64(len(fileMagic)) {
		return fmt.Errorf("%w: bad footer length %d", ErrCorrupt, footerLen)
	}
	footer := make([]byte, footerLen)
	if _, err := r.ra.ReadAt(footer, footerOff); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(footer) != wantCRC {
		return fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	count, footer, err := encoding.Uvarint(footer)
	if err != nil {
		return err
	}
	metas := make([]storage.ChunkMeta, 0, count)
	for i := uint64(0); i < count; i++ {
		var m storage.ChunkMeta
		m, footer, err = parseMeta(footer)
		if err != nil {
			return fmt.Errorf("meta %d: %w", i, err)
		}
		metas = append(metas, m)
	}
	if len(footer) != 0 {
		return fmt.Errorf("%w: %d trailing footer bytes", ErrCorrupt, len(footer))
	}
	r.metas = metas
	return nil
}

// Metas returns the metadata of every chunk in the file, in write order.
// The caller must not modify the returned slice.
func (r *Reader) Metas() []storage.ChunkMeta { return r.metas }

// Path returns the file path.
func (r *Reader) Path() string { return r.path }

// Close releases the file handle, if the reader owns one.
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	return r.closer.Close()
}

// readBlocks fetches header + timestamp block and optionally the value
// block of a chunk, verifying checksums.
func (r *Reader) readBlocks(meta storage.ChunkMeta, withValues bool) (times, values []byte, err error) {
	n := meta.HeaderLen + meta.TimesLen
	if withValues {
		n += meta.ValuesLen
	}
	buf := make([]byte, n)
	if _, err := r.ra.ReadAt(buf, meta.Offset); err != nil {
		return nil, nil, fmt.Errorf("read chunk at %d: %w", meta.Offset, err)
	}
	hdr := buf[:meta.HeaderLen]
	// The two block CRCs are the last 8 bytes of the header.
	if meta.HeaderLen < 8 {
		return nil, nil, fmt.Errorf("%w: header too short", ErrCorrupt)
	}
	timesCRC := binary.LittleEndian.Uint32(hdr[meta.HeaderLen-8:])
	valuesCRC := binary.LittleEndian.Uint32(hdr[meta.HeaderLen-4:])
	times = buf[meta.HeaderLen : meta.HeaderLen+meta.TimesLen]
	if crc32.ChecksumIEEE(times) != timesCRC {
		return nil, nil, fmt.Errorf("%w: timestamp block checksum mismatch (%s v%d)", ErrCorrupt, meta.SeriesID, meta.Version)
	}
	if withValues {
		values = buf[meta.HeaderLen+meta.TimesLen:]
		if crc32.ChecksumIEEE(values) != valuesCRC {
			return nil, nil, fmt.Errorf("%w: value block checksum mismatch (%s v%d)", ErrCorrupt, meta.SeriesID, meta.Version)
		}
	}
	return times, values, nil
}

// ReadChunk implements storage.ChunkSource.
func (r *Reader) ReadChunk(meta storage.ChunkMeta) (series.Series, error) {
	timesBlock, valuesBlock, err := r.readBlocks(meta, true)
	if err != nil {
		return nil, err
	}
	ts, rest, err := meta.Codec.DecodeTimesWith(timesBlock)
	if err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("%w: timestamp block decode (%v)", ErrCorrupt, err)
	}
	vs, rest, err := meta.Codec.DecodeValuesWith(valuesBlock)
	if err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("%w: value block decode (%v)", ErrCorrupt, err)
	}
	if int64(len(ts)) != meta.Count || len(ts) != len(vs) {
		return nil, fmt.Errorf("%w: count mismatch: meta %d, times %d, values %d", ErrCorrupt, meta.Count, len(ts), len(vs))
	}
	return series.FromColumns(ts, vs), nil
}

// ReadTimes implements storage.ChunkSource: it fetches and decodes only the
// timestamp block.
func (r *Reader) ReadTimes(meta storage.ChunkMeta) ([]int64, error) {
	timesBlock, _, err := r.readBlocks(meta, false)
	if err != nil {
		return nil, err
	}
	ts, rest, err := meta.Codec.DecodeTimesWith(timesBlock)
	if err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("%w: timestamp block decode (%v)", ErrCorrupt, err)
	}
	if int64(len(ts)) != meta.Count {
		return nil, fmt.Errorf("%w: count mismatch: meta %d, times %d", ErrCorrupt, meta.Count, len(ts))
	}
	return ts, nil
}

var _ storage.ChunkSource = (*Reader)(nil)
