// Batched, backpressured ingestion: Engine.WriteBatch enqueues per-series
// point slices onto bounded per-shard queues drained by append workers
// (one per shard; a single sequential worker under a StepHook so fault
// schedules stay deterministic). The caller blocks until every entry of
// its batch is durable — ack still means "WAL group synced" — so the only
// thing the queue buys is batching: a worker drains a whole run of items,
// takes its shard lock once, and submits all their WAL records as ONE
// group commit, amortizing both the lock round-trips and the fsync.
//
// Backpressure, never unbounded buffering: each shard's queue is capped in
// both points and bytes. An enqueue that would overflow blocks for at most
// Options.IngestEnqueueWait and then fails with ErrIngestBackpressure, a
// typed retryable error the HTTP layer maps to 429. Nothing is ever
// silently dropped — every entry is either acknowledged durable or its
// batch's error says why not.
//
// Crash atomicity is per WAL record, i.e. per BatchEntry: a crashed batch
// may recover any subset of its entries (each was its own record), but
// never a partial entry. The torture matrix drives the two step sites here
// (ingest.enqueue before anything is queued, ingest.drain before a worker
// touches its shard) plus wal.group in the committer.
package lsm

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"m4lsm/internal/series"
)

// ErrIngestBackpressure marks a WriteBatch rejected because a shard's
// ingest queue stayed full past the enqueue deadline. The condition is
// transient — workers are draining — so callers should back off and
// retry; point writes are idempotent overwrites, so retrying a partially
// enqueued batch is safe.
var ErrIngestBackpressure = errors.New("lsm: ingest queue full (backpressure, retry)")

// errEngineClosed is what queued-but-undrained entries fail with when the
// engine shuts down underneath them.
var errEngineClosed = errors.New("lsm: engine closed")

// Default ingest-queue bounds (per shard).
const (
	defaultIngestQueuePoints = 1 << 16 // 64k points
	defaultIngestQueueBytes  = 8 << 20 // 8 MiB of point payload
	defaultIngestWait        = 2 * time.Second
	// ingestDrainRun bounds how many queued items one worker round takes:
	// enough to amortize the shard lock and share a group commit, small
	// enough that one round's latency stays bounded.
	ingestDrainRun = 64
)

// BatchEntry is one series' slice of a WriteBatch: it becomes exactly one
// WAL record, the crash-atomicity unit of batched ingestion.
type BatchEntry struct {
	SeriesID string
	Points   []series.Point
}

// batchResult joins one WriteBatch caller with the workers draining its
// entries. The first error wins; done closes when the last entry resolves.
type batchResult struct {
	pending atomic.Int64
	mu      sync.Mutex
	err     error
	done    chan struct{}
}

func (r *batchResult) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

func (r *batchResult) finish(n int64) {
	if r.pending.Add(-n) == 0 {
		close(r.done)
	}
}

// ingestItem is one queued BatchEntry.
type ingestItem struct {
	seriesID string
	pts      series.Series
	bytes    int
	res      *batchResult
}

// ingester owns the per-shard bounded queues and the append workers. One
// mutex guards every queue: queue operations are cheap (slice push/pop);
// the expensive work — WAL group commit, memtable insert, flush — happens
// outside it, so sharing one lock costs nothing and makes a sequential
// single-worker mode (StepHook determinism) trivial.
type ingester struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]ingestItem // per shard
	points []int          // queued points per shard
	bytes  []int          // queued payload bytes per shard

	closing bool // no new enqueues; workers drain what is queued, then exit
	killed  bool // workers fail what is queued, then exit

	started sync.Once
	wg      sync.WaitGroup

	// Lifetime counters, surfaced as metrics.
	batches      atomic.Int64
	entries      atomic.Int64
	pointsIn     atomic.Int64
	backpressure atomic.Int64
	drainRounds  atomic.Int64
}

func newIngester(shards int) *ingester {
	ing := &ingester{
		queues: make([][]ingestItem, shards),
		points: make([]int, shards),
		bytes:  make([]int, shards),
	}
	ing.cond = sync.NewCond(&ing.mu)
	return ing
}

// queuedPoints / queuedBytes report the current queue depth across all
// shards, for the bounded-queue gauges.
func (ing *ingester) queuedPoints() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	total := 0
	for _, n := range ing.points {
		total += n
	}
	return total
}

func (ing *ingester) queuedBytes() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	total := 0
	for _, n := range ing.bytes {
		total += n
	}
	return total
}

func (e *Engine) ingestQueuePointsCap() int {
	if n := e.opts.IngestQueuePoints; n > 0 {
		return n
	}
	return defaultIngestQueuePoints
}

func (e *Engine) ingestQueueBytesCap() int {
	if n := e.opts.IngestQueueBytes; n > 0 {
		return n
	}
	return defaultIngestQueueBytes
}

func (e *Engine) ingestWait() time.Duration {
	if w := e.opts.IngestEnqueueWait; w != 0 {
		if w < 0 {
			return 0
		}
		return w
	}
	return defaultIngestWait
}

// startIngestWorkers launches the append workers on first use: one per
// shard normally, a single worker walking every shard in index order when
// a StepHook is installed (deterministic drain schedules, like
// shardParallelism).
func (e *Engine) startIngestWorkers() {
	ing := e.ing
	ing.started.Do(func() {
		if e.opts.StepHook != nil {
			ing.wg.Add(1)
			go func() {
				defer ing.wg.Done()
				e.ingestWorker(-1)
			}()
			return
		}
		for i := range e.shards {
			ing.wg.Add(1)
			go func(ix int) {
				defer ing.wg.Done()
				e.ingestWorker(ix)
			}(i)
		}
	})
}

// WriteBatch ingests several series' points through the bounded append
// queues: entries are enqueued per shard (blocking up to
// Options.IngestEnqueueWait when a queue is full, then failing with
// ErrIngestBackpressure) and the call returns once every entry is durable
// — the acknowledgment contract is identical to Write's, each entry
// becoming one group-committed WAL record. On a partially enqueued batch
// the call waits for the entries that did get in, then reports the
// backpressure error; retrying the whole batch is safe because point
// writes are idempotent overwrites.
func (e *Engine) WriteBatch(entries ...BatchEntry) error {
	total := 0
	for _, ent := range entries {
		if ent.SeriesID == "" {
			return errors.New("lsm: empty series id")
		}
		for _, p := range ent.Points {
			if math.IsNaN(p.V) {
				return fmt.Errorf("lsm: NaN value at t=%d", p.T)
			}
		}
		total += len(ent.Points)
	}
	if total == 0 {
		return nil
	}
	if err := e.writable(); err != nil {
		return err
	}
	if e.closed.Load() {
		return errEngineClosed
	}
	// The enqueue site crashes BEFORE anything is queued: an injected kill
	// here loses the whole batch, never half of it.
	if err := e.step("ingest.enqueue"); err != nil {
		return err
	}
	e.startIngestWorkers()
	res := &batchResult{done: make(chan struct{})}
	// The caller holds one reference of its own so a worker finishing the
	// first entry cannot close done while later entries are still being
	// enqueued.
	res.pending.Store(1)
	queued := int64(0)
	var enqErr error
	for _, ent := range entries {
		if len(ent.Points) == 0 {
			continue
		}
		_, shardIx := e.shardFor(ent.SeriesID)
		item := ingestItem{
			seriesID: ent.SeriesID,
			pts:      append(series.Series(nil), ent.Points...),
			bytes:    len(ent.Points) * 16, // 8-byte time + 8-byte value
			res:      res,
		}
		res.pending.Add(1)
		if err := e.ing.enqueue(shardIx, item, e.ingestQueuePointsCap(), e.ingestQueueBytesCap(), e.ingestWait()); err != nil {
			res.pending.Add(-1)
			enqErr = err
			break
		}
		queued++
	}
	e.ing.batches.Add(1)
	e.ing.entries.Add(queued)
	e.ing.pointsIn.Add(int64(total))
	// Release the caller's reference and wait for the queued entries even
	// when a later entry hit backpressure: returning while entries are in
	// flight would detach the caller from the bounded queue.
	res.finish(1)
	<-res.done
	if enqErr != nil {
		return enqErr
	}
	res.mu.Lock()
	defer res.mu.Unlock()
	return res.err
}

// enqueue adds one item to a shard's queue, blocking while the queue is
// over either cap, up to wait. The caps are soft by one item: a queue
// below cap accepts an item of any size (otherwise an entry larger than
// the cap could never be ingested).
func (ing *ingester) enqueue(shardIx int, item ingestItem, maxPoints, maxBytes int, wait time.Duration) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.closing || ing.killed {
		return errEngineClosed
	}
	if ing.points[shardIx] >= maxPoints || ing.bytes[shardIx] >= maxBytes {
		if wait <= 0 {
			ing.backpressure.Add(1)
			return fmt.Errorf("%w: shard %d holds %d points / %d bytes",
				ErrIngestBackpressure, shardIx, ing.points[shardIx], ing.bytes[shardIx])
		}
		deadline := time.Now().Add(wait)
		// sync.Cond has no timed wait; a timer broadcast bounds the block.
		timer := time.AfterFunc(wait, ing.cond.Broadcast)
		defer timer.Stop()
		for ing.points[shardIx] >= maxPoints || ing.bytes[shardIx] >= maxBytes {
			if ing.closing || ing.killed {
				return errEngineClosed
			}
			if !time.Now().Before(deadline) {
				ing.backpressure.Add(1)
				return fmt.Errorf("%w: shard %d held %d points / %d bytes past %s",
					ErrIngestBackpressure, shardIx, ing.points[shardIx], ing.bytes[shardIx], wait)
			}
			ing.cond.Wait()
		}
		if ing.closing || ing.killed {
			return errEngineClosed
		}
	}
	ing.queues[shardIx] = append(ing.queues[shardIx], item)
	ing.points[shardIx] += len(item.pts)
	ing.bytes[shardIx] += item.bytes
	// Wake the shard's worker (and any writer whose timer fired).
	ing.cond.Broadcast()
	return nil
}

// take pops up to ingestDrainRun items from one shard's queue.
func (ing *ingester) take(shardIx int) []ingestItem {
	q := ing.queues[shardIx]
	if len(q) == 0 {
		return nil
	}
	n := len(q)
	if n > ingestDrainRun {
		n = ingestDrainRun
	}
	run := append([]ingestItem(nil), q[:n]...)
	rest := append([]ingestItem(nil), q[n:]...)
	ing.queues[shardIx] = rest
	for _, it := range run {
		ing.points[shardIx] -= len(it.pts)
		ing.bytes[shardIx] -= it.bytes
	}
	return run
}

// ingestWorker drains queue shardIx until shutdown; shardIx -1 is the
// sequential mode: one worker walking every shard in index order.
func (e *Engine) ingestWorker(shardIx int) {
	ing := e.ing
	for {
		ing.mu.Lock()
		var run []ingestItem
		ix := shardIx
		if shardIx >= 0 {
			run = ing.take(shardIx)
		} else {
			for i := range ing.queues {
				if run = ing.take(i); run != nil {
					ix = i
					break
				}
			}
		}
		if run == nil {
			if ing.closing || ing.killed {
				ing.mu.Unlock()
				return
			}
			ing.cond.Wait()
			ing.mu.Unlock()
			continue
		}
		killed := ing.killed
		ing.mu.Unlock()
		// Freed capacity: release writers blocked on a full queue.
		ing.cond.Broadcast()
		if killed {
			failRun(run, errEngineClosed)
			continue
		}
		ing.drainRounds.Add(1)
		e.drainRun(ix, run)
	}
}

// failRun resolves a run of items with one error.
func failRun(run []ingestItem, err error) {
	for _, it := range run {
		it.res.fail(err)
		it.res.finish(1)
	}
}

// drainRun applies one run of queued items to their shard: all WAL records
// submitted as one group commit under a single shard-lock acquisition,
// then the memtable inserts, then at most one flush when the threshold is
// crossed. Failures resolve every item in the run — with ErrCrash verbatim
// for the torture harness, or classified (ENOSPC -> read-only) otherwise.
func (e *Engine) drainRun(shardIx int, run []ingestItem) {
	// The drain site crashes before the shard is touched: the run's
	// records are not yet in the WAL, so the kill loses whole entries,
	// never parts of one.
	if err := e.step("ingest.drain"); err != nil {
		failRun(run, err)
		return
	}
	sh := e.shards[shardIx]
	sh.mu.Lock()
	if e.closed.Load() {
		sh.mu.Unlock()
		failRun(run, errEngineClosed)
		return
	}
	if e.wal != nil {
		reqs := make([]*walReq, len(run))
		for i, it := range run {
			reqs[i] = &walReq{
				payload: encodeInsertSharded(shardIx, it.seriesID, it.pts),
				shardIx: shardIx,
				done:    make(chan struct{}),
			}
		}
		e.walSubmit(reqs)
		// One failed record fails its whole group (commitGroup is
		// all-or-nothing per group), so checking the first error covers
		// the run.
		for _, r := range reqs {
			if r.err != nil {
				failRun(run, e.classifyWrite(r.err))
				sh.mu.Unlock()
				return
			}
		}
		e.met.walAppends.Add(int64(len(reqs)))
	}
	flushNeeded := false
	for _, it := range run {
		e.pyrMarkStalePoints(it.seriesID, it.pts)
		sh.mem[it.seriesID] = append(sh.mem[it.seriesID], it.pts...)
		sh.memPts.Add(int64(len(it.pts)))
		e.met.pointsWritten.Add(int64(len(it.pts)))
		if len(sh.mem[it.seriesID]) >= e.opts.FlushThreshold {
			flushNeeded = true
		}
	}
	var err error
	if flushNeeded {
		var n int
		n, err = e.flushShardLocked(sh)
		if err == nil && n > 0 {
			if err = e.maybeRetireWAL(); err == nil {
				err = e.pyrMaybeSave()
			}
		}
		err = e.classifyWrite(err)
	}
	sh.mu.Unlock()
	if err != nil {
		// The points are durable (WAL + memtable); only the flush failed.
		// Report it like Write does: the caller sees a retryable error,
		// the data is not lost.
		failRun(run, err)
		return
	}
	for _, it := range run {
		it.res.finish(1)
	}
}

// stopIngest shuts the ingest subsystem down. drain=true (Close) lets the
// workers finish everything already queued; drain=false (Kill) fails the
// queued items instead. Either way every worker has exited when this
// returns, so callers may take all shard locks afterwards. Safe to call
// when no worker was ever started, and idempotent.
func (e *Engine) stopIngest(drain bool) {
	ing := e.ing
	ing.mu.Lock()
	if drain {
		ing.closing = true
	} else {
		ing.killed = true
	}
	ing.mu.Unlock()
	ing.cond.Broadcast()
	// Ensure the started.Do slot is burned so wg.Wait() covers a racing
	// startIngestWorkers (its workers would see closing/killed and exit).
	ing.started.Do(func() {})
	ing.wg.Wait()
	// Anything still queued (killed, or enqueued after the last worker
	// exited) fails rather than dangling a waiter.
	ing.mu.Lock()
	var leftovers []ingestItem
	for i := range ing.queues {
		leftovers = append(leftovers, ing.queues[i]...)
		ing.queues[i] = nil
		ing.points[i] = 0
		ing.bytes[i] = 0
	}
	ing.mu.Unlock()
	failRun(leftovers, errEngineClosed)
	ing.cond.Broadcast()
}
