// Package m4 defines the M4 representation of Definitions 2.1–2.3: the four
// representation functions FirstPoint, LastPoint, BottomPoint and TopPoint,
// the derivation of the w time spans of a query, and a streaming reference
// implementation that computes the representation of an already-merged
// series. The streaming implementation is both the M4-UDF building block
// and the ground truth the M4-LSM operator is tested against.
package m4

import (
	"errors"
	"fmt"
	"sort"

	"m4lsm/internal/series"
)

// Query is an M4 representation query (Definition 2.3): the half-open time
// range [Tqs, Tqe) divided into W equal time spans, one per pixel column.
type Query struct {
	Tqs int64 // query start, inclusive
	Tqe int64 // query end, exclusive
	W   int   // number of time spans (pixel columns)
}

// Validate checks the query parameters.
func (q Query) Validate() error {
	if q.W <= 0 {
		return fmt.Errorf("m4: w must be positive, got %d", q.W)
	}
	if q.Tqe <= q.Tqs {
		return fmt.Errorf("m4: empty query range [%d, %d)", q.Tqs, q.Tqe)
	}
	return nil
}

// Range returns the whole query range.
func (q Query) Range() series.TimeRange {
	return series.TimeRange{Start: q.Tqs, End: q.Tqe}
}

// Span returns the i-th time span I_{i+1} (0-based i in [0, W)). Boundaries
// use the integer form of the paper's SQL grouping (Appendix A.1): point t
// belongs to span floor(W*(t-Tqs)/(Tqe-Tqs)), so span i covers
// [Tqs+ceil(i*len/W), Tqs+ceil((i+1)*len/W)). With this formulation Span
// and SpanIndex agree exactly with no floating-point drift.
func (q Query) Span(i int) series.TimeRange {
	length := q.Tqe - q.Tqs
	return series.TimeRange{
		Start: q.Tqs + ceilDiv(int64(i)*length, int64(q.W)),
		End:   q.Tqs + ceilDiv(int64(i+1)*length, int64(q.W)),
	}
}

// SpanIndex returns the 0-based span containing t, or -1 if t lies outside
// the query range.
func (q Query) SpanIndex(t int64) int {
	if t < q.Tqs || t >= q.Tqe {
		return -1
	}
	return int(int64(q.W) * (t - q.Tqs) / (q.Tqe - q.Tqs))
}

func ceilDiv(a, b int64) int64 {
	d := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		d++
	}
	return d
}

// Aggregate is the result of the four representation functions on one time
// span. When Empty is true the span contains no (latest) points and the
// four points are meaningless.
type Aggregate struct {
	First  series.Point // FP(T_i)
	Last   series.Point // LP(T_i)
	Bottom series.Point // BP(T_i): any point with the minimal value
	Top    series.Point // TP(T_i): any point with the maximal value
	Empty  bool
}

// Observe folds one point into the aggregate. Points must arrive in
// increasing time order; an Empty aggregate is initialized by its first
// point.
func (a *Aggregate) Observe(p series.Point) {
	if a.Empty {
		*a = Aggregate{First: p, Last: p, Bottom: p, Top: p}
		return
	}
	a.Last = p
	if p.V < a.Bottom.V {
		a.Bottom = p
	}
	if p.V > a.Top.V {
		a.Top = p
	}
}

func (a Aggregate) String() string {
	if a.Empty {
		return "{empty}"
	}
	return fmt.Sprintf("{first=%v last=%v bottom=%v top=%v}", a.First, a.Last, a.Bottom, a.Top)
}

// Equivalent reports whether two aggregates are interchangeable for
// visualization: FP and LP must match exactly (inter-column pixels depend
// on their times and values), while BP and TP need only agree on value
// (inner-column pixels depend on values alone; Definition 2.1 allows any
// extremal point).
func Equivalent(a, b Aggregate) bool {
	if a.Empty != b.Empty {
		return false
	}
	if a.Empty {
		return true
	}
	return a.First == b.First && a.Last == b.Last &&
		a.Bottom.V == b.Bottom.V && a.Top.V == b.Top.V
}

// Combine folds the aggregates of consecutive sub-intervals into the
// aggregate of their union. Parts must be in time order and must partition
// disjoint intervals: then First is the first non-empty part's First, Last
// the last non-empty part's Last, and Bottom/Top the extremes across parts,
// keeping the earliest point on value ties — exactly what Observe computes
// over the concatenated points. The rollup-pyramid planner uses this to
// stitch precomputed cells with exactly-computed boundary fragments.
func Combine(parts ...Aggregate) Aggregate {
	out := Aggregate{Empty: true}
	for _, p := range parts {
		if p.Empty {
			continue
		}
		if out.Empty {
			out = p
			continue
		}
		out.Last = p.Last
		if p.Bottom.V < out.Bottom.V {
			out.Bottom = p.Bottom
		}
		if p.Top.V > out.Top.V {
			out.Top = p.Top
		}
	}
	return out
}

// ErrUnsorted reports out-of-order input to the streaming computation.
var ErrUnsorted = errors.New("m4: input points not in increasing time order")

// ComputeStream runs the M4 representation query over a stream of latest
// points in strictly increasing time order (e.g. a mergeread.Iterator),
// returning one aggregate per span. Spans without points are marked Empty.
func ComputeStream(q Query, next func() (series.Point, bool)) ([]Aggregate, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := make([]Aggregate, q.W)
	for i := range out {
		out[i].Empty = true
	}
	prevT := int64(0)
	first := true
	for {
		p, ok := next()
		if !ok {
			break
		}
		if !first && p.T <= prevT {
			return nil, fmt.Errorf("%w: t=%d after t=%d", ErrUnsorted, p.T, prevT)
		}
		first = false
		prevT = p.T
		i := q.SpanIndex(p.T)
		if i < 0 {
			continue
		}
		out[i].Observe(p)
	}
	return out, nil
}

// ComputeSeries runs the M4 representation query over an in-memory merged
// series (the reference used by tests and by the pixel-error validation).
func ComputeSeries(q Query, s series.Series) ([]Aggregate, error) {
	i := 0
	return ComputeStream(q, func() (series.Point, bool) {
		if i >= len(s) {
			return series.Point{}, false
		}
		p := s[i]
		i++
		return p, true
	})
}

// Points flattens aggregates into the reduced series M4 renders: for every
// non-empty span the first, bottom/top (in time order) and last points,
// deduplicated and sorted by time. This is the series a client draws.
func Points(aggs []Aggregate) series.Series {
	out := make(series.Series, 0, 4*len(aggs))
	for _, a := range aggs {
		if a.Empty {
			continue
		}
		out = append(out, a.First, a.Bottom, a.Top, a.Last)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	dedup := out[:0]
	for i, p := range out {
		if i > 0 && p.T == dedup[len(dedup)-1].T {
			continue // the same merged series cannot carry two values per t
		}
		dedup = append(dedup, p)
	}
	return dedup
}
