package history

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

// memSink collects writes in memory; failN makes the first N writes fail.
type memSink struct {
	mu    sync.Mutex
	data  map[string][]series.Point
	failN int
}

func newMemSink() *memSink { return &memSink{data: map[string][]series.Point{}} }

func (s *memSink) Write(id string, pts ...series.Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failN > 0 {
		s.failN--
		return errors.New("injected sink failure")
	}
	s.data[id] = append(s.data[id], pts...)
	return nil
}

func (s *memSink) ids() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for id := range s.data {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (s *memSink) points(id string) []series.Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]series.Point(nil), s.data[id]...)
}

func TestSampleOnceNamingContract(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("http_requests_total", "endpoint", "/query").Add(5)
	reg.Gauge("lsm_memtable_points").Set(42)
	reg.Histogram("http_request_seconds", "endpoint", "/query").Observe(0.01)
	sink := newMemSink()
	s := New(Config{Registry: reg, Sink: sink})

	now := time.UnixMilli(1_000_000)
	n, err := s.SampleOnce(now)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("SampleOnce wrote nothing")
	}
	ids := sink.ids()
	has := func(id string) {
		t.Helper()
		for _, got := range ids {
			if got == id {
				return
			}
		}
		t.Errorf("missing series %s in %v", id, ids)
	}
	has("root.sys.http_requests_total.endpoint_query")
	has("root.sys.lsm_memtable_points")
	has("root.sys.http_request_seconds.endpoint_query.count")
	has("root.sys.http_request_seconds.endpoint_query.sum")
	has("root.sys.http_request_seconds.endpoint_query.p50")
	has("root.sys.http_request_seconds.endpoint_query.p95")
	has("root.sys.http_request_seconds.endpoint_query.p99")
	has("root.sys.http_request_seconds.endpoint_query.bucket.le_inf")
	has("root.sys.http_request_seconds.endpoint_query.bucket.le_0_0128")
	has("root.sys.derived.qps")
	has("root.sys.derived.cache_hit_ratio")
	// The sampler's own instruments are sampled too (dogfood the dogfood).
	has("root.sys.selfmetrics_samples_total")

	pts := sink.points("root.sys.http_requests_total.endpoint_query")
	if len(pts) != 1 || pts[0].T != now.UnixMilli() || pts[0].V != 5 {
		t.Errorf("counter point = %+v, want {T:%d V:5}", pts, now.UnixMilli())
	}
	if pts := sink.points("root.sys.http_request_seconds.endpoint_query.count"); len(pts) != 1 || pts[0].V != 1 {
		t.Errorf("histogram count point = %+v", pts)
	}

	// Every id obeys the naming contract prefix.
	for _, id := range ids {
		if len(id) < len(DefaultPrefix) || id[:len(DefaultPrefix)] != DefaultPrefix {
			t.Errorf("series %s escapes the %s namespace", id, DefaultPrefix)
		}
	}
}

func TestSkipBuckets(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("h_seconds").Observe(0.01)
	sink := newMemSink()
	s := New(Config{Registry: reg, Sink: sink, SkipBuckets: true})
	if _, err := s.SampleOnce(time.UnixMilli(1000)); err != nil {
		t.Fatal(err)
	}
	for _, id := range sink.ids() {
		if contains(id, ".bucket.") {
			t.Errorf("SkipBuckets still wrote %s", id)
		}
	}
	if pts := sink.points("root.sys.h_seconds.p95"); len(pts) != 1 {
		t.Errorf("quantile series missing with SkipBuckets: %v", sink.ids())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCardinalityStable is the bounded-feedback invariant: ticks move
// values, never mint series — the set after tick 2 equals the set after
// tick 50 even though the sampler observes its own counters.
func TestCardinalityStable(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("http_requests_total", "endpoint", "/query").Add(1)
	reg.Histogram("http_request_seconds", "endpoint", "/query").Observe(0.01)
	sink := newMemSink()
	s := New(Config{Registry: reg, Sink: sink})

	now := time.UnixMilli(0)
	for i := 0; i < 2; i++ {
		now = now.Add(time.Second)
		if _, err := s.SampleOnce(now); err != nil {
			t.Fatal(err)
		}
	}
	after2 := sink.ids()
	for i := 0; i < 48; i++ {
		now = now.Add(time.Second)
		reg.Counter("http_requests_total", "endpoint", "/query").Inc() // traffic keeps flowing
		if _, err := s.SampleOnce(now); err != nil {
			t.Fatal(err)
		}
	}
	after50 := sink.ids()
	if len(after2) != len(after50) {
		t.Fatalf("series set grew %d -> %d across ticks", len(after2), len(after50))
	}
	for i := range after2 {
		if after2[i] != after50[i] {
			t.Fatalf("series set changed: %s vs %s", after2[i], after50[i])
		}
	}
	// Every series got exactly one point per tick.
	if pts := sink.points("root.sys.selfmetrics_samples_total"); len(pts) != 50 {
		t.Errorf("selfmetrics_samples_total has %d points, want 50", len(pts))
	}
}

func TestDerivedRates(t *testing.T) {
	reg := obs.NewRegistry()
	q := reg.Counter("http_requests_total", "endpoint", "/query")
	hits := reg.Counter("chunk_cache_hits_total")
	misses := reg.Counter("chunk_cache_misses_total")
	sink := newMemSink()
	s := New(Config{Registry: reg, Sink: sink})

	t0 := time.UnixMilli(10_000)
	q.Add(100)
	if _, err := s.SampleOnce(t0); err != nil {
		t.Fatal(err)
	}
	q.Add(30) // 30 queries over the next 2 seconds -> 15 qps
	hits.Add(9)
	misses.Add(1)
	if _, err := s.SampleOnce(t0.Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}

	qps := sink.points("root.sys.derived.qps")
	if len(qps) != 2 {
		t.Fatalf("qps points: %v", qps)
	}
	if qps[0].V != 0 { // first tick has no previous reading
		t.Errorf("first qps = %g, want 0", qps[0].V)
	}
	if qps[1].V != 15 {
		t.Errorf("qps = %g, want 15", qps[1].V)
	}
	ratio := sink.points("root.sys.derived.cache_hit_ratio")
	if ratio[1].V != 0.9 {
		t.Errorf("cache hit ratio = %g, want 0.9", ratio[1].V)
	}
}

func TestWriteErrorsCounted(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a_total").Add(1)
	sink := newMemSink()
	sink.failN = 2
	s := New(Config{Registry: reg, Sink: sink})
	n, err := s.SampleOnce(time.UnixMilli(1000))
	if err == nil {
		t.Fatal("SampleOnce swallowed the sink error")
	}
	if n == 0 {
		t.Error("sampling stopped at the first error instead of continuing")
	}
	if got := reg.Counter("selfmetrics_write_errors_total").Value(); got != 2 {
		t.Errorf("write_errors counter = %d, want 2", got)
	}
	// Later healthy ticks succeed.
	if _, err := s.SampleOnce(time.UnixMilli(2000)); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerStartStopNoLeak(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a_total").Add(1)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		s := New(Config{Registry: reg, Sink: newMemSink(), Interval: time.Millisecond})
		s.Start()
		s.Start() // idempotent
		s.Stop()
		s.Stop() // idempotent
	}
	// Stop on a never-started sampler must not hang.
	s := New(Config{Registry: reg, Sink: newMemSink()})
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop on never-started sampler hung")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
	}
}

// TestSamplerHammer races a running sampler against writers mutating the
// registry; -race is the assertion.
func TestSamplerHammer(t *testing.T) {
	reg := obs.NewRegistry()
	sink := newMemSink()
	s := New(Config{Registry: reg, Sink: sink, Interval: time.Millisecond})
	s.Start()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eps := []string{"/query", "/render"}
			for i := 0; i < 300; i++ {
				reg.Counter("http_requests_total", "endpoint", eps[i%2]).Inc()
				reg.Histogram("http_request_seconds", "endpoint", eps[i%2]).Observe(0.001)
			}
		}(w)
	}
	wg.Wait()
	s.Stop()
	if got := reg.Counter("selfmetrics_write_errors_total").Value(); got != 0 {
		t.Errorf("write errors under hammer: %d", got)
	}
}

func TestSanitize(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"/query", "query"},
		{"/debug/slowlog", "debug_slowlog"},
		{"0.0128", "0_0128"},
		{"GET", "GET"},
		{"a--b__c", "a_b_c"},
		{"___", "x"},
		{"", "x"},
		{"trailing/", "trailing"},
	} {
		if got := sanitize(tc.in); got != tc.want {
			t.Errorf("sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestQuantileSuffix(t *testing.T) {
	for _, tc := range []struct {
		q    float64
		want string
	}{
		{0.50, ".p50"},
		{0.95, ".p95"},
		{0.99, ".p99"},
		{0.999, ".p99_9"},
	} {
		if got := quantileSuffix(tc.q); got != tc.want {
			t.Errorf("quantileSuffix(%g) = %q, want %q", tc.q, got, tc.want)
		}
	}
}

func TestSeriesName(t *testing.T) {
	if got := SeriesName("", "http_requests_total", []string{"endpoint", "/query"}); got != "root.sys.http_requests_total.endpoint_query" {
		t.Errorf("SeriesName = %q", got)
	}
	if got := SeriesName("x.", "m", nil); got != "x.m" {
		t.Errorf("SeriesName with prefix = %q", got)
	}
}
