// Command m4cli is an interactive shell over a database directory: it
// accepts m4ql queries (Appendix A.1 syntax), EXPLAIN variants, and a few
// meta commands. Subcommands run one operation and exit:
//
//	m4cli -dir ./db
//	m4cli -dir ./db backup /backups/db-2026-08-08
//	m4cli -dir ./db scrub
//	m4cli -dir ./db load [-sync] [-batch n] <series> <file.csv>
//	m4cli restore /backups/db-2026-08-08 ./db-restored
//	m4cli verify /backups/db-2026-08-08
//	m4> SELECT M4(*) FROM KOB WHERE time >= 0 AND time < 2000000000000 GROUP BY SPANS(10)
//	m4> EXPLAIN SELECT M4(*) FROM KOB WHERE ... GROUP BY SPANS(1000) USING LSM
//	m4> .series
//	m4> .quit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"m4lsm/internal/buildinfo"
	"m4lsm/internal/csvio"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4ql"
)

func main() {
	dir := flag.String("dir", "m4db", "database directory")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("m4cli " + buildinfo.String())
		return
	}
	if flag.NArg() > 0 {
		if err := runSubcommand(*dir, flag.Args()); err != nil {
			log.Fatalf("m4cli: %v", err)
		}
		return
	}
	engine, err := lsm.Open(lsm.Options{Dir: *dir})
	if err != nil {
		log.Fatalf("m4cli: %v", err)
	}
	defer engine.Close()
	fmt.Printf("m4cli: %s (%d series). Type .help for commands.\n",
		*dir, len(engine.SeriesIDs()))
	repl(engine, os.Stdin, os.Stdout)
}

// runSubcommand dispatches the one-shot operations. restore and verify work
// on a backup directory alone and never open the database.
func runSubcommand(dir string, args []string) error {
	switch args[0] {
	case "backup":
		if len(args) != 2 {
			return fmt.Errorf("usage: m4cli -dir <db> backup <destdir>")
		}
		engine, err := lsm.Open(lsm.Options{Dir: dir})
		if err != nil {
			return err
		}
		defer engine.Close()
		man, err := engine.Backup(args[1])
		if err != nil {
			return err
		}
		var total int64
		for _, f := range man.Files {
			total += f.Size
		}
		fmt.Printf("backup: %d files, %d bytes -> %s\n", len(man.Files), total, args[1])
		return nil
	case "restore":
		if len(args) != 3 {
			return fmt.Errorf("usage: m4cli restore <backupdir> <destdir>")
		}
		if err := lsm.Restore(args[1], args[2]); err != nil {
			return err
		}
		fmt.Printf("restore: %s -> %s\n", args[1], args[2])
		return nil
	case "verify":
		if len(args) != 2 {
			return fmt.Errorf("usage: m4cli verify <backupdir>")
		}
		man, err := lsm.VerifyBackup(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("verify: ok, %d files\n", len(man.Files))
		return nil
	case "load":
		return runLoad(dir, args[1:])
	case "scrub":
		if len(args) != 1 {
			return fmt.Errorf("usage: m4cli -dir <db> scrub")
		}
		engine, err := lsm.Open(lsm.Options{Dir: dir})
		if err != nil {
			return err
		}
		defer engine.Close()
		rep, err := engine.Scrub(lsm.ScrubOptions{Heal: true})
		if err != nil {
			return err
		}
		fmt.Printf("scrub: chunks checked=%d quarantined=%d, wal segments checked=%d quarantined=%d, pyramidOK=%v healed=%v\n",
			rep.ChunksChecked, rep.ChunksQuarantined,
			rep.WALSegmentsChecked, rep.WALSegmentsQuarantined, rep.PyramidOK, rep.Healed)
		for _, e := range rep.Errors {
			fmt.Printf("scrub error: %s\n", e)
		}
		return nil
	}
	return fmt.Errorf("unknown subcommand %q (backup, restore, verify, scrub, load)", args[0])
}

// runLoad bulk-ingests a CSV file (time,value rows; header tolerated) into
// one series through the engine's batched WriteBatch path, chunking the
// file so the bounded ingest queues see a steady stream of group-committed
// batches instead of one giant record.
func runLoad(dir string, args []string) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	sync := fs.Bool("sync", false, "fsync the WAL before acknowledging each batch")
	batch := fs.Int("batch", 4096, "points per WriteBatch entry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: m4cli -dir <db> load [-sync] [-batch n] <series> <file.csv>")
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be positive")
	}
	seriesID, path := fs.Arg(0), fs.Arg(1)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := csvio.Read(f, true)
	if err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	if len(data) == 0 {
		return fmt.Errorf("%s: no points", path)
	}
	engine, err := lsm.Open(lsm.Options{Dir: dir, SyncWAL: *sync})
	if err != nil {
		return err
	}
	defer engine.Close()
	start := time.Now()
	loaded := 0
	for loaded < len(data) {
		n := *batch
		if rest := len(data) - loaded; rest < n {
			n = rest
		}
		err := engine.WriteBatch(lsm.BatchEntry{SeriesID: seriesID, Points: data[loaded : loaded+n]})
		if errors.Is(err, lsm.ErrIngestBackpressure) {
			continue // bounded queues are draining; same batch, next try
		}
		if err != nil {
			return fmt.Errorf("load after %d points: %w", loaded, err)
		}
		loaded += n
		fmt.Printf("\rload: %d/%d points", loaded, len(data))
	}
	elapsed := time.Since(start)
	fmt.Printf("\rload: %d points -> %s in %s (%.0f points/s)\n",
		loaded, seriesID, elapsed.Round(time.Millisecond),
		float64(loaded)/elapsed.Seconds())
	return nil
}

func repl(engine *lsm.Engine, in io.Reader, out io.Writer) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "m4> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Fprintln(out, `commands:
  SELECT M4(*) FROM <series> WHERE time >= a AND time < b GROUP BY SPANS(w) [USING LSM|UDF]
  EXPLAIN SELECT ...   show the physical plan and measured cost
  .series              list stored series
  .info                storage statistics
  .help                this message
  .quit                exit`)
		case line == ".series":
			for _, id := range engine.SeriesIDs() {
				fmt.Fprintln(out, id)
			}
		case line == ".info":
			info := engine.Info()
			fmt.Fprintf(out, "files=%d chunks=%d memtablePoints=%d deletes=%d nextVersion=%d\n",
				info.Files, info.Chunks, info.MemtablePoints, info.Deletes, info.NextVersion)
		case strings.HasPrefix(line, "."):
			fmt.Fprintf(out, "unknown command %s (try .help)\n", line)
		default:
			res, explain, err := m4ql.RunAny(engine, line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if explain != "" {
				fmt.Fprint(out, explain)
				continue
			}
			fmt.Fprint(out, res.Text())
		}
	}
}
