package server

import (
	"bytes"
	"encoding/json"
	"image"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	// A registry on the engine makes /metrics cover the storage layer too,
	// matching how cmd/m4server wires things.
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		e.Write("root.s1", series.Point{T: int64(i * 10), V: float64((i * 7) % 50)})
	}
	e.Flush()
	h := New(e)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
		e.Close()
	})
	return srv
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	srv := newServer(t)
	var body map[string]interface{}
	if code := getJSON(t, srv.URL+"/healthz", &body); code != 200 {
		t.Fatalf("status %d", code)
	}
	if body["status"] != "ok" || body["chunks"].(float64) < 1 {
		t.Errorf("body = %v", body)
	}
}

func TestSeries(t *testing.T) {
	srv := newServer(t)
	var ids []string
	if code := getJSON(t, srv.URL+"/series", &ids); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(ids) != 1 || ids[0] != "root.s1" {
		t.Errorf("ids = %v", ids)
	}
}

func TestQueryGet(t *testing.T) {
	srv := newServer(t)
	q := "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 5000 GROUP BY SPANS(5) USING LSM"
	var res struct {
		Columns []string    `json:"columns"`
		Rows    [][]float64 `json:"rows"`
	}
	code := getJSON(t, srv.URL+"/query?q="+strings.ReplaceAll(q, " ", "+"), &res)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(res.Rows) != 5 || len(res.Columns) != 9 {
		t.Errorf("res = %+v", res)
	}
}

func TestQueryPost(t *testing.T) {
	srv := newServer(t)
	body, _ := json.Marshal(map[string]string{
		"query": "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 5000 GROUP BY SPANS(2) USING UDF",
	})
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res struct {
		Operator string `json:"operator"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Operator != "UDF" {
		t.Errorf("operator = %s", res.Operator)
	}
}

func TestQueryErrors(t *testing.T) {
	srv := newServer(t)
	if code := getJSON(t, srv.URL+"/query?q=SELECT+garbage", nil); code != 400 {
		t.Errorf("bad query status %d", code)
	}
	if code := getJSON(t, srv.URL+"/query", nil); code != 400 {
		t.Errorf("missing query status %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/query", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status %d", resp.StatusCode)
	}
}

func TestRender(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/render?series=root.s1&tqs=0&tqe=5000&w=100&h=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 100 || img.Bounds().Dy() != 50 {
		t.Errorf("bounds = %v", img.Bounds())
	}
}

func TestRenderErrors(t *testing.T) {
	srv := newServer(t)
	for _, u := range []string{
		"/render",
		"/render?series=root.s1",
		"/render?series=root.s1&tqs=0&tqe=0&w=10",
		"/render?series=root.s1&tqs=0&tqe=100&w=10&h=-5",
	} {
		if code := getJSON(t, srv.URL+u, nil); code != 400 {
			t.Errorf("%s: status %d, want 400", u, code)
		}
	}
}

func TestUIPage(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	got := body.String()
	for _, want := range []string{"m4lsm", "root.s1", "/render?series=root.s1"} {
		if !strings.Contains(got, want) {
			t.Errorf("ui missing %q", want)
		}
	}
	// Unknown paths under / must 404, not render the UI.
	resp2, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("unknown path status %d", resp2.StatusCode)
	}
}

func TestRenderMultiSeries(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), Metrics: obs.NewRegistry(), NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e.Write("root.a", series.Point{T: int64(i * 10), V: float64(i % 17)})
		e.Write("root.b", series.Point{T: int64(i * 10), V: float64(100 + i%13)})
	}
	e.Flush()
	h := New(e)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
		e.Close()
	})
	decode := func(url string) image.Image {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		img, err := png.Decode(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	wild := decode(srv.URL + "/render?series=root.*&tqs=0&tqe=2000&w=80&h=40")
	list := decode(srv.URL + "/render?series=root.a,root.b&tqs=0&tqe=2000&w=80&h=40")
	if wild.Bounds() != list.Bounds() {
		t.Fatalf("bounds differ: %v vs %v", wild.Bounds(), list.Bounds())
	}
	// Wildcard expansion and the explicit list draw the same overlay.
	for y := 0; y < 40; y++ {
		for x := 0; x < 80; x++ {
			if wild.At(x, y) != list.At(x, y) {
				t.Fatalf("pixel (%d,%d) differs between wildcard and list render", x, y)
			}
		}
	}
	// The overlay must differ from a single-series render (shared viewport
	// spans both bands).
	single := decode(srv.URL + "/render?series=root.a&tqs=0&tqe=2000&w=80&h=40")
	same := true
	for y := 0; y < 40 && same; y++ {
		for x := 0; x < 80; x++ {
			if wild.At(x, y) != single.At(x, y) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("overlay render identical to single-series render")
	}
	// Nothing matched: 404.
	if code := getJSON(t, srv.URL+"/render?series=zzz.*&tqs=0&tqe=2000&w=80", nil); code != 404 {
		t.Errorf("empty wildcard status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/render?series=root.a,nope&tqs=0&tqe=2000&w=80", nil); code != 404 {
		t.Errorf("missing series in list status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/render?series=root.a,root.*&tqs=0&tqe=2000&w=80", nil); code != 400 {
		t.Errorf("wildcard+list status %d, want 400", code)
	}
	// Wildcard m4ql through /query.
	var res struct {
		Series []struct {
			SeriesID string      `json:"seriesId"`
			Rows     [][]float64 `json:"rows"`
		} `json:"series"`
	}
	q := "SELECT M4(*) FROM root.* WHERE time >= 0 AND time < 2000 GROUP BY SPANS(4)"
	if code := getJSON(t, srv.URL+"/query?q="+strings.ReplaceAll(q, " ", "+"), &res); code != 200 {
		t.Fatalf("wildcard query status %d", code)
	}
	if len(res.Series) != 2 || res.Series[0].SeriesID != "root.a" || len(res.Series[0].Rows) != 4 {
		t.Fatalf("wildcard query result = %+v", res)
	}
}
