package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"m4lsm/internal/faultfs"
	"m4lsm/internal/govern"
	"m4lsm/internal/series"
	"m4lsm/internal/tsfile"
)

// --- segmented WAL ------------------------------------------------------

// TestWALSegmentRotation: a tiny segment size forces rotation; all data
// must survive a kill and reopen across many segments.
func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, WALSegmentBytes: 64, FlushThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var want series.Series
	for i := int64(0); i < 50; i++ {
		p := series.Point{T: i, V: float64(i)}
		want = append(want, p)
		if err := e.Write("s", p); err != nil {
			t.Fatal(err)
		}
	}
	if segs := e.Info().WALSegments; segs < 3 {
		t.Fatalf("WALSegments = %d, want several under 64-byte rotation", segs)
	}
	e.Kill()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	full := series.TimeRange{Start: 0, End: 100}
	snap, err := e2.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	if got := materialize(t, snap, full); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %d points, want %d", len(got), len(want))
	}
}

// TestColdShardWALRetirement is the regression the segmented WAL exists
// for: one cold shard with a single unflushed point must not pin the whole
// log. The hot shard fills and seals segments; once it flushes, those
// segments retire even though the cold shard has never flushed — and the
// cold point still survives a kill.
func TestColdShardWALRetirement(t *testing.T) {
	// Pick series routed to different shards of a 2-shard engine.
	hot, cold := "", ""
	for i := 0; hot == "" || cold == ""; i++ {
		id := fmt.Sprintf("s%d", i)
		if shardIndex(id, 2) == 0 {
			if hot == "" {
				hot = id
			}
		} else if cold == "" {
			cold = id
		}
	}

	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NumShards: 2, WALSegmentBytes: 64, FlushThreshold: 45})
	if err != nil {
		t.Fatal(err)
	}
	// The hot shard fills and seals many segments first; the cold point then
	// lands in the CURRENT active segment, so its pendingMin only pins that
	// one — everything sealed before it can retire once the hot shard
	// flushes.
	for i := int64(0); i < 44; i++ {
		if err := e.Write(hot, series.Point{T: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Write(cold, series.Point{T: 1, V: 42}); err != nil {
		t.Fatal(err)
	}
	before := e.Info()
	if before.WALSegments < 3 {
		t.Fatalf("WALSegments = %d before flush, want several", before.WALSegments)
	}
	if before.WALRetiredSegments != 0 {
		t.Fatalf("retired %d segments before any flush", before.WALRetiredSegments)
	}

	// The 45th hot point trips the auto-flush of the hot shard only; its
	// checkpoint clears the hot pendingMin and retirement drops every sealed
	// segment below the cold point's — while the cold shard never flushed.
	if err := e.Write(hot, series.Point{T: 44, V: 44}); err != nil {
		t.Fatal(err)
	}
	after := e.Info()
	if after.WALRetiredSegments == 0 {
		t.Fatal("no segments retired after hot-shard flush with a cold shard present")
	}
	if after.WALRetiredBytes == 0 {
		t.Fatal("retired segments reported zero bytes")
	}
	if after.WALBytes >= before.WALBytes {
		t.Fatalf("wal bytes %d did not drop from %d", after.WALBytes, before.WALBytes)
	}
	e.Kill()

	e2, err := Open(Options{Dir: dir, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	full := series.TimeRange{Start: 0, End: 100}
	snap, err := e2.Snapshot(cold, full)
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, snap, full)
	if len(got) != 1 || got[0] != (series.Point{T: 1, V: 42}) {
		t.Fatalf("cold point recovered as %v", got)
	}
}

// TestLegacyWALMigration: a directory with the old monolithic "wal" file
// must open cleanly, fold the records into segment 1, and remove the
// legacy file.
func TestLegacyWALMigration(t *testing.T) {
	dir := t.TempDir()
	log, _, err := tsfile.OpenRecordLog(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(encodeInsert("s", pts(10, 1, 20, 2)), true); err != nil {
		t.Fatal(err)
	}
	// A torn legacy tail must be dropped, exactly as OpenRecordLog would.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x22, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := os.Stat(filepath.Join(dir, "wal")); !errors.Is(err, os.ErrNotExist) {
		t.Error("legacy wal file not removed after migration")
	}
	if _, err := os.Stat(walSegPath(dir, 1)); err != nil {
		t.Errorf("segment 1 missing after migration: %v", err)
	}
	full := series.TimeRange{Start: 0, End: 100}
	snap, err := e.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	if got := materialize(t, snap, full); !reflect.DeepEqual(got, series.Series(pts(10, 1, 20, 2))) {
		t.Fatalf("migrated data = %v", got)
	}
}

// TestCorruptSealedSegmentQuarantined: flipping a byte inside a sealed
// segment must quarantine that segment on reopen (set aside as *.bad, a
// warning raised) while every other segment still replays.
func TestCorruptSealedSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, WALSegmentBytes: 64, FlushThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		if err := e.Write("s", series.Point{T: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Info().WALSegments < 3 {
		t.Fatal("need several segments")
	}
	e.Kill()

	// Corrupt a record byte in sealed segment 2 (header stays valid).
	raw, err := os.ReadFile(walSegPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	raw[tsfile.SegmentHeaderLen+2] ^= 0xff
	if err := os.WriteFile(walSegPath(dir, 2), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with corrupt sealed segment: %v", err)
	}
	defer e2.Close()
	info := e2.Info()
	if info.WALQuarantinedSegments != 1 {
		t.Fatalf("WALQuarantinedSegments = %d, want 1", info.WALQuarantinedSegments)
	}
	if len(info.WALWarnings) == 0 || !strings.Contains(info.WALWarnings[0], "corrupt") {
		t.Fatalf("WALWarnings = %q", info.WALWarnings)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "wal-*.log.bad*")); len(m) != 1 {
		t.Fatalf("quarantined segment files: %v", m)
	}
	// Segments 1 and 3+ still replayed: the engine has data on both sides
	// of the hole.
	full := series.TimeRange{Start: 0, End: 100}
	snap, err := e2.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, snap, full)
	if len(got) == 0 || len(got) >= 30 {
		t.Fatalf("recovered %d points, want a proper subset (hole from the bad segment)", len(got))
	}
}

// --- backup / restore ---------------------------------------------------

// TestBackupRestoreRoundTrip: back up a live database, keep mutating it,
// then restore elsewhere — the restored engine shows exactly the state at
// the backup instant, later writes excluded.
func TestBackupRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, FlushThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Write("s", pts(10, 1, 20, 2, 30, 3, 40, 4, 50, 5, 60, 6, 70, 7, 80, 8, 90, 9)...); err != nil {
		t.Fatal(err) // 9 points: one auto-flush plus one memtable point
	}
	if err := e.Delete("s", 25, 35); err != nil {
		t.Fatal(err)
	}
	wantRange := series.TimeRange{Start: 0, End: 1000}
	snapAt, err := e.Snapshot("s", wantRange)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, snapAt, wantRange)

	bdir := filepath.Join(t.TempDir(), "bk")
	man, err := e.Backup(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Files) == 0 || man.NumShards != 1 {
		t.Fatalf("manifest = %+v", man)
	}
	// Mutations after the backup must not leak into it.
	if err := e.Write("s", pts(200, 20)...); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBackup(bdir); err != nil {
		t.Fatalf("verify: %v", err)
	}

	rdir := filepath.Join(t.TempDir(), "restored")
	r, err := OpenBackup(bdir, Options{Dir: rdir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	snap, err := r.Snapshot("s", wantRange)
	if err != nil {
		t.Fatal(err)
	}
	if got := materialize(t, snap, wantRange); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored %v,\nwant %v", got, want)
	}
}

// TestBackupUnderConcurrentWriters: backups taken while writers hammer the
// engine must verify and restore to a consistent instant — for each
// series, a strict prefix of the monotone writes, never a torn record or
// an interleaving that skips a point.
func TestBackupUnderConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NumShards: 4, FlushThreshold: 32, WALSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const writers = 4
	const perWriter = 300
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			id := fmt.Sprintf("w%d", w)
			for i := int64(0); i < perWriter; i++ {
				if err := e.Write(id, series.Point{T: i, V: float64(i)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	close(start)
	bdir := filepath.Join(t.TempDir(), "bk")
	if _, err := e.Backup(bdir); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := VerifyBackup(bdir); err != nil {
		t.Fatalf("verify under concurrent writers: %v", err)
	}

	rdir := filepath.Join(t.TempDir(), "restored")
	r, err := OpenBackup(bdir, Options{Dir: rdir, NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	full := series.TimeRange{Start: 0, End: perWriter + 1}
	for w := 0; w < writers; w++ {
		id := fmt.Sprintf("w%d", w)
		snap, err := r.Snapshot(id, full)
		if err != nil {
			t.Fatal(err)
		}
		got := materialize(t, snap, full)
		// Each writer appends t = 0,1,2,...: the pinned snapshot must hold
		// exactly a prefix.
		for i, p := range got {
			if p.T != int64(i) || p.V != float64(i) {
				t.Fatalf("series %s: point %d is %v — not a clean prefix", id, i, p)
			}
		}
		if len(got) > perWriter {
			t.Fatalf("series %s: %d points, more than ever written", id, len(got))
		}
	}
}

// TestBackupDetectsTamper: any byte flipped in a backed-up file, or a
// missing manifest, must fail verification and block restore.
func TestBackupDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write("s", pts(1, 1, 2, 2)...); err != nil {
		t.Fatal(err)
	}
	bdir := filepath.Join(t.TempDir(), "bk")
	man, err := e.Backup(bdir)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Flip one byte in the first non-empty listed file (the mods sidecar
	// exists but is empty here).
	victim := ""
	for _, f := range man.Files {
		if f.Size > 0 {
			victim = filepath.Join(bdir, f.Name)
			break
		}
	}
	if victim == "" {
		t.Fatalf("no non-empty file in manifest %+v", man)
	}
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBackup(bdir); !errors.Is(err, tsfile.ErrCorrupt) {
		t.Fatalf("tampered backup verified: %v", err)
	}
	if err := Restore(bdir, filepath.Join(t.TempDir(), "r")); err == nil {
		t.Fatal("tampered backup restored")
	}
	// Undo the flip; now tamper with the manifest itself.
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBackup(bdir); err != nil {
		t.Fatalf("untampered backup rejected: %v", err)
	}
	mpath := filepath.Join(bdir, backupManifestName)
	mraw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	mraw[len(mraw)-1] ^= 0x01
	if err := os.WriteFile(mpath, mraw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBackup(bdir); !errors.Is(err, tsfile.ErrCorrupt) {
		t.Fatalf("tampered manifest verified: %v", err)
	}
}

// TestBackupManifestRoundTrip pins the manifest codec.
func TestBackupManifestRoundTrip(t *testing.T) {
	in := BackupManifest{
		CreatedUnix: 1700000000,
		NextVersion: 42,
		NumShards:   3,
		Files: []BackupFile{
			{Name: "000000.seq.tsf", Size: 123, CRC: 0xdeadbeef},
			{Name: "wal-0000000000000001.log", Size: 21, CRC: 1},
		},
	}
	enc, err := EncodeBackupManifest(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBackupManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	// Entries that could escape the directory are rejected.
	for _, bad := range []string{"../evil", "a/b", ".hidden", ""} {
		in := in
		in.Files = []BackupFile{{Name: bad, Size: 1, CRC: 1}}
		enc, err := EncodeBackupManifest(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeBackupManifest(enc); !errors.Is(err, tsfile.ErrCorrupt) {
			t.Errorf("name %q accepted", bad)
		}
	}
}

// --- scrubber -----------------------------------------------------------

// TestScrubQuarantinesCorruptChunk: the scrubber must find a corrupt chunk
// BEFORE any query touches it, quarantine it through the same path as
// query-time detection, and (with Heal) compact it away.
func TestScrubQuarantinesCorruptChunk(t *testing.T) {
	dir := t.TempDir()
	buildFaultStore(t, dir)

	files, _ := filepath.Glob(filepath.Join(dir, "*.tsf"))
	if len(files) == 0 {
		t.Fatal("no chunk files")
	}
	r, err := tsfile.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	meta := r.Metas()[0]
	r.Close()
	raw, _ := os.ReadFile(files[0])
	raw[meta.Offset+meta.HeaderLen+meta.TimesLen] ^= 0x40
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rep, err := e.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksQuarantined != 1 {
		t.Fatalf("ChunksQuarantined = %d, want 1 (report %+v)", rep.ChunksQuarantined, rep)
	}
	if rep.Partial || rep.ChunksChecked == 0 {
		t.Fatalf("report %+v", rep)
	}
	if n := e.Info().QuarantinedChunks; n != 1 {
		t.Fatalf("QuarantinedChunks = %d, want 1", n)
	}
	// The very first snapshot already excludes it — the query never sees
	// the corrupt bytes.
	full := series.TimeRange{Start: 0, End: 1 << 20}
	snap, err := e.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Warnings.Len() == 0 {
		t.Fatal("snapshot after scrub carries no exclusion warning")
	}

	// Heal: compaction folds the survivors and clears the quarantine.
	rep2, err := e.Scrub(ScrubOptions{Heal: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ChunksQuarantined != 0 {
		// The chunk was already quarantined; a second pass skips it.
		t.Fatalf("second pass re-quarantined: %+v", rep2)
	}
	if n := e.Info().QuarantinedChunks; n != 1 {
		t.Fatalf("heal without new quarantines ran anyway: %d", n)
	}
	// Force the heal through a pass that quarantines: restore a fresh
	// corrupt store and scrub with Heal in one go.
	dir2 := t.TempDir()
	buildFaultStore(t, dir2)
	files2, _ := filepath.Glob(filepath.Join(dir2, "*.tsf"))
	r2, err := tsfile.Open(files2[0])
	if err != nil {
		t.Fatal(err)
	}
	meta2 := r2.Metas()[0]
	r2.Close()
	raw2, _ := os.ReadFile(files2[0])
	raw2[meta2.Offset+meta2.HeaderLen+meta2.TimesLen] ^= 0x40
	if err := os.WriteFile(files2[0], raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Options{Dir: dir2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rep3, err := e2.Scrub(ScrubOptions{Heal: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.ChunksQuarantined != 1 || !rep3.Healed {
		t.Fatalf("heal pass: %+v", rep3)
	}
	if n := e2.Info().QuarantinedChunks; n != 0 {
		t.Fatalf("QuarantinedChunks = %d after heal, want 0", n)
	}
}

// TestScrubBudgetResumes: a budget-capped pass stops early and the next
// pass picks up at the cursor, eventually covering everything.
func TestScrubBudgetResumes(t *testing.T) {
	dir := t.TempDir()
	buildFaultStore(t, dir) // 60 points in 10-point chunks: 6 chunks
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	total := e.Info().Chunks
	checked := 0
	passes := 0
	for {
		rep, err := e.Scrub(ScrubOptions{Limits: govern.Limits{MaxChunks: 2}})
		if err != nil {
			t.Fatal(err)
		}
		checked += rep.ChunksChecked
		passes++
		if !rep.Partial {
			break
		}
		if passes > total {
			t.Fatalf("scrub never completed after %d passes", passes)
		}
	}
	if checked != total {
		t.Fatalf("checked %d chunks across passes, want %d", checked, total)
	}
	if passes < 2 {
		t.Fatalf("budget of 2 chunks finished %d-chunk store in one pass", total)
	}
}

// TestScrubCorruptSealedWALSegment: bit rot in a sealed, still-live WAL
// segment must be found by the scrubber, re-secured by a flush, and the
// segment set aside — with the engine still serving every point.
func TestScrubCorruptSealedWALSegment(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, WALSegmentBytes: 64, FlushThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var want series.Series
	for i := int64(0); i < 30; i++ {
		p := series.Point{T: i, V: float64(i)}
		want = append(want, p)
		if err := e.Write("s", p); err != nil {
			t.Fatal(err)
		}
	}
	if e.Info().WALSegments < 3 {
		t.Fatal("need several live segments")
	}
	// Rot a record inside sealed segment 1 while the engine runs.
	raw, err := os.ReadFile(walSegPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	raw[tsfile.SegmentHeaderLen+2] ^= 0xff
	if err := os.WriteFile(walSegPath(dir, 1), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := e.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WALSegmentsChecked == 0 {
		t.Fatalf("no WAL segments checked: %+v", rep)
	}
	// The scrub flushes before touching the bad segment; with every shard
	// checkpointed, retirement usually unlinks it first and the quarantine
	// rename finds it already gone. Either way the rotten file must not
	// remain live under its original name.
	if _, err := os.Stat(walSegPath(dir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt segment still live: stat err = %v", err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("scrub errors: %v", rep.Errors)
	}
	// The pre-quarantine flush re-secured everything: all 30 points
	// survive a kill and reopen even though a WAL segment is gone.
	e.Kill()
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	full := series.TimeRange{Start: 0, End: 100}
	snap, err := e2.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	if got := materialize(t, snap, full); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %d points, want %d", len(got), len(want))
	}
}

// TestScrubHealsPyramidManifest: a rotted on-disk pyramid manifest is
// detected and rewritten from the in-memory state.
func TestScrubHealsPyramidManifest(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Write("s", pts(1, 1, 2, 2, 3, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, pyramidFileName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(mpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := e.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PyramidOK {
		t.Fatalf("corrupt manifest not detected: %+v", rep)
	}
	// Healed in place: the rewritten manifest decodes.
	healed, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodePyramid(healed); err != nil {
		t.Fatalf("manifest not healed: %v", err)
	}
	rep2, err := e.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.PyramidOK {
		t.Fatalf("second pass still unhappy: %+v", rep2)
	}
}

// TestScrubQuarantineCrash: a crash at the scrub.quarantine step must
// leave the store recoverable with the corruption still detectable later.
func TestScrubQuarantineCrash(t *testing.T) {
	dir := t.TempDir()
	buildFaultStore(t, dir)
	files, _ := filepath.Glob(filepath.Join(dir, "*.tsf"))
	r, err := tsfile.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	meta := r.Metas()[0]
	r.Close()
	raw, _ := os.ReadFile(files[0])
	raw[meta.Offset+meta.HeaderLen+meta.TimesLen] ^= 0x40
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Arm a crash on exactly the scrub.quarantine step.
	crashed := false
	hook := func(site string) error {
		if site == "scrub.quarantine" {
			crashed = true
			return faultfs.ErrCrash
		}
		return nil
	}
	e, err := Open(Options{Dir: dir, StepHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !crashed {
		t.Fatal("scrub.quarantine step never fired")
	}
	if !rep.Partial || rep.ChunksQuarantined != 0 {
		t.Fatalf("crashed pass: %+v", rep)
	}
	e.Kill()

	// Reopen without the hook: the scrub finds and quarantines it cleanly.
	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rep2, err := e2.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ChunksQuarantined != 1 {
		t.Fatalf("post-crash scrub: %+v", rep2)
	}
}
