package govern

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the sentinel for admission-control rejections. The
// server maps it to 429 with a Retry-After header.
var ErrOverloaded = errors.New("server overloaded")

// OverloadError carries the shed decision. It unwraps to ErrOverloaded.
type OverloadError struct {
	// Queued reports whether the request waited in the queue before being
	// shed (wait timeout) or was rejected at the door (queue full).
	Queued bool
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.Queued {
		return fmt.Sprintf("server overloaded: queue wait timed out (retry after %s)", e.RetryAfter)
	}
	return fmt.Sprintf("server overloaded: admission queue full (retry after %s)", e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Gate is a bounded admission controller: Slots requests run, up to Depth
// more wait in FIFO order for at most Wait, and everything beyond that is
// shed immediately. A nil Gate admits everything.
type Gate struct {
	slots chan struct{} // capacity = concurrent executions
	queue chan struct{} // capacity = slots + queue depth: total admitted
	wait  time.Duration

	shed    atomic.Int64
	waiting atomic.Int64
}

// NewGate builds a gate with `slots` concurrent executions and `depth`
// queued waiters; a waiter is shed after `wait` without a slot
// (wait <= 0 means waiters are shed immediately when no slot is free).
// slots <= 0 returns nil: admission control off.
func NewGate(slots, depth int, wait time.Duration) *Gate {
	if slots <= 0 {
		return nil
	}
	if depth < 0 {
		depth = 0
	}
	return &Gate{
		slots: make(chan struct{}, slots),
		queue: make(chan struct{}, slots+depth),
		wait:  wait,
	}
}

// Acquire admits the caller or sheds it. On success the returned release
// function must be called exactly once when the request finishes. On shed
// it returns a *OverloadError (release is nil).
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	// The ticket bounds total admitted work (running + queued); without
	// one the caller is shed at the door.
	select {
	case g.queue <- struct{}{}:
	default:
		g.shed.Add(1)
		return nil, &OverloadError{RetryAfter: g.retryAfter()}
	}
	// Fast path: a slot is free right now.
	select {
	case g.slots <- struct{}{}:
		return g.releaseFunc(), nil
	default:
	}
	g.waiting.Add(1)
	defer g.waiting.Add(-1)
	var timeout <-chan time.Time
	if g.wait > 0 {
		t := time.NewTimer(g.wait)
		defer t.Stop()
		timeout = t.C
	} else {
		ch := make(chan time.Time)
		close(ch)
		timeout = ch
	}
	select {
	case g.slots <- struct{}{}:
		return g.releaseFunc(), nil
	case <-timeout:
		<-g.queue
		g.shed.Add(1)
		return nil, &OverloadError{Queued: true, RetryAfter: g.retryAfter()}
	case <-ctx.Done():
		<-g.queue
		return nil, ctx.Err()
	}
}

func (g *Gate) releaseFunc() func() {
	var once atomic.Bool
	return func() {
		if once.Swap(true) {
			return
		}
		<-g.slots
		<-g.queue
	}
}

// retryAfter suggests how long a shed client should back off: the queue
// wait (the horizon after which admission chances reset), floored at one
// second so Retry-After headers stay meaningful.
func (g *Gate) retryAfter() time.Duration {
	if g.wait >= time.Second {
		return g.wait
	}
	return time.Second
}

// Shed returns how many requests this gate has rejected (0 on nil).
func (g *Gate) Shed() int64 {
	if g == nil {
		return 0
	}
	return g.shed.Load()
}

// InFlight returns how many admitted requests currently hold a slot
// (0 on nil).
func (g *Gate) InFlight() int64 {
	if g == nil {
		return 0
	}
	return int64(len(g.slots))
}

// Waiting returns how many admitted requests are queued for a slot
// (0 on nil).
func (g *Gate) Waiting() int64 {
	if g == nil {
		return 0
	}
	return g.waiting.Load()
}
