package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var b *Budget
	if err := b.ChargeChunk(1000); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}
	if err := b.CheckDeadline(); err != nil {
		t.Fatalf("nil budget deadline: %v", err)
	}
	if c, p := b.Used(); c != 0 || p != 0 {
		t.Fatalf("nil budget used %d/%d", c, p)
	}
	var g *Gate
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil gate shed: %v", err)
	}
	release()
	if g.Shed() != 0 || g.InFlight() != 0 || g.Waiting() != 0 {
		t.Fatal("nil gate counters non-zero")
	}
}

func TestNewBudgetZeroLimitsIsNil(t *testing.T) {
	if b := NewBudget(Limits{}); b != nil {
		t.Fatalf("zero limits built a budget: %+v", b)
	}
}

func TestBudgetChunkLimit(t *testing.T) {
	b := NewBudget(Limits{MaxChunks: 2})
	if err := b.ChargeChunk(10); err != nil {
		t.Fatal(err)
	}
	if err := b.ChargeChunk(10); err != nil {
		t.Fatal(err)
	}
	err := b.ChargeChunk(10)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("third charge: %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != "chunks" {
		t.Fatalf("want chunks BudgetError, got %v", err)
	}
}

func TestBudgetPointLimit(t *testing.T) {
	b := NewBudget(Limits{MaxPoints: 100})
	if err := b.ChargeChunk(100); err != nil {
		t.Fatal(err)
	}
	err := b.ChargeChunk(1)
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != "points" {
		t.Fatalf("want points BudgetError, got %v", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	b := NewBudget(Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := b.CheckDeadline()
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != "deadline" {
		t.Fatalf("want deadline BudgetError, got %v", err)
	}
	if err := b.ChargeChunk(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("charge past deadline: %v", err)
	}
}

func TestLimitsMerge(t *testing.T) {
	got := Limits{Timeout: time.Second}.Merge(Limits{MaxChunks: 5, Timeout: time.Minute})
	if got.MaxChunks != 5 || got.Timeout != time.Second || got.MaxPoints != 0 {
		t.Fatalf("merge: %+v", got)
	}
}

func TestContextLimits(t *testing.T) {
	ctx := WithLimits(context.Background(), Limits{MaxChunks: 7})
	if l := LimitsOf(ctx); l.MaxChunks != 7 {
		t.Fatalf("limits of ctx: %+v", l)
	}
	if l := LimitsOf(context.Background()); !l.zero() {
		t.Fatalf("bare ctx limits: %+v", l)
	}
	if got := WithLimits(context.Background(), Limits{}); got != context.Background() {
		t.Fatal("zero limits should not allocate a context")
	}
}

func TestGateShedsAtTheDoor(t *testing.T) {
	g := NewGate(1, 0, 0)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second acquire: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter < time.Second {
		t.Fatalf("want OverloadError with Retry-After >= 1s, got %v", err)
	}
	if g.Shed() != 1 {
		t.Fatalf("shed = %d", g.Shed())
	}
	release()
	release() // double release must be a no-op
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r2()
}

func TestGateQueueWaitTimeout(t *testing.T) {
	g := NewGate(1, 1, 10*time.Millisecond)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = g.Acquire(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) || !oe.Queued {
		t.Fatalf("queued waiter should time out with Queued overload, got %v", err)
	}
}

func TestGateQueuedWaiterGetsSlot(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		done <- err
	}()
	// Wait until the second request is queued, then free the slot.
	for i := 0; g.Waiting() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestGateContextCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		done <- err
	}()
	for i := 0; g.Waiting() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	// The cancelled waiter must have returned its queue ticket.
	if g.Shed() != 0 {
		t.Fatalf("cancellation counted as shed: %d", g.Shed())
	}
}

func TestGateConcurrencyBound(t *testing.T) {
	const slots = 3
	g := NewGate(slots, 100, time.Second)
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background())
			if err != nil {
				return
			}
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if maxInFlight > slots {
		t.Fatalf("observed %d concurrent executions with %d slots", maxInFlight, slots)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	for attempt := 1; attempt <= 8; attempt++ {
		a := Backoff(attempt, time.Millisecond, 20*time.Millisecond, 42)
		b := Backoff(attempt, time.Millisecond, 20*time.Millisecond, 42)
		if a != b {
			t.Fatalf("attempt %d: %v != %v", attempt, a, b)
		}
		if a <= 0 || a > 20*time.Millisecond {
			t.Fatalf("attempt %d out of bounds: %v", attempt, a)
		}
	}
	if Backoff(1, time.Millisecond, time.Second, 1) == Backoff(1, time.Millisecond, time.Second, 2) {
		t.Fatal("different seeds should jitter differently")
	}
}

func TestSleepBackoffHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepBackoff(ctx, 5, time.Second, time.Minute, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if err := SleepBackoff(context.Background(), 1, time.Microsecond, time.Millisecond, 1); err != nil {
		t.Fatalf("short sleep: %v", err)
	}
}
