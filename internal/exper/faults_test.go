package exper

import (
	"bytes"
	"strings"
	"testing"

	"m4lsm/internal/workload"
)

func TestRunFaults(t *testing.T) {
	rows, err := RunFaults(Config{
		Scale: 0.002, ChunkSize: 50, W: 10, Reps: 1, Seed: 3,
		Datasets: []workload.Preset{workload.KOB()},
	}, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	clean, faulty := rows[0], rows[1]
	if clean.Rate != 0 || clean.LSMWarnings != 0 || clean.UDFWarnings != 0 || clean.StrictFails {
		t.Errorf("clean row degraded: %+v", clean)
	}
	inj := faulty.Injected
	if inj.Errors+inj.Flips+inj.Slows == 0 {
		t.Errorf("rate 0.3 injected nothing: %+v", faulty)
	}
	if faulty.LSMWarnings+faulty.UDFWarnings == 0 {
		t.Errorf("faults injected but no degradation recorded: %+v", faulty)
	}
	var buf bytes.Buffer
	WriteFaults(&buf, rows)
	if !strings.Contains(buf.String(), "KOB") {
		t.Error("faults table missing dataset")
	}
}
