package obs

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestQuantileInterpolation(t *testing.T) {
	// Ten observations, all inside the (1,2] bucket: quantiles interpolate
	// linearly across that bucket.
	h := &HistogramSample{Bounds: []float64{1, 2, 3}, Counts: []int64{0, 10, 10, 10}, Count: 10}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 1.5},
		{0.1, 1.1},
		{1, 2},
		{-0.5, 1}, // clamps to q=0; rank 0 resolves at the bucket's lower edge
		{1.5, 2},  // clamps to q=1
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileFirstBucketFromZero(t *testing.T) {
	// Observations in the first bucket interpolate from 0, not from the
	// bound itself.
	h := &HistogramSample{Bounds: []float64{4, 8}, Counts: []int64{10, 10, 10}, Count: 10}
	if got := h.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("first-bucket Quantile(0.5) = %g, want 2", got)
	}
}

func TestQuantileEmptyHistogram(t *testing.T) {
	// Empty histograms report 0 — the value is JSON-encoded in /varz, so it
	// must never be NaN.
	var nilH *HistogramSample
	if got := nilH.Quantile(0.99); got != 0 {
		t.Errorf("nil Quantile = %g, want 0", got)
	}
	empty := &HistogramSample{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 0}}
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	r := NewRegistry()
	if got := r.Histogram("never_observed_seconds").Quantile(0.5); got != 0 {
		t.Errorf("fresh histogram Quantile = %g, want 0", got)
	}
	var nilHist *Histogram
	if got := nilHist.Quantile(0.5); got != 0 {
		t.Errorf("nil *Histogram Quantile = %g, want 0", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Every observation beyond the last bound: the histogram cannot resolve
	// past its highest finite bound, so that bound is the estimate.
	h := &HistogramSample{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 5}, Count: 5}
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow Quantile = %g, want 2", got)
	}
	// Mixed: p50 resolves in a finite bucket, p99 in the overflow.
	r := NewRegistry()
	reg := r.Histogram("mixed_seconds")
	for i := 0; i < 9; i++ {
		reg.Observe(0.001) // le=0.0032 bucket
	}
	reg.Observe(1e6) // +Inf
	qs := reg.Quantiles(0.50, 0.99)
	if qs[0] <= 0.0008 || qs[0] > 0.0032 {
		t.Errorf("p50 = %g, want inside (0.0008, 0.0032]", qs[0])
	}
	if qs[1] != 13.1072 {
		t.Errorf("p99 = %g, want highest finite bound 13.1072", qs[1])
	}
}

func TestRegistrySamplesDeterministic(t *testing.T) {
	// Two registries populated in different orders produce identical sample
	// walks and identical Prometheus expositions — the property the history
	// sampler and scrape diffing rely on.
	build := func(seed int64) *Registry {
		r := NewRegistry()
		type reg func(r *Registry)
		regs := []reg{
			func(r *Registry) { r.Counter("zz_total").Add(1) },
			func(r *Registry) { r.Counter("aa_total", "endpoint", "/query").Add(2) },
			func(r *Registry) { r.Counter("aa_total", "endpoint", "/render").Add(3) },
			func(r *Registry) { r.Gauge("mm_points").Set(4) },
			func(r *Registry) { r.Histogram("hh_seconds", "op", "lsm").Observe(0.01) },
			func(r *Registry) { r.GaugeFunc("ff_bytes", func() float64 { return 5 }) },
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(regs), func(i, j int) { regs[i], regs[j] = regs[j], regs[i] })
		for _, f := range regs {
			f(r)
		}
		return r
	}
	a, b := build(1), build(99)
	var sa, sb strings.Builder
	if err := a.WritePrometheus(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Errorf("exposition depends on registration order:\n--- a ---\n%s--- b ---\n%s", sa.String(), sb.String())
	}

	var prev string
	for i, s := range a.Samples() {
		key := s.Name + "\x00" + strings.Join(s.Labels, ",")
		if i > 0 && key < prev {
			t.Errorf("Samples out of order: %q after %q", key, prev)
		}
		prev = key
	}
}

func TestSamplesKindsAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(7)
	r.Gauge("g").Set(-3)
	r.CounterFunc("cf_total", func() float64 { return 11 })
	r.GaugeFunc("gf", func() float64 { return 13 })
	r.Histogram("h_seconds").Observe(0.01)

	byName := map[string]Sample{}
	for _, s := range r.Samples() {
		byName[s.Name] = s
	}
	for name, want := range map[string]struct {
		kind SampleKind
		val  float64
	}{
		"c_total":  {SampleCounter, 7},
		"g":        {SampleGauge, -3},
		"cf_total": {SampleCounter, 11},
		"gf":       {SampleGauge, 13},
	} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("Samples missing %s", name)
		}
		if s.Kind != want.kind || s.Value != want.val {
			t.Errorf("%s: kind=%d value=%g, want kind=%d value=%g", name, s.Kind, s.Value, want.kind, want.val)
		}
	}
	h := byName["h_seconds"]
	if h.Kind != SampleHistogram || h.Hist == nil {
		t.Fatalf("h_seconds sample: %+v", h)
	}
	if h.Hist.Count != 1 || h.Hist.Sum != 0.01 {
		t.Errorf("histogram sample count=%d sum=%g", h.Hist.Count, h.Hist.Sum)
	}
	if h.Hist.Counts[len(h.Hist.Counts)-1] != 1 {
		t.Errorf("cumulative overflow bucket = %d, want 1", h.Hist.Counts[len(h.Hist.Counts)-1])
	}
	var nilReg *Registry
	if nilReg.Samples() != nil {
		t.Error("nil registry Samples not nil")
	}
}

// TestRegistryHammer races writers minting instruments from a fixed
// vocabulary against readers scraping all three expositions; -race is the
// assertion.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	endpoints := []string{"/query", "/render", "/metrics", "/varz"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ep := endpoints[(i+w)%len(endpoints)]
				r.Counter("http_requests_total", "endpoint", ep).Inc()
				r.Histogram("http_request_seconds", "endpoint", ep).Observe(float64(i) / 1e5)
				r.Gauge("inflight", "endpoint", ep).Add(1)
			}
		}(w)
	}
	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
				for _, s := range r.Samples() {
					if s.Kind == SampleHistogram {
						s.Hist.Quantile(0.99)
					}
				}
			}
		}()
	}
	// Writers finish first; then release the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Wait for the 4 writer goroutines by counting totals.
	for {
		total := int64(0)
		for _, ep := range endpoints {
			total += r.Counter("http_requests_total", "endpoint", ep).Value()
		}
		if total == 4*500 {
			break
		}
	}
	close(stop)
	<-done
}
