package m4lsm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"m4lsm/internal/m4"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// slowSource delays every read, so a cancellation arriving mid-query has
// loads left to prevent.
type slowSource struct {
	inner storage.ChunkSource
	delay time.Duration
	reads atomic.Int64
}

func (s *slowSource) ReadChunk(m storage.ChunkMeta) (series.Series, error) {
	s.reads.Add(1)
	time.Sleep(s.delay)
	return s.inner.ReadChunk(m)
}

func (s *slowSource) ReadTimes(m storage.ChunkMeta) ([]int64, error) {
	s.reads.Add(1)
	time.Sleep(s.delay)
	return s.inner.ReadTimes(m)
}

// slowSnapshot builds nChunks disjoint overwrite-heavy chunks behind a slow
// source; every chunk needs a load (each chunk is overwritten at one point
// by a higher version, so metadata alone cannot answer).
func slowSnapshot(t *testing.T, nChunks int, delay time.Duration) (*storage.Snapshot, *slowSource) {
	t.Helper()
	mem := storage.NewMemSource()
	slow := &slowSource{inner: mem, delay: delay}
	stats := &storage.Stats{}
	snap := &storage.Snapshot{SeriesID: "s", Stats: stats, Warnings: &storage.Warnings{}}
	ver := storage.Version(1)
	for i := 0; i < nChunks; i++ {
		base := int64(i * 20)
		data := series.Series{
			{T: base, V: float64(i)}, {T: base + 5, V: float64(-i)},
			{T: base + 10, V: float64(2 * i)}, {T: base + 15, V: 1},
		}
		meta, err := mem.AddChunk("s", ver, data)
		if err != nil {
			t.Fatal(err)
		}
		snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, slow, stats))
		ver++
		over, err := mem.AddChunk("s", ver, series.Series{{T: base + 5, V: 99}})
		if err != nil {
			t.Fatal(err)
		}
		snap.Chunks = append(snap.Chunks, storage.NewChunkRef(over, slow, stats))
		ver++
	}
	return snap, slow
}

func TestComputeContextCancelBeforeStart(t *testing.T) {
	snap, slow := slowSnapshot(t, 4, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := m4.Query{Tqs: 0, Tqe: 80, W: 4}
	if _, err := ComputeContext(ctx, snap, q, Options{Parallelism: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := slow.reads.Load(); n != 0 {
		t.Errorf("%d reads despite pre-cancelled context", n)
	}
	if loads := snap.Stats.Load(); loads.ChunksLoaded != 0 || loads.TimeBlocksLoaded != 0 {
		t.Errorf("counters moved: %+v", loads)
	}
}

// TestComputeContextCancelMidQuery cancels while workers sit in slow loads.
// ComputeContext must return context.Canceled only after every worker has
// exited, so the load counters are frozen the moment it returns.
func TestComputeContextCancelMidQuery(t *testing.T) {
	const nChunks = 24
	snap, _ := slowSnapshot(t, nChunks, 4*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	q := m4.Query{Tqs: 0, Tqe: int64(nChunks * 20), W: 8}

	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	_, err := ComputeContext(ctx, snap, q, Options{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after := snap.Stats.Load()
	if after.ChunksLoaded+after.TimeBlocksLoaded >= 2*nChunks {
		t.Errorf("cancellation skipped nothing: %+v", after)
	}
	// Frozen thereafter: no worker survives the return.
	time.Sleep(50 * time.Millisecond)
	later := snap.Stats.Load()
	if later != after {
		t.Fatalf("counters moved after return: %+v -> %+v", after, later)
	}
}

func TestM4UDFComputeContextCancel(t *testing.T) {
	const nChunks = 24
	snap, _ := slowSnapshot(t, nChunks, 4*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	q := m4.Query{Tqs: 0, Tqe: int64(nChunks * 20), W: 8}
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	_, err := m4udf.ComputeContext(ctx, snap, q, m4udf.Options{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after := snap.Stats.Load()
	time.Sleep(50 * time.Millisecond)
	if later := snap.Stats.Load(); later != after {
		t.Fatalf("counters moved after return: %+v -> %+v", after, later)
	}
}

func TestMergereadLoadContextCancel(t *testing.T) {
	const nChunks = 24
	snap, _ := slowSnapshot(t, nChunks, 4*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	_, err := mergeread.LoadContext(ctx, snap, mergeread.LoadOptions{Parallelism: 4, Strict: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// failingSource fails reads for chosen chunk versions with a fixed error.
type failingSource struct {
	inner storage.ChunkSource
	bad   map[storage.Version]bool
	err   error
}

func (f *failingSource) ReadChunk(m storage.ChunkMeta) (series.Series, error) {
	if f.bad[m.Version] {
		return nil, fmt.Errorf("read chunk v%d: %w", m.Version, f.err)
	}
	return f.inner.ReadChunk(m)
}

func (f *failingSource) ReadTimes(m storage.ChunkMeta) ([]int64, error) {
	if f.bad[m.Version] {
		return nil, fmt.Errorf("read times v%d: %w", m.Version, f.err)
	}
	return f.inner.ReadTimes(m)
}

// degradedSnapshot: three overlapping chunks, the middle one unreadable.
func degradedSnapshot(t *testing.T) *storage.Snapshot {
	t.Helper()
	mem := storage.NewMemSource()
	bad := &failingSource{inner: mem, bad: map[storage.Version]bool{2: true}, err: errors.New("disk gone")}
	stats := &storage.Stats{}
	snap := &storage.Snapshot{SeriesID: "s", Stats: stats, Warnings: &storage.Warnings{}}
	for ver, data := range map[storage.Version]series.Series{
		1: {{T: 0, V: 1}, {T: 10, V: 5}, {T: 20, V: 2}},
		2: {{T: 10, V: 50}, {T: 30, V: -3}},
		3: {{T: 5, V: 4}, {T: 35, V: 7}},
	} {
		meta, err := mem.AddChunk("s", ver, data)
		if err != nil {
			t.Fatal(err)
		}
		snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, bad, stats))
	}
	return snap
}

// TestDegradedQuery: in lenient mode an unreadable chunk degrades the
// result (warnings, full span count, no error); in strict mode the same
// state fails with the read error.
func TestDegradedQuery(t *testing.T) {
	q := m4.Query{Tqs: 0, Tqe: 40, W: 4}

	snap := degradedSnapshot(t)
	aggs, err := ComputeWithOptions(snap, q, Options{})
	if err != nil {
		t.Fatalf("lenient: %v", err)
	}
	if len(aggs) != q.W {
		t.Fatalf("spans = %d, want %d", len(aggs), q.W)
	}
	if snap.Warnings.Len() == 0 {
		t.Fatal("no warnings for dropped chunk")
	}

	strictSnap := degradedSnapshot(t)
	if _, err := ComputeWithOptions(strictSnap, q, Options{Strict: true}); err == nil {
		t.Fatal("strict mode returned a silently partial result")
	}

	udfSnap := degradedSnapshot(t)
	if _, err := m4udf.ComputeWithOptions(udfSnap, q, m4udf.Options{}); err != nil {
		t.Fatalf("udf lenient: %v", err)
	}
	if udfSnap.Warnings.Len() == 0 {
		t.Fatal("udf: no warnings for dropped chunk")
	}

	udfStrict := degradedSnapshot(t)
	if _, err := m4udf.ComputeWithOptions(udfStrict, q, m4udf.Options{Strict: true}); err == nil {
		t.Fatal("udf strict mode returned a silently partial result")
	}
}

// TestDegradedReportsOncePerChunk: a chunk feeding many spans appears once
// in the warning list, not once per span×G task that touched it.
func TestDegradedReportsOncePerChunk(t *testing.T) {
	mem := storage.NewMemSource()
	bad := &failingSource{inner: mem, bad: map[storage.Version]bool{2: true}, err: errors.New("io")}
	stats := &storage.Stats{}
	snap := &storage.Snapshot{SeriesID: "s", Stats: stats, Warnings: &storage.Warnings{}}
	var wide series.Series
	for i := int64(0); i < 64; i++ {
		wide = append(wide, series.Point{T: i * 2, V: float64(i % 7)})
	}
	meta, err := mem.AddChunk("s", 1, wide)
	if err != nil {
		t.Fatal(err)
	}
	snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, mem, stats))
	// The bad chunk overwrites points across many spans, forcing loads.
	over := series.Series{{T: 3, V: 100}, {T: 41, V: 100}, {T: 81, V: 100}, {T: 121, V: 100}}
	badMeta, err := mem.AddChunk("s", 2, over)
	if err != nil {
		t.Fatal(err)
	}
	snap.Chunks = append(snap.Chunks, storage.NewChunkRef(badMeta, bad, stats))

	q := m4.Query{Tqs: 0, Tqe: 128, W: 8}
	if _, err := ComputeWithOptions(snap, q, Options{Parallelism: 4}); err != nil {
		t.Fatalf("lenient: %v", err)
	}
	if n := snap.Warnings.Len(); n != 1 {
		t.Fatalf("warnings = %d (%v), want 1", n, snap.Warnings.List())
	}
}
