package lsm

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"m4lsm/internal/faultfs"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
)

// The crash-recovery torture kills the write path at every step-hook site —
// WAL appends, mods appends, each flush stage — then reopens the directory
// and checks three things: Open succeeds, the recovered merged data equals
// the in-memory oracle over the acked operations (the crashed operation may
// or may not have become durable, so both outcomes are accepted), and
// M4-LSM ≡ M4-UDF ≡ M4 over the recovered merge.

type tortureOp struct {
	kind       byte // 'w' write, 'd' delete, 'f' flush
	id         string
	pts        []series.Point
	start, end int64
}

// tortureOps is a fixed workload: two series, out-of-order writes that split
// into sequence/unsequence files, deletes covering flushed and unflushed
// data, and explicit flushes between them. FlushThreshold 8 adds automatic
// flushes mid-write on top.
func tortureOps() []tortureOp {
	return []tortureOp{
		{kind: 'w', id: "a", pts: pts(10, 1, 20, 2, 30, 3)},
		{kind: 'w', id: "b", pts: pts(5, 50, 15, 51)},
		{kind: 'w', id: "a", pts: pts(40, 4, 50, 5, 60, 6, 70, 7, 80, 8)}, // trips the 8-point auto flush
		{kind: 'd', id: "a", start: 25, end: 45},                          // covers flushed and future data
		{kind: 'w', id: "a", pts: pts(35, 9, 90, 10)},                     // 35 rewrites inside the deleted range
		{kind: 'f'},
		{kind: 'w', id: "a", pts: pts(12, 11, 22, 12)}, // out of order: unsequence space
		{kind: 'w', id: "b", pts: pts(8, 52, 25, 53)},
		// Covers live points in a flushed chunk (t=5) AND in the memtable
		// (t=8) at once: a crash between this delete's WAL and mods appends
		// must not recover to a half-applied delete.
		{kind: 'd', id: "b", start: 0, end: 10},
		{kind: 'd', id: "a", start: 55, end: 65}, // covers flushed t=60 only
		{kind: 'f'},
		{kind: 'w', id: "a", pts: pts(100, 13, 110, 14)},
	}
}

type oracle map[string]map[int64]float64

func (o oracle) apply(op tortureOp) {
	switch op.kind {
	case 'w':
		m := o[op.id]
		if m == nil {
			m = map[int64]float64{}
			o[op.id] = m
		}
		for _, p := range op.pts {
			m[p.T] = p.V
		}
	case 'd':
		for t := range o[op.id] {
			if t >= op.start && t <= op.end {
				delete(o[op.id], t)
			}
		}
	}
}

func (o oracle) clone() oracle {
	out := oracle{}
	for id, m := range o {
		c := make(map[int64]float64, len(m))
		for t, v := range m {
			c[t] = v
		}
		out[id] = c
	}
	return out
}

func (o oracle) series(id string) series.Series {
	var out series.Series
	for t, v := range o[id] {
		out = append(out, series.Point{T: t, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

func execOp(e *Engine, op tortureOp) error {
	switch op.kind {
	case 'w':
		return e.Write(op.id, op.pts...)
	case 'd':
		return e.Delete(op.id, op.start, op.end)
	default:
		return e.Flush()
	}
}

// runTortureAt executes the workload with a crash armed at the failAt-th
// write-path step (0 = never), kills the engine, reopens the directory and
// verifies recovery. It returns the number of steps observed.
func runTortureAt(t *testing.T, failAt int64) int64 {
	t.Helper()
	dir := t.TempDir()
	inj := faultfs.NewStepInjector(failAt)
	e, err := Open(Options{Dir: dir, FlushThreshold: 8, StepHook: inj.Step})
	if err != nil {
		t.Fatalf("failAt %d: open: %v", failAt, err)
	}

	acked := oracle{}
	var crashed *tortureOp
	for _, op := range tortureOps() {
		op := op
		if err := execOp(e, op); err != nil {
			if !errors.Is(err, faultfs.ErrCrash) {
				t.Fatalf("failAt %d: op %+v: unexpected error %v", failAt, op, err)
			}
			crashed = &op
			break
		}
		acked.apply(op)
	}
	if crashed == nil {
		if err := e.Close(); err != nil {
			if !errors.Is(err, faultfs.ErrCrash) {
				t.Fatalf("failAt %d: close: %v", failAt, err)
			}
			crashed = &tortureOp{kind: 'f'} // a lost flush changes nothing logically
		}
	} else {
		e.Kill()
	}

	// The crashed operation may have become durable (its WAL record landed
	// before the kill) or not; both recovered states are legal.
	withCrash := acked.clone()
	if crashed != nil {
		withCrash.apply(*crashed)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("failAt %d (site %v): recovery failed: %v", failAt, lastSite(inj), err)
	}
	defer e2.Close()

	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	for _, id := range []string{"a", "b"} {
		snap, err := e2.Snapshot(id, full)
		if err != nil {
			t.Fatalf("failAt %d: snapshot %s: %v", failAt, id, err)
		}
		got := materialize(t, snap, full)
		wantA, wantB := acked.series(id), withCrash.series(id)
		if !seriesEqual(got, wantA) && !seriesEqual(got, wantB) {
			t.Fatalf("failAt %d (site %v): series %s recovered to %v,\nwant %v (acked)\n  or %v (acked+crashed)",
				failAt, lastSite(inj), id, got, wantA, wantB)
		}

		// Both operators over the recovered state must agree with plain M4
		// over the recovered merge.
		q := m4.Query{Tqs: 0, Tqe: 128, W: 8}
		want, err := m4.ComputeSeries(q, materialize(t, snap, q.Range()))
		if err != nil {
			t.Fatalf("failAt %d: oracle m4: %v", failAt, err)
		}
		for name, compute := range map[string]func() ([]m4.Aggregate, error){
			"m4lsm": func() ([]m4.Aggregate, error) {
				s, err := e2.Snapshot(id, q.Range())
				if err != nil {
					return nil, err
				}
				return m4lsm.Compute(s, q)
			},
			"m4udf": func() ([]m4.Aggregate, error) {
				s, err := e2.Snapshot(id, q.Range())
				if err != nil {
					return nil, err
				}
				return m4udf.Compute(s, q)
			},
		} {
			aggs, err := compute()
			if err != nil {
				t.Fatalf("failAt %d: %s %s: %v", failAt, name, id, err)
			}
			for i := range want {
				if !m4.Equivalent(aggs[i], want[i]) {
					t.Fatalf("failAt %d: %s %s span %d: got %v, want %v", failAt, name, id, i, aggs[i], want[i])
				}
			}
		}
	}
	return inj.Steps()
}

func lastSite(inj *faultfs.StepInjector) string {
	sites := inj.Sites()
	if len(sites) == 0 {
		return "none"
	}
	return sites[len(sites)-1]
}

func seriesEqual(a, b series.Series) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestCrashRecoveryTorture(t *testing.T) {
	total := runTortureAt(t, 0)
	if total < 20 {
		t.Fatalf("workload hits only %d step sites; too small to be a torture", total)
	}
	for failAt := int64(1); failAt <= total; failAt++ {
		runTortureAt(t, failAt)
	}
}

// TestTortureSitesCovered pins the step-site classes the torture visits, so
// a refactor that silently drops a hook fails loudly here rather than
// silently shrinking the crash matrix.
func TestTortureSitesCovered(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewStepInjector(0)
	e, err := Open(Options{Dir: dir, FlushThreshold: 8, StepHook: inj.Step})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range tortureOps() {
		if err := execOp(e, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{"wal.append", "wal.appended", "mods.append", "flush.walreset",
		"flush.create:", "flush.chunk:", "flush.footer:", "flush.reopen:"}
	seen := inj.Sites()
	for _, prefix := range want {
		found := false
		for _, s := range seen {
			if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no step at site %q (sites: %v)", prefix, seen)
		}
	}
}
