package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"m4lsm/internal/faultfs"
	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

const testQuery = "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 5000 GROUP BY SPANS(5) USING LSM"

func urlQuery(q string) string { return strings.ReplaceAll(q, " ", "+") }

func TestHealthEnriched(t *testing.T) {
	srv := newServer(t)
	var body map[string]interface{}
	if code := getJSON(t, srv.URL+"/healthz", &body); code != 200 {
		t.Fatalf("status %d", code)
	}
	if _, ok := body["uptimeSeconds"].(float64); !ok {
		t.Errorf("uptimeSeconds missing: %v", body)
	}
	if gv, _ := body["goVersion"].(string); !strings.HasPrefix(gv, "go") {
		t.Errorf("goVersion = %v", body["goVersion"])
	}
	if g, _ := body["goroutines"].(float64); g < 1 {
		t.Errorf("goroutines = %v", body["goroutines"])
	}
	for _, key := range []string{"version", "revision"} {
		if _, ok := body[key].(string); !ok {
			t.Errorf("%s missing: %v", key, body)
		}
	}
}

// TestHealthDegraded: a quarantined chunk file on disk flips the status
// while the endpoint keeps answering 200 (liveness is not the same as
// being fully healthy).
func TestHealthDegraded(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "000001.seq.tsf.bad"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := lsm.Open(lsm.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := New(e)
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); h.Close(); e.Close() })
	var body map[string]interface{}
	if code := getJSON(t, srv.URL+"/healthz", &body); code != 200 {
		t.Fatalf("status %d", code)
	}
	if body["status"] != "degraded" || body["badFiles"].(float64) != 1 {
		t.Errorf("body = %v", body)
	}
}

// traceResult is the subset of the query result the trace tests inspect.
type traceResult struct {
	Rows  [][]float64 `json:"rows"`
	Trace *struct {
		ID          string `json:"id"`
		ElapsedNs   int64  `json:"elapsedNs"`
		TaskTotalNs int64  `json:"taskTotalNs"`
		Phases      []struct {
			Name string `json:"name"`
			Ns   int64  `json:"ns"`
		} `json:"phases"`
		Tasks []struct {
			Span int    `json:"span"`
			G    string `json:"g"`
			Ns   int64  `json:"ns"`
		} `json:"tasks"`
		Counters map[string]int64 `json:"counters"`
	} `json:"trace"`
}

func TestQueryTraceParam(t *testing.T) {
	srv := newServer(t)
	var res traceResult
	if code := getJSON(t, srv.URL+"/query?trace=1&q="+urlQuery(testQuery), &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace with ?trace=1")
	}
	if tr.ID == "" || tr.ElapsedNs <= 0 {
		t.Errorf("trace header: %+v", tr)
	}
	if len(tr.Tasks) != 5*4 {
		t.Errorf("tasks = %d, want 20 (5 spans x 4 functions)", len(tr.Tasks))
	}
	sum := int64(0)
	for _, task := range tr.Tasks {
		sum += task.Ns
	}
	if sum != tr.TaskTotalNs {
		t.Errorf("task sum %d != taskTotalNs %d", sum, tr.TaskTotalNs)
	}
	if len(tr.Phases) == 0 {
		t.Error("no phases")
	}
	if _, ok := tr.Counters["chunksLoaded"]; !ok {
		t.Errorf("counters = %v", tr.Counters)
	}
	// The rollup-pyramid counters ride the same stats delta: cells
	// consulted, spans answered, spans that fell back to span×G.
	for _, key := range []string{"pyramidSpans", "pyramidCells", "pyramidFallbackSpans"} {
		if _, ok := tr.Counters[key]; !ok {
			t.Errorf("trace counters missing %q: %v", key, tr.Counters)
		}
	}
	// Without the parameter the response carries no trace.
	var plain traceResult
	if code := getJSON(t, srv.URL+"/query?q="+urlQuery(testQuery), &plain); code != 200 {
		t.Fatalf("status %d", code)
	}
	if plain.Trace != nil {
		t.Error("trace present without ?trace=1")
	}
}

func TestQueryRequestID(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/query?q=" + urlQuery(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID header")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(t)
	// Drive the layers the exposition must cover: operator + HTTP via a
	// query, engine counters via the flush that newServer already did.
	if code := getJSON(t, srv.URL+"/query?q="+urlQuery(testQuery), nil); code != 200 {
		t.Fatalf("query status %d", code)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	for _, want := range []string{
		"# TYPE lsm_flushes_total counter", // engine layer
		"lsm_points_written_total 500",
		"lsm_chunks ",                                          // engine gauge
		"chunk_cache_hits_total",                               // cache layer (zero, but exposed)
		`m4_queries_total{op="lsm"} 1`,                         // operator layer
		`m4_query_seconds_count{op="lsm"} 1`,                   // operator histogram
		`http_requests_total{endpoint="/query",class="2xx"} 1`, // HTTP layer
		`http_request_seconds_bucket{endpoint="/query",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestVarz(t *testing.T) {
	srv := newServer(t)
	if code := getJSON(t, srv.URL+"/query?q="+urlQuery(testQuery), nil); code != 200 {
		t.Fatalf("query status %d", code)
	}
	var vars map[string]interface{}
	if code := getJSON(t, srv.URL+"/varz", &vars); code != 200 {
		t.Fatalf("status %d", code)
	}
	if v, ok := vars["lsm_flushes_total"].(float64); !ok || v != 1 {
		t.Errorf("lsm_flushes_total = %v", vars["lsm_flushes_total"])
	}
	hist, ok := vars[`m4_query_seconds{op="lsm"}`].(map[string]interface{})
	if !ok {
		t.Fatalf("m4_query_seconds missing: have %d keys", len(vars))
	}
	if hist["count"].(float64) != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestSlowlog(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e.Write("root.s1", series.Point{T: int64(i * 10), V: float64(i)})
	}
	e.Flush()
	// Negative threshold records every query.
	h := NewWith(e, Config{SlowQueryThreshold: -1})
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); h.Close(); e.Close() })

	q := "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 1000 GROUP BY SPANS(2)"
	if code := getJSON(t, srv.URL+"/query?q="+urlQuery(q), nil); code != 200 {
		t.Fatalf("query status %d", code)
	}
	if code := getJSON(t, srv.URL+"/query?q=SELECT+garbage", nil); code != 400 {
		t.Fatalf("bad query status %d", code)
	}
	var log struct {
		ThresholdNs int64           `json:"thresholdNs"`
		Entries     []obs.SlowEntry `json:"entries"`
	}
	if code := getJSON(t, srv.URL+"/debug/slowlog", &log); code != 200 {
		t.Fatalf("slowlog status %d", code)
	}
	if len(log.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(log.Entries))
	}
	// Newest first: the failed query, then the good one.
	if log.Entries[0].Status != 400 || log.Entries[0].Error == "" {
		t.Errorf("entry[0] = %+v", log.Entries[0])
	}
	if log.Entries[1].Status != 200 || log.Entries[1].Query != q {
		t.Errorf("entry[1] = %+v", log.Entries[1])
	}
	if log.Entries[1].RequestID == "" || log.Entries[1].ElapsedNs <= 0 {
		t.Errorf("entry[1] missing request id or elapsed: %+v", log.Entries[1])
	}
}

// TestQueryCancelled: a request whose context is already cancelled answers
// 503, the signal that the client went away rather than sent a bad query.
func TestQueryCancelled(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	for i := 0; i < 100; i++ {
		e.Write("root.s1", series.Point{T: int64(i * 10), V: float64(i)})
	}
	e.Flush()
	h := New(e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet,
		"/query?q="+urlQuery("SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 1000 GROUP BY SPANS(2)"), nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req.WithContext(ctx))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rr.Code)
	}
}

// TestRenderPartial: when chunk reads fail mid-render, the chart still
// renders from whatever survived, the response carries X-M4-Partial, and
// render_partial_total counts it.
func TestRenderPartial(t *testing.T) {
	dir := t.TempDir()
	// Build the store with a clean engine so the data lands on disk.
	e0, err := lsm.Open(lsm.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		e0.Write("root.s1", series.Point{T: int64(i * 10), V: float64(i % 50)})
	}
	if err := e0.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with every chunk read failing: the operator drops all chunks
	// and degrades.
	inj := faultfs.NewInjector(faultfs.Config{Seed: 1, ErrRate: 1})
	e, err := lsm.Open(lsm.Options{
		Dir:     dir,
		Metrics: obs.NewRegistry(),
		WrapSource: func(src storage.ChunkSource) storage.ChunkSource {
			return faultfs.Wrap(src, inj)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New(e)
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); h.Close(); e.Close() })

	resp, err := http.Get(srv.URL + "/render?series=root.s1&tqs=0&tqe=3000&w=50&h=40")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-M4-Partial") == "" {
		t.Fatal("no X-M4-Partial header on degraded render")
	}
	var vars map[string]interface{}
	if code := getJSON(t, srv.URL+"/varz", &vars); code != 200 {
		t.Fatalf("varz status %d", code)
	}
	if v, _ := vars["render_partial_total"].(float64); v != 1 {
		t.Errorf("render_partial_total = %v", vars["render_partial_total"])
	}
}

// TestStatusClasses: error responses land in their status class counters.
func TestStatusClasses(t *testing.T) {
	srv := newServer(t)
	getJSON(t, srv.URL+"/query?q=SELECT+garbage", nil)              // 400
	getJSON(t, srv.URL+"/render?series=nope&tqs=0&tqe=10&w=2", nil) // 404
	getJSON(t, srv.URL+"/query?q="+urlQuery(testQuery), nil)        // 200
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	for _, want := range []string{
		`http_requests_total{endpoint="/query",class="4xx"} 1`,
		`http_requests_total{endpoint="/render",class="4xx"} 1`,
		`http_requests_total{endpoint="/query",class="2xx"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestVarzIsValidJSON guards the exposition against marshalling surprises
// (e.g. histogram NaN sums) by decoding the full document.
func TestVarzIsValidJSON(t *testing.T) {
	srv := newServer(t)
	getJSON(t, srv.URL+"/query?q="+urlQuery(testQuery), nil)
	resp, err := http.Get(srv.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("varz not valid JSON: %v", err)
	}
	if len(v) == 0 {
		t.Error("varz empty")
	}
}
