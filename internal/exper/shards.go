package exper

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/workload"
)

// ShardCounts is the shard sweep of the sharding experiment.
var ShardCounts = []int{1, 4, 8}

// ShardMeasurement is one point of the sharding experiment: an engine at
// one shard count, loaded by concurrent per-series writers and queried with
// one batched wildcard M4 query over every series.
type ShardMeasurement struct {
	Shards int
	Series int
	Points int // per series

	// WriteElapsed is the wall-clock time for Series concurrent writers
	// (one goroutine per series, WAL on) to insert and flush all points;
	// WritePointsPerSec is the aggregate throughput.
	WriteElapsed      time.Duration
	WritePointsPerSec float64

	// MultiLatency is the batched M4-LSM wildcard query over all series
	// (min over Reps); UDFLatency is the merge-everything baseline on the
	// same batch.
	MultiLatency time.Duration
	UDFLatency   time.Duration
	// Stats sums every series' M4-LSM cost counters for the measured run.
	Stats storage.Stats
}

// RunShards measures write throughput and multi-series query latency as the
// engine's shard count grows. The workload is the dashboard shape the
// tentpole targets: nSeries independent sensors written concurrently (WAL
// on, auto-flush at the chunk size), a compaction to a layout that is
// identical at every shard count, then one `M4(*) FROM root.*`-style
// batched query over all of them. Each measurement cross-checks the batched
// result against per-series single queries, so the sweep doubles as a
// correctness harness for the sharded write path. On a single-core host the
// shards>1 rows bound the sharding overhead rather than demonstrate
// speedup; the title reports GOMAXPROCS for that reason.
func RunShards(cfg Config, nSeries int) ([]ShardMeasurement, error) {
	cfg = cfg.withDefaults()
	if nSeries <= 0 {
		nSeries = 16
	}
	preset := workload.KOB()
	perSeries := int(float64(preset.Points) * cfg.Scale)
	if perSeries < 100 {
		perSeries = 100
	}
	// Generate each series once, outside the timed region.
	data := make([]series.Series, nSeries)
	ids := make([]string, nSeries)
	for s := 0; s < nSeries; s++ {
		data[s] = preset.Generate(perSeries, cfg.Seed+int64(s))
		ids[s] = fmt.Sprintf("root.s%02d", s)
	}
	q := m4.Query{Tqs: data[0][0].T, Tqe: data[0][len(data[0])-1].T + 1, W: cfg.W}

	var out []ShardMeasurement
	for _, shards := range ShardCounts {
		m, err := runShardPoint(cfg, shards, nSeries, perSeries, ids, data, q)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func runShardPoint(cfg Config, shards, nSeries, perSeries int, ids []string, data []series.Series, q m4.Query) (ShardMeasurement, error) {
	m := ShardMeasurement{Shards: shards, Series: nSeries, Points: perSeries}
	dir, cleanup, err := tempDir(cfg, fmt.Sprintf("shards-%d", shards))
	if err != nil {
		return m, err
	}
	defer cleanup()
	e, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: cfg.ChunkSize, NumShards: shards})
	if err != nil {
		return m, err
	}
	defer e.Close()

	// Concurrent load: one writer per series, batched inserts, WAL on —
	// the path sharding parallelizes (per-shard memtable locks, shared
	// tagged WAL).
	const batch = 256
	errs := make([]error, nSeries)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < nSeries; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			pts := data[s]
			for i := 0; i < len(pts); i += batch {
				end := i + batch
				if end > len(pts) {
					end = len(pts)
				}
				if err := e.Write(ids[s], pts[i:end]...); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return m, err
		}
	}
	if err := e.Flush(); err != nil {
		return m, err
	}
	m.WriteElapsed = time.Since(start)
	m.WritePointsPerSec = float64(nSeries*perSeries) / m.WriteElapsed.Seconds()

	// Compact to a canonical layout before measuring queries: threshold
	// flushes drain the whole owning shard, so the as-flushed chunk layout
	// varies with the shard count (more series per shard = more partial
	// chunks). Compaction rewrites every series into FlushThreshold-point
	// non-overlapping chunks — identical at every shard count — so the
	// query comparison isolates the sharded read path rather than
	// flush-timing artifacts.
	if err := e.Compact(); err != nil {
		return m, err
	}

	snapAll := func() ([]*storage.Snapshot, error) {
		snaps := make([]*storage.Snapshot, len(ids))
		for i, id := range ids {
			snap, err := e.Snapshot(id, q.Range())
			if err != nil {
				return nil, err
			}
			snaps[i] = snap
		}
		return snaps, nil
	}

	m.MultiLatency, m.UDFLatency = maxDuration, maxDuration
	for rep := 0; rep < cfg.Reps; rep++ {
		snaps, err := snapAll()
		if err != nil {
			return m, err
		}
		t0 := time.Now()
		outs, err := m4lsm.ComputeMulti(snaps, q)
		if err != nil {
			return m, err
		}
		if d := time.Since(t0); d < m.MultiLatency {
			m.MultiLatency = d
			var total storage.Stats
			for _, snap := range snaps {
				total.Add(snap.Stats.Load())
			}
			m.Stats = total
		}

		snaps, err = snapAll()
		if err != nil {
			return m, err
		}
		t0 = time.Now()
		udfOuts, err := m4udf.ComputeMulti(snaps, q)
		if err != nil {
			return m, err
		}
		if d := time.Since(t0); d < m.UDFLatency {
			m.UDFLatency = d
		}

		// Cross-check on the first rep: the batch must agree with the UDF
		// baseline and with per-series single queries.
		if rep == 0 {
			for si := range ids {
				for i := range outs[si] {
					if !m4.Equivalent(outs[si][i], udfOuts[si][i]) {
						return m, fmt.Errorf("shards=%d %s span %d: lsm %v, udf %v",
							shards, ids[si], i, outs[si][i], udfOuts[si][i])
					}
				}
				snap, err := e.Snapshot(ids[si], q.Range())
				if err != nil {
					return m, err
				}
				single, err := m4lsm.Compute(snap, q)
				if err != nil {
					return m, err
				}
				for i := range single {
					if !m4.Equivalent(outs[si][i], single[i]) {
						return m, fmt.Errorf("shards=%d %s span %d: batched %v, single %v",
							shards, ids[si], i, outs[si][i], single[i])
					}
				}
			}
		}
	}
	return m, nil
}

const maxDuration = time.Duration(1<<63 - 1)

// ShardsTitle names the experiment including the host's core budget: on one
// core the sweep bounds sharding overhead instead of showing speedup.
func ShardsTitle(nSeries int) string {
	if nSeries <= 0 {
		nSeries = 16
	}
	return fmt.Sprintf("Sharding: shard count vs concurrent-write throughput and %d-series wildcard query (GOMAXPROCS=%d)",
		nSeries, runtime.GOMAXPROCS(0))
}

// WriteShards renders the sharding sweep as an aligned text table.
func WriteShards(w io.Writer, title string, ms []ShardMeasurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-7s %8s %8s %12s %14s %12s %12s %10s\n",
		"shards", "series", "pts/ser", "write", "write pts/s", "m4lsm", "m4udf", "loads")
	for _, m := range ms {
		fmt.Fprintf(w, "%-7d %8d %8d %12s %14.0f %12s %12s %10d\n",
			m.Shards, m.Series, m.Points, fmtDur(m.WriteElapsed), m.WritePointsPerSec,
			fmtDur(m.MultiLatency), fmtDur(m.UDFLatency), m.Stats.ChunksLoaded)
	}
}
