package server

import (
	"fmt"
	"html/template"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"m4lsm/internal/obs/history"
)

// dashboardWindow is the default time window a chart covers.
const dashboardWindow = 15 * time.Minute

// dashChart is one chart definition: a title plus the system series drawn
// on it (several series overlay on one canvas with a shared viewport).
type dashChart struct {
	Title  string
	Series []string
}

// dashboardCharts is the built-in chart set — the node's vital signs, every
// one read back from root.sys.* history through the M4 query path. The
// sampler's naming contract (history.SeriesName) pins the ids.
func dashboardCharts() []dashChart {
	sys := func(metric string, labels ...string) string {
		return history.SeriesName("", metric, labels)
	}
	qh := sys("http_request_seconds", "endpoint", "/query")
	return []dashChart{
		{Title: "Query+render QPS", Series: []string{sys("derived.qps")}},
		{Title: "/query latency p50 / p95 / p99 (s)",
			Series: []string{qh + ".p50", qh + ".p95", qh + ".p99"}},
		{Title: "Chunk-cache hit ratio", Series: []string{sys("derived.cache_hit_ratio")}},
		{Title: "WAL bytes", Series: []string{sys("lsm_wal_bytes")}},
		{Title: "Memtable points", Series: []string{sys("lsm_memtable_points")}},
		{Title: "Points written (cumulative)", Series: []string{sys("lsm_points_written_total")}},
		{Title: "Shed requests / 429s (cumulative)", Series: []string{sys("http_shed_total")}},
		{Title: "Scrub chunks checked (cumulative)", Series: []string{sys("scrub_chunks_checked_total")}},
		{Title: "Pyramid cells", Series: []string{sys("lsm_pyramid_cells")}},
	}
}

var dashboardTemplate = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html>
<head>
<title>m4lsm dashboard</title>
<meta http-equiv="refresh" content="{{.Refresh}}">
<style>
body { font-family: sans-serif; margin: 2rem; color: #222; background: #fafafa; }
h1 { font-size: 1.3rem; }
.grid { display: flex; flex-wrap: wrap; gap: 1rem; }
.chart { background: #fff; border: 1px solid #ccc; padding: 8px 12px; }
.chart h2 { font-size: 0.85rem; margin: 0 0 6px; font-weight: 600; }
.chart .q { font-size: 0.7rem; color: #888; }
.empty { color: #888; font-size: 0.8rem; padding: 2rem 1rem; }
img { display: block; }
a { color: #06c; }
</style>
</head>
<body>
<h1>m4lsm — self-observability dashboard</h1>
<p>{{.SysSeries}} system series under <code>root.sys.*</code>, sampled every
{{.Interval}} into the engine itself; every chart below is an M4 render of
that history over the last {{.Window}} (<code>?window=1h</code> to widen).
{{if not .SamplerOn}}<strong>The self-metrics sampler is off</strong> —
start the server with <code>-self-metrics-interval 1s</code>.{{end}}</p>
<div class="grid">
{{range .Charts}}
<div class="chart">
  <h2>{{.Title}}</h2>
  {{if .URL}}<img src="{{.URL}}" width="{{$.W}}" height="{{$.H}}" alt="{{.Title}}">
  <div class="q"><a href="{{.QueryURL}}">m4 json</a></div>
  {{else}}<div class="empty">no samples yet</div>{{end}}
</div>
{{end}}
</div>
<p>Related: <a href="/debug/events">/debug/events</a> (wide query events) ·
<a href="/debug/slowlog">/debug/slowlog</a> · <a href="/varz">/varz</a> ·
<a href="/metrics">/metrics</a> · <a href="/">series browser</a></p>
</body>
</html>
`))

type dashRow struct {
	Title    string
	URL      template.URL
	QueryURL template.URL
}

// dashboard serves the self-observability page: each chart is an <img>
// pointing at /render over root.sys.* series, so the pixels themselves come
// out of the paper's M4 operator reading the engine's own metric history.
// Charts whose series have no samples yet render a placeholder instead of a
// 404. ?window=30m adjusts the time range, ?w/?h the chart size.
func (h *Handler) dashboard(w http.ResponseWriter, r *http.Request) {
	window := dashboardWindow
	if v := r.URL.Query().Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad window %q", v))
			return
		}
		window = d
	}
	cw, ch := 420, 120
	if v := r.URL.Query().Get("w"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 4096 {
			cw = n
		}
	}
	if v := r.URL.Query().Get("h"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 2048 {
			ch = n
		}
	}
	now := time.Now()
	tqe := now.UnixMilli() + 1
	tqs := tqe - window.Milliseconds()

	sysSeries := 0
	for _, id := range h.engine.SeriesIDs() {
		if strings.HasPrefix(id, history.DefaultPrefix) {
			sysSeries++
		}
	}

	var rows []dashRow
	for _, c := range dashboardCharts() {
		// Keep only the series that exist so a missing one (metric not yet
		// registered) does not 404 the whole chart.
		var have []string
		for _, id := range c.Series {
			if h.engine.HasSeries(id) {
				have = append(have, id)
			}
		}
		row := dashRow{Title: c.Title}
		if len(have) > 0 {
			list := strings.Join(have, ",")
			row.URL = template.URL(fmt.Sprintf("/render?series=%s&tqs=%d&tqe=%d&w=%d&h=%d",
				url.QueryEscape(list), tqs, tqe, cw, ch))
			q := fmt.Sprintf("SELECT M4(*) FROM %s WHERE time >= %d AND time < %d GROUP BY SPANS(%d)",
				list, tqs, tqe, cw)
			row.QueryURL = template.URL("/query?q=" + url.QueryEscape(q))
		}
		rows = append(rows, row)
	}

	interval := "—"
	if h.sampler != nil {
		interval = h.sampler.Interval().String()
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := dashboardTemplate.Execute(w, map[string]interface{}{
		"Charts":    rows,
		"W":         cw,
		"H":         ch,
		"Window":    window.String(),
		"Refresh":   10,
		"SysSeries": sysSeries,
		"SamplerOn": h.sampler != nil,
		"Interval":  interval,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}
