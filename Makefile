GO ?= go

.PHONY: build test race vet check bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the standard gate for this repo: static analysis plus the full
# suite under the race detector (the parallel operator makes -race
# mandatory, not optional).
check: vet race

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

# bench-parallel regenerates the worker-scaling numbers of BENCH_parallel.json.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkM4LSMParallel|BenchmarkM4UDFParallel' -benchtime 30x .
