package exper

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/reprops"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/viz"
	"m4lsm/internal/workload"
)

// ReprW is the span-count sweep of the representation comparison: the
// pixel widths a dashboard actually asks for.
var ReprW = []int{100, 250, 500, 1000}

// reprSpecs is the operator sweep: M4 as the error-free baseline, MinMax
// as the cheapest metadata-only reduction, LTTB as the quality ceiling of
// the selection family, and MinMaxLTTB at two preselection ratios.
func reprSpecs() []reprops.Spec {
	return []reprops.Spec{
		{Kind: reprops.KindM4},
		{Kind: reprops.KindMinMax},
		{Kind: reprops.KindLTTB},
		{Kind: reprops.KindMinMaxLTTB, Ratio: 2},
		{Kind: reprops.KindMinMaxLTTB, Ratio: reprops.DefaultRatio},
	}
}

// ReprRow is one sweep point: an operator answering one dataset at one
// span count through the LSM path, with its cost counters and its
// pixel-level fidelity against rendering the full series.
type ReprRow struct {
	Dataset    string
	Spec       string
	W          int
	Latency    time.Duration
	PointsKept int
	Stats      storage.Stats
	PixelError int     // differing pixels vs. the full-series raster
	DSSIM      float64 // structural dissimilarity vs. the same raster
}

// RunRepr sweeps representation operators × span counts over the Table 2
// presets: each operator answers through the real LSM read path, and the
// result is rasterized at w×(w/2) pixels against the full series. This is
// the quality-versus-cost picture: M4 is pixel-exact but returns 4 points
// per span, LTTB is the smoothest w-point answer but must read every
// chunk, and MinMaxLTTB buys most of LTTB's quality at MinMax prices.
func RunRepr(cfg Config) ([]ReprRow, error) {
	cfg = cfg.withDefaults()
	var out []ReprRow
	for di, p := range cfg.Datasets {
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("repr-%d", di))
		if err != nil {
			return nil, err
		}
		b, err := build(cfg, p, 0.1, workload.DeleteOptions{}, dir)
		if err != nil {
			cleanup()
			return nil, err
		}
		for _, w := range ReprW {
			q := m4.Query{Tqs: b.tqs, Tqe: b.tqe, W: w}
			vp := viz.ViewportFor(b.data, q.Tqs, q.Tqe)
			full := viz.Rasterize(b.data, vp, w, w/2)
			for _, spec := range reprSpecs() {
				row := ReprRow{Dataset: p.Name, Spec: spec.String(), W: w, Latency: math.MaxInt64}
				var reduced series.Series
				for rep := 0; rep < cfg.Reps; rep++ {
					snap, err := b.engine.Snapshot(p.Name, q.Range())
					if err != nil {
						b.close()
						cleanup()
						return nil, err
					}
					start := time.Now()
					s, err := m4lsm.Reduce(snap, q, spec)
					if err != nil {
						b.close()
						cleanup()
						return nil, fmt.Errorf("%s/%s/w=%d: %w", p.Name, spec, w, err)
					}
					if d := time.Since(start); d < row.Latency {
						row.Latency = d
						row.Stats = snap.Stats.Load()
						reduced = s
					}
				}
				canvas := viz.Rasterize(reduced, vp, w, w/2)
				row.PointsKept = len(reduced)
				row.PixelError = viz.Diff(full, canvas)
				row.DSSIM = viz.DSSIM(full, canvas)
				out = append(out, row)
			}
		}
		b.close()
		cleanup()
	}
	return out, nil
}

// ReprPyramidCheck records the metadata-only claim for MinMax: on a dense
// cell-aligned query, both aggregate waves answer from pyramid cells and
// span metadata without loading a single chunk.
type ReprPyramidCheck struct {
	Points      int
	W           int
	Latency     time.Duration
	Stats       storage.Stats
	LTTBStats   storage.Stats // the contrast: LTTB over the same state
	LTTBLatency time.Duration
	// MinMaxLTTB at the default ratio: its preselection spans are still
	// base-cell multiples on this workload, so it inherits the zero-chunk
	// property while producing an LTTB-shaped answer.
	MMLTTBStats   storage.Stats
	MMLTTBLatency time.Duration
	ChunksInDB    int
	OracleEqual   bool
}

// RunReprPyramid builds the pyramid sweep's dense workload at 2^17 points
// and answers a cell-aligned MinMax query: like M4, it must come entirely
// from rollup cells (ChunksLoaded == 0, PyramidSpans == w), because BP/TP
// are exactly the rolled-up aggregates. LTTB over the same state is the
// counterpoint — it has no metadata path and must load every chunk.
func RunReprPyramid(cfg Config) (ReprPyramidCheck, error) {
	cfg = cfg.withDefaults()
	const n = 1 << 17
	c := ReprPyramidCheck{Points: n, W: PyramidW, Latency: math.MaxInt64, LTTBLatency: math.MaxInt64, MMLTTBLatency: math.MaxInt64}
	dir, cleanup, err := tempDir(cfg, "repr-pyramid")
	if err != nil {
		return c, err
	}
	defer cleanup()
	const name = "repr.pyramid"
	e, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: cfg.ChunkSize, DisableWAL: true})
	if err != nil {
		return c, err
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(cfg.Seed))
	const batch = 4096
	buf := make([]series.Point, 0, batch)
	v := 0.0
	for t := 0; t < n; t++ {
		v += rng.Float64()*2 - 1
		buf = append(buf, series.Point{T: int64(t), V: v})
		if len(buf) == batch {
			if err := e.Write(name, buf...); err != nil {
				return c, err
			}
			buf = buf[:0]
		}
	}
	if err := e.Flush(); err != nil {
		return c, err
	}
	c.ChunksInDB = (n + cfg.ChunkSize - 1) / cfg.ChunkSize

	q := m4.Query{Tqs: 0, Tqe: n, W: PyramidW}
	minmax := reprops.Spec{Kind: reprops.KindMinMax}
	var got series.Series
	for rep := 0; rep < cfg.Reps; rep++ {
		snap, err := e.Snapshot(name, q.Range())
		if err != nil {
			return c, err
		}
		start := time.Now()
		s, err := m4lsm.Reduce(snap, q, minmax)
		if err != nil {
			return c, err
		}
		if d := time.Since(start); d < c.Latency {
			c.Latency = d
			c.Stats = snap.Stats.Load()
			got = s
		}

		snap, err = e.Snapshot(name, q.Range())
		if err != nil {
			return c, err
		}
		start = time.Now()
		if _, err := m4lsm.Reduce(snap, q, reprops.Spec{Kind: reprops.KindLTTB}); err != nil {
			return c, err
		}
		if d := time.Since(start); d < c.LTTBLatency {
			c.LTTBLatency = d
			c.LTTBStats = snap.Stats.Load()
		}

		snap, err = e.Snapshot(name, q.Range())
		if err != nil {
			return c, err
		}
		start = time.Now()
		if _, err := m4lsm.Reduce(snap, q, reprops.Spec{Kind: reprops.KindMinMaxLTTB}); err != nil {
			return c, err
		}
		if d := time.Since(start); d < c.MMLTTBLatency {
			c.MMLTTBLatency = d
			c.MMLTTBStats = snap.Stats.Load()
		}
	}
	if c.Stats.ChunksLoaded != 0 {
		return c, fmt.Errorf("minmax loaded %d chunks on a cell-aligned query, want 0", c.Stats.ChunksLoaded)
	}
	if c.Stats.PyramidSpans == 0 {
		return c, fmt.Errorf("minmax answered zero spans from the pyramid (silent fallback)")
	}

	// Oracle cross-check over the raw generated data.
	raw := make(series.Series, n)
	rng = rand.New(rand.NewSource(cfg.Seed))
	v = 0.0
	for t := 0; t < n; t++ {
		v += rng.Float64()*2 - 1
		raw[t] = series.Point{T: int64(t), V: v}
	}
	want, err := reprops.Reduce(minmax, q, raw)
	if err != nil {
		return c, err
	}
	c.OracleEqual = len(got) == len(want)
	if c.OracleEqual {
		for i := range got {
			if got[i] != want[i] {
				c.OracleEqual = false
				break
			}
		}
	}
	if !c.OracleEqual {
		return c, fmt.Errorf("minmax pyramid answer diverges from the oracle reduction")
	}
	return c, nil
}

// ReprTitle names the sweep.
func ReprTitle() string {
	return "Representation operators: quality vs cost across w"
}

// WriteRepr renders the sweep grouped by dataset, with the pyramid check
// appended.
func WriteRepr(w io.Writer, title string, rows []ReprRow, check ReprPyramidCheck) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-12s %-14s %6s %12s %8s %10s %10s %10s %8s\n",
		"Dataset", "Operator", "w", "latency", "kept", "chunks", "pyrSpans", "pixelErr", "dssim")
	last := ""
	for _, r := range rows {
		if r.Dataset != last && last != "" {
			fmt.Fprintln(w)
		}
		last = r.Dataset
		fmt.Fprintf(w, "%-12s %-14s %6d %12s %8d %10d %10d %10d %8.4f\n",
			r.Dataset, r.Spec, r.W, r.Latency.Round(time.Microsecond), r.PointsKept,
			r.Stats.ChunksLoaded, r.Stats.PyramidSpans, r.PixelError, r.DSSIM)
	}
	fmt.Fprintf(w, "\n-- MinMax pyramid check: %d dense points, w=%d --\n", check.Points, check.W)
	fmt.Fprintf(w, "minmax: %s, chunksLoaded=%d of %d, pyrSpans=%d, oracleEqual=%v\n",
		check.Latency.Round(time.Microsecond), check.Stats.ChunksLoaded, check.ChunksInDB,
		check.Stats.PyramidSpans, check.OracleEqual)
	fmt.Fprintf(w, "lttb:   %s, chunksLoaded=%d (no metadata path exists for it)\n",
		check.LTTBLatency.Round(time.Microsecond), check.LTTBStats.ChunksLoaded)
	fmt.Fprintf(w, "minmaxlttb: %s, chunksLoaded=%d, pyrSpans=%d (preselection rides the pyramid)\n",
		check.MMLTTBLatency.Round(time.Microsecond), check.MMLTTBStats.ChunksLoaded,
		check.MMLTTBStats.PyramidSpans)
}
