package m4lsm

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"m4lsm/internal/m4"
	"m4lsm/internal/obs"
	"m4lsm/internal/storage"
)

// ComputeMulti runs one M4 query over several series with default options.
func ComputeMulti(snaps []*storage.Snapshot, q m4.Query) ([][]m4.Aggregate, error) {
	return ComputeMultiContext(context.Background(), snaps, q, Options{})
}

// Rest-wave kind lists: which representation functions run in wave 2 after
// FP proves span liveness. M4 needs all three; MinMax needs only the value
// extremes (FP still runs in wave 1 — it is the metadata-cheap emptiness
// prover and the substitution source for degraded reads — but its point is
// not part of the MinMax output).
var (
	restM4     = []gKind{gLP, gBP, gTP}
	restMinMax = []gKind{gBP, gTP}
)

// ComputeMultiContext evaluates one M4 query over several series' snapshots
// as a single batch: the series×span×G tasks of every series feed one shared
// worker pool, so a fleet-style dashboard query (one chart per sensor) costs
// two pool waves total instead of two per series. Results are positional —
// out[i] belongs to snaps[i] — and byte-identical to running ComputeContext
// on each snapshot alone: the decomposition into tasks is the same, only the
// scheduling is batched. Per-series cost counters, warnings and degradation
// stay attributed to each snapshot's own Stats and Warnings.
//
// The single-series ComputeContext is this batch with one plan, so there is
// exactly one candidate-loop implementation to keep correct.
func ComputeMultiContext(ctx context.Context, snaps []*storage.Snapshot, q m4.Query, opts Options) ([][]m4.Aggregate, error) {
	return computeMultiKinds(ctx, snaps, q, opts, restM4, "lsm")
}

// computeMultiKinds is the span×G task machinery shared by every span-based
// representation operator: the rest list selects which functions wave 2
// computes per live span (M4 passes restM4, MinMax passes restMinMax), and
// label names the operator in metrics and traces. Aggregate fields whose
// kind is not in rest are filled with the span's FP, so downstream reducers
// read only the fields their representation defines.
func computeMultiKinds(ctx context.Context, snaps []*storage.Snapshot, q m4.Query, opts Options, rest []gKind, label string) ([][]m4.Aggregate, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(snaps) == 0 {
		return nil, nil
	}
	tr := obs.TraceOf(ctx)
	met := obs.NewOperatorMetrics(opts.Metrics, label)
	instrumented := tr != nil || met != nil
	var start, phaseStart time.Time
	if instrumented {
		start = time.Now()
		phaseStart = start
	}
	phase := func(name string) {
		if tr != nil {
			now := time.Now()
			tr.Phase(name, now.Sub(phaseStart))
			phaseStart = now
		}
	}
	// seriesErr attributes a task failure: single-series batches keep the
	// historical "m4lsm: span %d" shape, multi-series batches name the
	// series so a fleet query's error is actionable.
	seriesErr := func(p *seriesPlan, span int, err error) error {
		if len(snaps) == 1 {
			return fmt.Errorf("m4lsm: span %d: %w", span, err)
		}
		return fmt.Errorf("m4lsm: series %q span %d: %w", p.op.snap.SeriesID, span, err)
	}

	plans := make([]*seriesPlan, len(snaps))
	for i, snap := range snaps {
		plans[i] = newSeriesPlan(ctx, snap, q, opts, tr, met, instrumented)
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	phase("plan")

	// Wave 1: every series' FP tasks in one pool, alongside the pyramid
	// spans' boundary-fragment tasks (a pyramid span needs no second wave
	// — its one task computes all four functions from two sub-cell
	// fragments plus the precomputed cells). FP proves span emptiness by
	// chaining delete bounds without loading chunk data, so LP/BP/TP work
	// only the spans that survive (see ComputeContext's two-wave
	// rationale — batching does not change the per-series decomposition).
	type fpRef struct {
		plan, k int  // k indexes plan.work (or plan.pyrWork)
		pyramid bool // k is a pyramid span, not an FP task
	}
	var fpTasks []fpRef
	for pi, p := range plans {
		for k := range p.work {
			fpTasks = append(fpTasks, fpRef{pi, k, false})
		}
		for k := range p.pyrWork {
			fpTasks = append(fpTasks, fpRef{pi, k, true})
		}
	}
	runPool(par, len(fpTasks), func(t int) error {
		ref := fpTasks[t]
		p := plans[ref.plan]
		if ref.pyramid {
			err := p.computePyramidSpan(ref.k)
			p.pyrErrs[ref.k] = err
			return err
		}
		span := p.work[ref.k]
		pt, ok, err := p.op.timedG(span, q.Span(span), p.perSpan[span], gFP)
		p.firsts[ref.k] = gResult{pt: pt, ok: ok, err: err}
		return err
	})
	phase("wave-fp")
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, p := range plans {
		for k, i := range p.pyrWork {
			if err := p.pyrErrs[k]; err != nil {
				return nil, seriesErr(p, i, err)
			}
		}
		for k, i := range p.work {
			if err := p.firsts[k].err; err != nil {
				return nil, seriesErr(p, i, err)
			}
			if p.firsts[k].ok {
				p.live = append(p.live, k)
			} else {
				p.out[i] = m4.Aggregate{Empty: true}
			}
		}
	}

	// Wave 2: the representation's rest kinds (LP/BP/TP for M4, BP/TP for
	// MinMax) for every live span of every series, one pool.
	restCount := len(rest)
	type restRef struct{ plan, j, kind int } // j indexes plan.live, kind indexes rest
	var restTasks []restRef
	for pi, p := range plans {
		p.rests = make([]gResult, restCount*len(p.live))
		for j := range p.live {
			for kind := 0; kind < restCount; kind++ {
				restTasks = append(restTasks, restRef{pi, j, kind})
			}
		}
	}
	runPool(par, len(restTasks), func(t int) error {
		ref := restTasks[t]
		p := plans[ref.plan]
		span := p.work[p.live[ref.j]]
		pt, ok, err := p.op.timedG(span, q.Span(span), p.perSpan[span], rest[ref.kind])
		p.rests[restCount*ref.j+ref.kind] = gResult{pt: pt, ok: ok, err: err}
		return err
	})
	phase("wave-rest")
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Report the first error in (series, span) order before assembling:
	// after a failure the pool stops early, leaving later tasks with zero
	// results that must not be mistaken for empty spans.
	for _, p := range plans {
		for j, k := range p.live {
			i := p.work[k]
			for _, r := range p.rests[restCount*j : restCount*j+restCount] {
				if r.err != nil {
					return nil, seriesErr(p, i, r.err)
				}
			}
		}
	}
	outs := make([][]m4.Aggregate, len(plans))
	for pi, p := range plans {
		if err := p.assemble(rest); err != nil {
			return nil, err
		}
		outs[pi] = p.out
	}
	if instrumented {
		phase("assemble")
		elapsed := time.Since(start)
		total := map[string]int64{}
		for _, p := range plans {
			delta := p.op.stats.Load().Sub(p.statsBefore)
			met.RecordQuery(elapsed, delta.ChunksLoaded, delta.ChunksPruned,
				delta.TimeBlocksLoaded, delta.PointsDecoded, delta.CacheHits)
			met.RecordPyramid(delta.PyramidSpans, delta.PyramidCells, delta.PyramidFallbackSpans)
			for k, v := range delta.Map() {
				total[k] += v
			}
		}
		tr.SetCounters(total)
	}
	return outs, nil
}

// seriesPlan is one series' share of a batched query: its operator (chunk
// states, delete index, per-series stats), the span→chunk distribution, and
// the task-result slots the two waves fill in.
type seriesPlan struct {
	op          *operator
	perSpan     [][]*chunkState
	out         []m4.Aggregate
	work        []int // span indexes with at least one chunk
	firsts      []gResult
	live        []int // indexes into work with surviving points
	rests       []gResult
	pyr         []*pyrSpanPlan // per span; nil slice when the pyramid is off
	pyrWork     []int          // pyramid spans with boundary chunks to compute
	pyrErrs     []error        // parallel to pyrWork, filled by wave 1
	statsBefore storage.Stats
}

// newSeriesPlan builds the per-series operator state exactly the way the
// single-series path always has: one shared chunkState per assigned chunk
// (the singleflight gate), deletes sorted by version, chunks distributed to
// spans by index interval, and spans with no chunks answered Empty with no
// task at all.
func newSeriesPlan(ctx context.Context, snap *storage.Snapshot, q m4.Query, opts Options, tr *obs.Trace, met *obs.OperatorMetrics, instrumented bool) *seriesPlan {
	op := &operator{ctx: ctx, snap: snap, q: q, opts: opts, stats: snap.Stats, budget: opts.Budget, tr: tr, met: met}
	if op.stats == nil {
		op.stats = &storage.Stats{}
	}
	op.deletes = append([]storage.Delete(nil), snap.Deletes...)
	sort.Slice(op.deletes, func(i, j int) bool { return op.deletes[i].Version < op.deletes[j].Version })
	op.deleteIx = storage.NewDeleteIndex(op.deletes)

	p := &seriesPlan{op: op}
	if instrumented {
		p.statsBefore = op.stats.Load()
	}
	p.perSpan = make([][]*chunkState, q.W)
	p.pyr = planPyramid(snap, q, opts)
	// Chunk states are materialized lazily: a chunk whose every span is
	// answered from pyramid cells (and that misses the boundary fragments)
	// never needs one, and on wide snapshots those per-chunk allocations
	// would otherwise dominate an all-cells query's cost. Metadata tests
	// run on ref.Meta directly; the state is built on first assignment.
	for ci := range snap.Chunks {
		meta := snap.Chunks[ci].Meta
		lo := clampSpan(q, meta.First.T)
		hi := clampSpan(q, meta.Last.T)
		var cs *chunkState
		for i := lo; i <= hi; i++ {
			// A pyramid span needs chunks only over its boundary
			// fragments; its interior is already folded into the cells.
			if p.pyr != nil {
				if pp := p.pyr[i]; pp != nil {
					if meta.OverlapsRange(pp.leftRange) {
						if cs == nil {
							cs = op.addState(snap.Chunks[ci])
						}
						pp.leftChunks = append(pp.leftChunks, cs)
					}
					if meta.OverlapsRange(pp.rightRange) {
						if cs == nil {
							cs = op.addState(snap.Chunks[ci])
						}
						pp.rightChunks = append(pp.rightChunks, cs)
					}
					continue
				}
			}
			// Guard against zero-width spans produced by W > range.
			if s := q.Span(i); meta.OverlapsRange(s) {
				if cs == nil {
					cs = op.addState(snap.Chunks[ci])
				}
				p.perSpan[i] = append(p.perSpan[i], cs)
			}
		}
	}
	p.out = make([]m4.Aggregate, q.W)
	p.work = make([]int, 0, q.W)
	var pyrSpans, pyrCells, pyrFallback int64
	for i := 0; i < q.W; i++ {
		if q.Span(i).Empty() {
			p.out[i] = m4.Aggregate{Empty: true}
			continue
		}
		if p.pyr != nil {
			if pp := p.pyr[i]; pp != nil {
				pyrSpans++
				pyrCells += int64(len(pp.cells))
				if len(pp.leftChunks) == 0 && len(pp.rightChunks) == 0 {
					// Both fragments are provably empty: the span is
					// answered entirely from cells, zero tasks.
					p.out[i] = pp.cellsOnly()
				} else {
					p.pyrWork = append(p.pyrWork, i)
				}
				continue
			}
		}
		if len(p.perSpan[i]) == 0 {
			p.out[i] = m4.Aggregate{Empty: true}
			continue
		}
		if p.pyr != nil {
			pyrFallback++
		}
		p.work = append(p.work, i)
	}
	if pyrSpans+pyrFallback > 0 {
		atomic.AddInt64(&op.stats.PyramidSpans, pyrSpans)
		atomic.AddInt64(&op.stats.PyramidCells, pyrCells)
		atomic.AddInt64(&op.stats.PyramidFallbackSpans, pyrFallback)
	}
	p.firsts = make([]gResult, len(p.work))
	p.pyrErrs = make([]error, len(p.pyrWork))
	return p
}

// assemble combines the wave results into the series' aggregates, applying
// the FP-substitution rule for degraded (non-strict, chunk-dropped) queries
// and folding the pruned-chunk count into the series' stats. Fields whose
// kind is absent from rest default to the span's FP.
func (p *seriesPlan) assemble(rest []gKind) error {
	restCount := len(rest)
	op := p.op
	for j, k := range p.live {
		i := p.work[k]
		fp := p.firsts[k].pt
		g := p.rests[restCount*j : restCount*j+restCount]
		agg := m4.Aggregate{First: fp, Last: fp, Bottom: fp, Top: fp}
		for kind, r := range g {
			if !r.ok {
				// With chunks dropped mid-query, a function can come up
				// empty on a span FP proved non-empty (FP answered from
				// metadata, the data load failed later). FP's point is a
				// real surviving point of the span, so substitute it — a
				// valid, if non-extremal, representation — and warn.
				if !op.opts.Strict && op.degraded.Load() {
					// The aggregate fields default to FP, so skipping the
					// assignment below is the substitution.
					op.snap.Warnings.Add("span %d: %v lost to unreadable chunks, substituted FP", i, rest[kind])
					continue
				}
				return fmt.Errorf("internal: span %d: %v empty after FP found %v", i, rest[kind], fp)
			}
			switch rest[kind] {
			case gLP:
				agg.Last = r.pt
			case gBP:
				agg.Bottom = r.pt
			case gTP:
				agg.Top = r.pt
			}
		}
		p.out[i] = agg
	}
	// Workers have joined; the chunk-state flags are safe to read plainly.
	// Only chunks assigned to a span or fragment have states — chunks the
	// pyramid answered around were never candidates, so they don't count
	// as pruned (they show up in pyramidSpans/pyramidCells instead).
	pruned := int64(0)
	for _, cs := range op.states {
		if !cs.hasData && !cs.hasTimes {
			pruned++
		}
	}
	atomic.AddInt64(&op.stats.ChunksPruned, pruned)
	return nil
}
