// Command datagen materializes the synthetic evaluation datasets (Table 2
// presets) either as CSV on stdout or directly into a database directory
// with a chosen chunk-overlap percentage.
//
// Usage:
//
//	datagen -preset KOB -n 100000 > kob.csv
//	datagen -preset MF03 -n 1000000 -db ./db -overlap 0.2
//	datagen -in readings.csv -series root.plant.s1 -db ./db
//	datagen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"m4lsm/internal/csvio"
	"m4lsm/internal/lsm"
	"m4lsm/internal/series"
	"m4lsm/internal/workload"
)

func main() {
	var (
		preset  = flag.String("preset", "KOB", "dataset preset: BallSpeed, MF03, KOB, RcvTime")
		n       = flag.Int("n", 100_000, "number of points (0 = paper-scale cardinality)")
		seed    = flag.Int64("seed", 42, "generator seed")
		db      = flag.String("db", "", "load into this database directory instead of printing CSV")
		chunk   = flag.Int("chunk", 1000, "points per chunk when loading into a database")
		overlap = flag.Float64("overlap", 0, "fraction of overlapping chunks when loading")
		list    = flag.Bool("list", false, "list presets and exit")
		in      = flag.String("in", "", "import this CSV file instead of generating a preset")
		sid     = flag.String("series", "", "series id for CSV imports (default: the file name)")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.Presets() {
			fmt.Printf("%-10s %12d points over %s (base interval %dms)\n",
				p.Name, p.Points, p.Label, p.IntervalMs)
		}
		return
	}

	var data series.Series
	name := *sid
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		data, err = csvio.Read(bufio.NewReader(f), true)
		f.Close()
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		if name == "" {
			name = strings.TrimSuffix(*in, ".csv")
		}
	} else {
		var chosen *workload.Preset
		for _, p := range workload.Presets() {
			if strings.EqualFold(p.Name, *preset) {
				chosen = &p
				break
			}
		}
		if chosen == nil {
			log.Fatalf("datagen: unknown preset %q", *preset)
		}
		count := *n
		if count <= 0 {
			count = chosen.Points
		}
		data = chosen.Generate(count, *seed)
		if name == "" {
			name = chosen.Name
		}
	}

	if *db == "" {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		if err := csvio.Write(w, data); err != nil {
			log.Fatalf("datagen: %v", err)
		}
		return
	}

	engine, err := lsm.Open(lsm.Options{Dir: *db, FlushThreshold: *chunk, DisableWAL: true})
	if err != nil {
		log.Fatalf("datagen: %v", err)
	}
	defer engine.Close()
	if err := workload.Load(engine, name, data, workload.LoadOptions{
		ChunkSize:       *chunk,
		OverlapFraction: *overlap,
		Seed:            *seed,
	}); err != nil {
		log.Fatalf("datagen: %v", err)
	}
	info := engine.Info()
	fmt.Printf("loaded %d points of %s into %s: %d files, %d chunks\n",
		len(data), name, *db, info.Files, info.Chunks)
}
