GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet lint check bench bench-parallel bench-obs fuzz torture profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# torture runs the crash-recovery suite on its own: every write-path step
# site gets a simulated kill, recovery is checked against the oracle.
torture:
	$(GO) test -race -run 'Torture|Fault|TornWAL|Quarantine|Cancel' -count=1 ./internal/lsm ./internal/m4lsm ./internal/faultfs

# fuzz exercises the crash-recovery parsers (WAL payloads, chunk-file
# footers, record logs). Go allows one -fuzz target per invocation, so each
# runs separately for FUZZTIME (the seed corpus also runs in plain `make
# test`).
fuzz:
	$(GO) test ./internal/lsm -run '^$$' -fuzz '^FuzzDecodeInsert$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lsm -run '^$$' -fuzz '^FuzzDecodeWALDelete$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tsfile -run '^$$' -fuzz '^FuzzOpen$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tsfile -run '^$$' -fuzz '^FuzzRecordLog$$' -fuzztime $(FUZZTIME)

# lint forbids ad-hoc printing in library code: internal/ packages must log
# through log/slog (the server injects a request-scoped logger) so output
# stays structured and greppable. Commands, examples and tests are exempt.
lint:
	@bad=$$(grep -rnE '(log\.(Print|Fatal|Panic)|fmt\.Print)' \
		--include='*.go' --exclude='*_test.go' internal/ *.go 2>/dev/null; true); \
	if [ -n "$$bad" ]; then \
		echo "lint: use log/slog instead of log.Print*/fmt.Print* in library code:"; \
		echo "$$bad"; exit 1; \
	fi

# check is the standard gate for this repo: static analysis, the logging
# lint, the full suite (including the crash-recovery torture) under the
# race detector, and a short fuzz pass over the recovery parsers.
check: vet lint race
	$(MAKE) fuzz FUZZTIME=3s

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

# bench-parallel regenerates the worker-scaling numbers of BENCH_parallel.json.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkM4LSMParallel|BenchmarkM4UDFParallel' -benchtime 30x .

# bench-obs regenerates the observability-overhead numbers of BENCH_obs.json
# (instrumentation off vs metrics vs metrics+trace).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkM4LSMObs' -benchtime 50x .

# profile runs the paper's Figure 10 sweep under the CPU and heap profilers;
# inspect with `go tool pprof profiles/cpu.pprof`.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/m4bench -exp fig10 -cpuprofile profiles/cpu.pprof -memprofile profiles/heap.pprof
	@echo "profiles written to ./profiles"
