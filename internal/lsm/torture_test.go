package lsm

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"m4lsm/internal/faultfs"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// The crash-recovery torture kills the write path at every step-hook site —
// WAL appends, mods appends, each flush stage — then reopens the directory
// and checks three things: Open succeeds, the recovered merged data equals
// the in-memory oracle over the acked operations (the crashed operation may
// or may not have become durable, so both outcomes are accepted), and
// M4-LSM ≡ M4-UDF ≡ M4 over the recovered merge.

type tortureOp struct {
	kind       byte // 'w' write, 'g' batched write, 'd' delete, 'f' flush, 'b' online backup
	id         string
	pts        []series.Point
	start, end int64
	entries    []BatchEntry // kind 'g'; at most one entry per series so the
	// per-series oracle check below stays exact (each entry is one WAL
	// record, so a crashed batch may recover any subset of entries)
}

// tortureOps is a fixed workload: two series, out-of-order writes that split
// into sequence/unsequence files, deletes covering flushed and unflushed
// data, and explicit flushes between them. FlushThreshold 8 adds automatic
// flushes mid-write on top.
func tortureOps() []tortureOp {
	return []tortureOp{
		{kind: 'w', id: "a", pts: pts(10, 1, 20, 2, 30, 3)},
		{kind: 'w', id: "b", pts: pts(5, 50, 15, 51)},
		{kind: 'w', id: "a", pts: pts(40, 4, 50, 5, 60, 6, 70, 7, 80, 8)}, // trips the 8-point auto flush
		{kind: 'd', id: "a", start: 25, end: 45},                          // covers flushed and future data
		{kind: 'w', id: "a", pts: pts(35, 9, 90, 10)},                     // 35 rewrites inside the deleted range
		{kind: 'f'},
		{kind: 'w', id: "a", pts: pts(12, 11, 22, 12)}, // out of order: unsequence space
		{kind: 'w', id: "b", pts: pts(8, 52, 25, 53)},
		// Covers live points in a flushed chunk (t=5) AND in the memtable
		// (t=8) at once: a crash between this delete's WAL and mods appends
		// must not recover to a half-applied delete.
		{kind: 'd', id: "b", start: 0, end: 10},
		{kind: 'd', id: "a", start: 55, end: 65}, // covers flushed t=60 only
		{kind: 'f'},
		// Batched ingest through the bounded queues: ingest.enqueue,
		// ingest.drain and wal.group join the crash matrix here. One entry
		// per series — the atomicity unit — exercising both flushed-over
		// and fresh timestamps.
		{kind: 'g', entries: []BatchEntry{
			{SeriesID: "a", Points: pts(95, 15, 105, 16)},
			{SeriesID: "b", Points: pts(30, 54, 40, 55)},
		}},
		{kind: 'b'}, // online backup mid-workload; a crash must leave it rejectable
		{kind: 'w', id: "a", pts: pts(100, 13, 110, 14)},
		{kind: 'g', entries: []BatchEntry{
			{SeriesID: "b", Points: pts(2, 56, 50, 57, 60, 58)},
		}},
	}
}

type oracle map[string]map[int64]float64

func (o oracle) apply(op tortureOp) {
	switch op.kind {
	case 'w':
		m := o[op.id]
		if m == nil {
			m = map[int64]float64{}
			o[op.id] = m
		}
		for _, p := range op.pts {
			m[p.T] = p.V
		}
	case 'g':
		for _, ent := range op.entries {
			o.apply(tortureOp{kind: 'w', id: ent.SeriesID, pts: ent.Points})
		}
	case 'd':
		for t := range o[op.id] {
			if t >= op.start && t <= op.end {
				delete(o[op.id], t)
			}
		}
	}
}

func (o oracle) clone() oracle {
	out := oracle{}
	for id, m := range o {
		c := make(map[int64]float64, len(m))
		for t, v := range m {
			c[t] = v
		}
		out[id] = c
	}
	return out
}

func (o oracle) series(id string) series.Series {
	var out series.Series
	for t, v := range o[id] {
		out = append(out, series.Point{T: t, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

func execOp(e *Engine, op tortureOp) error {
	switch op.kind {
	case 'w':
		return e.Write(op.id, op.pts...)
	case 'g':
		return e.WriteBatch(op.entries...)
	case 'd':
		return e.Delete(op.id, op.start, op.end)
	case 'b':
		_, err := e.Backup(filepath.Join(e.opts.Dir, "backup"))
		return err
	default:
		return e.Flush()
	}
}

// runTortureAt executes the workload with a crash armed at the failAt-th
// write-path step (0 = never), kills the engine, reopens the directory and
// verifies recovery. The engine runs with shards shards and recovers with
// reopenShards (shard-tagged WAL records must replay into any layout). It
// returns the number of steps observed.
func runTortureAt(t *testing.T, failAt int64, shards, reopenShards int) int64 {
	t.Helper()
	dir := t.TempDir()
	inj := faultfs.NewStepInjector(failAt)
	// The tiny segment size forces WAL rotation and retirement into the
	// crash matrix: wal.rotate and wal.retire fire mid-workload.
	e, err := Open(Options{Dir: dir, FlushThreshold: 8, StepHook: inj.Step, NumShards: shards,
		WALSegmentBytes: 48})
	if err != nil {
		t.Fatalf("failAt %d: open: %v", failAt, err)
	}

	acked := oracle{}
	var crashed *tortureOp
	for _, op := range tortureOps() {
		op := op
		if err := execOp(e, op); err != nil {
			if !errors.Is(err, faultfs.ErrCrash) {
				t.Fatalf("failAt %d: op %+v: unexpected error %v", failAt, op, err)
			}
			crashed = &op
			break
		}
		acked.apply(op)
	}
	if crashed == nil {
		if err := e.Close(); err != nil {
			if !errors.Is(err, faultfs.ErrCrash) {
				t.Fatalf("failAt %d: close: %v", failAt, err)
			}
			crashed = &tortureOp{kind: 'f'} // a lost flush changes nothing logically
		}
	} else {
		e.Kill()
	}

	// The crashed operation may have become durable (its WAL record landed
	// before the kill) or not; both recovered states are legal.
	withCrash := acked.clone()
	if crashed != nil {
		withCrash.apply(*crashed)
	}

	e2, err := Open(Options{Dir: dir, NumShards: reopenShards})
	if err != nil {
		t.Fatalf("failAt %d (site %v): recovery failed: %v", failAt, lastSite(inj), err)
	}
	defer e2.Close()

	// A backup either completed (verifies end to end) or crashed mid-set
	// (no manifest, rejected wholesale) — never a third state.
	if _, err := os.Stat(filepath.Join(dir, "backup", backupManifestName)); err == nil {
		if _, err := VerifyBackup(filepath.Join(dir, "backup")); err != nil {
			t.Fatalf("failAt %d (site %v): completed backup does not verify: %v", failAt, lastSite(inj), err)
		}
	} else if crashed != nil && crashed.kind == 'b' {
		if _, err := VerifyBackup(filepath.Join(dir, "backup")); err == nil {
			t.Fatalf("failAt %d (site %v): torn backup verified", failAt, lastSite(inj))
		}
	}

	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	for _, id := range []string{"a", "b"} {
		snap, err := e2.Snapshot(id, full)
		if err != nil {
			t.Fatalf("failAt %d: snapshot %s: %v", failAt, id, err)
		}
		got := materialize(t, snap, full)
		wantA, wantB := acked.series(id), withCrash.series(id)
		if !seriesEqual(got, wantA) && !seriesEqual(got, wantB) {
			t.Fatalf("failAt %d (site %v): series %s recovered to %v,\nwant %v (acked)\n  or %v (acked+crashed)",
				failAt, lastSite(inj), id, got, wantA, wantB)
		}

		// Both operators over the recovered state must agree with plain M4
		// over the recovered merge.
		q := m4.Query{Tqs: 0, Tqe: 128, W: 8}
		want, err := m4.ComputeSeries(q, materialize(t, snap, q.Range()))
		if err != nil {
			t.Fatalf("failAt %d: oracle m4: %v", failAt, err)
		}
		for name, compute := range map[string]func() ([]m4.Aggregate, error){
			"m4lsm": func() ([]m4.Aggregate, error) {
				s, err := e2.Snapshot(id, q.Range())
				if err != nil {
					return nil, err
				}
				return m4lsm.Compute(s, q)
			},
			"m4udf": func() ([]m4.Aggregate, error) {
				s, err := e2.Snapshot(id, q.Range())
				if err != nil {
					return nil, err
				}
				return m4udf.Compute(s, q)
			},
		} {
			aggs, err := compute()
			if err != nil {
				t.Fatalf("failAt %d: %s %s: %v", failAt, name, id, err)
			}
			for i := range want {
				if !m4.Equivalent(aggs[i], want[i]) {
					t.Fatalf("failAt %d: %s %s span %d: got %v, want %v", failAt, name, id, i, aggs[i], want[i])
				}
			}
		}
	}
	return inj.Steps()
}

func lastSite(inj *faultfs.StepInjector) string {
	sites := inj.Sites()
	if len(sites) == 0 {
		return "none"
	}
	return sites[len(sites)-1]
}

func seriesEqual(a, b series.Series) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestCrashRecoveryTorture(t *testing.T) {
	total := runTortureAt(t, 0, 1, 1)
	if total < 20 {
		t.Fatalf("workload hits only %d step sites; too small to be a torture", total)
	}
	for failAt := int64(1); failAt <= total; failAt++ {
		runTortureAt(t, failAt, 1, 1)
	}
}

// TestShardCrashRecoveryTorture reruns the crash matrix on a sharded
// engine, recovering into a *different* shard count each time: the WAL's
// shard tags are routing hints, not layout commitments, so replay must
// re-hash every record into whatever layout the reopening engine has.
func TestShardCrashRecoveryTorture(t *testing.T) {
	total := runTortureAt(t, 0, 3, 2)
	if total < 20 {
		t.Fatalf("workload hits only %d step sites; too small to be a torture", total)
	}
	for failAt := int64(1); failAt <= total; failAt++ {
		runTortureAt(t, failAt, 3, 2)
	}
}

// TestTortureSitesCovered pins the step-site classes the torture visits, so
// a refactor that silently drops a hook fails loudly here rather than
// silently shrinking the crash matrix.
func TestTortureSitesCovered(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewStepInjector(0)
	e, err := Open(Options{Dir: dir, FlushThreshold: 8, StepHook: inj.Step, WALSegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range tortureOps() {
		if err := execOp(e, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{"wal.append", "wal.group", "wal.appended", "mods.append",
		"flush.walreset", "flush.create:", "flush.chunk:", "flush.footer:",
		"flush.reopen:", "pyramid.rebuild", "pyramid.save", "wal.rotate",
		"wal.retire", "backup.manifest", "ingest.enqueue", "ingest.drain"}
	seen := inj.Sites()
	for _, prefix := range want {
		found := false
		for _, s := range seen {
			if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no step at site %q (sites: %v)", prefix, seen)
		}
	}
}

// TestShardConcurrentTorture exercises the tentpole's concurrency claims
// all at once: per-series writer goroutines (each series has exactly one
// writer, so its oracle needs no locking), a wildcard-style batched M4
// reader over every listed series, and a compaction loop, all racing on a
// sharded engine. Run under -race by `make check`. While the storm runs,
// only success and internal consistency are asserted (reads race with
// writes); after the writers join and the readers stop, the engine must
// hold exactly the oracles' data and both operators must agree with the
// reference scan.
func TestShardConcurrentTorture(t *testing.T) {
	const (
		nSeries = 6
		nOps    = 120
	)
	e, err := Open(Options{Dir: t.TempDir(), FlushThreshold: 16, NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ids := make([]string, nSeries)
	oracles := make([]oracle, nSeries)
	for s := range ids {
		ids[s] = string(rune('a' + s))
		oracles[s] = oracle{}
	}

	errCh := make(chan error, nSeries+2)
	stop := make(chan struct{})

	var writers sync.WaitGroup
	for s := 0; s < nSeries; s++ {
		writers.Add(1)
		go func(s int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			id := ids[s]
			for i := 0; i < nOps; i++ {
				switch rng.Intn(10) {
				case 0:
					start := rng.Int63n(500)
					end := start + rng.Int63n(60)
					if err := e.Delete(id, start, end); err != nil {
						errCh <- err
						return
					}
					oracles[s].apply(tortureOp{kind: 'd', id: id, start: start, end: end})
				case 1:
					if err := e.Flush(); err != nil {
						errCh <- err
						return
					}
				default:
					n := 1 + rng.Intn(5)
					batch := make([]series.Point, n)
					for j := range batch {
						batch[j] = series.Point{T: rng.Int63n(500), V: float64(rng.Intn(100))}
					}
					if err := e.Write(id, batch...); err != nil {
						errCh <- err
						return
					}
					oracles[s].apply(tortureOp{kind: 'w', id: id, pts: batch})
				}
			}
		}(s)
	}

	var aux sync.WaitGroup
	// Wildcard reader: expand the sorted series list, snapshot each, run
	// the batched operator.
	aux.Add(1)
	go func() {
		defer aux.Done()
		q := m4.Query{Tqs: 0, Tqe: 512, W: 16}
		for {
			select {
			case <-stop:
				return
			default:
			}
			listed := e.SeriesIDs()
			if !sort.StringsAreSorted(listed) {
				errCh <- errors.New("SeriesIDs not sorted")
				return
			}
			snaps := make([]*storage.Snapshot, 0, len(listed))
			for _, id := range listed {
				snap, err := e.Snapshot(id, q.Range())
				if err != nil {
					errCh <- err
					return
				}
				snaps = append(snaps, snap)
			}
			if _, err := m4lsm.ComputeMulti(snaps, q); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// Compaction loop.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Compact(); err != nil {
				errCh <- err
				return
			}
		}
	}()

	writers.Wait()
	close(stop)
	aux.Wait()

	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiesced: the engine must now hold exactly the oracles' data.
	q := m4.Query{Tqs: 0, Tqe: 512, W: 16}
	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	for s, id := range ids {
		snap, err := e.Snapshot(id, full)
		if err != nil {
			t.Fatal(err)
		}
		got := materialize(t, snap, full)
		want := oracles[s].series(id)
		if !seriesEqual(got, want) {
			t.Fatalf("series %s: got %v, want %v", id, got, want)
		}
		ref, err := m4.ComputeSeries(q, want)
		if err != nil {
			t.Fatal(err)
		}
		snap, err = e.Snapshot(id, q.Range())
		if err != nil {
			t.Fatal(err)
		}
		lsmAggs, err := m4lsm.Compute(snap, q)
		if err != nil {
			t.Fatal(err)
		}
		snap, err = e.Snapshot(id, q.Range())
		if err != nil {
			t.Fatal(err)
		}
		udfAggs, err := m4udf.Compute(snap, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if !m4.Equivalent(lsmAggs[i], ref[i]) || !m4.Equivalent(udfAggs[i], ref[i]) {
				t.Fatalf("series %s span %d: lsm %v, udf %v, want %v", id, i, lsmAggs[i], udfAggs[i], ref[i])
			}
		}
	}
}
