package lsm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/series"
)

// TestWriteBatchMatchesWrite ingests the same workload through WriteBatch
// and through point-by-point Write into two engines and requires identical
// query results, before and after a reopen (batched records replay like
// direct ones).
func TestWriteBatchMatchesWrite(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	opts := func(dir string) Options {
		return Options{Dir: dir, FlushThreshold: 16, SyncWAL: true, NumShards: 3}
	}
	ea, err := Open(opts(dirA))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Open(opts(dirB))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	oracles := map[string]oracle{}
	ids := []string{"s0", "s1", "s2", "s3"}
	for _, id := range ids {
		oracles[id] = oracle{}
	}
	for round := 0; round < 30; round++ {
		var batch []BatchEntry
		for _, id := range ids {
			n := 1 + rng.Intn(6)
			ps := make([]series.Point, n)
			for j := range ps {
				ps[j] = series.Point{T: rng.Int63n(1000), V: float64(rng.Intn(50))}
			}
			batch = append(batch, BatchEntry{SeriesID: id, Points: ps})
			oracles[id].apply(tortureOp{kind: 'w', id: id, pts: ps})
		}
		if err := ea.WriteBatch(batch...); err != nil {
			t.Fatalf("round %d: WriteBatch: %v", round, err)
		}
		for _, ent := range batch {
			if err := eb.Write(ent.SeriesID, ent.Points...); err != nil {
				t.Fatalf("round %d: Write: %v", round, err)
			}
		}
	}

	check := func(phase string, ea, eb *Engine) {
		t.Helper()
		full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
		for _, id := range ids {
			sa, err := ea.Snapshot(id, full)
			if err != nil {
				t.Fatalf("%s: snapshot batched %s: %v", phase, id, err)
			}
			sb, err := eb.Snapshot(id, full)
			if err != nil {
				t.Fatalf("%s: snapshot direct %s: %v", phase, id, err)
			}
			got := materialize(t, sa, full)
			ref := materialize(t, sb, full)
			want := oracles[id].series(id)
			if !seriesEqual(got, want) || !seriesEqual(ref, want) {
				t.Fatalf("%s: series %s: batched %v, direct %v, want %v", phase, id, got, ref, want)
			}
		}
	}
	check("live", ea, eb)

	if err := ea.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eb.Close(); err != nil {
		t.Fatal(err)
	}
	ea2, err := Open(opts(dirA))
	if err != nil {
		t.Fatal(err)
	}
	defer ea2.Close()
	eb2, err := Open(opts(dirB))
	if err != nil {
		t.Fatal(err)
	}
	defer eb2.Close()
	check("reopened", ea2, eb2)
}

func TestWriteBatchValidation(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.WriteBatch(); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := e.WriteBatch(BatchEntry{SeriesID: "s"}); err != nil {
		t.Fatalf("batch of empty entries: %v", err)
	}
	if err := e.WriteBatch(BatchEntry{Points: pts(1, 1)}); err == nil {
		t.Fatal("empty series id accepted")
	}
	if err := e.WriteBatch(BatchEntry{SeriesID: "s", Points: []series.Point{{T: 1, V: math.NaN()}}}); err == nil {
		t.Fatal("NaN accepted")
	}
	// Nothing above may have reached the queues.
	if n := e.ing.queuedPoints(); n != 0 {
		t.Fatalf("queued points = %d after rejected batches", n)
	}
}

// TestIngestBackpressureTyped fills a one-point queue while the single
// drain worker is parked inside an injected step hook, and requires the
// overflowing WriteBatch to fail fast with the typed retryable error — then
// requires the parked batches to complete once the worker resumes.
func TestIngestBackpressureTyped(t *testing.T) {
	drainEntered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func(site string) error {
		if site == "ingest.drain" {
			once.Do(func() {
				close(drainEntered)
				<-release
			})
		}
		return nil
	}
	e, err := Open(Options{
		Dir: t.TempDir(), StepHook: hook,
		IngestQueuePoints: 1, IngestEnqueueWait: -1, // fail-fast enqueue
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	errs := make(chan error, 2)
	// Batch 1: taken by the worker, which then parks in the hook.
	go func() { errs <- e.WriteBatch(BatchEntry{SeriesID: "a", Points: pts(1, 1)}) }()
	<-drainEntered
	// Batch 2: queue is empty again (batch 1 was taken), so this enqueues
	// and brings the queue to its cap.
	go func() { errs <- e.WriteBatch(BatchEntry{SeriesID: "b", Points: pts(2, 2)}) }()
	waitFor(t, func() bool { return e.ing.queuedPoints() >= 1 })

	// Batch 3 overflows: typed, immediate backpressure.
	err = e.WriteBatch(BatchEntry{SeriesID: "c", Points: pts(3, 3)})
	if !errors.Is(err, ErrIngestBackpressure) {
		t.Fatalf("overflow: got %v, want ErrIngestBackpressure", err)
	}
	if e.ing.backpressure.Load() == 0 {
		t.Fatal("backpressure counter did not move")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("parked batch %d: %v", i, err)
		}
	}
	// The shed batch must not have left anything behind.
	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	snap, err := e.Snapshot("c", full)
	if err != nil {
		t.Fatal(err)
	}
	if got := materialize(t, snap, full); len(got) != 0 {
		t.Fatalf("shed batch leaked points: %v", got)
	}
}

// TestIngestGoroutineLeak pins the Close contract: every append worker has
// exited once Close returns.
func TestIngestGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	e, err := Open(Options{Dir: t.TempDir(), NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBatch(BatchEntry{SeriesID: "s", Points: pts(1, 1, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}

// TestIngestCloseWhileEnqueueing races Close against a swarm of WriteBatch
// callers: every call must return (success or a closed/backpressure error),
// nothing may hang, and whatever was acknowledged must be durable.
func TestIngestCloseWhileEnqueueing(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, FlushThreshold: 32, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var acked [writers][]series.Point
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			id := fmt.Sprintf("s%d", w)
			for i := 0; ; i++ {
				ps := []series.Point{{T: int64(i * 2), V: float64(i)}}
				err := e.WriteBatch(BatchEntry{SeriesID: id, Points: ps})
				if err != nil {
					if errors.Is(err, ErrIngestBackpressure) {
						continue
					}
					return // engine closed underneath us: fine, stop
				}
				acked[w] = append(acked[w], ps...)
			}
		}(w)
	}
	close(start)
	waitFor(t, func() bool { return e.ing.batches.Load() > 0 })
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	e2, err := Open(Options{Dir: dir, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	for w := 0; w < writers; w++ {
		snap, err := e2.Snapshot(fmt.Sprintf("s%d", w), full)
		if err != nil {
			t.Fatal(err)
		}
		got := materialize(t, snap, full)
		if !seriesEqual(got, acked[w]) {
			t.Fatalf("writer %d: recovered %d points, acked %d (%v vs %v)",
				w, len(got), len(acked[w]), got, acked[w])
		}
	}
}

// TestIngestConcurrentHammer is the soak-gate stress: batched writers,
// point writers and M4 readers racing on a sharded engine under -race, with
// an exact oracle check after quiescing. (One goroutine owns each series,
// so the oracles need no locking.)
func TestIngestConcurrentHammer(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), FlushThreshold: 24, NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const nWriters = 4
	oracles := make([]oracle, 2*nWriters)
	for i := range oracles {
		oracles[i] = oracle{}
	}
	errCh := make(chan error, 2*nWriters+1)
	var writers sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		// A batched writer and a point writer per pair of series.
		writers.Add(2)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			id := fmt.Sprintf("batch%d", w)
			for i := 0; i < 60; i++ {
				n := 1 + rng.Intn(8)
				ps := make([]series.Point, n)
				for j := range ps {
					ps[j] = series.Point{T: rng.Int63n(400), V: float64(rng.Intn(30))}
				}
				if err := e.WriteBatch(BatchEntry{SeriesID: id, Points: ps}); err != nil {
					errCh <- err
					return
				}
				oracles[w].apply(tortureOp{kind: 'w', id: id, pts: ps})
			}
		}(w)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			id := fmt.Sprintf("point%d", w)
			for i := 0; i < 60; i++ {
				p := series.Point{T: rng.Int63n(400), V: float64(rng.Intn(30))}
				if err := e.Write(id, p); err != nil {
					errCh <- err
					return
				}
				oracles[nWriters+w].apply(tortureOp{kind: 'w', id: id, pts: []series.Point{p}})
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			q := m4.Query{Tqs: 0, Tqe: 512, W: 8}
			for _, id := range e.SeriesIDs() {
				snap, err := e.Snapshot(id, q.Range())
				if err != nil {
					errCh <- err
					return
				}
				if _, err := m4lsm.Compute(snap, q); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	for i, o := range oracles {
		id := fmt.Sprintf("batch%d", i)
		if i >= nWriters {
			id = fmt.Sprintf("point%d", i-nWriters)
		}
		snap, err := e.Snapshot(id, full)
		if err != nil {
			t.Fatal(err)
		}
		got := materialize(t, snap, full)
		if !seriesEqual(got, o.series(id)) {
			t.Fatalf("series %s: got %v, want %v", id, got, o.series(id))
		}
	}
}

// TestWALGroupCommit pins the committer's batching semantics directly: one
// walSubmit of N records is one group (one sync), every record is
// acknowledged, and the claimed watermarks retire segments exactly like the
// single-record path.
func TestWALGroupCommit(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), SyncWAL: true, FlushThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g0, r0 := e.walCommit.groups.Load(), e.walCommit.records.Load()

	const n = 10
	sh := e.shards[0]
	sh.mu.Lock()
	reqs := make([]*walReq, n)
	for i := range reqs {
		reqs[i] = &walReq{
			payload: encodeInsertSharded(0, "s", pts(int64(i), int64(i))),
			done:    make(chan struct{}),
		}
	}
	e.walSubmit(reqs)
	sh.mu.Unlock()
	for i, r := range reqs {
		if r.err != nil {
			t.Fatalf("record %d: %v", i, r.err)
		}
	}
	if g := e.walCommit.groups.Load() - g0; g != 1 {
		t.Fatalf("groups = %d, want 1 (one submit, one sync)", g)
	}
	if r := e.walCommit.records.Load() - r0; r != n {
		t.Fatalf("records = %d, want %d", r, n)
	}
}

// TestWALGroupCommitConcurrent drives many concurrent Write callers with
// SyncWAL on and requires (a) full durability across a kill+reopen and (b)
// fewer groups than records — i.e. commits actually amortized.
func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, SyncWAL: true, FlushThreshold: 1 << 20, NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", w)
			for i := 0; i < perWriter; i++ {
				if err := e.Write(id, series.Point{T: int64(i), V: float64(w)}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	records := e.walCommit.records.Load()
	groups := e.walCommit.groups.Load()
	if records != writers*perWriter {
		t.Fatalf("records = %d, want %d", records, writers*perWriter)
	}
	if groups > records {
		t.Fatalf("groups = %d > records = %d", groups, records)
	}
	e.Kill() // ack ⇒ synced: everything must survive an abrupt kill

	e2, err := Open(Options{Dir: dir, NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	full := series.TimeRange{Start: -1 << 40, End: 1 << 40}
	for w := 0; w < writers; w++ {
		snap, err := e2.Snapshot(fmt.Sprintf("s%d", w), full)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(materialize(t, snap, full)); got != perWriter {
			t.Fatalf("writer %d: %d points survived, want %d", w, got, perWriter)
		}
	}
}

// TestENOSPCRetireFlipsReadOnly is the regression for the classify bug:
// ENOSPC surfacing from the post-flush maybeRetireWAL/pyrMaybeSave tail of
// Write (and Flush) must flip the engine read-only with the typed error,
// exactly like ENOSPC during the flush itself.
func TestENOSPCRetireFlipsReadOnly(t *testing.T) {
	for _, site := range []string{"wal.retire", "pyramid.save"} {
		t.Run(site, func(t *testing.T) {
			var diskFull atomic.Bool
			hook := func(s string) error {
				if diskFull.Load() && (s == site || s == "probe.space") {
					return fmt.Errorf("injected: %w", syscall.ENOSPC)
				}
				return nil
			}
			e, err := Open(Options{Dir: t.TempDir(), FlushThreshold: 4,
				StepHook: hook, SpaceProbeInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			diskFull.Store(true)
			// Crossing the threshold auto-flushes inside Write; the flush
			// succeeds and the post-flush tail hits the injected ENOSPC.
			err = e.Write("s", pts(1, 1, 2, 2, 3, 3, 4, 4)...)
			if !errors.Is(err, ErrReadOnly) {
				t.Fatalf("write over full disk at %s: got %v, want ErrReadOnly", site, err)
			}
			if ro, _ := e.ReadOnly(); !ro {
				t.Fatalf("engine not read-only after ENOSPC at %s", site)
			}
			diskFull.Store(false)
		})
	}
}

// waitFor polls cond (10ms cadence, 5s budget) — test-only helper.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
