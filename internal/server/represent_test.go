package server

import (
	"bytes"
	"image/png"
	"io"
	"net/http"
	"testing"
)

// TestRenderRepr drives the repr/ratio render parameters: every operator
// must produce a PNG of the requested size, the explicit m4 render must be
// byte-identical to the default, and bad values must 400 before the engine
// is touched.
func TestRenderRepr(t *testing.T) {
	srv := newServer(t)
	fetch := func(u string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", u, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		img, err := png.Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		if img.Bounds().Dx() != 80 || img.Bounds().Dy() != 40 {
			t.Fatalf("%s: bounds %v", u, img.Bounds())
		}
		return raw
	}
	base := "/render?series=root.s1&tqs=0&tqe=5000&w=80&h=40"
	plain := fetch(base)
	for _, u := range []string{
		base + "&repr=minmax",
		base + "&repr=lttb",
		base + "&repr=minmaxlttb",
		base + "&repr=minmaxlttb&ratio=8",
	} {
		fetch(u)
	}
	// repr=m4 is the default spelled out; the raster must not change.
	if !bytes.Equal(plain, fetch(base+"&repr=m4")) {
		t.Error("repr=m4 render differs from default render")
	}
	for _, u := range []string{
		base + "&repr=nope",
		base + "&repr=lttb&ratio=4",        // ratio only for minmaxlttb
		base + "&repr=minmaxlttb&ratio=99", // out of range
		base + "&repr=minmaxlttb&ratio=x",
	} {
		if code := getJSON(t, srv.URL+u, nil); code != 400 {
			t.Errorf("%s: status %d, want 400", u, code)
		}
	}
}

// TestQueryRepresent checks the /query passthrough for REPRESENT
// statements: two-column point rows and the represent echo field.
func TestQueryRepresent(t *testing.T) {
	srv := newServer(t)
	q := "SELECT+M4(*)+FROM+root.s1+WHERE+time+>=+0+AND+time+<+5000+GROUP+BY+SPANS(8)+REPRESENT+lttb"
	var res struct {
		Columns   []string    `json:"columns"`
		Rows      [][]float64 `json:"rows"`
		Represent string      `json:"represent"`
	}
	if code := getJSON(t, srv.URL+"/query?q="+q, &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	if res.Represent != "lttb" {
		t.Errorf("represent = %q", res.Represent)
	}
	if len(res.Columns) != 2 || len(res.Rows) != 8 {
		t.Errorf("columns %v, %d rows (want 2 cols, 8 rows)", res.Columns, len(res.Rows))
	}
}
