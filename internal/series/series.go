// Package series defines the basic time-series data model shared by every
// layer of the system: a point is a (timestamp, value) pair and a series is a
// slice of points in strictly increasing time order.
//
// Timestamps are int64 milliseconds (the paper's datasets use epoch-millis);
// values are float64. Within a single chunk timestamps are unique; across
// chunks the same timestamp may occur, in which case the chunk with the
// larger version number holds the latest value (see Definition 2.7 of the
// paper and package mergeread).
package series

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is a single time-value observation.
type Point struct {
	T int64   // timestamp, epoch milliseconds
	V float64 // observed value
}

// String renders the point as "(t, v)".
func (p Point) String() string { return fmt.Sprintf("(%d, %g)", p.T, p.V) }

// Series is a sequence of points. Most code requires the strictly-increasing
// time order enforced by Validate; construction helpers preserve it.
type Series []Point

// ErrUnsorted is returned by Validate for out-of-order or duplicate
// timestamps.
var ErrUnsorted = errors.New("series: timestamps not strictly increasing")

// Validate checks that timestamps strictly increase and values are not NaN.
func (s Series) Validate() error {
	for i := range s {
		if i > 0 && s[i].T <= s[i-1].T {
			return fmt.Errorf("%w: index %d (t=%d after t=%d)", ErrUnsorted, i, s[i].T, s[i-1].T)
		}
		if math.IsNaN(s[i].V) {
			return fmt.Errorf("series: NaN value at index %d (t=%d)", i, s[i].T)
		}
	}
	return nil
}

// IsSorted reports whether timestamps strictly increase.
func (s Series) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i].T <= s[i-1].T {
			return false
		}
	}
	return true
}

// SortDedup sorts the series by time and keeps, for duplicate timestamps,
// the point that appears last in the input (mirroring overwrite semantics
// when a batch carries several values for one timestamp). It returns the
// possibly shortened slice.
func SortDedup(s Series) Series {
	if len(s) < 2 {
		return s
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].T < s[j].T })
	out := s[:1]
	for _, p := range s[1:] {
		if p.T == out[len(out)-1].T {
			out[len(out)-1] = p // later write wins
			continue
		}
		out = append(out, p)
	}
	return out
}

// Times returns the timestamps of the series as a fresh slice.
func (s Series) Times() []int64 {
	ts := make([]int64, len(s))
	for i, p := range s {
		ts[i] = p.T
	}
	return ts
}

// Values returns the values of the series as a fresh slice.
func (s Series) Values() []float64 {
	vs := make([]float64, len(s))
	for i, p := range s {
		vs[i] = p.V
	}
	return vs
}

// FromColumns zips parallel timestamp and value slices into a Series.
// It panics if the lengths differ, as that is always a programming error.
func FromColumns(ts []int64, vs []float64) Series {
	if len(ts) != len(vs) {
		panic(fmt.Sprintf("series: column length mismatch %d != %d", len(ts), len(vs)))
	}
	s := make(Series, len(ts))
	for i := range ts {
		s[i] = Point{T: ts[i], V: vs[i]}
	}
	return s
}

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// TimeRange is a half-open interval [Start, End) over timestamps, the shape
// used by M4 spans and query ranges (Definition 2.3).
type TimeRange struct {
	Start int64 // inclusive
	End   int64 // exclusive
}

// Contains reports whether t falls inside the half-open range.
func (r TimeRange) Contains(t int64) bool { return t >= r.Start && t < r.End }

// Empty reports whether the range contains no timestamps.
func (r TimeRange) Empty() bool { return r.End <= r.Start }

// Overlaps reports whether two half-open ranges intersect.
func (r TimeRange) Overlaps(o TimeRange) bool {
	return r.Start < o.End && o.Start < r.End
}

// Intersect returns the overlap of two half-open ranges (possibly empty).
func (r TimeRange) Intersect(o TimeRange) TimeRange {
	out := TimeRange{Start: max64(r.Start, o.Start), End: min64(r.End, o.End)}
	if out.End < out.Start {
		out.End = out.Start
	}
	return out
}

func (r TimeRange) String() string { return fmt.Sprintf("[%d, %d)", r.Start, r.End) }

// Slice returns the subsequence of s inside the half-open range, as a view
// of the original backing array (no copy).
func (s Series) Slice(r TimeRange) Series {
	if r.Empty() || len(s) == 0 {
		return nil
	}
	lo := sort.Search(len(s), func(i int) bool { return s[i].T >= r.Start })
	hi := sort.Search(len(s), func(i int) bool { return s[i].T >= r.End })
	if lo >= hi {
		return nil
	}
	return s[lo:hi]
}

// IndexOf returns the position of timestamp t in the sorted series and
// whether it is present.
func (s Series) IndexOf(t int64) (int, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].T >= t })
	if i < len(s) && s[i].T == t {
		return i, true
	}
	return i, false
}

// First returns the earliest point. It panics on an empty series.
func (s Series) First() Point { return s[0] }

// Last returns the latest point. It panics on an empty series.
func (s Series) Last() Point { return s[len(s)-1] }

// Bounds returns the closed time interval covered by the series and false
// if the series is empty.
func (s Series) Bounds() (TimeRange, bool) {
	if len(s) == 0 {
		return TimeRange{}, false
	}
	// End is exclusive, so one past the last timestamp.
	return TimeRange{Start: s[0].T, End: s[len(s)-1].T + 1}, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
