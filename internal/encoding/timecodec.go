package encoding

// Delta-of-delta timestamp codec (the analogue of IoTDB's TS_2DIFF and of
// Gorilla's timestamp scheme). Sensor timestamps arrive at a nearly fixed
// frequency, so consecutive deltas are nearly equal and the second
// difference is almost always zero; it compresses to about one bit per
// point on regular data while still handling arbitrary gaps.
//
// Layout:
//
//	uvarint count
//	varint  t0            (absent when count == 0)
//	varint  delta0        (absent when count < 2)
//	count-2 zigzag-varint delta-of-deltas

// EncodeTimes appends the encoded form of ts to dst. Timestamps must be in
// increasing order (not enforced here; chunk writers validate).
func EncodeTimes(dst []byte, ts []int64) []byte {
	dst = AppendUvarint(dst, uint64(len(ts)))
	if len(ts) == 0 {
		return dst
	}
	dst = AppendVarint(dst, ts[0])
	if len(ts) == 1 {
		return dst
	}
	prevDelta := ts[1] - ts[0]
	dst = AppendVarint(dst, prevDelta)
	for i := 2; i < len(ts); i++ {
		delta := ts[i] - ts[i-1]
		dst = AppendVarint(dst, delta-prevDelta)
		prevDelta = delta
	}
	return dst
}

// DecodeTimes decodes a block produced by EncodeTimes and returns the
// timestamps along with the remaining buffer.
func DecodeTimes(b []byte) ([]int64, []byte, error) {
	count, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	const maxCount = 1 << 31
	if count > maxCount {
		return nil, nil, corruptf("timestamp count %d too large", count)
	}
	ts := make([]int64, 0, count)
	if count == 0 {
		return ts, b, nil
	}
	t0, b, err := Varint(b)
	if err != nil {
		return nil, nil, err
	}
	ts = append(ts, t0)
	if count == 1 {
		return ts, b, nil
	}
	delta, b, err := Varint(b)
	if err != nil {
		return nil, nil, err
	}
	ts = append(ts, t0+delta)
	for uint64(len(ts)) < count {
		dod, rest, err := Varint(b)
		if err != nil {
			return nil, nil, err
		}
		b = rest
		delta += dod
		ts = append(ts, ts[len(ts)-1]+delta)
	}
	return ts, b, nil
}
