package exper

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// PyramidW is the fixed span count of the pyramid sweep. With power-of-two
// dataset sizes every span boundary lands exactly on a rollup-cell
// boundary, so the pyramid path answers each span from whole cells with no
// boundary fragments — the regime where query cost is O(w), independent of
// data size.
const PyramidW = 1024

// pyramidBaseSizes is the unscaled point-count sweep: 2^14 .. 2^24 spans
// three orders of magnitude.
var pyramidBaseSizes = []int{1 << 14, 1 << 17, 1 << 20, 1 << 24}

// PyramidMeasurement is one sweep point: the same fixed-w M4 query answered
// with the rollup pyramid and with it disabled, on the same storage state.
type PyramidMeasurement struct {
	Points     int
	OnLatency  time.Duration
	OffLatency time.Duration
	OnStats    storage.Stats
	OffStats   storage.Stats
}

// Speedup returns pyramid-off latency / pyramid-on latency.
func (m PyramidMeasurement) Speedup() float64 {
	if m.OnLatency <= 0 {
		return math.Inf(1)
	}
	return float64(m.OffLatency) / float64(m.OnLatency)
}

// RunPyramid measures M4 query latency at a fixed span count while the
// dataset grows by three orders of magnitude, with the rollup pyramid on
// and off. Sizes are powers of two (cfg.Scale shifts the sweep, rounded
// back to a power of two) so spans decompose into whole cells: pyramid-on
// cost is the cell count, pyramid-off cost is every chunk in the range.
// Both answers are cross-checked span by span, and the pyramid must
// actually engage — a run where it silently fell back everywhere fails.
func RunPyramid(cfg Config) ([]PyramidMeasurement, error) {
	cfg = cfg.withDefaults()
	var out []PyramidMeasurement
	for _, base := range pyramidBaseSizes {
		n := pyramidSize(base, cfg.Scale)
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("pyramid-%d", n))
		if err != nil {
			return nil, err
		}
		m, err := runPyramidSize(cfg, n, dir)
		cleanup()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// pyramidSize scales a base size and rounds to the nearest power of two
// (floor 2^12), preserving the cell-aligned span property at any scale.
func pyramidSize(base int, scale float64) int {
	n := float64(base) * scale / 0.01 // cfg default 0.01 runs the unscaled sweep
	log := int(math.Round(math.Log2(n)))
	if log < 12 {
		log = 12
	}
	return 1 << log
}

func runPyramidSize(cfg Config, n int, dir string) (PyramidMeasurement, error) {
	m := PyramidMeasurement{Points: n, OnLatency: math.MaxInt64, OffLatency: math.MaxInt64}
	const name = "pyramid.sweep"
	e, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: cfg.ChunkSize, DisableWAL: true})
	if err != nil {
		return m, err
	}
	defer e.Close()

	// One dense point per tick: a seeded random walk, written in batches;
	// threshold flushes shape the chunks and keep the pyramid current.
	rng := rand.New(rand.NewSource(cfg.Seed))
	const batch = 4096
	buf := make([]series.Point, 0, batch)
	v := 0.0
	for t := 0; t < n; t++ {
		v += rng.Float64()*2 - 1
		buf = append(buf, series.Point{T: int64(t), V: v})
		if len(buf) == batch {
			if err := e.Write(name, buf...); err != nil {
				return m, err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := e.Write(name, buf...); err != nil {
			return m, err
		}
	}
	if err := e.Flush(); err != nil {
		return m, err
	}

	q := m4.Query{Tqs: 0, Tqe: int64(n), W: PyramidW}
	for rep := 0; rep < cfg.Reps; rep++ {
		snap, err := e.Snapshot(name, q.Range())
		if err != nil {
			return m, err
		}
		start := time.Now()
		on, err := m4lsm.ComputeWithOptions(snap, q, m4lsm.Options{Parallelism: cfg.Parallelism})
		if err != nil {
			return m, err
		}
		if d := time.Since(start); d < m.OnLatency {
			m.OnLatency = d
			m.OnStats = snap.Stats.Load()
		}

		snap, err = e.Snapshot(name, q.Range())
		if err != nil {
			return m, err
		}
		start = time.Now()
		off, err := m4lsm.ComputeWithOptions(snap, q, m4lsm.Options{Parallelism: cfg.Parallelism, DisablePyramid: true})
		if err != nil {
			return m, err
		}
		if d := time.Since(start); d < m.OffLatency {
			m.OffLatency = d
			m.OffStats = snap.Stats.Load()
		}

		if rep == 0 {
			for i := range on {
				if !m4.Equivalent(on[i], off[i]) {
					return m, fmt.Errorf("n=%d span %d: pyramid-on %v != pyramid-off %v", n, i, on[i], off[i])
				}
			}
		}
	}
	if m.OnStats.PyramidSpans == 0 {
		return m, fmt.Errorf("n=%d: pyramid answered zero spans (silent fallback)", n)
	}
	return m, nil
}

// PyramidTitle names the sweep with its fixed span count.
func PyramidTitle() string {
	return fmt.Sprintf("Pyramid: data size vs latency at fixed w=%d", PyramidW)
}

// WritePyramid renders the sweep as an aligned text table.
func WritePyramid(w io.Writer, title string, ms []PyramidMeasurement) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%12s %14s %14s %9s %10s %10s %10s %12s\n",
		"points", "pyramidOn", "pyramidOff", "speedup", "pyrSpans", "pyrCells", "fallback", "chunksOn/Off")
	for _, m := range ms {
		fmt.Fprintf(w, "%12d %14s %14s %8.1fx %10d %10d %10d %6d/%d\n",
			m.Points, m.OnLatency.Round(time.Microsecond), m.OffLatency.Round(time.Microsecond),
			m.Speedup(), m.OnStats.PyramidSpans, m.OnStats.PyramidCells, m.OnStats.PyramidFallbackSpans,
			m.OnStats.ChunksLoaded, m.OffStats.ChunksLoaded)
	}
}
