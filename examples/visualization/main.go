// Visualization: validate the paper's headline claim end-to-end (Fig. 1).
//
// The example stores a KOB-like series, runs the M4-LSM operator at
// w = chart width, rasterizes both the full merged series and the reduced
// M4 point set as two-color line charts, and verifies the pixel error is
// exactly zero. It writes full.png and m4.png next to the binary and
// prints a small ASCII rendering.
package main

import (
	"fmt"
	"log"
	"os"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/viz"
	"m4lsm/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "m4lsm-viz-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 200k points of the skewed KOB preset in 1000-point chunks, 20% of
	// them overlapping due to out-of-order arrival.
	preset := workload.KOB()
	data := preset.Generate(200_000, 7)
	engine, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: 1000, DisableWAL: true})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	if err := workload.Load(engine, preset.Name, data, workload.LoadOptions{
		ChunkSize: 1000, OverlapFraction: 0.2, Seed: 7,
	}); err != nil {
		log.Fatal(err)
	}

	const width, height = 1000, 500
	q := m4.Query{Tqs: data[0].T, Tqe: data[len(data)-1].T + 1, W: width}

	// M4-LSM: the reduced point set (at most 4 points per pixel column).
	snap, err := engine.Snapshot(preset.Name, q.Range())
	if err != nil {
		log.Fatal(err)
	}
	aggs, err := m4lsm.Compute(snap, q)
	if err != nil {
		log.Fatal(err)
	}
	reduced := m4.Points(aggs)
	fmt.Printf("reduced %d points to %d (%.2f%%), cost: %v\n",
		len(data), len(reduced), 100*float64(len(reduced))/float64(len(data)), snap.Stats)

	// Ground truth: the fully merged series.
	snap2, err := engine.Snapshot(preset.Name, q.Range())
	if err != nil {
		log.Fatal(err)
	}
	merged, err := mergeread.Merge(snap2, q.Range())
	if err != nil {
		log.Fatal(err)
	}

	vp := viz.ViewportFor(merged, q.Tqs, q.Tqe)
	full := viz.Rasterize(merged, vp, width, height)
	m4Chart := viz.Rasterize(reduced, vp, width, height)
	diff := viz.Diff(full, m4Chart)
	fmt.Printf("pixel error: %d of %d lit pixels\n", diff, full.Count())
	if diff != 0 {
		log.Fatal("M4 must be error-free in two-color line charts")
	}

	for name, c := range map[string]*viz.Canvas{"full.png": full, "m4.png": m4Chart} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.WritePNG(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", name)
	}

	// A glanceable ASCII preview (80x16 is its own chart, not a scaled
	// copy of the 1000x500 one).
	smallQ := m4.Query{Tqs: q.Tqs, Tqe: q.Tqe, W: 80}
	snap3, _ := engine.Snapshot(preset.Name, smallQ.Range())
	smallAggs, err := m4lsm.Compute(snap3, smallQ)
	if err != nil {
		log.Fatal(err)
	}
	small := viz.Rasterize(m4.Points(smallAggs), viz.ViewportFor(merged, q.Tqs, q.Tqe), 80, 16)
	fmt.Print(small.ASCII())
}
