// Package stepreg implements the chunk index of §3.5 of the paper: a step
// regression over the timestamp→position map of a chunk.
//
// Sensor timestamps inside a chunk follow a step pattern: long runs at a
// fixed collection frequency (the "tilt" parts, slope K) interrupted by
// occasional transmission gaps (the "level" parts, slope 0). The index
// learns the slope K as 1/median(Δt) and the split timestamps from the
// changing points selected by the 3-sigma rule on Δt, then answers the three
// probe shapes of Definition 3.5:
//
//	(a)   Exists(t)      — is there a data point at exactly t?
//	(b-1) FirstAfter(t)  — position of the closest point with time > t
//	(b-2) LastBefore(t)  — position of the closest point with time < t
//
// The learned function is a heuristic fit; to stay exact on arbitrary data
// the index records the maximum prediction error observed at build time and
// finishes every probe with a binary search inside that error window. On
// step-shaped data the window is a handful of positions, so probes touch
// O(1) cache lines instead of O(log n).
package stepreg

import (
	"fmt"
	"math"
	"sort"
)

// Probe is the chunk-index interface consumed by the M4-LSM operator.
// Positions are 0-based indexes into the chunk's timestamp slice.
type Probe interface {
	// Exists reports whether a data point exists at exactly t.
	Exists(t int64) bool
	// FirstAfter returns the position of the closest data point with
	// time strictly greater than t, and false if no such point exists.
	FirstAfter(t int64) (int, bool)
	// LastBefore returns the position of the closest data point with
	// time strictly less than t, and false if no such point exists.
	LastBefore(t int64) (int, bool)
}

// Index is a step-regression chunk index over a sorted timestamp slice.
// The zero value is not usable; call Build.
type Index struct {
	ts []int64 // the indexed timestamps, strictly increasing

	// Learned parameters (§3.5.1–3.5.3). Positions in the model are
	// 1-based, matching the paper; probes convert to 0-based.
	k          float64   // slope K = 1/median(Δt), in positions per ms
	splits     []int64   // split timestamps S = {t_1..t_m}
	intercepts []float64 // b_1..b_{m-1}, one per segment

	maxErr int // max |f(t_i) - i| observed over the chunk at build time
}

// Build learns a step-regression index over ts, which must be strictly
// increasing (chunk writers guarantee this).
func Build(ts []int64) *Index {
	ix := &Index{ts: ts}
	n := len(ts)
	if n < 2 {
		// A 0/1-point chunk needs no model; probes fall through to the
		// (trivial) search window.
		ix.k = 1
		if n == 1 {
			ix.splits = []int64{ts[0], ts[0]}
			ix.intercepts = []float64{1}
		}
		return ix
	}

	deltas := make([]int64, n-1)
	for i := 1; i < n; i++ {
		deltas[i-1] = ts[i] - ts[i-1]
	}
	med := median(deltas)
	if med <= 0 {
		med = 1
	}
	ix.k = 1 / float64(med)

	mu, sigma := meanStd(deltas)
	thr := mu + 3*sigma

	// Changing points: 1-based positions j (2..n-1) where the delta
	// crosses the threshold in either direction (§3.5.3).
	var changing []int
	for j := 2; j <= n-1; j++ {
		dPrev := float64(ts[j-1] - ts[j-2]) // P_j.t - P_{j-1}.t, 1-based
		dNext := float64(ts[j] - ts[j-1])   // P_{j+1}.t - P_j.t
		if (dPrev <= thr && dNext > thr) || (dPrev > thr && dNext <= thr) {
			changing = append(changing, j)
		}
	}

	m := len(changing) + 2 // |S|
	nseg := m - 1
	b := make([]float64, nseg+1) // 1-based b_1..b_{m-1}
	b[1] = 1 - ix.k*float64(ts[0])
	if nseg >= 2 {
		if nseg%2 == 1 {
			b[nseg] = float64(n) - ix.k*float64(ts[n-1])
		} else {
			b[nseg] = float64(n)
		}
	}
	for i := 2; i <= nseg-1; i++ {
		j := changing[i-2] // the (i-1)-th changing point, 1-based position
		if i%2 == 1 {
			b[i] = float64(j) - ix.k*float64(ts[j-1])
		} else {
			b[i] = float64(j)
		}
	}

	splits := make([]int64, m+1) // 1-based t_1..t_m
	splits[1] = ts[0]
	splits[m] = ts[n-1]
	for i := 2; i <= m-1; i++ {
		var t float64
		if i%2 == 1 {
			t = (b[i-1] - b[i]) / ix.k
		} else {
			t = (b[i] - b[i-1]) / ix.k
		}
		splits[i] = int64(math.Round(t))
	}
	// Guard against a degenerate fit producing non-monotonic splits; the
	// evaluator requires ordered segment boundaries.
	for i := 2; i <= m; i++ {
		if splits[i] < splits[i-1] {
			splits[i] = splits[i-1]
		}
	}
	ix.splits = splits[1:]
	ix.intercepts = b[1:]

	// Exactness guard: record the worst prediction error on the chunk.
	for i, t := range ts {
		pred := ix.eval(t)
		if e := absInt(int(math.Round(pred)) - (i + 1)); e > ix.maxErr {
			ix.maxErr = e
		}
	}
	return ix
}

// eval computes f(t) of Definition 3.6 with 1-based positions. Timestamps
// outside [t_1, t_m] are clamped to the nearest boundary segment.
func (ix *Index) eval(t int64) float64 {
	m := len(ix.splits)
	if m == 0 {
		return 1
	}
	// Locate the segment: i is the largest index with splits[i] <= t.
	i := sort.Search(m, func(i int) bool { return ix.splits[i] > t }) - 1
	if i < 0 {
		i = 0
	}
	if i > m-2 {
		i = m - 2
	}
	if i < 0 { // single-split degenerate index
		i = 0
	}
	if i >= len(ix.intercepts) {
		i = len(ix.intercepts) - 1
	}
	seg := i + 1 // 1-based segment number
	if seg%2 == 1 {
		return ix.k*float64(t) + ix.intercepts[i] // tilt
	}
	return ix.intercepts[i] // level
}

// window returns a [lo, hi) 0-based position window guaranteed to contain
// the true position of t if t is present.
func (ix *Index) window(t int64) (int, int) {
	n := len(ix.ts)
	if n == 0 {
		return 0, 0
	}
	f := math.Round(ix.eval(t))
	var pred int
	switch {
	case f < 0:
		pred = 0
	case f > float64(n):
		pred = n
	default:
		pred = int(f) - 1 // to 0-based
	}
	lo := pred - ix.maxErr - 1
	hi := pred + ix.maxErr + 2
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi < lo {
		hi = lo
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// lowerBound returns the smallest 0-based position with ts[pos] >= t,
// using the regression window when possible.
func (ix *Index) lowerBound(t int64) int {
	n := len(ix.ts)
	lo, hi := ix.window(t)
	// Expand the window when the fit failed to bracket t; this keeps
	// probes exact even for query timestamps between training points on
	// a poor fit.
	if lo > 0 && ix.ts[lo-1] >= t {
		lo, hi = 0, lo
	} else if hi < n && (hi == 0 || ix.ts[hi-1] < t) {
		lo, hi = hi, n
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return ix.ts[lo+i] >= t })
}

// Exists implements Probe.
func (ix *Index) Exists(t int64) bool {
	pos := ix.lowerBound(t)
	return pos < len(ix.ts) && ix.ts[pos] == t
}

// FirstAfter implements Probe.
func (ix *Index) FirstAfter(t int64) (int, bool) {
	pos := ix.lowerBound(t)
	if pos < len(ix.ts) && ix.ts[pos] == t {
		pos++
	}
	if pos >= len(ix.ts) {
		return 0, false
	}
	return pos, true
}

// LastBefore implements Probe.
func (ix *Index) LastBefore(t int64) (int, bool) {
	pos := ix.lowerBound(t) - 1
	if pos < 0 {
		return 0, false
	}
	return pos, true
}

// Predict evaluates the learned step function f(t) of Definition 3.6,
// returning the predicted 1-based position of timestamp t. It is exposed
// for diagnostics; probes add the error window on top of it.
func (ix *Index) Predict(t int64) float64 { return ix.eval(t) }

// Len returns the number of indexed timestamps.
func (ix *Index) Len() int { return len(ix.ts) }

// Slope returns the learned slope K in positions per millisecond.
func (ix *Index) Slope() float64 { return ix.k }

// Splits returns the learned split timestamps t_1..t_m.
func (ix *Index) Splits() []int64 { return ix.splits }

// MaxErr returns the worst 1-based position prediction error observed on
// the training chunk; probes binary-search inside this window.
func (ix *Index) MaxErr() int { return ix.maxErr }

// Segments describes the fitted function for diagnostics (examples and the
// Figure 8 reproduction).
func (ix *Index) Segments() []Segment {
	segs := make([]Segment, 0, len(ix.intercepts))
	for i, b := range ix.intercepts {
		s := Segment{
			Start:     ix.splits[i],
			End:       ix.splits[i+1],
			Intercept: b,
			Tilt:      (i+1)%2 == 1,
		}
		if s.Tilt {
			s.Slope = ix.k
		}
		segs = append(segs, s)
	}
	return segs
}

// Segment is one tilt or level piece of the fitted step function.
type Segment struct {
	Start, End int64   // covered timestamp range
	Slope      float64 // K for tilt segments, 0 for level segments
	Intercept  float64 // b_i
	Tilt       bool
}

func (s Segment) String() string {
	if s.Tilt {
		return fmt.Sprintf("[%d,%d) tilt  f(t)=%.6g*t%+.6g", s.Start, s.End, s.Slope, s.Intercept)
	}
	return fmt.Sprintf("[%d,%d) level f(t)=%.6g", s.Start, s.End, s.Intercept)
}

func median(xs []int64) int64 {
	cp := make([]int64, len(xs))
	copy(cp, xs)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[len(cp)/2]
}

func meanStd(xs []int64) (mu, sigma float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mu += float64(x)
	}
	mu /= float64(len(xs))
	for _, x := range xs {
		d := float64(x) - mu
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / float64(len(xs)))
	return mu, sigma
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
