package tsfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"m4lsm/internal/encoding"
)

// fuzzSeedFile returns the raw bytes of a small valid chunk file.
func fuzzSeedFile(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.tsf")
	w, err := Create(path)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := w.WriteChunk("s", 1, encoding.CodecGorilla, genSeries(32, 5)); err != nil {
		f.Fatal(err)
	}
	if _, err := w.WriteChunk("t", 2, encoding.CodecPlain, genSeries(8, 6)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzOpen feeds arbitrary bytes to the footer parser and the chunk
// readers. Whatever the input, Open/ReadChunk/ReadTimes must either error
// or succeed — never panic or run away.
func FuzzOpen(f *testing.F) {
	raw := fuzzSeedFile(f)
	f.Add(raw)
	f.Add(raw[:len(raw)-3]) // truncated tail
	f.Add(raw[:len(raw)/2]) // truncated mid-file
	f.Add([]byte{})
	f.Add([]byte("M4TS\x01"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)), "fuzz")
		if err != nil {
			return
		}
		defer r.Close()
		for _, m := range r.Metas() {
			r.ReadChunk(m)
			r.ReadTimes(m)
		}
	})
}

// FuzzRecordLog feeds arbitrary bytes to the record-log recovery scan. The
// scan must never panic, must stay appendable afterwards, and every record
// it recovers must survive a reopen.
func FuzzRecordLog(f *testing.F) {
	var valid []byte
	{
		path := filepath.Join(f.TempDir(), "seed.log")
		log, _, err := OpenRecordLog(path)
		if err != nil {
			f.Fatal(err)
		}
		log.Append([]byte("first"), false)
		log.Append([]byte{}, false)
		log.Append([]byte("third record"), true)
		log.Close()
		valid, err = os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-2]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0x05, 'a', 'b'})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, b []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		log, recs, err := OpenRecordLog(path)
		if err != nil {
			return
		}
		// The log must remain appendable after recovering arbitrary bytes.
		if err := log.Append([]byte("after recovery"), false); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		log2, recs2, err := OpenRecordLog(path)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer log2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen recovered %d records, want %d", len(recs2), len(recs)+1)
		}
		for i := range recs {
			if !bytes.Equal(recs2[i], recs[i]) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
		if !bytes.Equal(recs2[len(recs)], []byte("after recovery")) {
			t.Fatal("appended record lost")
		}
	})
}

// FuzzSegmentHeader: the WAL segment header decoder parses the first bytes
// of files recovered after a crash; arbitrary input must never panic, every
// rejection must wrap ErrCorrupt, and anything accepted must re-encode to
// the exact bytes it was decoded from.
func FuzzSegmentHeader(f *testing.F) {
	f.Add(EncodeSegmentHeader(SegmentHeader{Version: SegmentVersion, Seq: 1, Shards: 4}))
	f.Add(EncodeSegmentHeader(SegmentHeader{Version: SegmentVersion, Seq: ^uint64(0), Shards: ^uint32(0)}))
	f.Add([]byte{})
	f.Add([]byte("M4WS"))
	f.Add(make([]byte, SegmentHeaderLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		hdr, err := DecodeSegmentHeader(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		enc := EncodeSegmentHeader(hdr)
		if len(b) < SegmentHeaderLen || !bytes.Equal(enc, b[:SegmentHeaderLen]) {
			t.Fatalf("accepted header re-encodes differently: %x vs %x", enc, b)
		}
	})
}
