module m4lsm

go 1.22
