package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestEventLogRecordCloseDrain(t *testing.T) {
	l, err := NewEventLog("", 64, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Record(Event{Endpoint: "/query", Status: 200, ElapsedNs: int64(i)})
	}
	// Close drains everything still buffered before stopping the writer.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Written(); got != 10 {
		t.Errorf("Written = %d, want 10 (Close must drain)", got)
	}
	if got := l.Dropped(); got != 0 {
		t.Errorf("Dropped = %d, want 0", got)
	}
	recent := l.Recent()
	if len(recent) != 10 {
		t.Fatalf("Recent returned %d events", len(recent))
	}
	// Newest first.
	for i, e := range recent {
		if want := int64(9 - i); e.ElapsedNs != want {
			t.Errorf("Recent[%d].ElapsedNs = %d, want %d", i, e.ElapsedNs, want)
		}
	}
	// Record after Close never blocks and never panics.
	for i := 0; i < 200; i++ {
		l.Record(Event{})
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestEventLogBoundedNeverBlocks(t *testing.T) {
	// After Close the writer goroutine is gone, so the channel fills to its
	// capacity and every further Record must take the drop path — a
	// deterministic probe of the bound (the send path is the same one a slow
	// disk would exercise).
	l, err := NewEventLog("", 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			l.Record(Event{Status: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a full buffer")
	}
	if got := l.Dropped(); got != 100-4 {
		t.Errorf("Dropped = %d, want %d", got, 100-4)
	}
	if got := l.Recorded(); got != 100 {
		t.Errorf("Recorded = %d, want 100", got)
	}
}

func TestEventLogRingWraps(t *testing.T) {
	l, err := NewEventLog("", 64, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Record(Event{ElapsedNs: int64(i)})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recent := l.Recent()
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d events, want ring cap 4", len(recent))
	}
	for i, e := range recent {
		if want := int64(9 - i); e.ElapsedNs != want {
			t.Errorf("Recent[%d].ElapsedNs = %d, want %d", i, e.ElapsedNs, want)
		}
	}
}

func TestEventLogJSONLFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := NewEventLog(path, 16, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	when := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	l.Record(Event{When: when, RequestID: "req-1", Endpoint: "/query",
		Statement: "SELECT M4(*) FROM s", Status: 200, ElapsedNs: 12345,
		Operator: "lsm", ChunksLoaded: 3, CacheHits: 2, CacheMisses: 1,
		PyramidSpans: 7, TraceID: "tr-1",
		Phases: []PhaseTiming{{Name: "plan", Ns: 100}}})
	l.Record(Event{When: when.Add(time.Second), RequestID: "req-2", Endpoint: "/render", Status: 429, Error: "shed"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("file has %d events, want 2", len(events))
	}
	e := events[0]
	if e.RequestID != "req-1" || e.Statement != "SELECT M4(*) FROM s" ||
		e.ChunksLoaded != 3 || e.CacheHits != 2 || e.PyramidSpans != 7 ||
		e.TraceID != "tr-1" || len(e.Phases) != 1 || e.Phases[0].Name != "plan" {
		t.Errorf("round-trip mismatch: %+v", e)
	}
	if events[1].Status != 429 || events[1].Error != "shed" {
		t.Errorf("second event mismatch: %+v", events[1])
	}

	// Reopening appends whole lines after the existing ones.
	l2, err := NewEventLog(path, 16, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2.Record(Event{RequestID: "req-3"})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, b := range data {
		if b == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Errorf("file has %d lines after reopen, want 3", lines)
	}
}

func TestEventLogNil(t *testing.T) {
	var l *EventLog
	l.Record(Event{})
	if l.Recent() != nil || l.Recorded() != 0 || l.Written() != 0 || l.Dropped() != 0 || l.WriteErrors() != 0 {
		t.Error("nil EventLog not inert")
	}
	if err := l.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestEventLogConcurrentRecord(t *testing.T) {
	l, err := NewEventLog("", 1024, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Record(Event{Status: w, ElapsedNs: int64(i)})
				if i%10 == 0 {
					l.Recent()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Written() + l.Dropped(); got != writers*per {
		t.Errorf("written+dropped = %d, want %d", got, writers*per)
	}
}

func TestEventLogGoroutineShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		l, err := NewEventLog("", 8, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.Record(Event{})
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// The writer goroutines must all be gone; allow scheduler noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
	}
}
