package lsm

import (
	"math"
	"testing"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// The WAL decoders parse bytes recovered from disk after a crash; arbitrary
// input must never panic, and anything they accept must survive a re-encode
// round trip (no two payloads decoding to states that re-encode
// differently from what was stored).

func FuzzDecodeInsert(f *testing.F) {
	f.Add(encodeInsert("s1", []series.Point{{T: 10, V: 1.5}, {T: -3, V: 0}})[1:])
	f.Add(encodeInsert("", nil)[1:])
	f.Add(encodeInsert("unicode-séries", []series.Point{{T: math.MaxInt64, V: math.Inf(1)}})[1:])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		id, pts, err := decodeInsert(b)
		if err != nil {
			return
		}
		enc := encodeInsert(id, pts)
		id2, pts2, err := decodeInsert(enc[1:])
		if err != nil {
			t.Fatalf("re-encode of accepted payload rejected: %v", err)
		}
		if id2 != id || len(pts2) != len(pts) {
			t.Fatalf("round trip changed payload: (%q,%d pts) -> (%q,%d pts)", id, len(pts), id2, len(pts2))
		}
		for i := range pts {
			if pts[i].T != pts2[i].T || math.Float64bits(pts[i].V) != math.Float64bits(pts2[i].V) {
				t.Fatalf("point %d changed: %v -> %v", i, pts[i], pts2[i])
			}
		}
	})
}

func FuzzDecodeWALDelete(f *testing.F) {
	f.Add(encodeDelete(storage.Delete{SeriesID: "s1", Version: 7, Start: -10, End: 10})[1:])
	f.Add(encodeDelete(storage.Delete{Version: math.MaxUint64 >> 1})[1:])
	f.Add([]byte{})
	f.Add([]byte{0x01, 's', 0x80})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := decodeWALDelete(b)
		if err != nil {
			return
		}
		d2, err := decodeWALDelete(encodeDelete(d)[1:])
		if err != nil {
			t.Fatalf("re-encode of accepted payload rejected: %v", err)
		}
		if d2 != d {
			t.Fatalf("round trip changed delete: %v -> %v", d, d2)
		}
	})
}
